examples/quickstart.ml: Core Disk Domains Engine Format Mm_entry Sd_paged Sim Stretch System Time Usbs
