examples/video_vs_compile.mli:
