examples/crosstalk_demo.mli:
