examples/video_vs_compile.ml: Core Domains Engine Format Proc Sim Stretch System Time Usbs
