examples/revocation_demo.mli:
