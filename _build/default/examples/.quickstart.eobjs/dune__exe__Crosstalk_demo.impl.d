examples/crosstalk_demo.ml: Addr Baseline Core Domains Engine Format Hw Proc Sim Stats Stretch System Time Usbs
