examples/revocation_demo.ml: Addr Core Domains Engine Format Frames Hw Sim Stretch System Time Usbs
