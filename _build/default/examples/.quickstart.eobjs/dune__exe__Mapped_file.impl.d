examples/mapped_file.ml: Addr Core Domains Engine Format Hw Sd_mapped Stretch System Time Usbs
