examples/quickstart.mli:
