examples/mapped_file.mli:
