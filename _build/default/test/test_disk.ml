(* Tests for the disk model. *)

open Engine
open Disk

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let qtest = QCheck_alcotest.to_alcotest

let p = Disk_params.vp3221

let geometry () =
  check "block size" 512 p.Disk_params.block_size;
  check "capacity blocks" 4_304_536 p.Disk_params.nblocks;
  checkb "cylinders plausible" true
    (Disk_params.cylinders p > 2000 && Disk_params.cylinders p < 4000);
  check "rotation ~11.1ms (5400rpm)" (Time.of_us_float 11_111.1)
    p.Disk_params.rotation;
  checkb "media rate ~12MB/s" true
    (Disk_params.media_rate p > 10e6 && Disk_params.media_rate p < 14e6)

let seek_curve () =
  check "zero distance" 0 (Disk_params.seek_time p 0);
  checkb "single cylinder >= min" true
    (Disk_params.seek_time p 1 >= p.Disk_params.seek_min);
  check "full stroke" p.Disk_params.seek_max
    (Disk_params.seek_time p (Disk_params.cylinders p - 1))

let seek_monotonic =
  QCheck.Test.make ~name:"seek time is monotonic in distance" ~count:200
    QCheck.(pair (int_range 0 2800) (int_range 0 2800))
    (fun (a, b) ->
      let lo = min a b and hi = max a b in
      Disk_params.seek_time p lo <= Disk_params.seek_time p hi)

let sequential_reads_hit_cache () =
  let d = Disk_model.create () in
  (* First read is mechanical; subsequent sequential ones hit the
     read-ahead segment and take about a millisecond. *)
  let t = ref Time.zero in
  let dur0 = Disk_model.service d ~now:!t ~op:Disk_model.Read ~lba:1000 ~nblocks:16 in
  t := Time.add !t (dur0 + Time.ms 1);
  let hits = ref [] in
  for i = 1 to 20 do
    let lba = 1000 + (i * 16) in
    let dur = Disk_model.service d ~now:!t ~op:Disk_model.Read ~lba ~nblocks:16 in
    hits := dur :: !hits;
    t := Time.add !t (dur + Time.ms 1)
  done;
  check "20 cache hits" 20 (Disk_model.cache_hits d);
  List.iter
    (fun dur ->
      checkb "hit under 2ms" true (dur < Time.ms 2);
      checkb "hit over 0.5ms" true (dur > Time.us 500))
    !hits

let writes_always_mechanical () =
  let d = Disk_model.create () in
  let t = ref Time.zero in
  let durs = ref [] in
  for i = 0 to 19 do
    let dur =
      Disk_model.service d ~now:!t ~op:Disk_model.Write ~lba:(5000 + (i * 16))
        ~nblocks:16
    in
    durs := dur :: !durs;
    t := Time.add !t (dur + Time.us 300)
  done;
  check "no cache hits for writes" 0 (Disk_model.cache_hits d);
  check "all mechanical" 20 (Disk_model.mechanical_ops d);
  (* Sequential writes separated by a gap miss their rotational
     position: most take the better part of a revolution. *)
  let mean =
    List.fold_left ( + ) 0 !durs / List.length !durs
  in
  checkb "writes ~10ms mean" true (mean > Time.ms 7 && mean < Time.ms 15)

let rotational_wait_bounded =
  QCheck.Test.make ~name:"service time bounded by seek+rotation+transfer"
    ~count:200
    QCheck.(pair (int_range 0 4_000_000) (int_range 0 1_000_000_000))
    (fun (lba, now) ->
      let d = Disk_model.create () in
      let dur = Disk_model.service d ~now ~op:Disk_model.Write ~lba ~nblocks:16 in
      let upper =
        p.Disk_params.controller_overhead + p.Disk_params.seek_max
        + p.Disk_params.rotation
        + (16 * p.Disk_params.rotation / Disk_params.blocks_per_track p)
      in
      dur > 0 && dur <= upper)

let out_of_range () =
  let d = Disk_model.create () in
  Alcotest.check_raises "beyond end"
    (Invalid_argument
       (Printf.sprintf "Disk_model.service: range [%d,%d) out of bounds"
          p.Disk_params.nblocks (p.Disk_params.nblocks + 16)))
    (fun () ->
      ignore
        (Disk_model.service d ~now:Time.zero ~op:Disk_model.Read
           ~lba:p.Disk_params.nblocks ~nblocks:16))

let interleaved_streams_keep_segments () =
  let d = Disk_model.create () in
  let t = ref Time.zero in
  let advance dur = t := Time.add !t (dur + Time.us 500) in
  (* Two interleaved sequential streams in different disk regions:
     after both prime their segments, each keeps hitting. *)
  advance (Disk_model.service d ~now:!t ~op:Disk_model.Read ~lba:0 ~nblocks:16);
  advance
    (Disk_model.service d ~now:!t ~op:Disk_model.Read ~lba:2_000_000 ~nblocks:16);
  let h0 = Disk_model.cache_hits d in
  for i = 1 to 10 do
    advance
      (Disk_model.service d ~now:!t ~op:Disk_model.Read ~lba:(i * 16) ~nblocks:16);
    advance
      (Disk_model.service d ~now:!t ~op:Disk_model.Read
         ~lba:(2_000_000 + (i * 16)) ~nblocks:16)
  done;
  check "both streams keep hitting" (h0 + 20) (Disk_model.cache_hits d)

let suite =
  [ ( "disk.params",
      [ Alcotest.test_case "vp3221 geometry" `Quick geometry;
        Alcotest.test_case "seek curve endpoints" `Quick seek_curve;
        qtest seek_monotonic ] );
    ( "disk.model",
      [ Alcotest.test_case "sequential reads hit cache" `Quick
          sequential_reads_hit_cache;
        Alcotest.test_case "writes are mechanical (~10ms)" `Quick
          writes_always_mechanical;
        qtest rotational_wait_bounded;
        Alcotest.test_case "bounds check" `Quick out_of_range;
        Alcotest.test_case "interleaved streams keep segments" `Quick
          interleaved_streams_keep_segments ] ) ]
