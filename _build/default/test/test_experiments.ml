(* End-to-end tests: short versions of the paper's experiments must
   show the published shape, and whole runs must be deterministic. *)

open Engine
open Experiments

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* --- Table 1 shape --- *)

let table1_shape () =
  let rows = Table1.run () in
  let find name =
    List.find (fun (r : Table1.row) -> r.Table1.bench = name) rows
  in
  let trap = find "trap" and prot1 = find "(un)prot1" in
  let prot100 = find "(un)prot100" and appel1 = find "appel1" in
  let appel2 = find "appel2" and dirty = find "dirty" in
  (* Nemesis beats the monolithic path on the fault benchmarks. *)
  checkb "trap faster than OSF1" true
    (trap.Table1.nemesis_us < Option.get trap.Table1.osf1_us);
  checkb "appel1 faster than OSF1" true
    (appel1.Table1.nemesis_us < Option.get appel1.Table1.osf1_us);
  checkb "appel2 faster than OSF1" true
    (appel2.Table1.nemesis_us < Option.get appel2.Table1.osf1_us);
  (* The pdom route is O(1): the same cost for 1 and 100 pages. *)
  let pd1 = Option.get prot1.Table1.nemesis_pdom_us in
  let pd100 = Option.get prot100.Table1.nemesis_pdom_us in
  checkb "pdom protect is O(1)" true (Float.abs (pd1 -. pd100) < 0.05);
  (* The page-table route is O(pages). *)
  checkb "pt protect grows with range" true
    (prot100.Table1.nemesis_us > 10.0 *. prot1.Table1.nemesis_us);
  (* dirty is sub-microsecond. *)
  checkb "dirty cheap" true (dirty.Table1.nemesis_us < 1.0);
  (* Within the right ballpark of the paper's measurements. *)
  checkb "trap within 2x of paper" true
    (trap.Table1.nemesis_us > trap.Table1.nemesis_paper_us /. 2.0
     && trap.Table1.nemesis_us < trap.Table1.nemesis_paper_us *. 2.0)

(* --- Figure 7 shape (short run) --- *)

let fig7_ratios () =
  let r = Paging_fig.run ~duration:(Time.sec 170) () in
  (match r.Paging_fig.ratios with
  | [ one; two; four ] ->
    Alcotest.(check (float 1e-9)) "base" 1.0 one;
    checkb "2x within 15%" true (two > 1.7 && two < 2.3);
    checkb "4x within 15%" true (four > 3.4 && four < 4.6)
  | _ -> Alcotest.fail "expected three apps");
  (* Laxity lines never exceed l = 10 ms. *)
  List.iter
    (fun (a : Paging_fig.app_report) ->
      checkb "max lax <= 10ms" true (a.Paging_fig.max_lax_ms <= 10.0);
      checkb "period allocations happened" true (a.Paging_fig.allocations > 300))
    r.Paging_fig.apps

let fig7_reads_cheap () =
  let r = Paging_fig.run ~duration:(Time.sec 170) () in
  (* Paging-in transactions ride the drive cache: mean well under the
     ~11 ms mechanical cost (the two bigger-share clients stream; the
     10% client loses its rotational position more often). *)
  (match List.rev r.Paging_fig.apps with
  | biggest :: _ ->
    checkb "cached reads ~1-2ms" true (biggest.Paging_fig.mean_txn_ms < 3.0)
  | [] -> Alcotest.fail "no apps")

(* --- Figure 8 shape (short run) --- *)

let fig8_writes_slow_but_proportional () =
  let r =
    Paging_fig.run ~mode:Workload.Paging_app.Paging_out
      ~duration:(Time.sec 170) ()
  in
  (match r.Paging_fig.ratios with
  | [ _; two; four ] ->
    checkb "2x" true (two > 1.6 && two < 2.4);
    checkb "4x" true (four > 3.2 && four < 4.8)
  | _ -> Alcotest.fail "expected three apps");
  List.iter
    (fun (a : Paging_fig.app_report) ->
      checkb "write txns ~10ms" true
        (a.Paging_fig.mean_txn_ms > 8.0 && a.Paging_fig.mean_txn_ms < 14.0);
      check "no page-ins when paging out" 0 a.Paging_fig.page_ins)
    r.Paging_fig.apps

let fig8_slower_than_fig7 () =
  let r7 = Paging_fig.run ~duration:(Time.sec 170) () in
  let r8 =
    Paging_fig.run ~mode:Workload.Paging_app.Paging_out
      ~duration:(Time.sec 170) ()
  in
  List.iter2
    (fun (a7 : Paging_fig.app_report) (a8 : Paging_fig.app_report) ->
      checkb "paging out much slower" true
        (a8.Paging_fig.sustained_mbit < a7.Paging_fig.sustained_mbit /. 3.0))
    r7.Paging_fig.apps r8.Paging_fig.apps

(* --- Figure 9 (short run) --- *)

let fig9_isolation () =
  let r = Fig9.run ~duration:(Time.sec 60) () in
  checkb "isolation within 3%" true (r.Fig9.isolation_error < 0.03);
  checkb "fs rate sane" true
    (r.Fig9.alone_mbit > 10.0 && r.Fig9.alone_mbit < 100.0)

(* --- Crosstalk (short run) --- *)

let crosstalk_direction () =
  let r = Crosstalk.run ~duration:(Time.sec 90) () in
  let self = r.Crosstalk.self_paging and ext = r.Crosstalk.external_pager in
  checkb "self-paging latency much lower" true
    (self.Crosstalk.light_latency.Crosstalk.p95_ms
     < ext.Crosstalk.light_latency.Crosstalk.p95_ms /. 3.0);
  checkb "pager burned its own CPU" true (ext.Crosstalk.pager_cpu_ms > 1.0);
  Alcotest.(check (float 0.0)) "no pager CPU under self-paging" 0.0
    self.Crosstalk.pager_cpu_ms

(* --- Determinism --- *)

let deterministic_runs () =
  let run () =
    let r = Paging_fig.run ~duration:(Time.sec 60) () in
    List.map
      (fun (a : Paging_fig.app_report) ->
        (a.Paging_fig.txns, a.Paging_fig.page_ins, a.Paging_fig.page_outs))
      r.Paging_fig.apps
  in
  let a = run () and b = run () in
  Alcotest.(check (list (triple int int int))) "identical runs" a b

let seed_robustness () =
  (* The 1:2:4 shape is a property of the system, not of one lucky
     seed. *)
  List.iter
    (fun seed ->
      let r = Paging_fig.run ~duration:(Time.sec 170) ~seed () in
      match r.Paging_fig.ratios with
      | [ _; two; four ] ->
        checkb (Printf.sprintf "seed %d: 2x" seed) true (two > 1.7 && two < 2.3);
        checkb (Printf.sprintf "seed %d: 4x" seed) true (four > 3.4 && four < 4.6)
      | _ -> Alcotest.fail "expected three apps")
    [ 7; 1234; 999983 ]

(* --- Ablation direction checks (short) --- *)

let laxity_matters () =
  let r = Ablations.run_laxity ~duration:(Time.sec 60) () in
  List.iter2
    (fun (_, _, txns_on) (_, _, txns_off) ->
      checkb "laxity multiplies throughput" true (txns_on > 2 * txns_off))
    r.Ablations.with_laxity r.Ablations.without_laxity;
  (* Without laxity: roughly one transaction per 250 ms period. *)
  List.iter
    (fun (_, _, txns) -> checkb "~1 txn/period" true (txns <= 60 * 4 + 20))
    r.Ablations.without_laxity

let rollover_matters () =
  let r = Ablations.run_rollover ~duration:(Time.sec 60) () in
  checkb "rollover keeps share at guarantee" true
    (r.Ablations.with_rollover_share < 0.115);
  checkb "no-carry overshoots" true
    (r.Ablations.without_rollover_share > r.Ablations.with_rollover_share +. 0.01)

let guarded_pt_slower () =
  let r = Ablations.run_pt () in
  checkb "guarded dirty ~3x slower" true
    (r.Ablations.dirty_ratio > 1.8 && r.Ablations.dirty_ratio < 5.0)

let revocation_protocol () =
  let r = Ablations.run_revoke () in
  checkb "transparent rounds" true (r.Ablations.transparent_count > 0);
  checkb "intrusive rounds" true (r.Ablations.intrusive_count > 0);
  checkb "cleaning takes real time" true (r.Ablations.intrusive_latency_ms > 1.0);
  checkb "uncooperative domain killed" true r.Ablations.uncooperative_killed;
  checkb "requester satisfied anyway" true r.Ablations.killed_requester_satisfied

let suite =
  [ ( "experiments.table1",
      [ Alcotest.test_case "shape vs OSF1 and paper" `Slow table1_shape ] );
    ( "experiments.fig7",
      [ Alcotest.test_case "1:2:4 progress ratios" `Slow fig7_ratios;
        Alcotest.test_case "cached sequential reads" `Slow fig7_reads_cheap ] );
    ( "experiments.fig8",
      [ Alcotest.test_case "~10ms writes, proportional" `Slow
          fig8_writes_slow_but_proportional;
        Alcotest.test_case "paging out slower than in" `Slow
          fig8_slower_than_fig7 ] );
    ( "experiments.fig9",
      [ Alcotest.test_case "file-system isolation" `Slow fig9_isolation ] );
    ( "experiments.crosstalk",
      [ Alcotest.test_case "external pager crosstalk measured" `Slow
          crosstalk_direction ] );
    ( "experiments.determinism",
      [ Alcotest.test_case "same seed, same run" `Slow deterministic_runs;
        Alcotest.test_case "shape holds across seeds" `Slow seed_robustness ] );
    ( "experiments.ablations",
      [ Alcotest.test_case "laxity fixes short blocks" `Slow laxity_matters;
        Alcotest.test_case "rollover bounds overrun" `Slow rollover_matters;
        Alcotest.test_case "guarded pt slower" `Slow guarded_pt_slower;
        Alcotest.test_case "revocation protocol outcomes" `Slow
          revocation_protocol ] ) ]
