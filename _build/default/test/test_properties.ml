(* Additional property-based tests on core data structures: each
   compares the implementation against a trivially-correct model under
   random operation sequences. *)

open Engine
open Hw
open Core

let qtest = QCheck_alcotest.to_alcotest

(* --- Frame_stack vs a plain list model --- *)

type fs_op = Push of int | Remove of int | To_top of int | To_bottom of int

let fs_op_gen =
  QCheck.Gen.(
    oneof
      [ map (fun p -> Push p) (int_range 0 30);
        map (fun p -> Remove p) (int_range 0 30);
        map (fun p -> To_top p) (int_range 0 30);
        map (fun p -> To_bottom p) (int_range 0 30) ])

let fs_op_print = function
  | Push p -> Printf.sprintf "push %d" p
  | Remove p -> Printf.sprintf "remove %d" p
  | To_top p -> Printf.sprintf "to_top %d" p
  | To_bottom p -> Printf.sprintf "to_bottom %d" p

let frame_stack_model =
  QCheck.Test.make ~name:"frame stack matches list model" ~count:200
    QCheck.(list (make ~print:fs_op_print fs_op_gen))
    (fun ops ->
      let fs = Frame_stack.create () in
      let model = ref [] in
      List.iter
        (fun op ->
          match op with
          | Push p ->
            if not (List.mem p !model) then begin
              Frame_stack.push fs p;
              model := p :: !model
            end
          | Remove p ->
            let expected = List.mem p !model in
            let got = Frame_stack.remove fs p in
            assert (got = expected);
            model := List.filter (fun q -> q <> p) !model
          | To_top p ->
            if List.mem p !model then begin
              Frame_stack.move_to_top fs p;
              model := p :: List.filter (fun q -> q <> p) !model
            end
          | To_bottom p ->
            if List.mem p !model then begin
              Frame_stack.move_to_bottom fs p;
              model := List.filter (fun q -> q <> p) !model @ [ p ]
            end)
        ops;
      Frame_stack.to_list fs = !model
      && Frame_stack.size fs = List.length !model
      && Frame_stack.top_k fs 3
         = List.filteri (fun i _ -> i < 3) !model)

(* --- Io_channel preserves order and counts under mixed traffic --- *)

let io_channel_order =
  QCheck.Test.make ~name:"io channel is an exact FIFO" ~count:100
    QCheck.(pair (int_range 1 8) (small_list small_int))
    (fun (depth, items) ->
      let sim = Sim.create () in
      let ch = Usbs.Io_channel.create ~depth in
      let received = ref [] in
      ignore
        (Proc.spawn sim (fun () ->
             List.iter
               (fun v ->
                 Usbs.Io_channel.send ch v;
                 Proc.yield ())
               items));
      ignore
        (Proc.spawn sim (fun () ->
             for _ = 1 to List.length items do
               received := Usbs.Io_channel.recv ch :: !received;
               Proc.yield ()
             done));
      Sim.run sim;
      List.rev !received = items)

(* --- Namespace: random bind/lookup/unbind vs an association model --- *)

type Namespace.entry += Prop_value of int

let ns_path_gen =
  QCheck.Gen.(
    map (String.concat "/")
      (list_size (int_range 1 3)
         (oneofl [ "a"; "b"; "c"; "drivers"; "svc" ])))

let namespace_model =
  QCheck.Test.make ~name:"namespace matches an assoc model" ~count:100
    QCheck.(list (pair (make ~print:Fun.id ns_path_gen) small_int))
    (fun ops ->
      let ns = Namespace.create () in
      let model = Hashtbl.create 8 in
      List.iter
        (fun (path, v) ->
          match Namespace.bind ns ~path (Prop_value v) with
          | Ok () ->
            (* A successful bind must be on a fresh, non-conflicting
               path. *)
            assert (not (Hashtbl.mem model path));
            Hashtbl.replace model path v
          | Error _ -> ())
        ops;
      Hashtbl.fold
        (fun path v acc ->
          acc
          &&
          match Namespace.lookup ns ~path with
          | Some (Prop_value v') -> v' = v
          | _ -> false)
        model true)

(* --- Trace.between is a filter by timestamp --- *)

let trace_between_filter =
  QCheck.Test.make ~name:"trace between = timestamp filter" ~count:200
    QCheck.(triple (small_list (int_range 0 100)) (int_range 0 100)
              (int_range 0 100))
    (fun (stamps, a, b) ->
      let lo = min a b and hi = max a b in
      let tr = Trace.create () in
      let sorted = List.sort compare stamps in
      List.iteri (fun i ts -> Trace.record tr ts i) sorted;
      let expected =
        List.filteri (fun _ _ -> true) sorted
        |> List.mapi (fun i ts -> (ts, i))
        |> List.filter (fun (ts, _) -> ts >= lo && ts < hi)
      in
      Trace.between tr lo hi = expected)

(* --- Tlb: never returns a mapping that was not inserted --- *)

let tlb_soundness =
  QCheck.Test.make ~name:"tlb only returns inserted mappings" ~count:200
    QCheck.(list (triple bool (int_range 0 15) (int_range 0 63)))
    (fun ops ->
      let tlb = Tlb.create ~entries:8 () in
      let model = Hashtbl.create 16 in
      List.for_all
        (fun (is_insert, vpn, pfn) ->
          if is_insert then begin
            let pte =
              Pte.set_valid (Pte.make ~sid:1 ~global:Rights.all) ~pfn
            in
            Tlb.insert tlb ~asn:1 ~vpn pte;
            Hashtbl.replace model vpn pfn;
            true
          end
          else begin
            (* A hit must agree with the last insert; a miss is always
               acceptable (capacity eviction). *)
            match Tlb.lookup tlb ~asn:1 ~vpn with
            | Some pte -> Hashtbl.find_opt model vpn = Some (Pte.pfn pte)
            | None -> true
          end)
        ops)

(* --- Edf: total consumption can never exceed capacity --- *)

let edf_capacity =
  QCheck.Test.make ~name:"edf admission keeps utilisation <= 1" ~count:200
    QCheck.(list (pair (int_range 1 20) (int_range 1 20)))
    (fun contracts ->
      let t = Sched.Edf.create () in
      List.iter
        (fun (p, s) ->
          ignore
            (Sched.Edf.admit t ~name:"c" ~period:(Time.ms p)
               ~slice:(Time.ms (min s p)) ~now:Time.zero ()))
        contracts;
      Sched.Edf.utilisation t <= 1.0 +. 1e-9)

let suite =
  [ ( "properties",
      [ qtest frame_stack_model;
        qtest io_channel_order;
        qtest namespace_model;
        qtest trace_between_filter;
        qtest tlb_soundness;
        qtest edf_capacity ] ) ]
