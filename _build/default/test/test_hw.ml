(* Tests for the simulated MMU substrate. *)

open Hw

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let qtest = QCheck_alcotest.to_alcotest

(* --- Addr --- *)

let addr_basics () =
  check "page size" 8192 Addr.page_size;
  check "vpn" 2 (Addr.vpn_of_vaddr (2 * 8192 + 17));
  check "offset" 17 (Addr.offset (2 * 8192 + 17));
  checkb "aligned" true (Addr.is_page_aligned (3 * 8192));
  checkb "unaligned" false (Addr.is_page_aligned (3 * 8192 + 1));
  check "round up exact" 2 (Addr.round_up_pages (2 * 8192));
  check "round up partial" 3 (Addr.round_up_pages (2 * 8192 + 1))

(* --- Rights --- *)

let rights_ops () =
  checkb "permits read" true (Rights.permits Rights.read `Read);
  checkb "no write" false (Rights.permits Rights.read `Write);
  checkb "subset" true (Rights.subset Rights.read Rights.read_write);
  checkb "not subset" false (Rights.subset Rights.all Rights.read_write);
  Alcotest.(check string) "pp" "rw-m"
    (Format.asprintf "%a" Rights.pp Rights.rw_meta)

let rights_bits_roundtrip =
  QCheck.Test.make ~name:"rights to_bits/of_bits roundtrip" ~count:16
    QCheck.(int_range 0 15)
    (fun bits -> Rights.to_bits (Rights.of_bits bits) = bits)

(* --- Pte --- *)

let pte_null_mapping () =
  let pte = Pte.make ~sid:7 ~global:Rights.read_write in
  checkb "present" false (Pte.is_absent pte);
  checkb "invalid" false (Pte.valid pte);
  check "sid" 7 (Pte.sid pte);
  checkb "rights" true (Rights.equal (Pte.global pte) Rights.read_write)

let pte_valid_arms_for_fow () =
  let pte = Pte.set_valid (Pte.make ~sid:1 ~global:Rights.all) ~pfn:123 in
  checkb "valid" true (Pte.valid pte);
  check "pfn" 123 (Pte.pfn pte);
  checkb "fow armed" true (Pte.fow pte);
  checkb "for armed" true (Pte.for_ pte);
  checkb "not dirty" false (Pte.dirty pte);
  let pte = Pte.clear_fow (Pte.set_dirty pte) in
  checkb "dirty" true (Pte.dirty pte);
  checkb "fow cleared" false (Pte.fow pte);
  let pte = Pte.set_invalid pte in
  checkb "invalidated" false (Pte.valid pte);
  checkb "dirty cleared on invalidate" false (Pte.dirty pte);
  check "sid survives" 1 (Pte.sid pte)

let pte_roundtrip =
  QCheck.Test.make ~name:"pte field roundtrip" ~count:300
    QCheck.(quad (int_range 0 Pte.max_sid) (int_range 0 15)
              (int_range 0 Pte.max_pfn) bool)
    (fun (sid, rbits, pfn, valid) ->
      let rights = Rights.of_bits rbits in
      let pte = Pte.make ~sid ~global:rights in
      let pte = if valid then Pte.set_valid pte ~pfn else pte in
      Pte.sid pte = sid
      && Rights.equal (Pte.global pte) rights
      && Pte.valid pte = valid
      && ((not valid) || Pte.pfn pte = pfn))

(* --- Ramtab --- *)

let ramtab_lifecycle () =
  let rt = Ramtab.create ~nframes:16 in
  Alcotest.(check (option int)) "free frame has no owner" None
    (Ramtab.owner rt ~pfn:3);
  Ramtab.set_owner rt ~pfn:3 ~owner:9 ~width:13;
  Alcotest.(check (option int)) "owner" (Some 9) (Ramtab.owner rt ~pfn:3);
  checkb "available for owner" true
    (Ramtab.is_available_for_mapping rt ~pfn:3 ~domain:9);
  checkb "not available for other" false
    (Ramtab.is_available_for_mapping rt ~pfn:3 ~domain:8);
  Ramtab.set_state rt ~pfn:3 Ramtab.Mapped;
  checkb "mapped frame not available" false
    (Ramtab.is_available_for_mapping rt ~pfn:3 ~domain:9);
  Alcotest.check_raises "cannot free mapped frame"
    (Invalid_argument "Ramtab.clear_owner: pfn 3 is in use") (fun () ->
      Ramtab.clear_owner rt ~pfn:3);
  Ramtab.set_state rt ~pfn:3 Ramtab.Unused;
  Ramtab.clear_owner rt ~pfn:3;
  Alcotest.(check (option int)) "freed" None (Ramtab.owner rt ~pfn:3)

(* --- Page tables --- *)

let linear_pt_basics () =
  let pt = Linear_pt.create ~va_bits:24 () in
  let pte = Pte.make ~sid:5 ~global:Rights.read in
  Linear_pt.set pt 100 pte;
  check "lookup" pte (Linear_pt.lookup pt 100);
  checkb "absent elsewhere" true (Pte.is_absent (Linear_pt.lookup pt 101));
  check "entries" 1 ((Linear_pt.impl pt).Page_table.entries ());
  Linear_pt.set pt 100 Pte.absent;
  check "deleted" 0 ((Linear_pt.impl pt).Page_table.entries ())

(* Drive the guarded page table against the linear one with random
   operation sequences: they must agree everywhere. *)
let guarded_matches_linear =
  let gen = QCheck.(list (pair (int_range 0 4095) (int_range 0 64))) in
  QCheck.Test.make ~name:"guarded pt behaves like linear pt" ~count:100 gen
    (fun ops ->
      let lin = Linear_pt.create ~va_bits:25 () in
      let gua = Guarded_pt.create ~va_bits:25 () in
      List.iter
        (fun (vpn, v) ->
          (* v = 0 means delete, otherwise insert a synthetic pte. *)
          let pte =
            if v = 0 then Pte.absent
            else Pte.make ~sid:v ~global:Rights.read_write
          in
          Linear_pt.set lin vpn pte;
          Guarded_pt.set gua vpn pte)
        ops;
      List.for_all
        (fun (vpn, _) -> Linear_pt.lookup lin vpn = Guarded_pt.lookup gua vpn)
        ops
      && (Linear_pt.impl lin).Page_table.entries ()
         = (Guarded_pt.impl gua).Page_table.entries ())

let guarded_collapses_on_delete () =
  let gua = Guarded_pt.create ~va_bits:32 () in
  for vpn = 0 to 63 do
    Guarded_pt.set gua vpn (Pte.make ~sid:1 ~global:Rights.read)
  done;
  let _, depth_full = Guarded_pt.depth_stats gua in
  (* Delete everything except one entry: the trie must collapse back to
     a single leaf, not keep a chain of husk nodes. *)
  for vpn = 1 to 63 do
    Guarded_pt.set gua vpn Pte.absent
  done;
  let entries, depth_one = Guarded_pt.depth_stats gua in
  check "one entry left" 1 entries;
  check "collapsed to a leaf" 1 depth_one;
  checkb "was deeper when full" true (depth_full > 1);
  check "single memory reference again" 1 (Guarded_pt.lookup_refs gua 0)

let guarded_deeper_lookups () =
  let gua = Guarded_pt.create ~va_bits:32 () in
  for vpn = 0 to 200 do
    Guarded_pt.set gua vpn (Pte.make ~sid:1 ~global:Rights.read)
  done;
  checkb "multiple refs per lookup" true (Guarded_pt.lookup_refs gua 100 > 1);
  let entries, depth = Guarded_pt.depth_stats gua in
  check "entries" 201 entries;
  checkb "depth grows" true (depth >= 2)

(* --- TLB --- *)

let tlb_hit_miss () =
  let tlb = Tlb.create ~entries:4 () in
  let pte = Pte.set_valid (Pte.make ~sid:1 ~global:Rights.all) ~pfn:9 in
  Alcotest.(check (option int)) "initial miss" None
    (Option.map Pte.pfn (Tlb.lookup tlb ~asn:1 ~vpn:10));
  Tlb.insert tlb ~asn:1 ~vpn:10 pte;
  Alcotest.(check (option int)) "hit" (Some 9)
    (Option.map Pte.pfn (Tlb.lookup tlb ~asn:1 ~vpn:10));
  Alcotest.(check (option int)) "other asn misses" None
    (Option.map Pte.pfn (Tlb.lookup tlb ~asn:2 ~vpn:10));
  Tlb.invalidate tlb ~vpn:10;
  Alcotest.(check (option int)) "invalidated" None
    (Option.map Pte.pfn (Tlb.lookup tlb ~asn:1 ~vpn:10));
  check "hits" 1 (Tlb.hits tlb);
  check "misses" 3 (Tlb.misses tlb)

let tlb_capacity_eviction () =
  let tlb = Tlb.create ~entries:2 () in
  let pte pfn = Pte.set_valid (Pte.make ~sid:1 ~global:Rights.all) ~pfn in
  Tlb.insert tlb ~asn:1 ~vpn:1 (pte 1);
  Tlb.insert tlb ~asn:1 ~vpn:2 (pte 2);
  Tlb.insert tlb ~asn:1 ~vpn:3 (pte 3);
  (* FIFO: vpn 1 evicted. *)
  checkb "evicted" true (Tlb.lookup tlb ~asn:1 ~vpn:1 = None);
  checkb "kept 2" true (Tlb.lookup tlb ~asn:1 ~vpn:2 <> None);
  checkb "kept 3" true (Tlb.lookup tlb ~asn:1 ~vpn:3 <> None)

(* --- Mmu --- *)

let make_mmu () =
  let pt = Linear_pt.create ~va_bits:24 () in
  Mmu.create ~pt:(Linear_pt.impl pt) ~cost:Cost.nemesis ()

let no_rights _sid = None

let mmu_fault_classification () =
  let mmu = make_mmu () in
  (* Unallocated: no entry at all. *)
  (match Mmu.access mmu ~rights:no_rights ~asn:1 (3 * 8192) `Read with
  | Mmu.Fault { kind = Mmu.Unallocated; _ } -> ()
  | _ -> Alcotest.fail "expected unallocated fault");
  (* NULL mapping with read rights: page fault. *)
  Mmu.set_pte mmu ~vpn:3 (Pte.make ~sid:1 ~global:Rights.read);
  (match Mmu.access mmu ~rights:no_rights ~asn:1 (3 * 8192) `Read with
  | Mmu.Fault { kind = Mmu.Page_fault; _ } -> ()
  | _ -> Alcotest.fail "expected page fault");
  (* Write to a read-only page: access violation. *)
  (match Mmu.access mmu ~rights:no_rights ~asn:1 (3 * 8192) `Write with
  | Mmu.Fault { kind = Mmu.Access_violation; _ } -> ()
  | _ -> Alcotest.fail "expected access violation")

let mmu_translation_and_dirty () =
  let mmu = make_mmu () in
  Mmu.set_pte mmu ~vpn:3
    (Pte.set_valid (Pte.make ~sid:1 ~global:Rights.read_write) ~pfn:77);
  (* First read: FOR emulation sets referenced. *)
  (match Mmu.access mmu ~rights:no_rights ~asn:1 ((3 * 8192) + 5) `Read with
  | Mmu.Ok { pa; _ } -> check "pa" ((77 * 8192) + 5) pa
  | _ -> Alcotest.fail "expected success");
  let pte = Mmu.lookup mmu ~vpn:3 in
  checkb "referenced" true (Pte.referenced pte);
  checkb "not dirty yet" false (Pte.dirty pte);
  (* First write: FOW emulation sets dirty. *)
  (match Mmu.access mmu ~rights:no_rights ~asn:1 (3 * 8192) `Write with
  | Mmu.Ok _ -> ()
  | _ -> Alcotest.fail "expected success");
  checkb "dirty" true (Pte.dirty (Mmu.lookup mmu ~vpn:3))

let mmu_pdom_override () =
  let mmu = make_mmu () in
  Mmu.set_pte mmu ~vpn:4
    (Pte.set_valid (Pte.make ~sid:9 ~global:Rights.none) ~pfn:5);
  (* Global rights deny everything, but the pdom grants read on sid 9. *)
  let rights sid = if sid = 9 then Some Rights.read else None in
  (match Mmu.access mmu ~rights ~asn:1 (4 * 8192) `Read with
  | Mmu.Ok _ -> ()
  | _ -> Alcotest.fail "pdom rights should permit");
  (match Mmu.access mmu ~rights ~asn:1 (4 * 8192) `Write with
  | Mmu.Fault { kind = Mmu.Access_violation; _ } -> ()
  | _ -> Alcotest.fail "pdom rights should deny write")

let mmu_tlb_costs () =
  let mmu = make_mmu () in
  Mmu.set_pte mmu ~vpn:6
    (Pte.set_valid (Pte.make ~sid:1 ~global:Rights.read) ~pfn:2);
  let cost_of access =
    match access with
    | Mmu.Ok { cost; _ } -> cost
    | Mmu.Fault { cost; _ } -> cost
  in
  let first = cost_of (Mmu.access mmu ~rights:no_rights ~asn:1 (6 * 8192) `Read) in
  let second = cost_of (Mmu.access mmu ~rights:no_rights ~asn:1 (6 * 8192) `Read) in
  checkb "first access pays the walk (and PALcode)" true (first > 0);
  check "tlb hit is free" 0 second

(* --- Cost --- *)

let cost_paths () =
  let c = Cost.nemesis in
  check "trap path" (c.Cost.context_save + c.Cost.event_send + c.Cost.activation)
    (Cost.trap_path c);
  checkb "user path dominates" true (Cost.user_fault_path c > Cost.trap_path c)

let suite =
  [ ( "hw.addr", [ Alcotest.test_case "basics" `Quick addr_basics ] );
    ( "hw.rights",
      [ Alcotest.test_case "operations" `Quick rights_ops;
        qtest rights_bits_roundtrip ] );
    ( "hw.pte",
      [ Alcotest.test_case "null mapping" `Quick pte_null_mapping;
        Alcotest.test_case "valid arms FOR/FOW" `Quick pte_valid_arms_for_fow;
        qtest pte_roundtrip ] );
    ( "hw.ramtab", [ Alcotest.test_case "lifecycle" `Quick ramtab_lifecycle ] );
    ( "hw.page_table",
      [ Alcotest.test_case "linear basics" `Quick linear_pt_basics;
        qtest guarded_matches_linear;
        Alcotest.test_case "guarded depth" `Quick guarded_deeper_lookups;
        Alcotest.test_case "guarded collapse on delete" `Quick
          guarded_collapses_on_delete ] );
    ( "hw.tlb",
      [ Alcotest.test_case "hit/miss/invalidate" `Quick tlb_hit_miss;
        Alcotest.test_case "fifo eviction" `Quick tlb_capacity_eviction ] );
    ( "hw.mmu",
      [ Alcotest.test_case "fault classification" `Quick mmu_fault_classification;
        Alcotest.test_case "translation + FOR/FOW dirty" `Quick
          mmu_translation_and_dirty;
        Alcotest.test_case "pdom rights override" `Quick mmu_pdom_override;
        Alcotest.test_case "tlb fill costs" `Quick mmu_tlb_costs ] );
    ( "hw.cost", [ Alcotest.test_case "composite paths" `Quick cost_paths ] ) ]
