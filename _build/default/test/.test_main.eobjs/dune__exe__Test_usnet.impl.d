test/test_usnet.ml: Alcotest Engine Experiments Proc Sim Time Trace Usnet
