test/test_hw.ml: Addr Alcotest Cost Format Guarded_pt Hw Linear_pt List Mmu Option Page_table Pte QCheck QCheck_alcotest Ramtab Rights Tlb
