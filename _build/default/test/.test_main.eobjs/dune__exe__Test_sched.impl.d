test/test_sched.ml: Alcotest Cpu Edf Engine Proc Sched Sim Time
