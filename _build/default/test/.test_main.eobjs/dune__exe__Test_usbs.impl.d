test/test_usbs.ml: Alcotest Disk Engine Gen Io_channel List Proc QCheck QCheck_alcotest Qos Sfs Sim Time Trace Usbs Usd
