test/test_runtime.ml: Alcotest Core Domains Engine Experiments Hw Idc List Printf Proc Sim System Time Ults Usnet
