test/test_disk.ml: Alcotest Disk Disk_model Disk_params Engine List Printf QCheck QCheck_alcotest Time
