test/test_experiments.ml: Ablations Alcotest Crosstalk Engine Experiments Fig9 Float List Option Paging_fig Printf Table1 Time Workload
