test/test_engine.ml: Alcotest Dynarray Engine Float Format Gen Heap List Proc QCheck QCheck_alcotest Rng Sim Stats Sync Time Trace
