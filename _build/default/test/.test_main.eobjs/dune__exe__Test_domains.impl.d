test/test_domains.ml: Addr Alcotest Core Domains Engine Fault Frames Hw List Mm_entry Mmu Ramtab Rights Sd_paged Sim Stretch Stretch_driver System Time Translation Usbs
