test/test_properties.ml: Core Engine Frame_stack Fun Hashtbl Hw List Namespace Printf Proc Pte QCheck QCheck_alcotest Rights Sched Sim String Time Tlb Trace Usbs
