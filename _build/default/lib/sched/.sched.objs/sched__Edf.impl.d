lib/sched/edf.ml: Engine Format List Printf Time
