lib/sched/cpu.ml: Edf Engine List Proc Queue Sim Sync Time
