lib/sched/edf.mli: Engine Format Time
