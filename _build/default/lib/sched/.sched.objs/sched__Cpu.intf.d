lib/sched/cpu.mli: Edf Engine Sim Time
