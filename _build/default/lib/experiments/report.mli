(** Plain-text report helpers shared by the experiment printers. *)

val rule : unit -> unit
(** Print a horizontal rule. *)

val heading : string -> unit

val table : header:string list -> string list list -> unit
(** Column-aligned table with a header row. *)

val fopt : float option -> string
(** "n/a" for [None], two decimals otherwise. *)

val f2 : float -> string
val f1 : float -> string

val chart :
  ?height:int -> ?width:int -> unit_label:string ->
  (string * (float * float) list) list -> unit
(** Multi-series ASCII chart: each series is (label, [(x, y); ...]).
    Series are drawn with distinct marks ('*', 'o', '+', 'x', ...); the
    y-axis is scaled to the data, the x-axis to the common range. *)
