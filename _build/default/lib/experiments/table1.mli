(** Table 1: comparative micro-benchmarks (µs).

    Six operations, following Appel & Li's virtual-memory-primitive
    benchmarks as the paper adapts them:

    - [dirty]: determine whether a random page is dirty (Nemesis: a
      user-level linear-page-table lookup; OSF1: not possible).
    - [(un)prot1]: change protection on one page — for Nemesis both
      the page-table route and, in brackets, the protection-domain
      route.
    - [(un)prot100]: protect/unprotect a 100-page range (alternating,
      so every call really changes permissions).
    - [trap]: user-level page-fault handling round trip.
    - [appel1] ("prot1+trap+unprot"): access a random protected page;
      in the handler unprotect it and protect another.
    - [appel2] ("protN+trap+unprot"): protect 100 pages, access each in
      random order, unprotecting in the handler. Per the paper's
      protection model this is done by unmapping/mapping on Nemesis.

    Nemesis numbers are measured by actually running the operations on
    the simulated system (costs accumulate from the implementation's
    operation counts and the component cost model); OSF1 numbers come
    from the {!Baseline.Unix_vm} structural model. The paper's measured
    values are carried alongside for comparison. *)

type row = {
  bench : string;
  osf1_us : float option;        (** our OSF1 model *)
  osf1_paper_us : float option;  (** paper's measurement *)
  nemesis_us : float;            (** our implementation, simulated *)
  nemesis_pdom_us : float option;(** protection-domain variant (brackets) *)
  nemesis_paper_us : float;
  nemesis_paper_pdom_us : float option;
}

val run : ?page_table:[ `Linear | `Guarded ] -> unit -> row list

val print : row list -> unit
