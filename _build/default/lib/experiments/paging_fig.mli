(** Figures 7 and 8: paging-in / paging-out under disk guarantees.

    Three applications with 25, 50 and 100 ms per 250 ms disk
    guarantees (10%, 20%, 40%), no slack eligibility, 10 ms laxity,
    each with 16 KB of physical memory, a 4 MB stretch and 16 MB of
    swap. The paper's result: sustained progress in the ratio 1:2:4,
    with a USD scheduler trace showing per-client transactions, period
    allocations and laxity lines never exceeding 10 ms. *)

open Engine

type app_report = {
  app_name : string;
  share : float;             (** guaranteed fraction of the disk *)
  sustained_mbit : float;
  series : (Time.t * float) list;  (** watch-thread samples *)
  txns : int;
  mean_txn_ms : float;
  lax_total_ms : float;
  max_lax_ms : float;
  allocations : int;
  page_ins : int;
  page_outs : int;
}

type result = {
  mode : Workload.Paging_app.mode;
  apps : app_report list;    (** ordered smallest share first *)
  ratios : float list;       (** throughput relative to the smallest *)
  trace_window : (Time.t * Usbs.Usd.event) list;
      (** one second of USD trace for display *)
  window_start : Time.t;
}

val run :
  ?mode:Workload.Paging_app.mode -> ?duration:Time.span ->
  ?laxity:Time.span -> ?usd_laxity:bool -> ?usd_rollover:bool ->
  ?shares_ms:int list -> ?seed:int -> unit -> result
(** Defaults: paging-in, 240 s, laxity 10 ms, shares 25/50/100 ms per
    250 ms. *)

val print : result -> unit

val print_series : result -> unit
(** ASCII chart of progress (Mbit/s) against time — the top halves of
    Figures 7 and 8. *)

val print_trace : result -> unit
(** ASCII rendering of the one-second USD scheduler trace window
    ('#' transaction, '.' laxity, '|' allocation; one row per
    client). *)
