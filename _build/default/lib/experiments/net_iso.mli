(** Network-link experiments: "all resources are treated in the same
    way" (paper §5), and the in-kernel device-driver crosstalk argument
    quantified.

    {b Shares}: three flat-out senders with 10/20/40% link guarantees
    must achieve 1:2:4 throughput — the Figure-7 result transplanted to
    the network interface, demonstrating that the same Atropos
    machinery schedules every resource.

    {b Kernel crosstalk}: the paper notes that an exokernel-style
    system in which device drivers coexist in a shared execution
    environment lets "an application which is paging heavily impact
    others who are using orthogonal resources such as the network". We
    measure it: a streaming client's packets are serviced by a shared
    driver domain whose single event loop also resolves page faults
    (each occupying it for a ~11 ms disk write); against the Nemesis
    structure, where the streamer transmits through its own link
    guarantee while the pager self-pages. *)

open Engine

type shares_result = {
  senders : (string * float * float) list;
      (** (name, Mbit/s, ratio vs smallest) *)
}

val run_shares : ?duration:Time.span -> unit -> shares_result
val print_shares : shares_result -> unit

type crosstalk_result = {
  nemesis_mean_ms : float;
  nemesis_p95_ms : float;
  shared_mean_ms : float;
  shared_p95_ms : float;
  packets : int * int;  (** packets measured in each configuration *)
}

val run_kernel_crosstalk : ?duration:Time.span -> unit -> crosstalk_result
val print_kernel_crosstalk : crosstalk_result -> unit
