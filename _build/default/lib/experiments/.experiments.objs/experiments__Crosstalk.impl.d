lib/experiments/crosstalk.ml: Addr Baseline Core Domains Engine Harness Hw Proc Report Sim Stats Stretch System Time Usbs
