lib/experiments/net_iso.mli: Engine Time
