lib/experiments/paging_fig.ml: Bytes Core Engine Harness List Paging_app Printf Report Sampler Sd_paged Stats System Time Trace Usbs Workload
