lib/experiments/crosstalk.mli: Engine Time
