lib/experiments/net_iso.ml: Core Domains Engine Fault Harness Hw List Mm_entry Pdom Printf Proc Report Sd_paged Sim Stats Stretch Stretch_driver Sync System Time Usbs Usnet
