lib/experiments/ablations.mli: Engine Time
