lib/experiments/report.ml: Array Float List Printf String
