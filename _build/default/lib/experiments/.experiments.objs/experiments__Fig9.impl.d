lib/experiments/fig9.ml: Core Engine Float Fs_client Harness List Paging_app Printf Report Sampler Stats System Time Usbs Workload
