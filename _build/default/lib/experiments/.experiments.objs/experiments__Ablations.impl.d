lib/experiments/ablations.ml: Core Domains Engine Frames Fs_client Harness Hw List Paging_app Paging_fig Printf Report Sim Stretch System Table1 Time Trace Usbs Workload
