lib/experiments/harness.ml: Core Engine List Proc Sim System Time
