lib/experiments/harness.mli: Core Engine System Time
