lib/experiments/paging_fig.mli: Engine Time Usbs Workload
