lib/experiments/report.mli:
