(** Ablations of the design choices the paper calls out (DESIGN.md
    section "Ablations"). *)

open Engine

(** {2 A-laxity: the short-block problem} *)

type laxity_result = {
  with_laxity : (string * float * int) list;
      (** (app, Mbit/s, txns) with l = 10 ms *)
  without_laxity : (string * float * int) list;
      (** same with laxity disabled — plain EDF idles a client with no
          pending transaction until its next allocation, so paging
          clients collapse towards one transaction per period *)
}

val run_laxity : ?duration:Time.span -> unit -> laxity_result
val print_laxity : laxity_result -> unit

type laxity_sweep_result = {
  points : (int * float) list;
      (** (laxity ms, total paging Mbit/s across the three clients) *)
}

val run_laxity_sweep : ?duration:Time.span -> unit -> laxity_sweep_result
val print_laxity_sweep : laxity_sweep_result -> unit

(** {2 A-rollover: accounting for overruns} *)

type rollover_result = {
  with_rollover_share : float;
      (** long-run disk share achieved by a client guaranteed 10%
          whose every transaction overruns (≈11 ms writes) *)
  without_rollover_share : float;
  guaranteed_share : float;
}

val run_rollover : ?duration:Time.span -> unit -> rollover_result
val print_rollover : rollover_result -> unit

(** {2 A-pt: linear vs guarded page tables} *)

type pt_result = {
  linear_dirty_us : float;
  guarded_dirty_us : float;
  linear_trap_us : float;
  guarded_trap_us : float;
  dirty_ratio : float;  (** paper: guarded ≈3x slower *)
}

val run_pt : unit -> pt_result
val print_pt : pt_result -> unit

(** {2 A-slack: x-flag slack redistribution} *)

type slack_result = {
  extra_client_mbit : float;   (** 10% guarantee, x = true *)
  extra_client_share : float;  (** achieved share of disk time *)
  victim_mbit_alone : float;   (** 40% client without the x client *)
  victim_mbit_with_extra : float;
}

val run_slack : ?duration:Time.span -> unit -> slack_result
val print_slack : slack_result -> unit

(** {2 A-stream: the stream-paging extension} *)

type stream_result = {
  rates : (int * float * int) list;
      (** (readahead, sustained Mbit/s, total disk transactions) for a
          single paging-in client with a fixed 10% guarantee *)
}

val run_stream : ?duration:Time.span -> unit -> stream_result
val print_stream : stream_result -> unit

(** {2 A-revoke: the revocation protocol} *)

type revoke_result = {
  transparent_count : int;
  intrusive_count : int;
  intrusive_latency_ms : float;
      (** time for a guaranteed allocation that had to revoke *)
  uncooperative_killed : bool;
      (** a domain that ignores revocation notifications is killed *)
  killed_requester_satisfied : bool;
}

val run_revoke : unit -> revoke_result
val print_revoke : revoke_result -> unit
