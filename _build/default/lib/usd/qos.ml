open Engine

type t = {
  period : Time.span;
  slice : Time.span;
  extra : bool;
  laxity : Time.span;
}

let make ~period ~slice ?(extra = false) ?(laxity = Time.ms 10) () =
  if period <= 0 || slice <= 0 then
    invalid_arg "Qos.make: period and slice must be positive";
  if slice > period then invalid_arg "Qos.make: slice exceeds period";
  if laxity < 0 then invalid_arg "Qos.make: negative laxity";
  { period; slice; extra; laxity }

let share t = float_of_int t.slice /. float_of_int t.period

let pp ppf t =
  Format.fprintf ppf "(p=%a, s=%a, x=%b, l=%a)" Time.pp_span t.period
    Time.pp_span t.slice t.extra Time.pp_span t.laxity
