lib/usd/io_channel.ml: Engine Proc Queue
