lib/usd/extents.mli:
