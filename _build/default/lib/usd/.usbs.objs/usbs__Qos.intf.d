lib/usd/qos.mli: Engine Format Time
