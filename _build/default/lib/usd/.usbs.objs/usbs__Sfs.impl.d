lib/usd/sfs.ml: Disk Disk_model Disk_params Engine Extents Printf Sync Usd
