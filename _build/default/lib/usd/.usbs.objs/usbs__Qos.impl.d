lib/usd/qos.ml: Engine Format Time
