lib/usd/io_channel.mli:
