lib/usd/sfs.mli: Engine Qos Sync Usd
