lib/usd/file_store.ml: Disk Disk_model Disk_params Engine Extents Hashtbl Printf Sync Usd
