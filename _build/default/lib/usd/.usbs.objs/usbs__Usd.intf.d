lib/usd/usd.mli: Disk Disk_model Engine Format Qos Sim Sync Time Trace
