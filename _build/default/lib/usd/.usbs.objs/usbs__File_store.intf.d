lib/usd/file_store.mli: Engine Sync Usd
