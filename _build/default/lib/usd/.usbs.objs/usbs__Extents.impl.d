lib/usd/extents.ml: List
