lib/usd/usd.ml: Disk Disk_model Disk_params Edf Engine Format Io_channel List Option Proc Qos Sched Sim Sync Time Trace
