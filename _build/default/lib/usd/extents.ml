type extent = { start : int; len : int }

type t = { mutable free_list : extent list (* sorted by start *) }

let create ~first ~len =
  if first < 0 || len <= 0 then invalid_arg "Extents.create: bad range";
  { free_list = [ { start = first; len } ] }

let free_blocks t = List.fold_left (fun acc e -> acc + e.len) 0 t.free_list

let alloc t ~len =
  if len <= 0 then invalid_arg "Extents.alloc: bad length";
  let rec take acc = function
    | [] -> None
    | e :: rest when e.len >= len ->
      let taken = { start = e.start; len } in
      let remainder =
        if e.len = len then rest
        else { start = e.start + len; len = e.len - len } :: rest
      in
      t.free_list <- List.rev_append acc remainder;
      Some taken
    | e :: rest -> take (e :: acc) rest
  in
  take [] t.free_list

let alloc_at t ~start ~len =
  if len <= 0 then invalid_arg "Extents.alloc_at: bad length";
  let rec take acc = function
    | [] -> None
    | e :: rest when start >= e.start && start + len <= e.start + e.len ->
      let before =
        if start > e.start then [ { start = e.start; len = start - e.start } ]
        else []
      in
      let after =
        let tail = start + len in
        let tail_len = e.start + e.len - tail in
        if tail_len > 0 then [ { start = tail; len = tail_len } ] else []
      in
      t.free_list <- List.rev_append acc (before @ after @ rest);
      Some { start; len }
    | e :: rest -> take (e :: acc) rest
  in
  take [] t.free_list

let free t ext =
  let rec insert = function
    | [] -> [ ext ]
    | e :: rest when ext.start < e.start -> ext :: e :: rest
    | e :: rest -> e :: insert rest
  in
  let rec coalesce = function
    | a :: b :: rest when a.start + a.len = b.start ->
      coalesce ({ start = a.start; len = a.len + b.len } :: rest)
    | a :: rest -> a :: coalesce rest
    | [] -> []
  in
  t.free_list <- coalesce (insert t.free_list)
