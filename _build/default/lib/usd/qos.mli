(** Disk QoS specifications.

    The USD accepts guarantees of the form [(p, s, x, l)]: the client
    may perform disk transactions totalling at most [s] within every
    period [p]; [x] marks eligibility for slack time; [l] is the
    {e laxity} — how long the client may hold its place on the runnable
    queue with no transaction pending (solving the short-block problem
    for paging clients, which cannot pipeline). *)

open Engine

type t = {
  period : Time.span;  (** p *)
  slice : Time.span;   (** s *)
  extra : bool;        (** x — always [false] in the paper's runs *)
  laxity : Time.span;  (** l *)
}

val make :
  period:Time.span -> slice:Time.span -> ?extra:bool -> ?laxity:Time.span ->
  unit -> t
(** Defaults: [extra = false], [laxity = 10ms] (the value used in the
    paper's experiments). Raises [Invalid_argument] on non-positive
    period/slice or slice > period. *)

val share : t -> float
(** s/p. *)

val pp : Format.formatter -> t -> unit
