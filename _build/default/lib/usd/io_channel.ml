open Engine

type 'a t = {
  depth : int;
  items : 'a Queue.t;
  senders : (unit -> unit) Queue.t;
  receivers : ('a -> unit) Queue.t;
}

let create ~depth =
  if depth <= 0 then invalid_arg "Io_channel.create: depth must be positive";
  { depth; items = Queue.create (); senders = Queue.create ();
    receivers = Queue.create () }

let depth t = t.depth
let length t = Queue.length t.items
let is_empty t = Queue.is_empty t.items

let enqueue t v =
  match Queue.take_opt t.receivers with
  | Some wake -> wake v
  | None -> Queue.add v t.items

let try_send t v =
  if Queue.length t.items >= t.depth && Queue.is_empty t.receivers then false
  else begin
    enqueue t v;
    true
  end

let send t v =
  if not (try_send t v) then begin
    Proc.suspend (fun wake -> Queue.add wake t.senders);
    enqueue t v
  end

let try_recv t =
  match Queue.take_opt t.items with
  | Some v ->
    (match Queue.take_opt t.senders with Some wake -> wake () | None -> ());
    Some v
  | None -> None

let recv t =
  match try_recv t with
  | Some v -> v
  | None -> Proc.suspend (fun wake -> Queue.add wake t.receivers)

let peek t = Queue.peek_opt t.items
