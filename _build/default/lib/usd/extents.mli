(** Extent allocation over a range of disk blocks.

    Shared by the swap filesystem and the file store: first-fit
    allocation of contiguous block ranges, with coalescing on free. *)

type t

type extent = { start : int; len : int }

val create : first:int -> len:int -> t

val free_blocks : t -> int

val alloc : t -> len:int -> extent option
(** First fit; [None] when no hole is large enough. *)

val alloc_at : t -> start:int -> len:int -> extent option
(** Allocate a specific range if it is entirely free. *)

val free : t -> extent -> unit
(** Return an extent; coalesces with free neighbours. Freeing a range
    that was not allocated corrupts the allocator — extents are trusted
    capabilities here, as block ranges are inside the USD. *)
