(** Bounded FIFO IO channels.

    Clients communicate with the USD through FIFO buffering similar in
    operation to the `rbufs' scheme the paper cites: a channel has a
    fixed number of slots; a sender that finds the channel full blocks
    until a slot frees. Paging clients typically run with one or two
    outstanding requests (they do not know what they will fault on
    next); the file-system client of Figure 9 pipelines deeply. *)

type 'a t

val create : depth:int -> 'a t
(** [depth] must be positive. *)

val depth : 'a t -> int
val length : 'a t -> int
val is_empty : 'a t -> bool

val send : 'a t -> 'a -> unit
(** Blocks while the channel is full. *)

val try_send : 'a t -> 'a -> bool

val recv : 'a t -> 'a
(** Blocks while the channel is empty. *)

val try_recv : 'a t -> 'a option

val peek : 'a t -> 'a option
