(** Translation look-aside buffer model.

    Fully associative with FIFO (round-robin) replacement and address
    space numbers, loosely following the Alpha 21164 64-entry DTB.
    Entries cache whole PTEs; the MMU re-validates cached protection on
    each access, so the TLB only has to be invalidated when an entry it
    may cache is changed (unmap, protection change, FOR/FOW update). *)

type t

val create : ?entries:int -> unit -> t
(** Default 64 entries. *)

val lookup : t -> asn:int -> vpn:int -> Pte.t option

val insert : t -> asn:int -> vpn:int -> Pte.t -> unit

val invalidate : t -> vpn:int -> unit
(** Drop cached entries for a VPN across all address spaces (mappings
    are global in a single-address-space system). *)

val invalidate_all : t -> unit

val hits : t -> int
val misses : t -> int
