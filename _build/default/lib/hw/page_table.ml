(** Page-table abstraction.

    The paper's production implementation is a linear page table (an
    8 GB array in the virtual address space, mapped on demand via a
    secondary table); an earlier guarded-page-table implementation was
    measured to be about three times slower on the [dirty]
    micro-benchmark. Both are provided; the MMU takes either through
    this record-of-functions interface.

    [lookup_refs] reports how many dependent memory references the
    lookup performs — the cost model multiplies this by the memory
    reference latency, which is how the linear-vs-guarded timing
    difference emerges from structure rather than from hard-coded
    numbers. *)

type impl = {
  kind : string;
  lookup : int -> Pte.t;
  (** [lookup vpn] returns {!Pte.absent} when no entry exists. *)
  set : int -> Pte.t -> unit;
  (** [set vpn pte]; storing {!Pte.absent} deletes the entry. *)
  lookup_refs : int -> int;
  (** Dependent memory references performed by [lookup vpn]. *)
  entries : unit -> int;
  (** Number of present entries (diagnostics). *)
}
