open Engine

type fault_kind = Unallocated | Page_fault | Access_violation

type access = [ `Read | `Write | `Execute ]

type outcome =
  | Ok of { pa : Addr.paddr; cost : Time.span }
  | Fault of { kind : fault_kind; cost : Time.span }

type t = { pt : Page_table.impl; tlb : Tlb.t; cost : Cost.t }

let create ?tlb_entries ~pt ~cost () =
  { pt; tlb = Tlb.create ?entries:tlb_entries (); cost }

let lookup t ~vpn = t.pt.Page_table.lookup vpn

let lookup_cost t ~vpn =
  t.pt.Page_table.lookup_refs vpn * t.cost.Cost.mem_ref

let set_pte t ~vpn pte =
  t.pt.Page_table.set vpn pte;
  Tlb.invalidate t.tlb ~vpn

let pt_kind t = t.pt.Page_table.kind
let tlb t = t.tlb
let cost t = t.cost

let access t ~rights ~asn va kind =
  let vpn = Addr.vpn_of_vaddr va in
  let cost0 = ref 0 in
  let pte =
    match Tlb.lookup t.tlb ~asn ~vpn with
    | Some pte -> pte
    | None ->
      let pte = t.pt.Page_table.lookup vpn in
      cost0 := t.cost.Cost.tlb_fill + lookup_cost t ~vpn;
      if not (Pte.is_absent pte) && Pte.valid pte then
        Tlb.insert t.tlb ~asn ~vpn pte;
      pte
  in
  if Pte.is_absent pte then Fault { kind = Unallocated; cost = !cost0 }
  else begin
    let effective =
      match rights (Pte.sid pte) with
      | Some r -> r
      | None -> Pte.global pte
    in
    if not (Rights.permits effective kind) then
      Fault { kind = Access_violation; cost = !cost0 }
    else if not (Pte.valid pte) then
      Fault { kind = Page_fault; cost = !cost0 }
    else begin
      (* FOR/FOW emulation of referenced/dirty: PALcode DFault fires on
         the first read/write, updates the PTE and retries. *)
      let pte' =
        match kind with
        | `Read | `Execute when Pte.for_ pte ->
          Some (Pte.clear_for (Pte.set_referenced pte))
        | `Write when Pte.fow pte ->
          Some (Pte.clear_fow (Pte.set_dirty (Pte.set_referenced pte)))
        | `Read | `Write | `Execute -> None
      in
      (match pte' with
      | Some p ->
        cost0 := !cost0 + t.cost.Cost.palcode_dfault;
        t.pt.Page_table.set vpn p;
        Tlb.invalidate t.tlb ~vpn;
        Tlb.insert t.tlb ~asn ~vpn p
      | None -> ());
      let final = match pte' with Some p -> p | None -> pte in
      Ok { pa = Addr.paddr_of_pfn (Pte.pfn final) + Addr.offset va;
           cost = !cost0 }
    end
  end

let pp_fault_kind ppf = function
  | Unallocated -> Format.pp_print_string ppf "unallocated"
  | Page_fault -> Format.pp_print_string ppf "page-fault"
  | Access_violation -> Format.pp_print_string ppf "access-violation"
