(** Linear page table: one flat array indexed by VPN.

    Models the paper's production design — the main page table is a
    large array in the virtual address space; translation is a single
    dependent memory reference. *)

type t

val create : ?va_bits:int -> unit -> t
(** [va_bits] (default 32) bounds the covered virtual address space at
    [2^va_bits] bytes. *)

val impl : t -> Page_table.impl

val lookup : t -> int -> Pte.t
val set : t -> int -> Pte.t -> unit
val max_vpn : t -> int
