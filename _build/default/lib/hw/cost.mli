(** Simulated-time cost model.

    The paper reports component costs for its EB164 testbed (266 MHz
    Alpha 21164): event transmission < 50 ns, full context save
    ≈ 750 ns, domain activation < 200 ns, with ≈ 3 µs spent in the
    unoptimised user-level handler path. The model below carries those
    and a handful of structural parameters (memory reference latency,
    per-page page-table update, protection-domain update) from which
    the Table 1 rows are recomputed — the shape comes from operation
    counts, the scale from these constants. *)

open Engine

type t = {
  mem_ref : Time.span;
  (** Latency of one dependent memory reference during a table walk. *)
  tlb_fill : Time.span;
  (** Fixed overhead of a software TLB fill (PALcode dispatch). *)
  palcode_dfault : Time.span;
  (** PALcode DFault routine for FOR/FOW emulation of dirty/ref. *)
  reg_op : Time.span;
  (** Small fixed software overhead for a validated table update. *)
  pdom_update : Time.span;
  (** Changing a stretch's rights word in a protection domain. *)
  event_send : Time.span;
  (** Kernel event transmission (<50 ns). *)
  context_save : Time.span;
  (** Full context save on a fault (≈750 ns). *)
  activation : Time.span;
  (** Activating the faulting domain (<200 ns). *)
  user_demux : Time.span;
  (** User-level event demultiplexer, per activation. *)
  notify_handler : Time.span;
  (** Notification-handler entry/exit per event. *)
  driver_invoke : Time.span;
  (** Invoking a stretch driver (fast path). *)
  ults_schedule : Time.span;
  (** Entering the user-level thread scheduler. *)
  idc_call : Time.span;
  (** One inter-domain communication round trip (worker-thread path). *)
  syscall : Time.span;
  (** Light-weight system call entry/exit (map/unmap/trans). *)
  page_zero : Time.span;
  (** Zeroing a fresh 8 KB frame. *)
  page_copy : Time.span;
  (** Copying one 8 KB page memory-to-memory. *)
}

val nemesis : t
(** Defaults calibrated from the paper's own component measurements. *)

val trap_path : t -> Time.span
(** Kernel part of a user-level fault round trip:
    context save + event send + activation. *)

val user_fault_path : t -> Time.span
(** User-level part: demux + notification handler + driver invocation +
    thread-scheduler entry. *)
