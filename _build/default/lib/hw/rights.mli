(** Stretch access rights.

    Protection in Nemesis is at stretch granularity: each protection
    domain maps every valid stretch to a subset of
    {e read, write, execute, meta}. The [meta] right authorises
    changing protections and mappings on the stretch. *)

type t = { r : bool; w : bool; x : bool; m : bool }

val none : t
val read : t
val read_write : t
val rwx : t
val all : t
(** Read, write, execute and meta. *)

val rw_meta : t

val union : t -> t -> t
val inter : t -> t -> t
val subset : t -> t -> bool

val permits : t -> [ `Read | `Write | `Execute ] -> bool

val to_bits : t -> int
(** 4-bit encoding (r=1, w=2, x=4, m=8), used by the packed PTE. *)

val of_bits : int -> t

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
(** e.g. ["rw-m"]. *)
