type t = { table : int array; mutable entries : int }

let create ?(va_bits = 32) () =
  let nvpn = 1 lsl (va_bits - Addr.page_shift) in
  { table = Array.make nvpn Pte.absent; entries = 0 }

let max_vpn t = Array.length t.table - 1

let check t vpn =
  if vpn < 0 || vpn >= Array.length t.table then
    invalid_arg (Printf.sprintf "Linear_pt: vpn %d out of range" vpn)

let lookup t vpn =
  check t vpn;
  t.table.(vpn)

let set t vpn pte =
  check t vpn;
  let had = not (Pte.is_absent t.table.(vpn)) in
  let has = not (Pte.is_absent pte) in
  (match (had, has) with
  | false, true -> t.entries <- t.entries + 1
  | true, false -> t.entries <- t.entries - 1
  | _ -> ());
  t.table.(vpn) <- pte

let impl t =
  { Page_table.kind = "linear";
    lookup = lookup t;
    set = set t;
    lookup_refs = (fun _vpn -> 1);
    entries = (fun () -> t.entries) }
