open Engine

type t = {
  mem_ref : Time.span;
  tlb_fill : Time.span;
  palcode_dfault : Time.span;
  reg_op : Time.span;
  pdom_update : Time.span;
  event_send : Time.span;
  context_save : Time.span;
  activation : Time.span;
  user_demux : Time.span;
  notify_handler : Time.span;
  driver_invoke : Time.span;
  ults_schedule : Time.span;
  idc_call : Time.span;
  syscall : Time.span;
  page_zero : Time.span;
  page_copy : Time.span;
}

let nemesis =
  { mem_ref = Time.ns 60;
    tlb_fill = Time.ns 90;
    palcode_dfault = Time.ns 150;
    reg_op = Time.ns 45;
    pdom_update = Time.ns 300;
    event_send = Time.ns 50;
    context_save = Time.ns 750;
    activation = Time.ns 200;
    user_demux = Time.ns 600;
    notify_handler = Time.ns 700;
    driver_invoke = Time.ns 900;
    ults_schedule = Time.ns 1000;
    idc_call = Time.us 30;
    syscall = Time.ns 160;
    page_zero = Time.us 8;
    page_copy = Time.us 12 }

let trap_path t = t.context_save + t.event_send + t.activation

let user_fault_path t =
  t.user_demux + t.notify_handler + t.driver_invoke + t.ults_schedule
