type t = { r : bool; w : bool; x : bool; m : bool }

let none = { r = false; w = false; x = false; m = false }
let read = { none with r = true }
let read_write = { none with r = true; w = true }
let rwx = { r = true; w = true; x = true; m = false }
let all = { r = true; w = true; x = true; m = true }
let rw_meta = { r = true; w = true; x = false; m = true }

let union a b = { r = a.r || b.r; w = a.w || b.w; x = a.x || b.x; m = a.m || b.m }
let inter a b = { r = a.r && b.r; w = a.w && b.w; x = a.x && b.x; m = a.m && b.m }

let subset a b =
  (not a.r || b.r) && (not a.w || b.w) && (not a.x || b.x) && (not a.m || b.m)

let permits t = function
  | `Read -> t.r
  | `Write -> t.w
  | `Execute -> t.x

let to_bits t =
  (if t.r then 1 else 0) lor (if t.w then 2 else 0) lor (if t.x then 4 else 0)
  lor (if t.m then 8 else 0)

let of_bits b =
  { r = b land 1 <> 0; w = b land 2 <> 0; x = b land 4 <> 0; m = b land 8 <> 0 }

let equal a b = a = b

let pp ppf t =
  Format.fprintf ppf "%c%c%c%c"
    (if t.r then 'r' else '-')
    (if t.w then 'w' else '-')
    (if t.x then 'x' else '-')
    (if t.m then 'm' else '-')
