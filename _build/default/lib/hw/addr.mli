(** Virtual and physical addresses.

    The simulated machine follows the paper's testbed (Alpha 21164):
    8 KB base pages. Nemesis is a single-address-space system, so
    virtual page numbers are global. *)

type vaddr = int
(** Byte address in the single virtual address space. *)

type paddr = int
(** Byte address in physical memory. *)

val page_size : int
(** 8192 bytes. *)

val page_shift : int
(** 13. *)

val vpn_of_vaddr : vaddr -> int
(** Virtual page number containing the address. *)

val vaddr_of_vpn : int -> vaddr

val pfn_of_paddr : paddr -> int
(** Physical frame number containing the address. *)

val paddr_of_pfn : int -> paddr

val offset : vaddr -> int
(** Offset within the page. *)

val is_page_aligned : vaddr -> bool

val round_up_pages : int -> int
(** [round_up_pages bytes] is the number of pages needed to cover
    [bytes]. *)

val pp_vaddr : Format.formatter -> vaddr -> unit
val pp_paddr : Format.formatter -> paddr -> unit
