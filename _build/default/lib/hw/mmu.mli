(** The simulated MMU: page table + TLB + FOR/FOW dirty emulation.

    [access] performs the full hardware/PALcode part of a memory
    reference: TLB lookup, table walk on miss, stretch-granularity
    protection check, and the FOR/FOW software dirty/referenced
    emulation. It returns either the physical address or the fault to
    dispatch, together with the simulated time the operation consumed.
    Fault {e dispatch} cost (context save, event send, activation) is
    charged by the fault dispatcher, not here. *)

open Engine

type fault_kind =
  | Unallocated  (** Address is not part of any stretch. *)
  | Page_fault   (** NULL/invalid mapping: no frame behind the page. *)
  | Access_violation  (** Rights do not permit the access. *)

type access = [ `Read | `Write | `Execute ]

type outcome =
  | Ok of { pa : Addr.paddr; cost : Time.span }
  | Fault of { kind : fault_kind; cost : Time.span }

type t

val create : ?tlb_entries:int -> pt:Page_table.impl -> cost:Cost.t -> unit -> t

val access :
  t -> rights:(int -> Rights.t option) -> asn:int -> Addr.vaddr -> access ->
  outcome
(** [rights sid] gives the accessing protection domain's rights for a
    stretch, [None] meaning "fall back to the PTE's global rights". *)

val lookup : t -> vpn:int -> Pte.t
(** Raw page-table read (no TLB interaction, no cost). *)

val lookup_cost : t -> vpn:int -> Time.span
(** Simulated cost of a software page-table lookup, as performed e.g.
    by the [dirty] micro-benchmark. *)

val set_pte : t -> vpn:int -> Pte.t -> unit
(** Raw page-table write; invalidates any TLB entry for the page. *)

val pp_fault_kind : Format.formatter -> fault_kind -> unit

val pt_kind : t -> string
val tlb : t -> Tlb.t
val cost : t -> Cost.t
