lib/hw/tlb.mli: Pte
