lib/hw/mmu.ml: Addr Cost Engine Format Page_table Pte Rights Time Tlb
