lib/hw/cost.mli: Engine Time
