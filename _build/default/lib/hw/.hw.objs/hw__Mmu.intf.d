lib/hw/mmu.mli: Addr Cost Engine Format Page_table Pte Rights Time Tlb
