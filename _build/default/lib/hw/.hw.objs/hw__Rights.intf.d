lib/hw/rights.mli: Format
