lib/hw/cost.ml: Engine Time
