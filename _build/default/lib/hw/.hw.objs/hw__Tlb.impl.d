lib/hw/tlb.ml: Array Pte
