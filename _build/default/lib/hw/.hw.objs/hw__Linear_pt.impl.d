lib/hw/linear_pt.ml: Addr Array Page_table Printf Pte
