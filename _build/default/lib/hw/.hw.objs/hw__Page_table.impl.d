lib/hw/page_table.ml: Pte
