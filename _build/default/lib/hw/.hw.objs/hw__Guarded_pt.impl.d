lib/hw/guarded_pt.ml: Addr Array Page_table Pte
