lib/hw/ramtab.ml: Addr Array Format Printf
