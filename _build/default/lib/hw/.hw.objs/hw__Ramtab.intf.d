lib/hw/ramtab.mli: Format
