lib/hw/pte.ml: Format Rights
