lib/hw/guarded_pt.mli: Page_table Pte
