lib/hw/pte.mli: Format Rights
