lib/hw/linear_pt.mli: Page_table Pte
