lib/hw/rights.ml: Format
