(** Guarded page table (Liedtke-style trie).

    The paper notes that an earlier Nemesis implementation used guarded
    page tables and was about three times slower on the [dirty]
    micro-benchmark than the linear table that replaced it. This module
    provides that design so the ablation (A-pt in DESIGN.md) can
    measure the difference: lookups walk a trie of guarded nodes, so
    each translation costs several dependent memory references instead
    of one.

    Nodes have [2^k] slots (k = 3) plus a guard — a bit string that
    path-compresses single-descendant chains. Deletion collapses nodes
    left with a single leaf back into that leaf, so the trie does not
    accumulate dead structure under map/unmap churn. *)

type t

val create : ?va_bits:int -> unit -> t

val impl : t -> Page_table.impl

val lookup : t -> int -> Pte.t
val set : t -> int -> Pte.t -> unit

val lookup_refs : t -> int -> int
(** Number of trie nodes touched by [lookup] (≥ 1). *)

val depth_stats : t -> int * int
(** [(entries, max_depth)] — diagnostics. *)
