type t = int

(* Bit layout:
     0      present (an entry exists — the page belongs to a stretch)
     1      valid   (a physical frame is installed)
     2..5   global rights (r/w/x/m)
     6      dirty
     7      referenced
     8      FOW
     9      FOR
     16..35 sid  (20 bits)
     36..60 pfn  (25 bits)  *)

let b_present = 1
let b_valid = 2
let b_dirty = 1 lsl 6
let b_ref = 1 lsl 7
let b_fow = 1 lsl 8
let b_for = 1 lsl 9

let sid_shift = 16
let pfn_shift = 36
let max_sid = (1 lsl 20) - 1
let max_pfn = (1 lsl 25) - 1

let absent = 0
let is_absent t = t land b_present = 0

let make ~sid ~global =
  assert (sid >= 0 && sid <= max_sid);
  b_present lor (Rights.to_bits global lsl 2) lor (sid lsl sid_shift)

let valid t = t land b_valid <> 0
let pfn t = (t lsr pfn_shift) land max_pfn
let sid t = (t lsr sid_shift) land max_sid
let global t = Rights.of_bits ((t lsr 2) land 0xf)

let dirty t = t land b_dirty <> 0
let referenced t = t land b_ref <> 0
let fow t = t land b_fow <> 0
let for_ t = t land b_for <> 0

let set_valid t ~pfn =
  assert (pfn >= 0 && pfn <= max_pfn);
  let t = t land lnot (max_pfn lsl pfn_shift) in
  t lor b_valid lor b_fow lor b_for lor (pfn lsl pfn_shift)

let set_invalid t =
  t land lnot (b_valid lor b_dirty lor b_ref lor b_fow lor b_for
               lor (max_pfn lsl pfn_shift))

let with_global t rights =
  t land lnot (0xf lsl 2) lor (Rights.to_bits rights lsl 2)

let with_sid t sid =
  assert (sid >= 0 && sid <= max_sid);
  t land lnot (max_sid lsl sid_shift) lor (sid lsl sid_shift)

let set_dirty t = t lor b_dirty
let set_referenced t = t lor b_ref
let clear_fow t = t land lnot b_fow
let clear_for t = t land lnot b_for
let clear_dirty t = t land lnot b_dirty
let clear_referenced t = t land lnot b_ref
let arm_fow t = t lor b_fow
let arm_for t = t lor b_for

let pp ppf t =
  if is_absent t then Format.fprintf ppf "<absent>"
  else
    Format.fprintf ppf "sid=%d %a%s pfn=%s%s%s" (sid t) Rights.pp (global t)
      (if valid t then " valid" else " null")
      (if valid t then string_of_int (pfn t) else "-")
      (if dirty t then " dirty" else "")
      (if referenced t then " ref" else "")
