type vaddr = int
type paddr = int

let page_shift = 13
let page_size = 1 lsl page_shift

let vpn_of_vaddr va = va lsr page_shift
let vaddr_of_vpn vpn = vpn lsl page_shift

let pfn_of_paddr pa = pa lsr page_shift
let paddr_of_pfn pfn = pfn lsl page_shift

let offset va = va land (page_size - 1)

let is_page_aligned va = offset va = 0

let round_up_pages bytes = (bytes + page_size - 1) lsr page_shift

let pp_vaddr ppf va = Format.fprintf ppf "0x%x" va
let pp_paddr ppf pa = Format.fprintf ppf "0x%x" pa
