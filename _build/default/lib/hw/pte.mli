(** Packed page-table entries.

    A PTE is packed into a single immediate [int] so that a linear page
    table is one flat [int array] (as on the real machine, where the
    8 GB linear table is an array of 64-bit PTEs). An entry exists for
    every page of every allocated stretch; freshly allocated stretches
    get "NULL mappings" — entries that carry the stretch id and global
    protection but are invalid, so first touch faults.

    Dirty and referenced are implemented the Alpha way (footnote 8 of
    the paper): FOR/FOW (fault-on-read / fault-on-write) bits are set
    by software and cleared by the PALcode DFault routine, which also
    sets the corresponding referenced/dirty bit. *)

type t = int

val absent : t
(** The table value meaning "no entry": the address is not part of any
    stretch (an access yields an unallocated-address fault). *)

val is_absent : t -> bool

val make : sid:int -> global:Rights.t -> t
(** A NULL mapping for a page of stretch [sid]: invalid, no frame. *)

val valid : t -> bool
(** Is there a physical frame behind this entry? *)

val pfn : t -> int
(** Frame number; meaningless unless [valid]. *)

val sid : t -> int
(** Stretch id owning this page (0 = none). *)

val global : t -> Rights.t
(** Global (default) protection for the page, used when the accessing
    protection domain has no explicit entry for the stretch. *)

val dirty : t -> bool
val referenced : t -> bool
val fow : t -> bool
val for_ : t -> bool

val set_valid : t -> pfn:int -> t
(** Install a frame; sets FOR/FOW so first read/write fault to the
    PALcode emulation that maintains referenced/dirty. *)

val set_invalid : t -> t
(** Remove the frame but keep the NULL mapping (sid + protection). *)

val with_global : t -> Rights.t -> t
val with_sid : t -> int -> t
val set_dirty : t -> t
val set_referenced : t -> t
val clear_fow : t -> t
val clear_for : t -> t
val clear_dirty : t -> t
val clear_referenced : t -> t
val arm_fow : t -> t
(** Re-arm fault-on-write (used when cleaning a page: the next write
    must mark it dirty again). *)

val arm_for : t -> t

val max_sid : int
val max_pfn : int

val pp : Format.formatter -> t -> unit
