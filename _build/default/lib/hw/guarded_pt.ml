let k = 3
let fanout = 1 lsl k

type tree =
  | Empty
  | Leaf of { key : int; len : int; pte : Pte.t }
  | Node of { guard : int; glen : int; slots : tree array }

type t = { mutable root : tree; width : int; mutable entries : int }

(* All keys at a given depth have the same remaining length [len],
   which is always a multiple of [k]; guards also have lengths that
   are multiples of [k], so the invariant is preserved down the trie. *)

let create ?(va_bits = 32) () =
  let vpn_bits = va_bits - Addr.page_shift in
  let width = (vpn_bits + k - 1) / k * k in
  { root = Empty; width; entries = 0 }

let top_bits key len n = key lsr (len - n)
let low_bits key n = key land ((1 lsl n) - 1)

(* Length of the longest common prefix of two [len]-bit strings. *)
let lcp a b len =
  let x = a lxor b in
  if x = 0 then len
  else begin
    let rec highest i = if x lsr i <> 0 then highest (i + 1) else i in
    len - highest 0
  end

let quantize n = n / k * k

let rec insert tree key len pte =
  match tree with
  | Empty -> Leaf { key; len; pte }
  | Leaf l when l.key = key -> Leaf { l with pte }
  | Leaf l ->
    let p = lcp key l.key len in
    let glen = quantize (min p (len - k)) in
    let node =
      Node
        { guard = top_bits key len glen;
          glen;
          slots = Array.make fanout Empty }
    in
    let node = insert node l.key len l.pte in
    insert node key len pte
  | Node n ->
    let g = top_bits key len n.glen in
    if g <> n.guard then begin
      (* Split: introduce a parent whose guard is the common prefix of
         the two guards, and push the existing node one level down. *)
      let p = lcp g n.guard n.glen in
      let glen2 = quantize p in
      (* g <> guard implies p < glen, so glen2 <= glen - k after
         quantisation (glen is a multiple of k). *)
      let parent_slots = Array.make fanout Empty in
      let child_glen = n.glen - glen2 - k in
      let old_idx = top_bits (low_bits n.guard (n.glen - glen2)) (n.glen - glen2) k in
      parent_slots.(old_idx) <-
        Node { guard = low_bits n.guard child_glen; glen = child_glen;
               slots = n.slots };
      let parent =
        Node { guard = top_bits key len glen2; glen = glen2;
               slots = parent_slots }
      in
      insert parent key len pte
    end
    else begin
      let rest_len = len - n.glen in
      let idx = top_bits (low_bits key rest_len) rest_len k in
      let child_len = rest_len - k in
      let child_key = low_bits key child_len in
      n.slots.(idx) <- insert n.slots.(idx) child_key child_len pte;
      tree
    end

(* After a removal a node may be left with zero children (drop it) or a
   single Leaf child (path-compress: splice guard, slot index and leaf
   key back together). Chains of Nodes are left alone — compressing
   them would require re-walking subtrees for no lookup-cost gain
   beyond one level per deletion. *)
let collapse ~guard ~glen ~slots ~len ~original =
  let nonempty = ref [] in
  Array.iteri
    (fun i s -> if s <> Empty then nonempty := (i, s) :: !nonempty)
    slots;
  match !nonempty with
  | [] -> Empty
  | [ (i, Leaf l) ] ->
    let child_len = len - glen - k in
    assert (l.len = child_len);
    Leaf
      { key = (guard lsl (k + child_len)) lor (i lsl child_len) lor l.key;
        len;
        pte = l.pte }
  | _ -> original

let rec remove tree key len =
  match tree with
  | Empty -> Empty
  | Leaf l -> if l.key = key then Empty else tree
  | Node n ->
    let g = top_bits key len n.glen in
    if g <> n.guard then tree
    else begin
      let rest_len = len - n.glen in
      let idx = top_bits (low_bits key rest_len) rest_len k in
      let child_len = rest_len - k in
      n.slots.(idx) <- remove n.slots.(idx) (low_bits key child_len) child_len;
      collapse ~guard:n.guard ~glen:n.glen ~slots:n.slots ~len ~original:tree
    end

let rec find tree key len refs =
  match tree with
  | Empty -> (Pte.absent, refs)
  | Leaf l -> if l.key = key then (l.pte, refs + 1) else (Pte.absent, refs + 1)
  | Node n ->
    let g = top_bits key len n.glen in
    if g <> n.guard then (Pte.absent, refs + 1)
    else begin
      let rest_len = len - n.glen in
      let idx = top_bits (low_bits key rest_len) rest_len k in
      let child_len = rest_len - k in
      find n.slots.(idx) (low_bits key child_len) child_len (refs + 1)
    end

let lookup t vpn = fst (find t.root vpn t.width 0)

let lookup_refs t vpn = max 1 (snd (find t.root vpn t.width 0))

let set t vpn pte =
  let had = not (Pte.is_absent (lookup t vpn)) in
  if Pte.is_absent pte then begin
    t.root <- remove t.root vpn t.width;
    if had then t.entries <- t.entries - 1
  end
  else begin
    t.root <- insert t.root vpn t.width pte;
    if not had then t.entries <- t.entries + 1
  end

let depth_stats t =
  let maxd = ref 0 in
  let rec walk tree d =
    match tree with
    | Empty -> ()
    | Leaf _ -> if d > !maxd then maxd := d
    | Node n -> Array.iter (fun s -> walk s (d + 1)) n.slots
  in
  walk t.root 1;
  (t.entries, !maxd)

let impl t =
  { Page_table.kind = "guarded";
    lookup = lookup t;
    set = set t;
    lookup_refs = lookup_refs t;
    entries = (fun () -> t.entries) }
