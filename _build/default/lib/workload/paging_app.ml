open Engine
open Hw
open Core

type mode = Paging_in | Paging_out

type t = {
  d : System.domain;
  stretch : Stretch.t;
  info : unit -> Sd_paged.info;
  bytes : int ref;
  watcher : Sampler.t;
  (* Instant at which the measured loop began (init/populate done). *)
  loop_start : Time.t option ref;
}

let domain t = t.d
let bytes_processed t = !(t.bytes)
let sampler t = t.watcher
let in_measured_loop t = !(t.loop_start) <> None
let loop_started_at t = !(t.loop_start)

let sustained_mbit t =
  match !(t.loop_start) with
  | None -> nan
  | Some start -> Sampler.sustained t.watcher ~after:(Time.add start (Time.sec 5)) ()

let paging_info t = t.info ()
let stop t = Domains.kill t.d.System.dom

(* Touch every page of the stretch once, charging the trivial per-page
   computation, and count the bytes processed. *)
let sweep t ~access ~compute_per_page =
  let dom = t.d.System.dom in
  let npages = Stretch.npages t.stretch in
  for i = 0 to npages - 1 do
    Domains.access dom (Stretch.page_base t.stretch i) access;
    Domains.consume_cpu dom compute_per_page;
    t.bytes := !(t.bytes) + Addr.page_size
  done

let run_app t ~mode ~compute_per_page =
  (* Initialisation: sequential read, demand-zeroing every page. The
     byte counter keeps running; measurement cuts off at [loop_start]. *)
  sweep t ~access:`Read ~compute_per_page;
  match mode with
  | Paging_in ->
    (* Populate the swap file by dirtying every page... *)
    sweep t ~access:`Write ~compute_per_page;
    t.loop_start := Some (Sim.now (Proc.sim (Proc.self ())));
    (* ...then page it all back in, over and over. *)
    let rec loop () =
      sweep t ~access:`Read ~compute_per_page;
      loop ()
    in
    loop ()
  | Paging_out ->
    t.loop_start := Some (Sim.now (Proc.sim (Proc.self ())));
    let rec loop () =
      sweep t ~access:`Write ~compute_per_page;
      loop ()
    in
    loop ()

let start sys ~name ~mode ~qos ?(vm_bytes = 4 * 1024 * 1024)
    ?(phys_frames = 2) ?(swap_bytes = 16 * 1024 * 1024)
    ?(compute_per_page = Time.us 20) ?(sample_period = Time.sec 5)
    ?(cpu_slice = Time.of_ms_float 1.5) ?readahead () =
  match
    System.add_domain sys ~name ~cpu_period:(Time.ms 10) ~cpu_slice
      ~guarantee:phys_frames ~optimistic:0 ()
  with
  | Error _ as e -> e
  | Ok d ->
    (match System.alloc_stretch d ~bytes:vm_bytes () with
    | Error _ as e -> e
    | Ok stretch ->
      let forgetful = mode = Paging_out in
      let started = Sync.Ivar.create () in
      (* Driver creation allocates guaranteed frames and negotiates
         disk QoS, so it runs in the application's own main thread, as
         a real self-paging application's would. *)
      ignore
        (Domains.spawn_thread d.System.dom ~name:"main" (fun () ->
             match
               System.bind_paged d ~forgetful ~initial_frames:phys_frames
                 ?readahead ~swap_bytes ~qos stretch ()
             with
             | Error e -> Sync.Ivar.fill started (Error e)
             | Ok (_driver, info) ->
               let bytes = ref 0 in
               let watcher =
                 Sampler.start (System.sim sys) ~name:(name ^ ".watch")
                   ~period:sample_period ~bytes:(fun () -> !bytes) ()
               in
               let t =
                 { d; stretch; info; bytes; watcher; loop_start = ref None }
               in
               Sync.Ivar.fill started (Ok t);
               run_app t ~mode ~compute_per_page));
      (* Drive the simulation just far enough for setup to finish (the
         caller typically invokes [start] from outside the sim). *)
      let sim = System.sim sys in
      let fuel = ref 1_000_000 in
      while Sync.Ivar.peek started = None && !fuel > 0 do
        if Sim.step sim then decr fuel else fuel := 0
      done;
      (match Sync.Ivar.peek started with
      | Some r -> r
      | None -> Error "application setup did not complete"))
