lib/workload/fs_client.ml: Core Engine Proc Queue Sampler Sync System Time Usbs
