lib/workload/paging_app.mli: Core Engine Sampler Sd_paged System Time Usbs
