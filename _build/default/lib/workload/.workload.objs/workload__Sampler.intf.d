lib/workload/sampler.mli: Engine Sim Stats Time
