lib/workload/sampler.ml: Engine Proc Sim Stats Time
