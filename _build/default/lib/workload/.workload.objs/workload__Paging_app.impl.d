lib/workload/paging_app.ml: Addr Core Domains Engine Hw Proc Sampler Sd_paged Sim Stretch Sync System Time
