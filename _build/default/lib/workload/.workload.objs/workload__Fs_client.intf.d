lib/workload/fs_client.mli: Core Engine Sampler Time Usbs
