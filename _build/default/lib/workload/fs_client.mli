(** The file-system client of Figure 9.

    Reads data sequentially from the file-system partition (a different
    part of the same disk as the swap files), pipelining a significant
    number of transaction requests — trading buffer space against disk
    latency — each the size of a page for homogeneity with the paging
    clients. *)

open Engine

type t

val start :
  Core.System.t -> name:string -> qos:Usbs.Qos.t -> ?depth:int ->
  ?sample_period:Time.span -> unit -> (t, string) result
(** [depth] (default 16) outstanding transactions. *)

val usd_client : t -> Usbs.Usd.client
val bytes_read : t -> int
val sampler : t -> Sampler.t
val sustained_mbit : t -> float
val stop : t -> unit
