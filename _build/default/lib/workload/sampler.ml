open Engine

type t = {
  series : Stats.Series.t;
  proc : Proc.t;
  period : Time.span;
}

let start sim ?(name = "watch") ~period ~bytes () =
  let series = Stats.Series.create () in
  let proc =
    Proc.spawn ~name sim (fun () ->
        let rec loop last_bytes =
          Proc.sleep period;
          let b = bytes () in
          let mbit =
            float_of_int (b - last_bytes) *. 8.0
            /. (float_of_int period /. 1e9) /. 1e6
          in
          Stats.Series.add series (Sim.now sim) mbit;
          loop b
        in
        loop (bytes ()))
  in
  { series; proc; period }

let series t = t.series

let sustained t ?after () =
  let cutoff =
    match after with Some a -> a | None -> 2 * t.period
  in
  Stats.Series.mean_after t.series cutoff

let stop t = Proc.kill t.proc
