(** The paper's test application.

    Creates a paged stretch driver with a tiny amount of physical
    memory (16 KB — two frames) and 16 MB of swap, allocates a 4 MB
    stretch, binds it, and then:

    - initialises by sequentially reading every byte (each page demand
      zeroed);
    - for the {b paging-in} experiment (Fig. 7): writes every byte
      (populating the swap file), then loops sequentially reading every
      byte from the start, wrapping at the top;
    - for the {b paging-out} experiment (Fig. 8): runs a forgetful
      stretch driver and loops sequentially writing every byte.

    A trivial amount of computation is charged per page; a watch thread
    logs bytes processed every 5 seconds. No pre-paging is performed
    despite the predictable reference pattern. *)

open Engine
open Core

type mode = Paging_in | Paging_out

type t

val start :
  System.t -> name:string -> mode:mode -> qos:Usbs.Qos.t ->
  ?vm_bytes:int -> ?phys_frames:int -> ?swap_bytes:int ->
  ?compute_per_page:Time.span -> ?sample_period:Time.span ->
  ?cpu_slice:Time.span -> ?readahead:int -> unit -> (t, string) result

val domain : t -> System.domain
val bytes_processed : t -> int
val sampler : t -> Sampler.t
val sustained_mbit : t -> float
(** Mean Mbit/s over samples taken after the measured loop began
    ([nan] while still initialising). *)

val in_measured_loop : t -> bool
val loop_started_at : t -> Time.t option
val paging_info : t -> Sd_paged.info
val stop : t -> unit
(** Kill the application's domain. *)
