(** Progress sampling: the paper's "watch thread".

    Wakes up every [period] (5 s in the experiments), reads a byte
    counter and logs throughput in Mbit/s for that window. *)

open Engine

type t

val start :
  Sim.t -> ?name:string -> period:Time.span -> bytes:(unit -> int) -> unit ->
  t

val series : t -> Stats.Series.t
(** (sample time, Mbit/s over the preceding window). *)

val sustained : t -> ?after:Time.t -> unit -> float
(** Mean Mbit/s of samples at or after [after] (default: second sample
    onwards, skipping warm-up). *)

val stop : t -> unit
