open Engine

type params = {
  syscall : Time.span;
  vm_map_lookup : Time.span;
  pmap_change : Time.span;
  pmap_check : Time.span;
  fault_kernel : Time.span;
  signal_deliver : Time.span;
  signal_return : Time.span;
  random_touch_penalty : Time.span;
}

let osf1 =
  { syscall = Time.ns 1_900;
    vm_map_lookup = Time.ns 750;
    pmap_change = Time.ns 710;
    pmap_check = Time.ns 25;
    fault_kernel = Time.ns 4_000;
    signal_deliver = Time.ns 3_500;
    signal_return = Time.ns 2_800;
    random_touch_penalty = Time.ns 5_000 }

let dirty _p = None

let protect_pages p ~n ~alternating =
  if n <= 0 then invalid_arg "Unix_vm.protect_pages: n <= 0";
  let per_page = if alternating then p.pmap_change else p.pmap_check in
  p.syscall + p.vm_map_lookup + (n * per_page)

let trap p = p.fault_kernel + p.signal_deliver + p.signal_return

let appel1 p =
  (* Access a protected page; unprotect it and protect another inside
     the handler: a trap plus two real single-page mprotects. *)
  trap p + (2 * protect_pages p ~n:1 ~alternating:true)

let appel2_per_fault p =
  (* Protect 100 pages, touch each in random order, unprotect in the
     handler: per fault, one trap, one single-page unprotect, 1/100th
     of the initial 100-page protect, plus the random-order penalty. *)
  trap p
  + protect_pages p ~n:1 ~alternating:true
  + (protect_pages p ~n:100 ~alternating:true / 100)
  + p.random_touch_penalty
