(** Monolithic-kernel VM cost model (the paper's OSF1 V4.0 comparison).

    Table 1 compares Nemesis against Digital OSF1 V4.0 on the same
    hardware. We cannot run OSF1, so this module models the structure
    of its VM operations — syscall entry/exit, vm_map lookup, per-page
    pmap updates with TLB shootdown, and signal-based user fault
    delivery — with component latencies calibrated so that the
    composite operations land near the figures the paper measured on
    the real system. The {e shape} (per-page costs, signal overhead
    dominating the trap path) is structural; only the scale constants
    come from the paper.

    All results are in simulated nanoseconds. *)

open Engine

type params = {
  syscall : Time.span;        (** kernel entry/exit for a VM syscall *)
  vm_map_lookup : Time.span;  (** find the map entry for a range *)
  pmap_change : Time.span;    (** change one page's pmap entry + TLB shootdown *)
  pmap_check : Time.span;     (** per-page no-op check when nothing changes *)
  fault_kernel : Time.span;   (** kernel vm_fault processing *)
  signal_deliver : Time.span; (** build and deliver a signal frame *)
  signal_return : Time.span;  (** sigreturn back to the faulting context *)
  random_touch_penalty : Time.span;
      (** cache-unfriendly extra cost per randomly-ordered fault
          (visible in the paper's appel2 row) *)
}

val osf1 : params

val dirty : params -> Time.span option
(** OSF1 exposes no user-level dirty query: [None] (the paper's
    "n/a"). *)

val protect_pages : params -> n:int -> alternating:bool -> Time.span
(** mprotect over [n] pages. [alternating] forces a real permission
    flip on every page (the paper's "Nemesis semantics", ≈75 µs for
    100 pages); otherwise the kernel's lazy path only checks. *)

val trap : params -> Time.span
(** User-level fault handler round trip via a signal. *)

val appel1 : params -> Time.span
(** prot1 + trap + unprot. *)

val appel2_per_fault : params -> Time.span
(** protN + trap + unprot, amortised per fault over N = 100. *)
