(** Microkernel-style external pager (the left half of the paper's
    Figure 2), used to {e measure} the QoS crosstalk that self-paging
    eliminates.

    A single pager domain backs the stretches of many client
    applications. Faulting clients' worker threads perform IDC to the
    pager, which services faults first-come first-served using {e its
    own} resources: one CPU contract, one frames pool, and one USD
    client shared by all paging traffic. Consequently:

    - a client that faults heavily consumes pager CPU and disk time
      that is accounted to the pager, not to itself (no
      responsibility);
    - the pager has no idea of its clients' timeliness constraints, so
      a latency-sensitive client queues behind a batch hog (no
      isolation). *)

open Engine
open Core

type t

val create :
  System.t -> ?frames:int -> ?qos:Usbs.Qos.t -> ?cpu_slice:Time.span ->
  unit -> (t, string) result
(** Creates the pager domain with a generous frame pool (default 64
    frames) and a single disk guarantee (default 50%) for {e all}
    paging. *)

val attach :
  t -> System.domain -> Stretch.t -> ?swap_bytes:int -> ?cache_frames:int ->
  ?forgetful:bool -> unit -> (Stretch_driver.t, string) result
(** Give the stretch external-pager backing: binds a proxy driver in
    the client's MMEntry whose full path ships the fault to the pager
    queue; the pager resolves it with a paged driver running on the
    pager's own resources ([cache_frames] per client, default 2). *)

val queue_depth : t -> int
val faults_handled : t -> int
val pager_domain : t -> System.domain
