lib/baseline/external_pager.ml: Core Cost Domains Engine Fault Hw Mm_entry Pdom Printf Rights Sd_paged Stretch Stretch_driver Sync System Time Usbs
