lib/baseline/external_pager.mli: Core Engine Stretch Stretch_driver System Time Usbs
