lib/baseline/unix_vm.mli: Engine Time
