lib/baseline/unix_vm.ml: Engine Time
