open Engine

type t = {
  nblocks : int;
  block_size : int;
  heads : int;
  sectors_per_track : int;
  rotation : Time.span;
  seek_min : Time.span;
  seek_max : Time.span;
  head_switch : Time.span;
  controller_overhead : Time.span;
  bus_rate : float;
  cache_segments : int;
  write_cache : bool;
}

let vp3221 =
  { nblocks = 4_304_536;
    block_size = 512;
    heads = 6;
    sectors_per_track = 256;
    rotation = Time.of_us_float 11_111.1; (* 5400 rpm *)
    seek_min = Time.of_ms_float 2.5;
    seek_max = Time.of_ms_float 22.0;
    head_switch = Time.of_ms_float 1.0;
    controller_overhead = Time.of_us_float 300.0;
    bus_rate = 10.0e6; (* Fast SCSI-2 *)
    cache_segments = 4;
    write_cache = false }

let blocks_per_track t = t.sectors_per_track

let blocks_per_cylinder t = t.heads * t.sectors_per_track

let cylinders t = (t.nblocks + blocks_per_cylinder t - 1) / blocks_per_cylinder t

let cylinder_of_lba t lba = lba / blocks_per_cylinder t

let sector_in_track t lba = lba mod t.sectors_per_track

let media_rate t =
  float_of_int (t.sectors_per_track * t.block_size)
  /. (float_of_int t.rotation /. 1e9)

let seek_time t distance =
  if distance <= 0 then 0
  else begin
    let frac =
      sqrt (float_of_int distance /. float_of_int (max 1 (cylinders t - 1)))
    in
    let min_ns = float_of_int t.seek_min and max_ns = float_of_int t.seek_max in
    int_of_float (min_ns +. ((max_ns -. min_ns) *. frac))
  end
