(** Disk geometry and timing parameters.

    Defaults model the paper's drive: a Quantum VP3221 — 2.1 GB
    (4,304,536 × 512-byte blocks), 5400 rpm, Fast SCSI-2, read cache
    enabled, write cache disabled. Zoned recording is approximated by a
    uniform sectors-per-track figure chosen to match the drive's total
    capacity and sustained media rate. *)

open Engine

type t = {
  nblocks : int;          (** total 512-byte blocks *)
  block_size : int;       (** bytes per block *)
  heads : int;            (** tracks per cylinder *)
  sectors_per_track : int;
  rotation : Time.span;   (** time of one revolution *)
  seek_min : Time.span;   (** single-cylinder seek *)
  seek_max : Time.span;   (** full-stroke seek *)
  head_switch : Time.span;
  controller_overhead : Time.span; (** per-transaction command overhead *)
  bus_rate : float;       (** host transfer rate, bytes per second *)
  cache_segments : int;   (** read-ahead segments in the drive cache *)
  write_cache : bool;     (** paper's configuration: disabled *)
}

val vp3221 : t

val cylinders : t -> int
val blocks_per_cylinder : t -> int
val blocks_per_track : t -> int

val cylinder_of_lba : t -> int -> int
val sector_in_track : t -> int -> int

val media_rate : t -> float
(** Sustained media transfer rate in bytes per second (one track per
    revolution). *)

val seek_time : t -> int -> Time.span
(** [seek_time p distance] for a move of [distance] cylinders; a
    square-root curve between [seek_min] and [seek_max]. *)
