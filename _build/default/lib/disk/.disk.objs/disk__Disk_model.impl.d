lib/disk/disk_model.ml: Array Disk_params Engine Format Printf Time
