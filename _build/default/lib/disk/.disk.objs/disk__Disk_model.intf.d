lib/disk/disk_model.mli: Disk_params Engine Format Time
