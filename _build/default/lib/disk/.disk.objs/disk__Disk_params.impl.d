lib/disk/disk_params.ml: Engine Time
