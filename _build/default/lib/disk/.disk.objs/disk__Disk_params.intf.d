lib/disk/disk_params.mli: Engine Time
