open Engine

type flow = {
  fname : string;
  ring : int Queue.t;
  ring_size : int;
  receivers : (int -> unit) Queue.t;
  mutable received : int;
  mutable dropped : int;
  mutable open_ : bool;
}

type t = { flows : (string, flow) Hashtbl.t }

let create _sim = { flows = Hashtbl.create 8 }

let open_flow t ~name ?(ring = 32) () =
  if ring <= 0 then Error "ring size must be positive"
  else if Hashtbl.mem t.flows name then
    Error (Printf.sprintf "flow %S already open" name)
  else begin
    let f =
      { fname = name; ring = Queue.create (); ring_size = ring;
        receivers = Queue.create (); received = 0; dropped = 0; open_ = true }
    in
    Hashtbl.replace t.flows name f;
    Ok f
  end

let close_flow t f =
  if f.open_ then begin
    f.open_ <- false;
    Hashtbl.remove t.flows f.fname
  end

let deliver t ~name ~bytes =
  match Hashtbl.find_opt t.flows name with
  | None -> `No_flow
  | Some f ->
    (match Queue.take_opt f.receivers with
    | Some wake ->
      f.received <- f.received + 1;
      wake bytes;
      `Queued
    | None ->
      if Queue.length f.ring >= f.ring_size then begin
        (* User-safe: the flow's own ring is full; the loss is the
           flow owner's, nobody else's. *)
        f.dropped <- f.dropped + 1;
        `Dropped
      end
      else begin
        Queue.add bytes f.ring;
        f.received <- f.received + 1;
        `Queued
      end)

let try_recv f = Queue.take_opt f.ring

let recv f =
  match Queue.take_opt f.ring with
  | Some bytes -> bytes
  | None -> Proc.suspend (fun wake -> Queue.add wake f.receivers)

let received f = f.received
let dropped f = f.dropped
let flow_name f = f.fname
