(** User-safe receive demultiplexing.

    The Nemesis network work the paper cites demultiplexes incoming
    packets at the lowest level into {e per-flow} receive rings
    provided by the applications themselves (the rbufs scheme). The
    user-safe property: buffering for a flow is accounted to the flow's
    owner, so a slow or flooded receiver loses {e its own} packets when
    its ring fills — it cannot consume shared buffering or another
    flow's.

    [deliver] is the driver side (called per incoming frame); [recv]
    is the application side. *)

open Engine

type t

type flow

val create : Sim.t -> t

val open_flow : t -> name:string -> ?ring:int -> unit -> (flow, string) result
(** [ring] (default 32) slots, owned by the flow. Duplicate names are
    refused. *)

val close_flow : t -> flow -> unit

val deliver : t -> name:string -> bytes:int -> [ `Queued | `Dropped | `No_flow ]
(** Demultiplex one incoming frame to the named flow. *)

val recv : flow -> int
(** Next frame's size; blocks while the ring is empty. *)

val try_recv : flow -> int option

val received : flow -> int
(** Frames successfully queued. *)

val dropped : flow -> int
(** Frames dropped because this flow's ring was full. *)

val flow_name : flow -> string
