lib/usnet/link.mli: Engine Net_params Sim Sync Time Trace
