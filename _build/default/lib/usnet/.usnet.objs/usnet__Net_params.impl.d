lib/usnet/net_params.ml: Engine Printf Time
