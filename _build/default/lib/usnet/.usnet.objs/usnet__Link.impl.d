lib/usnet/link.ml: Edf Engine List Net_params Option Proc Queue Sched Sim Sync Time Trace
