lib/usnet/rx.ml: Engine Hashtbl Printf Proc Queue
