lib/usnet/net_params.mli: Engine Time
