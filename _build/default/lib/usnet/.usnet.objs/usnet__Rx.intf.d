lib/usnet/rx.mli: Engine Sim
