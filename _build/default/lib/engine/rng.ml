type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ~seed = { state = mix (Int64.of_int seed) }

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = int64 t in
  { state = seed }

let int t bound =
  assert (bound > 0);
  (* Mask to OCaml's positive int range (to_int keeps the low 63 bits,
     which can read as negative). *)
  let v = Int64.to_int (int64 t) land max_int in
  v mod bound

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  (* 53 random bits, scaled to [0,1). *)
  v /. 9007199254740992.0 *. bound

let bool t = Int64.logand (int64 t) 1L = 1L

let exponential t ~mean =
  let u = float t 1.0 in
  let u = if u <= 0.0 then 1e-12 else u in
  -.mean *. log u
