(** Synchronisation primitives for {!Proc} processes.

    All blocking operations must be called from inside a process. The
    wake-up side ([fill], [send], [signal], ...) may be called from
    anywhere, including plain simulator callbacks. *)

module Ivar : sig
  (** Write-once cell. *)

  type 'a t

  val create : unit -> 'a t

  val fill : 'a t -> 'a -> unit
  (** Raises [Invalid_argument] if already filled. *)

  val try_fill : 'a t -> 'a -> bool

  val read : 'a t -> 'a
  (** Block until filled, then return the value. *)

  val read_timeout : 'a t -> Time.span -> 'a option
  (** Block until filled or until the timeout elapses ([None]). *)

  val peek : 'a t -> 'a option
  val is_filled : 'a t -> bool
end

module Mailbox : sig
  (** Unbounded FIFO queue with blocking receive. *)

  type 'a t

  val create : unit -> 'a t
  val send : 'a t -> 'a -> unit

  val recv : 'a t -> 'a
  (** Block until a message is available. Messages are delivered in
      FIFO order; competing receivers are served in arrival order. *)

  val try_recv : 'a t -> 'a option
  val length : 'a t -> int
end

module Semaphore : sig
  type t

  val create : int -> t
  (** Initial count must be >= 0. *)

  val acquire : t -> unit
  val try_acquire : t -> bool
  val release : t -> unit
  val count : t -> int
end

module Waitq : sig
  (** Condition-variable-like wait queue (no associated lock — the
      simulator is cooperatively scheduled so there is no data race to
      guard against; re-check your predicate after waking). *)

  type t

  val create : unit -> t
  val wait : t -> unit

  val wait_timeout : t -> Time.span -> bool
  (** [wait_timeout q d] waits for a signal for at most [d]; [true]
      means signalled, [false] means timed out. A timed-out waiter
      consumes the next [signal] harmlessly (it is woken and ignores
      it), so prefer [broadcast] when mixing with timeouts. *)

  val signal : t -> unit
  (** Wake one waiter, if any. *)

  val broadcast : t -> unit
  (** Wake all current waiters. *)

  val waiters : t -> int
end
