(** Time-stamped trace buffers.

    The paper's Figures 7 and 8 include USD-scheduler traces recording
    every transaction, period-boundary allocation and lax-time charge.
    A ['a Trace.t] is a generic append-only buffer of [(time, 'a)]
    records used for exactly that. *)

type 'a t

val create : unit -> 'a t

val record : 'a t -> Time.t -> 'a -> unit

val length : 'a t -> int

val to_list : 'a t -> (Time.t * 'a) list

val filter : ('a -> bool) -> 'a t -> (Time.t * 'a) list

val between : 'a t -> Time.t -> Time.t -> (Time.t * 'a) list
(** Records with timestamp in [\[lo, hi)]. *)

val iter : (Time.t -> 'a -> unit) -> 'a t -> unit
