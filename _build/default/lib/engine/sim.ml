type handle = { mutable cancelled : bool; fn : unit -> unit; live : int ref }

type t = {
  mutable clock : Time.t;
  queue : handle Heap.t;
  mutable seq : int;
  live : int ref; (* scheduled and not cancelled *)
  root_rng : Rng.t;
}

let create ?(seed = 42) () =
  { clock = Time.zero; queue = Heap.create (); seq = 0; live = ref 0;
    root_rng = Rng.create ~seed }

let now t = t.clock

let rng t = t.root_rng

let at t time fn =
  if time < t.clock then
    invalid_arg
      (Format.asprintf "Sim.at: %a is in the past (now %a)" Time.pp time
         Time.pp t.clock);
  let h = { cancelled = false; fn; live = t.live } in
  Heap.push t.queue ~key:time ~sub:t.seq h;
  t.seq <- t.seq + 1;
  incr t.live;
  h

let after t d fn = at t (Time.add t.clock d) fn

(* [live] is decremented exactly once per handle: either at [cancel]
   time, or when a non-cancelled handle is popped and executed. *)
let cancel h =
  if not h.cancelled then begin
    h.cancelled <- true;
    decr h.live
  end

let rec step t =
  match Heap.pop t.queue with
  | None -> false
  | Some (time, _, h) ->
    if h.cancelled then step t
    else begin
      decr t.live;
      t.clock <- time;
      h.fn ();
      true
    end

let run ?until t =
  let continue = ref true in
  while !continue do
    match Heap.peek t.queue with
    | None -> continue := false
    | Some (time, _, h) ->
      let past_limit =
        match until with Some limit -> time > limit | None -> false
      in
      if past_limit then begin
        (match until with Some limit -> t.clock <- limit | None -> ());
        continue := false
      end
      else begin
        ignore (Heap.pop t.queue);
        if not h.cancelled then begin
          decr t.live;
          t.clock <- time;
          h.fn ()
        end
      end
  done;
  match until with
  | Some limit when t.clock < limit -> t.clock <- limit
  | _ -> ()

let pending t = !(t.live)
