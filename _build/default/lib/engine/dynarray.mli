(** Growable array (subset of the stdlib [Dynarray] that arrived in
    OCaml 5.2; this project targets 5.1). *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val get : 'a t -> int -> 'a
(** Raises [Invalid_argument] when out of bounds. *)

val set : 'a t -> int -> 'a -> unit
val add_last : 'a t -> 'a -> unit
val clear : 'a t -> unit
val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val to_array : 'a t -> 'a array
val to_list : 'a t -> 'a list
