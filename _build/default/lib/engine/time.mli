(** Simulated time.

    All simulation time is carried as an integer number of nanoseconds
    since the start of the run. A 63-bit [int] gives ~292 years of
    nanoseconds, far more than any experiment needs, while keeping
    arithmetic allocation-free. *)

type t = int
(** An absolute instant, in nanoseconds since simulation start. *)

type span = int
(** A duration in nanoseconds. Spans may be negative (e.g. the
    roll-over accounting in the USD scheduler tracks deficits as
    negative remaining time). *)

val zero : t

val ns : int -> span
(** [ns n] is a span of [n] nanoseconds. *)

val us : int -> span
(** [us n] is a span of [n] microseconds. *)

val ms : int -> span
(** [ms n] is a span of [n] milliseconds. *)

val sec : int -> span
(** [sec n] is a span of [n] seconds. *)

val of_us_float : float -> span
(** [of_us_float x] converts a (possibly fractional) number of
    microseconds to a span, rounding to the nearest nanosecond. *)

val of_ms_float : float -> span

val to_ns : t -> int
val to_us : t -> float
val to_ms : t -> float
val to_sec : t -> float

val add : t -> span -> t
val diff : t -> t -> span

val min : t -> t -> t
val max : t -> t -> t

val pp : Format.formatter -> t -> unit
(** Pretty-print an instant with an adaptive unit, e.g. ["1.250ms"]. *)

val pp_span : Format.formatter -> span -> unit
