type 'a t = (Time.t * 'a) Dynarray.t

let create () = Dynarray.create ()

let record t time v = Dynarray.add_last t (time, v)

let length = Dynarray.length

let to_list = Dynarray.to_list

let filter p t =
  Dynarray.fold_left
    (fun acc (time, v) -> if p v then (time, v) :: acc else acc)
    [] t
  |> List.rev

let between t lo hi =
  Dynarray.fold_left
    (fun acc (time, v) ->
      if time >= lo && time < hi then (time, v) :: acc else acc)
    [] t
  |> List.rev

let iter f t = Dynarray.iter (fun (time, v) -> f time v) t
