(** Deterministic pseudo-random number generator (splitmix64).

    Every stochastic choice in the simulator draws from an explicit
    [Rng.t] so that runs are reproducible given a seed, and independent
    subsystems can be given split streams that do not interact. *)

type t

val create : seed:int -> t

val split : t -> t
(** Derive an independent stream from the current state. *)

val int64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be > 0. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val exponential : t -> mean:float -> float
(** Exponentially distributed sample with the given mean. *)
