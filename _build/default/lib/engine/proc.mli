(** Green processes on top of {!Sim}, implemented with OCaml effects.

    A process is a cooperative coroutine whose blocking operations
    ({!sleep}, {!suspend} and everything in {!Sync}) advance simulated
    time instead of real time. Processes must only perform blocking
    operations while running inside the simulator's event loop. *)

type t

exception Killed
(** Raised inside a process when it is resumed after {!kill}. *)

val spawn : ?name:string -> Sim.t -> (unit -> unit) -> t
(** [spawn sim body] creates a process that starts executing [body] at
    the current simulated instant (as a freshly scheduled event).
    Uncaught exceptions other than {!Killed} escape the event loop and
    abort the run — deliberate, so tests fail loudly. *)

val self : unit -> t
(** The currently running process. Raises [Failure] outside one. *)

val sim : t -> Sim.t
val name : t -> string

val current_sim : unit -> Sim.t
(** Simulator of the currently running process. *)

val sleep : Time.span -> unit
(** Block the current process for a simulated duration (>= 0). *)

val sleep_until : Time.t -> unit

val yield : unit -> unit
(** Reschedule the current process at the same instant, letting other
    events due now run first. *)

val suspend : (('a -> unit) -> unit) -> 'a
(** [suspend register] blocks the current process; [register] receives
    a one-shot [wake] function that, when called (now or later),
    schedules the process to resume with the given value. Extra calls
    to [wake] are ignored. *)

val kill : t -> unit
(** Mark the process dead. If it is blocked, it is woken immediately
    and {!Killed} is raised at its suspension point. Killing a
    finished process is a no-op. *)

val is_alive : t -> bool

val on_terminate : t -> (unit -> unit) -> unit
(** Register a callback to run when the process finishes, is killed,
    or dies with an exception. Runs immediately if already dead. *)

val join : t -> unit
(** Block until the given process terminates. *)
