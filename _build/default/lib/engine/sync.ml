module Ivar = struct
  type 'a state = Empty of ('a -> unit) list | Full of 'a

  type 'a t = { mutable state : 'a state }

  let create () = { state = Empty [] }

  let try_fill t v =
    match t.state with
    | Full _ -> false
    | Empty waiters ->
      t.state <- Full v;
      List.iter (fun wake -> wake v) (List.rev waiters);
      true

  let fill t v =
    if not (try_fill t v) then invalid_arg "Ivar.fill: already filled"

  let read t =
    match t.state with
    | Full v -> v
    | Empty _ ->
      Proc.suspend (fun wake ->
          match t.state with
          | Full v -> wake v
          | Empty waiters -> t.state <- Empty (wake :: waiters))

  let read_timeout t d =
    match t.state with
    | Full v -> Some v
    | Empty _ ->
      let sim = Proc.current_sim () in
      let timer = ref None in
      let r =
        Proc.suspend (fun wake ->
            (match t.state with
            | Full v -> wake (Some v)
            | Empty waiters ->
              t.state <- Empty ((fun v -> wake (Some v)) :: waiters));
            timer := Some (Sim.after sim d (fun () -> wake None)))
      in
      (match (r, !timer) with
      | Some _, Some h -> Sim.cancel h
      | _ -> ());
      r

  let peek t = match t.state with Full v -> Some v | Empty _ -> None
  let is_filled t = match t.state with Full _ -> true | Empty _ -> false
end

module Mailbox = struct
  type 'a t = {
    items : 'a Queue.t;
    receivers : ('a -> unit) Queue.t;
  }

  let create () = { items = Queue.create (); receivers = Queue.create () }

  let send t v =
    match Queue.take_opt t.receivers with
    | Some wake -> wake v
    | None -> Queue.add v t.items

  let try_recv t = Queue.take_opt t.items

  let recv t =
    match Queue.take_opt t.items with
    | Some v -> v
    | None -> Proc.suspend (fun wake -> Queue.add wake t.receivers)

  let length t = Queue.length t.items
end

module Semaphore = struct
  type t = { mutable count : int; waiters : (unit -> unit) Queue.t }

  let create n =
    if n < 0 then invalid_arg "Semaphore.create: negative count";
    { count = n; waiters = Queue.create () }

  let try_acquire t =
    if t.count > 0 then begin
      t.count <- t.count - 1;
      true
    end
    else false

  let acquire t =
    if not (try_acquire t) then
      Proc.suspend (fun wake -> Queue.add wake t.waiters)

  let release t =
    match Queue.take_opt t.waiters with
    | Some wake -> wake ()
    | None -> t.count <- t.count + 1

  let count t = t.count
end

module Waitq = struct
  type t = { mutable waiters : (unit -> unit) list }

  let create () = { waiters = [] }

  let wait t = Proc.suspend (fun wake -> t.waiters <- wake :: t.waiters)

  let wait_timeout t d =
    let sim = Proc.current_sim () in
    let timer = ref None in
    let signalled =
      Proc.suspend (fun wake ->
          t.waiters <- (fun () -> wake true) :: t.waiters;
          timer := Some (Sim.after sim d (fun () -> wake false)))
    in
    (match !timer with
    | Some h -> if signalled then Sim.cancel h
    | None -> ());
    signalled

  let signal t =
    match List.rev t.waiters with
    | [] -> ()
    | wake :: rest ->
      t.waiters <- List.rev rest;
      wake ()

  let broadcast t =
    let ws = List.rev t.waiters in
    t.waiters <- [];
    List.iter (fun wake -> wake ()) ws

  let waiters t = List.length t.waiters
end
