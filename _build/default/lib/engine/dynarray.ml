type 'a t = { mutable arr : 'a array; mutable len : int }

let create () = { arr = [||]; len = 0 }

let length t = t.len
let is_empty t = t.len = 0

let check t i =
  if i < 0 || i >= t.len then invalid_arg "Dynarray: index out of bounds"

let get t i =
  check t i;
  t.arr.(i)

let set t i v =
  check t i;
  t.arr.(i) <- v

let add_last t v =
  let cap = Array.length t.arr in
  if t.len = cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let narr = Array.make ncap v in
    Array.blit t.arr 0 narr 0 t.len;
    t.arr <- narr
  end;
  t.arr.(t.len) <- v;
  t.len <- t.len + 1

let clear t =
  t.arr <- [||];
  t.len <- 0

let iter f t =
  for i = 0 to t.len - 1 do
    f t.arr.(i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.arr.(i)
  done

let fold_left f init t =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc t.arr.(i)
  done;
  !acc

let to_array t = Array.sub t.arr 0 t.len

let to_list t = Array.to_list (to_array t)
