lib/engine/sim.ml: Format Heap Rng Time
