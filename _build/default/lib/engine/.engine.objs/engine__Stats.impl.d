lib/engine/stats.ml: Array Dynarray Format List Time
