lib/engine/trace.ml: Dynarray List Time
