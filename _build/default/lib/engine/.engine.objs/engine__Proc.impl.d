lib/engine/proc.ml: Effect Fun List Sim Time
