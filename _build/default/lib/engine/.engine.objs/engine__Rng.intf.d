lib/engine/rng.mli:
