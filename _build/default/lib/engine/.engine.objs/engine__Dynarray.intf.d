lib/engine/dynarray.mli:
