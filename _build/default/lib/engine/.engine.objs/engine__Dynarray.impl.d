lib/engine/dynarray.ml: Array
