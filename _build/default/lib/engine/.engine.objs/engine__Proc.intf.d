lib/engine/proc.mli: Sim Time
