lib/engine/heap.mli:
