lib/engine/sync.mli: Time
