type 'a entry = { key : int; sub : int; value : 'a }

type 'a t = { mutable arr : 'a entry array; mutable len : int }

let create () = { arr = [||]; len = 0 }

let length h = h.len

let is_empty h = h.len = 0

let less a b = a.key < b.key || (a.key = b.key && a.sub < b.sub)

let grow h e =
  let cap = Array.length h.arr in
  if h.len = cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let narr = Array.make ncap e in
    Array.blit h.arr 0 narr 0 h.len;
    h.arr <- narr
  end

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less h.arr.(i) h.arr.(parent) then begin
      let tmp = h.arr.(i) in
      h.arr.(i) <- h.arr.(parent);
      h.arr.(parent) <- tmp;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.len && less h.arr.(l) h.arr.(!smallest) then smallest := l;
  if r < h.len && less h.arr.(r) h.arr.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = h.arr.(i) in
    h.arr.(i) <- h.arr.(!smallest);
    h.arr.(!smallest) <- tmp;
    sift_down h !smallest
  end

let push h ~key ~sub value =
  let e = { key; sub; value } in
  grow h e;
  h.arr.(h.len) <- e;
  h.len <- h.len + 1;
  sift_up h (h.len - 1)

let pop h =
  if h.len = 0 then None
  else begin
    let top = h.arr.(0) in
    h.len <- h.len - 1;
    if h.len > 0 then begin
      h.arr.(0) <- h.arr.(h.len);
      sift_down h 0
    end;
    Some (top.key, top.sub, top.value)
  end

let peek h =
  if h.len = 0 then None
  else
    let top = h.arr.(0) in
    Some (top.key, top.sub, top.value)

let clear h =
  h.arr <- [||];
  h.len <- 0
