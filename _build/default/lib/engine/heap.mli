(** Binary min-heap keyed by integer priority.

    Used as the simulator's pending-event queue: keys are
    [(time, sequence-number)] pairs encoded by the caller so that ties
    break in insertion order. The implementation is a classic array
    heap with amortised O(log n) push/pop. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> key:int -> sub:int -> 'a -> unit
(** [push h ~key ~sub v] inserts [v] with primary priority [key];
    equal keys are ordered by the secondary priority [sub]. *)

val pop : 'a t -> (int * int * 'a) option
(** Remove and return the minimum element as [(key, sub, value)]. *)

val peek : 'a t -> (int * int * 'a) option

val clear : 'a t -> unit
