(** Discrete-event simulation core.

    A [Sim.t] owns the simulated clock and a priority queue of pending
    callbacks. Events scheduled for the same instant fire in the order
    they were scheduled, which makes every run deterministic. *)

type t

type handle
(** A scheduled event; may be cancelled before it fires. *)

val create : ?seed:int -> unit -> t
(** Fresh simulator with clock at {!Time.zero}. [seed] (default 42)
    initialises the root random stream. *)

val now : t -> Time.t

val rng : t -> Rng.t
(** The simulator's root random stream. Subsystems should {!Rng.split}
    it rather than share it. *)

val at : t -> Time.t -> (unit -> unit) -> handle
(** [at sim t f] schedules [f] to run at absolute time [t]. Scheduling
    in the past raises [Invalid_argument]. *)

val after : t -> Time.span -> (unit -> unit) -> handle
(** [after sim d f] = [at sim (now + d) f]. *)

val cancel : handle -> unit
(** Prevent a pending event from firing; idempotent. *)

val run : ?until:Time.t -> t -> unit
(** Run the event loop until the queue drains, or until the clock would
    pass [until] (the clock is left at [until] in that case). *)

val step : t -> bool
(** Execute the single next event. Returns [false] if the queue was
    empty. *)

val pending : t -> int
(** Number of scheduled (uncancelled) events. *)
