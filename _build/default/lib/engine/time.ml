type t = int
type span = int

let zero = 0

let ns n = n
let us n = n * 1_000
let ms n = n * 1_000_000
let sec n = n * 1_000_000_000

let of_us_float x = int_of_float (Float.round (x *. 1e3))
let of_ms_float x = int_of_float (Float.round (x *. 1e6))

let to_ns t = t
let to_us t = float_of_int t /. 1e3
let to_ms t = float_of_int t /. 1e6
let to_sec t = float_of_int t /. 1e9

let add t d = t + d
let diff a b = a - b

let min = Stdlib.min
let max = Stdlib.max

let pp ppf t =
  let a = abs t in
  if a >= 1_000_000_000 then Format.fprintf ppf "%.3fs" (to_sec t)
  else if a >= 1_000_000 then Format.fprintf ppf "%.3fms" (to_ms t)
  else if a >= 1_000 then Format.fprintf ppf "%.3fus" (to_us t)
  else Format.fprintf ppf "%dns" t

let pp_span = pp
