(** User-level thread scheduler (ULTS).

    "Following this the user-level thread scheduler is entered which
    will select a thread to run." Threads inside a domain are
    scheduled entirely at user level: forking, yielding, blocking and
    unblocking are operations of this module, not of the kernel, and
    each scheduling decision costs the domain its own CPU time (the
    [ults_schedule] entry of the cost model).

    Threads are cooperative: control transfers at {!yield}, {!block}
    and the blocking operations of the runtime. The MMEntry's
    block-the-faulter / unblock-a-worker choreography (Figure 5) is
    exactly this interface. *)

type t

type thread

val create : Domains.t -> t
(** One scheduler per domain. *)

val fork : t -> name:string -> (unit -> unit) -> thread
(** Start a thread (costs one scheduling decision). *)

val self : t -> thread
(** The calling thread. Raises [Failure] from outside any ULTS
    thread. *)

val yield : t -> unit
(** Re-enter the scheduler, letting other runnable work (of this and
    other domains) proceed; charges [ults_schedule]. *)

val block : t -> unit
(** Park the calling thread until somebody {!unblock}s it. *)

val unblock : t -> thread -> unit
(** Make a parked thread runnable again (idempotent for a thread that
    is not parked — the wake-up is remembered so a block/unblock race
    cannot lose a notification). *)

val join : t -> thread -> unit
val alive : thread -> bool
val thread_name : thread -> string
val threads : t -> int
(** Live threads. *)
