(** Stretches: ranges of virtual addresses with an accessibility.

    A stretch owns no physical resources; only through its binding to a
    stretch driver does it acquire backing. Protection is at stretch
    granularity and is changed through this interface, which validates
    that the caller holds the [meta] right and then talks straight to
    the low-level translation system (no system-domain involvement) —
    either by rewriting page-table entries, or by updating a protection
    domain's rights word (the O(1) variant). *)

open Engine
open Hw

type t = {
  sid : int;
  base : Addr.vaddr;
  bytes : int;
  mutable owner : int;  (** owning domain id *)
  global : Rights.t;    (** global rights installed at creation *)
}

val npages : t -> int
val contains : t -> Addr.vaddr -> bool
val page_base : t -> int -> Addr.vaddr
(** Virtual address of the [i]-th page. *)

val page_index : t -> Addr.vaddr -> int
(** Inverse of [page_base] (page containing the address). Raises
    [Invalid_argument] when outside the stretch. *)

val set_rights_pdom :
  t -> caller:Pdom.t -> target:Pdom.t -> Rights.t ->
  (Time.span, Translation.error) result
(** Change [target]'s rights for this stretch — one protection-domain
    update, independent of stretch size. Requires [caller] to hold
    meta. Idempotent changes are detected and are almost free. *)

val set_rights_pt :
  t -> caller:Pdom.t -> Translation.t -> Rights.t ->
  (Time.span, Translation.error) result
(** Change the stretch's global rights by rewriting every PTE in the
    stretch (cost grows with the stretch size). *)

val pp : Format.formatter -> t -> unit
