(** Memory-mapped-file stretch driver.

    The paper closes by arguing that "virtual memory techniques such as
    demand-paging and memory mapped files have proved useful... failing
    to support them in the continuous media operating systems of the
    future would detract value". This driver demonstrates the second
    technique on the same self-paging architecture: a stretch backed by
    a {!Usbs.File_store} file, with all data-path I/O performed through
    the owning domain's own USD client.

    Two mappings:

    - [Shared]: dirty pages are written back to the file at eviction;
    - [Private]: copy-on-write — the file is never modified; a page's
      first dirty eviction copies it to a private backing file (the
      copy cost is charged to the domain), and it pages in from there
      afterwards.

    One driver backs exactly one stretch, like the paged driver. *)

type mode = Shared | Private

type info = {
  file_reads : int;
  file_writebacks : int;  (** Shared mode only *)
  cow_writes : int;       (** first-dirty copies + private re-cleans *)
  cow_reads : int;
  evictions : int;
}

val create :
  ?initial_frames:int -> mode:mode -> store:Usbs.File_store.t ->
  file:Usbs.File_store.file -> client:Usbs.Usd.client ->
  ?cow_backing:Usbs.File_store.file -> Stretch_driver.env ->
  (Stretch_driver.t * (unit -> info), string) result
(** [cow_backing] is required for [Private] (it must have at least as
    many pages as the stretch bound later). *)
