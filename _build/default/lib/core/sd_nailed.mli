(** The nailed stretch driver.

    Provides physical frames to back the whole stretch at bind time, so
    it never deals with page faults: any fault on one of its stretches
    is an error. Frames backing nailed stretches are marked [Nailed] in
    the RamTab and are never offered to the revocation protocol. *)

val create :
  Stretch_driver.env -> (Stretch_driver.t, string) result
(** Fails if the domain's frame contract cannot cover a bind. The
    driver allocates frames lazily at each [bind] call; a bind that
    cannot get enough guaranteed frames raises [Failure] (nailed memory
    must not be optimistic). *)
