(** The paged stretch driver.

    An extension of the physical stretch driver with a binding to the
    User-Safe Backing Store: pages may be swapped in and out of a swap
    file whose disk transactions run under the domain's own disk
    guarantee. Swap space is tracked as a bitmap of {e bloks} (see
    {!Bloks}); a page is assigned a blok the first time it must be
    cleaned, and keeps it (the paper's demand-paged scheme is "fairly
    pure": no pre-paging, eviction strictly on demand, FIFO victims).

    [forgetful] reproduces the paper's paging-{e out} experiment
    (Figure 8): the driver "forgets" that pages have a copy on disk, so
    it never pages in — every fault is a demand-zero fill and every
    eviction is a dirty write-back.

    [readahead] enables the {e stream-paging} extension the paper
    points to as future work: a page-in is widened to a run of up to
    [readahead] further consecutive swapped pages whose bloks are
    contiguous on disk, using only spare frames (never evicting to
    prefetch), so several page-ins collapse into one disk transaction.

    One paged driver backs exactly one stretch. *)

type info = {
  page_ins : int;
  page_outs : int;
  demand_zeros : int;
  evictions : int;
  prefetched : int;  (** pages brought in by stream-paging read-ahead *)
}

val create :
  ?forgetful:bool -> ?initial_frames:int -> ?readahead:int ->
  swap:Usbs.Sfs.swapfile -> Stretch_driver.env ->
  (Stretch_driver.t * (unit -> info), string) result
(** [initial_frames] are allocated from the frames allocator up front
    (the paper's time-sensitive applications take all their guaranteed
    frames at initialisation). Fails if they cannot be obtained or the
    swap file is too small for the stretch once bound. The [info]
    thunk reports paging statistics. *)
