(** Nemesis event channels.

    Events are the kernel's only notification primitive: a transmission
    is a few sanity checks followed by the increment of a 64-bit value,
    after which the receiving domain will, at some future activation,
    observe that the count moved and run the notification handler it
    attached to the endpoint. *)

type t

val create : ?name:string -> unit -> t

val name : t -> string

val send : t -> unit
(** Increment the receive count and prod the receiver. *)

val count : t -> int
(** Total events ever sent. *)

val acked : t -> int
(** Events already processed by the receiver. *)

val pending : t -> int

val ack : t -> int
(** Consume all pending events; returns how many there were. *)

val attach : t -> (unit -> unit) -> unit
(** Install the receiver's kernel-level prod (the domain runtime's
    "mark me runnable / queue an activation" hook). Replaces any
    previous hook. *)
