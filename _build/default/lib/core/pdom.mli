(** Protection domains.

    A protection domain maps every valid stretch to a subset of
    {e read, write, execute, meta} rights. A domain executing in a
    protection domain that holds the [meta] right for a stretch may
    change that stretch's protections and mappings; the check is a
    light-weight validation performed by the low-level translation
    system (no call into the system domain needed).

    Stretches without an explicit entry fall back to the global rights
    stored in their page-table entries. *)

open Hw

type t

val create : asn:int -> t
(** [asn] is the hardware address-space number associated with the
    protection domain. *)

val asn : t -> int

val lookup : t -> int -> Rights.t option
(** Explicit rights for a stretch id, if any. *)

val effective : t -> int -> global:Rights.t -> Rights.t
(** Explicit rights, or [global] if none. *)

val set : t -> sid:int -> Rights.t -> unit
(** Install/replace the rights word. {b Idempotence}: setting rights
    equal to the current ones is detected and free — callers can rely
    on [set_changed] for that. *)

val set_changed : t -> sid:int -> Rights.t -> bool
(** Like [set], but reports whether anything changed. *)

val clear : t -> sid:int -> unit

val holds_meta : t -> sid:int -> global:Rights.t -> bool

val entries : t -> int
