lib/core/sd_paged.mli: Stretch_driver Usbs
