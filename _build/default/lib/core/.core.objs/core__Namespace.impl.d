lib/core/namespace.ml: Hashtbl List Printf String
