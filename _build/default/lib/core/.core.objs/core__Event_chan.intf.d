lib/core/event_chan.mli:
