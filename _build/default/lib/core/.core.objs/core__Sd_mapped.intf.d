lib/core/sd_mapped.mli: Stretch_driver Usbs
