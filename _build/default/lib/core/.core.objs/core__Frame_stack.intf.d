lib/core/frame_stack.mli:
