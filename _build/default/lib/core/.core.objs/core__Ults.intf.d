lib/core/ults.mli: Domains
