lib/core/idc.mli: Domains
