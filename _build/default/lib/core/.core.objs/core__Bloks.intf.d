lib/core/bloks.mli:
