lib/core/mm_entry.mli: Domains Format Frames Stretch Stretch_driver
