lib/core/entry.ml: Domains Engine Hw Printf Sync
