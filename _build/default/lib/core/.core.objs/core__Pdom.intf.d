lib/core/pdom.mli: Hw Rights
