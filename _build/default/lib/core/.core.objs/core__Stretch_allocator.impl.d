lib/core/stretch_allocator.ml: Addr Hashtbl Hw List Pdom Rights Stretch Translation
