lib/core/frame_stack.ml: List
