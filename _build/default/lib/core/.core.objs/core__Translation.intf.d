lib/core/translation.mli: Addr Engine Format Hw Mmu Pdom Pte Ramtab Rights Time
