lib/core/ults.ml: Domains Engine Fun Hw List Proc
