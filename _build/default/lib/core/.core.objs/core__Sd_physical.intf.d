lib/core/sd_physical.mli: Stretch_driver
