lib/core/stretch_driver.ml: Addr Cost Engine Fault Format Frames Hw Pdom Stretch Time Translation
