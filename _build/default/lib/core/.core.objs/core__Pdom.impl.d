lib/core/pdom.ml: Hashtbl Hw Rights
