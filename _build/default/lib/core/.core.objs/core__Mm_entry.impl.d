lib/core/mm_entry.ml: Domains Engine Entry Fault Format Frames Hashtbl Hw List Option Stretch Stretch_driver Sync
