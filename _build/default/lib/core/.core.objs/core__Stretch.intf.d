lib/core/stretch.mli: Addr Engine Format Hw Pdom Rights Time Translation
