lib/core/frames.ml: Addr Array Engine Frame_stack Hw List Printf Ramtab Sim Sync Time
