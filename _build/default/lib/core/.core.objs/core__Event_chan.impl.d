lib/core/event_chan.ml:
