lib/core/sd_paged.ml: Array Bloks Cost Fault Frame_stack Frames Hw List Mmu Printf Pte Queue Stretch Stretch_driver Usbs
