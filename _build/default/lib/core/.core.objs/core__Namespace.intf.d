lib/core/namespace.mli:
