lib/core/stretch_driver.mli: Addr Cost Engine Fault Format Frames Hw Pdom Pte Stretch Time Translation
