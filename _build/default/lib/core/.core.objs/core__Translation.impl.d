lib/core/translation.ml: Addr Cost Format Hw Mmu Pdom Pte Ramtab Rights
