lib/core/domains.ml: Addr Cost Cpu Engine Event_chan Fault Fun Hw List Mmu Pdom Printf Proc Pte Queue Sched Sim Sync
