lib/core/fault.mli: Addr Engine Format Hw Mmu Sync Time
