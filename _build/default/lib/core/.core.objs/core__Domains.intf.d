lib/core/domains.mli: Addr Cost Cpu Engine Event_chan Fault Hw Mmu Pdom Proc Sched Sim Time
