lib/core/sd_physical.ml: Addr Cost Fault Frame_stack Frames Hw List Mmu Printf Pte Queue Stretch Stretch_driver
