lib/core/fault.ml: Addr Engine Format Hw Mmu Sync Time
