lib/core/bloks.ml: Int64
