lib/core/sd_nailed.ml: Cost Fault Format Frame_stack Frames Hw Printf Ramtab Stretch Stretch_driver Translation
