lib/core/sd_mapped.ml: Array Bloks Cost Fault Frame_stack Frames Hw List Mmu Option Printf Pte Queue Stretch Stretch_driver Usbs
