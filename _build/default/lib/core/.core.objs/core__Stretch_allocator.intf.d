lib/core/stretch_allocator.mli: Addr Hw Pdom Rights Stretch Translation
