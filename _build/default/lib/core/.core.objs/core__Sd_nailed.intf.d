lib/core/sd_nailed.mli: Stretch_driver
