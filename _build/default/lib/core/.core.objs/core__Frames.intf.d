lib/core/frames.mli: Engine Frame_stack Hw Ramtab Sim Time
