lib/core/stretch.ml: Addr Cost Format Hw Pdom Rights Translation
