lib/core/entry.mli: Domains
