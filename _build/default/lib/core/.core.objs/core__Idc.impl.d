lib/core/idc.ml: Domains Engine Entry Hw Printf Sync
