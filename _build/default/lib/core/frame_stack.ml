(* Represented top-first as a mutable list. *)
type t = { mutable frames : int list }

let create () = { frames = [] }

let size t = List.length t.frames

let mem t pfn = List.mem pfn t.frames

let push t pfn =
  if mem t pfn then invalid_arg "Frame_stack.push: frame already present";
  t.frames <- pfn :: t.frames

let remove t pfn =
  if mem t pfn then begin
    t.frames <- List.filter (fun p -> p <> pfn) t.frames;
    true
  end
  else false

let top_k t k =
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  take k t.frames

let move_to_top t pfn =
  if not (mem t pfn) then raise Not_found;
  t.frames <- pfn :: List.filter (fun p -> p <> pfn) t.frames

let move_to_bottom t pfn =
  if not (mem t pfn) then raise Not_found;
  t.frames <- List.filter (fun p -> p <> pfn) t.frames @ [ pfn ]

let to_list t = t.frames
