(** Domain runtime: activations, event dispatch and memory access.

    A domain (the Nemesis analogue of a process) executes user threads
    under its own CPU contract. Memory accesses go through the
    simulated MMU; on a fault the kernel part is exactly what the paper
    prescribes — save context, send an event to the faulting domain —
    after which the faulting thread is blocked and the domain's own
    activation machinery (notification handlers running in a restricted
    environment where IDC is forbidden, then worker threads) resolves
    the fault using the domain's own resources.

    The memory-management entry registers itself via
    {!set_fault_handler}; this module knows nothing about stretch
    drivers. *)

open Engine
open Hw
open Sched

type t

val create :
  sim:Sim.t -> id:int -> name:string -> cpu:Cpu.t -> cpu_client:Cpu.client ->
  pdom:Pdom.t -> mmu:Mmu.t -> cost:Cost.t -> unit -> t

val id : t -> int
val name : t -> string
val pdom : t -> Pdom.t
val mmu : t -> Mmu.t
val cost : t -> Cost.t
val sim : t -> Sim.t
val alive : t -> bool

val consume_cpu : t -> Time.span -> unit
(** Burn simulated CPU time under this domain's contract. *)

val cpu_used : t -> Time.span

val fault_channel : t -> Event_chan.t
(** The endpoint the kernel sends fault notifications on. *)

val set_fault_handler : t -> (Fault.t -> unit) -> unit
(** Install the notification handler for memory faults (it runs in the
    activation-handler environment). *)

val in_activation_handler : t -> bool

val assert_idc_allowed : t -> string -> unit
(** Raises [Failure] when called inside an activation handler —
    enforces the paper's "no IDC within a notification handler" rule. *)

val queue_notification : t -> (unit -> unit) -> unit
(** Deliver a notification-handler run at the domain's next
    activation (used by other event sources, e.g. revocation). *)

val access : t -> Addr.vaddr -> Mmu.access -> unit
(** Perform a memory access from the current (user-thread) process:
    translates, charges the MMU cost, and on a fault blocks until the
    domain resolves it, then retries. Raises {!Fault.Unresolved} if the
    domain fails to resolve its own fault. *)

val try_access :
  t -> Addr.vaddr -> Mmu.access -> (unit, Fault.t * string) result
(** Like {!access} but reports failure instead of raising. *)

val faults_taken : t -> int

val spawn_thread : t -> name:string -> (unit -> unit) -> Proc.t
(** Start a user thread belonging to this domain (killed with it). *)

val on_kill : t -> (unit -> unit) -> unit

val kill : t -> unit
(** Terminate the domain: all its threads, its dispatcher, and any
    thread blocked on one of its faults. *)
