(** Entries: notification handler + worker threads.

    Following ANSAware/RT (as the paper does), an {e entry} is the
    combination of a notification handler and a set of worker threads,
    encapsulating a scheduling policy on event handling. The
    notification handler runs in the activation-handler environment —
    it must not block or perform IDC — and either completes a job on
    the spot (the fast path) or defers it to a worker thread, which
    runs as an ordinary domain thread where blocking and IDC are
    allowed.

    The memory-management entry ({!Mm_entry}) is built on this; other
    IDC services can reuse it. *)

type 'job t

val create :
  Domains.t -> name:string -> ?workers:int ->
  fast:('job -> [ `Done | `Defer ]) -> slow:('job -> unit) -> unit -> 'job t
(** [create dom ~name ~fast ~slow ()] makes an entry whose notification
    handler applies [fast] (in activation context) and whose [workers]
    (default 1) apply [slow] to deferred jobs in FIFO order. Worker
    wake-ups are charged the user-level thread-scheduler cost. *)

val notify : 'job t -> 'job -> unit
(** Deliver a job through the domain's activation path: at the
    domain's next activation the notification handler runs (costed),
    then workers pick up whatever was deferred. *)

val handle_now : 'job t -> 'job -> unit
(** Run the notification handler for a job from the current activation
    context — for callers that are already inside a costed notification
    (e.g. the fault-channel handler) and must not pay a second
    activation. *)

val defer : 'job t -> 'job -> unit
(** Queue a job straight for the workers, skipping the fast path. *)

val depth : 'job t -> int
(** Jobs currently queued for workers. *)

val fast_handled : 'job t -> int
val slow_handled : 'job t -> int
val name : 'job t -> string
