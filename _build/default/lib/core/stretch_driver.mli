(** Stretch drivers: unprivileged, application-level objects that
    provide the backing for stretches.

    A driver acquires and manages its own physical frames (from the
    frames allocator, under its domain's contract) and installs
    mappings through the validated low-level translation interface.
    Fault handling is two-phase, mirroring Figure 5 of the paper:

    - [fast] is invoked from the notification handler, a restricted
      environment where inter-domain communication is impossible. It
      may map a page from an already-held free frame and return
      [Success], or return [Retry] to punt to a worker thread.
    - [full] is invoked from a memory-management-entry worker thread
      where blocking and IDC (frames allocator, USBS) are allowed.

    [relinquish] supports the revocation protocol: arrange that up to
    [want] frames are unused and sitting on top of the domain's frame
    stack (cleaning dirty pages first if there is a backing store). *)

open Engine
open Hw

type result = Success | Retry | Failure of string

type env = {
  domain_id : int;
  domain_name : string;
  pdom : Pdom.t;
  translation : Translation.t;
  frames : Frames.t;
  frames_client : Frames.client;
  consume_cpu : Time.span -> unit;  (** charge the owning domain *)
  assert_idc_allowed : string -> unit;
  cost : Cost.t;
}

type t = {
  name : string;
  bind : Stretch.t -> unit;
  fast : Fault.t -> result;
  full : Fault.t -> result;
  relinquish : want:int -> int;
  resident_pages : unit -> int;
  free_frames : unit -> int;
}

val pp_result : Format.formatter -> result -> unit

(** {2 Shared helpers for driver implementations} *)

val map_page :
  env -> Addr.vaddr -> pfn:int -> unit
(** Validated map + cost charge; raises [Failure] on a translation
    error (a driver bug — it must hold meta and own the frame). *)

val unmap_page : env -> Addr.vaddr -> Pte.t
(** Validated unmap + cost charge; returns the previous PTE. *)
