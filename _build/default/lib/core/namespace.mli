(** Plan-9-style name-space contexts.

    "A name-space scheme (based on Plan-9 contexts) allows
    implementations of interfaces to be published and applications to
    pick and choose between them. This may be termed plug and play
    extensibility; we note that it is implemented above the protection
    boundary." (§5.)

    A context maps names either to nested contexts or to published
    {!entry} values; [entry] is an extensible variant so each subsystem
    declares its own interface types (e.g. {!System.Driver_factory}).
    Paths are ['/']-separated; [bind] creates intermediate contexts on
    demand. *)

type t

type entry = ..

val create : unit -> t

val bind : t -> path:string -> entry -> (unit, string) result
(** Fails when a path component is empty, or when the path traverses a
    published value, or when the final name is already bound. *)

val rebind : t -> path:string -> entry -> (unit, string) result
(** Like [bind] but replaces an existing value binding. *)

val lookup : t -> path:string -> entry option

val list : t -> path:string -> string list option
(** Names bound in a context (sorted); [None] if the path does not
    name a context. [""] lists the root. *)

val unbind : t -> path:string -> bool
(** Remove a value binding; contexts cannot be unbound. *)
