open Hw

type region = { rstart : Addr.vaddr; rlen : int }

type t = {
  translation : Translation.t;
  mutable free : region list; (* sorted by start *)
  mutable next_sid : int;
  by_sid : (int, Stretch.t) Hashtbl.t;
}

let create translation ~va_base ~va_bytes =
  if not (Addr.is_page_aligned va_base && Addr.is_page_aligned va_bytes) then
    invalid_arg "Stretch_allocator.create: unaligned region";
  { translation;
    free = [ { rstart = va_base; rlen = va_bytes } ];
    next_sid = 1;
    by_sid = Hashtbl.create 64 }

let free_bytes t = List.fold_left (fun acc r -> acc + r.rlen) 0 t.free

(* Carve [len] bytes out of the free list: either first-fit anywhere,
   or at a caller-requested base address. *)
let carve t ?base len =
  match base with
  | None ->
    let rec take acc = function
      | [] -> None
      | r :: rest when r.rlen >= len ->
        let remainder =
          if r.rlen = len then rest
          else { rstart = r.rstart + len; rlen = r.rlen - len } :: rest
        in
        Some (r.rstart, List.rev_append acc remainder)
      | r :: rest -> take (r :: acc) rest
    in
    (match take [] t.free with
    | None -> None
    | Some (start, free') ->
      t.free <- free';
      Some start)
  | Some b ->
    let rec take acc = function
      | [] -> None
      | r :: rest when b >= r.rstart && b + len <= r.rstart + r.rlen ->
        let before =
          if b > r.rstart then [ { rstart = r.rstart; rlen = b - r.rstart } ]
          else []
        in
        let after =
          let tail_start = b + len in
          let tail_len = r.rstart + r.rlen - tail_start in
          if tail_len > 0 then [ { rstart = tail_start; rlen = tail_len } ]
          else []
        in
        Some (b, List.rev_append acc (before @ after @ rest))
      | r :: rest -> take (r :: acc) rest
    in
    (match take [] t.free with
    | None -> None
    | Some (start, free') ->
      t.free <- free';
      Some start)

let release t start len =
  let rec insert = function
    | [] -> [ { rstart = start; rlen = len } ]
    | r :: rest when start < r.rstart -> { rstart = start; rlen = len } :: r :: rest
    | r :: rest -> r :: insert rest
  in
  let rec coalesce = function
    | a :: b :: rest when a.rstart + a.rlen = b.rstart ->
      coalesce ({ rstart = a.rstart; rlen = a.rlen + b.rlen } :: rest)
    | a :: rest -> a :: coalesce rest
    | [] -> []
  in
  t.free <- coalesce (insert t.free)

let alloc t ?base ?(global = Rights.none) ~owner_pdom ~owner ~bytes () =
  if bytes <= 0 then Error "stretch size must be positive"
  else begin
    (match base with
    | Some b when not (Addr.is_page_aligned b) ->
      Error "requested base not page aligned"
    | _ ->
      let npages = Addr.round_up_pages bytes in
      let len = npages * Addr.page_size in
      match carve t ?base len with
      | None -> Error "no virtual address range available"
      | Some start ->
        let sid = t.next_sid in
        t.next_sid <- t.next_sid + 1;
        let s =
          { Stretch.sid; base = start; bytes = len; owner; global }
        in
        Translation.add_null_range t.translation ~sid ~global ~base:start
          ~npages;
        (* The creator is the owner: grant read/write/meta. *)
        Pdom.set owner_pdom ~sid Rights.rw_meta;
        Hashtbl.replace t.by_sid sid s;
        Ok s)
  end

let destroy t (s : Stretch.t) =
  if Hashtbl.mem t.by_sid s.Stretch.sid then begin
    Hashtbl.remove t.by_sid s.Stretch.sid;
    Translation.remove_range t.translation ~base:s.Stretch.base
      ~npages:(Stretch.npages s);
    release t s.Stretch.base s.Stretch.bytes
  end

let find t ~sid = Hashtbl.find_opt t.by_sid sid

let lookup t va =
  Hashtbl.fold
    (fun _ s acc ->
      match acc with
      | Some _ -> acc
      | None -> if Stretch.contains s va then Some s else None)
    t.by_sid None

let stretches t = Hashtbl.fold (fun _ s acc -> s :: acc) t.by_sid []
