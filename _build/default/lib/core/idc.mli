(** Inter-domain communication: typed, same-machine RPC.

    Nemesis modules "export one or more strongly-typed interfaces" and
    invoke non-local ones through marshalled procedure calls. This
    module provides that shape: a server domain {!offer}s a handler; a
    client {!call}s through a proxy. The call costs the client one IDC
    round trip from its own CPU contract, runs the handler on the
    server's {!Entry} (so the server's notification handler / worker
    split and the server's own CPU contract apply), and blocks the
    caller until the reply.

    Calling from inside an activation handler is forbidden and
    enforced, exactly as the paper requires. *)

type ('req, 'rep) t

val offer :
  Domains.t -> name:string -> ?workers:int -> ('req -> 'rep) -> ('req, 'rep) t
(** Export a service: the handler runs on worker threads of the
    offering domain ([workers] defaults to 1, serialising requests —
    more workers give concurrent service). *)

val call : Domains.t -> ('req, 'rep) t -> 'req -> 'rep
(** Invoke from a (worker) thread of the calling domain. Raises
    [Failure] inside an activation handler, or if the server domain
    has died. *)

val name : ('req, 'rep) t -> string
val server : ('req, 'rep) t -> Domains.t
val calls_served : ('req, 'rep) t -> int
