(** The memory-management entry (MMEntry).

    An {e entry} is the combination of a notification handler and a set
    of worker threads encapsulating a scheduling policy on event
    handling. The MMEntry's notification handler is attached to the
    endpoint the kernel uses for fault dispatching; it demultiplexes
    the faulting stretch to the stretch driver bound to it and invokes
    the driver's fast path. If that returns [Retry], the faulting
    thread stays blocked and a worker thread — where IDC is allowed —
    invokes the driver's full path.

    The MMEntry also coordinates revocation: on a revocation
    notification it cycles through the domain's stretch drivers asking
    each to relinquish frames until enough have been freed, then
    replies to the frames allocator. *)

type t

val create : ?fault_workers:int -> Domains.t -> t
(** Attaches itself as the domain's fault handler. [fault_workers]
    defaults to 1 (plus a dedicated revocation worker). *)

val bind : t -> Stretch.t -> Stretch_driver.t -> unit
(** Bind a stretch to a driver (also invokes the driver's own [bind]).
    Replaces any previous binding for the stretch. *)

val unbind : t -> Stretch.t -> unit

val driver_for : t -> sid:int -> Stretch_driver.t option

val drivers : t -> Stretch_driver.t list

val wire_revocation : t -> Frames.t -> Frames.client -> unit
(** Install this entry as the revocation notification handler for the
    domain's frames contract. *)

val faults_fast : t -> int
(** Faults satisfied on the notification-handler fast path. *)

val faults_slow : t -> int
(** Faults that needed a worker thread. *)

val revocations_handled : t -> int

val pp_stats : Format.formatter -> t -> unit

val queue_depth : t -> int
(** Faults currently queued for workers (diagnostics). *)

val domain : t -> Domains.t

val idle : t -> bool
(** No queued fault work (diagnostics for tests). *)
