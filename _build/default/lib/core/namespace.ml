type entry = ..

type node = Context of t | Value of entry
and t = { bindings : (string, node) Hashtbl.t }

let create () = { bindings = Hashtbl.create 8 }

let split path = String.split_on_char '/' path

(* Walk to the context holding the final component, optionally creating
   intermediate contexts. *)
let rec walk t components ~create_missing =
  match components with
  | [] -> Error "empty path"
  | [ last ] -> if last = "" then Error "empty name" else Ok (t, last)
  | "" :: _ -> Error "empty path component"
  | ctx_name :: rest ->
    (match Hashtbl.find_opt t.bindings ctx_name with
    | Some (Context sub) -> walk sub rest ~create_missing
    | Some (Value _) ->
      Error (Printf.sprintf "%S is a value, not a context" ctx_name)
    | None ->
      if create_missing then begin
        let sub = create () in
        Hashtbl.replace t.bindings ctx_name (Context sub);
        walk sub rest ~create_missing
      end
      else Error (Printf.sprintf "no context %S" ctx_name))

let bind t ~path entry =
  match walk t (split path) ~create_missing:true with
  | Error _ as e -> e
  | Ok (ctx, name) ->
    if Hashtbl.mem ctx.bindings name then
      Error (Printf.sprintf "%S already bound" path)
    else begin
      Hashtbl.replace ctx.bindings name (Value entry);
      Ok ()
    end

let rebind t ~path entry =
  match walk t (split path) ~create_missing:true with
  | Error _ as e -> e
  | Ok (ctx, name) ->
    (match Hashtbl.find_opt ctx.bindings name with
    | Some (Context _) -> Error (Printf.sprintf "%S is a context" path)
    | Some (Value _) | None ->
      Hashtbl.replace ctx.bindings name (Value entry);
      Ok ())

let lookup t ~path =
  match walk t (split path) ~create_missing:false with
  | Error _ -> None
  | Ok (ctx, name) ->
    (match Hashtbl.find_opt ctx.bindings name with
    | Some (Value v) -> Some v
    | Some (Context _) | None -> None)

let rec context_at t components =
  match components with
  | [] | [ "" ] -> Some t
  | "" :: _ -> None
  | name :: rest ->
    (match Hashtbl.find_opt t.bindings name with
    | Some (Context sub) -> context_at sub rest
    | Some (Value _) | None -> None)

let list t ~path =
  let components = if path = "" then [] else split path in
  match context_at t components with
  | None -> None
  | Some ctx ->
    Some (List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) ctx.bindings []))

let unbind t ~path =
  match walk t (split path) ~create_missing:false with
  | Error _ -> false
  | Ok (ctx, name) ->
    (match Hashtbl.find_opt ctx.bindings name with
    | Some (Value _) ->
      Hashtbl.remove ctx.bindings name;
      true
    | Some (Context _) | None -> false)
