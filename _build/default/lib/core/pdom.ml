open Hw

type t = { asn : int; tbl : (int, Rights.t) Hashtbl.t }

let create ~asn = { asn; tbl = Hashtbl.create 64 }

let asn t = t.asn

let lookup t sid = Hashtbl.find_opt t.tbl sid

let effective t sid ~global =
  match lookup t sid with Some r -> r | None -> global

let set_changed t ~sid rights =
  match lookup t sid with
  | Some r when Rights.equal r rights -> false
  | _ ->
    Hashtbl.replace t.tbl sid rights;
    true

let set t ~sid rights = ignore (set_changed t ~sid rights)

let clear t ~sid = Hashtbl.remove t.tbl sid

let holds_meta t ~sid ~global = (effective t sid ~global).Rights.m

let entries t = Hashtbl.length t.tbl
