open Hw

type state = {
  env : Stretch_driver.env;
  mutable pool : int list;  (* owned, unmapped frames *)
  mutable bound : Stretch.t list;
  mapped : Addr.vaddr Queue.t; (* mapped pages, oldest first *)
}

let stack st = Frames.frame_stack st.env.Stretch_driver.frames_client

let take_pool st =
  match st.pool with
  | [] -> None
  | pfn :: rest ->
    st.pool <- rest;
    Some pfn

(* Map a demand-zero page from an already-held frame. *)
let map_zero st va pfn =
  let env = st.env in
  Stretch_driver.map_page env va ~pfn;
  env.Stretch_driver.consume_cpu env.Stretch_driver.cost.Cost.page_zero;
  Queue.add (Addr.vaddr_of_vpn (Addr.vpn_of_vaddr va)) st.mapped;
  (* A mapped frame is the last thing we want revoked. *)
  Frame_stack.move_to_bottom (stack st) pfn

let owns_fault st (fault : Fault.t) =
  match fault.sid with
  | None -> false
  | Some sid -> List.exists (fun (s : Stretch.t) -> s.Stretch.sid = sid) st.bound

let fast st (fault : Fault.t) =
  if not (owns_fault st fault) then
    Stretch_driver.Failure "fault outside bound stretches"
  else
    match fault.kind with
    | Mmu.Page_fault ->
      (match take_pool st with
      | Some pfn ->
        map_zero st fault.va pfn;
        Stretch_driver.Success
      | None -> Stretch_driver.Retry)
    | Mmu.Access_violation -> Stretch_driver.Failure "access violation"
    | Mmu.Unallocated -> Stretch_driver.Failure "unallocated address"

(* Worker-thread path: may talk to the frames allocator. *)
let full st (fault : Fault.t) =
  match fast st fault with
  | Stretch_driver.Retry ->
    let env = st.env in
    env.Stretch_driver.assert_idc_allowed "frames allocator";
    env.Stretch_driver.consume_cpu env.Stretch_driver.cost.Cost.idc_call;
    (match Frames.alloc env.Stretch_driver.frames env.Stretch_driver.frames_client with
    | Some pfn ->
      map_zero st fault.va pfn;
      Stretch_driver.Success
    | None -> Stretch_driver.Failure "frames allocator refused")
  | r -> r

let relinquish st ~want =
  let env = st.env in
  let given = ref 0 in
  (* Unused pool frames first: just expose them at the stack top. *)
  while !given < want && st.pool <> [] do
    match take_pool st with
    | Some pfn ->
      Frame_stack.move_to_top (stack st) pfn;
      incr given
    | None -> ()
  done;
  (* Then sacrifice mapped pages (no backing store: contents lost). *)
  while !given < want && not (Queue.is_empty st.mapped) do
    let va = Queue.pop st.mapped in
    let pte = Stretch_driver.unmap_page env va in
    Frame_stack.move_to_top (stack st) (Pte.pfn pte);
    incr given
  done;
  !given

let create ?(prealloc = 0) env =
  let st = { env; pool = []; bound = []; mapped = Queue.create () } in
  let shortfall = ref 0 in
  for _ = 1 to prealloc do
    match Frames.alloc env.Stretch_driver.frames env.Stretch_driver.frames_client with
    | Some pfn -> st.pool <- pfn :: st.pool
    | None -> incr shortfall
  done;
  if !shortfall > 0 then
    Error (Printf.sprintf "could not preallocate %d frames" !shortfall)
  else
    Ok
      { Stretch_driver.name = "physical";
        bind = (fun s -> st.bound <- s :: st.bound);
        fast = fast st;
        full = full st;
        relinquish = relinquish st;
        resident_pages = (fun () -> Queue.length st.mapped);
        free_frames = (fun () -> List.length st.pool) }
