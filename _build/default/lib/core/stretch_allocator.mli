(** The stretch allocator (system domain).

    Allocates ranges of the single virtual address space. A successful
    request creates a stretch whose start and length are multiples of
    the page size, installs NULL mappings carrying the stretch id and
    the requested global rights (so that a first touch raises a
    classified fault), and grants the owner meta rights in its
    protection domain. *)

open Hw

type t

val create :
  Translation.t -> va_base:Addr.vaddr -> va_bytes:int -> t
(** Manage virtual addresses [\[va_base, va_base + va_bytes)]. Both
    must be page-aligned. *)

val alloc :
  t -> ?base:Addr.vaddr -> ?global:Rights.t -> owner_pdom:Pdom.t ->
  owner:int -> bytes:int -> unit -> (Stretch.t, string) result
(** Allocate a stretch of at least [bytes] (rounded up to whole
    pages). [base], if given, requests a specific page-aligned start
    address. [global] defaults to {!Rights.none} — accessibility is
    then granted per protection domain. The owner's pdom receives
    read/write/meta rights. *)

val destroy : t -> Stretch.t -> unit
(** Remove the stretch's page-table entries and return its range to
    the free pool. *)

val lookup : t -> Addr.vaddr -> Stretch.t option
(** Stretch containing the address, if any. *)

val find : t -> sid:int -> Stretch.t option

val stretches : t -> Stretch.t list

val free_bytes : t -> int
