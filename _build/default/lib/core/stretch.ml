open Hw

type t = {
  sid : int;
  base : Addr.vaddr;
  bytes : int;
  mutable owner : int;
  global : Rights.t;
}

let npages t = Addr.round_up_pages t.bytes

let contains t va = va >= t.base && va < t.base + t.bytes

let page_base t i =
  if i < 0 || i >= npages t then invalid_arg "Stretch.page_base: out of range";
  t.base + (i * Addr.page_size)

let page_index t va =
  if not (contains t va) then invalid_arg "Stretch.page_index: outside stretch";
  (va - t.base) / Addr.page_size

let check_meta t ~caller =
  if Pdom.holds_meta caller ~sid:t.sid ~global:t.global then Ok ()
  else Error Translation.No_meta

let set_rights_pdom t ~caller ~target rights =
  match check_meta t ~caller with
  | Error e -> Error e
  | Ok () ->
    let changed = Pdom.set_changed target ~sid:t.sid rights in
    (* The protection scheme detects idempotent changes (the paper
       leans on this when benchmarking): only a real change pays the
       update cost. *)
    let c = Cost.nemesis in
    Ok (if changed then c.Cost.syscall + c.Cost.pdom_update else c.Cost.syscall)

let set_rights_pt t ~caller translation rights =
  Translation.protect_range translation ~pdom:caller ~base:t.base
    ~npages:(npages t) rights

let pp ppf t =
  Format.fprintf ppf "stretch#%d [%a..%a) %db owner=%d" t.sid Addr.pp_vaddr
    t.base Addr.pp_vaddr (t.base + t.bytes) t.bytes t.owner
