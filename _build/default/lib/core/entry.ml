open Engine

type 'job t = {
  dom : Domains.t;
  ename : string;
  fast : 'job -> [ `Done | `Defer ];
  slow : 'job -> unit;
  work : 'job Sync.Mailbox.t;
  mutable fast_count : int;
  mutable slow_count : int;
}

let name t = t.ename
let depth t = Sync.Mailbox.length t.work
let fast_handled t = t.fast_count
let slow_handled t = t.slow_count

let defer t job = Sync.Mailbox.send t.work job

let worker_loop t () =
  let rec loop () =
    let job = Sync.Mailbox.recv t.work in
    (* Waking a worker goes through the user-level thread scheduler. *)
    Domains.consume_cpu t.dom (Domains.cost t.dom).Hw.Cost.ults_schedule;
    t.slow job;
    t.slow_count <- t.slow_count + 1;
    loop ()
  in
  loop ()

let create dom ~name ?(workers = 1) ~fast ~slow () =
  let t =
    { dom; ename = name; fast; slow; work = Sync.Mailbox.create ();
      fast_count = 0; slow_count = 0 }
  in
  for i = 1 to workers do
    ignore
      (Domains.spawn_thread dom
         ~name:(Printf.sprintf "%s-worker%d" name i)
         (worker_loop t))
  done;
  t

let handle_now t job =
  match t.fast job with
  | `Done -> t.fast_count <- t.fast_count + 1
  | `Defer -> defer t job

let notify t job =
  Domains.queue_notification t.dom (fun () ->
      Domains.consume_cpu t.dom (Domains.cost t.dom).Hw.Cost.notify_handler;
      handle_now t job)
