(** The physical stretch driver.

    Provides no backing initially: the first authorised access to a
    page faults; the driver then maps a demand-zeroed frame. The fast
    path (inside the notification handler) succeeds when the driver
    already holds an unused frame; otherwise it returns [Retry] and a
    worker thread requests more frames from the frames allocator (an
    IDC operation) before mapping.

    There is no backing store: relinquishing a mapped page under
    revocation discards its contents (users of purely physical
    stretches are expected to run on guaranteed frames). *)

val create :
  ?prealloc:int -> Stretch_driver.env -> (Stretch_driver.t, string) result
(** [prealloc] frames are requested from the allocator immediately. *)
