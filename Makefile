.PHONY: all build test bench bench-policy bench-chaos bench-crash bench-remote bench-failover bench-erasure bench-share bench-scale smoke chaos crash remote failover erasure scale share fmt lint-registry check clean

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

# Regenerate the machine-readable policy-comparison record.
bench-policy:
	dune exec bench/main.exe -- policy

# Regenerate the machine-readable chaos (fault-injection) verdict.
bench-chaos:
	dune exec bench/main.exe -- chaos

# Regenerate the machine-readable crash-recovery verdict.
bench-crash:
	dune exec bench/main.exe -- crash

# Regenerate the machine-readable remote-paging record: tiered
# (RAM cache -> remote memory -> disk) vs disk-only backing, per
# access pattern, fault-service latency and throughput side by side.
bench-remote:
	dune exec bench/main.exe -- remote

# Regenerate the machine-readable failover record: the hotspot
# workload against the disk, the healthy replicated fleet and the
# fleet with a node wiped at T/2 — post-wipe fault latency must stay
# within 2x the healthy remote path and far from the disk.
bench-failover:
	dune exec bench/main.exe -- failover

# Regenerate the machine-readable erasure record: hotspot fault
# latency against the disk, the R = 2 replicated fleet, the healthy
# (4,2) erasure fleet and the erasure fleet reading degraded after a
# node wipe (repair off, so every post-wipe read pays the k-shard
# reconstruction) — the parity read price and the degraded/disk gap
# side by side with per-node shard books.
bench-erasure:
	dune exec bench/main.exe -- erasure

# Regenerate the machine-readable sharing record: the 32-tenant CoW
# fleet against its unshared/no-zram control arm — resident-frame
# savings, CoW-break latency and compressed-tier hit economics.
bench-share:
	dune exec bench/main.exe -- share

# Regenerate the machine-readable scale-out record: frame-stack and
# EDF pick-next micro-benches at 8/64/256 clients against the seed's
# list-shaped baselines, plus an end-to-end many-domain run.
bench-scale:
	dune exec bench/main.exe -- scale

# Quick end-to-end run of the policy-compare figure (two contrasting
# policies, short duration).
smoke:
	dune exec bin/nemesis_sim.exe -- policy-compare -d 15 \
		--policies fifo,fifo+ra8,clock

# Formatting gate: only enforced when ocamlformat is installed (the
# default container does not ship it); the build and tests always run.
fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
		dune build @fmt; \
	else \
		echo "ocamlformat not installed; skipping format check"; \
	fi

# Quick chaos run: fault injection against one victim, clean-domain
# isolation and recovery accounting asserted (non-zero exit on breach).
chaos:
	dune exec bin/nemesis_sim.exe -- chaos -d 20

# Crash-consistency run: seeded torn writes against the victim's swap
# and the intent journal, remount/replay and domain restart asserted
# (non-zero exit if a committed page is lost or a bystander suffers).
crash:
	dune exec bin/nemesis_sim.exe -- crash-recover --rounds 2

# Remote-paging run: a mixed tiered/disk-only fleet with link chaos in
# the second half; zero bystander violations, balanced tier loss books
# and a byte-identical same-seed rerun asserted (non-zero exit on
# breach).
remote:
	dune exec bin/nemesis_sim.exe -- remote -d 20

# Failover run: three tiered domains page through a 4-node replicated
# fleet (R = 2) beside three disk-only bystanders; one node is wiped
# and another partitioned mid-run. Zero committed pages lost, zero
# bystander violations, balanced fleet books, a re-replicated wipe
# victim, a probed-back partition victim and a byte-identical
# same-seed rerun asserted (non-zero exit on breach). Runs at the
# full 30 s default: the verdict needs warm domains re-reading
# through the fault windows.
failover:
	dune exec bin/nemesis_sim.exe -- failover

# Erasure run: three tiered domains page through a six-node (4,2)
# erasure-coded fleet beside three disk-only bystanders; two nodes
# are wiped mid-run (within the m = 2 loss budget), a standby joins,
# and one node serves 2% corrupt shards. Zero committed pages lost,
# degraded reads >= 50x faster than the disk floor, storage overhead
# <= 1.55x (vs 2x for R = 2), balanced shard books and a
# byte-identical same-seed rerun asserted (non-zero exit on breach).
erasure:
	dune exec bin/nemesis_sim.exe -- erasure

# Scale-out run: 128 self-paging domains under tight admission
# control; zero QoS violations, balanced frame books and the typed
# late-comer refusal asserted (non-zero exit on breach).
scale:
	dune exec bin/nemesis_sim.exe -- scale

# Multi-tenancy run: a CoW fleet forked from one frozen template over
# the compressed-RAM tier, half the fleet killed mid-run; one resident
# copy per shared page, balanced reference books and untouched
# bystander QoS asserted (non-zero exit on breach).
share:
	dune exec bin/nemesis_sim.exe -- tenancy -d 20 --tenants 12

# Registry hygiene: every registered extension name (on every axis)
# must be documented in README.md/DESIGN.md, and every lib/experiments
# module must be claimed by a registered experiment (non-zero exit on
# either breach). Must run from the repo root.
lint-registry:
	dune exec bin/nemesis_sim.exe -- lint-registry

check: fmt build test lint-registry smoke chaos crash remote failover erasure scale share
	@echo "check OK"

clean:
	dune clean
