.PHONY: all build test bench bench-policy smoke fmt check clean

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

# Regenerate the machine-readable policy-comparison record.
bench-policy:
	dune exec bench/main.exe -- policy

# Quick end-to-end run of the policy-compare figure (two contrasting
# policies, short duration).
smoke:
	dune exec bin/nemesis_sim.exe -- policy-compare -d 15 \
		--policies fifo,fifo+ra8,clock

# Formatting gate: only enforced when ocamlformat is installed (the
# default container does not ship it); the build and tests always run.
fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
		dune build @fmt; \
	else \
		echo "ocamlformat not installed; skipping format check"; \
	fi

check: fmt build test smoke
	@echo "check OK"

clean:
	dune clean
