.PHONY: all build test bench bench-policy bench-chaos bench-crash smoke chaos crash fmt check clean

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

# Regenerate the machine-readable policy-comparison record.
bench-policy:
	dune exec bench/main.exe -- policy

# Regenerate the machine-readable chaos (fault-injection) verdict.
bench-chaos:
	dune exec bench/main.exe -- chaos

# Regenerate the machine-readable crash-recovery verdict.
bench-crash:
	dune exec bench/main.exe -- crash

# Quick end-to-end run of the policy-compare figure (two contrasting
# policies, short duration).
smoke:
	dune exec bin/nemesis_sim.exe -- policy-compare -d 15 \
		--policies fifo,fifo+ra8,clock

# Formatting gate: only enforced when ocamlformat is installed (the
# default container does not ship it); the build and tests always run.
fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
		dune build @fmt; \
	else \
		echo "ocamlformat not installed; skipping format check"; \
	fi

# Quick chaos run: fault injection against one victim, clean-domain
# isolation and recovery accounting asserted (non-zero exit on breach).
chaos:
	dune exec bin/nemesis_sim.exe -- chaos -d 20

# Crash-consistency run: seeded torn writes against the victim's swap
# and the intent journal, remount/replay and domain restart asserted
# (non-zero exit if a committed page is lost or a bystander suffers).
crash:
	dune exec bin/nemesis_sim.exe -- crash-recover --rounds 2

check: fmt build test smoke chaos crash
	@echo "check OK"

clean:
	dune clean
