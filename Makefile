.PHONY: all build test bench fmt check clean

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

# Formatting gate: only enforced when ocamlformat is installed (the
# default container does not ship it); the build and tests always run.
fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
		dune build @fmt; \
	else \
		echo "ocamlformat not installed; skipping format check"; \
	fi

check: fmt build test
	@echo "check OK"

clean:
	dune clean
