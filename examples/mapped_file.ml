(* Memory-mapped files on a self-paging system.

   The paper closes on the point that demand paging and memory-mapped
   files must not be lost in a QoS operating system. Here two domains
   map the same file-store file — one shared, one private
   (copy-on-write) — and each pages it under its own disk guarantee:

   - the shared mapping's dirty pages are written back to the file;
   - the private mapping never touches the file: its first dirty
     eviction of a page copies it to an anonymous backing file.

   Run with: dune exec examples/mapped_file.exe *)

open Engine
open Hw
open Core

let file_pages = 64

let map_and_work sys name mode dirty_stride =
  let d =
    match System.add_domain sys ~name ~guarantee:2 ~optimistic:0 () with
    | Ok d -> d
    | Error e -> failwith (System.error_message e)
  in
  let stretch =
    match System.alloc_stretch d ~bytes:(file_pages * Addr.page_size) () with
    | Ok s -> s
    | Error e -> failwith e
  in
  let file =
    match Usbs.File_store.find (System.file_store sys) "shared.dat" with
    | Some f -> f
    | None -> failwith "file missing"
  in
  let info_ref = ref None in
  ignore
    (Domains.spawn_thread d.System.dom ~name:"work" (fun () ->
         let qos =
           Usbs.Qos.make ~period:(Time.ms 250) ~slice:(Time.ms 60) ()
         in
         let _, info =
           match
             System.bind_mapped d ~mode ~initial_frames:2 ~file ~qos stretch ()
           with
           | Ok x -> x
           | Error e -> failwith (System.error_message e)
         in
         info_ref := Some info;
         (* Read the whole file, dirty every [dirty_stride]-th page,
            then read everything again. *)
         for i = 0 to file_pages - 1 do
           Domains.access d.System.dom (Stretch.page_base stretch i) `Read
         done;
         let i = ref 0 in
         while !i < file_pages do
           Domains.access d.System.dom (Stretch.page_base stretch !i) `Write;
           i := !i + dirty_stride
         done;
         for i = 0 to file_pages - 1 do
           Domains.access d.System.dom (Stretch.page_base stretch i) `Read
         done));
  (d, info_ref)

let () =
  let sys = System.create () in
  let store = System.file_store sys in
  (match
     Usbs.File_store.create_file store ~name:"shared.dat"
       ~bytes:(file_pages * Addr.page_size)
   with
  | Ok _ -> ()
  | Error e -> failwith e);
  let _, shared_info = map_and_work sys "editor" Sd_mapped.Shared 4 in
  let _, private_info = map_and_work sys "viewer" Sd_mapped.Private 4 in
  System.run sys ~until:(Time.sec 120);
  let show name = function
    | Some info ->
      let i : Sd_mapped.info = info () in
      Format.printf
        "%-8s file-reads=%3d  writebacks=%3d  cow-writes=%3d  cow-reads=%3d@."
        name i.Sd_mapped.file_reads i.Sd_mapped.file_writebacks
        i.Sd_mapped.cow_writes i.Sd_mapped.cow_reads
    | None -> Format.printf "%-8s did not bind@." name
  in
  show "editor" !shared_info;
  show "viewer" !private_info;
  Format.printf
    "@.The editor's dirty pages went back to the file; the viewer's went to@.";
  Format.printf
    "its private copy-on-write backing — the file itself stayed pristine.@."
