(* Figure 2 in action: the same two applications — a latency-sensitive
   "stream" touching one swapped page every 10 ms and a batch "hog"
   paging out flat-out — under the two structures the paper contrasts:

   - an external pager (microkernel style): one pager domain, one disk
     guarantee, first-come first-served fault service;
   - self-paging: each domain resolves its own faults under its own
     guarantees.

   Run with: dune exec examples/crosstalk_demo.exe *)

open Engine
open Hw
open Core

let stream_pages = 128 (* 1 MB working set, all swapped *)

let make_domain sys name bytes =
  let d =
    match System.add_domain sys ~name ~guarantee:2 ~optimistic:0 () with
    | Ok d -> d
    | Error e -> failwith (System.error_message e)
  in
  let s =
    match System.alloc_stretch d ~bytes () with
    | Ok s -> s
    | Error e -> failwith e
  in
  (d, s)

let stream_thread d s lat () =
  let dom = d.System.dom in
  let sim = Domains.sim dom in
  for i = 0 to stream_pages - 1 do
    Domains.access dom (Stretch.page_base s i) `Write
  done;
  let pos = ref 0 in
  let rec loop () =
    let t0 = Sim.now sim in
    Domains.access dom (Stretch.page_base s !pos) `Read;
    pos := (!pos + 1) mod stream_pages;
    if Sim.now sim > Time.sec 30 then
      Stats.add lat (Time.to_ms (Time.diff (Sim.now sim) t0));
    Proc.sleep (Time.ms 10);
    loop ()
  in
  loop ()

let hog_thread d s () =
  let dom = d.System.dom in
  let n = Stretch.npages s in
  let rec loop () =
    for i = 0 to n - 1 do
      Domains.access dom (Stretch.page_base s i) `Write
    done;
    loop ()
  in
  loop ()

let run ~self_paging =
  let sys = System.create () in
  let stream_d, stream_s = make_domain sys "stream" (stream_pages * Addr.page_size) in
  let hog_d, hog_s = make_domain sys "hog" (4 * 1024 * 1024) in
  if self_paging then begin
    let bind d s ~period_ms ~slice_ms ~forgetful =
      let qos =
        Usbs.Qos.make ~period:(Time.ms period_ms) ~slice:(Time.ms slice_ms) ()
      in
      ignore
        (Domains.spawn_thread d.System.dom ~name:"bind" (fun () ->
             match
               System.bind_paged d ~forgetful ~initial_frames:2
                 ~swap_bytes:(16 * 1024 * 1024) ~qos s ()
             with
             | Ok _ -> ()
             | Error e -> failwith (System.error_message e)))
    in
    bind stream_d stream_s ~period_ms:20 ~slice_ms:2 ~forgetful:false;
    bind hog_d hog_s ~period_ms:250 ~slice_ms:50 ~forgetful:true;
    System.run sys ~until:(Time.ms 1) (* let the binds complete *)
  end
  else begin
    let pager =
      match Baseline.External_pager.create sys () with
      | Ok p -> p
      | Error e -> failwith e
    in
    (match Baseline.External_pager.attach pager stream_d stream_s () with
    | Ok _ -> ()
    | Error e -> failwith e);
    (match
       Baseline.External_pager.attach pager hog_d hog_s ~forgetful:true ()
     with
    | Ok _ -> ()
    | Error e -> failwith e)
  end;
  let lat = Stats.create ~keep_samples:true () in
  ignore
    (Domains.spawn_thread stream_d.System.dom ~name:"stream"
       (stream_thread stream_d stream_s lat));
  ignore
    (Domains.spawn_thread hog_d.System.dom ~name:"hog" (hog_thread hog_d hog_s));
  System.run sys ~until:(Time.sec 90);
  lat

let () =
  Format.printf "running external-pager configuration...@.";
  let ext = run ~self_paging:false in
  Format.printf "running self-paging configuration...@.";
  let self = run ~self_paging:true in
  let show name s =
    Format.printf
      "%-14s touches=%4d  mean=%6.2fms  p95=%6.2fms  max=%6.2fms@." name
      (Stats.count s) (Stats.mean s)
      (Stats.percentile s 95.0)
      (Stats.max_value s)
  in
  Format.printf "@.stream page-touch latency (after 30s warm-up):@.";
  show "external pager" ext;
  show "self-paging" self;
  Format.printf
    "@.The hog cannot steal the stream's disk guarantee once every domain@.";
  Format.printf "pages for itself — that is QoS firewalling.@."
