(* A walkthrough of the frames allocator's contracts and revocation
   protocol (Figure 4 of the paper).

   greedy  holds 2 guaranteed frames plus a large optimistic quota and
           fills memory with mapped, dirty pages;
   steady  arrives later and asks for its guaranteed frames, which
           forces the allocator to revoke optimistic frames from
           greedy — intrusively, since they are mapped and dirty (the
           paged stretch driver must clean them to the USBS first).

   Run with: dune exec examples/revocation_demo.exe *)

open Engine
open Hw
open Core

let page = Addr.page_size

let () =
  (* A small machine (2 MB = 256 frames) so contention is immediate.
     T is generous: cleaning a batch of dirty pages must fit within the
     victim's own disk guarantee. *)
  let config =
    { System.default_config with
      main_memory_mb = 2;
      revocation_deadline = Time.ms 250 }
  in
  let sys = System.create ~config () in
  let frames = System.frames sys in

  let greedy =
    match
      System.add_domain sys ~name:"greedy" ~guarantee:2 ~optimistic:220 ()
    with
    | Ok d -> d
    | Error e -> failwith (System.error_message e)
  in
  let steady =
    match
      System.add_domain sys ~name:"steady" ~guarantee:100 ~optimistic:0 ()
    with
    | Ok d -> d
    | Error e -> failwith (System.error_message e)
  in
  Format.printf "total frames: %d, guaranteed: %d (admission: ok)@."
    (Frames.total_frames frames) (Frames.guaranteed_total frames);

  (* greedy: map 200 pages of a paged stretch, dirtying all of them. *)
  let gs =
    match System.alloc_stretch greedy ~bytes:(200 * page) () with
    | Ok s -> s
    | Error e -> failwith e
  in
  ignore
    (Domains.spawn_thread greedy.System.dom ~name:"hog" (fun () ->
         let qos =
           Usbs.Qos.make ~period:(Time.ms 250) ~slice:(Time.ms 100) ()
         in
         (match
            System.bind_paged greedy ~swap_bytes:(400 * page) ~qos gs ()
          with
         | Ok _ -> ()
         | Error e -> failwith (System.error_message e));
         for i = 0 to Stretch.npages gs - 1 do
           Domains.access greedy.System.dom (Stretch.page_base gs i) `Write
         done;
         Format.printf
           "t=%a greedy holds %d frames (%d guaranteed + optimistic), free=%d@."
           Time.pp (Sim.now (System.sim sys))
           (Frames.held greedy.System.frames_client)
           (Frames.guarantee greedy.System.frames_client)
           (Frames.free_frames frames);

         (* steady wakes up and claims its guarantee. *)
         ignore
           (Domains.spawn_thread steady.System.dom ~name:"claim" (fun () ->
                let sim = System.sim sys in
                let t0 = Sim.now sim in
                let got = ref 0 in
                for _ = 1 to 100 do
                  match Frames.alloc frames steady.System.frames_client with
                  | Some _ -> incr got
                  | None -> ()
                done;
                Format.printf
                  "t=%a steady obtained %d/100 guaranteed frames in %a@."
                  Time.pp (Sim.now sim) !got Time.pp
                  (Time.diff (Sim.now sim) t0);
                Format.printf
                  "     transparent revocations: %d, intrusive: %d@."
                  (Frames.transparent_revocations frames)
                  (Frames.revocations frames);
                Format.printf
                  "     greedy now holds %d frames and is %s@."
                  (Frames.held greedy.System.frames_client)
                  (if Domains.alive greedy.System.dom then
                     "alive (it cooperated within T)"
                   else "dead")))));

  System.run sys ~until:(Time.sec 120);
  Format.printf "done at t=%a@." Time.pp (Sim.now (System.sim sys))
