(* The paper's motivating scenario: "an application which plays a
   motion-JPEG video from disk should not be adversely affected by a
   compilation started in the background."

   The video player streams frame-sized reads from the file-system
   partition under a modest disk guarantee and reports missed frame
   deadlines; the compile job is a memory hog that pages heavily
   through its own swap file. Because both hold their own guarantees,
   the video's deadline misses stay at zero when the compile starts.

   Run with: dune exec examples/video_vs_compile.exe *)

open Engine
open Core

let frame_period = Time.of_ms_float 40.0 (* 25 fps *)
let frame_bytes = 3 * 8192 (* three page-sized transactions per frame *)

type video_stats = {
  mutable frames : int;
  mutable missed : int;
  mutable worst_ms : float;
}

(* The video player: every 40 ms fetch a frame (three page reads) from
   the FS partition; a frame that takes longer than its period is a
   missed deadline. *)
let video_player sys stats () =
  let u = System.usd sys in
  let qos =
    (* 3 reads/frame * ~1 ms per cached sequential read, per 40 ms:
       a 15% guarantee with laxity covering inter-read gaps. *)
    Usbs.Qos.make ~period:(Time.ms 40) ~slice:(Time.ms 6) ()
  in
  let client =
    match Usbs.Usd.admit u ~name:"video" ~qos () with
    | Ok c -> c
    | Error e -> failwith e
  in
  let fs_start, fs_len = System.fs_partition sys in
  let sim = System.sim sys in
  let pos = ref 0 in
  let rec next_frame deadline =
    let t0 = Sim.now sim in
    for _ = 1 to frame_bytes / 8192 do
      Usbs.Usd.transact_exn u client Usbs.Usd.Read ~lba:(fs_start + !pos)
        ~nblocks:16;
      pos := (!pos + 16) mod (fs_len - 16)
    done;
    stats.frames <- stats.frames + 1;
    let took = Time.to_ms (Time.diff (Sim.now sim) t0) in
    if took > stats.worst_ms then stats.worst_ms <- took;
    if Sim.now sim > deadline then stats.missed <- stats.missed + 1;
    Proc.sleep_until deadline;
    next_frame (Time.add deadline frame_period)
  in
  next_frame (Time.add (Sim.now sim) frame_period)

(* The compile job: a domain with a big working set and two frames,
   paging out dirty "object files" as fast as its guarantee allows. *)
let compile_job sys () =
  let d =
    match
      System.add_domain sys ~name:"compile" ~guarantee:2 ~optimistic:0 ()
    with
    | Ok d -> d
    | Error e -> failwith (System.error_message e)
  in
  let stretch =
    match System.alloc_stretch d ~bytes:(8 * 1024 * 1024) () with
    | Ok s -> s
    | Error e -> failwith e
  in
  ignore
    (Domains.spawn_thread d.System.dom ~name:"cc" (fun () ->
         let qos =
           Usbs.Qos.make ~period:(Time.ms 250) ~slice:(Time.ms 75) ()
         in
         (match
            System.bind_paged d ~forgetful:true ~initial_frames:2
              ~swap_bytes:(32 * 1024 * 1024) ~qos stretch ()
          with
         | Ok _ -> ()
         | Error e -> failwith (System.error_message e));
         let npages = Stretch.npages stretch in
         let rec churn () =
           for i = 0 to npages - 1 do
             Domains.access d.System.dom (Stretch.page_base stretch i) `Write
           done;
           churn ()
         in
         churn ()))

let () =
  let sys = System.create () in
  let stats = { frames = 0; missed = 0; worst_ms = 0.0 } in
  ignore (Proc.spawn ~name:"video" (System.sim sys) (video_player sys stats));

  (* Warm up: the first frames hit a cold drive cache and are
     mechanical, which is startup, not crosstalk. *)
  System.run sys ~until:(Time.sec 5);
  stats.frames <- 0;
  stats.missed <- 0;
  stats.worst_ms <- 0.0;

  (* Phase 1: video alone for 20 s. *)
  System.run sys ~until:(Time.sec 25);
  Format.printf "video alone:        %4d frames, %d missed, worst %.1fms@."
    stats.frames stats.missed stats.worst_ms;

  (* Phase 2: start the compile; run 40 more seconds. *)
  let f0, m0 = (stats.frames, stats.missed) in
  stats.worst_ms <- 0.0;
  compile_job sys ();
  System.run sys ~until:(Time.sec 65);
  Format.printf "video + compile:    %4d frames, %d missed, worst %.1fms@."
    (stats.frames - f0) (stats.missed - m0) stats.worst_ms;
  Format.printf
    "QoS firewalling: the compile's paging cannot take the video's disk \
     time.@."
