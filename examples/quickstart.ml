(* Quickstart: boot a simulated Nemesis machine, create a self-paging
   domain, give it a 4 MB stretch backed by a paged stretch driver with
   two physical frames and a disk guarantee, and watch it page.

   Run with: dune exec examples/quickstart.exe *)

open Engine
open Core

let () =
  (* A machine: MMU + RamTab + frames allocator + USD-scheduled disk. *)
  let sys = System.create () in

  (* A domain with a CPU contract and a contract for 2 guaranteed
     physical frames (the paper's experiments use exactly this). *)
  let d =
    match
      System.add_domain sys ~name:"demo" ~guarantee:2 ~optimistic:0 ()
    with
    | Ok d -> d
    | Error e -> failwith (System.error_message e)
  in

  (* 4 MB of virtual addresses. A stretch owns no physical memory; it
     only becomes usable once bound to a stretch driver. *)
  let stretch =
    match System.alloc_stretch d ~bytes:(4 * 1024 * 1024) () with
    | Ok s -> s
    | Error e -> failwith e
  in
  Format.printf "allocated %a@." Stretch.pp stretch;

  (* The domain's main thread binds a paged stretch driver: 16 MB of
     swap under a 20%% disk guarantee (50 ms per 250 ms), then touches
     every page — each touch faults, and the domain resolves its own
     fault with its own resources. *)
  ignore
    (Domains.spawn_thread d.System.dom ~name:"main" (fun () ->
         let qos =
           Usbs.Qos.make ~period:(Time.ms 250) ~slice:(Time.ms 50) ()
         in
         let _driver, h =
           match
             System.bind_paged d ~initial_frames:2
               ~swap_bytes:(16 * 1024 * 1024) ~qos stretch ()
           with
           | Ok x -> x
           | Error e -> failwith (System.error_message e)
         in
         let sim = System.sim sys in
         let npages = Stretch.npages stretch in
         Format.printf "touching %d pages with 2 physical frames...@." npages;
         let t0 = Sim.now sim in
         for i = 0 to npages - 1 do
           Domains.access d.System.dom (Stretch.page_base stretch i) `Write
         done;
         let dt = Time.diff (Sim.now sim) t0 in
         let st = Sd_paged.info h in
         Format.printf
           "first pass (demand-zero):    %a  (zeros=%d evictions=%d)@."
           Time.pp dt st.Sd_paged.demand_zeros st.Sd_paged.evictions;
         let t0 = Sim.now sim in
         for i = 0 to npages - 1 do
           Domains.access d.System.dom (Stretch.page_base stretch i) `Read
         done;
         let dt = Time.diff (Sim.now sim) t0 in
         let st = Sd_paged.info h in
         Format.printf
           "second pass (page in/out):   %a  (page-ins=%d page-outs=%d)@."
           Time.pp dt st.Sd_paged.page_ins st.Sd_paged.page_outs;
         Format.printf "faults taken by the domain:  %d@."
           (Domains.faults_taken d.System.dom);
         Format.printf "fast-path / worker faults:   %d / %d@."
           (Mm_entry.faults_fast d.System.mm)
           (Mm_entry.faults_slow d.System.mm)));

  (* Drive the simulation. *)
  System.run sys ~until:(Time.sec 600);
  Format.printf "disk: %a@." Disk.Disk_model.pp_stats (System.disk sys);
  Format.printf "done at simulated t=%a@." Time.pp (Sim.now (System.sim sys))
