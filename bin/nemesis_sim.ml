(* nemesis-sim: regenerate the paper's tables and figures.

   Subcommands are not listed here: every experiment lives on the
   "experiment" axis of the extension registry (lib/experiments/catalog),
   and this binary builds one cmdliner command per registered manifest —
   flags, defaults and doc strings all come from the manifest's param
   descriptors. Registering a new experiment in the catalog is enough to
   grow the CLI; see `nemesis-sim list-extensions` for the full
   inventory and DESIGN.md §16 for the registry itself. *)

open Cmdliner
open Experiments

(* Observability: either flag switches instrumentation on for the whole
   run; experiments that execute several configurations reset the
   registry between them, so the dumped files cover the final
   configuration (the stdout report covers each). *)

let metrics_arg =
  let doc =
    "Enable instrumentation and write the metrics registry (counters, \
     gauges, latency histograms) as JSON to $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

let trace_arg =
  let doc = "Enable instrumentation and write finished spans as CSV to $(docv)." in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let obs_args = Term.(const (fun m t -> (m, t)) $ metrics_arg $ trace_arg)

let with_obs (metrics, trace) f =
  let instrument = metrics <> None || trace <> None in
  if instrument then begin
    Obs.set_enabled true;
    Obs.reset ()
  end;
  f ();
  if instrument then begin
    Option.iter
      (fun path -> Catalog.write_file path (Obs.Metrics.to_json ()))
      metrics;
    Option.iter (fun path -> Catalog.write_file path (Obs.Span.to_csv ())) trace
  end

(* One cmdliner term per manifest parameter. The "duration" name is
   special-cased to the historical -d/--duration spelling; everything
   else gets a long flag named after the parameter. *)
let value_term (p : Registry.param) : Catalog.value Term.t =
  let pname = p.Registry.p_name in
  let doc = p.Registry.p_doc in
  match p.Registry.p_kind with
  | Registry.Flag ->
    Term.(const (fun b -> Catalog.Bool b) $ Arg.(value & flag & info [ pname ] ~doc))
  | Registry.Int default ->
    let flags, docv =
      if pname = "duration" then ([ "d"; "duration" ], "SECONDS")
      else ([ pname ], "N")
    in
    Term.(
      const (fun i -> Catalog.I i)
      $ Arg.(value & opt int default & info flags ~docv ~doc))
  | Registry.Float default ->
    Term.(
      const (fun f -> Catalog.F f)
      $ Arg.(value & opt float default & info [ pname ] ~docv:"X" ~doc))
  | Registry.String default ->
    Term.(
      const (fun s -> Catalog.S s)
      $ Arg.(value & opt (some string) default & info [ pname ] ~docv:"VAL" ~doc))
  | Registry.Names defaults ->
    Term.(
      const (fun l -> Catalog.L l)
      $ Arg.(value & pos_all string defaults & info [] ~docv:"NAME" ~doc))

let ctx_term (m : Registry.manifest) : Catalog.ctx Term.t =
  List.fold_left
    (fun acc (p : Registry.param) ->
      Term.(
        const (fun ctx v -> (p.Registry.p_name, v) :: ctx) $ acc $ value_term p))
    (Term.const []) m.Registry.m_params

let cmd_of_manifest (m : Registry.manifest) =
  let name = m.Registry.m_name in
  let run obs ctx =
    match Catalog.resolve name with
    | Error e ->
      Printf.eprintf "nemesis-sim: %s\n" (Registry.error_message e);
      exit 2
    | Ok entry ->
      with_obs obs (fun () ->
          if not (entry.Catalog.e_run ctx) then exit 1)
  in
  Cmd.v (Cmd.info name ~doc:m.Registry.m_doc) Term.(const run $ obs_args $ ctx_term m)

let list_extensions_cmd =
  let run () = print_string (Registry.to_json ()) in
  Cmd.v
    (Cmd.info "list-extensions"
       ~doc:
         "Dump every extension axis (replacement policies, policy \
          modifiers, workloads, backing drivers, chaos sites, ablations, \
          experiments) with manifests as JSON")
    Term.(const run $ const ())

let lint_registry_cmd =
  let run () =
    match
      Catalog.lint
        ~docs:[ "README.md"; "DESIGN.md" ]
        ~experiments_dir:"lib/experiments"
    with
    | [] ->
      let axes = Registry.axes () in
      let names =
        List.fold_left
          (fun n (a, _) ->
            match Registry.axis_manifests a with
            | Some ms -> n + List.length ms
            | None -> n)
          0 axes
      in
      Printf.printf "lint-registry: OK (%d names across %d axes)\n" names
        (List.length axes)
    | errors ->
      List.iter (fun e -> Printf.eprintf "%s\n" e) errors;
      exit 1
  in
  Cmd.v
    (Cmd.info "lint-registry"
       ~doc:
         "Check (from the repo root) that every registered extension name \
          is documented and every lib/experiments module is claimed by a \
          registered experiment")
    Term.(const run $ const ())

let main =
  let info =
    Cmd.info "nemesis-sim" ~version:"1.0.0"
      ~doc:
        "Reproduction of `Self-Paging in the Nemesis Operating System' \
         (OSDI 1999)"
  in
  Cmd.group info
    (List.map cmd_of_manifest (Registry.manifests Catalog.axis)
    @ [ list_extensions_cmd; lint_registry_cmd ])

let () = exit (Cmd.eval main)
