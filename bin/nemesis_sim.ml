(* nemesis-sim: regenerate the paper's tables and figures.

   Subcommands mirror the experiment index in DESIGN.md:
     table1   micro-benchmarks
     fig7     paging in
     fig8     paging out
     fig9     file-system isolation
     crosstalk external pager vs self-paging (Figure 2, quantified)
     policy-compare  paging figure per paging policy (§5)
     ablate   design-choice ablations
     all      everything *)

open Cmdliner
open Experiments

let duration_arg default =
  let doc = "Simulated duration in seconds." in
  Arg.(value & opt int default & info [ "d"; "duration" ] ~docv:"SECONDS" ~doc)

let sec s = Engine.Time.sec s

let csv_arg =
  let doc = "Also write the bandwidth series as CSV to $(docv)." in
  Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE" ~doc)

(* Observability: either flag switches instrumentation on for the whole
   run; experiments that execute several configurations reset the
   registry between them, so the dumped files cover the final
   configuration (the stdout report covers each). *)

let metrics_arg =
  let doc =
    "Enable instrumentation and write the metrics registry (counters, \
     gauges, latency histograms) as JSON to $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

let trace_arg =
  let doc = "Enable instrumentation and write finished spans as CSV to $(docv)." in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let obs_args = Term.(const (fun m t -> (m, t)) $ metrics_arg $ trace_arg)

let write_file path contents =
  match open_out path with
  | exception Sys_error msg ->
    Printf.eprintf "nemesis-sim: cannot write %s\n" msg;
    exit 1
  | oc ->
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        output_string oc contents;
        output_char oc '\n');
    Printf.printf "wrote %s\n" path

let with_obs (metrics, trace) f =
  let instrument = metrics <> None || trace <> None in
  if instrument then begin
    Obs.set_enabled true;
    Obs.reset ()
  end;
  f ();
  if instrument then begin
    Option.iter (fun path -> write_file path (Obs.Metrics.to_json ())) metrics;
    Option.iter (fun path -> write_file path (Obs.Span.to_csv ())) trace
  end

let write_csv path rows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc "series,seconds,mbit_per_s\n";
      List.iter
        (fun (series, t, v) ->
          Printf.fprintf oc "%s,%.3f,%.6f\n" series t v)
        rows);
  Printf.printf "wrote %s\n" path

let paging_csv (r : Paging_fig.result) =
  List.concat_map
    (fun (a : Paging_fig.app_report) ->
      List.map
        (fun (t, v) -> (a.Paging_fig.app_name, Engine.Time.to_sec t, v))
        a.Paging_fig.series)
    r.Paging_fig.apps

let table1_cmd =
  let run obs = with_obs obs (fun () -> Table1.print (Table1.run ())) in
  Cmd.v (Cmd.info "table1" ~doc:"Comparative micro-benchmarks (Table 1)")
    Term.(const run $ obs_args)

let fig7_cmd =
  let run obs d csv =
    with_obs obs (fun () ->
        let r = Paging_fig.run ~duration:(sec d) () in
        Paging_fig.print r;
        Paging_fig.print_series r;
        Paging_fig.print_trace r;
        Option.iter (fun path -> write_csv path (paging_csv r)) csv)
  in
  Cmd.v (Cmd.info "fig7" ~doc:"Paging in under disk guarantees (Figure 7)")
    Term.(const run $ obs_args $ duration_arg 240 $ csv_arg)

let fig8_cmd =
  let run obs d csv =
    with_obs obs (fun () ->
        let r =
          Paging_fig.run ~mode:Workload.Paging_app.Paging_out
            ~duration:(sec d) ()
        in
        Paging_fig.print r;
        Paging_fig.print_series r;
        Paging_fig.print_trace r;
        Option.iter (fun path -> write_csv path (paging_csv r)) csv)
  in
  Cmd.v (Cmd.info "fig8" ~doc:"Paging out under disk guarantees (Figure 8)")
    Term.(const run $ obs_args $ duration_arg 240 $ csv_arg)

let fig9_cmd =
  let run obs d csv =
    with_obs obs (fun () ->
        let r = Fig9.run ~duration:(sec d) () in
        Fig9.print r;
        Fig9.print_series r;
        Option.iter
          (fun path ->
            let rows =
              List.map
                (fun (t, v) -> ("fs_alone", Engine.Time.to_sec t, v))
                r.Fig9.alone_series
              @ List.map
                  (fun (t, v) -> ("fs_contended", Engine.Time.to_sec t, v))
                  r.Fig9.contended_series
            in
            write_csv path rows)
          csv)
  in
  Cmd.v (Cmd.info "fig9" ~doc:"File-system isolation (Figure 9)")
    Term.(const run $ obs_args $ duration_arg 120 $ csv_arg)

let crosstalk_cmd =
  let run obs d =
    with_obs obs (fun () -> Crosstalk.print (Crosstalk.run ~duration:(sec d) ()))
  in
  Cmd.v
    (Cmd.info "crosstalk"
       ~doc:"External pager vs self-paging (Figure 2, quantified)")
    Term.(const run $ obs_args $ duration_arg 180)

let ablation_names = [ "laxity"; "rollover"; "pt"; "slack"; "stream"; "revoke" ]

let run_ablation d = function
  | "laxity" ->
    Ablations.print_laxity (Ablations.run_laxity ~duration:(sec d) ());
    Ablations.print_laxity_sweep
      (Ablations.run_laxity_sweep ~duration:(sec (min d 120)) ())
  | "rollover" ->
    Ablations.print_rollover (Ablations.run_rollover ~duration:(sec d) ())
  | "pt" -> Ablations.print_pt (Ablations.run_pt ())
  | "slack" -> Ablations.print_slack (Ablations.run_slack ~duration:(sec d) ())
  | "stream" ->
    Ablations.print_stream (Ablations.run_stream ~duration:(sec (max d 170)) ())
  | "revoke" -> Ablations.print_revoke (Ablations.run_revoke ())
  | other -> Printf.eprintf "unknown ablation %S\n" other

let ablate_cmd =
  let which =
    let doc =
      "Which ablations to run (laxity|rollover|pt|slack|revoke); default all."
    in
    Arg.(value & pos_all string ablation_names & info [] ~docv:"NAME" ~doc)
  in
  let run obs d names =
    with_obs obs (fun () -> List.iter (run_ablation d) names)
  in
  Cmd.v (Cmd.info "ablate" ~doc:"Design-choice ablations (DESIGN.md)")
    Term.(const run $ obs_args $ duration_arg 120 $ which)

let policy_compare_cmd =
  let json =
    let doc = "Also write the comparison matrix as JSON to $(docv)." in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)
  in
  let policies =
    let doc =
      "Comma-separated policy specs to compare (e.g. \
       fifo,fifo+ra8,clock,lru,wsclock:32,fifo+wb8); default: the \
       built-in presets."
    in
    Arg.(
      value
      & opt (some (list string)) None
      & info [ "policies" ] ~docv:"SPECS" ~doc)
  in
  let run obs d json policies =
    let policies =
      Option.map
        (List.map (fun s ->
             match Policy.Spec.of_string s with
             | Ok p -> p
             | Error e ->
               Printf.eprintf "nemesis-sim: %s\n" e;
               exit 2))
        policies
    in
    with_obs obs (fun () ->
        let r = Policy_compare.run ~duration:(sec d) ?policies () in
        Policy_compare.print r;
        Option.iter
          (fun path -> write_file path (Policy_compare.to_json r))
          json)
  in
  Cmd.v
    (Cmd.info "policy-compare"
       ~doc:
         "Paging figure per replacement/read-ahead/write-behind policy \
          (paper section 5: per-domain policy choice)")
    Term.(const run $ obs_args $ duration_arg 60 $ json $ policies)

let netiso_cmd =
  let run obs d =
    with_obs obs (fun () ->
        Net_iso.print_shares (Net_iso.run_shares ~duration:(sec (min d 30)) ());
        Net_iso.print_kernel_crosstalk
          (Net_iso.run_kernel_crosstalk ~duration:(sec d) ()))
  in
  Cmd.v
    (Cmd.info "netiso"
       ~doc:"Network-link guarantees and cross-resource crosstalk")
    Term.(const run $ obs_args $ duration_arg 60)

let chaos_cmd =
  let seed =
    let doc = "Simulation and fault-injection seed." in
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let json =
    let doc = "Also write the chaos verdict as JSON to $(docv)." in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)
  in
  let run obs d seed json =
    with_obs obs (fun () ->
        let r = Chaos.run ~seed ~duration:(sec d) () in
        Chaos.print r;
        Option.iter (fun path -> write_file path (Chaos.to_json r)) json;
        if not (Chaos.ok r) then exit 1)
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "QoS firewalling under injected faults: bad bloks, media errors, \
          stalls, dropped notifications and revocation storms against one \
          victim, with two clean domains as the control group")
    Term.(const run $ obs_args $ duration_arg 30 $ seed $ json)

let remote_cmd =
  let seed =
    let doc = "Simulation and fault-injection seed." in
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let json =
    let doc = "Also write the remote-paging verdict as JSON to $(docv)." in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)
  in
  let run obs d seed json =
    with_obs obs (fun () ->
        let r = Remote_page.run ~seed ~duration:(sec d) () in
        Remote_page.print r;
        Option.iter (fun path -> write_file path (Remote_page.to_json r)) json;
        if not (Remote_page.ok r) then exit 1)
  in
  Cmd.v
    (Cmd.info "remote"
       ~doc:
         "Disaggregated memory: three tiered domains page through a \
          RAM-cache/remote-memory/disk backing store over a shared \
          guaranteed link while three disk-only bystanders run beside \
          them; the second half drops and delays packets on that link \
          and the verdict demands zero bystander violations, balanced \
          tier loss books and a byte-identical same-seed rerun")
    Term.(const run $ obs_args $ duration_arg 30 $ seed $ json)

let failover_cmd =
  let seed =
    let doc = "Simulation and fault-injection seed." in
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let json =
    let doc = "Also write the failover verdict as JSON to $(docv)." in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)
  in
  let run obs d seed json =
    with_obs obs (fun () ->
        let r = Failover.run ~seed ~duration:(sec d) () in
        Failover.print r;
        Option.iter (fun path -> write_file path (Failover.to_json r)) json;
        if not (Failover.ok r) then exit 1)
  in
  Cmd.v
    (Cmd.info "failover"
       ~doc:
         "Replicated remote memory under node loss: three tiered domains \
          page through a 4-node fleet (2 replicas per page, rendezvous \
          placement) while three disk-only bystanders run beside them; \
          mid-run one node is wiped and another partitioned, and the \
          verdict demands zero committed pages lost, zero bystander \
          violations, balanced fleet books, a re-replicated wipe victim, \
          a probed-back partition victim and a byte-identical same-seed \
          rerun")
    Term.(const run $ obs_args $ duration_arg 30 $ seed $ json)

let erasure_cmd =
  let seed =
    let doc = "Simulation and fault-injection seed." in
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let json =
    let doc = "Also write the erasure verdict as JSON to $(docv)." in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)
  in
  let run obs d seed json =
    with_obs obs (fun () ->
        let r = Erasure.run ~seed ~duration:(sec d) () in
        Erasure.print r;
        Option.iter (fun path -> write_file path (Erasure.to_json r)) json;
        if not (Erasure.ok r) then exit 1)
  in
  Cmd.v
    (Cmd.info "erasure"
       ~doc:
         "Erasure-coded remote memory under double node loss: tiered \
          domains page through a six-node fleet striped k = 4 data + \
          m = 2 parity shards per page, run side by side with the \
          2-replica baseline; two nodes are wiped mid-run, one node \
          serves corrupt shards and a standby joins the ring. The \
          verdict demands zero committed pages lost, degraded reads \
          served from remote memory at least 50x faster than the disk \
          floor, at most 1.55x storage overhead, balanced shard books, \
          honoured membership change, clean bystanders and a \
          byte-identical same-seed rerun")
    Term.(const run $ obs_args $ duration_arg 30 $ seed $ json)

let scale_cmd =
  let seed =
    let doc = "Simulation seed." in
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let domains =
    let doc = "Number of self-paging domains to admit." in
    Arg.(value & opt int 128 & info [ "domains" ] ~docv:"N" ~doc)
  in
  let json =
    let doc = "Also write the scale verdict as JSON to $(docv)." in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)
  in
  let run obs d seed domains json =
    with_obs obs (fun () ->
        let r = Scale.run ~seed ~domains ~duration:(sec d) () in
        Scale.print r;
        Option.iter (fun path -> write_file path (Scale.to_json r)) json;
        if not (Scale.ok r) then exit 1)
  in
  Cmd.v
    (Cmd.info "scale"
       ~doc:
         "Many-domain scale-out: admit 128 self-paging domains under \
          tight CPU, disk and memory admission control, refuse the \
          129th with a typed overcommit error, and assert zero QoS \
          violations and balanced frame books")
    Term.(const run $ obs_args $ duration_arg 60 $ seed $ domains $ json)

let crash_recover_cmd =
  let seed =
    let doc = "Simulation and fault-injection seed." in
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let rounds =
    let doc = "Crash/remount/restart rounds to run." in
    Arg.(value & opt int 4 & info [ "rounds" ] ~docv:"N" ~doc)
  in
  let json =
    let doc = "Also write the recovery verdict as JSON to $(docv)." in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)
  in
  let run obs seed rounds json =
    with_obs obs (fun () ->
        let r = Crash_recover.run ~seed ~rounds () in
        Crash_recover.print r;
        Option.iter (fun path -> write_file path (Crash_recover.to_json r)) json;
        if not (Crash_recover.ok r) then exit 1)
  in
  Cmd.v
    (Cmd.info "crash-recover"
       ~doc:
         "Crash consistency and restart: tear the victim's writes at \
          seeded points (data extent and intent journal), remount and \
          replay the journal, respawn the domain and restore its \
          committed pages — with two clean domains as the control group")
    Term.(const run $ obs_args $ seed $ rounds $ json)

let tenancy_cmd =
  let seed =
    let doc = "Simulation seed." in
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let tenants =
    let doc = "Number of CoW tenants to fork from the template." in
    Arg.(value & opt int 32 & info [ "tenants" ] ~docv:"N" ~doc)
  in
  let json =
    let doc = "Also write the tenancy verdict as JSON to $(docv)." in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)
  in
  let no_share =
    let doc = "Control arm: fork the fleet without CoW sharing." in
    Arg.(value & flag & info [ "no-share" ] ~doc)
  in
  let no_zram =
    let doc = "Page tenants straight to disk (no compressed-RAM tier)." in
    Arg.(value & flag & info [ "no-zram" ] ~doc)
  in
  let run obs d seed tenants no_share no_zram json =
    with_obs obs (fun () ->
        let r =
          Tenancy.run ~seed ~tenants ~duration:(sec d) ~share:(not no_share)
            ~zram:(not no_zram) ()
        in
        Tenancy.print r;
        Option.iter (fun path -> write_file path (Tenancy.to_json r)) json;
        if not (Tenancy.ok r) then exit 1)
  in
  Cmd.v
    (Cmd.info "tenancy"
       ~doc:
         "Multi-tenancy over stacked pagers: freeze a template image, \
          fork 32 copy-on-write tenants over it (swap traffic through \
          the compressed-RAM tier), share a read-only text segment, \
          kill half the fleet mid-run, and assert one resident copy \
          per shared page, balanced reference books and untouched \
          bystander QoS")
    Term.(
      const run $ obs_args $ duration_arg 40 $ seed $ tenants $ no_share
      $ no_zram $ json)

let all_cmd =
  let run obs d =
    with_obs obs (fun () ->
        Table1.print (Table1.run ());
        let r7 = Paging_fig.run ~duration:(sec d) () in
        Paging_fig.print r7;
        Paging_fig.print_series r7;
        Paging_fig.print_trace r7;
        let r8 =
          Paging_fig.run ~mode:Workload.Paging_app.Paging_out
            ~duration:(sec d) ()
        in
        Paging_fig.print r8;
        Paging_fig.print_series r8;
        Paging_fig.print_trace r8;
        Fig9.print (Fig9.run ~duration:(sec (min d 120)) ());
        Crosstalk.print (Crosstalk.run ~duration:(sec (min d 180)) ());
        Net_iso.print_shares (Net_iso.run_shares ());
        Net_iso.print_kernel_crosstalk
          (Net_iso.run_kernel_crosstalk ~duration:(sec (min d 60)) ());
        List.iter (run_ablation (min d 120)) ablation_names;
        Chaos.print (Chaos.run ~duration:(sec (min d 30)) ());
        Crash_recover.print (Crash_recover.run ());
        Remote_page.print (Remote_page.run ~duration:(sec (min d 30)) ());
        Failover.print (Failover.run ~duration:(sec (min d 30)) ());
        Tenancy.print (Tenancy.run ~duration:(sec (min d 40)) ()))
  in
  Cmd.v (Cmd.info "all" ~doc:"Run every table, figure and ablation")
    Term.(const run $ obs_args $ duration_arg 240)

let main =
  let info =
    Cmd.info "nemesis-sim" ~version:"1.0.0"
      ~doc:
        "Reproduction of `Self-Paging in the Nemesis Operating System' \
         (OSDI 1999)"
  in
  Cmd.group info
    [ table1_cmd; fig7_cmd; fig8_cmd; fig9_cmd; crosstalk_cmd; netiso_cmd;
      policy_compare_cmd; ablate_cmd; chaos_cmd; crash_recover_cmd;
      remote_cmd; failover_cmd; erasure_cmd; scale_cmd; tenancy_cmd; all_cmd ]

let () = exit (Cmd.eval main)
