(* Benchmark harness.

   Part 1 — Bechamel micro-benchmarks: real wall-clock cost of the
   implementation's hot operations (the data structures behind Table 1
   and the simulation substrate). These demonstrate the algorithmic
   shapes (O(1) pdom protect vs O(n) page-table protect, linear vs
   guarded table walks) with measured nanoseconds rather than model
   constants.

   Part 2 — the paper-reproduction harness: regenerates Table 1 and
   Figures 7, 8 and 9 (plus the quantified Figure 2 crosstalk and the
   DESIGN.md ablations) in simulated time, printing paper-vs-measured
   rows. *)

open Bechamel
open Toolkit
open Engine
open Hw
open Core

(* --- Part 1: Bechamel micro-benchmarks ----------------------------- *)

(* Fixtures are built once; the staged closures mutate them in place. *)

let bench_pte =
  let counter = ref 0 in
  Test.make ~name:"pte/pack+unpack"
    (Staged.stage (fun () ->
         incr counter;
         let pte =
           Pte.set_valid
             (Pte.make ~sid:(!counter land 0xff) ~global:Rights.read_write)
             ~pfn:(!counter land 0xffff)
         in
         ignore (Pte.dirty pte);
         ignore (Pte.pfn pte)))

let bench_linear_lookup =
  let pt = Linear_pt.create ~va_bits:28 () in
  for vpn = 0 to 4095 do
    Linear_pt.set pt vpn (Pte.make ~sid:1 ~global:Rights.read)
  done;
  let i = ref 0 in
  Test.make ~name:"page_table/linear-lookup"
    (Staged.stage (fun () ->
         i := (!i + 577) land 4095;
         ignore (Linear_pt.lookup pt !i)))

let bench_guarded_lookup =
  let pt = Guarded_pt.create ~va_bits:28 () in
  for vpn = 0 to 4095 do
    Guarded_pt.set pt vpn (Pte.make ~sid:1 ~global:Rights.read)
  done;
  let i = ref 0 in
  Test.make ~name:"page_table/guarded-lookup"
    (Staged.stage (fun () ->
         i := (!i + 577) land 4095;
         ignore (Guarded_pt.lookup pt !i)))

let bench_tlb_hit =
  let tlb = Tlb.create () in
  let pte = Pte.set_valid (Pte.make ~sid:1 ~global:Rights.all) ~pfn:3 in
  Tlb.insert tlb ~asn:1 ~vpn:42 pte;
  Test.make ~name:"tlb/hit"
    (Staged.stage (fun () -> ignore (Tlb.lookup tlb ~asn:1 ~vpn:42)))

let bench_pdom_protect =
  (* Table 1 "(un)prot" via a protection domain: O(1) in stretch size. *)
  let pd = Pdom.create ~asn:1 in
  let flip = ref false in
  Test.make ~name:"table1/prot-pdom (O(1))"
    (Staged.stage (fun () ->
         flip := not !flip;
         Pdom.set pd ~sid:7 (if !flip then Rights.rw_meta else Rights.read)))

(* A translation fixture shared by the page-table protect benches. *)
let protect_fixture npages =
  let pt = Linear_pt.create ~va_bits:28 () in
  let mmu = Mmu.create ~pt:(Linear_pt.impl pt) ~cost:Cost.nemesis () in
  let ramtab = Ramtab.create ~nframes:16 in
  let translation = Translation.create mmu ramtab in
  let pd = Pdom.create ~asn:1 in
  Pdom.set pd ~sid:3 Rights.rw_meta;
  Translation.add_null_range translation ~sid:3 ~global:Rights.read
    ~base:(1 lsl 20) ~npages;
  (translation, pd)

let bench_pt_protect npages =
  let translation, pd = protect_fixture npages in
  let flip = ref false in
  Test.make ~name:(Printf.sprintf "table1/prot%d-pt (O(n))" npages)
    (Staged.stage (fun () ->
         flip := not !flip;
         let rights = if !flip then Rights.read_write else Rights.read in
         match
           Translation.protect_range translation ~pdom:pd ~base:(1 lsl 20)
             ~npages rights
         with
         | Ok _ -> ()
         | Error _ -> assert false))

let bench_dirty_lookup =
  (* Table 1 "dirty": user-level page-table read + bit test. *)
  let translation, _ = protect_fixture 128 in
  let mmu = Translation.mmu translation in
  let i = ref 0 in
  Test.make ~name:"table1/dirty"
    (Staged.stage (fun () ->
         i := (!i + 17) land 127;
         let pte = Mmu.lookup mmu ~vpn:(((1 lsl 20) lsr 13) + !i) in
         ignore (Pte.dirty pte)))

let bench_bloks =
  let b = Bloks.create ~nbloks:2048 in
  Test.make ~name:"bloks/alloc+free"
    (Staged.stage (fun () ->
         match Bloks.alloc b with
         | Some blok -> Bloks.free b blok
         | None -> assert false))

let bench_heap =
  let h = Heap.create () in
  let i = ref 0 in
  Test.make ~name:"sim/heap push+pop"
    (Staged.stage (fun () ->
         incr i;
         Heap.push h ~key:(!i * 7919 mod 1000) ~sub:!i ();
         ignore (Heap.pop h)))

let bench_edf_select =
  let edf = Sched.Edf.create () in
  for i = 1 to 10 do
    match
      Sched.Edf.admit edf
        ~name:(string_of_int i)
        ~period:(Time.ms (10 * i))
        ~slice:(Time.ms 1) ~now:Time.zero ()
    with
    | Ok _ -> ()
    | Error _ -> assert false
  done;
  Test.make ~name:"usd/edf-select (10 clients)"
    (Staged.stage (fun () -> ignore (Sched.Edf.select edf ~now:Time.zero)))

(* Full simulated fault round trip (Table 1 "trap"): each call takes
   one page fault through kernel dispatch, activation, MMEntry and a
   pool stretch driver, then resets the mapping. Wall-clock measures
   how fast the whole simulator executes the path. *)
let bench_sim_trap =
  let sys = System.create () in
  let d =
    match System.add_domain sys ~name:"bench" ~guarantee:4 ~optimistic:0 () with
    | Ok d -> d
    | Error e -> failwith (System.error_message e)
  in
  let stretch =
    match System.alloc_stretch d ~bytes:Addr.page_size () with
    | Ok s -> s
    | Error e -> failwith e
  in
  let pool = ref [] in
  let driver =
    { Stretch_driver.name = "bench-pool";
      bind = (fun _ -> ());
      fast =
        (fun fault ->
          match !pool with
          | pfn :: rest ->
            pool := rest;
            Stretch_driver.map_page d.System.env fault.Fault.va ~pfn;
            Stretch_driver.Success
          | [] -> Stretch_driver.Failure "empty");
      full = (fun _ -> Stretch_driver.Failure "unused");
      relinquish = (fun ~want:_ -> 0);
      resident_pages = (fun () -> 0);
      free_frames = (fun () -> List.length !pool) }
  in
  Mm_entry.bind d.System.mm stretch driver;
  let sim = System.sim sys in
  let trap_once () =
    Domains.access d.System.dom stretch.Stretch.base `Read;
    let pte = Stretch_driver.unmap_page d.System.env stretch.Stretch.base in
    pool := [ Pte.pfn pte ]
  in
  let pending = Sync.Mailbox.create () in
  ignore
    (Domains.spawn_thread d.System.dom ~name:"driver" (fun () ->
         (match Frames.alloc (System.frames sys) d.System.frames_client with
         | Some pfn -> pool := [ pfn ]
         | None -> failwith "no frame");
         let rec loop () =
           let reply = Sync.Mailbox.recv pending in
           trap_once ();
           Sync.Ivar.fill reply ();
           loop ()
         in
         loop ()));
  Test.make ~name:"sim/full-fault-round-trip"
    (Staged.stage (fun () ->
         let reply = Sync.Ivar.create () in
         Sync.Mailbox.send pending reply;
         while Sync.Ivar.peek reply = None && Sim.step sim do
           ()
         done))

let micro_tests =
  [ bench_pte; bench_linear_lookup; bench_guarded_lookup; bench_tlb_hit;
    bench_dirty_lookup; bench_pdom_protect; bench_pt_protect 1;
    bench_pt_protect 100; bench_bloks; bench_heap; bench_edf_select;
    bench_sim_trap ]

let run_bechamel () =
  let instance = Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Bechamel.Time.second 0.25)
      ~stabilize:false ()
  in
  let grouped = Test.make_grouped ~name:"micro" micro_tests in
  let raw = Benchmark.all cfg [ instance ] grouped in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  Experiments.Report.heading
    "Micro-benchmarks (wall-clock, Bechamel OLS ns/op)";
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let ns =
        match Analyze.OLS.estimates ols_result with
        | Some (est :: _) -> Printf.sprintf "%.1f" est
        | _ -> "n/a"
      in
      rows := [ name; ns ] :: !rows)
    results;
  let rows = List.sort compare !rows in
  Experiments.Report.table ~header:[ "operation"; "ns/op" ] rows;
  print_newline ();
  print_endline
    "Shape checks (wall-clock): guarded lookup costs several times the";
  print_endline
    "linear lookup; prot100-pt costs ~100x prot1-pt; prot-pdom is O(1).";
  flush stdout

(* --- Part 2: the paper's tables and figures ------------------------ *)

let run_experiments () =
  Experiments.Table1.print (Experiments.Table1.run ());
  flush stdout;
  let r7 = Experiments.Paging_fig.run ~duration:(Time.sec 240) () in
  Experiments.Paging_fig.print r7;
  Experiments.Paging_fig.print_series r7;
  Experiments.Paging_fig.print_trace r7;
  flush stdout;
  let r8 =
    Experiments.Paging_fig.run ~mode:Workload.Paging_app.Paging_out
      ~duration:(Time.sec 240) ()
  in
  Experiments.Paging_fig.print r8;
  Experiments.Paging_fig.print_series r8;
  Experiments.Paging_fig.print_trace r8;
  flush stdout;
  let r9 = Experiments.Fig9.run ~duration:(Time.sec 120) () in
  Experiments.Fig9.print r9;
  Experiments.Fig9.print_series r9;
  flush stdout;
  Experiments.Crosstalk.print
    (Experiments.Crosstalk.run ~duration:(Time.sec 180) ());
  flush stdout;
  Experiments.Net_iso.print_shares (Experiments.Net_iso.run_shares ());
  Experiments.Net_iso.print_kernel_crosstalk
    (Experiments.Net_iso.run_kernel_crosstalk ~duration:(Time.sec 60) ());
  flush stdout;
  Experiments.Ablations.print_laxity
    (Experiments.Ablations.run_laxity ~duration:(Time.sec 120) ());
  Experiments.Ablations.print_laxity_sweep
    (Experiments.Ablations.run_laxity_sweep ~duration:(Time.sec 120) ());
  Experiments.Ablations.print_rollover
    (Experiments.Ablations.run_rollover ~duration:(Time.sec 120) ());
  Experiments.Ablations.print_pt (Experiments.Ablations.run_pt ());
  Experiments.Ablations.print_slack
    (Experiments.Ablations.run_slack ~duration:(Time.sec 120) ());
  Experiments.Ablations.print_stream
    (Experiments.Ablations.run_stream ~duration:(Time.sec 170) ());
  Experiments.Ablations.print_revoke (Experiments.Ablations.run_revoke ());
  flush stdout

(* --- Part 3: the policy-compare figure ----------------------------- *)

(* Runs the paging figure once per (policy x pattern) cell and leaves a
   machine-readable record next to the text report, so policy
   regressions show up as a JSON diff. *)
let run_policy () =
  let r = Experiments.Policy_compare.run ~duration:(Time.sec 60) () in
  Experiments.Policy_compare.print r;
  flush stdout;
  let path = "BENCH_policy.json" in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Experiments.Policy_compare.to_json r));
  Printf.printf "wrote %s\n%!" path

(* --- Part 4: the chaos verdict ------------------------------------- *)

(* One seeded fault-injection run; the JSON record keeps the verdict
   (clean-domain isolation, recovery accounting, revocation outcome)
   diffable across revisions. *)
let run_chaos () =
  let r = Experiments.Chaos.run ~duration:(Time.sec 30) () in
  Experiments.Chaos.print r;
  flush stdout;
  let path = "BENCH_chaos.json" in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Experiments.Chaos.to_json r));
  Printf.printf "wrote %s\n%!" path

(* --- Part 5: the crash-recovery verdict ---------------------------- *)

(* Seeded crash/remount/restart rounds; the JSON record keeps the
   recovery accounting (records replayed, torn records quarantined,
   pages restored vs lost) diffable across revisions. *)
let run_crash () =
  let r = Experiments.Crash_recover.run () in
  Experiments.Crash_recover.print r;
  flush stdout;
  let path = "BENCH_crash.json" in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Experiments.Crash_recover.to_json r));
  Printf.printf "wrote %s\n%!" path

(* --- Part 5b: the remote-paging verdict ----------------------------- *)

(* Tiered vs disk-only backing, per access pattern, fault-free: the
   JSON record keeps throughput and fault-service latency side by
   side, with the headline verdict that the disaggregated tier beats
   the disk on the cacheable (hotspot) working set. *)
let run_remote () =
  let r = Experiments.Remote_page.bench ~duration:(Time.sec 30) () in
  Experiments.Remote_page.bench_print r;
  flush stdout;
  let path = "BENCH_remote.json" in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Experiments.Remote_page.bench_to_json r));
  Printf.printf "wrote %s\n%!" path

(* --- Part 5b': the failover verdict --------------------------------- *)

(* The hotspot workload against the disk, the healthy fleet and the
   fleet with a node wiped at T/2; the fault-latency histogram is split
   at the wipe so the post-wipe window can be compared against the same
   window of a healthy run. Headline verdict: losing a node costs at
   most 2x the healthy remote path and stays far from the disk —
   replication turns node loss into a latency event, not a cliff. *)
let run_failover () =
  let r = Experiments.Failover.bench ~duration:(Time.sec 30) () in
  Experiments.Failover.bench_print r;
  flush stdout;
  let path = "BENCH_failover.json" in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Experiments.Failover.bench_to_json r));
  Printf.printf "wrote %s\n%!" path

(* --- Part 5b'': the erasure verdict --------------------------------- *)

(* The hotspot workload against the disk, the 2-replica fleet, the
   healthy (4, 2) erasure stripe and the stripe with a node wiped at
   T/2. Headline verdict: parity reads cost at most 2x the replicated
   path, degraded reads stay at least 5x below the disk, and the
   stripe holds 1.5x the page's bytes where replication holds 2x. *)
let run_erasure () =
  let r = Experiments.Erasure.bench ~duration:(Time.sec 30) () in
  Experiments.Erasure.bench_print r;
  flush stdout;
  let path = "BENCH_erasure.json" in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Experiments.Erasure.bench_to_json r));
  Printf.printf "wrote %s\n%!" path

(* --- Part 5c: the sharing / stacked-pager verdict ------------------- *)

(* The 32-tenant CoW fleet against its unshared control arm (same
   workload, no template sharing, no compressed tier). The JSON record
   keeps the resident-frame savings, the CoW-break latency and the
   compressed-tier hit economics diffable across revisions. Headline
   claims: sharing cuts resident frames at least 2x for the fleet, and
   a zram page-in is at least 10x cheaper than a disk page-in. *)
let run_share () =
  let open Experiments.Tenancy in
  let shared = run ~duration:(Time.sec 40) () in
  print shared;
  flush stdout;
  let control = run ~duration:(Time.sec 40) ~share:false ~zram:false () in
  print control;
  flush stdout;
  (* Unshared, each resident page needs its own frame — so the shared
     arm's pages-per-frame ratio IS the resident-frame reduction for
     the content the fleet holds. The control arm (no CoW, no zram,
     but the same workload, still sharing the text segment) gives the
     fleet-level quotient and the disk-only fault baseline. *)
  let savings = shared.frames_per_content in
  let fleet_quotient =
    shared.frames_per_content /. control.frames_per_content
  in
  let speedup = shared.zram_miss_mean_us /. shared.zram_hit_mean_us in
  let savings_ok = savings >= 2.0 in
  let speedup_ok = speedup >= 10.0 in
  Experiments.Report.heading "Sharing verdict";
  Printf.printf
    "resident-frame savings: %.1fx (%d resident pages on %d frames; \
     unshared the same content needs %d) — %s\n"
    savings shared.resident_pages
    (shared.tenant_frames + shared.shared_frames)
    shared.resident_pages
    (if savings_ok then "ok (>= 2x)" else "BELOW 2x");
  Printf.printf
    "fleet vs control:       %.2fx (shared %.2f vs control %.2f \
     pages/frame; control still shares the text segment)\n"
    fleet_quotient shared.frames_per_content control.frames_per_content;
  Printf.printf
    "zram page-in speedup:   %.0fx (hit %.1f us vs disk %.1f us) — %s\n"
    speedup shared.zram_hit_mean_us shared.zram_miss_mean_us
    (if speedup_ok then "ok (>= 10x)" else "BELOW 10x");
  Printf.printf "CoW break: mean %.1f us, p95 <= %.1f us over %d breaks\n"
    shared.break_mean_us shared.break_p95_us shared.cow_breaks;
  flush stdout;
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n  \"shared\": ";
  Buffer.add_string b (to_json shared);
  Buffer.add_string b ",\n  \"control\": ";
  Buffer.add_string b (to_json control);
  Buffer.add_string b
    (Printf.sprintf
       ",\n  \"frame_savings_x\": %.2f,\n  \"fleet_vs_control_x\": %.2f,\n  \
        \"zram_speedup_x\": %.1f,\n  \"ok\": %b\n}"
       savings fleet_quotient speedup
       (savings_ok && speedup_ok && ok shared && ok control));
  let path = "BENCH_share.json" in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Buffer.contents b));
  Printf.printf "wrote %s\n%!" path

(* --- Part 6: the scale-out benches --------------------------------- *)

(* The hot paths the many-domain work rebuilt, measured against the
   seed's list shapes at 8/64/256 clients. The seed kept each frame
   stack as an [int list] (remove = filter, move-to-top = filter+cons)
   and picked the next EDF client by folding over the member list; both
   are rebuilt as O(1)/O(log n) structures, and these benches document
   the before/after shape: the baselines grow linearly from 8 to 256,
   the new paths must not. *)

module Seed_frame_stack = struct
  (* The seed's frame stack, verbatim shape: top-first [int list]. *)
  type t = int list ref

  let create () : t = ref []
  let push t pfn = t := pfn :: !t
  let remove t pfn = t := List.filter (fun p -> p <> pfn) !t

  let move_to_top t pfn =
    remove t pfn;
    push t pfn
end

let scale_sizes = [ 8; 64; 256 ]

let bench_fs_remove n =
  let fs = Frame_stack.create () in
  for pfn = 0 to n - 1 do
    Frame_stack.push fs pfn
  done;
  let i = ref 0 in
  Test.make ~name:(Printf.sprintf "frame_stack/remove+push n=%03d" n)
    (Staged.stage (fun () ->
         i := (!i + 97) mod n;
         ignore (Frame_stack.remove fs !i);
         Frame_stack.push fs !i))

let bench_fs_move n =
  let fs = Frame_stack.create () in
  for pfn = 0 to n - 1 do
    Frame_stack.push fs pfn
  done;
  let i = ref 0 in
  Test.make ~name:(Printf.sprintf "frame_stack/move-to-top n=%03d" n)
    (Staged.stage (fun () ->
         i := (!i + 97) mod n;
         Frame_stack.move_to_top fs !i))

let bench_fs_seed n =
  let fs = Seed_frame_stack.create () in
  for pfn = 0 to n - 1 do
    Seed_frame_stack.push fs pfn
  done;
  let i = ref 0 in
  Test.make
    ~name:(Printf.sprintf "frame_stack/seed-list remove+push n=%03d" n)
    (Staged.stage (fun () ->
         i := (!i + 97) mod n;
         Seed_frame_stack.remove fs !i;
         Seed_frame_stack.push fs !i))

let bench_fs_seed_move n =
  let fs = Seed_frame_stack.create () in
  for pfn = 0 to n - 1 do
    Seed_frame_stack.push fs pfn
  done;
  let i = ref 0 in
  Test.make
    ~name:(Printf.sprintf "frame_stack/seed-list move-to-top n=%03d" n)
    (Staged.stage (fun () ->
         i := (!i + 97) mod n;
         Seed_frame_stack.move_to_top fs !i))

let edf_fixture n =
  let edf = Sched.Edf.create () in
  for i = 1 to n do
    match
      Sched.Edf.admit edf
        ~name:(string_of_int i)
        ~period:(Time.ms (10 * i))
        ~slice:(Time.ms 1) ~now:Time.zero ()
    with
    | Ok _ -> ()
    | Error _ -> assert false
  done;
  edf

let bench_edf_pick n =
  let edf = edf_fixture n in
  Test.make ~name:(Printf.sprintf "edf/pick-next n=%03d" n)
    (Staged.stage (fun () -> ignore (Sched.Edf.select edf ~now:Time.zero)))

(* The seed's pick-next: fold over the member list for the earliest
   deadline with budget (first admitted wins ties). *)
type seed_edf_client = { sc_deadline : Time.t; sc_budget : Time.span }

let bench_edf_seed_pick n =
  let members =
    List.init n (fun i ->
        { sc_deadline = Time.ms (10 * (i + 1)); sc_budget = Time.ms 1 })
  in
  Test.make ~name:(Printf.sprintf "edf/seed-fold pick-next n=%03d" n)
    (Staged.stage (fun () ->
         ignore
           (List.fold_left
              (fun best c ->
                if c.sc_budget <= 0 then best
                else
                  match best with
                  | Some b when b.sc_deadline <= c.sc_deadline -> best
                  | _ -> Some c)
              None members)))

let scale_micro_tests =
  List.concat_map
    (fun n ->
      [ bench_fs_remove n; bench_fs_move n; bench_fs_seed n;
        bench_fs_seed_move n; bench_edf_pick n; bench_edf_seed_pick n ])
    scale_sizes

let run_scale () =
  let instance = Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Bechamel.Time.second 0.25)
      ~stabilize:false ()
  in
  let grouped = Test.make_grouped ~name:"scale" scale_micro_tests in
  let raw = Benchmark.all cfg [ instance ] grouped in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let ns =
        match Analyze.OLS.estimates ols_result with
        | Some (est :: _) -> est
        | _ -> Float.nan
      in
      rows := (name, ns) :: !rows)
    results;
  let rows = List.sort compare !rows in
  Experiments.Report.heading
    "Scale micro-benchmarks (wall-clock, Bechamel OLS ns/op)";
  Experiments.Report.table ~header:[ "operation"; "ns/op" ]
    (List.map (fun (n, ns) -> [ n; Printf.sprintf "%.1f" ns ]) rows);
  print_newline ();
  print_endline
    "Shape checks (wall-clock): the seed-list baselines grow linearly";
  print_endline
    "from n=8 to n=256; the rebuilt frame-stack and heap EDF paths stay";
  print_endline "flat (O(1)) or near-flat (O(log n)).";
  flush stdout;
  let r = Experiments.Scale.run ~domains:32 ~duration:(Time.sec 30) () in
  Experiments.Scale.print r;
  flush stdout;
  let b = Buffer.create 2048 in
  Buffer.add_string b "{\n  \"micro_ns_per_op\": [\n";
  List.iteri
    (fun i (name, ns) ->
      Buffer.add_string b
        (Printf.sprintf "    {\"name\": %S, \"ns\": %s}%s\n" name
           (if Float.is_nan ns then "null" else Printf.sprintf "%.1f" ns)
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string b "  ],\n  \"end_to_end\": ";
  Buffer.add_string b (Experiments.Scale.to_json r);
  Buffer.add_string b "\n}";
  let path = "BENCH_scale.json" in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Buffer.contents b));
  Printf.printf "wrote %s\n%!" path

let () =
  match Sys.argv with
  | [| _; "policy" |] -> run_policy ()
  | [| _; "chaos" |] -> run_chaos ()
  | [| _; "crash" |] -> run_crash ()
  | [| _; "remote" |] -> run_remote ()
  | [| _; "failover" |] -> run_failover ()
  | [| _; "erasure" |] -> run_erasure ()
  | [| _; "share" |] -> run_share ()
  | [| _; "scale" |] -> run_scale ()
  | _ ->
    run_bechamel ();
    run_experiments ();
    run_policy ();
    run_chaos ();
    run_crash ();
    run_remote ();
    run_failover ();
    run_erasure ();
    run_share ();
    run_scale ()
