(* Tests for the extension features: the Entry abstraction, frame
   placement controls, extents, the file store, mapped-file stretch
   drivers (shared and copy-on-write) and stream paging. *)

open Engine
open Hw
open Core

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let qtest = QCheck_alcotest.to_alcotest

(* --- Entry --- *)

let entry_fast_and_slow () =
  let sys = Experiments.Harness.fresh_system ~main_memory_mb:1 () in
  let d =
    match System.add_domain sys ~name:"e" ~guarantee:2 ~optimistic:0 () with
    | Ok d -> d
    | Error e -> failwith (System.error_message e)
  in
  let slow_jobs = ref [] in
  let entry =
    Entry.create d.System.dom ~name:"test"
      ~fast:(fun job -> if job mod 2 = 0 then `Done else `Defer)
      ~slow:(fun job -> slow_jobs := job :: !slow_jobs)
      ()
  in
  for job = 1 to 6 do
    Entry.notify entry job
  done;
  System.run sys ~until:(Time.sec 1);
  check "evens on fast path" 3 (Entry.fast_handled entry);
  check "odds on workers" 3 (Entry.slow_handled entry);
  Alcotest.(check (list int)) "worker FIFO" [ 1; 3; 5 ] (List.rev !slow_jobs);
  check "queue drained" 0 (Entry.depth entry)

let entry_defer_skips_fast () =
  let sys = Experiments.Harness.fresh_system ~main_memory_mb:1 () in
  let d =
    match System.add_domain sys ~name:"e" ~guarantee:2 ~optimistic:0 () with
    | Ok d -> d
    | Error e -> failwith (System.error_message e)
  in
  let entry =
    Entry.create d.System.dom ~name:"test"
      ~fast:(fun _ -> `Done)
      ~slow:(fun _ -> ())
      ()
  in
  Entry.defer entry 42;
  System.run sys ~until:(Time.sec 1);
  check "fast path bypassed" 0 (Entry.fast_handled entry);
  check "worker handled it" 1 (Entry.slow_handled entry)

(* --- Frame placement --- *)

let placement_fixture () =
  let sim = Sim.create () in
  let ramtab = Ramtab.create ~nframes:64 in
  let fr = Frames.create sim ramtab ~nframes:64 in
  let c =
    match Frames.admit fr ~domain:1 ~guarantee:8 ~optimistic:8 with
    | Ok c -> c
    | Error e -> failwith (Frames.error_message e)
  in
  (fr, c)

let frames_specific () =
  let fr, c = placement_fixture () in
  (match Frames.alloc_specific fr c ~pfn:17 with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Frames.error_message e));
  checkb "on the stack" true (Frame_stack.mem (Frames.frame_stack c) 17);
  (match Frames.alloc_specific fr c ~pfn:17 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "double allocation of the same frame");
  (match Frames.alloc_specific fr c ~pfn:999 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "out-of-range frame accepted")

let frames_region () =
  let fr, c = placement_fixture () in
  Frames.add_region fr ~name:"dma" ~first:32 ~count:8;
  Alcotest.(check (list (triple string int int)))
    "region recorded" [ ("dma", 32, 8) ] (Frames.regions fr);
  for _ = 1 to 8 do
    match Frames.alloc_in_region fr c ~region:"dma" with
    | Ok pfn -> checkb "inside region" true (pfn >= 32 && pfn < 40)
    | Error e -> Alcotest.fail (Frames.error_message e)
  done;
  (* Region exhausted (and the client also hit its g+o quota of 16). *)
  checkb "region exhausted" true
    (Frames.alloc_in_region fr c ~region:"dma" = Error Frames.No_matching_frame);
  (match Frames.alloc_in_region fr c ~region:"nvram" with
  | Error (Frames.No_such_region { region }) ->
    Alcotest.(check string) "unknown region" "nvram" region
  | _ -> Alcotest.fail "expected No_such_region")

let frames_colored () =
  let fr, c = placement_fixture () in
  for _ = 1 to 4 do
    match Frames.alloc_colored fr c ~color:3 ~colors:4 with
    | Some pfn -> check "colour respected" 3 (pfn mod 4)
    | None -> Alcotest.fail "coloured allocation failed"
  done;
  Alcotest.check_raises "bad colour"
    (Invalid_argument "Frames.alloc_colored: bad colour") (fun () ->
      ignore (Frames.alloc_colored fr c ~color:4 ~colors:4))

let frames_placement_quota () =
  let fr, c = placement_fixture () in
  (* g + o = 16: the 17th constrained allocation must be refused. *)
  for _ = 1 to 16 do
    ignore (Frames.alloc_colored fr c ~color:0 ~colors:1)
  done;
  check "held everything" 16 (Frames.held c);
  checkb "over quota refused" true
    (Frames.alloc_colored fr c ~color:0 ~colors:1 = None);
  (match Frames.alloc_specific fr c ~pfn:60 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "specific allocation ignored the quota")

(* --- Extents --- *)

let extents_basics () =
  let e = Usbs.Extents.create ~first:100 ~len:100 in
  let a = Option.get (Usbs.Extents.alloc e ~len:30) in
  check "first fit at start" 100 a.Usbs.Extents.start;
  let b = Option.get (Usbs.Extents.alloc e ~len:30) in
  check "packed" 130 b.Usbs.Extents.start;
  checkb "too big refused" true (Usbs.Extents.alloc e ~len:50 = None);
  Usbs.Extents.free e a;
  let c = Option.get (Usbs.Extents.alloc_at e ~start:110 ~len:10) in
  check "alloc_at honoured" 110 c.Usbs.Extents.start;
  checkb "overlap refused" true
    (Usbs.Extents.alloc_at e ~start:115 ~len:10 = None);
  Usbs.Extents.free e b;
  Usbs.Extents.free e c;
  check "all space back" 100 (Usbs.Extents.free_blocks e);
  (* Coalesced: a full-size allocation succeeds again. *)
  checkb "coalesced" true (Usbs.Extents.alloc e ~len:100 <> None)

let extents_never_overlap =
  QCheck.Test.make ~name:"extents never overlap under random ops" ~count:100
    QCheck.(list (pair bool (int_range 1 40)))
    (fun ops ->
      let e = Usbs.Extents.create ~first:0 ~len:500 in
      let held = ref [] in
      List.iter
        (fun (do_alloc, len) ->
          if do_alloc then (
            match Usbs.Extents.alloc e ~len with
            | Some ext -> held := ext :: !held
            | None -> ())
          else
            match !held with
            | ext :: rest ->
              Usbs.Extents.free e ext;
              held := rest
            | [] -> ())
        ops;
      let disjoint (a : Usbs.Extents.extent) (b : Usbs.Extents.extent) =
        a.Usbs.Extents.start + a.Usbs.Extents.len <= b.Usbs.Extents.start
        || b.Usbs.Extents.start + b.Usbs.Extents.len <= a.Usbs.Extents.start
      in
      let rec pairwise = function
        | [] -> true
        | x :: rest -> List.for_all (disjoint x) rest && pairwise rest
      in
      pairwise !held
      && Usbs.Extents.free_blocks e
         = 500 - List.fold_left (fun acc e -> acc + e.Usbs.Extents.len) 0 !held)

(* --- File store --- *)

let file_store_lifecycle () =
  let sys = Experiments.Harness.fresh_system ~main_memory_mb:1 () in
  let store = System.file_store sys in
  let f =
    match Usbs.File_store.create_file store ~name:"data" ~bytes:(5 * 8192) with
    | Ok f -> f
    | Error e -> failwith e
  in
  check "pages" 5 (Usbs.File_store.file_pages f);
  checkb "findable" true (Usbs.File_store.find store "data" <> None);
  (match Usbs.File_store.create_file store ~name:"data" ~bytes:8192 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "duplicate name accepted");
  check "page lbas contiguous"
    (Usbs.File_store.lba_of_page f 0 + 16)
    (Usbs.File_store.lba_of_page f 1);
  Alcotest.check_raises "page bound"
    (Invalid_argument "File_store: page index out of file") (fun () ->
      ignore (Usbs.File_store.lba_of_page f 5));
  let free0 = Usbs.File_store.free_blocks store in
  Usbs.File_store.delete store f;
  check "space returned" (free0 + 80) (Usbs.File_store.free_blocks store);
  checkb "gone" true (Usbs.File_store.find store "data" = None)

(* --- Mapped-file drivers --- *)

(* Count USD write transactions that landed inside an extent. *)
let writes_in sys ~start ~len =
  let n = ref 0 in
  Trace.iter
    (fun _ ev ->
      match ev with
      | Usbs.Usd.Txn { op = Usbs.Usd.Write; lba; _ }
        when lba >= start && lba < start + len ->
        incr n
      | _ -> ())
    (Usbs.Usd.trace (System.usd sys));
  !n

let mapped_fixture ~mode =
  let sys = Experiments.Harness.fresh_system ~main_memory_mb:1 () in
  let store = System.file_store sys in
  let file =
    match Usbs.File_store.create_file store ~name:"lib.so" ~bytes:(8 * 8192) with
    | Ok f -> f
    | Error e -> failwith e
  in
  let d =
    match System.add_domain sys ~name:"app" ~guarantee:2 ~optimistic:0 () with
    | Ok d -> d
    | Error e -> failwith (System.error_message e)
  in
  let s =
    match System.alloc_stretch d ~bytes:(8 * Addr.page_size) () with
    | Ok s -> s
    | Error e -> failwith e
  in
  let qos = Usbs.Qos.make ~period:(Time.ms 250) ~slice:(Time.ms 125) () in
  let info = ref (fun () -> failwith "not bound") in
  let result = ref None in
  ignore
    (Domains.spawn_thread d.System.dom ~name:"main" (fun () ->
         (match
            System.bind_mapped d ~mode ~initial_frames:2 ~file ~qos s ()
          with
         | Ok (_, i) -> info := i
         | Error e -> failwith (System.error_message e));
         (* Read every page twice (two sweeps with 2 frames), then
            dirty every page, then read everything once more. *)
         for _ = 1 to 2 do
           for i = 0 to 7 do
             Domains.access d.System.dom (Stretch.page_base s i) `Read
           done
         done;
         for i = 0 to 7 do
           Domains.access d.System.dom (Stretch.page_base s i) `Write
         done;
         for i = 0 to 7 do
           Domains.access d.System.dom (Stretch.page_base s i) `Read
         done;
         result := Some (!info ())));
  System.run sys ~until:(Time.sec 60);
  match !result with
  | Some info -> (sys, file, info)
  | None -> Alcotest.fail "mapped workload did not finish"

let mapped_shared_writes_back () =
  let sys, file, info = mapped_fixture ~mode:Sd_mapped.Shared in
  checkb "read from the file" true (info.Sd_mapped.file_reads >= 8);
  checkb "dirty pages written back to the file" true
    (info.Sd_mapped.file_writebacks >= 6);
  check "no cow traffic" 0 (info.Sd_mapped.cow_writes + info.Sd_mapped.cow_reads);
  (* The write-backs really landed in the file's extent. *)
  checkb "file extent written" true
    (writes_in sys
       ~start:(Usbs.File_store.extent_start file)
       ~len:(16 * Usbs.File_store.file_pages file)
     > 0)

let mapped_private_cow () =
  let sys, file, info = mapped_fixture ~mode:Sd_mapped.Private in
  checkb "read from the file" true (info.Sd_mapped.file_reads >= 8);
  check "the file is never written" 0 info.Sd_mapped.file_writebacks;
  check "file extent untouched" 0
    (writes_in sys
       ~start:(Usbs.File_store.extent_start file)
       ~len:(16 * Usbs.File_store.file_pages file));
  checkb "dirty copies went to the cow backing" true
    (info.Sd_mapped.cow_writes >= 6);
  checkb "paged back in from the cow backing" true
    (info.Sd_mapped.cow_reads >= 6)

(* --- Stream paging --- *)

let stream_paging_single_txn () =
  let sys = Experiments.Harness.fresh_system ~main_memory_mb:1 () in
  let d =
    match System.add_domain sys ~name:"app" ~guarantee:12 ~optimistic:0 () with
    | Ok d -> d
    | Error e -> failwith (System.error_message e)
  in
  let s =
    match System.alloc_stretch d ~bytes:(16 * Addr.page_size) () with
    | Ok s -> s
    | Error e -> failwith e
  in
  let result = ref None in
  ignore
    (Domains.spawn_thread d.System.dom ~name:"main" (fun () ->
         let qos = Usbs.Qos.make ~period:(Time.ms 250) ~slice:(Time.ms 125) () in
         let _, h =
           match
             System.bind_paged d ~initial_frames:12 ~readahead:4
               ~swap_bytes:(32 * Addr.page_size) ~qos s ()
           with
           | Ok x -> x
           | Error e -> failwith (System.error_message e)
         in
         (* Populate sequentially, sweep once to swap everything out,
            then read back sequentially: page-ins should batch. *)
         for i = 0 to 15 do
           Domains.access d.System.dom (Stretch.page_base s i) `Write
         done;
         for i = 0 to 15 do
           Domains.access d.System.dom (Stretch.page_base s i) `Read
         done;
         for i = 0 to 15 do
           Domains.access d.System.dom (Stretch.page_base s i) `Read
         done;
         result := Some (Sd_paged.info h)));
  System.run sys ~until:(Time.sec 120);
  match !result with
  | None -> Alcotest.fail "did not finish"
  | Some info ->
    checkb "prefetching happened" true (info.Sd_paged.prefetched > 0);
    (* The stats are disjoint: a prefetched page is never also counted
       as a demand page-in, so demand page-ins equal the swap-in
       faults the domain actually took. *)
    Alcotest.(check int)
      "page-ins are exactly the demand faults"
      (Domains.faults_taken d.System.dom - info.Sd_paged.demand_zeros)
      info.Sd_paged.page_ins;
    checkb "read-ahead cut the fault count" true
      (info.Sd_paged.page_ins + info.Sd_paged.prefetched
       > Domains.faults_taken d.System.dom - info.Sd_paged.demand_zeros)

let stream_paging_throughput () =
  let r = Experiments.Ablations.run_stream ~duration:(Time.sec 170) () in
  match r.Experiments.Ablations.rates with
  | (0, base, base_txns) :: rest ->
    List.iter
      (fun (ra, mbit, txns) ->
        checkb (Printf.sprintf "readahead %d not slower" ra) true
          (mbit >= base *. 0.98);
        checkb (Printf.sprintf "readahead %d fewer txns" ra) true
          (txns < base_txns))
      rest;
    (* The biggest read-ahead should show a clear win. *)
    (match List.rev rest with
    | (_, best, _) :: _ ->
      checkb "readahead 8 at least 20% faster" true (best > base *. 1.2)
    | [] -> Alcotest.fail "no readahead rows")
  | _ -> Alcotest.fail "missing baseline row"

let suite =
  [ ( "ext.entry",
      [ Alcotest.test_case "fast path and workers" `Quick entry_fast_and_slow;
        Alcotest.test_case "defer skips fast path" `Quick entry_defer_skips_fast ] );
    ( "ext.frame_placement",
      [ Alcotest.test_case "specific frames" `Quick frames_specific;
        Alcotest.test_case "special regions" `Quick frames_region;
        Alcotest.test_case "page colouring" `Quick frames_colored;
        Alcotest.test_case "quota still applies" `Quick frames_placement_quota ] );
    ( "ext.extents",
      [ Alcotest.test_case "alloc/alloc_at/coalesce" `Quick extents_basics;
        qtest extents_never_overlap ] );
    ( "ext.file_store",
      [ Alcotest.test_case "lifecycle" `Quick file_store_lifecycle ] );
    ( "ext.mapped",
      [ Alcotest.test_case "shared mapping writes back" `Quick
          mapped_shared_writes_back;
        Alcotest.test_case "private mapping is copy-on-write" `Quick
          mapped_private_cow ] );
    ( "ext.stream_paging",
      [ Alcotest.test_case "page-ins batch into one txn" `Quick
          stream_paging_single_txn;
        Alcotest.test_case "throughput gain under fixed guarantee" `Slow
          stream_paging_throughput ] ) ]

(* --- Namespace --- *)

type Namespace.entry += Test_value of int

let namespace_paths () =
  let ns = Namespace.create () in
  (match Namespace.bind ns ~path:"drivers/custom/fast" (Test_value 1) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (match Namespace.bind ns ~path:"drivers/custom/slow" (Test_value 2) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (match Namespace.lookup ns ~path:"drivers/custom/fast" with
  | Some (Test_value 1) -> ()
  | _ -> Alcotest.fail "lookup failed");
  Alcotest.(check (option (list string)))
    "list context" (Some [ "fast"; "slow" ])
    (Namespace.list ns ~path:"drivers/custom");
  Alcotest.(check (option (list string)))
    "root list" (Some [ "drivers" ]) (Namespace.list ns ~path:"");
  (match Namespace.bind ns ~path:"drivers/custom/fast" (Test_value 3) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "duplicate bind accepted");
  (match Namespace.rebind ns ~path:"drivers/custom/fast" (Test_value 3) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (match Namespace.lookup ns ~path:"drivers/custom/fast" with
  | Some (Test_value 3) -> ()
  | _ -> Alcotest.fail "rebind did not replace");
  checkb "unbind value" true (Namespace.unbind ns ~path:"drivers/custom/slow");
  checkb "context not unbindable" false (Namespace.unbind ns ~path:"drivers");
  checkb "lookup through a value fails" true
    (Namespace.lookup ns ~path:"drivers/custom/fast/deeper" = None)

let namespace_driver_factories () =
  let sys = Experiments.Harness.fresh_system ~main_memory_mb:1 () in
  System.publish_standard_drivers sys;
  Alcotest.(check (option (list string)))
    "published" (Some [ "nailed"; "physical" ])
    (Namespace.list (System.namespace sys) ~path:"drivers");
  let d =
    match System.add_domain sys ~name:"app" ~guarantee:4 ~optimistic:0 () with
    | Ok d -> d
    | Error e -> failwith (System.error_message e)
  in
  let s =
    match System.alloc_stretch d ~bytes:(2 * Addr.page_size) () with
    | Ok s -> s
    | Error e -> failwith e
  in
  (* Pick an implementation by name, then fault through it. *)
  (match System.bind_by_name d ~path:"drivers/physical" s with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (System.error_message e));
  let done_ = ref false in
  ignore
    (Domains.spawn_thread d.System.dom ~name:"touch" (fun () ->
         Domains.access d.System.dom s.Stretch.base `Write;
         done_ := true));
  System.run sys ~until:(Time.sec 10);
  checkb "fault resolved through named driver" true !done_;
  (match System.bind_by_name d ~path:"drivers/teleport" s with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown name bound")

(* --- Superpage runs --- *)

let superpage_runs () =
  let fr, c = placement_fixture () in
  (match Frames.alloc_run fr c ~log2:3 with
  | None -> Alcotest.fail "aligned run not found in empty memory"
  | Some base ->
    check "aligned" 0 (base mod 8);
    check "held all eight" 8 (Frames.held c));
  (* A second run still fits within g+o = 16. *)
  checkb "second run" true (Frames.alloc_run fr c ~log2:3 <> None);
  (* A third would exceed the quota. *)
  checkb "quota enforced" true (Frames.alloc_run fr c ~log2:3 = None);
  Alcotest.check_raises "bad width"
    (Invalid_argument "Frames.alloc_run: bad width") (fun () ->
      ignore (Frames.alloc_run fr c ~log2:(-1)))

let superpage_width_recorded () =
  let sim = Sim.create () in
  let ramtab = Ramtab.create ~nframes:64 in
  let fr = Frames.create sim ramtab ~nframes:64 in
  let c =
    match Frames.admit fr ~domain:1 ~guarantee:16 ~optimistic:0 with
    | Ok c -> c
    | Error e -> failwith (Frames.error_message e)
  in
  match Frames.alloc_run fr c ~log2:2 with
  | None -> Alcotest.fail "no run"
  | Some base ->
    for pfn = base to base + 3 do
      check "logical width recorded" (Addr.page_shift + 2)
        (Ramtab.width ramtab ~pfn)
    done

let extra_suite =
  [ ( "ext.namespace",
      [ Alcotest.test_case "paths, contexts, rebind" `Quick namespace_paths;
        Alcotest.test_case "driver factories by name" `Quick
          namespace_driver_factories ] );
    ( "ext.superpages",
      [ Alcotest.test_case "aligned runs under quota" `Quick superpage_runs;
        Alcotest.test_case "ramtab width" `Quick superpage_width_recorded ] ) ]

let suite = suite @ extra_suite

(* --- More lifecycle behaviours --- *)

let kill_mid_paging_releases_swap () =
  (* Killing a domain mid-run must close its swap file (USD client
     retired, extent returned) and free its frames. *)
  let sys = Experiments.Harness.fresh_system ~main_memory_mb:1 () in
  let d =
    match System.add_domain sys ~name:"victim" ~guarantee:2 ~optimistic:0 () with
    | Ok d -> d
    | Error e -> failwith (System.error_message e)
  in
  let s =
    match System.alloc_stretch d ~bytes:(16 * Addr.page_size) () with
    | Ok s -> s
    | Error e -> failwith e
  in
  let sfs_free0 = Usbs.Sfs.free_blocks (System.sfs sys) in
  let frames_free0 = Frames.free_frames (System.frames sys) in
  ignore
    (Domains.spawn_thread d.System.dom ~name:"main" (fun () ->
         let qos = Usbs.Qos.make ~period:(Time.ms 250) ~slice:(Time.ms 125) () in
         (match
            System.bind_paged d ~initial_frames:2
              ~swap_bytes:(32 * Addr.page_size) ~qos s ()
          with
         | Ok _ -> ()
         | Error e -> failwith (System.error_message e));
         let rec loop () =
           for i = 0 to 15 do
             Domains.access d.System.dom (Stretch.page_base s i) `Write
           done;
           loop ()
         in
         loop ()));
  (* Let it page for a while, then kill it. *)
  System.run sys ~until:(Time.sec 5);
  checkb "was actually paging" true (Domains.faults_taken d.System.dom > 10);
  System.kill_domain sys d;
  System.run sys ~until:(Time.sec 6);
  check "swap extent returned" sfs_free0 (Usbs.Sfs.free_blocks (System.sfs sys));
  check "frames returned" frames_free0 (Frames.free_frames (System.frames sys));
  checkb "usd has no leftover work" true
    (Usbs.Usd.utilisation (System.usd sys) < 1e-9)

let mapped_driver_relinquish () =
  (* Revocation reaches mapped stretches too: a hoarding domain with a
     private mapping cleans dirty pages to its cow backing and yields
     frames when a newcomer claims its guarantee. *)
  let sys = Experiments.Harness.fresh_system ~main_memory_mb:1 () in
  let store = System.file_store sys in
  let file =
    match
      Usbs.File_store.create_file store ~name:"big.dat" ~bytes:(64 * 8192)
    with
    | Ok f -> f
    | Error e -> failwith e
  in
  let hog =
    match
      System.add_domain sys ~name:"hog" ~guarantee:2 ~optimistic:80 ()
    with
    | Ok d -> d
    | Error e -> failwith (System.error_message e)
  in
  let s =
    match System.alloc_stretch hog ~bytes:(64 * Addr.page_size) () with
    | Ok s -> s
    | Error e -> failwith e
  in
  ignore
    (Domains.spawn_thread hog.System.dom ~name:"main" (fun () ->
         let qos = Usbs.Qos.make ~period:(Time.ms 250) ~slice:(Time.ms 125) () in
         (match
            System.bind_mapped hog ~mode:Sd_mapped.Private ~initial_frames:2
              ~file ~qos s ()
          with
         | Ok _ -> ()
         | Error e -> failwith (System.error_message e));
         for i = 0 to 63 do
           Domains.access hog.System.dom (Stretch.page_base s i) `Write
         done));
  System.run sys ~until:(Time.sec 60);
  checkb "hog filled memory" true
    (Frames.held hog.System.frames_client > 50);
  let claimant =
    match
      System.add_domain sys ~name:"claimant" ~guarantee:60 ~optimistic:0 ()
    with
    | Ok d -> d
    | Error e -> failwith (System.error_message e)
  in
  let got = ref 0 in
  ignore
    (Domains.spawn_thread claimant.System.dom ~name:"claim" (fun () ->
         for _ = 1 to 60 do
           match
             Frames.alloc (System.frames sys) claimant.System.frames_client
           with
           | Some _ -> incr got
           | None -> ()
         done));
  System.run sys ~until:(Time.sec 120);
  check "claimant satisfied" 60 !got;
  checkb "hog cooperated and lives" true (Domains.alive hog.System.dom)

let entry_multiple_workers_overlap () =
  (* With two workers, two blocking jobs are serviced concurrently. *)
  let sys = Experiments.Harness.fresh_system ~main_memory_mb:1 () in
  let d =
    match System.add_domain sys ~name:"e" ~guarantee:2 ~optimistic:0 () with
    | Ok d -> d
    | Error e -> failwith (System.error_message e)
  in
  let inside = ref 0 and peak = ref 0 in
  let entry =
    Entry.create d.System.dom ~name:"par" ~workers:2
      ~fast:(fun _ -> `Defer)
      ~slow:(fun () ->
        incr inside;
        if !inside > !peak then peak := !inside;
        Proc.sleep (Time.ms 5);
        decr inside)
      ()
  in
  for _ = 1 to 4 do
    Entry.notify entry ()
  done;
  System.run sys ~until:(Time.sec 2);
  check "all served" 4 (Entry.slow_handled entry);
  check "two at a time" 2 !peak

let free_stretch_reuses_address_space () =
  let sys = Experiments.Harness.fresh_system ~main_memory_mb:1 () in
  let d =
    match System.add_domain sys ~name:"app" ~guarantee:4 ~optimistic:0 () with
    | Ok d -> d
    | Error e -> failwith (System.error_message e)
  in
  let free0 = Stretch_allocator.free_bytes (System.stretch_allocator sys) in
  let s =
    match System.alloc_stretch d ~bytes:(4 * Addr.page_size) () with
    | Ok s -> s
    | Error e -> failwith e
  in
  (match System.bind_physical d ~prealloc:4 s with
  | Ok _ -> ()
  | Error e -> failwith (System.error_message e));
  ignore
    (Domains.spawn_thread d.System.dom ~name:"touch" (fun () ->
         Domains.access d.System.dom s.Stretch.base `Write));
  System.run sys ~until:(Time.sec 5);
  System.free_stretch d s;
  check "address space coalesced" free0
    (Stretch_allocator.free_bytes (System.stretch_allocator sys));
  (* The address now faults as unallocated, and the frame behind the
     old mapping went back to Unused. *)
  let unallocated = ref false in
  ignore
    (Domains.spawn_thread d.System.dom ~name:"probe" (fun () ->
         match Domains.try_access d.System.dom s.Stretch.base `Read with
         | Error (f, _) -> unallocated := f.Fault.kind = Mmu.Unallocated
         | Ok () -> ()));
  System.run sys ~until:(Time.sec 10);
  checkb "va unallocated after destroy" true !unallocated

let lifecycle_suite =
  [ ( "ext.lifecycle",
      [ Alcotest.test_case "kill mid-paging releases swap" `Quick
          kill_mid_paging_releases_swap;
        Alcotest.test_case "mapped driver under revocation" `Quick
          mapped_driver_relinquish;
        Alcotest.test_case "entry with two workers" `Quick
          entry_multiple_workers_overlap;
        Alcotest.test_case "free_stretch reuses address space" `Quick
          free_stretch_reuses_address_space ] ) ]

let suite = suite @ lifecycle_suite
