(* Stress and model-based property tests across the stack. *)

open Engine
open Hw
open Core

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let qtest = QCheck_alcotest.to_alcotest

(* --- Simulator: random event schedules fire in global time order --- *)

let sim_event_order =
  QCheck.Test.make ~name:"events fire in nondecreasing time order" ~count:100
    QCheck.(list (int_range 0 10_000))
    (fun delays ->
      let sim = Sim.create () in
      let fired = ref [] in
      List.iter
        (fun d -> ignore (Sim.at sim d (fun () -> fired := Sim.now sim :: !fired)))
        delays;
      Sim.run sim;
      let times = List.rev !fired in
      List.length times = List.length delays
      && List.sort compare times = times
      && List.sort compare times = List.sort compare delays)

(* --- Processes: nested sleeps accumulate exactly --- *)

let proc_sleep_accumulation =
  QCheck.Test.make ~name:"sequential sleeps accumulate exactly" ~count:50
    QCheck.(list_of_size Gen.(int_range 1 10) (int_range 0 1_000_000))
    (fun sleeps ->
      let sim = Sim.create () in
      let woke = ref (-1) in
      ignore
        (Proc.spawn sim (fun () ->
             List.iter Proc.sleep sleeps;
             woke := Sim.now sim));
      Sim.run sim;
      !woke = List.fold_left ( + ) 0 sleeps)

let proc_many_concurrent () =
  let sim = Sim.create () in
  let n = 500 in
  let done_count = ref 0 in
  for i = 1 to n do
    ignore
      (Proc.spawn sim (fun () ->
           Proc.sleep (Time.us i);
           Proc.sleep (Time.us (n - i));
           incr done_count))
  done;
  Sim.run sim;
  check "all procs completed" n !done_count;
  (* Everyone slept i + (n - i) = n microseconds. *)
  check "clock" (Time.us n) (Sim.now sim)

(* --- Frames allocator: model-based random operations --- *)

let frames_model =
  (* Operations: 0 = alloc for client A, 1 = alloc for B, 2 = free one
     of A's frames, 3 = free one of B's. Invariants checked after every
     step against a simple model. *)
  QCheck.Test.make ~name:"frames allocator matches a counting model"
    ~count:100
    QCheck.(list (int_range 0 3))
    (fun ops ->
      let sim = Sim.create () in
      let ramtab = Ramtab.create ~nframes:24 in
      let fr = Frames.create sim ramtab ~nframes:24 in
      let a =
        match Frames.admit fr ~domain:1 ~guarantee:6 ~optimistic:6 with
        | Ok c -> c
        | Error e -> failwith (Frames.error_message e)
      in
      let b =
        match Frames.admit fr ~domain:2 ~guarantee:6 ~optimistic:6 with
        | Ok c -> c
        | Error e -> failwith (Frames.error_message e)
      in
      let held = [| []; [] |] in
      let ok = ref true in
      let result = ref true in
      ignore
        (Proc.spawn sim (fun () ->
             List.iter
               (fun op ->
                 let idx = op land 1 in
                 let client = if idx = 0 then a else b in
                 (match op with
                 | 0 | 1 ->
                   (match Frames.alloc fr client with
                   | Some pfn -> held.(idx) <- pfn :: held.(idx)
                   | None ->
                     (* Refusal is only legal at the g+o cap or when
                        memory is full beyond the guarantee. *)
                     if
                       List.length held.(idx) < 6
                       || List.length held.(idx) < 12
                          && Frames.free_frames fr > 0
                     then ok := false)
                 | _ ->
                   (match held.(idx) with
                   | pfn :: rest ->
                     Frames.free fr client pfn;
                     held.(idx) <- rest
                   | [] -> ()));
                 (* Model invariants. *)
                 if
                   Frames.held a <> List.length held.(0)
                   || Frames.held b <> List.length held.(1)
                   || Frames.free_frames fr
                      <> 24 - List.length held.(0) - List.length held.(1)
                 then ok := false)
               ops;
             result := !ok));
      Sim.run sim;
      !result)

(* --- CPU scheduler: conservation and bounds --- *)

let cpu_time_conserved () =
  let sim = Sim.create () in
  let cpu = Sched.Cpu.create sim in
  let clients =
    List.map
      (fun (name, slice) ->
        match
          Sched.Cpu.admit cpu ~name ~period:(Time.ms 10) ~slice ~extra:false ()
        with
        | Ok c -> c
        | Error e -> failwith e)
      [ ("a", Time.ms 3); ("b", Time.ms 2); ("c", Time.ms 1) ]
  in
  List.iter
    (fun c ->
      ignore
        (Proc.spawn sim (fun () ->
             let rec loop () =
               (match Sched.Cpu.consume cpu c (Time.us 700) with
               | Ok () -> ()
               | Error `Removed -> failwith "client removed");
               loop ()
             in
             loop ())))
    clients;
  Sim.run ~until:(Time.sec 1) sim;
  let used = List.map (fun c -> Time.to_ms (Sched.Cpu.used c)) clients in
  (* No client exceeds its contract by more than one request quantum
     per period, and the CPU is never over-committed in total. *)
  List.iter2
    (fun u bound -> checkb "within contract" true (u <= bound +. 80.0))
    used [ 300.0; 200.0; 100.0 ];
  checkb "total below elapsed" true (List.fold_left ( +. ) 0.0 used <= 1000.0)

(* --- USD: per-period charge never exceeds slice + one overrun --- *)

let usd_period_charge_bounded () =
  let sim = Sim.create () in
  let dm = Disk.Disk_model.create () in
  let u = Usbs.Usd.create sim dm in
  let q = Usbs.Qos.make ~period:(Time.ms 250) ~slice:(Time.ms 50) () in
  let c =
    match Usbs.Usd.admit u ~name:"w" ~qos:q () with
    | Ok c -> c
    | Error e -> failwith e
  in
  ignore
    (Proc.spawn sim (fun () ->
         let rec loop i =
           Usbs.Usd.transact_exn u c Usbs.Usd.Write ~lba:(i * 16 mod 500_000)
             ~nblocks:16;
           loop (i + 1)
         in
         loop 0));
  Sim.run ~until:(Time.sec 10) sim;
  (* Partition the trace at allocation boundaries and add up charges. *)
  let period_charges = ref [] and current = ref 0 in
  Trace.iter
    (fun _ ev ->
      match ev with
      | Usbs.Usd.Alloc _ ->
        period_charges := !current :: !period_charges;
        current := 0
      | Usbs.Usd.Txn { dur; _ } -> current := !current + dur
      | Usbs.Usd.Lax { dur; _ } -> current := !current + dur
      | Usbs.Usd.Txn_error { dur; _ } -> current := !current + dur
      | Usbs.Usd.Slack _ -> ())
    (Usbs.Usd.trace u);
  (* A client may finish one transaction that started with little time
     left, so the per-period bound is slice + one max transaction. *)
  let bound = Time.ms 50 + Time.ms 25 in
  List.iter
    (fun charge -> checkb "period charge bounded" true (charge <= bound))
    !period_charges;
  checkb "several periods observed" true (List.length !period_charges > 30)

(* --- Domains: concurrent faults on the same and different pages --- *)

let concurrent_faulting_threads () =
  let sys = Experiments.Harness.fresh_system ~main_memory_mb:1 () in
  let d =
    match System.add_domain sys ~name:"app" ~guarantee:4 ~optimistic:0 () with
    | Ok d -> d
    | Error e -> failwith (System.error_message e)
  in
  let s =
    match System.alloc_stretch d ~bytes:(16 * Addr.page_size) () with
    | Ok s -> s
    | Error e -> failwith e
  in
  let bound = Sync.Ivar.create () in
  ignore
    (Domains.spawn_thread d.System.dom ~name:"binder" (fun () ->
         let qos = Usbs.Qos.make ~period:(Time.ms 250) ~slice:(Time.ms 125) () in
         (match
            System.bind_paged d ~initial_frames:4
              ~swap_bytes:(32 * Addr.page_size) ~qos s ()
          with
         | Ok _ -> ()
         | Error e -> failwith (System.error_message e));
         Sync.Ivar.fill bound ()));
  let finished = ref 0 in
  for t = 0 to 3 do
    ignore
      (Domains.spawn_thread d.System.dom
         ~name:(Printf.sprintf "worker%d" t)
         (fun () ->
           Sync.Ivar.read bound;
           let rng = Rng.create ~seed:t in
           for _ = 1 to 50 do
             let page = Rng.int rng 16 in
             Domains.access d.System.dom (Stretch.page_base s page)
               (if Rng.bool rng then `Read else `Write)
           done;
           incr finished))
  done;
  System.run sys ~until:(Time.sec 120);
  check "all faulting threads finished" 4 !finished

(* --- Paged driver under a random access pattern --- *)

let paged_random_access () =
  let sys = Experiments.Harness.fresh_system ~main_memory_mb:1 () in
  let d =
    match System.add_domain sys ~name:"app" ~guarantee:3 ~optimistic:0 () with
    | Ok d -> d
    | Error e -> failwith (System.error_message e)
  in
  let npages = 32 in
  let s =
    match System.alloc_stretch d ~bytes:(npages * Addr.page_size) () with
    | Ok s -> s
    | Error e -> failwith e
  in
  let result = ref None in
  ignore
    (Domains.spawn_thread d.System.dom ~name:"main" (fun () ->
         let qos = Usbs.Qos.make ~period:(Time.ms 250) ~slice:(Time.ms 125) () in
         let driver, h =
           match
             System.bind_paged d ~initial_frames:3
               ~swap_bytes:(2 * npages * Addr.page_size) ~qos s ()
           with
           | Ok x -> x
           | Error e -> failwith (System.error_message e)
         in
         let rng = Rng.create ~seed:99 in
         for _ = 1 to 300 do
           let page = Rng.int rng npages in
           Domains.access d.System.dom (Stretch.page_base s page)
             (if Rng.bool rng then `Read else `Write)
         done;
         result := Some (driver.Stretch_driver.resident_pages (), Sd_paged.info h)));
  System.run sys ~until:(Time.sec 300);
  match !result with
  | None -> Alcotest.fail "random-access workload did not finish"
  | Some (resident, info) ->
    checkb "residency bounded by frames" true (resident <= 3);
    checkb "paging happened" true (info.Sd_paged.page_ins > 50);
    checkb "zeros bounded by pages" true (info.Sd_paged.demand_zeros <= npages)

let suite =
  [ ( "stress.sim",
      [ qtest sim_event_order;
        qtest proc_sleep_accumulation;
        Alcotest.test_case "500 concurrent processes" `Quick
          proc_many_concurrent ] );
    ( "stress.frames", [ qtest frames_model ] );
    ( "stress.sched",
      [ Alcotest.test_case "cpu time conserved" `Quick cpu_time_conserved ] );
    ( "stress.usd",
      [ Alcotest.test_case "per-period charge bounded" `Slow
          usd_period_charge_bounded ] );
    ( "stress.domains",
      [ Alcotest.test_case "concurrent faulting threads" `Quick
          concurrent_faulting_threads;
        Alcotest.test_case "paged driver, random access" `Quick
          paged_random_access ] ) ]
