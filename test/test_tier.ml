(* Tests for the disaggregated backing-store tier: the Backing record,
   the remote-node model, the tiered store's promotion/demotion and
   double-entry loss books, and the (p,s,x,l) link plumbing the tier
   rides on. *)

open Engine

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)
let qtest = QCheck_alcotest.to_alcotest

let mk_sfs () =
  let sim = Sim.create () in
  let dm = Disk.Disk_model.create () in
  let u = Usbs.Usd.create sim dm in
  (sim, u, Usbs.Sfs.create ~first_block:0 ~nblocks:1_000_000 u)

let open_swap_exn fs ~name ~bytes =
  let q = Usbs.Qos.make ~period:(Time.ms 250) ~slice:(Time.ms 125) () in
  match Usbs.Sfs.open_swap fs ~name ~bytes ~qos:q () with
  | Ok s -> s
  | Error e -> failwith (Usbs.Sfs.open_error_message e)

let admit_exn link ~name ~period ~slice ?laxity () =
  match Usnet.Link.admit link ~name ~period ~slice ?laxity () with
  | Ok c -> c
  | Error e -> failwith (Usnet.Link.admit_error_message e)

(* A tiered store over a 32-page swapfile with its own link, client and
   remote node. *)
let mk_rig ?mode ?(cache_pages = 4) ?(remote_pages = 16)
    ?(link_name = "tlink") () =
  let sim, _, fs = mk_sfs () in
  let swap = open_swap_exn fs ~name:"t" ~bytes:(256 * 1024) in
  let link = Usnet.Link.create ~name:link_name sim in
  let client =
    admit_exn link ~name:"t.tier" ~period:(Time.ms 20) ~slice:(Time.ms 10)
      ~laxity:(Time.of_ms_float 2.0) ()
  in
  let remote = Tier.Remote_node.create ~capacity_pages:remote_pages () in
  let store =
    Tier.Store.create ?mode ~cache_pages ~link ~client ~remote ~swap ()
  in
  (sim, store, swap, remote)

(* --- Backing --- *)

let backing_of_sfs () =
  let sim, _, fs = mk_sfs () in
  let swap = open_swap_exn fs ~name:"a" ~bytes:(256 * 1024) in
  let b = Tier.Backing.of_sfs swap in
  let open Tier.Backing in
  checks "label" "sfs" b.label;
  check "page capacity" (Usbs.Sfs.page_capacity swap) (b.page_capacity ());
  checkb "journal flag" (Usbs.Sfs.swap_journaled swap) (b.journaled ());
  let lba, nblocks = b.extent () in
  check "extent start" (Usbs.Sfs.extent_start swap) lba;
  check "extent blocks" (Usbs.Sfs.extent_blocks swap) nblocks;
  let ok = ref false in
  ignore
    (Proc.spawn sim (fun () ->
         (match b.write_page ~page_index:3 with
         | Ok () -> ()
         | Error _ -> Alcotest.fail "write_page failed");
         match b.read_pages ~page_index:3 ~npages:1 with
         | Ok () -> ok := true
         | Error _ -> ()));
  Sim.run ~until:(Time.sec 1) sim;
  checkb "read back through the backing" true !ok

(* --- Remote_node --- *)

let remote_node_capacity () =
  let n = Tier.Remote_node.create ~capacity_pages:2 () in
  let store_ok owner slot =
    match Tier.Remote_node.store n ~owner ~slot with
    | Ok () -> ()
    | Error `Remote_full -> Alcotest.fail "store refused below capacity"
  in
  checkb "room" true (Tier.Remote_node.has_room n);
  store_ok "a" 0;
  store_ok "a" 1;
  check "used" 2 (Tier.Remote_node.used_pages n);
  (match Tier.Remote_node.store n ~owner:"a" ~slot:2 with
  | Error `Remote_full -> ()
  | Ok () -> Alcotest.fail "full node accepted a new page");
  store_ok "a" 1;
  check "idempotent store consumes nothing" 2 (Tier.Remote_node.used_pages n);
  checkb "holds what it stored" true
    (Tier.Remote_node.holds n ~owner:"a" ~slot:1);
  checkb "owners are distinct keyspaces" false
    (Tier.Remote_node.holds n ~owner:"b" ~slot:1);
  Tier.Remote_node.drop n ~owner:"a" ~slot:0;
  store_ok "b" 7;
  check "drop freed a slot" 2 (Tier.Remote_node.used_pages n);
  Tier.Remote_node.wipe n;
  check "wiped" 0 (Tier.Remote_node.used_pages n)

(* --- Store: deterministic demote / promote / hit --- *)

let tier_demote_promote () =
  let sim, store, swap, remote = mk_rig ~cache_pages:2 () in
  let b = Tier.Store.backing store in
  let owner = Usbs.Sfs.swap_name swap in
  let w slot =
    match b.Tier.Backing.write_pages ~page_index:slot ~npages:1 with
    | Ok () -> ()
    | Error _ -> Alcotest.fail "write failed"
  in
  let r slot =
    match b.Tier.Backing.read_pages ~page_index:slot ~npages:1 with
    | Ok () -> ()
    | Error _ -> Alcotest.fail "read failed"
  in
  ignore
    (Proc.spawn sim (fun () ->
         w 0;
         w 1;
         w 2;
         (* cache holds two: writing slot 2 demoted slot 0 *)
         r 0;
         (* remote hit, promoted back (demoting slot 1 in turn) *)
         r 0 (* now a local RAM-tier hit *)));
  Sim.run ~until:(Time.sec 5) sim;
  let s = Tier.Store.stats store in
  let open Tier.Store in
  check "demotes" 2 s.demotes;
  check "remote hit" 1 s.remote_hits;
  check "promote" 1 s.promotes;
  check "cache hit" 1 s.cache_hits;
  check "no disk round-trips" 0 s.remote_misses;
  checkb "remote stays inclusive after promotion" true
    (Tier.Remote_node.holds remote ~owner ~slot:0);
  checkb "books balance" true (books_balanced store);
  check "nothing lost" 0 s.lost_slots

(* --- Store: model property --- *)

(* Random op sequences over random cache / remote-node sizes (including
   a zero-capacity remote node) and both write modes: every slot ever
   written must read back Ok, and the loss books must balance. *)
let tier_model =
  QCheck.Test.make ~count:20
    ~name:"tier: every written slot reads back, any shape"
    QCheck.(
      pair
        (list_of_size Gen.(1 -- 50) (pair bool (int_bound 31)))
        (triple (int_range 1 6) (int_bound 10) bool))
    (fun (ops, (cache_pages, remote_pages, wb)) ->
      let mode =
        if wb then Tier.Store.Write_back else Tier.Store.Write_through
      in
      let sim, store, _, _ = mk_rig ~mode ~cache_pages ~remote_pages () in
      let b = Tier.Store.backing store in
      let written = Hashtbl.create 16 in
      let bad = ref 0 in
      ignore
        (Proc.spawn sim (fun () ->
             List.iter
               (fun (is_write, slot) ->
                 if is_write then (
                   match
                     b.Tier.Backing.write_pages ~page_index:slot ~npages:1
                   with
                   | Ok () -> Hashtbl.replace written slot ()
                   | Error _ -> incr bad)
                 else if Hashtbl.mem written slot then
                   match
                     b.Tier.Backing.read_pages ~page_index:slot ~npages:1
                   with
                   | Ok () -> ()
                   | Error _ -> incr bad)
               ops;
             (* final sweep: everything ever written still reads back *)
             Hashtbl.iter
               (fun slot () ->
                 match
                   b.Tier.Backing.read_pages ~page_index:slot ~npages:1
                 with
                 | Ok () -> ()
                 | Error _ -> incr bad)
               written));
      Sim.run ~until:(Time.sec 60) sim;
      !bad = 0
      && Tier.Store.books_balanced store
      && (Tier.Store.stats store).Tier.Store.lost_slots = 0)

(* --- Store: loss books under link chaos --- *)

(* Write-through under a hostile link: the disk always has a copy, so
   chaos may cost retransmissions and latency but never pages, and the
   double-entry loss equations must hold whatever the seed. *)
let tier_chaos_books =
  QCheck.Test.make ~count:8
    ~name:"tier: loss books balance under link chaos"
    QCheck.(int_bound 9999)
    (fun seed ->
      let sim, store, _, _ =
        mk_rig ~cache_pages:2 ~remote_pages:8 ~link_name:"chaoslink" ()
      in
      let b = Tier.Store.backing store in
      Inject.arm
        { Inject.default_plan with
          seed;
          links =
            [ ( "chaoslink",
                { Inject.lf_drop = 0.3; lf_delay = 0.2;
                  lf_delay_span = Time.of_ms_float 1.0 } ) ] };
      Fun.protect ~finally:Inject.disarm (fun () ->
          let bad = ref 0 in
          ignore
            (Proc.spawn sim (fun () ->
                 for slot = 0 to 15 do
                   match
                     b.Tier.Backing.write_pages ~page_index:slot ~npages:1
                   with
                   | Ok () -> ()
                   | Error _ -> incr bad
                 done;
                 for slot = 0 to 15 do
                   match
                     b.Tier.Backing.read_pages ~page_index:slot ~npages:1
                   with
                   | Ok () -> ()
                   | Error _ -> incr bad
                 done));
          Sim.run ~until:(Time.sec 60) sim;
          let s = Tier.Store.stats store in
          !bad = 0
          && Tier.Store.books_balanced store
          && s.Tier.Store.lost_slots = 0))

(* --- Link: typed admission errors and laxity --- *)

let link_typed_errors () =
  let sim = Sim.create () in
  let link = Usnet.Link.create sim in
  (match
     Usnet.Link.admit link ~name:"neg" ~period:(Time.ms 10)
       ~slice:(Time.ms 5) ~laxity:(-1) ()
   with
  | Error (Usnet.Link.Bad_qos _ as e) ->
    checks "legacy laxity string" "laxity must be non-negative"
      (Usnet.Link.admit_error_message e)
  | Error _ -> Alcotest.fail "wrong error class for negative laxity"
  | Ok _ -> Alcotest.fail "negative laxity admitted");
  ignore (admit_exn link ~name:"a" ~period:(Time.ms 10) ~slice:(Time.ms 6) ());
  match
    Usnet.Link.admit link ~name:"b" ~period:(Time.ms 10) ~slice:(Time.ms 5) ()
  with
  | Error (Usnet.Link.Link_overcommit { requested; available } as e) ->
    checkb "requested half the link" true
      (abs_float (requested -. 0.5) < 1e-9);
    checkb "0.4 still available" true (abs_float (available -. 0.4) < 1e-9);
    checks "legacy overbook string" "admission refused: utilisation 1.100 > 1"
      (Usnet.Link.admit_error_message e)
  | Error _ -> Alcotest.fail "wrong error class for overcommit"
  | Ok _ -> Alcotest.fail "overbooked link admission accepted"

let link_laxity_holds_place () =
  let sim = Sim.create () in
  let link = Usnet.Link.create sim in
  let c =
    admit_exn link ~name:"bulk" ~period:(Time.ms 10) ~slice:(Time.ms 8)
      ~laxity:(Time.of_ms_float 1.0) ()
  in
  let sent = ref 0 in
  ignore
    (Proc.spawn sim (fun () ->
         for _ = 1 to 50 do
           (match Usnet.Link.transmit link c ~bytes:1514 with
           | Ok () -> incr sent
           | Error `Retired -> Alcotest.fail "client retired");
           Proc.sleep (Time.us 300)
         done));
  Sim.run ~until:(Time.sec 2) sim;
  check "all packets out" 50 !sent;
  checkb "lax time charged for think gaps" true (Usnet.Link.lax_time c > 0)

(* --- Experiment smoke --- *)

let remote_experiment_smoke () =
  let r = Experiments.Remote_page.run ~seed:5 ~duration:(Time.sec 6) () in
  check "no bystander violations" 0
    r.Experiments.Remote_page.bystander_violations;
  checkb "loss books balance" true r.Experiments.Remote_page.books_balanced;
  checkb "same-seed rerun byte-identical" true
    r.Experiments.Remote_page.deterministic

let suite =
  [ ( "tier.backing",
      [ Alcotest.test_case "of_sfs passthrough" `Quick backing_of_sfs ] );
    ( "tier.remote_node",
      [ Alcotest.test_case "capacity and idempotence" `Quick
          remote_node_capacity ] );
    ( "tier.store",
      [ Alcotest.test_case "demote, promote, hit" `Quick tier_demote_promote;
        qtest tier_model;
        qtest tier_chaos_books ] );
    ( "tier.link",
      [ Alcotest.test_case "typed admit errors" `Quick link_typed_errors;
        Alcotest.test_case "laxity holds the link across think gaps" `Quick
          link_laxity_holds_place ] );
    ( "tier.experiment",
      [ Alcotest.test_case "remote paging smoke" `Slow remote_experiment_smoke
      ] ) ]
