(* Tests for the domain-level runtime facilities: the user-level thread
   scheduler, typed IDC, and user-safe receive demultiplexing. *)

open Engine
open Core

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let mk_domain sys name =
  match System.add_domain sys ~name ~guarantee:2 ~optimistic:0 () with
  | Ok d -> d
  | Error e -> failwith (System.error_message e)

(* --- Ults --- *)

let ults_fork_join_yield () =
  let sys = Experiments.Harness.fresh_system ~main_memory_mb:1 () in
  let d = mk_domain sys "app" in
  let ults = Ults.create d.System.dom in
  let log = ref [] in
  ignore
    (Domains.spawn_thread d.System.dom ~name:"main" (fun () ->
         let t1 =
           Ults.fork ults ~name:"one" (fun () ->
               log := "one-a" :: !log;
               Ults.yield ults;
               log := "one-b" :: !log)
         in
         let t2 =
           Ults.fork ults ~name:"two" (fun () ->
               log := "two-a" :: !log;
               Ults.yield ults;
               log := "two-b" :: !log)
         in
         Ults.join ults t1;
         Ults.join ults t2;
         log := "joined" :: !log));
  System.run sys ~until:(Time.sec 2);
  (* Yields interleave the two threads. *)
  Alcotest.(check (list string))
    "interleaving" [ "one-a"; "two-a"; "one-b"; "two-b"; "joined" ]
    (List.rev !log);
  check "registry drained" 0 (Ults.threads ults)

let ults_block_unblock () =
  let sys = Experiments.Harness.fresh_system ~main_memory_mb:1 () in
  let d = mk_domain sys "app" in
  let ults = Ults.create d.System.dom in
  let woke_at = ref Time.zero in
  ignore
    (Domains.spawn_thread d.System.dom ~name:"main" (fun () ->
         let sleeper =
           Ults.fork ults ~name:"sleeper" (fun () ->
               Ults.block ults;
               woke_at := Sim.now (Domains.sim d.System.dom))
         in
         Proc.sleep (Time.ms 5);
         Ults.unblock ults sleeper;
         Ults.join ults sleeper));
  System.run sys ~until:(Time.sec 2);
  checkb "woke after the unblock" true (!woke_at >= Time.ms 5)

let ults_unblock_before_block () =
  (* The pending-wake protocol: an unblock delivered before the block
     must not be lost. *)
  let sys = Experiments.Harness.fresh_system ~main_memory_mb:1 () in
  let d = mk_domain sys "app" in
  let ults = Ults.create d.System.dom in
  let finished = ref false in
  ignore
    (Domains.spawn_thread d.System.dom ~name:"main" (fun () ->
         let th =
           Ults.fork ults ~name:"late-blocker" (fun () ->
               Proc.sleep (Time.ms 10);
               Ults.block ults;
               (* must return immediately thanks to the pending wake *)
               finished := true)
         in
         Proc.sleep (Time.ms 1);
         Ults.unblock ults th;
         Ults.join ults th));
  System.run sys ~until:(Time.sec 2);
  checkb "wake survived the race" true !finished

let ults_charges_cpu () =
  let sys = Experiments.Harness.fresh_system ~main_memory_mb:1 () in
  let d = mk_domain sys "app" in
  let ults = Ults.create d.System.dom in
  ignore
    (Domains.spawn_thread d.System.dom ~name:"main" (fun () ->
         for _ = 1 to 100 do
           Ults.yield ults
         done));
  System.run sys ~until:(Time.sec 2);
  (* 100 scheduling decisions at 1 us each. *)
  checkb "cpu charged for scheduling" true
    (Domains.cpu_used d.System.dom >= Time.us 100)

(* --- Idc --- *)

let idc_roundtrip () =
  let sys = Experiments.Harness.fresh_system ~main_memory_mb:1 () in
  let server = mk_domain sys "server" in
  let client = mk_domain sys "client" in
  let svc = Idc.offer server.System.dom ~name:"double" (fun x -> 2 * x) in
  let got = ref 0 in
  ignore
    (Domains.spawn_thread client.System.dom ~name:"caller" (fun () ->
         got := Idc.call client.System.dom svc 21));
  System.run sys ~until:(Time.sec 2);
  check "reply" 42 !got;
  check "served" 1 (Idc.calls_served svc);
  (* The caller paid the IDC round trip; the server paid for running
     the handler (worker wake-up). *)
  checkb "caller charged" true
    (Domains.cpu_used client.System.dom
     >= (Domains.cost client.System.dom).Hw.Cost.idc_call);
  checkb "server charged" true (Domains.cpu_used server.System.dom > 0)

let idc_serialises_on_one_worker () =
  let sys = Experiments.Harness.fresh_system ~main_memory_mb:1 () in
  let server = mk_domain sys "server" in
  let client = mk_domain sys "client" in
  let inside = ref 0 and overlap = ref false in
  let svc =
    Idc.offer server.System.dom ~name:"slow" (fun () ->
        incr inside;
        if !inside > 1 then overlap := true;
        Proc.sleep (Time.ms 3);
        decr inside)
  in
  for i = 1 to 3 do
    ignore
      (Domains.spawn_thread client.System.dom
         ~name:(Printf.sprintf "c%d" i)
         (fun () -> Idc.call client.System.dom svc ()))
  done;
  System.run sys ~until:(Time.sec 2);
  check "all served" 3 (Idc.calls_served svc);
  checkb "single worker serialises" false !overlap

let idc_forbidden_in_handler () =
  let sys = Experiments.Harness.fresh_system ~main_memory_mb:1 () in
  let server = mk_domain sys "server" in
  let client = mk_domain sys "client" in
  let svc = Idc.offer server.System.dom ~name:"echo" (fun x -> x) in
  let rejected = ref false in
  (* Attempt the call from inside a notification handler. *)
  Domains.queue_notification client.System.dom (fun () ->
      try ignore (Idc.call client.System.dom svc 1)
      with Failure _ -> rejected := true);
  System.run sys ~until:(Time.sec 2);
  checkb "IDC rejected in activation handler" true !rejected

let idc_dead_server () =
  let sys = Experiments.Harness.fresh_system ~main_memory_mb:1 () in
  let server = mk_domain sys "server" in
  let client = mk_domain sys "client" in
  let svc = Idc.offer server.System.dom ~name:"gone" (fun x -> x) in
  System.kill_domain sys server;
  let failed = ref false in
  ignore
    (Domains.spawn_thread client.System.dom ~name:"caller" (fun () ->
         try ignore (Idc.call client.System.dom svc 1)
         with Failure _ -> failed := true));
  System.run sys ~until:(Time.sec 2);
  checkb "call to dead server fails cleanly" true !failed

(* --- Rx --- *)

let rx_demux_and_isolation () =
  let sim = Sim.create () in
  let rx = Usnet.Rx.create sim in
  let a =
    match Usnet.Rx.open_flow rx ~name:"a" ~ring:4 () with
    | Ok f -> f
    | Error e -> failwith e
  in
  let b =
    match Usnet.Rx.open_flow rx ~name:"b" ~ring:4 () with
    | Ok f -> f
    | Error e -> failwith e
  in
  (* Flood flow a (nobody reading); trickle flow b. *)
  for _ = 1 to 20 do
    ignore (Usnet.Rx.deliver rx ~name:"a" ~bytes:1514)
  done;
  for _ = 1 to 3 do
    ignore (Usnet.Rx.deliver rx ~name:"b" ~bytes:512)
  done;
  check "a queued to ring size" 4 (Usnet.Rx.received a);
  check "a dropped the rest" 16 (Usnet.Rx.dropped a);
  check "b unaffected by a's flood" 3 (Usnet.Rx.received b);
  check "b dropped nothing" 0 (Usnet.Rx.dropped b);
  Alcotest.(check (option int)) "b data" (Some 512) (Usnet.Rx.try_recv b);
  checkb "unknown flow" true (Usnet.Rx.deliver rx ~name:"zz" ~bytes:1 = `No_flow)

let rx_blocking_recv () =
  let sim = Sim.create () in
  let rx = Usnet.Rx.create sim in
  let f =
    match Usnet.Rx.open_flow rx ~name:"f" () with
    | Ok f -> f
    | Error e -> failwith e
  in
  let got = ref [] in
  ignore
    (Proc.spawn sim (fun () ->
         for _ = 1 to 2 do
           got := Usnet.Rx.recv f :: !got
         done));
  ignore
    (Sim.after sim (Time.ms 1) (fun () ->
         ignore (Usnet.Rx.deliver rx ~name:"f" ~bytes:100);
         ignore (Usnet.Rx.deliver rx ~name:"f" ~bytes:200)));
  Sim.run sim;
  Alcotest.(check (list int)) "frames in order" [ 100; 200 ] (List.rev !got);
  Usnet.Rx.close_flow rx f;
  checkb "closed flow drops" true (Usnet.Rx.deliver rx ~name:"f" ~bytes:1 = `No_flow)

let suite =
  [ ( "runtime.ults",
      [ Alcotest.test_case "fork/yield/join" `Quick ults_fork_join_yield;
        Alcotest.test_case "block/unblock" `Quick ults_block_unblock;
        Alcotest.test_case "unblock-before-block race" `Quick
          ults_unblock_before_block;
        Alcotest.test_case "scheduling costs CPU" `Quick ults_charges_cpu ] );
    ( "runtime.idc",
      [ Alcotest.test_case "typed round trip" `Quick idc_roundtrip;
        Alcotest.test_case "single worker serialises" `Quick
          idc_serialises_on_one_worker;
        Alcotest.test_case "forbidden in activation handler" `Quick
          idc_forbidden_in_handler;
        Alcotest.test_case "dead server" `Quick idc_dead_server ] );
    ( "runtime.rx",
      [ Alcotest.test_case "per-flow rings isolate loss" `Quick
          rx_demux_and_isolation;
        Alcotest.test_case "blocking receive" `Quick rx_blocking_recv ] ) ]
