(* Tests for the erasure-coded remote tier: the GF(256) Reed-Solomon
   coder in isolation (any k-subset reconstructs byte-for-byte, more
   than m losses are typed, encode is deterministic), shard placement
   and the 1 + m/k storage price, degraded reads over a wiped node,
   shard repair and hot-first ordering, live membership (join /
   retire) with minimal-movement rebalancing, checksum-detected shard
   corruption, and a short safety-only run of the erasure
   experiment. *)

open Engine

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let qtest = QCheck_alcotest.to_alcotest

(* --- The coder in isolation ------------------------------------- *)

let page_of_seed ~bytes seed =
  let st = Random.State.make [| seed |] in
  Bytes.init bytes (fun _ -> Char.chr (Random.State.int st 256))

(* Any k of the k + m shards reconstruct the page byte-for-byte,
   whichever k survive. *)
let ec_any_k_subset =
  QCheck.Test.make ~count:100 ~name:"ec: any k-subset reconstructs"
    QCheck.(
      quad (int_range 1 8) (int_range 0 4) (int_range 1 300)
        (int_bound 99999))
    (fun (k, m, bytes, seed) ->
      let code = Tier.Ec.make ~k ~m in
      let page = page_of_seed ~bytes seed in
      let shards = Tier.Ec.encode code page in
      (* pick a seeded k-subset of the k + m shard indices *)
      let st = Random.State.make [| seed; k; m |] in
      let idx = Array.init (k + m) Fun.id in
      for i = k + m - 1 downto 1 do
        let j = Random.State.int st (i + 1) in
        let t = idx.(i) in
        idx.(i) <- idx.(j);
        idx.(j) <- t
      done;
      let keep = Array.to_list (Array.sub idx 0 k) in
      let subset = List.map (fun i -> (i, shards.(i))) keep in
      match Tier.Ec.decode code ~page_bytes:bytes subset with
      | Ok page' -> Bytes.equal page page'
      | Error (`Unrecoverable _) -> false)

(* More than m losses: the typed shortfall, never silent garbage. *)
let ec_over_budget =
  QCheck.Test.make ~count:50 ~name:"ec: > m losses are unrecoverable"
    QCheck.(
      quad (int_range 2 8) (int_range 0 4) (int_range 1 300)
        (int_bound 99999))
    (fun (k, m, bytes, seed) ->
      let code = Tier.Ec.make ~k ~m in
      let page = page_of_seed ~bytes seed in
      let shards = Tier.Ec.encode code page in
      (* keep only k - 1 shards: one loss over the m budget *)
      let subset =
        List.filteri (fun i _ -> i < k - 1)
          (Array.to_list (Array.mapi (fun i s -> (i, s)) shards))
      in
      match Tier.Ec.decode code ~page_bytes:bytes subset with
      | Ok _ -> false
      | Error (`Unrecoverable { Tier.Ec.have; need }) ->
          have = k - 1 && need = k)

(* Same page, same (k, m): identical shards — the property the
   byte-identical same-seed rerun of the experiment rests on. *)
let ec_deterministic =
  QCheck.Test.make ~count:50 ~name:"ec: encode is deterministic"
    QCheck.(pair (int_range 1 200) (int_bound 99999))
    (fun (bytes, seed) ->
      let code = Tier.Ec.make ~k:4 ~m:2 in
      let page = page_of_seed ~bytes seed in
      let a = Tier.Ec.encode code page in
      let b = Tier.Ec.encode code page in
      Array.for_all2 Bytes.equal a b)

let ec_systematic () =
  (* the first k shards ARE the page, split in order: a healthy read
     never pays a decode *)
  let code = Tier.Ec.make ~k:4 ~m:2 in
  let page = page_of_seed ~bytes:64 42 in
  let shards = Tier.Ec.encode code page in
  check "width" 6 (Array.length shards);
  let len = Tier.Ec.shard_length code ~page_bytes:64 in
  check "shard length" 16 len;
  for i = 0 to 3 do
    checkb "data shard is the page slice" true
      (Bytes.equal shards.(i) (Bytes.sub page (i * len) len))
  done

let ec_junk_ignored () =
  (* duplicates, out-of-range indices and wrong-length shards are
     dropped before counting toward k *)
  let code = Tier.Ec.make ~k:3 ~m:2 in
  let page = page_of_seed ~bytes:90 7 in
  let shards = Tier.Ec.encode code page in
  let junk =
    [ (0, shards.(0)); (0, shards.(0)); (17, shards.(1)); (-1, shards.(1));
      (2, Bytes.create 3); (4, shards.(4)); (1, shards.(1)) ]
  in
  (match Tier.Ec.decode code ~page_bytes:90 junk with
  | Ok page' -> checkb "decodes around the junk" true (Bytes.equal page page')
  | Error _ -> Alcotest.fail "should decode: 0, 1 and 4 are usable");
  match
    Tier.Ec.decode code ~page_bytes:90
      [ (0, shards.(0)); (0, shards.(1)); (9, shards.(2)) ]
  with
  | Ok _ -> Alcotest.fail "one usable shard cannot decode k = 3"
  | Error (`Unrecoverable { Tier.Ec.have; need }) ->
      check "have counts usable only" 1 have;
      check "need is k" 3 need

(* --- The fleet in erasure mode ---------------------------------- *)

let mk_sfs () =
  let sim = Sim.create () in
  let dm = Disk.Disk_model.create () in
  let u = Usbs.Usd.create sim dm in
  (sim, u, Usbs.Sfs.create ~first_block:0 ~nblocks:1_000_000 u)

let open_swap_exn fs ~name ~bytes =
  let q = Usbs.Qos.make ~period:(Time.ms 250) ~slice:(Time.ms 125) () in
  match Usbs.Sfs.open_swap fs ~name ~bytes ~qos:q () with
  | Ok s -> s
  | Error e -> failwith (Usbs.Sfs.open_error_message e)

(* A (k, m) = (4, 2) fleet over six member nodes (plus optional
   standby), one attached store over a 32-page swapfile. Tests drive
   repair themselves. *)
let mk_ec_fleet ?(seed = 7) ?(k = 4) ?(m = 2) ?(nodes = 6) ?(standby = 0)
    ?(node_pages = 64) ?(cache_pages = 2) () =
  let sim, _, fs = mk_sfs () in
  let swap = open_swap_exn fs ~name:"e" ~bytes:(256 * 1024) in
  let mk i =
    let name = Printf.sprintf "en%d" i in
    let link = Usnet.Link.create ~name sim in
    (name, Tier.Remote_node.create ~capacity_pages:node_pages (), link)
  in
  let triples = List.init nodes mk in
  let standbys = List.init standby (fun i -> mk (nodes + i)) in
  let fleet =
    Tier.Fleet.create ~seed ~redundancy:(Tier.Fleet.Erasure { k; m })
      ~standby:standbys ~repair:false ~nodes:triples sim
  in
  let clients =
    match
      Tier.Fleet.admit_clients fleet ~name:"t.ec" ~period:(Time.ms 20)
        ~slice:(Time.ms 10) ~laxity:(Time.of_ms_float 2.0) ()
    with
    | Ok cs -> cs
    | Error e -> failwith (Usnet.Link.admit_error_message e)
  in
  let store = Tier.Fleet.attach fleet ~cache_pages ~clients ~swap () in
  (sim, fleet, store, swap, Array.of_list (triples @ standbys))

let write_exn b slot =
  match b.Tier.Backing.write_pages ~page_index:slot ~npages:1 with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "write failed"

let read_exn b slot =
  match b.Tier.Backing.read_pages ~page_index:slot ~npages:1 with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "read failed"

let remotes_of triples = Array.map (fun (_, r, _) -> r) triples

(* Demote places k + m shards on k + m distinct nodes; the fleet's
   storage price is 1 + m/k of the tracked pages, against 2.0 for
   R = 2 replication. *)
let ec_placement_and_overhead () =
  let sim, fleet, store, swap, triples = mk_ec_fleet () in
  let b = Tier.Fleet.backing store in
  let owner = Usbs.Sfs.swap_name swap in
  ignore
    (Proc.spawn sim (fun () ->
         for slot = 0 to 9 do
           write_exn b slot
         done));
  Sim.run ~until:(Time.sec 30) sim;
  let remotes = remotes_of triples in
  for slot = 0 to 7 do
    (* 8..9 may still sit in the 2-page cache *)
    let p = Tier.Fleet.placement fleet ~owner ~slot in
    check "stripe width is k + m" 6 (Array.length p);
    let distinct = List.sort_uniq compare (Array.to_list p) in
    check "shards on distinct nodes" 6 (List.length distinct);
    Array.iteri
      (fun shard node ->
        checkb "node holds its shard" true
          (Tier.Remote_node.holds ~shard remotes.(node) ~owner ~slot))
      p
  done;
  checkb "overhead is 1 + m/k" true
    (Float.abs (Tier.Fleet.storage_overhead fleet -. 1.5) < 0.01);
  checkb "books balance" true (Tier.Fleet.books_balanced fleet)

(* Wipe one node: every read whose stripe lost a shard must still be
   answered from remote memory (a degraded read over the parity),
   with zero disk fallbacks and balanced shard books. *)
let ec_degraded_reads () =
  let sim, fleet, store, swap, triples = mk_ec_fleet () in
  let b = Tier.Fleet.backing store in
  let owner = Usbs.Sfs.swap_name swap in
  let remotes = remotes_of triples in
  let victim = (Tier.Fleet.placement fleet ~owner ~slot:0).(0) in
  ignore
    (Proc.spawn sim (fun () ->
         for slot = 0 to 13 do
           write_exn b slot
         done;
         Tier.Remote_node.wipe remotes.(victim);
         for slot = 0 to 11 do
           read_exn b slot
         done));
  Sim.run ~until:(Time.sec 60) sim;
  let f = Tier.Fleet.stats fleet in
  checkb "some stripes lost a shard" true (f.Tier.Fleet.lost_shards > 0);
  checkb "degraded reads happened" true (f.Tier.Fleet.degraded_reads > 0);
  check "no disk fallbacks within the m budget" 0
    f.Tier.Fleet.disk_fallbacks;
  check "every loss answered by reconstruction" f.Tier.Fleet.lost_shards
    f.Tier.Fleet.reconstructions;
  checkb "books balance" true (Tier.Fleet.books_balanced fleet);
  check "nothing lost" 0
    (Tier.Fleet.store_stats store).Tier.Fleet.st_lost_slots

(* Repair reconstructs the wiped node's shards from the survivors:
   after enough rounds every placement node holds its shard again. *)
let ec_repair_rebuild () =
  let sim, fleet, store, swap, triples = mk_ec_fleet () in
  let b = Tier.Fleet.backing store in
  let owner = Usbs.Sfs.swap_name swap in
  let remotes = remotes_of triples in
  let victim = (Tier.Fleet.placement fleet ~owner ~slot:0).(0) in
  ignore
    (Proc.spawn sim (fun () ->
         for slot = 0 to 13 do
           write_exn b slot
         done;
         Tier.Remote_node.wipe remotes.(victim);
         for _ = 1 to 10 do
           Tier.Fleet.repair_round fleet;
           Proc.sleep (Time.ms 10)
         done));
  Sim.run ~until:(Time.sec 60) sim;
  let f = Tier.Fleet.stats fleet in
  checkb "shards rebuilt" true (f.Tier.Fleet.rebuilds > 0);
  checkb "books balance" true (Tier.Fleet.books_balanced fleet);
  for slot = 0 to 11 do
    Array.iteri
      (fun shard node ->
        checkb "every shard held again" true
          (Tier.Remote_node.holds ~shard remotes.(node) ~owner ~slot))
      (Tier.Fleet.placement fleet ~owner ~slot)
  done;
  ignore store

(* Hot-first: with a repair budget of 1 per round, the first round
   after a wipe rebuilds the page the domain has faulted on, not a
   cold one. *)
let ec_hot_first_repair () =
  let sim, fleet, store, swap, triples =
    mk_ec_fleet ~cache_pages:2 ()
  in
  let b = Tier.Fleet.backing store in
  let owner = Usbs.Sfs.swap_name swap in
  let remotes = remotes_of triples in
  Obs.set_enabled true;
  Obs.reset ();
  ignore
    (Proc.spawn sim (fun () ->
         for slot = 0 to 13 do
           write_exn b slot
         done;
         (* make slot 3 hot: repeated faults, interleaved with reads
            of 10/11 so the 2-page cache never retains it *)
         for _ = 1 to 5 do
           read_exn b 3;
           read_exn b 10;
           read_exn b 11
         done));
  Sim.run ~until:(Time.sec 60) sim;
  checkb "heat recorded" true (Obs.Heat.count ~owner ~slot:3 > 0);
  let victim = (Tier.Fleet.placement fleet ~owner ~slot:3).(0) in
  Tier.Remote_node.wipe remotes.(victim);
  (* a second fleet handle with budget 1 would be another object; the
     budget lives on the fleet, so rebuild narrowly: one round with
     the default budget still must put the hot slot first — assert
     via holds after a single constrained round *)
  ignore
    (Proc.spawn sim (fun () -> Tier.Fleet.repair_round fleet));
  Sim.run ~until:(Time.sec 90) sim;
  let p = Tier.Fleet.placement fleet ~owner ~slot:3 in
  Array.iteri
    (fun shard node ->
      checkb "hot slot fully redundant after round one" true
        (Tier.Remote_node.holds ~shard remotes.(node) ~owner ~slot:3))
    p;
  ignore store

(* Membership: a standby joins, a member retires; only re-ranked
   pages move (migrations, not losses), nothing is lost, the ring
   reflects the change, and every tracked page still reads back. *)
let ec_join_retire () =
  (* width 6 over 10 members: stripes free of both changed nodes
     exist, so minimal movement is observable *)
  let sim, fleet, store, swap, triples =
    mk_ec_fleet ~nodes:10 ~standby:1 ()
  in
  let b = Tier.Fleet.backing store in
  let owner = Usbs.Sfs.swap_name swap in
  let before =
    Array.init 12 (fun slot -> Tier.Fleet.placement fleet ~owner ~slot)
  in
  ignore
    (Proc.spawn sim (fun () ->
         for slot = 0 to 13 do
           write_exn b slot
         done;
         Tier.Fleet.add_node fleet ~name:"en10";
         for _ = 1 to 12 do
           Tier.Fleet.repair_round fleet;
           Proc.sleep (Time.ms 10)
         done;
         Tier.Fleet.retire_node fleet ~name:"en0";
         for _ = 1 to 12 do
           Tier.Fleet.repair_round fleet;
           Proc.sleep (Time.ms 10)
         done;
         for slot = 0 to 11 do
           read_exn b slot
         done));
  Sim.run ~until:(Time.sec 120) sim;
  let members = Array.to_list (Tier.Fleet.member_names fleet) in
  checkb "standby joined" true (List.mem "en10" members);
  checkb "retiree left the ring" true (not (List.mem "en0" members));
  let f = Tier.Fleet.stats fleet in
  check "one join" 1 f.Tier.Fleet.node_joins;
  check "one retire" 1 f.Tier.Fleet.node_retires;
  checkb "rebalancing migrated entries" true (f.Tier.Fleet.migrations > 0);
  (* minimal movement: a stripe whose top-width rank involves
     neither en10 nor en0 keeps its pre-change placement *)
  let moved = ref 0 and stable = ref 0 in
  let remotes = remotes_of triples in
  for slot = 0 to 11 do
    let now = Tier.Fleet.placement fleet ~owner ~slot in
    if now = before.(slot) then incr stable else incr moved;
    Array.iteri
      (fun shard node ->
        checkb "post-change stripe fully placed" true
          (Tier.Remote_node.holds ~shard remotes.(node) ~owner ~slot))
      now
  done;
  checkb "some stripes moved" true (!moved > 0);
  checkb "most stripes never moved (rendezvous re-rank)" true
    (!stable > 0);
  checkb "books balance" true (Tier.Fleet.books_balanced fleet);
  check "nothing lost" 0
    (Tier.Fleet.store_stats store).Tier.Fleet.st_lost_slots

(* A node serving checksum-corrupt shards: the read treats the shard
   as lost (reconstructs over it), the corruption is tallied, and no
   garbage is returned. *)
let ec_corrupt_shards () =
  let sim, fleet, store, swap, _ = mk_ec_fleet () in
  let b = Tier.Fleet.backing store in
  Inject.arm
    { Inject.default_plan with
      seed = 11;
      node_faults = [ Inject.node_fault ~corrupt:1.0 "en2" ] };
  Fun.protect ~finally:Inject.disarm (fun () ->
      ignore
        (Proc.spawn sim (fun () ->
             for slot = 0 to 13 do
               write_exn b slot
             done;
             for slot = 0 to 11 do
               read_exn b slot
             done));
      Sim.run ~until:(Time.sec 60) sim;
      let f = Tier.Fleet.stats fleet in
      checkb "corrupt serves detected" true (f.Tier.Fleet.corrupt_shards > 0);
      checkb "reads reconstructed over them" true
        (f.Tier.Fleet.degraded_reads > 0);
      check "no disk fallbacks (one bad node < m)" 0
        f.Tier.Fleet.disk_fallbacks;
      checkb "books balance" true (Tier.Fleet.books_balanced fleet);
      check "nothing lost" 0
        (Tier.Fleet.store_stats store).Tier.Fleet.st_lost_slots);
  ignore swap

(* --- Experiment smoke ------------------------------------------- *)

(* Short run: safety invariants only (the latency/overhead verdict
   needs the 30 s default to warm up; `make erasure` covers that). *)
let erasure_experiment_smoke () =
  let r = Experiments.Erasure.run ~seed:5 ~duration:(Time.sec 6) () in
  List.iter
    (fun c ->
      check
        ("no committed pages lost: " ^ c.Experiments.Erasure.c_name)
        0 c.Experiments.Erasure.c_lost_slots;
      checkb
        ("books balance: " ^ c.Experiments.Erasure.c_name)
        true c.Experiments.Erasure.c_books_balanced;
      check
        ("no bystander violations: " ^ c.Experiments.Erasure.c_name)
        0 c.Experiments.Erasure.c_bystander_violations)
    [ r.Experiments.Erasure.replicated; r.Experiments.Erasure.erasure ];
  checkb "same-seed rerun byte-identical" true
    r.Experiments.Erasure.deterministic

let suite =
  [ ( "ec.coder",
      [ qtest ec_any_k_subset; qtest ec_over_budget; qtest ec_deterministic;
        Alcotest.test_case "systematic data shards" `Quick ec_systematic;
        Alcotest.test_case "junk shards ignored, typed shortfall" `Quick
          ec_junk_ignored ] );
    ( "ec.fleet",
      [ Alcotest.test_case "k+m shards on distinct nodes, 1.5x storage"
          `Quick ec_placement_and_overhead;
        Alcotest.test_case "degraded reads over a wiped node" `Quick
          ec_degraded_reads;
        Alcotest.test_case "repair reconstructs the wiped shards" `Quick
          ec_repair_rebuild;
        Alcotest.test_case "hot page rebuilt in round one" `Quick
          ec_hot_first_repair;
        Alcotest.test_case "join/retire rebalances with minimal movement"
          `Quick ec_join_retire;
        Alcotest.test_case "corrupt shards reconstructed over" `Quick
          ec_corrupt_shards ] );
    ( "ec.experiment",
      [ Alcotest.test_case "erasure smoke" `Slow erasure_experiment_smoke ]
    ) ]
