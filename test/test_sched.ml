(* Tests for the Atropos/EDF accounting core and the CPU scheduler. *)

open Engine
open Sched

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let admit_exn t ~name ~period ~slice ?extra () =
  match Edf.admit t ~name ~period ~slice ?extra ~now:Time.zero () with
  | Ok c -> c
  | Error e -> failwith e

(* --- Edf --- *)

let edf_admission () =
  let t = Edf.create () in
  let _a = admit_exn t ~name:"a" ~period:(Time.ms 100) ~slice:(Time.ms 60) () in
  let _b = admit_exn t ~name:"b" ~period:(Time.ms 100) ~slice:(Time.ms 40) () in
  Alcotest.(check (float 1e-9)) "fully booked" 1.0 (Edf.utilisation t);
  (match Edf.admit t ~name:"c" ~period:(Time.ms 100) ~slice:(Time.ms 1)
           ~now:Time.zero () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "overbooked admission accepted");
  (match Edf.admit t ~name:"d" ~period:(Time.ms 10) ~slice:(Time.ms 20)
           ~now:Time.zero () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "slice > period accepted")

let edf_replenish_rollover () =
  let t = Edf.create () in
  let c = admit_exn t ~name:"a" ~period:(Time.ms 100) ~slice:(Time.ms 10) () in
  Edf.charge c (Time.ms 14); (* 4 ms overrun *)
  check "negative remaining" (Time.ms (-4)) c.Edf.remaining;
  check "one grant" 1 (Edf.replenish t ~now:(Time.ms 100) c);
  check "carry deducted" (Time.ms 6) c.Edf.remaining;
  check "deadline advanced" (Time.ms 200) c.Edf.deadline

let edf_no_rollover () =
  let t = Edf.create ~rollover:false () in
  let c = admit_exn t ~name:"a" ~period:(Time.ms 100) ~slice:(Time.ms 10) () in
  Edf.charge c (Time.ms 14);
  ignore (Edf.replenish t ~now:(Time.ms 100) c);
  check "full slice regardless" (Time.ms 10) c.Edf.remaining

let edf_idle_does_not_stack () =
  let t = Edf.create () in
  let c = admit_exn t ~name:"a" ~period:(Time.ms 100) ~slice:(Time.ms 10) () in
  (* Five periods pass while idle. *)
  check "five boundaries" 5 (Edf.replenish t ~now:(Time.ms 520) c);
  check "still one slice" (Time.ms 10) c.Edf.remaining;
  check "deadline in the future" (Time.ms 600) c.Edf.deadline

let edf_select_earliest () =
  let t = Edf.create () in
  let _a = admit_exn t ~name:"a" ~period:(Time.ms 200) ~slice:(Time.ms 10) () in
  let b = admit_exn t ~name:"b" ~period:(Time.ms 100) ~slice:(Time.ms 10) () in
  (match Edf.select t ~now:Time.zero with
  | Some c -> Alcotest.(check string) "earliest deadline" "b" c.Edf.cname
  | None -> Alcotest.fail "nobody selected");
  Edf.charge b (Time.ms 10);
  (match Edf.select t ~now:Time.zero with
  | Some c -> Alcotest.(check string) "b exhausted, a next" "a" c.Edf.cname
  | None -> Alcotest.fail "nobody selected");
  (* Slack selection ignores budget but honours the x flag. *)
  checkb "no slack-eligible client" true
    (Edf.select_slack t ~now:Time.zero = None)

let edf_slack_flag () =
  let t = Edf.create () in
  let a =
    admit_exn t ~name:"a" ~period:(Time.ms 100) ~slice:(Time.ms 10)
      ~extra:true ()
  in
  Edf.charge a (Time.ms 10);
  checkb "exhausted" false (Edf.has_budget a);
  (match Edf.select_slack t ~now:Time.zero with
  | Some c -> Alcotest.(check string) "slack goes to x client" "a" c.Edf.cname
  | None -> Alcotest.fail "slack client not found")

(* --- Cpu --- *)

let cpu_admit_exn cpu ~name ~period ~slice ?extra () =
  match Cpu.admit cpu ~name ~period ~slice ?extra () with
  | Ok c -> c
  | Error e -> failwith e

let consume_exn cpu c span =
  match Cpu.consume cpu c span with
  | Ok () -> ()
  | Error `Removed -> failwith "consume_exn: client removed"

let cpu_consume_advances_time () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim in
  let c = cpu_admit_exn cpu ~name:"a" ~period:(Time.ms 10) ~slice:(Time.ms 5) () in
  let finished = ref Time.zero in
  ignore
    (Proc.spawn sim (fun () ->
         consume_exn cpu c (Time.ms 2);
         finished := Sim.now sim));
  Sim.run ~until:(Time.ms 100) sim;
  check "2ms of cpu took 2ms uncontended" (Time.ms 2) !finished;
  check "accounted" (Time.ms 2) (Cpu.used c)

let cpu_guarantees_respected () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim in
  (* Two always-hungry clients with a 3:1 split and no slack: their
     long-run shares must follow the contracts. *)
  let a = cpu_admit_exn cpu ~name:"a" ~period:(Time.ms 10) ~slice:(Time.ms 6)
      ~extra:false () in
  let b = cpu_admit_exn cpu ~name:"b" ~period:(Time.ms 10) ~slice:(Time.ms 2)
      ~extra:false () in
  let hungry client () =
    let rec loop () =
      consume_exn cpu client (Time.us 500);
      loop ()
    in
    loop ()
  in
  ignore (Proc.spawn sim (hungry a));
  ignore (Proc.spawn sim (hungry b));
  Sim.run ~until:(Time.sec 1) sim;
  let ua = Time.to_ms (Cpu.used a) and ub = Time.to_ms (Cpu.used b) in
  let ratio = ua /. ub in
  checkb "ratio close to 3"
    true
    (ratio > 2.6 && ratio < 3.4);
  checkb "a got close to its 60%" true (ua > 550.0 && ua < 650.0)

let cpu_slack_when_idle () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim in
  let a = cpu_admit_exn cpu ~name:"a" ~period:(Time.ms 10) ~slice:(Time.ms 1)
      ~extra:true () in
  let done_at = ref Time.zero in
  ignore
    (Proc.spawn sim (fun () ->
         (* 50 ms of work on a 10% guarantee: slack (nobody else wants
            the CPU) should let it finish in well under 500 ms. *)
         consume_exn cpu a (Time.ms 50);
         done_at := Sim.now sim));
  Sim.run ~until:(Time.sec 2) sim;
  checkb "finished early thanks to slack" true (!done_at < Time.ms 100);
  checkb "finished at all" true (!done_at > Time.zero)

let suite =
  [ ( "sched.edf",
      [ Alcotest.test_case "admission control" `Quick edf_admission;
        Alcotest.test_case "roll-over accounting" `Quick edf_replenish_rollover;
        Alcotest.test_case "no-rollover ablation" `Quick edf_no_rollover;
        Alcotest.test_case "idle periods do not stack" `Quick
          edf_idle_does_not_stack;
        Alcotest.test_case "EDF selection" `Quick edf_select_earliest;
        Alcotest.test_case "slack selection" `Quick edf_slack_flag ] );
    ( "sched.cpu",
      [ Alcotest.test_case "consume advances simulated time" `Quick
          cpu_consume_advances_time;
        Alcotest.test_case "contended shares follow contracts" `Quick
          cpu_guarantees_respected;
        Alcotest.test_case "slack time when idle" `Quick cpu_slack_when_idle ] ) ]
