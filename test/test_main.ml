let () =
  Alcotest.run "nemesis-self-paging"
    (Test_engine.suite @ Test_hw.suite @ Test_disk.suite @ Test_sched.suite
   @ Test_usbs.suite @ Test_usnet.suite @ Test_obs.suite
   @ Test_core_vm.suite @ Test_domains.suite @ Test_runtime.suite
   @ Test_extensions.suite @ Test_properties.suite @ Test_stress.suite
   @ Test_policy.suite @ Test_experiments.suite @ Test_inject.suite
   @ Test_crash.suite @ Test_scale.suite @ Test_tier.suite
   @ Test_share.suite @ Test_fleet.suite @ Test_erasure.suite
   @ Test_registry.suite)
