(* Tests for lib/registry and its adopters: the spec grammar, typed
   errors with did-you-mean, register/resolve round-trips (qcheck),
   the data-isolation convention, byte-identical legacy behaviour
   (golden spec table, USD-trace seed equivalence, chaos-plan
   equality), and two extensions — a [random] replacement policy and
   a [zipf] workload — registered end-to-end from this file with zero
   edits to core modules. *)

open Engine
open Hw
open Core

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)
let qtest = QCheck_alcotest.to_alcotest

(* Substring test (no dependency on Astring). *)
let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* --- The spec grammar ----------------------------------------------- *)

let atom_exn s =
  match Registry.Spec.atom_of_string s with
  | Ok a -> a
  | Error e -> Alcotest.failf "atom %S: %s" s e

let spec_grammar () =
  let a = atom_exn "wsclock:32" in
  checks "head" "wsclock" a.Registry.Spec.head;
  Alcotest.(check (list string)) "bare arg" [ "32" ] a.Registry.Spec.args;
  let a = atom_exn "stall:site=Victim.swap,rate=0.5,ms=30" in
  checks "head" "stall" a.Registry.Spec.head;
  Alcotest.(check (option string))
    "param site (lowercased)" (Some "victim.swap")
    (Registry.Spec.param a "site");
  Alcotest.(check (option string))
    "param rate" (Some "0.5")
    (Registry.Spec.param a "rate");
  check "no bare args" 0 (List.length a.Registry.Spec.args);
  (match Registry.Spec.of_string "fifo+ra8+wb4" with
  | Error e -> Alcotest.fail e
  | Ok t ->
    checks "base" "fifo" t.Registry.Spec.base.Registry.Spec.head;
    Alcotest.(check (list string))
      "modifier heads" [ "ra8"; "wb4" ]
      (List.map (fun m -> m.Registry.Spec.head) t.Registry.Spec.mods));
  Alcotest.(check (option (pair string string)))
    "suffix split"
    (Some ("ra", "8"))
    (Registry.Spec.split_suffix "ra8");
  Alcotest.(check (option (pair string string)))
    "no suffix" None
    (Registry.Spec.split_suffix "fifo");
  checkb "empty spec is malformed" true
    (Result.is_error (Registry.Spec.of_string "   "))

(* --- Typed errors and did-you-mean ----------------------------------- *)

let errors_axis : int Registry.axis =
  Registry.axis ~name:"test-errors" ~doc:"error-path scratch axis"

let typed_errors () =
  (match
     Registry.register errors_axis
       (Registry.manifest ~name:"laxity" ~doc:"scratch" ())
       (fun _ -> Ok 1)
   with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "first registration refused");
  (match
     Registry.register errors_axis
       (Registry.manifest ~name:"laxity" ~doc:"again" ())
       (fun _ -> Ok 2)
   with
  | Error (Registry.Duplicate_extension { axis; name }) ->
    checks "dup axis" "test-errors" axis;
    checks "dup name" "laxity" name
  | _ -> Alcotest.fail "duplicate registration accepted");
  (match Registry.resolve errors_axis "laxty" with
  | Error (Registry.Unknown_extension { axis; name; known }) ->
    checks "unknown axis" "test-errors" axis;
    checks "unknown name" "laxty" name;
    checkb "known lists the neighbour" true (List.mem "laxity" known);
    let msg = Registry.error_message (Registry.Unknown_extension { axis; name; known }) in
    checkb "did-you-mean in message" true
      (contains msg "laxity")
  | _ -> Alcotest.fail "typo resolved");
  Alcotest.(check (list string))
    "suggest ranks the close match first" [ "laxity" ]
    (Registry.suggest ~known:[ "laxity"; "stream" ] "laxty")

(* --- Register/resolve round-trip (qcheck) ---------------------------- *)

let roundtrip_axis : int Registry.axis =
  Registry.axis ~name:"test-roundtrip" ~doc:"round-trip scratch axis"

let batch = ref 0

let register_resolve_roundtrip =
  QCheck.Test.make ~name:"registry: register N names, resolve them all"
    ~count:50
    QCheck.(small_list (string_gen_of_size (Gen.return 6) Gen.printable))
    (fun names ->
      incr batch;
      let names =
        List.sort_uniq compare
          (List.filter_map
             (fun s ->
               let b = Buffer.create 8 in
               String.iter
                 (fun c ->
                   match Char.lowercase_ascii c with
                   | ('a' .. 'z' | '0' .. '9') as lc -> Buffer.add_char b lc
                   | _ -> ())
                 s;
               (* A leading letter keeps the numeric-suffix fallback
                  out of the picture. *)
               if Buffer.length b = 0 then None
               else Some (Printf.sprintf "b%d%s" !batch (Buffer.contents b)))
             names)
      in
      List.iteri
        (fun i n ->
          Registry.register_exn roundtrip_axis
            (Registry.manifest ~name:n ~doc:"scratch" ())
            (fun _ -> Ok i))
        names;
      List.for_all
        (fun (i, n) ->
          Registry.resolve roundtrip_axis n = Ok i
          && Registry.mem roundtrip_axis n
          && Registry.find_manifest roundtrip_axis n <> None)
        (List.mapi (fun i n -> (i, n)) names))

(* --- Golden legacy spec table ---------------------------------------- *)

(* Every pre-registry spec string must parse to the same value the old
   closed parser produced — byte-for-byte compatibility of the CLI
   surface. *)
let golden_legacy_specs () =
  let open Policy in
  let expect = function
    | s, (r, p, wb) ->
      (match Spec.of_string s with
      | Error e -> Alcotest.failf "%S: %s" s e
      | Ok t ->
        checkb
          (Printf.sprintf "%S replacement" s)
          true
          (t.Spec.replacement = r);
        checkb (Printf.sprintf "%S prefetch" s) true (t.Spec.prefetch = p);
        check (Printf.sprintf "%S wb" s) wb t.Spec.wb_batch;
        (* The canonical rendering re-parses to the same value. *)
        (match Spec.of_string (Spec.name t) with
        | Ok t' -> checkb (Printf.sprintf "%S reparse" s) true (t = t')
        | Error e -> Alcotest.failf "%S reparse: %s" s e))
  in
  List.iter expect
    [ ("fifo", (Spec.Fifo, Prefetch.Off, 1));
      ("clock", (Spec.Clock, Prefetch.Off, 1));
      ("lru", (Spec.Lru, Prefetch.Off, 1));
      ("wsclock", (Spec.Wsclock { window = 16 }, Prefetch.Off, 1));
      ("wsclock:32", (Spec.Wsclock { window = 32 }, Prefetch.Off, 1));
      ("fifo+ra8", (Spec.Fifo, Prefetch.Stream 8, 1));
      ("fifo+wb8", (Spec.Fifo, Prefetch.Off, 8));
      ("clock+ad8", (Spec.Clock, Prefetch.Adaptive 8, 1));
      ("lru+wb16", (Spec.Lru, Prefetch.Off, 16));
      ("wsclock:32+ra4+wb2", (Spec.Wsclock { window = 32 }, Prefetch.Stream 4, 2));
      ("FIFO+RA8", (Spec.Fifo, Prefetch.Stream 8, 1)) ];
  (* Legacy error wording for the empty spec. *)
  (match Policy.Spec.of_string "" with
  | Error "empty policy" -> ()
  | _ -> Alcotest.fail "empty spec wording changed");
  checkb "unknown base is an error" true
    (Result.is_error (Policy.Spec.of_string "fifp"));
  checkb "bad modifier arg is an error" true
    (Result.is_error (Policy.Spec.of_string "fifo+ra0"))

(* --- Data isolation --------------------------------------------------- *)

(* Registered values are factories: two instantiations must not share
   state. Checked for a replacement policy and a workload pattern. *)
let data_isolation () =
  let spec =
    match Policy.Spec.of_string "fifo" with
    | Ok t -> t
    | Error e -> Alcotest.fail e
  in
  let now () = 0 in
  let a = Policy.Spec.make_replacement spec ~now in
  let b = Policy.Spec.make_replacement spec ~now in
  a.Policy.Replacement.insert 1;
  a.Policy.Replacement.insert 2;
  check "first instance sees its pages" 2 (a.Policy.Replacement.residents ());
  check "second instance is fresh" 0 (b.Policy.Replacement.residents ());
  (* Same for a pattern extension's per-app generator. *)
  let calls = ref [] in
  Registry.register_exn Workload.Paging_app.pattern_axis
    (Registry.manifest ~name:"iso-probe" ~doc:"isolation scratch" ())
    (fun _ ->
      Ok
        (Workload.Paging_app.Ext
           { Workload.Paging_app.g_name = "iso-probe";
             g_make =
               (fun () ->
                 let count = ref 0 in
                 fun ~rng:_ ~npages:_ ->
                   incr count;
                   calls := !count :: !calls;
                   !count) }));
  match Workload.Paging_app.pattern_of_string "iso-probe" with
  | Error e -> Alcotest.fail (Registry.error_message e)
  | Ok (Workload.Paging_app.Ext g) ->
    let g1 = g.Workload.Paging_app.g_make () in
    let g2 = g.Workload.Paging_app.g_make () in
    let rng = Rng.create ~seed:1 in
    check "g1 first" 1 (g1 ~rng ~npages:8);
    check "g1 second" 2 (g1 ~rng ~npages:8);
    check "g2 unaffected by g1" 1 (g2 ~rng ~npages:8)
  | Ok _ -> Alcotest.fail "iso-probe resolved to a builtin"

(* --- Seed equivalence through the registry ---------------------------- *)

let small_sys () =
  let config = { System.default_config with main_memory_mb = 2 } in
  System.create ~config ()

let add_domain_exn sys ~name ~guarantee ~optimistic =
  match System.add_domain sys ~name ~guarantee ~optimistic () with
  | Ok d -> d
  | Error e -> failwith (System.error_message e)

let alloc_exn d ~bytes =
  match System.alloc_stretch d ~bytes () with
  | Ok s -> s
  | Error e -> failwith e

let in_domain sys d f =
  let result = ref None in
  ignore
    (Domains.spawn_thread d.System.dom ~name:"test" (fun () ->
         result := Some (f ())));
  let sim = System.sim sys in
  System.run sys ~until:(Time.add (Sim.now sim) (Time.sec 300));
  match !result with
  | Some r -> r
  | None -> Alcotest.fail "domain thread did not finish"

(* Drive the same 6-page write+read workload twice — once under the
   driver's built-in default, once under the registry-resolved "fifo"
   spec — and demand identical USD transaction streams: resolving
   through the registry must not perturb a seeded run by a single
   blok. *)
let swap_trace ~policy () =
  let sys = small_sys () in
  let d = add_domain_exn sys ~name:"app" ~guarantee:2 ~optimistic:0 in
  let s = alloc_exn d ~bytes:(6 * Addr.page_size) in
  in_domain sys d (fun () ->
      let qos = Usbs.Qos.make ~period:(Time.ms 250) ~slice:(Time.ms 125) () in
      (match
         System.bind_paged d ~initial_frames:2 ?policy
           ~swap_bytes:(16 * Addr.page_size) ~qos s ()
       with
      | Ok _ -> ()
      | Error e -> failwith (System.error_message e));
      for i = 0 to 5 do
        Domains.access d.System.dom (Stretch.page_base s i) `Write
      done;
      for i = 0 to 5 do
        Domains.access d.System.dom (Stretch.page_base s i) `Read
      done);
  let txns = ref [] in
  Trace.iter
    (fun t ev ->
      match ev with
      | Usbs.Usd.Txn { client = "app.swap"; op; lba; nblocks; _ } ->
        txns := (t, op, lba, nblocks) :: !txns
      | _ -> ())
    (Usbs.Usd.trace (System.usd sys));
  List.rev !txns

let seed_equivalence () =
  let resolved =
    match Policy.Spec.of_string "fifo" with
    | Ok t -> t
    | Error e -> Alcotest.fail e
  in
  let reference = swap_trace ~policy:None () in
  let via_registry = swap_trace ~policy:(Some resolved) () in
  check "reference trace is non-trivial" 12 (List.length reference);
  checkb "registry-resolved fifo replays the seed trace exactly" true
    (reference = via_registry)

(* --- New extensions, end to end, zero core edits ----------------------- *)

(* A genuinely new replacement policy: deterministic pseudo-random
   victim (own LCG, fresh per instantiation), registered from the test
   suite. *)
let () =
  Registry.register_exn Policy.Spec.replacement_axis
    (Registry.manifest ~name:"random"
       ~doc:"uniform pseudo-random victim (test extension)" ())
    (fun a ->
      if a.Registry.Spec.args = [] && a.Registry.Spec.params = [] then
        Ok
          (Policy.Spec.Ext
             { Policy.Spec.mk_name = "random";
               mk_make =
                 (fun ~now:_ ->
                   let resident = ref [] in
                   let state = ref 12345 in
                   let next bound =
                     state := ((!state * 1103515245) + 12321) land 0x3FFFFFFF;
                     !state mod bound
                   in
                   { Policy.Replacement.name = "random";
                     insert = (fun p -> resident := p :: !resident);
                     touch = (fun _ -> ());
                     victim =
                       (fun probe ->
                         let live =
                           List.filter probe.Policy.Replacement.resident
                             !resident
                         in
                         match live with
                         | [] -> None
                         | _ ->
                           let v = List.nth live (next (List.length live)) in
                           resident := List.filter (( <> ) v) !resident;
                           Some v);
                     remove =
                       (fun p -> resident := List.filter (( <> ) p) !resident);
                     residents = (fun () -> List.length !resident) }) })
      else Error "random takes no parameter")

(* ... and a genuinely new workload: log-uniform ("zipf-ish") page
   choice, skewed toward low page numbers. *)
let () =
  Registry.register_exn Workload.Paging_app.pattern_axis
    (Registry.manifest ~name:"zipf"
       ~doc:"log-uniform page choice, skewed to low pages (test extension)" ())
    (fun a ->
      if a.Registry.Spec.args = [] && a.Registry.Spec.params = [] then
        Ok
          (Workload.Paging_app.Ext
             { Workload.Paging_app.g_name = "zipf";
               g_make =
                 (fun () ->
                   fun ~rng ~npages ->
                    let u = Rng.float rng 1.0 in
                    let p = int_of_float (float_of_int npages ** u) - 1 in
                    if p < 0 then 0 else p) })
      else Error "zipf takes no parameter")

let new_replacement_end_to_end () =
  (* The new policy composes with built-in modifiers... *)
  (match Policy.Spec.of_string "random+ra4" with
  | Error e -> Alcotest.fail e
  | Ok t ->
    checks "canonical name" "random+ra4" (Policy.Spec.name t);
    checkb "prefetch picked up" true (t.Policy.Spec.prefetch = Policy.Prefetch.Stream 4));
  (* ...and drives a real paged domain through the stock System API. *)
  let spec =
    match Policy.Spec.of_string "random" with
    | Ok t -> t
    | Error e -> Alcotest.fail e
  in
  let trace = swap_trace ~policy:(Some spec) () in
  checkb "random-policy run pages" true (List.length trace >= 12)

let new_workload_end_to_end () =
  let pattern =
    match Workload.Paging_app.pattern_of_string "zipf" with
    | Ok p -> p
    | Error e -> Alcotest.fail (Registry.error_message e)
  in
  checks "pattern name round-trips" "zipf"
    (Workload.Paging_app.pattern_name pattern);
  let sys = Experiments.Harness.fresh_system () in
  let qos = Usbs.Qos.make ~period:(Time.ms 250) ~slice:(Time.ms 125) () in
  let app =
    match
      Workload.Paging_app.start sys ~name:"zapp"
        ~mode:Workload.Paging_app.Paging_in ~qos ~vm_bytes:(256 * Addr.page_size)
        ~phys_frames:16 ~swap_bytes:(512 * Addr.page_size) ~pattern ()
    with
    | Ok a -> a
    | Error e -> Alcotest.fail e
  in
  System.run sys ~until:(Time.sec 30);
  checkb "zipf app made progress" true
    (Workload.Paging_app.bytes_processed app > 0)

(* --- Chaos plans from spec strings ------------------------------------ *)

(* The chaos experiment's plan, built from registered site specs, must
   equal the hand-written record it replaced — field for field,
   including Time spans parsed from decimal ms. *)
let chaos_plan_golden () =
  let first = 2048 and nblocks = 4096 and seed = 7 in
  let page_blocks = Addr.page_size / 512 in
  let bad_page slot len =
    { Inject.bf_first = first + (slot * page_blocks);
      bf_len = len * page_blocks;
      bf_op = Some Inject.Write;
      bf_transient = None }
  in
  let expected =
    { Inject.seed;
      blok_faults =
        [ bad_page 3 1; bad_page 17 1; bad_page 40 2;
          { Inject.bf_first = first + (60 * page_blocks);
            bf_len = 4 * page_blocks;
            bf_op = None;
            bf_transient = Some 2 } ];
      regions =
        [ { Inject.rf_first = first;
            rf_len = nblocks;
            rf_read_error = 0.02;
            rf_write_error = 0.02;
            rf_spike = 0.02;
            rf_spike_span = Time.ms 20 } ];
      crashes = [];
      stalls =
        [ ("victim.swap", { Inject.st_rate = 0.02; st_span = Time.ms 30 });
          ("doomed.revoke", { Inject.st_rate = 1.0; st_span = Time.ms 250 }) ];
      chans =
        [ ( "victim.fault",
            { Inject.cf_drop = 0.05;
              cf_delay = 0.05;
              cf_delay_span = Time.of_ms_float 2.0 } ) ];
      links = [];
      pressure = Some { Inject.pr_period = Time.ms 500; pr_hold = Time.ms 150 };
      zpool_pressure = None;
      node_faults = [] }
  in
  (match Inject.plan_of_specs ~seed (Experiments.Chaos.plan_specs ~first ~nblocks) with
  | Error e -> Alcotest.fail (Registry.error_message e)
  | Ok plan ->
    checkb "spec-built chaos plan equals the legacy literal" true
      (plan = expected));
  (* A typoed key must not silently weaken a plan. *)
  (match Inject.plan_of_specs ~seed [ "stall:sight=victim.swap,rate=1.0" ] with
  | Error (Registry.Malformed_spec _) -> ()
  | _ -> Alcotest.fail "typoed stall key accepted");
  match Inject.plan_of_specs ~seed [ "bad-blck:first=0,len=1" ] with
  | Error (Registry.Unknown_extension { known; _ }) ->
    checkb "unknown site lists bad-blok" true (List.mem "bad-blok" known)
  | _ -> Alcotest.fail "unknown site accepted"

(* --- The experiment axis ---------------------------------------------- *)

let experiment_axis_complete () =
  let expected =
    [ "ablate"; "all"; "chaos"; "crash-recover"; "crosstalk"; "erasure";
      "failover"; "fig7"; "fig8"; "fig9"; "netiso"; "policy-compare";
      "remote"; "scale"; "table1"; "tenancy" ]
  in
  Alcotest.(check (list string))
    "every legacy subcommand is registered" expected
    (Registry.names Experiments.Catalog.axis);
  List.iter
    (fun n ->
      match Experiments.Catalog.resolve n with
      | Ok e ->
        checkb (n ^ " claims modules") true
          (e.Experiments.Catalog.e_modules <> [])
      | Error err -> Alcotest.fail (Registry.error_message err))
    expected;
  Alcotest.(check (list string))
    "every ablation is registered"
    (List.sort compare Experiments.Catalog.ablation_names)
    (Registry.names Experiments.Catalog.ablation_axis);
  (* The backing axis carries all four stack drivers. *)
  Alcotest.(check (list string))
    "backing drivers" [ "fleet"; "sfs"; "tiered"; "zram" ]
    (Registry.names Tier.Backing.axis)

(* --- Introspection ----------------------------------------------------- *)

let introspection_json () =
  let json = Registry.to_json () in
  List.iter
    (fun needle ->
      checkb (Printf.sprintf "to_json mentions %S" needle) true
        (contains json needle))
    [ "\"axis\": \"replacement\""; "\"axis\": \"workload\"";
      "\"axis\": \"chaos-site\""; "\"axis\": \"backing\"";
      "\"axis\": \"experiment\""; "\"name\": \"wsclock\"";
      "\"name\": \"bad-blok\""; "\"default\": \"wsclock:16\"" ]

let suite =
  [ ( "registry",
      [ Alcotest.test_case "spec grammar" `Quick spec_grammar;
        Alcotest.test_case "typed errors + did-you-mean" `Quick typed_errors;
        qtest register_resolve_roundtrip;
        Alcotest.test_case "golden legacy spec table" `Quick
          golden_legacy_specs;
        Alcotest.test_case "data isolation" `Quick data_isolation;
        Alcotest.test_case "seed equivalence via registry" `Quick
          seed_equivalence;
        Alcotest.test_case "new replacement end-to-end" `Quick
          new_replacement_end_to_end;
        Alcotest.test_case "new workload end-to-end" `Quick
          new_workload_end_to_end;
        Alcotest.test_case "chaos plan golden equality" `Quick
          chaos_plan_golden;
        Alcotest.test_case "experiment axis complete" `Quick
          experiment_axis_complete;
        Alcotest.test_case "introspection JSON" `Quick introspection_json ] ) ]
