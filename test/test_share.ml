(* Tests for lib/share: the compression codec's round-trip property,
   the RamTab reference books under qcheck-generated interleavings of
   CoW breaks, pool sheds and tenant kills, and the tenancy
   experiment's same-seed determinism. *)

open Engine
open Hw
open Core

let qtest = QCheck_alcotest.to_alcotest
let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* --- Compression round-trip ---------------------------------------- *)

let prop_roundtrip =
  QCheck.Test.make ~name:"zpool compress/decompress round-trips" ~count:500
    QCheck.(string_of_size (Gen.int_range 0 12_000))
    (fun s -> Share.Zpool.decompress (Share.Zpool.compress s) = s)

(* Every entropy class the size model synthesizes must round-trip to a
   full page — this is the fault-back-bytes-identical guarantee. *)
let prop_synth_roundtrip =
  QCheck.Test.make ~name:"synthesized pages round-trip at page size"
    ~count:200
    QCheck.(pair (string_of_size (Gen.int_range 1 24)) small_nat)
    (fun (key, version) ->
      let page = Share.Zpool.synth ~key ~version in
      String.length page = Share.Zpool.page_bytes
      && Share.Zpool.decompress (Share.Zpool.compress page) = page)

(* --- RamTab refcount books under CoW/kill/shed interleavings ------- *)

(* A miniature tenant fleet (one frozen template, three CoW tenants, a
   two-page text segment, a sheddable zpool) driven by a generated op
   list. Whatever the interleaving of writes (share breaks), reads
   (share grants), kills (detach hooks) and pool sheds, the books must
   balance afterwards: every RamTab reference sits on a registry
   frame, registry installs - frees = live frames, and the frames
   allocator's free + held = total with RamTab ownership matching. *)

type op =
  | Write of int * int  (* tenant, page *)
  | Read of int * int
  | Kill of int  (* tenant *)
  | Shed  (* squeeze the zpool budget to zero and back *)

let op_gen =
  QCheck.Gen.(
    frequency
      [ (4, map2 (fun t p -> Write (t, p)) (int_range 0 2) (int_range 0 5));
        (4, map2 (fun t p -> Read (t, p)) (int_range 0 2) (int_range 0 5));
        (1, map (fun t -> Kill t) (int_range 0 2));
        (1, return Shed) ])

let op_print = function
  | Write (t, p) -> Printf.sprintf "w%d.%d" t p
  | Read (t, p) -> Printf.sprintf "r%d.%d" t p
  | Kill t -> Printf.sprintf "kill%d" t
  | Shed -> "shed"

let tpl_pages = 6
let seg_pages = 2

let run_fleet ops =
  Obs.set_enabled false;
  Inject.disarm ();
  let config = { System.default_config with seed = 7; main_memory_mb = 2 } in
  let sys = System.create ~config () in
  let sim = System.sim sys in
  let qos () = Usbs.Qos.make ~period:(Time.ms 50) ~slice:(Time.ms 10) () in
  let reg =
    match Share.Registry.create sys ~guarantee:(tpl_pages + seg_pages + 2) with
    | Ok r -> r
    | Error e -> failwith (System.error_message e)
  in
  let seg = Share.Seg.create ~reg ~name:"text" ~npages:seg_pages () in
  let zpool =
    match System.admit_service sys ~guarantee:0 ~optimistic:4 with
    | Error e -> failwith (System.error_message e)
    | Ok (_, client) ->
      Share.Zpool.create ~sim ~frames:(System.frames sys) ~client
        ~ramtab:(System.ramtab sys) ~budget:2 ()
  in
  let template =
    match
      System.add_domain sys ~name:"tpl" ~guarantee:(tpl_pages + 2)
        ~optimistic:0 ()
    with
    | Ok d -> d
    | Error e -> failwith (System.error_message e)
  in
  let proto =
    match System.add_domain sys ~name:"proto" ~guarantee:4 ~optimistic:2 () with
    | Ok d -> d
    | Error e -> failwith (System.error_message e)
  in
  let frozen = Sync.Ivar.create () in
  (match
     System.alloc_stretch template ~bytes:(tpl_pages * Addr.page_size) ()
   with
  | Error msg -> failwith msg
  | Ok s ->
    (match
       System.bind_paged template ~initial_frames:tpl_pages
         ~swap_bytes:(2 * tpl_pages * Addr.page_size) ~qos:(qos ()) s ()
     with
    | Error e -> failwith (System.error_message e)
    | Ok (_, h) ->
      ignore
        (Domains.spawn_thread template.System.dom ~name:"tpl.warm" (fun () ->
             for p = 0 to tpl_pages - 1 do
               Domains.access template.System.dom (Stretch.page_base s p)
                 `Write
             done;
             Sync.Ivar.fill frozen
               (Share.Cow.freeze ~reg ~name:"img" template h
                  ~npages:tpl_pages)))));
  (* Per-tenant worker threads: ops arrive by mailbox, acks by ivar, so
     the driver below serializes the whole interleaving. *)
  let boxes = Array.init 3 (fun _ -> Sync.Mailbox.create ()) in
  let live = Array.make 3 false in
  let doms = Array.make 3 None in
  let done_ = Sync.Ivar.create () in
  ignore
    (Proc.spawn ~name:"driver" sim (fun () ->
         let tpl = Sync.Ivar.read frozen in
         System.kill_domain sys template;
         for i = 0 to 2 do
           let name = Printf.sprintf "t%d" i in
           match
             Share.Cow.spawn sys ~template:tpl ~tpl_domain:proto ~name
               ~backing:(fun swap ->
                 Share.Sd_zram.backing
                   (Share.Sd_zram.create ~label:("z" ^ name) ~zpool
                      ~below:(Tier.Backing.of_sfs swap) ()))
               ~initial_frames:2 ~npages:tpl_pages
               ~swap_bytes:(2 * tpl_pages * Addr.page_size) ~qos:(qos ()) ()
           with
           | Error e -> failwith (System.error_message e)
           | Ok (d, (_, stretch)) ->
             (match Share.Seg.attach seg d with
             | Error e -> failwith (System.error_message e)
             | Ok (_, seg_stretch) ->
               doms.(i) <- Some d;
               live.(i) <- true;
               ignore
                 (Domains.spawn_thread d.System.dom ~name:(name ^ ".w")
                    (fun () ->
                      let rec loop () =
                        let op, (reply : unit Sync.Ivar.t) =
                          Sync.Mailbox.recv boxes.(i)
                        in
                        (match op with
                        | Write (_, p) ->
                          Domains.access d.System.dom
                            (Stretch.page_base stretch p) `Write
                        | Read (_, p) ->
                          if p < seg_pages then
                            Domains.access d.System.dom
                              (Stretch.page_base seg_stretch p) `Read;
                          Domains.access d.System.dom
                            (Stretch.page_base stretch p) `Read
                        | Kill _ | Shed -> ());
                        Sync.Ivar.fill reply ();
                        loop ()
                      in
                      loop ())))
         done;
         List.iter
           (fun op ->
             match op with
             | Kill t ->
               if live.(t) then begin
                 live.(t) <- false;
                 match doms.(t) with
                 | Some d -> System.kill_domain sys d
                 | None -> ()
               end
             | Shed ->
               ignore (Share.Zpool.set_budget zpool 0);
               ignore (Share.Zpool.set_budget zpool 2)
             | Write (t, _) | Read (t, _) ->
               if live.(t) then begin
                 let reply = Sync.Ivar.create () in
                 Sync.Mailbox.send boxes.(t) (op, reply);
                 Sync.Ivar.read reply
               end)
           ops;
         Sync.Ivar.fill done_ ()));
  System.run ~until:(Time.sec 30) sys;
  if Sync.Ivar.peek done_ = None then failwith "fleet driver did not finish";
  let rt = System.ramtab sys in
  let books = Share.Registry.books reg in
  let total_refs = ref 0 in
  for pfn = 0 to Ramtab.nframes rt - 1 do
    total_refs := !total_refs + Ramtab.refs rt ~pfn
  done;
  let held_sum =
    List.fold_left
      (fun acc d -> acc + Frames.held d.System.frames_client)
      0 (System.domains sys)
    + Frames.held (Share.Registry.client reg)
    + Share.Zpool.frames_held zpool
  in
  let owned = ref 0 in
  for pfn = 0 to Ramtab.nframes rt - 1 do
    if Ramtab.owner rt ~pfn <> None then incr owned
  done;
  let fr = System.frames sys in
  Share.Registry.books_balanced reg
  && !total_refs = books.Share.Registry.b_live_refs
  && Frames.free_frames fr + held_sum = Frames.total_frames fr
  && !owned = held_sum

let prop_refcount_books =
  QCheck.Test.make ~name:"refcount books balance under CoW/kill/shed ops"
    ~count:12
    QCheck.(list_of_size (Gen.int_range 1 24) (make ~print:op_print op_gen))
    run_fleet

(* --- Tenancy determinism ------------------------------------------- *)

let test_tenancy_deterministic () =
  let go () =
    Experiments.Tenancy.to_json
      (Experiments.Tenancy.run ~seed:11 ~tenants:4 ~duration:(Time.sec 6) ())
  in
  let a = go () in
  let b = go () in
  Alcotest.(check string) "same seed, byte-identical report" a b

(* The default Sd_paged path must be untouched by the new layer: a
   tenancy control run with sharing and the compressed tier both off
   still balances its books and leaves no references anywhere. *)
let test_control_arm_books () =
  let r =
    Experiments.Tenancy.run ~seed:3 ~tenants:2 ~duration:(Time.sec 5)
      ~share:false ~zram:false ()
  in
  checkb "books balanced" true r.Experiments.Tenancy.books_balanced;
  checkb "registry balanced" true r.Experiments.Tenancy.reg_balanced;
  check "no refs leaked" 0 r.Experiments.Tenancy.refs_leaked;
  check "no CoW breaks" 0 r.Experiments.Tenancy.cow_breaks;
  check "nothing frozen" 0 r.Experiments.Tenancy.template_frozen

let suite =
  [ ( "share",
      [ qtest prop_roundtrip; qtest prop_synth_roundtrip;
        qtest prop_refcount_books;
        Alcotest.test_case "tenancy same-seed byte-identical" `Slow
          test_tenancy_deterministic;
        Alcotest.test_case "control arm keeps clean books" `Quick
          test_control_arm_books ] ) ]
