(* Tests for the Nemesis core: bloks, frame stacks, pdoms, stretches,
   the stretch allocator, the translation system, the frames allocator
   and event channels. *)

open Engine
open Hw
open Core

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let qtest = QCheck_alcotest.to_alcotest

(* --- Bloks --- *)

let bloks_first_fit () =
  let b = Bloks.create ~nbloks:10 in
  check "capacity" 10 (Bloks.capacity b);
  Alcotest.(check (option int)) "first" (Some 0) (Bloks.alloc b);
  Alcotest.(check (option int)) "second" (Some 1) (Bloks.alloc b);
  Alcotest.(check (option int)) "third" (Some 2) (Bloks.alloc b);
  Bloks.free b 1;
  Alcotest.(check (option int)) "first fit reuses hole" (Some 1)
    (Bloks.alloc b);
  check "in use" 3 (Bloks.in_use b)

let bloks_exhaustion () =
  let b = Bloks.create ~nbloks:3 in
  ignore (Bloks.alloc b);
  ignore (Bloks.alloc b);
  ignore (Bloks.alloc b);
  Alcotest.(check (option int)) "full" None (Bloks.alloc b);
  Bloks.free b 2;
  Alcotest.(check (option int)) "after free" (Some 2) (Bloks.alloc b)

let bloks_errors () =
  let b = Bloks.create ~nbloks:70 in
  Alcotest.check_raises "double free"
    (Invalid_argument "Bloks.free: blok not allocated") (fun () ->
      Bloks.free b 5);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Bloks.free: blok out of range") (fun () ->
      Bloks.free b 99)

(* Random alloc/free interleavings across the chunk boundary keep the
   bitmap, the use count and the hint invariant consistent. *)
let bloks_invariants =
  QCheck.Test.make ~name:"bloks invariants under random ops" ~count:100
    QCheck.(list (pair bool (int_range 0 199)))
    (fun ops ->
      let b = Bloks.create ~nbloks:200 in
      let held = Hashtbl.create 16 in
      List.iter
        (fun (do_alloc, blok) ->
          if do_alloc then (
            match Bloks.alloc b with
            | Some got ->
              assert (not (Hashtbl.mem held got));
              Hashtbl.replace held got ()
            | None -> assert (Hashtbl.length held = 200))
          else if Hashtbl.mem held blok then begin
            Bloks.free b blok;
            Hashtbl.remove held blok
          end)
        ops;
      Bloks.check_invariants b;
      Bloks.in_use b = Hashtbl.length held
      && Hashtbl.fold (fun k () acc -> acc && Bloks.is_allocated b k) held true)

(* --- Frame_stack --- *)

let frame_stack_order () =
  let fs = Frame_stack.create () in
  Frame_stack.push fs 1;
  Frame_stack.push fs 2;
  Frame_stack.push fs 3;
  Alcotest.(check (list int)) "LIFO" [ 3; 2; 1 ] (Frame_stack.to_list fs);
  Alcotest.(check (list int)) "top 2" [ 3; 2 ] (Frame_stack.top_k fs 2);
  Frame_stack.move_to_bottom fs 3;
  Alcotest.(check (list int)) "demoted" [ 2; 1; 3 ] (Frame_stack.to_list fs);
  Frame_stack.move_to_top fs 1;
  Alcotest.(check (list int)) "promoted" [ 1; 2; 3 ] (Frame_stack.to_list fs);
  checkb "remove" true (Frame_stack.remove fs 2);
  checkb "remove absent" false (Frame_stack.remove fs 2);
  check "size" 2 (Frame_stack.size fs);
  Alcotest.check_raises "duplicate push"
    (Invalid_argument "Frame_stack.push: frame already present") (fun () ->
      Frame_stack.push fs 1)

(* --- Pdom --- *)

let pdom_rights () =
  let pd = Pdom.create ~asn:3 in
  check "asn" 3 (Pdom.asn pd);
  Alcotest.(check (option bool)) "no entry" None
    (Option.map (fun r -> r.Rights.r) (Pdom.lookup pd 7));
  checkb "fallback to global" true
    (Rights.equal (Pdom.effective pd 7 ~global:Rights.read) Rights.read);
  Pdom.set pd ~sid:7 Rights.rw_meta;
  checkb "explicit wins" true
    (Rights.equal (Pdom.effective pd 7 ~global:Rights.read) Rights.rw_meta);
  checkb "meta" true (Pdom.holds_meta pd ~sid:7 ~global:Rights.none);
  checkb "idempotent set detected" false
    (Pdom.set_changed pd ~sid:7 Rights.rw_meta);
  checkb "real change detected" true (Pdom.set_changed pd ~sid:7 Rights.read);
  Pdom.clear pd ~sid:7;
  check "cleared" 0 (Pdom.entries pd)

(* --- Fixture: a minimal translation environment --- *)

type fixture = {
  mmu : Mmu.t;
  ramtab : Ramtab.t;
  translation : Translation.t;
  salloc : Stretch_allocator.t;
  pd : Pdom.t;
}

let make_fixture () =
  let pt = Linear_pt.create ~va_bits:26 () in
  let mmu = Mmu.create ~pt:(Linear_pt.impl pt) ~cost:Cost.nemesis () in
  let ramtab = Ramtab.create ~nframes:256 in
  let translation = Translation.create mmu ramtab in
  let salloc =
    Stretch_allocator.create translation ~va_base:(1 lsl 20)
      ~va_bytes:(48 * 1024 * 1024)
  in
  let pd = Pdom.create ~asn:1 in
  { mmu; ramtab; translation; salloc; pd }

let alloc_stretch_exn f ?base ?global ~bytes () =
  match
    Stretch_allocator.alloc f.salloc ?base ?global ~owner_pdom:f.pd ~owner:1
      ~bytes ()
  with
  | Ok s -> s
  | Error e -> failwith e

(* --- Stretch / Stretch_allocator --- *)

let stretch_geometry () =
  let f = make_fixture () in
  let s = alloc_stretch_exn f ~bytes:100_000 () in
  check "rounded to pages" 13 (Stretch.npages s);
  checkb "aligned" true (Addr.is_page_aligned s.Stretch.base);
  checkb "contains base" true (Stretch.contains s s.Stretch.base);
  checkb "excludes end" false (Stretch.contains s (s.Stretch.base + (13 * 8192)));
  check "page index" 2 (Stretch.page_index s (Stretch.page_base s 2 + 55))

let stretch_allocator_null_mappings () =
  let f = make_fixture () in
  let s = alloc_stretch_exn f ~bytes:(2 * 8192) ~global:Rights.read () in
  let pte = Mmu.lookup f.mmu ~vpn:(Addr.vpn_of_vaddr s.Stretch.base) in
  checkb "entry exists" false (Pte.is_absent pte);
  checkb "invalid (NULL mapping)" false (Pte.valid pte);
  check "sid recorded" s.Stretch.sid (Pte.sid pte);
  checkb "owner got meta" true
    (Pdom.holds_meta f.pd ~sid:s.Stretch.sid ~global:Rights.none);
  Stretch_allocator.destroy f.salloc s;
  checkb "entries removed" true
    (Pte.is_absent (Mmu.lookup f.mmu ~vpn:(Addr.vpn_of_vaddr s.Stretch.base)))

let stretch_allocator_requested_base () =
  let f = make_fixture () in
  let base = (1 lsl 20) + (16 * 8192) in
  let s = alloc_stretch_exn f ~base ~bytes:8192 () in
  check "requested base honoured" base s.Stretch.base;
  (match
     Stretch_allocator.alloc f.salloc ~base ~owner_pdom:f.pd ~owner:1
       ~bytes:8192 ()
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "overlapping base accepted")

let stretch_allocator_no_overlap =
  QCheck.Test.make ~name:"allocated stretches never overlap" ~count:50
    QCheck.(list_of_size Gen.(int_range 1 20) (int_range 1 100))
    (fun sizes ->
      let f = make_fixture () in
      let stretches =
        List.filter_map
          (fun pages ->
            match
              Stretch_allocator.alloc f.salloc ~owner_pdom:f.pd ~owner:1
                ~bytes:(pages * 8192) ()
            with
            | Ok s -> Some s
            | Error _ -> None)
          sizes
      in
      List.for_all
        (fun (s1 : Stretch.t) ->
          List.length
            (List.filter
               (fun (s2 : Stretch.t) ->
                 s1.Stretch.base < s2.Stretch.base + s2.Stretch.bytes
                 && s2.Stretch.base < s1.Stretch.base + s1.Stretch.bytes)
               stretches)
          = 1)
        stretches)

let stretch_allocator_reuse_after_destroy () =
  let f = make_fixture () in
  let free0 = Stretch_allocator.free_bytes f.salloc in
  let s = alloc_stretch_exn f ~bytes:(64 * 8192) () in
  check "space taken" (free0 - (64 * 8192))
    (Stretch_allocator.free_bytes f.salloc);
  Stretch_allocator.destroy f.salloc s;
  check "space coalesced back" free0 (Stretch_allocator.free_bytes f.salloc)

let stretch_rights_meta_enforced () =
  let f = make_fixture () in
  let s = alloc_stretch_exn f ~bytes:8192 () in
  let intruder = Pdom.create ~asn:2 in
  (match Stretch.set_rights_pdom s ~caller:intruder ~target:intruder Rights.all with
  | Error Translation.No_meta -> ()
  | _ -> Alcotest.fail "non-meta caller changed protections");
  (match Stretch.set_rights_pdom s ~caller:f.pd ~target:intruder Rights.read with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "owner with meta refused");
  checkb "granted" true
    (Rights.equal
       (Pdom.effective intruder s.Stretch.sid ~global:Rights.none)
       Rights.read)

let stretch_rights_pt_route () =
  let f = make_fixture () in
  let s = alloc_stretch_exn f ~bytes:(4 * 8192) () in
  (match Stretch.set_rights_pt s ~caller:f.pd f.translation Rights.read_write with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "pt protect failed");
  for i = 0 to 3 do
    let pte = Mmu.lookup f.mmu ~vpn:(Addr.vpn_of_vaddr (Stretch.page_base s i)) in
    checkb "global rights updated" true
      (Rights.equal (Pte.global pte) Rights.read_write)
  done

(* --- Translation --- *)

let translation_map_validation () =
  let f = make_fixture () in
  let s = alloc_stretch_exn f ~bytes:8192 () in
  let va = s.Stretch.base in
  (* Frame not owned: refused. *)
  (match Translation.map f.translation ~pdom:f.pd ~domain:1 ~va ~pfn:5 with
  | Error Translation.Frame_unusable -> ()
  | _ -> Alcotest.fail "unowned frame mapped");
  Ramtab.set_owner f.ramtab ~pfn:5 ~owner:1 ~width:13;
  (* No meta: refused. *)
  let intruder = Pdom.create ~asn:2 in
  (match Translation.map f.translation ~pdom:intruder ~domain:1 ~va ~pfn:5 with
  | Error Translation.No_meta -> ()
  | _ -> Alcotest.fail "no-meta map accepted");
  (* Outside any stretch: refused. *)
  (match
     Translation.map f.translation ~pdom:f.pd ~domain:1 ~va:(40 * 1024 * 1024)
       ~pfn:5
   with
  | Error Translation.Not_stretch -> ()
  | _ -> Alcotest.fail "unallocated va mapped");
  (* Proper map. *)
  (match Translation.map f.translation ~pdom:f.pd ~domain:1 ~va ~pfn:5 with
  | Ok cost -> checkb "cost positive" true (cost > 0)
  | Error _ -> Alcotest.fail "valid map refused");
  checkb "ramtab mapped" true (Ramtab.state f.ramtab ~pfn:5 = Ramtab.Mapped);
  (* Double map of the same frame: refused. *)
  (match Translation.map f.translation ~pdom:f.pd ~domain:1 ~va ~pfn:5 with
  | Error Translation.Frame_unusable -> ()
  | _ -> Alcotest.fail "double map accepted")

let translation_unmap_returns_pte () =
  let f = make_fixture () in
  let s = alloc_stretch_exn f ~bytes:8192 ~global:Rights.read_write () in
  let va = s.Stretch.base in
  Ramtab.set_owner f.ramtab ~pfn:9 ~owner:1 ~width:13;
  (match Translation.map f.translation ~pdom:f.pd ~domain:1 ~va ~pfn:9 with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "map failed");
  (* Dirty it through the MMU (FOW emulation). *)
  (match
     Mmu.access f.mmu ~rights:(Pdom.lookup f.pd) ~asn:1 va `Write
   with
  | Mmu.Ok _ -> ()
  | Mmu.Fault _ -> Alcotest.fail "write failed");
  (match Translation.unmap f.translation ~pdom:f.pd ~domain:1 ~va with
  | Ok (pte, _) ->
    checkb "old pte was dirty" true (Pte.dirty pte);
    check "frame" 9 (Pte.pfn pte)
  | Error _ -> Alcotest.fail "unmap failed");
  checkb "ramtab unused" true (Ramtab.state f.ramtab ~pfn:9 = Ramtab.Unused);
  (match Translation.unmap f.translation ~pdom:f.pd ~domain:1 ~va with
  | Error Translation.Not_mapped -> ()
  | _ -> Alcotest.fail "double unmap accepted")

let translation_protect_idempotent_cheap () =
  let f = make_fixture () in
  let s = alloc_stretch_exn f ~bytes:(100 * 8192) ~global:Rights.read () in
  let change =
    match
      Translation.protect_range f.translation ~pdom:f.pd ~base:s.Stretch.base
        ~npages:100 Rights.read_write
    with
    | Ok c -> c
    | Error _ -> Alcotest.fail "protect failed"
  in
  let idem =
    match
      Translation.protect_range f.translation ~pdom:f.pd ~base:s.Stretch.base
        ~npages:100 Rights.read_write
    with
    | Ok c -> c
    | Error _ -> Alcotest.fail "protect failed"
  in
  checkb "idempotent change much cheaper" true (idem * 2 < change)

(* --- Event channels --- *)

let event_channel_counts () =
  let ch = Event_chan.create ~name:"t" () in
  let prods = ref 0 in
  Event_chan.attach ch (fun () -> incr prods);
  Event_chan.send ch;
  Event_chan.send ch;
  check "count" 2 (Event_chan.count ch);
  check "pending" 2 (Event_chan.pending ch);
  check "notify ran per send" 2 !prods;
  check "ack drains" 2 (Event_chan.ack ch);
  check "nothing pending" 0 (Event_chan.pending ch)

(* --- Frames allocator --- *)

let frames_fixture ?(nframes = 64) () =
  let sim = Sim.create () in
  let ramtab = Ramtab.create ~nframes in
  (sim, ramtab, Frames.create sim ramtab ~nframes)

let frames_admission () =
  let _, _, fr = frames_fixture ~nframes:64 () in
  (match Frames.admit fr ~domain:1 ~guarantee:40 ~optimistic:10 with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "admission refused");
  (match Frames.admit fr ~domain:2 ~guarantee:30 ~optimistic:0 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "overbooked guarantee accepted");
  (match Frames.admit fr ~domain:2 ~guarantee:24 ~optimistic:100 with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "fitting guarantee refused")

let frames_guarantee_and_optimism () =
  let sim, ramtab, fr = frames_fixture ~nframes:8 () in
  let a =
    match Frames.admit fr ~domain:1 ~guarantee:2 ~optimistic:4 with
    | Ok c -> c
    | Error e -> failwith (Frames.error_message e)
  in
  let got = ref [] in
  ignore
    (Proc.spawn sim (fun () ->
         for _ = 1 to 8 do
           match Frames.alloc fr a with
           | Some pfn -> got := pfn :: !got
           | None -> ()
         done));
  Sim.run sim;
  (* 2 guaranteed + 4 optimistic, never beyond g + o. *)
  check "capped at g+o" 6 (List.length !got);
  check "held" 6 (Frames.held a);
  check "stack tracks" 6 (Frame_stack.size (Frames.frame_stack a));
  List.iter
    (fun pfn ->
      Alcotest.(check (option int)) "ramtab owner" (Some 1)
        (Ramtab.owner ramtab ~pfn))
    !got;
  (* Free one back. *)
  (match !got with
  | pfn :: _ ->
    Frames.free fr a pfn;
    check "held drops" 5 (Frames.held a)
  | [] -> Alcotest.fail "no frames")

let frames_transparent_revocation () =
  let sim, _, fr = frames_fixture ~nframes:8 () in
  let hoarder =
    match Frames.admit fr ~domain:1 ~guarantee:1 ~optimistic:7 with
    | Ok c -> c
    | Error e -> failwith (Frames.error_message e)
  in
  let claimant =
    match Frames.admit fr ~domain:2 ~guarantee:4 ~optimistic:0 with
    | Ok c -> c
    | Error e -> failwith (Frames.error_message e)
  in
  let claimed = ref 0 in
  ignore
    (Proc.spawn sim (fun () ->
         (* Hoarder takes everything (all unused). *)
         for _ = 1 to 8 do
           ignore (Frames.alloc fr hoarder)
         done;
         (* Claimant's guaranteed allocations must all succeed. *)
         for _ = 1 to 4 do
           match Frames.alloc fr claimant with
           | Some _ -> incr claimed
           | None -> ()
         done));
  Sim.run sim;
  check "guarantee met" 4 !claimed;
  checkb "transparent revocation used" true
    (Frames.transparent_revocations fr > 0);
  check "no intrusive rounds" 0 (Frames.revocations fr);
  (* Revocation is batched, so the hoarder may lose more than strictly
     necessary, but never below its own guarantee. *)
  checkb "hoarder shrunk" true (Frames.held hoarder < 8);
  checkb "hoarder keeps its guarantee" true
    (Frames.held hoarder >= Frames.guarantee hoarder)

let frames_intrusive_revocation () =
  let sim, ramtab, fr = frames_fixture ~nframes:8 () in
  let hoarder =
    match Frames.admit fr ~domain:1 ~guarantee:1 ~optimistic:7 with
    | Ok c -> c
    | Error e -> failwith (Frames.error_message e)
  in
  let claimant =
    match Frames.admit fr ~domain:2 ~guarantee:4 ~optimistic:0 with
    | Ok c -> c
    | Error e -> failwith (Frames.error_message e)
  in
  (* The hoarder cooperates: on notification it "cleans" (marks
     unused) the requested frames after a delay. *)
  let notified = ref 0 in
  Frames.set_revocation_handler hoarder (fun ~k ~deadline:_ ->
      incr notified;
      ignore
        (Proc.spawn sim (fun () ->
             Proc.sleep (Time.ms 20);
             List.iter
               (fun pfn -> Ramtab.set_state ramtab ~pfn Ramtab.Unused)
               (Frame_stack.top_k (Frames.frame_stack hoarder) k);
             Frames.revocation_ready fr hoarder)));
  let claimed = ref 0 in
  ignore
    (Proc.spawn sim (fun () ->
         for _ = 1 to 8 do
           match Frames.alloc fr hoarder with
           | Some pfn ->
             (* Mark every hoarded frame as mapped (in use). *)
             Ramtab.set_state ramtab ~pfn Ramtab.Mapped
           | None -> ()
         done;
         for _ = 1 to 4 do
           match Frames.alloc fr claimant with
           | Some _ -> incr claimed
           | None -> ()
         done));
  Sim.run sim;
  check "guarantee met despite mapped frames" 4 !claimed;
  checkb "notification delivered" true (!notified > 0);
  checkb "intrusive round counted" true (Frames.revocations fr > 0);
  checkb "hoarder survived" true (Frames.is_live hoarder)

let frames_kill_on_timeout () =
  let sim, ramtab, fr = frames_fixture ~nframes:8 () in
  let hoarder =
    match Frames.admit fr ~domain:1 ~guarantee:1 ~optimistic:7 with
    | Ok c -> c
    | Error e -> failwith (Frames.error_message e)
  in
  let claimant =
    match Frames.admit fr ~domain:2 ~guarantee:4 ~optimistic:0 with
    | Ok c -> c
    | Error e -> failwith (Frames.error_message e)
  in
  (* The hoarder ignores the notification entirely. *)
  Frames.set_revocation_handler hoarder (fun ~k:_ ~deadline:_ -> ());
  let killed = ref [] in
  Frames.set_kill_handler fr (fun d -> killed := d :: !killed);
  let claimed = ref 0 in
  let t_done = ref Time.zero in
  ignore
    (Proc.spawn sim (fun () ->
         for _ = 1 to 8 do
           match Frames.alloc fr hoarder with
           | Some pfn -> Ramtab.set_state ramtab ~pfn Ramtab.Mapped
           | None -> ()
         done;
         (match Frames.alloc fr claimant with
         | Some _ -> incr claimed
         | None -> ());
         t_done := Sim.now sim));
  Sim.run sim;
  check "allocation succeeded after the kill" 1 !claimed;
  Alcotest.(check (list int)) "hoarder killed" [ 1 ] !killed;
  checkb "dead" false (Frames.is_live hoarder);
  checkb "kill took the full deadline" true (!t_done >= Time.ms 100)

let suite =
  [ ( "core.bloks",
      [ Alcotest.test_case "first fit with hint" `Quick bloks_first_fit;
        Alcotest.test_case "exhaustion" `Quick bloks_exhaustion;
        Alcotest.test_case "error cases" `Quick bloks_errors;
        qtest bloks_invariants ] );
    ( "core.frame_stack",
      [ Alcotest.test_case "ordering operations" `Quick frame_stack_order ] );
    ( "core.pdom", [ Alcotest.test_case "rights table" `Quick pdom_rights ] );
    ( "core.stretch",
      [ Alcotest.test_case "geometry" `Quick stretch_geometry;
        Alcotest.test_case "meta right enforced" `Quick
          stretch_rights_meta_enforced;
        Alcotest.test_case "page-table protect route" `Quick
          stretch_rights_pt_route ] );
    ( "core.stretch_allocator",
      [ Alcotest.test_case "NULL mappings installed" `Quick
          stretch_allocator_null_mappings;
        Alcotest.test_case "requested base" `Quick
          stretch_allocator_requested_base;
        qtest stretch_allocator_no_overlap;
        Alcotest.test_case "destroy returns space" `Quick
          stretch_allocator_reuse_after_destroy ] );
    ( "core.translation",
      [ Alcotest.test_case "map validation" `Quick translation_map_validation;
        Alcotest.test_case "unmap returns dirty pte" `Quick
          translation_unmap_returns_pte;
        Alcotest.test_case "idempotent protect is cheap" `Quick
          translation_protect_idempotent_cheap ] );
    ( "core.event_chan",
      [ Alcotest.test_case "counts and ack" `Quick event_channel_counts ] );
    ( "core.frames",
      [ Alcotest.test_case "admission (sum g <= memory)" `Quick frames_admission;
        Alcotest.test_case "guarantee + optimistic caps" `Quick
          frames_guarantee_and_optimism;
        Alcotest.test_case "transparent revocation" `Quick
          frames_transparent_revocation;
        Alcotest.test_case "intrusive revocation" `Quick
          frames_intrusive_revocation;
        Alcotest.test_case "kill on deadline miss" `Quick frames_kill_on_timeout ] ) ]
