(* Tests for crash consistency: the write-ahead intent journal, torn
   multi-blok writes, remount/recovery, swapfile reattachment and the
   crash-recover experiment end to end. *)

open Engine
open Usbs

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let qtest = QCheck_alcotest.to_alcotest

let qos () = Qos.make ~period:(Time.ms 250) ~slice:(Time.ms 25) ()

(* Run [f] on a simulation process and step the simulator until it
   returns; journal appends, remounts and committing writes are all
   timed USD transactions and must run inside a process. *)
let in_proc sim f =
  let out = ref None in
  ignore (Proc.spawn sim (fun () -> out := Some (f ())));
  let fuel = ref 2_000_000 in
  while !out = None && !fuel > 0 do
    if Sim.step sim then decr fuel else fuel := 0
  done;
  match !out with
  | Some v -> v
  | None -> Alcotest.fail "simulation process did not complete"

let mk_sfs ?(journal_blocks = 256) () =
  let sim = Sim.create () in
  let dm = Disk.Disk_model.create () in
  let u = Usd.create sim dm in
  (sim, Sfs.create ~journal_blocks ~first_block:0 ~nblocks:1_000_000 u)

(* --- open_swap name collision (regression) --- *)

let open_swap_exists () =
  let _, fs = mk_sfs ~journal_blocks:0 () in
  let q = qos () in
  (match Sfs.open_swap fs ~name:"a" ~bytes:(256 * 1024) ~qos:q () with
  | Ok _ -> ()
  | Error e -> failwith (Sfs.open_error_message e));
  match Sfs.open_swap fs ~name:"a" ~bytes:(128 * 1024) ~qos:q () with
  | Error `Exists -> ()
  | Error (`Sfs m) -> Alcotest.fail ("wrong error class: " ^ m)
  | Ok _ -> Alcotest.fail "duplicate swap name accepted"

(* --- retiring a USD client resolves every pending submission --- *)

let retire_fills_pending () =
  let sim = Sim.create () in
  let dm = Disk.Disk_model.create () in
  let u = Usd.create sim dm in
  let c =
    match Usd.admit u ~name:"a" ~qos:(qos ()) ~channel_depth:1 () with
    | Ok c -> c
    | Error e -> failwith e
  in
  (* Three async writers against a depth-1 channel: one transaction in
     flight, one queued, one submitter blocked on the full channel. *)
  let resolved = ref 0 in
  for i = 0 to 2 do
    ignore
      (Proc.spawn sim (fun () ->
           match Usd.submit u c Usd.Write ~lba:(i * 64) ~nblocks:64 with
           | Ok iv ->
             ignore (Sync.Ivar.read iv);
             incr resolved
           | Error `Retired -> incr resolved))
  done;
  ignore
    (Proc.spawn sim (fun () ->
         Proc.sleep (Time.ms 1);
         Usd.retire u c));
  Sim.run ~until:(Time.sec 5) sim;
  (* The point of the test: no waiter blocks forever on retirement. *)
  check "every pending submission resolved" 3 !resolved

(* --- the intent journal: append / replay round trip --- *)

let mk_journal ?(nblocks = 64) () =
  let sim = Sim.create () in
  let dm = Disk.Disk_model.create () in
  let u = Usd.create sim dm in
  let c =
    match Usd.admit u ~name:"j" ~qos:(qos ()) () with
    | Ok c -> c
    | Error e -> failwith e
  in
  (sim, Journal.create ~u ~client:c ~first:0 ~nblocks)

let append_exn j ~site r =
  match Journal.append j ~site r with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "journal append failed"

let journal_roundtrip () =
  let sim, j = mk_journal () in
  let recs =
    [ Journal.Swap_open
        { name = "a"; start = 64; len = 128; data_pages = 8; spare_pages = 2 };
      Journal.Remap { name = "a"; slot = 3; spare = 8 };
      Journal.Commit
        { name = "a"; pairs = [ (0, 0); (1, 1) ]; retire = [ (0, 5) ] };
      Journal.Ext_alloc { start = 500; len = 16; tag = "f" };
      Journal.Ext_free { start = 500; len = 16; tag = "f" };
      Journal.Swap_close { name = "a" } ]
  in
  in_proc sim (fun () -> List.iter (append_exn j ~site:"a") recs);
  check "appends counted" 6 (Journal.appended j);
  let replayed, st = in_proc sim (fun () -> Journal.replay j) in
  check "all records replayed" 6 st.Journal.rp_replayed;
  check "none torn" 0 st.Journal.rp_torn;
  checkb "records round-trip in order" true (replayed = recs)

let journal_full_latches () =
  let sim, j = mk_journal ~nblocks:2 () in
  in_proc sim (fun () ->
      append_exn j ~site:"a" (Journal.Swap_close { name = "a" });
      append_exn j ~site:"a" (Journal.Swap_close { name = "a" });
      (match Journal.append j ~site:"a" (Journal.Swap_close { name = "a" }) with
      | Error `Full -> ()
      | _ -> Alcotest.fail "overfull append accepted");
      match Journal.append j ~site:"a" (Journal.Swap_close { name = "a" }) with
      | Error `Full -> ()
      | _ -> Alcotest.fail "full did not latch");
  checkb "journal reports full" true (Journal.full j)

(* --- torn appends are quarantined, the journal stays usable --- *)

(* A Commit with many pairs spans several bloks, so a crash point can
   tear it mid-record (a single-blok record can only tear to nothing,
   which replay rightly treats as a clean end of journal). *)
let big_commit n =
  Journal.Commit { name = "big"; pairs = List.init n (fun i -> (i, i)); retire = [] }

let crash_all_plan ~seed =
  { Inject.default_plan with
    seed;
    crashes =
      [ { Inject.cp_after = Time.zero; cp_site = None; cp_first = 0; cp_len = 0 } ]
  }

let journal_torn_quarantine () =
  let torn_seen = ref 0 in
  for seed = 1 to 8 do
    let sim, j = mk_journal ~nblocks:64 () in
    let sopen =
      Journal.Swap_open
        { name = "s"; start = 64; len = 64; data_pages = 4; spare_pages = 0 }
    in
    in_proc sim (fun () ->
        append_exn j ~site:"s" sopen;
        append_exn j ~site:"s" (Journal.Remap { name = "s"; slot = 0; spare = 3 }));
    Inject.arm (crash_all_plan ~seed);
    let r = in_proc sim (fun () -> Journal.append j ~site:"s" (big_commit 200)) in
    Inject.disarm ();
    (match r with
    | Error `Crashed -> ()
    | _ -> Alcotest.fail "crash point did not fire on the append");
    check "crash tallied" 1 (Inject.tally ()).Inject.crashes;
    let replayed, st = in_proc sim (fun () -> Journal.replay j) in
    check "pre-crash records survive" 2 st.Journal.rp_replayed;
    checkb "torn record never replays" false
      (List.exists (function Journal.Commit _ -> true | _ -> false) replayed);
    torn_seen := !torn_seen + st.Journal.rp_torn;
    (* After quarantine the journal must accept and replay new appends
       over the erased tail. *)
    in_proc sim (fun () ->
        append_exn j ~site:"s" (Journal.Swap_close { name = "s" }));
    let _, st2 = in_proc sim (fun () -> Journal.replay j) in
    check "append after quarantine replays" 3 st2.Journal.rp_replayed
  done;
  (* Seeded prefixes: at least one seed must leave partial bloks on the
     platter that replay detects as a torn record (not just a blank). *)
  checkb "some tear was detected and quarantined" true (!torn_seen > 0)

(* --- SFS: commit, detach, remount, reattach --- *)

let sfs_remount_reattach () =
  let sim, fs = mk_sfs () in
  let q = qos () in
  let sf =
    in_proc sim (fun () ->
        match
          Sfs.open_swap fs ~name:"v" ~bytes:(256 * 1024) ~qos:q ~spare_pages:2
            ()
        with
        | Ok s -> s
        | Error e -> failwith (Sfs.open_error_message e))
  in
  in_proc sim (fun () ->
      match
        Sfs.write_pages_commit sf ~page_index:0 ~npages:4
          ~pages:[ (10, 0); (11, 1); (12, 2); (13, 3) ]
          ~retire:[]
      with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "committing write failed");
  checkb "slot committed" true (Sfs.slot_committed sf 0);
  (* The out-of-place rewrite rule: a fresh slot is committed and the
     superseded one retired by the same record. *)
  in_proc sim (fun () ->
      match
        Sfs.write_pages_commit sf ~page_index:4 ~npages:1 ~pages:[ (10, 4) ]
          ~retire:[ (10, 0) ]
      with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "re-siting write failed");
  Alcotest.(check (list (pair int int)))
    "retire superseded the old slot"
    [ (10, 4); (11, 1); (12, 2); (13, 3) ]
    (Sfs.committed_pairs sf);
  (* The owner dies; its swapfile survives detached. *)
  Sfs.detach_swap fs sf;
  checkb "detached" false (Sfs.attached sf);
  (match Sfs.reattach_swap fs ~name:"nope" ~qos:q with
  | Error `Unknown -> ()
  | _ -> Alcotest.fail "unknown name reattached");
  let st =
    in_proc sim (fun () ->
        match Sfs.remount fs with Ok st -> st | Error e -> failwith e)
  in
  check "open + two commits replayed" 3 st.Sfs.rm_replayed;
  check "detached swap adopted from the journal" 1 st.Sfs.rm_swaps;
  check "no free-map conflicts" 0 st.Sfs.rm_conflicts;
  let sf2, pairs =
    in_proc sim (fun () ->
        match Sfs.reattach_swap fs ~name:"v" ~qos:q with
        | Ok x -> x
        | Error _ -> Alcotest.fail "reattach failed")
  in
  Alcotest.(check (list (pair int int)))
    "committed image recovered"
    [ (10, 4); (11, 1); (12, 2); (13, 3) ]
    pairs;
  checkb "every committed slot verifies" true
    (List.for_all (fun (_, slot) -> Sfs.slot_ok sf2 ~slot) pairs);
  match Sfs.reattach_swap fs ~name:"v" ~qos:q with
  | Error `Attached -> ()
  | _ -> Alcotest.fail "double reattach accepted"

(* --- file store journal --- *)

let file_store_remount () =
  let sim = Sim.create () in
  let dm = Disk.Disk_model.create () in
  let u = Usd.create sim dm in
  let fs = File_store.create ~journal_blocks:64 ~first_block:0 ~nblocks:100_000 u in
  in_proc sim (fun () ->
      let a =
        match File_store.create_file fs ~name:"a" ~bytes:(64 * 1024) with
        | Ok f -> f
        | Error e -> failwith e
      in
      (match File_store.create_file fs ~name:"b" ~bytes:(32 * 1024) with
      | Ok _ -> ()
      | Error e -> failwith e);
      File_store.delete fs a);
  let before = File_store.snapshot fs in
  let st =
    in_proc sim (fun () ->
        match File_store.remount fs with Ok st -> st | Error e -> failwith e)
  in
  check "surviving file rebuilt" 1 st.File_store.rm_files;
  checkb "deleted file stays deleted" true (File_store.find fs "a" = None);
  checkb "survivor found by name" true (File_store.find fs "b" <> None);
  checkb "replay reproduces the live state" true
    (File_store.snapshot fs = before)

(* --- Bloks.claim --- *)

let bloks_claim () =
  let b = Core.Bloks.create ~nbloks:8 in
  checkb "claim free blok" true (Core.Bloks.claim b 3);
  checkb "claimed blok allocated" true (Core.Bloks.is_allocated b 3);
  checkb "double claim refused" false (Core.Bloks.claim b 3);
  let rec drain acc =
    match Core.Bloks.alloc b with Some x -> drain (x :: acc) | None -> acc
  in
  let handed = drain [] in
  checkb "claimed blok never handed out" false (List.mem 3 handed);
  check "rest still allocatable" 7 (List.length handed);
  Core.Bloks.check_invariants b

(* --- properties --- *)

(* Replaying the journal twice yields byte-identical recovered state,
   whatever mix of opens, commits, closes and detaches preceded it. *)
let remount_idempotent =
  QCheck.Test.make ~name:"remount is idempotent (replay twice, same snapshot)"
    ~count:20
    QCheck.(list_of_size Gen.(int_range 1 8) (int_range 1 16))
    (fun sizes ->
      let sim, fs = mk_sfs () in
      let q = qos () in
      in_proc sim (fun () ->
          List.iteri
            (fun i pages ->
              match
                Sfs.open_swap fs
                  ~name:("s" ^ string_of_int i)
                  ~bytes:(pages * 8192) ~qos:q ()
              with
              | Error _ -> ()
              | Ok sf ->
                let n = min pages 4 in
                (match
                   Sfs.write_pages_commit sf ~page_index:0 ~npages:n
                     ~pages:(List.init n (fun p -> (p, p)))
                     ~retire:[]
                 with
                | Ok () | Error _ -> ());
                if i mod 3 = 0 then Sfs.close_swap fs sf
                else Sfs.detach_swap fs sf)
            sizes);
      let remount_snapshot () =
        in_proc sim (fun () ->
            (match Sfs.remount fs with
            | Ok _ -> ()
            | Error e -> failwith e);
            Sfs.snapshot fs)
      in
      remount_snapshot () = remount_snapshot ())

(* Two runs under the same seed tear the same write at the same prefix
   and recover to byte-identical state. *)
let crash_run_deterministic =
  QCheck.Test.make ~name:"same-seed crash runs recover identically" ~count:8
    QCheck.(int_range 1 1000)
    (fun seed ->
      let run_once () =
        Obs.set_enabled true;
        Obs.reset ();
        let sim, fs = mk_sfs () in
        let q = qos () in
        let sf =
          in_proc sim (fun () ->
              match
                Sfs.open_swap fs ~name:"v" ~bytes:(256 * 1024) ~qos:q ()
              with
              | Ok s -> s
              | Error e -> failwith (Sfs.open_error_message e))
        in
        in_proc sim (fun () ->
            match
              Sfs.write_pages_commit sf ~page_index:0 ~npages:2
                ~pages:[ (0, 0); (1, 1) ] ~retire:[]
            with
            | Ok () -> ()
            | Error _ -> failwith "setup commit failed");
        Inject.arm (crash_all_plan ~seed);
        let torn =
          in_proc sim (fun () ->
              Sfs.write_pages_commit sf ~page_index:2 ~npages:4
                ~pages:[ (2, 2); (3, 3); (4, 4); (5, 5) ]
                ~retire:[])
        in
        Inject.disarm ();
        (match torn with
        | Error `Crashed -> ()
        | _ -> failwith "crash point did not fire");
        Sfs.detach_swap fs sf;
        let snap =
          in_proc sim (fun () ->
              (match Sfs.remount fs with
              | Ok _ -> ()
              | Error e -> failwith e);
              Sfs.snapshot fs)
        in
        let metrics = Obs.Metrics.to_json () in
        Obs.set_enabled false;
        (snap, metrics)
      in
      run_once () = run_once ())

(* --- the experiment end to end --- *)

let crash_recover_end_to_end () =
  let r = Experiments.Crash_recover.run ~seed:11 ~rounds:2 () in
  check "no committed page lost" 0 r.Experiments.Crash_recover.total_lost;
  check "bystanders unperturbed" 0 r.Experiments.Crash_recover.clean_violations;
  checkb "pages restored on restart" true
    (r.Experiments.Crash_recover.total_restored > 0);
  checkb "verdict ok" true (Experiments.Crash_recover.ok r)

let suite =
  [ ( "crash.journal",
      [ Alcotest.test_case "append/replay round trip" `Quick journal_roundtrip;
        Alcotest.test_case "full latches" `Quick journal_full_latches;
        Alcotest.test_case "torn append quarantined" `Quick
          journal_torn_quarantine ] );
    ( "crash.sfs",
      [ Alcotest.test_case "duplicate open_swap name" `Quick open_swap_exists;
        Alcotest.test_case "commit/detach/remount/reattach" `Quick
          sfs_remount_reattach;
        Alcotest.test_case "file store replay" `Quick file_store_remount;
        Alcotest.test_case "bloks claim" `Quick bloks_claim ] );
    ( "crash.usd",
      [ Alcotest.test_case "retire resolves pending submissions" `Quick
          retire_fills_pending ] );
    ( "crash.properties",
      [ qtest remount_idempotent; qtest crash_run_deterministic ] );
    ( "crash.experiment",
      [ Alcotest.test_case "crash-recover verdict" `Slow
          crash_recover_end_to_end ] ) ]
