(* Tests for the discrete-event simulation kernel. *)

open Engine

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* --- Time --- *)

let time_units () =
  check "us" 1_000 (Time.us 1);
  check "ms" 1_000_000 (Time.ms 1);
  check "sec" 1_000_000_000 (Time.sec 1);
  check "of_us_float rounds" 1_500 (Time.of_us_float 1.5);
  Alcotest.(check (float 1e-9)) "to_ms" 1.5 (Time.to_ms (Time.of_ms_float 1.5));
  check "add" 15 (Time.add 5 10);
  check "diff" (-5) (Time.diff 5 10)

let time_pp () =
  let s v = Format.asprintf "%a" Time.pp v in
  Alcotest.(check string) "ns" "999ns" (s 999);
  Alcotest.(check string) "us" "1.000us" (s 1_000);
  Alcotest.(check string) "ms" "2.500ms" (s (Time.of_ms_float 2.5));
  Alcotest.(check string) "s" "3.000s" (s (Time.sec 3))

(* --- Heap --- *)

let heap_basic () =
  let h = Heap.create () in
  checkb "empty" true (Heap.is_empty h);
  Heap.push h ~key:5 ~sub:0 "five";
  Heap.push h ~key:1 ~sub:0 "one";
  Heap.push h ~key:3 ~sub:0 "three";
  check "length" 3 (Heap.length h);
  (match Heap.pop h with
  | Some (1, 0, "one") -> ()
  | _ -> Alcotest.fail "expected (1, one)");
  (match Heap.peek h with
  | Some (3, 0, "three") -> ()
  | _ -> Alcotest.fail "expected peek (3, three)");
  check "length after pop" 2 (Heap.length h)

let heap_fifo_ties () =
  let h = Heap.create () in
  List.iteri (fun i v -> Heap.push h ~key:7 ~sub:i v) [ "a"; "b"; "c" ];
  let order =
    List.init 3 (fun _ ->
        match Heap.pop h with Some (_, _, v) -> v | None -> "?")
  in
  Alcotest.(check (list string)) "tie order" [ "a"; "b"; "c" ] order

let heap_sorts =
  QCheck.Test.make ~name:"heap pops keys in sorted order" ~count:200
    QCheck.(list small_int)
    (fun keys ->
      let h = Heap.create () in
      List.iteri (fun i k -> Heap.push h ~key:k ~sub:i k) keys;
      let popped = ref [] in
      let rec drain () =
        match Heap.pop h with
        | Some (k, _, _) ->
          popped := k :: !popped;
          drain ()
        | None -> ()
      in
      drain ();
      List.rev !popped = List.sort compare keys)

(* --- Rng --- *)

let rng_bounds =
  QCheck.Test.make ~name:"rng int stays in bounds" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Rng.create ~seed in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let rng_deterministic () =
  let a = Rng.create ~seed:99 and b = Rng.create ~seed:99 in
  for _ = 1 to 50 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done;
  let c = Rng.split a in
  checkb "split differs" true (Rng.int64 c <> Rng.int64 a)

(* --- Sim --- *)

let sim_ordering () =
  let sim = Sim.create () in
  let log = ref [] in
  ignore (Sim.at sim (Time.ms 5) (fun () -> log := 5 :: !log));
  ignore (Sim.at sim (Time.ms 1) (fun () -> log := 1 :: !log));
  ignore (Sim.at sim (Time.ms 3) (fun () -> log := 3 :: !log));
  Sim.run sim;
  Alcotest.(check (list int)) "time order" [ 1; 3; 5 ] (List.rev !log);
  check "clock" (Time.ms 5) (Sim.now sim)

let sim_same_instant_fifo () =
  let sim = Sim.create () in
  let log = ref [] in
  for i = 1 to 4 do
    ignore (Sim.at sim (Time.ms 1) (fun () -> log := i :: !log))
  done;
  Sim.run sim;
  Alcotest.(check (list int)) "fifo at same instant" [ 1; 2; 3; 4 ]
    (List.rev !log)

let sim_cancel () =
  let sim = Sim.create () in
  let fired = ref false in
  let h = Sim.at sim (Time.ms 1) (fun () -> fired := true) in
  Sim.cancel h;
  check "pending after cancel" 0 (Sim.pending sim);
  Sim.run sim;
  checkb "cancelled did not fire" false !fired

let sim_until () =
  let sim = Sim.create () in
  let fired = ref 0 in
  ignore (Sim.at sim (Time.ms 1) (fun () -> incr fired));
  ignore (Sim.at sim (Time.ms 10) (fun () -> incr fired));
  Sim.run ~until:(Time.ms 5) sim;
  check "only first fired" 1 !fired;
  check "clock at limit" (Time.ms 5) (Sim.now sim);
  Sim.run sim;
  check "second fires on resume" 2 !fired

let sim_past_raises () =
  let sim = Sim.create () in
  ignore (Sim.at sim (Time.ms 2) (fun () -> ()));
  Sim.run sim;
  Alcotest.check_raises "past scheduling"
    (Invalid_argument "Sim.at: 1.000ms is in the past (now 2.000ms)")
    (fun () -> ignore (Sim.at sim (Time.ms 1) (fun () -> ())))

(* --- Proc --- *)

let proc_sleep () =
  let sim = Sim.create () in
  let woke = ref Time.zero in
  ignore
    (Proc.spawn sim (fun () ->
         Proc.sleep (Time.ms 7);
         woke := Sim.now sim));
  Sim.run sim;
  check "woke at 7ms" (Time.ms 7) !woke

let proc_join () =
  let sim = Sim.create () in
  let order = ref [] in
  let p =
    Proc.spawn sim (fun () ->
        Proc.sleep (Time.ms 3);
        order := "worker" :: !order)
  in
  ignore
    (Proc.spawn sim (fun () ->
         Proc.join p;
         order := "joiner" :: !order));
  Sim.run sim;
  Alcotest.(check (list string)) "join order" [ "worker"; "joiner" ]
    (List.rev !order)

let proc_kill_mid_sleep () =
  let sim = Sim.create () in
  let cleaned = ref false in
  let reached = ref false in
  let p =
    Proc.spawn sim (fun () ->
        (try Proc.sleep (Time.sec 100)
         with Proc.Killed as e ->
           cleaned := true;
           raise e);
        reached := true)
  in
  ignore (Sim.after sim (Time.ms 1) (fun () -> Proc.kill p));
  Sim.run sim;
  checkb "cleanup ran" true !cleaned;
  checkb "body did not continue" false !reached;
  checkb "dead" false (Proc.is_alive p);
  (* The 100 s timer must have been cancelled. *)
  check "clock stopped early" (Time.ms 1) (Sim.now sim)

let proc_on_terminate () =
  let sim = Sim.create () in
  let hooks = ref 0 in
  let p = Proc.spawn sim (fun () -> Proc.sleep (Time.ms 1)) in
  Proc.on_terminate p (fun () -> incr hooks);
  Sim.run sim;
  check "hook ran" 1 !hooks;
  Proc.on_terminate p (fun () -> incr hooks);
  check "late hook runs at once" 2 !hooks

let proc_kill_before_start () =
  let sim = Sim.create () in
  let ran = ref false in
  let p = Proc.spawn sim (fun () -> ran := true) in
  Proc.kill p;
  Sim.run sim;
  checkb "body never ran" false !ran;
  checkb "dead" false (Proc.is_alive p)

(* --- Sync --- *)

let ivar_basics () =
  let sim = Sim.create () in
  let iv = Sync.Ivar.create () in
  let got = ref 0 in
  ignore (Proc.spawn sim (fun () -> got := Sync.Ivar.read iv));
  ignore (Sim.after sim (Time.ms 2) (fun () -> Sync.Ivar.fill iv 42));
  Sim.run sim;
  check "read value" 42 !got;
  checkb "try_fill refused" false (Sync.Ivar.try_fill iv 1);
  Alcotest.check_raises "double fill" (Invalid_argument "Ivar.fill: already filled")
    (fun () -> Sync.Ivar.fill iv 1)

let ivar_timeout () =
  let sim = Sim.create () in
  let first = ref None and second = ref None in
  let iv = Sync.Ivar.create () in
  ignore
    (Proc.spawn sim (fun () -> first := Some (Sync.Ivar.read_timeout iv (Time.ms 5))));
  ignore
    (Proc.spawn sim (fun () ->
         second := Some (Sync.Ivar.read_timeout iv (Time.ms 20))));
  ignore (Sim.after sim (Time.ms 10) (fun () -> Sync.Ivar.fill iv 7));
  Sim.run sim;
  Alcotest.(check (option (option int))) "timed out" (Some None) !first;
  Alcotest.(check (option (option int))) "delivered" (Some (Some 7)) !second

let mailbox_fifo () =
  let sim = Sim.create () in
  let mb = Sync.Mailbox.create () in
  let got = ref [] in
  ignore
    (Proc.spawn sim (fun () ->
         for _ = 1 to 3 do
           got := Sync.Mailbox.recv mb :: !got
         done));
  ignore
    (Sim.after sim (Time.ms 1) (fun () ->
         List.iter (Sync.Mailbox.send mb) [ 1; 2; 3 ]));
  Sim.run sim;
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3 ] (List.rev !got)

let semaphore_mutex () =
  let sim = Sim.create () in
  let sem = Sync.Semaphore.create 1 in
  let inside = ref 0 and max_inside = ref 0 in
  let worker () =
    Sync.Semaphore.acquire sem;
    incr inside;
    if !inside > !max_inside then max_inside := !inside;
    Proc.sleep (Time.ms 2);
    decr inside;
    Sync.Semaphore.release sem
  in
  for _ = 1 to 5 do
    ignore (Proc.spawn sim worker)
  done;
  Sim.run sim;
  check "mutual exclusion" 1 !max_inside;
  check "all done" 0 !inside

let waitq_timeout () =
  let sim = Sim.create () in
  let q = Sync.Waitq.create () in
  let r1 = ref None and r2 = ref None in
  ignore (Proc.spawn sim (fun () -> r1 := Some (Sync.Waitq.wait_timeout q (Time.ms 5))));
  ignore (Proc.spawn sim (fun () -> r2 := Some (Sync.Waitq.wait_timeout q (Time.ms 50))));
  ignore (Sim.after sim (Time.ms 10) (fun () -> Sync.Waitq.broadcast q));
  Sim.run sim;
  Alcotest.(check (option bool)) "timed out" (Some false) !r1;
  Alcotest.(check (option bool)) "signalled" (Some true) !r2

(* --- Stats --- *)

let stats_moments () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  Alcotest.(check (float 1e-9)) "mean" 5.0 (Stats.mean s);
  Alcotest.(check (float 1e-6)) "stddev" 2.138089935 (Stats.stddev s);
  Alcotest.(check (float 0.0)) "min" 2.0 (Stats.min_value s);
  Alcotest.(check (float 0.0)) "max" 9.0 (Stats.max_value s)

let stats_percentile () =
  let s = Stats.create ~keep_samples:true () in
  for i = 1 to 100 do
    Stats.add s (float_of_int i)
  done;
  Alcotest.(check (float 0.5)) "p50" 50.5 (Stats.percentile s 50.0);
  Alcotest.(check (float 0.5)) "p95" 95.0 (Stats.percentile s 95.0);
  Alcotest.(check (float 0.0)) "p100" 100.0 (Stats.percentile s 100.0)

let stats_percentile_edges () =
  let s = Stats.create ~keep_samples:true () in
  List.iter (Stats.add s) [ 7.0; 3.0; 5.0 ];
  Alcotest.(check (float 0.0)) "p0 is min" 3.0 (Stats.percentile s 0.0);
  Alcotest.(check (float 0.0)) "p100 is max" 7.0 (Stats.percentile s 100.0);
  let one = Stats.create ~keep_samples:true () in
  Stats.add one 42.0;
  Alcotest.(check (float 0.0)) "single sample p0" 42.0 (Stats.percentile one 0.0);
  Alcotest.(check (float 0.0)) "single sample p50" 42.0
    (Stats.percentile one 50.0);
  Alcotest.(check (float 0.0)) "single sample p100" 42.0
    (Stats.percentile one 100.0);
  let empty = Stats.create ~keep_samples:true () in
  Alcotest.(check bool) "empty is nan" true
    (Float.is_nan (Stats.percentile empty 50.0));
  let raises p =
    match Stats.percentile s p with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "p < 0 rejected" true (raises (-1.0));
  Alcotest.(check bool) "p > 100 rejected" true (raises 100.5);
  Alcotest.(check bool) "nan p rejected" true (raises Float.nan)

let stats_mean_matches_oracle =
  QCheck.Test.make ~name:"stats mean matches naive computation" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 50) (float_bound_exclusive 1000.0))
    (fun xs ->
      let s = Stats.create () in
      List.iter (Stats.add s) xs;
      let naive = List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs) in
      Float.abs (Stats.mean s -. naive) < 1e-6)

let series_mean_after () =
  let s = Stats.Series.create () in
  Stats.Series.add s (Time.sec 1) 10.0;
  Stats.Series.add s (Time.sec 2) 20.0;
  Stats.Series.add s (Time.sec 3) 30.0;
  Alcotest.(check (float 1e-9)) "all" 20.0 (Stats.Series.mean_after s Time.zero);
  Alcotest.(check (float 1e-9)) "tail" 25.0
    (Stats.Series.mean_after s (Time.sec 2))

(* --- Trace / Dynarray --- *)

let trace_between () =
  let t = Trace.create () in
  List.iter (fun (ts, v) -> Trace.record t ts v)
    [ (1, "a"); (5, "b"); (9, "c") ];
  Alcotest.(check int) "len" 3 (Trace.length t);
  Alcotest.(check (list (pair int string))) "window" [ (5, "b") ]
    (Trace.between t 2 9)

let dynarray_growth () =
  let d = Dynarray.create () in
  for i = 0 to 99 do
    Dynarray.add_last d i
  done;
  check "length" 100 (Dynarray.length d);
  check "get" 42 (Dynarray.get d 42);
  Dynarray.set d 42 1000;
  check "set" 1000 (Dynarray.get d 42);
  Alcotest.check_raises "oob" (Invalid_argument "Dynarray: index out of bounds")
    (fun () -> ignore (Dynarray.get d 100));
  check "fold" (99 * 100 / 2 + 1000 - 42)
    (Dynarray.fold_left ( + ) 0 d)

let qtest = QCheck_alcotest.to_alcotest

let suite =
  [ ( "engine.time",
      [ Alcotest.test_case "units" `Quick time_units;
        Alcotest.test_case "pretty-printing" `Quick time_pp ] );
    ( "engine.heap",
      [ Alcotest.test_case "push/pop/peek" `Quick heap_basic;
        Alcotest.test_case "ties are FIFO" `Quick heap_fifo_ties;
        qtest heap_sorts ] );
    ( "engine.rng",
      [ qtest rng_bounds;
        Alcotest.test_case "deterministic streams" `Quick rng_deterministic ] );
    ( "engine.sim",
      [ Alcotest.test_case "time ordering" `Quick sim_ordering;
        Alcotest.test_case "same-instant FIFO" `Quick sim_same_instant_fifo;
        Alcotest.test_case "cancellation" `Quick sim_cancel;
        Alcotest.test_case "run ~until" `Quick sim_until;
        Alcotest.test_case "scheduling in the past" `Quick sim_past_raises ] );
    ( "engine.proc",
      [ Alcotest.test_case "sleep advances time" `Quick proc_sleep;
        Alcotest.test_case "join" `Quick proc_join;
        Alcotest.test_case "kill mid-sleep" `Quick proc_kill_mid_sleep;
        Alcotest.test_case "on_terminate" `Quick proc_on_terminate;
        Alcotest.test_case "kill before start" `Quick proc_kill_before_start ] );
    ( "engine.sync",
      [ Alcotest.test_case "ivar" `Quick ivar_basics;
        Alcotest.test_case "ivar timeout" `Quick ivar_timeout;
        Alcotest.test_case "mailbox fifo" `Quick mailbox_fifo;
        Alcotest.test_case "semaphore as mutex" `Quick semaphore_mutex;
        Alcotest.test_case "waitq timeout" `Quick waitq_timeout ] );
    ( "engine.stats",
      [ Alcotest.test_case "moments" `Quick stats_moments;
        Alcotest.test_case "percentiles" `Quick stats_percentile;
        Alcotest.test_case "percentile edge cases" `Quick stats_percentile_edges;
        qtest stats_mean_matches_oracle;
        Alcotest.test_case "series mean_after" `Quick series_mean_after ] );
    ( "engine.trace",
      [ Alcotest.test_case "between" `Quick trace_between;
        Alcotest.test_case "dynarray" `Quick dynarray_growth ] ) ]
