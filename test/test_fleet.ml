(* Tests for the replicated remote tier: rendezvous placement, the
   fleet's double-entry books under wipe/partition/repair
   interleavings, read failover, background re-replication, the
   bounded retransmit ladder shared with the disk path, and the typed
   not-bound errors on the sharing drivers. *)

open Engine

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)
let qtest = QCheck_alcotest.to_alcotest

let mk_sfs () =
  let sim = Sim.create () in
  let dm = Disk.Disk_model.create () in
  let u = Usbs.Usd.create sim dm in
  (sim, u, Usbs.Sfs.create ~first_block:0 ~nblocks:1_000_000 u)

let open_swap_exn fs ~name ~bytes =
  let q = Usbs.Qos.make ~period:(Time.ms 250) ~slice:(Time.ms 125) () in
  match Usbs.Sfs.open_swap fs ~name ~bytes ~qos:q () with
  | Ok s -> s
  | Error e -> failwith (Usbs.Sfs.open_error_message e)

(* A fleet of [nodes] remote nodes on their own links, one attached
   store over a 32-page swapfile. Tests drive repair themselves
   ([repair = false] keeps the background process out of the way). *)
let mk_fleet ?(seed = 7) ?(replicas = 2) ?(nodes = 4) ?(node_pages = 16)
    ?(cache_pages = 2) ?(repair = false) () =
  let sim, _, fs = mk_sfs () in
  let swap = open_swap_exn fs ~name:"f" ~bytes:(256 * 1024) in
  let triples =
    List.init nodes (fun i ->
        let name = Printf.sprintf "fn%d" i in
        let link = Usnet.Link.create ~name sim in
        (name, Tier.Remote_node.create ~capacity_pages:node_pages (), link))
  in
  let fleet =
    Tier.Fleet.create ~seed ~redundancy:(Tier.Fleet.Replicated replicas)
      ~repair ~nodes:triples sim
  in
  let clients =
    match
      Tier.Fleet.admit_clients fleet ~name:"t.fleet" ~period:(Time.ms 20)
        ~slice:(Time.ms 10) ~laxity:(Time.of_ms_float 2.0) ()
    with
    | Ok cs -> cs
    | Error e -> failwith (Usnet.Link.admit_error_message e)
  in
  let store = Tier.Fleet.attach fleet ~cache_pages ~clients ~swap () in
  (sim, fleet, store, swap, triples)

let write_exn b slot =
  match b.Tier.Backing.write_pages ~page_index:slot ~npages:1 with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "write failed"

let read_exn b slot =
  match b.Tier.Backing.read_pages ~page_index:slot ~npages:1 with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "read failed"

(* --- Placement --- *)

let placement_determinism () =
  let _, f1, _, swap, _ = mk_fleet ~seed:11 () in
  let _, f2, _, _, _ = mk_fleet ~seed:11 () in
  let _, f3, _, _, _ = mk_fleet ~seed:12 () in
  let owner = Usbs.Sfs.swap_name swap in
  let differs = ref false in
  for slot = 0 to 31 do
    let p1 = Tier.Fleet.placement f1 ~owner ~slot in
    let p2 = Tier.Fleet.placement f2 ~owner ~slot in
    let p3 = Tier.Fleet.placement f3 ~owner ~slot in
    checkb "same seed, same placement" true (p1 = p2);
    if p1 <> p3 then differs := true;
    check "R replicas" 2 (Array.length p1);
    Array.iter
      (fun i -> checkb "replica index in range" true (i >= 0 && i < 4))
      p1;
    checkb "replicas distinct" true (p1.(0) <> p1.(1))
  done;
  checkb "different seed moves at least one slot" true !differs

let placement_clamp () =
  let _, f, _, swap, _ = mk_fleet ~seed:3 ~replicas:9 ~nodes:3 () in
  let owner = Usbs.Sfs.swap_name swap in
  let p = Tier.Fleet.placement f ~owner ~slot:0 in
  check "replicas clamp to fleet size" 3 (Array.length p)

(* --- Demote / fetch through the Backing seam --- *)

let fleet_demote_fetch () =
  let sim, fleet, store, swap, triples = mk_fleet () in
  let b = Tier.Fleet.backing store in
  let owner = Usbs.Sfs.swap_name swap in
  ignore
    (Proc.spawn sim (fun () ->
         for slot = 0 to 7 do
           write_exn b slot
         done;
         for slot = 0 to 7 do
           read_exn b slot
         done));
  Sim.run ~until:(Time.sec 30) sim;
  let f = Tier.Fleet.stats fleet in
  let st = Tier.Fleet.store_stats store in
  check "stores = acks" f.Tier.Fleet.acks f.Tier.Fleet.stores;
  checkb "fleet served reads" true (st.Tier.Fleet.st_fleet_hits > 0);
  checkb "books balance" true (Tier.Fleet.books_balanced fleet);
  check "nothing lost" 0 st.Tier.Fleet.st_lost_slots;
  (* every tracked slot is fully replicated on its placement nodes:
     slots 0..5 were evicted from the 2-page cache by the later writes *)
  let remotes = Array.of_list (List.map (fun (_, r, _) -> r) triples) in
  for slot = 0 to 5 do
    Array.iter
      (fun i ->
        checkb "replica holds the page" true
          (Tier.Remote_node.holds remotes.(i) ~owner ~slot))
      (Tier.Fleet.placement fleet ~owner ~slot)
  done

(* --- Wipe: reads fail over to the surviving replica --- *)

let wipe_failover () =
  let sim, fleet, store, swap, triples = mk_fleet () in
  let b = Tier.Fleet.backing store in
  let owner = Usbs.Sfs.swap_name swap in
  let remotes = Array.of_list (List.map (fun (_, r, _) -> r) triples) in
  let victim = (Tier.Fleet.placement fleet ~owner ~slot:0).(0) in
  ignore
    (Proc.spawn sim (fun () ->
         (* slots 0..11 demoted; 12..13 flush the 2-page cache *)
         for slot = 0 to 13 do
           write_exn b slot
         done;
         Tier.Remote_node.wipe remotes.(victim);
         for slot = 0 to 11 do
           read_exn b slot
         done));
  Sim.run ~until:(Time.sec 60) sim;
  let orphans = ref 0 in
  for slot = 0 to 11 do
    if (Tier.Fleet.placement fleet ~owner ~slot).(0) = victim then
      incr orphans
  done;
  checkb "the victim was primary somewhere" true (!orphans > 0);
  let f = Tier.Fleet.stats fleet in
  check "each orphaned primary failed over" !orphans f.Tier.Fleet.failovers;
  check "no disk fallbacks (secondary survives)" 0
    f.Tier.Fleet.disk_fallbacks;
  checkb "books balance" true (Tier.Fleet.books_balanced fleet);
  check "nothing lost" 0
    (Tier.Fleet.store_stats store).Tier.Fleet.st_lost_slots

(* --- Repair: the wiped node is re-replicated from survivors --- *)

let repair_rebuild () =
  let sim, fleet, store, swap, triples = mk_fleet () in
  let b = Tier.Fleet.backing store in
  let owner = Usbs.Sfs.swap_name swap in
  let remotes = Array.of_list (List.map (fun (_, r, _) -> r) triples) in
  let victim = (Tier.Fleet.placement fleet ~owner ~slot:0).(0) in
  ignore
    (Proc.spawn sim (fun () ->
         for slot = 0 to 13 do
           write_exn b slot
         done;
         Tier.Remote_node.wipe remotes.(victim);
         (* default budget is 8 copies a round; a few rounds heal it *)
         for _ = 1 to 6 do
           Tier.Fleet.repair_round fleet;
           Proc.sleep (Time.ms 10)
         done));
  Sim.run ~until:(Time.sec 60) sim;
  let f = Tier.Fleet.stats fleet in
  checkb "primary copies rebuilt" true (f.Tier.Fleet.rebuilds > 0);
  checkb "books balance" true (Tier.Fleet.books_balanced fleet);
  for slot = 0 to 11 do
    Array.iter
      (fun i ->
        checkb "every replica holds every tracked slot again" true
          (Tier.Remote_node.holds remotes.(i) ~owner ~slot))
      (Tier.Fleet.placement fleet ~owner ~slot)
  done;
  ignore store

(* --- Model: books balance under wipe/partition/repair interleavings --- *)

(* Random op sequences against a fleet whose nodes are wiped and
   partitioned at random virtual times, with repair rounds woven in:
   write-through keeps a disk floor under everything, so whatever the
   interleaving, every op must succeed, nothing may be lost, and both
   double-entry books must balance. *)
let fleet_books_model =
  QCheck.Test.make ~count:10
    ~name:"fleet: books balance under wipe/partition/repair"
    QCheck.(
      pair
        (list_of_size Gen.(5 -- 40)
           (pair (int_bound 2) (int_bound 13)))
        (triple (int_bound 9999) (int_bound 3) (int_bound 3)))
    (fun (ops, (seed, wiped, parted)) ->
      let sim, fleet, store, _, _ = mk_fleet ~seed:(seed + 1) () in
      let b = Tier.Fleet.backing store in
      let ms f = Time.of_ms_float f in
      Inject.arm
        { Inject.default_plan with
          seed;
          node_faults =
            [ Inject.node_fault
                ~wipe_at:(ms (float_of_int (seed mod 400)))
                (Printf.sprintf "fn%d" wiped);
              Inject.node_fault
                ~partitions:
                  [ ( ms (float_of_int (seed mod 200)),
                      ms (float_of_int ((seed mod 200) + 150)) ) ]
                (Printf.sprintf "fn%d" parted) ] };
      Fun.protect ~finally:Inject.disarm (fun () ->
          let bad = ref 0 in
          let written = Hashtbl.create 16 in
          ignore
            (Proc.spawn sim (fun () ->
                 List.iter
                   (fun (kind, slot) ->
                     match kind with
                     | 0 -> (
                         match
                           b.Tier.Backing.write_pages ~page_index:slot
                             ~npages:1
                         with
                         | Ok () -> Hashtbl.replace written slot ()
                         | Error _ -> incr bad)
                     | 1 ->
                         if Hashtbl.mem written slot then (
                           match
                             b.Tier.Backing.read_pages ~page_index:slot
                               ~npages:1
                           with
                           | Ok () -> ()
                           | Error _ -> incr bad)
                     | _ ->
                         Tier.Fleet.repair_round fleet;
                         Proc.sleep (Time.ms 20))
                   ops;
                 (* let repair settle, then sweep: every written slot
                    must still read back through some copy *)
                 for _ = 1 to 4 do
                   Tier.Fleet.repair_round fleet;
                   Proc.sleep (Time.ms 20)
                 done;
                 Hashtbl.iter
                   (fun slot () ->
                     match
                       b.Tier.Backing.read_pages ~page_index:slot ~npages:1
                     with
                     | Ok () -> ()
                     | Error _ -> incr bad)
                   written));
          Sim.run ~until:(Time.sec 120) sim;
          !bad = 0
          && Tier.Fleet.books_balanced fleet
          && (Tier.Fleet.store_stats store).Tier.Fleet.st_lost_slots = 0))

(* --- The bounded retransmit ladder (shared with Sfs) --- *)

let backoff_ladder () =
  let base = Time.ms 1 in
  check "attempt 0" (Time.ms 1) (Tier.Store.backoff ~base ~attempt:0);
  check "attempt 1" (Time.ms 2) (Tier.Store.backoff ~base ~attempt:1);
  check "attempt 2" (Time.ms 4) (Tier.Store.backoff ~base ~attempt:2);
  check "attempt 3" (Time.ms 8) (Tier.Store.backoff ~base ~attempt:3);
  check "attempt 9 stays capped" (Time.ms 8)
    (Tier.Store.backoff ~base ~attempt:9)

(* A black-hole link: every retransmit of the first fragment walks the
   deterministic 1/2/4/8 ms ladder, and the chosen delays surface in
   the transfer stats in chronological order. *)
let retx_delays_surfaced () =
  let sim, _, fs = mk_sfs () in
  let swap = open_swap_exn fs ~name:"lad" ~bytes:(256 * 1024) in
  let link = Usnet.Link.create ~name:"ladlink" sim in
  let client =
    match
      Usnet.Link.admit link ~name:"lad.tier" ~period:(Time.ms 20)
        ~slice:(Time.ms 10) ~laxity:(Time.of_ms_float 2.0) ()
    with
    | Ok c -> c
    | Error e -> failwith (Usnet.Link.admit_error_message e)
  in
  let remote = Tier.Remote_node.create ~capacity_pages:16 () in
  let store = Tier.Store.create ~cache_pages:1 ~link ~client ~remote ~swap () in
  let b = Tier.Store.backing store in
  Inject.arm
    { Inject.default_plan with
      seed = 1;
      links =
        [ ( "ladlink",
            { Inject.lf_drop = 1.0; lf_delay = 0.0; lf_delay_span = 0 } ) ] };
  Fun.protect ~finally:Inject.disarm (fun () ->
      ignore
        (Proc.spawn sim (fun () ->
             write_exn b 0;
             write_exn b 1 (* evicts slot 0: demote into the black hole *)));
      Sim.run ~until:(Time.sec 10) sim;
      let s = Tier.Store.stats store in
      Alcotest.(check (list int))
        "ladder delays surfaced in order"
        [ Time.ms 1; Time.ms 2; Time.ms 4 ]
        s.Tier.Store.retx_delays;
      check "three retransmits" 3 s.Tier.Store.retransmits)

(* --- Typed not-bound errors on the sharing drivers --- *)

let typed_not_bound () =
  checks "Seg printer keeps the legacy string" "Seg: driver not bound"
    (Printexc.to_string (Share.Seg.Not_bound { driver = "Seg" }));
  checks "Cow printer keeps the legacy string" "Cow: driver not bound"
    (Printexc.to_string (Share.Cow.Not_bound { driver = "Cow" }))

(* --- Experiment smoke --- *)

(* Short run: safety invariants only (the full latency/health verdict
   needs the 30 s default to warm up; `make failover` covers that). *)
let failover_experiment_smoke () =
  let r = Experiments.Failover.run ~seed:5 ~duration:(Time.sec 6) () in
  check "no bystander violations" 0
    r.Experiments.Failover.bystander_violations;
  checkb "fleet books balance" true r.Experiments.Failover.books_balanced;
  check "no committed pages lost" 0 r.Experiments.Failover.lost_slots;
  checkb "same-seed rerun byte-identical" true
    r.Experiments.Failover.deterministic

let suite =
  [ ( "fleet.placement",
      [ Alcotest.test_case "rendezvous determinism" `Quick
          placement_determinism;
        Alcotest.test_case "replicas clamp to fleet size" `Quick
          placement_clamp ] );
    ( "fleet.store",
      [ Alcotest.test_case "demote replicates, fetch promotes" `Quick
          fleet_demote_fetch;
        Alcotest.test_case "wiped primary fails over" `Quick wipe_failover;
        Alcotest.test_case "repair re-replicates the wiped node" `Quick
          repair_rebuild;
        qtest fleet_books_model ] );
    ( "fleet.retransmit",
      [ Alcotest.test_case "bounded exponential ladder" `Quick backoff_ladder;
        Alcotest.test_case "chosen delays surface in stats" `Quick
          retx_delays_surfaced ] );
    ( "share.errors",
      [ Alcotest.test_case "typed not-bound keeps legacy strings" `Quick
          typed_not_bound ] );
    ( "fleet.experiment",
      [ Alcotest.test_case "failover smoke" `Slow failover_experiment_smoke ]
    ) ]
