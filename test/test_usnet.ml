(* Tests for the user-safe network link. *)

open Engine

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let mk () =
  let sim = Sim.create () in
  (sim, Usnet.Link.create sim)

let transmit_exn link c ~bytes =
  match Usnet.Link.transmit link c ~bytes with
  | Ok () -> ()
  | Error `Retired -> failwith "transmit_exn: client retired"

let send_exn link c ~bytes =
  match Usnet.Link.send link c ~bytes with
  | Ok iv -> iv
  | Error `Retired -> failwith "send_exn: client retired"

let admit_exn link ~name ~period ~slice ?extra ?laxity () =
  match Usnet.Link.admit link ~name ~period ~slice ?extra ?laxity () with
  | Ok c -> c
  | Error e -> failwith (Usnet.Link.admit_error_message e)

let tx_time_model () =
  let p = Usnet.Net_params.fast_ethernet in
  (* 1514 bytes at 100 Mbit/s = 121.1 us on the wire + 8 us overhead. *)
  let t = Usnet.Net_params.tx_time p ~bytes:1514 in
  checkb "about 129us" true (t > Time.us 128 && t < Time.us 131);
  Alcotest.check_raises "oversized packet"
    (Invalid_argument "Net_params.tx_time: bad size 2000") (fun () ->
      ignore (Usnet.Net_params.tx_time p ~bytes:2000))

let link_admission () =
  let _, link = mk () in
  ignore (admit_exn link ~name:"a" ~period:(Time.ms 10) ~slice:(Time.ms 6) ());
  ignore (admit_exn link ~name:"b" ~period:(Time.ms 10) ~slice:(Time.ms 4) ());
  match
    Usnet.Link.admit link ~name:"c" ~period:(Time.ms 10) ~slice:(Time.ms 1) ()
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "overbooked link admission accepted"

let link_single_sender () =
  let sim, link = mk () in
  let c = admit_exn link ~name:"a" ~period:(Time.ms 10) ~slice:(Time.ms 5) () in
  let sent = ref 0 in
  ignore
    (Proc.spawn sim (fun () ->
         for _ = 1 to 20 do
           transmit_exn link c ~bytes:1000;
           incr sent
         done));
  Sim.run ~until:(Time.sec 1) sim;
  check "all packets out" 20 !sent;
  check "counted" 20 (Usnet.Link.packets_sent c);
  check "bytes" 20_000 (Usnet.Link.bytes_sent c);
  checkb "time charged" true (Usnet.Link.used_time c > 0)

let link_shares_follow_guarantees () =
  let sim, link = mk () in
  let a = admit_exn link ~name:"a" ~period:(Time.ms 10) ~slice:(Time.ms 4) () in
  let b = admit_exn link ~name:"b" ~period:(Time.ms 10) ~slice:(Time.ms 2) () in
  let flood c () =
    let rec loop () =
      ignore (send_exn link c ~bytes:1514);
      Proc.yield ();
      loop ()
    in
    loop ()
  in
  ignore (Proc.spawn sim (flood a));
  ignore (Proc.spawn sim (flood b));
  Sim.run ~until:(Time.sec 5) sim;
  let ratio =
    float_of_int (Usnet.Link.bytes_sent a)
    /. float_of_int (Usnet.Link.bytes_sent b)
  in
  checkb "2:1 within 10%" true (ratio > 1.8 && ratio < 2.2)

let link_slack_for_x_clients () =
  let sim, link = mk () in
  let a =
    admit_exn link ~name:"a" ~period:(Time.ms 10) ~slice:(Time.ms 1)
      ~extra:true ()
  in
  let flood () =
    let rec loop () =
      ignore (send_exn link a ~bytes:1514);
      Proc.yield ();
      loop ()
    in
    loop ()
  in
  ignore (Proc.spawn sim flood);
  Sim.run ~until:(Time.sec 2) sim;
  (* On an otherwise idle link, a 10% x-client can exceed its slice. *)
  let share =
    float_of_int (Usnet.Link.used_time a) /. float_of_int (Time.sec 2)
  in
  checkb "well beyond its 10%" true (share > 0.5);
  let slack = ref 0 in
  Trace.iter
    (fun _ ev -> match ev with Usnet.Link.Slack_tx _ -> incr slack | _ -> ())
    (Usnet.Link.trace link);
  checkb "slack transmissions traced" true (!slack > 0)

let link_latency_under_guarantee () =
  let sim, link = mk () in
  (* A periodic 20%-guaranteed sender on a contended link never waits
     more than roughly a period for its packet. *)
  let cm = admit_exn link ~name:"cm" ~period:(Time.ms 5) ~slice:(Time.ms 1) () in
  let bulk =
    admit_exn link ~name:"bulk" ~period:(Time.ms 100) ~slice:(Time.ms 79) ()
  in
  ignore
    (Proc.spawn sim (fun () ->
         let rec loop () =
           ignore (send_exn link bulk ~bytes:1514);
           Proc.yield ();
           loop ()
         in
         loop ()));
  let worst = ref 0 in
  ignore
    (Proc.spawn sim (fun () ->
         for _ = 1 to 200 do
           let t0 = Sim.now sim in
           transmit_exn link cm ~bytes:512;
           let dt = Time.diff (Sim.now sim) t0 in
           if dt > !worst then worst := dt;
           Proc.sleep (Time.ms 4)
         done));
  Sim.run ~until:(Time.sec 5) sim;
  checkb "cm latency bounded by ~a period" true (!worst < Time.ms 8)

let netiso_shares_shape () =
  let r = Experiments.Net_iso.run_shares ~duration:(Time.sec 10) () in
  match r.Experiments.Net_iso.senders with
  | [ (_, _, one); (_, _, two); (_, _, four) ] ->
    Alcotest.(check (float 1e-9)) "base" 1.0 one;
    checkb "2x" true (two > 1.9 && two < 2.1);
    checkb "4x" true (four > 3.8 && four < 4.2)
  | _ -> Alcotest.fail "expected three senders"

let netiso_crosstalk_direction () =
  let r =
    Experiments.Net_iso.run_kernel_crosstalk ~duration:(Time.sec 40) ()
  in
  checkb "shared event loop much worse" true
    (r.Experiments.Net_iso.shared_p95_ms
     > 10.0 *. r.Experiments.Net_iso.nemesis_p95_ms);
  checkb "nemesis latency sub-ms" true
    (r.Experiments.Net_iso.nemesis_p95_ms < 1.0)

let suite =
  [ ( "usnet.params",
      [ Alcotest.test_case "tx time model" `Quick tx_time_model ] );
    ( "usnet.link",
      [ Alcotest.test_case "admission control" `Quick link_admission;
        Alcotest.test_case "single sender" `Quick link_single_sender;
        Alcotest.test_case "2:1 shares" `Quick link_shares_follow_guarantees;
        Alcotest.test_case "slack for x clients" `Quick link_slack_for_x_clients;
        Alcotest.test_case "CM latency bounded" `Quick
          link_latency_under_guarantee ] );
    ( "usnet.experiments",
      [ Alcotest.test_case "1:2:4 link shares" `Slow netiso_shares_shape;
        Alcotest.test_case "kernel crosstalk direction" `Slow
          netiso_crosstalk_direction ] ) ]
