(* Tests for the observability subsystem: the metrics registry, the
   bounded ring buffer, span nesting, the QoS-firewall auditor, and an
   end-to-end check that an instrumented paging run produces fault
   telemetry without audit false-positives. *)

open Engine
open Hw
open Core

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* --- Metrics --- *)

let metrics_counters_and_gauges () =
  Obs.Metrics.reset ();
  Obs.Metrics.inc "requests";
  Obs.Metrics.inc "requests";
  Obs.Metrics.add ~label:"domA" "requests" 5;
  check "unlabelled counter" 2 (Obs.Metrics.counter_value "requests");
  check "labelled counter" 5 (Obs.Metrics.counter_value ~label:"domA" "requests");
  check "missing counter is 0" 0 (Obs.Metrics.counter_value "nonesuch");
  Obs.Metrics.set_gauge "depth" 3.5;
  Alcotest.(check (option (float 0.0))) "gauge" (Some 3.5)
    (Obs.Metrics.gauge_value "depth");
  Alcotest.(check (list string)) "labels_of" [ ""; "domA" ]
    (Obs.Metrics.labels_of "requests");
  Obs.Metrics.reset ();
  check "reset clears" 0 (Obs.Metrics.counter_value "requests")

let metrics_histogram () =
  Obs.Metrics.reset ();
  let bounds = [| 1.0; 10.0; 100.0 |] in
  List.iter
    (Obs.Metrics.observe ~label:"d" ~bounds "lat")
    [ 0.5; 5.0; 5.0; 50.0; 5000.0 ];
  (match Obs.Metrics.hist_view ~label:"d" "lat" with
  | None -> Alcotest.fail "histogram not registered"
  | Some v ->
    check "count" 5 v.Obs.Metrics.hv_count;
    Alcotest.(check (float 0.0)) "min" 0.5 v.Obs.Metrics.hv_min;
    Alcotest.(check (float 0.0)) "max" 5000.0 v.Obs.Metrics.hv_max;
    (* buckets: <=1: 1, <=10: 2, <=100: 1, overflow: 1 *)
    let counts = Array.map snd v.Obs.Metrics.hv_buckets in
    Alcotest.(check (array int)) "bucket counts" [| 1; 2; 1; 1 |] counts;
    Alcotest.(check (float 0.0)) "overflow bound is inf" infinity
      (fst v.Obs.Metrics.hv_buckets.(3));
    (* Quantile upper estimates: the 1st of 5 samples sits in bucket
       <=1, the 3rd in <=10, the last in the overflow (reported as the
       observed max). *)
    Alcotest.(check (float 0.0)) "q0.2" 1.0 (Obs.Metrics.hist_quantile v 0.2);
    Alcotest.(check (float 0.0)) "q0.6" 10.0 (Obs.Metrics.hist_quantile v 0.6);
    Alcotest.(check (float 0.0)) "q1" 5000.0 (Obs.Metrics.hist_quantile v 1.0));
  (* Exports don't raise and mention the metric. *)
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
    at 0
  in
  checkb "json mentions lat" true (contains (Obs.Metrics.to_json ()) "lat");
  checkb "csv mentions lat" true (contains (Obs.Metrics.to_csv ()) "lat")

(* --- Ring --- *)

let ring_wraparound () =
  let r = Obs.Ring.create ~capacity:4 () in
  for i = 1 to 10 do
    Obs.Ring.record r (Time.us i) i
  done;
  check "length capped" 4 (Obs.Ring.length r);
  check "capacity" 4 (Obs.Ring.capacity r);
  check "dropped" 6 (Obs.Ring.dropped r);
  check "total" 10 (Obs.Ring.total r);
  Alcotest.(check (list int)) "keeps newest, oldest first" [ 7; 8; 9; 10 ]
    (List.map snd (Obs.Ring.to_list r));
  Obs.Ring.clear r;
  check "clear empties" 0 (Obs.Ring.length r);
  check "clear resets dropped" 0 (Obs.Ring.dropped r)

(* --- Span --- *)

let span_nesting () =
  Obs.Span.reset ();
  let root = Obs.Span.start ~now:(Time.us 0) ~label:"d" "fault" in
  let child = Obs.Span.start ~now:(Time.us 10) ~parent:root "activation" in
  let grandchild = Obs.Span.start ~now:(Time.us 20) ~parent:child "usd.read" in
  Obs.Span.finish ~now:(Time.us 30) grandchild;
  Obs.Span.finish ~now:(Time.us 40) child;
  Obs.Span.finish ~now:(Time.us 50) root;
  Obs.Span.finish ~now:(Time.us 99) root;
  (* idempotent *)
  let recs = Obs.Span.finished () in
  check "three finished spans" 3 (List.length recs);
  let by_name n = List.find (fun r -> r.Obs.Span.name = n) recs in
  let root_r = by_name "fault" in
  let child_r = by_name "activation" in
  let grand_r = by_name "usd.read" in
  Alcotest.(check (option int)) "root has no parent" None root_r.Obs.Span.parent;
  Alcotest.(check (option int)) "child links root" (Some root_r.Obs.Span.id)
    child_r.Obs.Span.parent;
  Alcotest.(check (option int)) "grandchild links child"
    (Some child_r.Obs.Span.id) grand_r.Obs.Span.parent;
  checkb "durations positive" true
    (List.for_all (fun r -> r.Obs.Span.t1 > r.Obs.Span.t0) recs);
  (* CSV has a header plus one row per span. *)
  let lines =
    String.split_on_char '\n' (String.trim (Obs.Span.to_csv ()))
  in
  check "csv rows" 4 (List.length lines);
  Obs.Span.reset ();
  check "reset clears" 0 (List.length (Obs.Span.finished ()))

(* --- Qos_audit --- *)

let audit_cpu_undersupply () =
  Obs.reset ();
  let entitled = Time.ms 10 in
  let feed ~got ~backlogged n =
    for i = 1 to n do
      Obs.Qos_audit.cpu_boundary ~now:(Time.ms (10 * i)) ~dom:"victim"
        ~entitled ~got ~backlogged
    done
  in
  (* Underserved but idle: never a violation. *)
  feed ~got:0 ~backlogged:false 5;
  checkb "idle client never flags" true (Obs.Qos_audit.ok ());
  (* A single underserved period is within the QoS granularity. *)
  feed ~got:(Time.ms 2) ~backlogged:true 1;
  feed ~got:entitled ~backlogged:true 1;
  checkb "one bad period tolerated" true (Obs.Qos_audit.ok ());
  (* Small shortfall within tolerance: fine. *)
  feed ~got:(Time.ms 10 - Time.us 100) ~backlogged:true 5;
  checkb "tolerance absorbs jitter" true (Obs.Qos_audit.ok ());
  (* Two consecutive starved periods while backlogged: flagged. *)
  feed ~got:(Time.ms 2) ~backlogged:true 2;
  checkb "undersupply flagged" false (Obs.Qos_audit.ok ());
  Alcotest.(check (list (pair string int))) "by_class"
    [ ("cpu.undersupply", 1) ]
    (Obs.Qos_audit.by_class ());
  check "violation counter bumped" 1
    (Obs.Metrics.counter_value ~label:"cpu.undersupply" "qos.violations");
  (match Obs.Qos_audit.events () with
  | [ (_, Obs.Qos_audit.Cpu_undersupply { dom; periods; _ }) ] ->
    Alcotest.(check string) "victim named" "victim" dom;
    check "streak length" 2 periods
  | _ -> Alcotest.fail "expected one Cpu_undersupply event");
  Obs.reset ()

let audit_usd_undersupply () =
  Obs.reset ();
  for i = 1 to 3 do
    Obs.Qos_audit.usd_boundary ~now:(Time.ms (250 * i)) ~stream:"swap"
      ~entitled:(Time.ms 50) ~got:(Time.ms 1) ~backlogged:true
  done;
  checkb "usd undersupply flagged" false (Obs.Qos_audit.ok ());
  (* Patience 2: periods 1+2 flag once and reset; period 3 starts a new
     streak that is still within patience. *)
  Alcotest.(check (list (pair string int))) "class" [ ("usd.undersupply", 1) ]
    (Obs.Qos_audit.by_class ());
  Obs.reset ()

let audit_mem_and_revocation () =
  Obs.reset ();
  (* Within capacity: fine. *)
  Obs.Qos_audit.mem_grant ~now:Time.zero ~dom:1 ~guarantee:60 ~capacity:100;
  Obs.Qos_audit.mem_grant ~now:Time.zero ~dom:2 ~guarantee:40 ~capacity:100;
  checkb "exactly full is fine" true (Obs.Qos_audit.ok ());
  (* Overcommit Σg > capacity: flagged. *)
  Obs.Qos_audit.mem_grant ~now:Time.zero ~dom:3 ~guarantee:10 ~capacity:100;
  checkb "overcommit flagged" false (Obs.Qos_audit.ok ());
  (* Releasing a contract brings Σg back down; a new grant is clean. *)
  Obs.Qos_audit.mem_release ~dom:3;
  Obs.Qos_audit.mem_release ~dom:2;
  Obs.Qos_audit.mem_grant ~now:Time.zero ~dom:4 ~guarantee:30 ~capacity:100;
  Alcotest.(check (list (pair string int))) "only the one overcommit"
    [ ("mem.overcommit", 1) ]
    (Obs.Qos_audit.by_class ());
  (* Revocation protocol outcomes. *)
  Obs.Qos_audit.revocation_done ~now:(Time.ms 50) ~dom:1
    ~deadline:(Time.ms 100) ~ok:true;
  check "clean revocation not flagged" 1 (Obs.Qos_audit.total ());
  Obs.Qos_audit.revocation_done ~now:(Time.ms 150) ~dom:1
    ~deadline:(Time.ms 100) ~ok:false;
  Obs.Qos_audit.guarantee_starved ~now:(Time.ms 200) ~dom:2;
  Alcotest.(check (list (pair string int))) "all classes"
    [ ("guarantee.starved", 1); ("mem.overcommit", 1);
      ("revocation.overdue", 1) ]
    (Obs.Qos_audit.by_class ());
  let s = Obs.Qos_audit.summarize () in
  check "summary violations" 3 s.Obs.Qos_audit.violations;
  check "recent retained" 3 (List.length s.Obs.Qos_audit.recent);
  Obs.reset ();
  checkb "reset forgets" true (Obs.Qos_audit.ok ())

(* --- End to end: an instrumented paging run --- *)

let instrumented_paging_run () =
  Obs.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.set_enabled false;
      Obs.reset ())
    (fun () ->
      Obs.reset ();
      let sys = Experiments.Harness.fresh_system ~main_memory_mb:1 () in
      let d =
        match
          System.add_domain sys ~name:"app" ~guarantee:8 ~optimistic:0 ()
        with
        | Ok d -> d
        | Error e -> failwith (System.error_message e)
      in
      let s =
        match System.alloc_stretch d ~bytes:(32 * Addr.page_size) () with
        | Ok s -> s
        | Error e -> failwith e
      in
      let finished = ref false in
      ignore
        (Domains.spawn_thread d.System.dom ~name:"main" (fun () ->
             let qos =
               Usbs.Qos.make ~period:(Time.ms 250) ~slice:(Time.ms 125) ()
             in
             (match
                System.bind_paged d ~initial_frames:4
                  ~swap_bytes:(64 * Addr.page_size) ~qos s ()
              with
             | Ok _ -> ()
             | Error e -> failwith (System.error_message e));
             (* Two sweeps: populate (demand-zero), then revisit so the
                early pages must come back from swap. *)
             for i = 0 to 31 do
               Domains.access d.System.dom (Stretch.page_base s i) `Write
             done;
             for i = 0 to 31 do
               Domains.access d.System.dom (Stretch.page_base s i) `Read
             done;
             finished := true));
      System.run sys ~until:(Time.sec 120);
      checkb "workload finished" true !finished;
      (* Fault telemetry exists for the domain, under its name. *)
      checkb "fault counter" true
        (Obs.Metrics.counter_value ~label:"app" "fault.count" > 0);
      (match Obs.Metrics.hist_view ~label:"app" "fault.latency_us" with
      | None -> Alcotest.fail "no fault-latency histogram"
      | Some v ->
        checkb "histogram populated" true (v.Obs.Metrics.hv_count > 0);
        checkb "latencies positive" true (v.Obs.Metrics.hv_mean > 0.0));
      (* The TLB saw this address space, and spans decompose faults. *)
      checkb "tlb counters" true
        (Obs.Metrics.labels_of "tlb.misses" <> []);
      let spans = Obs.Span.finished () in
      let has n = List.exists (fun r -> r.Obs.Span.name = n) spans in
      checkb "fault spans" true (has "fault");
      checkb "activation spans" true (has "activation");
      checkb "dispatch spans" true (has "mm.dispatch");
      checkb "usd.read spans" true (has "usd.read");
      let fault_ids =
        List.filter_map
          (fun r ->
            if r.Obs.Span.name = "fault" then Some r.Obs.Span.id else None)
          spans
      in
      checkb "activations link to faults" true
        (List.exists
           (fun r ->
             r.Obs.Span.name = "activation"
             && match r.Obs.Span.parent with
                | Some p -> List.mem p fault_ids
                | None -> false)
           spans);
      (* The paper's claim, audited online: an unperturbed run has no
         QoS violations. *)
      checkb "audit clean" true (Obs.Qos_audit.ok ()))

let suite =
  [ ( "obs.metrics",
      [ Alcotest.test_case "counters and gauges" `Quick
          metrics_counters_and_gauges;
        Alcotest.test_case "histograms" `Quick metrics_histogram ] );
    ( "obs.ring",
      [ Alcotest.test_case "wraparound" `Quick ring_wraparound ] );
    ( "obs.span",
      [ Alcotest.test_case "nesting" `Quick span_nesting ] );
    ( "obs.qos_audit",
      [ Alcotest.test_case "cpu undersupply" `Quick audit_cpu_undersupply;
        Alcotest.test_case "usd undersupply" `Quick audit_usd_undersupply;
        Alcotest.test_case "memory and revocation" `Quick
          audit_mem_and_revocation ] );
    ( "obs.integration",
      [ Alcotest.test_case "instrumented paging run" `Quick
          instrumented_paging_run ] ) ]
