(* Tests for the User-Safe Backing Store: IO channels, the USD
   scheduler (EDF + laxity + roll-over) and the swap filesystem. *)

open Engine
open Usbs

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let qtest = QCheck_alcotest.to_alcotest

(* --- Qos --- *)

let qos_validation () =
  let q = Qos.make ~period:(Time.ms 250) ~slice:(Time.ms 25) () in
  Alcotest.(check (float 1e-9)) "share" 0.1 (Qos.share q);
  checkb "default x false" false q.Qos.extra;
  check "default laxity" (Time.ms 10) q.Qos.laxity;
  Alcotest.check_raises "slice > period"
    (Invalid_argument "Qos.make: slice exceeds period") (fun () ->
      ignore (Qos.make ~period:(Time.ms 10) ~slice:(Time.ms 20) ()))

(* --- Io_channel --- *)

let io_channel_fifo () =
  let ch = Io_channel.create ~depth:4 in
  checkb "send ok" true (Io_channel.try_send ch 1);
  checkb "send ok" true (Io_channel.try_send ch 2);
  Alcotest.(check (option int)) "fifo" (Some 1) (Io_channel.try_recv ch);
  Alcotest.(check (option int)) "fifo" (Some 2) (Io_channel.try_recv ch);
  Alcotest.(check (option int)) "empty" None (Io_channel.try_recv ch)

let io_channel_backpressure () =
  let sim = Sim.create () in
  let ch = Io_channel.create ~depth:2 in
  let sent = ref [] in
  ignore
    (Proc.spawn sim (fun () ->
         for i = 1 to 4 do
           Io_channel.send ch i;
           sent := i :: !sent
         done));
  Sim.run sim;
  (* Only two fit; the producer is blocked on the third. *)
  check "producer blocked at capacity" 2 (List.length !sent);
  let drained = ref [] in
  ignore
    (Proc.spawn sim (fun () ->
         for _ = 1 to 4 do
           drained := Io_channel.recv ch :: !drained
         done));
  Sim.run sim;
  Alcotest.(check (list int)) "all delivered in order" [ 1; 2; 3; 4 ]
    (List.rev !drained)

(* --- Usd --- *)

let mk_usd ?rollover ?laxity_enabled () =
  let sim = Sim.create () in
  let dm = Disk.Disk_model.create () in
  (sim, Usd.create ?rollover ?laxity_enabled sim dm)

let admit_exn u ~name ~qos =
  match Usd.admit u ~name ~qos () with
  | Ok c -> c
  | Error e -> failwith e

let usd_admission_control () =
  let _, u = mk_usd () in
  let q50 = Qos.make ~period:(Time.ms 250) ~slice:(Time.ms 125) () in
  ignore (admit_exn u ~name:"a" ~qos:q50);
  ignore (admit_exn u ~name:"b" ~qos:q50);
  (match Usd.admit u ~name:"c" ~qos:q50 () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "overbooked disk admission accepted")

let usd_single_client_txn () =
  let sim, u = mk_usd () in
  let q = Qos.make ~period:(Time.ms 250) ~slice:(Time.ms 125) () in
  let c = admit_exn u ~name:"a" ~qos:q in
  let completions = ref 0 in
  ignore
    (Proc.spawn sim (fun () ->
         for i = 0 to 9 do
           Usd.transact_exn u c Usd.Read ~lba:(i * 16) ~nblocks:16;
           incr completions
         done));
  Sim.run ~until:(Time.sec 2) sim;
  check "all transactions completed" 10 !completions;
  check "counted" 10 (Usd.txn_count c);
  check "bytes" (10 * 16 * 512) (Usd.bytes_moved c);
  checkb "time charged" true (Usd.used_time c > 0)

let usd_edf_shares () =
  let sim, u = mk_usd () in
  (* Two flat-out writers with a 4:1 guarantee split. *)
  let qa = Qos.make ~period:(Time.ms 250) ~slice:(Time.ms 100) () in
  let qb = Qos.make ~period:(Time.ms 250) ~slice:(Time.ms 25) () in
  let a = admit_exn u ~name:"a" ~qos:qa in
  let b = admit_exn u ~name:"b" ~qos:qb in
  let writer client region () =
    let pos = ref 0 in
    let rec loop () =
      Usd.transact_exn u client Usd.Write ~lba:(region + !pos) ~nblocks:16;
      pos := (!pos + 16) mod 100_000;
      loop ()
    in
    loop ()
  in
  ignore (Proc.spawn sim (writer a 0));
  ignore (Proc.spawn sim (writer b 2_000_000));
  Sim.run ~until:(Time.sec 30) sim;
  (* Disk *time* is shared exactly 4:1; the transaction-count ratio is
     higher because the larger slice amortises the rotational penalty
     over runs of consecutive writes (the effect the paper describes
     when discussing per-client transaction batching). *)
  let tratio = float_of_int (Usd.used_time a) /. float_of_int (Usd.used_time b) in
  checkb "time shared 4:1 within 10%" true (tratio > 3.6 && tratio < 4.4);
  checkb "count ratio at least 4" true
    (float_of_int (Usd.txn_count a) /. float_of_int (Usd.txn_count b) >= 3.6)

let usd_laxity_bounded () =
  let sim, u = mk_usd () in
  let q =
    Qos.make ~period:(Time.ms 250) ~slice:(Time.ms 100) ~laxity:(Time.ms 10) ()
  in
  let c = admit_exn u ~name:"a" ~qos:q in
  (* A client that submits with small gaps: laxity keeps it runnable,
     and no single lax charge may exceed l. *)
  ignore
    (Proc.spawn sim (fun () ->
         for i = 0 to 49 do
           Usd.transact_exn u c Usd.Read ~lba:(i * 16) ~nblocks:16;
           Proc.sleep (Time.ms 3)
         done));
  Sim.run ~until:(Time.sec 5) sim;
  let max_lax = ref 0 in
  Trace.iter
    (fun _ ev ->
      match ev with
      | Usd.Lax { dur; _ } -> if dur > !max_lax then max_lax := dur
      | _ -> ())
    (Usd.trace u);
  checkb "some lax time charged" true (Usd.lax_time c > 0);
  checkb "no lax charge exceeds l" true (!max_lax <= Time.ms 10)

let usd_short_block_problem () =
  (* Same narrow-gap workload with laxity disabled: the client is
     idled after every transaction and only restarts at period
     boundaries — ~1 transaction per period. *)
  let sim, u = mk_usd ~laxity_enabled:false () in
  let q = Qos.make ~period:(Time.ms 250) ~slice:(Time.ms 100) () in
  let c = admit_exn u ~name:"a" ~qos:q in
  ignore
    (Proc.spawn sim (fun () ->
         let rec loop i =
           Usd.transact_exn u c Usd.Read ~lba:(i * 16) ~nblocks:16;
           Proc.sleep (Time.ms 3);
           loop (i + 1)
         in
         loop 0));
  Sim.run ~until:(Time.sec 5) sim;
  (* 5 s / 250 ms = 20 periods; plain EDF yields roughly one txn each. *)
  checkb "collapsed to ~1 txn per period" true (Usd.txn_count c <= 25)

let usd_rollover_carry () =
  let sim, u = mk_usd () in
  let q = Qos.make ~period:(Time.ms 250) ~slice:(Time.ms 25) () in
  let c = admit_exn u ~name:"a" ~qos:q in
  ignore
    (Proc.spawn sim (fun () ->
         let rec loop i =
           (* ~11 ms writes: always overruns the tail of the slice. *)
           Usd.transact_exn u c Usd.Write ~lba:(i * 16 mod 1_000_000) ~nblocks:16;
           loop (i + 1)
         in
         loop 0));
  Sim.run ~until:(Time.sec 20) sim;
  let share =
    float_of_int (Usd.used_time c) /. float_of_int (Time.sec 20)
  in
  checkb "share stays close to 10%" true (share < 0.115)

let usd_slack_events () =
  let sim, u = mk_usd () in
  let q =
    Qos.make ~period:(Time.ms 250) ~slice:(Time.ms 25) ~extra:true ()
  in
  let c = admit_exn u ~name:"a" ~qos:q in
  ignore
    (Proc.spawn sim (fun () ->
         let rec loop i =
           Usd.transact_exn u c Usd.Read ~lba:(i * 16 mod 1_000_000) ~nblocks:16;
           loop (i + 1)
         in
         loop 0));
  Sim.run ~until:(Time.sec 5) sim;
  let slack = ref 0 in
  Trace.iter
    (fun _ ev -> match ev with Usd.Slack _ -> incr slack | _ -> ())
    (Usd.trace u);
  checkb "x client received slack time" true (!slack > 0)

let usd_allocation_trace () =
  let sim, u = mk_usd () in
  let q = Qos.make ~period:(Time.ms 250) ~slice:(Time.ms 25) () in
  let c = admit_exn u ~name:"a" ~qos:q in
  ignore
    (Proc.spawn sim (fun () ->
         Usd.transact_exn u c Usd.Read ~lba:0 ~nblocks:16));
  Sim.run ~until:(Time.of_ms_float 2600.0) sim;
  let allocs = ref 0 in
  Trace.iter
    (fun _ ev -> match ev with Usd.Alloc _ -> incr allocs | _ -> ())
    (Usd.trace u);
  (* One allocation per 250 ms period boundary. *)
  checkb "period allocations recorded" true (!allocs >= 9 && !allocs <= 11)

(* --- Sfs --- *)

let mk_sfs () =
  let sim = Sim.create () in
  let dm = Disk.Disk_model.create () in
  let u = Usd.create sim dm in
  (sim, u, Sfs.create ~first_block:0 ~nblocks:1_000_000 u)

let sfs_extent_allocation () =
  let _, _, fs = mk_sfs () in
  let q = Qos.make ~period:(Time.ms 250) ~slice:(Time.ms 25) () in
  let sf1 =
    match Sfs.open_swap fs ~name:"a" ~bytes:(1024 * 1024) ~qos:q () with
    | Ok s -> s
    | Error e -> failwith (Sfs.open_error_message e)
  in
  check "1MB = 128 pages" 128 (Sfs.page_capacity sf1);
  check "extent blocks" (128 * 16) (Sfs.extent_blocks sf1);
  let before = Sfs.free_blocks fs in
  let sf2 =
    match Sfs.open_swap fs ~name:"b" ~bytes:(512 * 1024) ~qos:q () with
    | Ok s -> s
    | Error e -> failwith (Sfs.open_error_message e)
  in
  checkb "extents disjoint" true
    (Sfs.extent_start sf2 >= Sfs.extent_start sf1 + Sfs.extent_blocks sf1
     || Sfs.extent_start sf2 + Sfs.extent_blocks sf2 <= Sfs.extent_start sf1);
  Sfs.close_swap fs sf2;
  check "space returned and coalesced" before (Sfs.free_blocks fs)

let sfs_space_exhaustion () =
  let _, _, fs = mk_sfs () in
  let q = Qos.make ~period:(Time.ms 250) ~slice:(Time.ms 1) () in
  (* The region holds 1,000,000 blocks = 512 MB; ask for more. *)
  match Sfs.open_swap fs ~name:"big" ~bytes:(1_100_000 * 512) ~qos:q () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "oversized extent accepted"

let sfs_data_path () =
  let sim, _, fs = mk_sfs () in
  let q = Qos.make ~period:(Time.ms 250) ~slice:(Time.ms 125) () in
  let sf =
    match Sfs.open_swap fs ~name:"a" ~bytes:(256 * 1024) ~qos:q () with
    | Ok s -> s
    | Error e -> failwith (Sfs.open_error_message e)
  in
  let ok = ref false in
  ignore
    (Proc.spawn sim (fun () ->
         (match Sfs.write_page sf ~page_index:3 with
         | Ok () -> ()
         | Error _ -> Alcotest.fail "write_page failed");
         (match Sfs.read_page sf ~page_index:3 with
         | Ok () -> ()
         | Error _ -> Alcotest.fail "read_page failed");
         ok := true));
  Sim.run ~until:(Time.sec 1) sim;
  checkb "write+read completed" true !ok;
  Alcotest.check_raises "page index bounds"
    (Invalid_argument "Sfs: page index out of extent") (fun () ->
      ignore (Sfs.read_page_async sf ~page_index:32))

let extents_no_overlap =
  QCheck.Test.make ~name:"sfs extents never overlap" ~count:50
    QCheck.(list_of_size Gen.(int_range 1 12) (int_range 1 64))
    (fun sizes ->
      let _, _, fs = mk_sfs () in
      let q = Qos.make ~period:(Time.ms 250) ~slice:(Time.us 100) () in
      let swaps =
        List.filter_map
          (fun pages ->
            match
              Sfs.open_swap fs
                ~name:(string_of_int pages)
                ~bytes:(pages * 8192) ~qos:q ()
            with
            | Ok s -> Some s
            | Error _ -> None)
          sizes
      in
      let ranges =
        List.map (fun s -> (Sfs.extent_start s, Sfs.extent_blocks s)) swaps
      in
      List.for_all
        (fun (s1, l1) ->
          List.length
            (List.filter (fun (s2, l2) -> s1 < s2 + l2 && s2 < s1 + l1) ranges)
          = 1)
        ranges)

let suite =
  [ ( "usbs.qos", [ Alcotest.test_case "validation" `Quick qos_validation ] );
    ( "usbs.io_channel",
      [ Alcotest.test_case "fifo" `Quick io_channel_fifo;
        Alcotest.test_case "backpressure" `Quick io_channel_backpressure ] );
    ( "usbs.usd",
      [ Alcotest.test_case "admission control" `Quick usd_admission_control;
        Alcotest.test_case "single client transactions" `Quick
          usd_single_client_txn;
        Alcotest.test_case "EDF honours 4:1 shares" `Slow usd_edf_shares;
        Alcotest.test_case "laxity bounded by l" `Quick usd_laxity_bounded;
        Alcotest.test_case "short-block problem without laxity" `Quick
          usd_short_block_problem;
        Alcotest.test_case "roll-over bounds overrun" `Slow usd_rollover_carry;
        Alcotest.test_case "slack events for x clients" `Quick usd_slack_events;
        Alcotest.test_case "period allocations traced" `Quick
          usd_allocation_trace ] );
    ( "usbs.sfs",
      [ Alcotest.test_case "extent allocation" `Quick sfs_extent_allocation;
        Alcotest.test_case "space exhaustion" `Quick sfs_space_exhaustion;
        Alcotest.test_case "data path" `Quick sfs_data_path;
        qtest extents_no_overlap ] ) ]
