(* Tests for lib/inject and the recovery paths it exercises: the
   seeded fault-injection layer itself, the SFS retry/remap ladder,
   the paged driver's typed degradations (re-blok, swap exhaustion),
   USD retirement as a typed error, the revocation kill path under an
   injected stall (verified against the RamTab), and the seeded
   determinism of the whole chaos experiment. *)

open Engine
open Hw
open Core

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

let page_blocks = Addr.page_size / 512

(* Every test arms its own plan; make sure none leaks into the next. *)
let with_plan plan f =
  Inject.arm plan;
  Fun.protect ~finally:Inject.disarm f

let plain_qos () = Usbs.Qos.make ~period:(Time.ms 250) ~slice:(Time.ms 50) ()

let mk_sfs () =
  let sim = Sim.create () in
  let dm = Disk.Disk_model.create () in
  let u = Usbs.Usd.create sim dm in
  (sim, u, Usbs.Sfs.create ~first_block:0 ~nblocks:1_000_000 u)

let open_swap_exn fs ~name ~bytes ?spare_pages () =
  match
    Usbs.Sfs.open_swap fs ~name ~bytes ~qos:(plain_qos ()) ?spare_pages ()
  with
  | Ok s -> s
  | Error e -> failwith (Usbs.Sfs.open_error_message e)

let in_proc sim f =
  let done_ = ref false in
  ignore
    (Proc.spawn sim (fun () ->
         f ();
         done_ := true));
  Sim.run ~until:(Time.sec 60) sim;
  checkb "proc finished" true !done_

(* --- The injection layer itself ------------------------------------ *)

let disarmed_hooks_inert () =
  Inject.disarm ();
  (match Inject.disk ~op:Inject.Write ~lba:0 ~nblocks:16 with
  | Inject.Pass -> ()
  | _ -> Alcotest.fail "disarmed disk hook injected");
  checkb "no stall" true (Inject.stall ~site:"x" = None);
  (match Inject.chan ~name:"x" with
  | Inject.Deliver -> ()
  | _ -> Alcotest.fail "disarmed chan hook injected");
  checkb "no pressure" true (Inject.pressure () = None)

let seeded_injection_deterministic () =
  let plan =
    { Inject.default_plan with
      seed = 99;
      regions =
        [ { Inject.rf_first = 0;
            rf_len = 10_000;
            rf_read_error = 0.2;
            rf_write_error = 0.2;
            rf_spike = 0.2;
            rf_spike_span = Time.ms 5 } ] }
  in
  let sample () =
    List.init 200 (fun i ->
        match
          Inject.disk
            ~op:(if i mod 2 = 0 then Inject.Read else Inject.Write)
            ~lba:(i * 16 mod 10_000) ~nblocks:16
        with
        | Inject.Pass -> 0
        | Inject.Spike s -> 1000 + s
        | Inject.Media_error { bad_lba; persistent } ->
          2000 + bad_lba + if persistent then 1 else 0)
  in
  Inject.arm plan;
  let a = sample () in
  Inject.reset ();
  let b = sample () in
  Inject.disarm ();
  checkb "same seed, same injections" true (a = b);
  checkb "something was injected" true (List.exists (fun x -> x > 0) a)

let disk_errors_carry_mechanical_time () =
  let dm = Disk.Disk_model.create () in
  let plan =
    { Inject.default_plan with
      blok_faults =
        [ { Inject.bf_first = 0;
            bf_len = page_blocks;
            bf_op = None;
            bf_transient = None } ] }
  in
  with_plan plan (fun () ->
      (match
         Disk.Disk_model.service_result dm ~now:(Time.ms 0)
           ~op:Disk.Disk_model.Write ~lba:0 ~nblocks:page_blocks
       with
      | Ok _ -> Alcotest.fail "bad blok served"
      | Error (elapsed, e) ->
        checkb "mechanical time burned" true (elapsed > 0);
        checkb "persistent" true e.Disk.Disk_model.persistent;
        checkb "bad lba in range" true
          (e.Disk.Disk_model.bad_lba >= 0
          && e.Disk.Disk_model.bad_lba < page_blocks));
      match
        Disk.Disk_model.service dm ~now:(Time.ms 0)
          ~op:Disk.Disk_model.Write ~lba:0 ~nblocks:page_blocks
      with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail "exn wrapper did not raise");
  (* Disarmed, the same range serves. *)
  match
    Disk.Disk_model.service_result dm ~now:(Time.ms 0)
      ~op:Disk.Disk_model.Write ~lba:0 ~nblocks:page_blocks
  with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "disarmed disk injected"

let chan_drop_and_delay () =
  let sim = Sim.create () in
  let ch = Event_chan.create ~name:"t.chan" () in
  let hits = ref 0 in
  Event_chan.attach ch (fun () -> incr hits);
  let chan_plan cf =
    { Inject.default_plan with seed = 5; chans = [ ("t.chan", cf) ] }
  in
  with_plan
    (chan_plan
       { Inject.cf_drop = 1.0; cf_delay = 0.0; cf_delay_span = Time.ms 5 })
    (fun () ->
      Event_chan.send ch;
      check "notification dropped" 0 !hits;
      check "drop tallied" 1 (Inject.tally ()).Inject.chan_drops);
  with_plan
    (chan_plan
       { Inject.cf_drop = 0.0; cf_delay = 1.0; cf_delay_span = Time.ms 5 })
    (fun () ->
      ignore (Proc.spawn sim (fun () -> Event_chan.send ch));
      Sim.run ~until:(Time.ms 2) sim;
      check "not yet delivered" 0 !hits;
      Sim.run ~until:(Time.ms 20) sim;
      check "delivered late" 1 !hits;
      check "delay tallied" 1 (Inject.tally ()).Inject.chan_delays)

(* --- SFS recovery ladder ------------------------------------------- *)

let sfs_transient_errors_retried () =
  let sim, _, fs = mk_sfs () in
  let sf = open_swap_exn fs ~name:"a" ~bytes:(8 * Addr.page_size) () in
  let plan =
    { Inject.default_plan with
      seed = 7;
      blok_faults =
        [ { Inject.bf_first = Usbs.Sfs.extent_start sf;
            bf_len = page_blocks;
            bf_op = Some Inject.Write;
            bf_transient = Some 2 } ] }
  in
  with_plan plan (fun () ->
      in_proc sim (fun () ->
          match Usbs.Sfs.write_page sf ~page_index:0 with
          | Ok () -> ()
          | Error _ -> Alcotest.fail "marginal blok not recovered");
      check "two retries" 2 (Usbs.Sfs.retry_count sf);
      let t = Inject.tally () in
      check "two errors injected" 2 t.Inject.injected_errors;
      check "both answered by retries" 2 t.Inject.retried;
      checkb "books balance" true (Inject.accounted ()))

let sfs_persistent_write_remapped_to_spare () =
  let sim, _, fs = mk_sfs () in
  let sf =
    open_swap_exn fs ~name:"a" ~bytes:(8 * Addr.page_size) ~spare_pages:1 ()
  in
  let plan =
    { Inject.default_plan with
      seed = 7;
      blok_faults =
        [ { Inject.bf_first = Usbs.Sfs.extent_start sf;
            bf_len = page_blocks;
            bf_op = Some Inject.Write;
            bf_transient = None } ] }
  in
  with_plan plan (fun () ->
      in_proc sim (fun () ->
          (match Usbs.Sfs.write_page sf ~page_index:0 with
          | Ok () -> ()
          | Error _ -> Alcotest.fail "bad blok not remapped");
          (* Later accesses follow the remap: no further errors. *)
          (match Usbs.Sfs.write_page sf ~page_index:0 with
          | Ok () -> ()
          | Error _ -> Alcotest.fail "remap not consulted");
          match Usbs.Sfs.read_page sf ~page_index:0 with
          | Ok () -> ()
          | Error _ -> Alcotest.fail "read of remapped page failed");
      check "one spare consumed" 1 (Usbs.Sfs.remap_count sf);
      let t = Inject.tally () in
      check "one error injected" 1 t.Inject.injected_errors;
      check "answered by the remap" 1 t.Inject.remapped;
      checkb "books balance" true (Inject.accounted ()))

let sfs_write_loss_is_callers_debt () =
  let sim, _, fs = mk_sfs () in
  let sf = open_swap_exn fs ~name:"a" ~bytes:(8 * Addr.page_size) () in
  let plan =
    { Inject.default_plan with
      seed = 7;
      blok_faults =
        [ { Inject.bf_first = Usbs.Sfs.extent_start sf;
            bf_len = page_blocks;
            bf_op = Some Inject.Write;
            bf_transient = None } ] }
  in
  with_plan plan (fun () ->
      in_proc sim (fun () ->
          match Usbs.Sfs.write_page sf ~page_index:0 with
          | Error (`Lost_pages [ 0 ]) -> ()
          | Ok () -> Alcotest.fail "lost write reported success"
          | Error _ -> Alcotest.fail "unexpected error shape");
      check "loss recorded" 1 (Usbs.Sfs.lost_count sf);
      (* The final error is deliberately left on the caller's account:
         the books stay open until the caller answers it. *)
      checkb "unaccounted until the caller answers" false
        (Inject.accounted ());
      Inject.note_killed "test";
      checkb "books balance once answered" true (Inject.accounted ()))

(* --- USD typed errors ---------------------------------------------- *)

let usd_retired_is_typed () =
  let sim = Sim.create () in
  let dm = Disk.Disk_model.create () in
  let u = Usbs.Usd.create sim dm in
  let c =
    match Usbs.Usd.admit u ~name:"a" ~qos:(plain_qos ()) () with
    | Ok c -> c
    | Error e -> failwith e
  in
  Usbs.Usd.retire u c;
  (match Usbs.Usd.submit u c Usbs.Usd.Read ~lba:0 ~nblocks:16 with
  | Error `Retired -> ()
  | Ok _ -> Alcotest.fail "submit to retired client accepted");
  match Usbs.Usd.transact u c Usbs.Usd.Read ~lba:0 ~nblocks:16 with
  | Error `Retired -> ()
  | Ok () -> Alcotest.fail "transact on retired client succeeded"
  | Error _ -> Alcotest.fail "wrong error for retired client"

(* --- Paged-driver degradations ------------------------------------- *)

let small_sys () =
  let config = { System.default_config with main_memory_mb = 2 } in
  System.create ~config ()

let add_domain_exn sys ~name ~guarantee ~optimistic =
  match System.add_domain sys ~name ~guarantee ~optimistic () with
  | Ok d -> d
  | Error e -> failwith (System.error_message e)

let alloc_exn d ~bytes =
  match System.alloc_stretch d ~bytes () with
  | Ok s -> s
  | Error e -> failwith e

let in_domain sys d f =
  let result = ref None in
  ignore
    (Domains.spawn_thread d.System.dom ~name:"test" (fun () ->
         result := Some (f ())));
  let sim = System.sim sys in
  System.run sys ~until:(Time.add (Sim.now sim) (Time.sec 300));
  match !result with
  | Some r -> r
  | None -> Alcotest.fail "domain thread did not finish"

let bind_paged_exn d ~swap_pages s =
  match
    System.bind_paged d ~initial_frames:2
      ~swap_bytes:(swap_pages * Addr.page_size) ~qos:(plain_qos ()) s ()
  with
  | Ok (_, h) -> h
  | Error e -> failwith (System.error_message e)

(* All eight bad bloks sit at the head of the extent: the driver must
   abandon each (re-blok) and walk on to healthy ones; no data is lost
   and nothing fails. *)
let paged_rebloks_around_bad_bloks () =
  let sys = small_sys () in
  let d = add_domain_exn sys ~name:"app" ~guarantee:2 ~optimistic:0 in
  let s = alloc_exn d ~bytes:(8 * Addr.page_size) in
  let info =
    in_domain sys d (fun () ->
        let h = bind_paged_exn d ~swap_pages:24 s in
        let first, _ = Sd_paged.swap_extent h in
        Inject.arm
          { Inject.default_plan with
            seed = 3;
            blok_faults =
              [ { Inject.bf_first = first;
                  bf_len = 8 * page_blocks;
                  bf_op = Some Inject.Write;
                  bf_transient = None } ] };
        for pass = 1 to 2 do
          ignore pass;
          for i = 0 to 7 do
            Domains.access d.System.dom (Stretch.page_base s i) `Write
          done
        done;
        Sd_paged.info h)
  in
  Inject.disarm ();
  check "eight bad bloks abandoned" 8 info.Sd_paged.rebloks;
  check "no page lost" 0 info.Sd_paged.lost_pages;
  checkb "swap not exhausted" false info.Sd_paged.swap_exhausted;
  checkb "books balance" true (Inject.accounted ())

(* Every blok of a minimal swap is bad: the bitmap runs dry, the
   driver latches the typed degradation (instead of the seed's
   [failwith "swap space exhausted"]), loses the page it could not
   clean, and later faults fail as domain faults without taking the
   simulator down. *)
let paged_swap_exhaustion_degrades () =
  let sys = small_sys () in
  let d = add_domain_exn sys ~name:"app" ~guarantee:2 ~optimistic:0 in
  let s = alloc_exn d ~bytes:(8 * Addr.page_size) in
  let oks, errs, info =
    in_domain sys d (fun () ->
        let h = bind_paged_exn d ~swap_pages:8 s in
        let first, nblocks = Sd_paged.swap_extent h in
        Inject.arm
          { Inject.default_plan with
            seed = 3;
            blok_faults =
              [ { Inject.bf_first = first;
                  bf_len = nblocks;
                  bf_op = Some Inject.Write;
                  bf_transient = None } ] };
        let oks = ref 0 and errs = ref 0 in
        for i = 0 to 7 do
          match
            Domains.try_access d.System.dom (Stretch.page_base s i) `Write
          with
          | Ok () -> incr oks
          | Error _ -> incr errs
        done;
        (!oks, !errs, Sd_paged.info h))
  in
  Inject.disarm ();
  checkb "some accesses still served" true (oks > 0);
  checkb "some accesses failed as domain faults" true (errs > 0);
  checkb "exhaustion latched" true info.Sd_paged.swap_exhausted;
  checkb "pages lost" true (info.Sd_paged.lost_pages > 0);
  checkb "books balance" true (Inject.accounted ())

(* --- Revocation kill path under an injected stall ------------------ *)

(* A domain hogging 32 mapped optimistic frames whose revocation
   handler is stalled past the 100 ms deadline by the plan: the
   allocator must kill it and reclaim every frame (checked against the
   RamTab), and the squeezed guaranteed allocation must then succeed. *)
let revocation_deadline_miss_kills () =
  Obs.set_enabled true;
  Obs.reset ();
  let sys = small_sys () in
  let sim = System.sim sys in
  let hog = add_domain_exn sys ~name:"hog" ~guarantee:2 ~optimistic:30 in
  let s = alloc_exn hog ~bytes:(32 * Addr.page_size) in
  (match System.bind_physical hog s with
  | Ok _ -> ()
  | Error e -> failwith (System.error_message e));
  ignore
    (Domains.spawn_thread hog.System.dom ~name:"hog" (fun () ->
         for i = 0 to 31 do
           Domains.access hog.System.dom (Stretch.page_base s i) `Write
         done;
         Proc.sleep (Time.sec 3600)));
  Frames.set_revocation_handler hog.System.frames_client
    (fun ~k:_ ~deadline:_ ->
      ignore
        (Proc.spawn ~name:"hog.revoke" sim (fun () ->
             (match Inject.stall ~site:"hog.revoke" with
             | Some span -> Proc.sleep span
             | None -> ());
             Frames.revocation_ready (System.frames sys)
               hog.System.frames_client)));
  let press =
    match
      Frames.admit (System.frames sys) ~domain:999 ~guarantee:230
        ~optimistic:0
    with
    | Ok c -> c
    | Error e -> failwith (Frames.error_message e)
  in
  let got = ref 0 in
  Inject.arm
    { Inject.default_plan with
      seed = 3;
      stalls =
        [ ("hog.revoke", { Inject.st_rate = 1.0; st_span = Time.ms 250 }) ] };
  ignore
    (Proc.spawn ~name:"press" sim (fun () ->
         Proc.sleep (Time.ms 100);
         let continue_ = ref true in
         while !continue_ do
           match Frames.alloc (System.frames sys) press with
           | Some _ -> incr got
           | None -> continue_ := false
         done));
  System.run sys ~until:(Time.sec 2);
  Inject.disarm ();
  checkb "stall injected" true ((Inject.tally ()).Inject.stalls_injected >= 1);
  checkb "hog domain killed" false (Domains.alive hog.System.dom);
  checkb "hog frames contract gone" false
    (Frames.is_live hog.System.frames_client);
  let rt = System.ramtab sys in
  let hog_id = Domains.id hog.System.dom in
  let still_owned = ref 0 in
  for pfn = 0 to Ramtab.nframes rt - 1 do
    if Ramtab.owner rt ~pfn = Some hog_id then incr still_owned
  done;
  check "no RamTab frame still owned by the victim" 0 !still_owned;
  check "squeezed guarantee fully satisfied" 230 !got;
  checkb "overdue revocation audited" true
    (List.mem_assoc "revocation.overdue" (Obs.Qos_audit.by_class ()));
  Obs.set_enabled false

(* --- Chaos determinism (same seed, same run) ----------------------- *)

let chaos_deterministic () =
  let go () =
    let r = Experiments.Chaos.run ~seed:11 ~duration:(Time.sec 5) () in
    let metrics = Obs.Metrics.to_json () in
    Obs.set_enabled false;
    (Experiments.Chaos.to_json r, metrics, r)
  in
  let j1, m1, r1 = go () in
  let j2, m2, _ = go () in
  checks "identical chaos verdicts" j1 j2;
  checks "identical metric registries" m1 m2;
  checkb "books balance" true r1.Experiments.Chaos.accounted;
  checkb "doomed domain killed" true r1.Experiments.Chaos.doomed_killed;
  checkb "doomed frames reclaimed" true
    r1.Experiments.Chaos.doomed_frames_reclaimed

let suite =
  [ ( "inject.layer",
      [ Alcotest.test_case "disarmed hooks are inert" `Quick
          disarmed_hooks_inert;
        Alcotest.test_case "seeded injection deterministic" `Quick
          seeded_injection_deterministic;
        Alcotest.test_case "disk errors carry mechanical time" `Quick
          disk_errors_carry_mechanical_time;
        Alcotest.test_case "event-channel drop and delay" `Quick
          chan_drop_and_delay ] );
    ( "inject.sfs",
      [ Alcotest.test_case "transient errors retried" `Quick
          sfs_transient_errors_retried;
        Alcotest.test_case "persistent write remapped to spare" `Quick
          sfs_persistent_write_remapped_to_spare;
        Alcotest.test_case "write loss is the caller's debt" `Quick
          sfs_write_loss_is_callers_debt ] );
    ( "inject.usd",
      [ Alcotest.test_case "retired client is a typed error" `Quick
          usd_retired_is_typed ] );
    ( "inject.paged",
      [ Alcotest.test_case "re-bloks around bad bloks" `Quick
          paged_rebloks_around_bad_bloks;
        Alcotest.test_case "swap exhaustion degrades" `Quick
          paged_swap_exhaustion_degrades ] );
    ( "inject.revocation",
      [ Alcotest.test_case "deadline miss kills, RamTab reclaimed" `Quick
          revocation_deadline_miss_kills ] );
    ( "inject.chaos",
      [ Alcotest.test_case "same seed, same run" `Slow chaos_deterministic ] )
  ]
