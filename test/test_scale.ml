(* Tests for the many-domain scale-out work: the rebuilt O(1)/O(log n)
   hot-path structures checked op-for-op against their seed-shape
   reference models, the typed errors across the public API, and the
   scale experiment's determinism. *)

open Engine
open Core

let qtest = QCheck_alcotest.to_alcotest
let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* --- Frame stack vs the seed's list model -------------------------- *)

(* The seed kept each frame stack as a bare [int list] (top first).
   The intrusive rebuild must match it op-for-op, including the full
   resulting order after every operation. *)

type fs_op =
  | Fpush of int
  | Fremove of int
  | Ftop of int
  | Fbottom of int
  | Ftop_k of int

let fs_op_gen =
  QCheck.Gen.(
    oneof
      [ map (fun p -> Fpush p) (int_range 0 15);
        map (fun p -> Fremove p) (int_range 0 15);
        map (fun p -> Ftop p) (int_range 0 15);
        map (fun p -> Fbottom p) (int_range 0 15);
        map (fun k -> Ftop_k k) (int_range 0 8) ])

let fs_op_print = function
  | Fpush p -> Printf.sprintf "push %d" p
  | Fremove p -> Printf.sprintf "remove %d" p
  | Ftop p -> Printf.sprintf "top %d" p
  | Fbottom p -> Printf.sprintf "bottom %d" p
  | Ftop_k k -> Printf.sprintf "top_k %d" k

let rec take k = function
  | [] -> []
  | _ when k <= 0 -> []
  | x :: rest -> x :: take (k - 1) rest

let fs_apply fs model op =
  match op with
  | Fpush p ->
    if List.mem p !model then (
      match Frame_stack.push fs p with
      | () -> failwith "push of a present frame did not raise"
      | exception Invalid_argument _ -> ())
    else begin
      Frame_stack.push fs p;
      model := p :: !model
    end
  | Fremove p ->
    let expected = List.mem p !model in
    if Frame_stack.remove fs p <> expected then
      failwith "remove return value disagrees with the model";
    model := List.filter (fun q -> q <> p) !model
  | Ftop p ->
    if List.mem p !model then begin
      Frame_stack.move_to_top fs p;
      model := p :: List.filter (fun q -> q <> p) !model
    end
    else (
      match Frame_stack.move_to_top fs p with
      | () -> failwith "move_to_top of an absent frame did not raise"
      | exception Not_found -> ())
  | Fbottom p ->
    if List.mem p !model then begin
      Frame_stack.move_to_bottom fs p;
      model := List.filter (fun q -> q <> p) !model @ [ p ]
    end
    else (
      match Frame_stack.move_to_bottom fs p with
      | () -> failwith "move_to_bottom of an absent frame did not raise"
      | exception Not_found -> ())
  | Ftop_k k ->
    if Frame_stack.top_k fs k <> take k !model then
      failwith "top_k disagrees with the model"

let frame_stack_matches_model =
  QCheck.Test.make ~name:"frame stack matches the seed list model op-for-op"
    ~count:300
    (QCheck.make
       ~print:(fun ops -> String.concat "; " (List.map fs_op_print ops))
       QCheck.Gen.(list_size (int_range 1 60) fs_op_gen))
    (fun ops ->
      let fs = Frame_stack.create () in
      let model = ref [] in
      List.for_all
        (fun op ->
          fs_apply fs model op;
          Frame_stack.to_list fs = !model
          && Frame_stack.size fs = List.length !model)
        ops)

let frame_stack_unit () =
  let fs = Frame_stack.create () in
  Frame_stack.push fs 3;
  Frame_stack.push fs 7;
  Alcotest.check_raises "duplicate push"
    (Invalid_argument "Frame_stack.push: frame already present") (fun () ->
      Frame_stack.push fs 3);
  checkb "absent remove" false (Frame_stack.remove fs 99);
  Alcotest.check_raises "absent move" Not_found (fun () ->
      Frame_stack.move_to_top fs 99);
  Alcotest.(check (list int)) "order" [ 7; 3 ] (Frame_stack.to_list fs);
  Frame_stack.move_to_bottom fs 7;
  Alcotest.(check (list int)) "demoted" [ 3; 7 ] (Frame_stack.to_list fs);
  Alcotest.(check (list int)) "top_k over-ask" [ 3; 7 ]
    (Frame_stack.top_k fs 5)

(* --- Heap-backed EDF vs the seed's fold model ---------------------- *)

(* The seed picked the next client by folding over the member list in
   admission order, keeping the earliest deadline with budget (first
   admitted wins ties), and replenished by scanning every member. The
   heap rebuild must select the same client after any sequence of
   admissions, charges, removals and clock advances. *)

type m_client = {
  m_name : string;
  m_period : int;
  m_slice : int;
  mutable m_deadline : int;
  mutable m_remaining : int;
}

type edf_op =
  | Eadmit of int * int  (** (period choice, slice choice) *)
  | Eadvance of int  (** ms *)
  | Echarge of int * int  (** (client pick, span us) *)
  | Eremove of int  (** client pick *)
  | Eselect

let edf_op_gen =
  QCheck.Gen.(
    frequency
      [ (2, map2 (fun p s -> Eadmit (p, s)) (int_range 0 3) (int_range 0 2));
        (3, map (fun d -> Eadvance d) (int_range 1 12));
        (3, map2 (fun i u -> Echarge (i, u)) (int_range 0 7)
             (int_range 100 1800));
        (1, map (fun i -> Eremove i) (int_range 0 7));
        (4, return Eselect) ])

let edf_op_print = function
  | Eadmit (p, s) -> Printf.sprintf "admit %d %d" p s
  | Eadvance d -> Printf.sprintf "advance %dms" d
  | Echarge (i, u) -> Printf.sprintf "charge %d %dus" i u
  | Eremove i -> Printf.sprintf "remove %d" i
  | Eselect -> "select"

let m_utilisation model =
  List.fold_left
    (fun acc c -> acc +. (float_of_int c.m_slice /. float_of_int c.m_period))
    0.0 model

(* The seed's replenish, verbatim semantics (rollover on). *)
let m_replenish now c =
  while c.m_deadline <= now do
    let carry = if c.m_remaining < 0 then c.m_remaining else 0 in
    c.m_remaining <- c.m_slice + carry;
    c.m_deadline <- c.m_deadline + c.m_period
  done

let m_select model =
  List.fold_left
    (fun best c ->
      if c.m_remaining > 0 then
        match best with
        | Some b when b.m_deadline <= c.m_deadline -> best
        | _ -> Some c
      else best)
    None model

let edf_matches_fold =
  let periods = [| Time.ms 2; Time.ms 3; Time.ms 5; Time.ms 10 |] in
  let slices = [| Time.us 400; Time.us 700; Time.ms 1 |] in
  QCheck.Test.make
    ~name:"heap EDF picks the same client as the seed fold" ~count:300
    (QCheck.make
       ~print:(fun ops -> String.concat "; " (List.map edf_op_print ops))
       QCheck.Gen.(list_size (int_range 1 80) edf_op_gen))
    (fun ops ->
      let edf = Sched.Edf.create () in
      let model = ref [] in
      let next = ref 0 in
      let now = ref Time.zero in
      let pick i l = List.nth l (i mod List.length l) in
      List.for_all
        (fun op ->
          (match op with
          | Eadmit (p, s) ->
            let period = periods.(p) and slice = slices.(s) in
            let name = Printf.sprintf "c%d" !next in
            incr next;
            let refused =
              m_utilisation !model
              +. (float_of_int slice /. float_of_int period)
              > 1.0 +. 1e-9
            in
            (match
               Sched.Edf.admit edf ~name ~period ~slice ~now:!now ()
             with
            | Ok _ when refused -> failwith "model refused, EDF admitted"
            | Error _ when not refused ->
              failwith "model admitted, EDF refused"
            | Ok _ ->
              model :=
                !model
                @ [ { m_name = name; m_period = period; m_slice = slice;
                      m_deadline = !now + period; m_remaining = slice } ]
            | Error _ -> ())
          | Eadvance d -> now := Time.add !now (Time.ms d)
          | Echarge (i, us) -> (
            match Sched.Edf.clients edf with
            | [] -> ()
            | real ->
              Sched.Edf.charge (pick i real) (Time.us us);
              let m = pick i !model in
              m.m_remaining <- m.m_remaining - Time.us us)
          | Eremove i -> (
            match Sched.Edf.clients edf with
            | [] -> ()
            | real ->
              let victim = pick i real in
              Sched.Edf.remove edf victim;
              model :=
                List.filter
                  (fun m -> m.m_name <> victim.Sched.Edf.cname)
                  !model)
          | Eselect ->
            Sched.Edf.replenish_due edf ~now:!now;
            List.iter (m_replenish !now) !model;
            let real = Sched.Edf.select edf ~now:!now in
            let expect = m_select !model in
            let same =
              match (real, expect) with
              | None, None -> true
              | Some r, Some m -> r.Sched.Edf.cname = m.m_name
              | _ -> false
            in
            if not same then failwith "select disagrees with the fold");
          (* The member list itself must stay in admission order with
             identical accounting state. *)
          List.for_all2
            (fun (r : Sched.Edf.client) m ->
              r.Sched.Edf.cname = m.m_name
              && r.Sched.Edf.deadline = m.m_deadline
              && r.Sched.Edf.remaining = m.m_remaining)
            (Sched.Edf.clients edf) !model)
        ops)

let edf_tie_break () =
  let edf = Sched.Edf.create () in
  let admit name =
    match
      Sched.Edf.admit edf ~name ~period:(Time.ms 10) ~slice:(Time.ms 2)
        ~now:Time.zero ()
    with
    | Ok c -> c
    | Error e -> failwith e
  in
  let a = admit "first" in
  let _b = admit "second" in
  let _c = admit "third" in
  (* Equal deadlines: the first-admitted client must win, as the seed
     fold's [<=] kept it. *)
  (match Sched.Edf.select edf ~now:Time.zero with
  | Some c -> Alcotest.(check string) "tie" "first" c.Sched.Edf.cname
  | None -> Alcotest.fail "no client selected");
  (* Exhaust the winner: the tie moves to the next admission. *)
  Sched.Edf.charge a (Time.ms 2);
  match Sched.Edf.select edf ~now:Time.zero with
  | Some c -> Alcotest.(check string) "next tie" "second" c.Sched.Edf.cname
  | None -> Alcotest.fail "no client selected"

let edf_replenish_due () =
  let edf = Sched.Edf.create () in
  let admit name period =
    match
      Sched.Edf.admit edf ~name ~period ~slice:(Time.ms 1) ~now:Time.zero ()
    with
    | Ok c -> c
    | Error e -> failwith e
  in
  let a = admit "a" (Time.ms 10) in
  let b = admit "b" (Time.ms 40) in
  Sched.Edf.charge a (Time.ms 1);
  Sched.Edf.charge b (Time.ms 1);
  (* Only a's boundary has passed at 15 ms: replenish_due must refill
     a and leave b alone. *)
  Sched.Edf.replenish_due edf ~now:(Time.ms 15);
  checkb "a refilled" true (Sched.Edf.has_budget a);
  checkb "b untouched" false (Sched.Edf.has_budget b);
  check "a deadline advanced" (Time.ms 20) a.Sched.Edf.deadline;
  check "b deadline unchanged" (Time.ms 40) b.Sched.Edf.deadline

(* --- Typed errors across the public API ---------------------------- *)

let frames_fixture () =
  let sim = Sim.create () in
  let rt = Hw.Ramtab.create ~nframes:8 in
  Frames.create sim rt ~nframes:8

let frames_overcommit_payload () =
  let fr = frames_fixture () in
  (match Frames.admit fr ~domain:1 ~guarantee:5 ~optimistic:0 with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "honest admission refused");
  (match Frames.admit fr ~domain:2 ~guarantee:4 ~optimistic:0 with
  | Error (Frames.Admission_overcommit { requested; available }) ->
    check "requested" 4 requested;
    check "available" 3 available
  | Ok _ -> Alcotest.fail "overcommit admitted"
  | Error _ -> Alcotest.fail "wrong error");
  (match Frames.admit fr ~domain:3 ~guarantee:(-1) ~optimistic:0 with
  | Error Frames.Negative_quota -> ()
  | _ -> Alcotest.fail "negative quota not typed");
  Alcotest.(check string) "rendered message"
    "admission refused: 4 guaranteed frames requested, 3 available"
    (Frames.error_message
       (Frames.Admission_overcommit { requested = 4; available = 3 }))

let frames_alloc_specific_errors () =
  let fr = frames_fixture () in
  let a =
    match Frames.admit fr ~domain:1 ~guarantee:2 ~optimistic:0 with
    | Ok c -> c
    | Error e -> failwith (Frames.error_message e)
  in
  let b =
    match Frames.admit fr ~domain:2 ~guarantee:2 ~optimistic:0 with
    | Ok c -> c
    | Error e -> failwith (Frames.error_message e)
  in
  (match Frames.alloc_specific fr a ~pfn:99 with
  | Error (Frames.Frame_out_of_range { pfn = 99; nframes = 8 }) -> ()
  | _ -> Alcotest.fail "out-of-range not typed");
  (match Frames.alloc_specific fr a ~pfn:5 with
  | Ok () -> ()
  | Error e -> failwith (Frames.error_message e));
  (match Frames.alloc_specific fr b ~pfn:5 with
  | Error (Frames.Frame_in_use { pfn = 5 }) -> ()
  | _ -> Alcotest.fail "in-use not typed");
  (match Frames.alloc_specific fr a ~pfn:6 with
  | Ok () -> ()
  | Error e -> failwith (Frames.error_message e));
  match Frames.alloc_specific fr a ~pfn:7 with
  | Error (Frames.Quota_exhausted { held = 2; quota = 2 }) -> ()
  | _ -> Alcotest.fail "quota exhaustion not typed"

let cpu_consume_removed () =
  let sim = Sim.create () in
  let cpu = Sched.Cpu.create sim in
  let c =
    match
      Sched.Cpu.admit cpu ~name:"gone" ~period:(Time.ms 10)
        ~slice:(Time.ms 2) ()
    with
    | Ok c -> c
    | Error e -> failwith e
  in
  Sched.Cpu.remove cpu c;
  ignore
    (Proc.spawn sim (fun () ->
         match Sched.Cpu.consume cpu c (Time.ms 1) with
         | Error `Removed -> ()
         | Ok () -> Alcotest.fail "consume on removed contract succeeded"));
  Sim.run ~until:(Time.ms 100) sim

let link_send_retired () =
  let sim = Sim.create () in
  let link = Usnet.Link.create sim in
  let c =
    match
      Usnet.Link.admit link ~name:"a" ~period:(Time.ms 10)
        ~slice:(Time.ms 5) ()
    with
    | Ok c -> c
    | Error e -> failwith (Usnet.Link.admit_error_message e)
  in
  Usnet.Link.retire link c;
  (match Usnet.Link.send link c ~bytes:1000 with
  | Error `Retired -> ()
  | Ok _ -> Alcotest.fail "send on retired client accepted");
  match Usnet.Link.transmit link c ~bytes:1000 with
  | Error `Retired -> ()
  | Ok () -> Alcotest.fail "transmit on retired client succeeded"

let file_store_retired () =
  let sys = System.create () in
  let store = System.file_store sys in
  let f =
    match
      Usbs.File_store.create_file store ~name:"dead.dat" ~bytes:8192
    with
    | Ok f -> f
    | Error e -> failwith e
  in
  let qos = Usbs.Qos.make ~period:(Time.ms 100) ~slice:(Time.ms 10) () in
  let c =
    match Usbs.Usd.admit (System.usd sys) ~name:"dead" ~qos () with
    | Ok c -> c
    | Error e -> failwith e
  in
  Usbs.Usd.retire (System.usd sys) c;
  (match Usbs.File_store.read_page store f ~client:c ~page_index:0 with
  | Error `Retired -> ()
  | Ok () -> Alcotest.fail "read through retired client succeeded"
  | Error (`Media _) -> Alcotest.fail "wrong error shape");
  match Usbs.File_store.write_page store f ~client:c ~page_index:0 with
  | Error `Retired -> ()
  | Ok () -> Alcotest.fail "write through retired client succeeded"
  | Error (`Media _) -> Alcotest.fail "wrong error shape"

let system_errors_typed () =
  let sys = System.create () in
  (* CPU refusal: slice exceeds period. *)
  (match
     System.add_domain sys ~name:"bad" ~cpu_period:(Time.ms 1)
       ~cpu_slice:(Time.ms 2) ~guarantee:1 ~optimistic:0 ()
   with
  | Error (System.Cpu_admission { reason }) ->
    Alcotest.(check string) "cpu message" ("cpu: " ^ reason)
      (System.error_message (System.Cpu_admission { reason }))
  | _ -> Alcotest.fail "cpu refusal not typed");
  (* Frames refusal carries the Frames.error inside. *)
  let total = Frames.total_frames (System.frames sys) in
  match
    System.add_domain sys ~name:"greedy" ~guarantee:(total + 1)
      ~optimistic:0 ()
  with
  | Error
      (System.Frames_admission (Frames.Admission_overcommit { requested; _ })
       as e) ->
    check "requested" (total + 1) requested;
    checkb "rendered with frames: prefix" true
      (String.length (System.error_message e) > 7
      && String.sub (System.error_message e) 0 7 = "frames:")
  | _ -> Alcotest.fail "frames refusal not typed"

(* --- The experiment: determinism and the full verdict -------------- *)

let scale_deterministic () =
  let j1 =
    Experiments.Scale.to_json
      (Experiments.Scale.run ~seed:7 ~domains:6 ~duration:(Time.sec 3) ())
  in
  let j2 =
    Experiments.Scale.to_json
      (Experiments.Scale.run ~seed:7 ~domains:6 ~duration:(Time.sec 3) ())
  in
  Alcotest.(check string) "same seed, byte-identical record" j1 j2

let scale_verdict () =
  let r = Experiments.Scale.run ~domains:32 ~duration:(Time.sec 30) () in
  check "zero violations" 0 r.Experiments.Scale.violations;
  checkb "books balance" true r.Experiments.Scale.books_balanced;
  checkb "every domain measured" true
    (r.Experiments.Scale.measured_domains = 32);
  checkb "verdict" true (Experiments.Scale.ok r)

let suite =
  [ ( "scale.frame_stack",
      [ qtest frame_stack_matches_model;
        Alcotest.test_case "unit edges" `Quick frame_stack_unit ] );
    ( "scale.edf",
      [ qtest edf_matches_fold;
        Alcotest.test_case "deadline ties go to first admitted" `Quick
          edf_tie_break;
        Alcotest.test_case "replenish_due only touches due clients" `Quick
          edf_replenish_due ] );
    ( "scale.errors",
      [ Alcotest.test_case "admission overcommit payload" `Quick
          frames_overcommit_payload;
        Alcotest.test_case "alloc_specific variants" `Quick
          frames_alloc_specific_errors;
        Alcotest.test_case "consume on removed CPU contract" `Quick
          cpu_consume_removed;
        Alcotest.test_case "send on retired link client" `Quick
          link_send_retired;
        Alcotest.test_case "file store on retired USD client" `Quick
          file_store_retired;
        Alcotest.test_case "system admission errors typed" `Quick
          system_errors_typed ] );
    ( "scale.experiment",
      [ Alcotest.test_case "same seed, same JSON record" `Quick
          scale_deterministic;
        Alcotest.test_case "32-domain verdict" `Slow scale_verdict ] ) ]
