(* Integration tests for the domain runtime, the MMEntry and the three
   stretch drivers, running on a full System. *)

open Engine
open Hw
open Core

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let small_sys () =
  let config = { System.default_config with main_memory_mb = 2 } in
  System.create ~config ()

let add_domain_exn sys ~name ~guarantee ~optimistic =
  match System.add_domain sys ~name ~guarantee ~optimistic () with
  | Ok d -> d
  | Error e -> failwith (System.error_message e)

let alloc_exn d ~bytes =
  match System.alloc_stretch d ~bytes () with
  | Ok s -> s
  | Error e -> failwith e

(* Run [f] inside a thread of domain [d] and drive the sim until it
   finishes (bounded horizon relative to the current clock). *)
let in_domain sys d f =
  let result = ref None in
  ignore
    (Domains.spawn_thread d.System.dom ~name:"test" (fun () ->
         result := Some (f ())));
  let sim = System.sim sys in
  System.run sys ~until:(Time.add (Sim.now sim) (Time.sec 300));
  match !result with
  | Some r -> r
  | None -> Alcotest.fail "domain thread did not finish"

(* --- Physical driver + fault path --- *)

let physical_driver_demand_zero () =
  let sys = small_sys () in
  let d = add_domain_exn sys ~name:"app" ~guarantee:8 ~optimistic:0 in
  let s = alloc_exn d ~bytes:(4 * Addr.page_size) in
  (match System.bind_physical d s with
  | Ok _ -> ()
  | Error e -> failwith (System.error_message e));
  in_domain sys d (fun () ->
      for i = 0 to 3 do
        Domains.access d.System.dom (Stretch.page_base s i) `Write
      done);
  check "four faults taken" 4 (Domains.faults_taken d.System.dom);
  check "all resolved via workers (no pool preload)" 4
    (Mm_entry.faults_slow d.System.mm);
  (* Pages are now mapped: further access does not fault. *)
  in_domain sys d (fun () ->
      Domains.access d.System.dom (Stretch.page_base s 2) `Read);
  check "no further faults" 4 (Domains.faults_taken d.System.dom)

let physical_driver_fast_path () =
  let sys = small_sys () in
  let d = add_domain_exn sys ~name:"app" ~guarantee:8 ~optimistic:0 in
  let s = alloc_exn d ~bytes:(4 * Addr.page_size) in
  (match System.bind_physical d ~prealloc:4 s with
  | Ok _ -> ()
  | Error e -> failwith (System.error_message e));
  in_domain sys d (fun () ->
      for i = 0 to 3 do
        Domains.access d.System.dom (Stretch.page_base s i) `Write
      done);
  (* With a preloaded pool the notification handler resolves faults
     without waking a worker. *)
  check "fast-path faults" 4 (Mm_entry.faults_fast d.System.mm);
  check "no worker faults" 0 (Mm_entry.faults_slow d.System.mm)

let unallocated_address_fails () =
  let sys = small_sys () in
  let d = add_domain_exn sys ~name:"app" ~guarantee:2 ~optimistic:0 in
  let failed =
    in_domain sys d (fun () ->
        match Domains.try_access d.System.dom (12 * 1024 * 1024) `Read with
        | Error (fault, _) -> fault.Fault.kind = Mmu.Unallocated
        | Ok () -> false)
  in
  checkb "unallocated fault reported" true failed

let access_violation_fails () =
  let sys = small_sys () in
  let d = add_domain_exn sys ~name:"app" ~guarantee:4 ~optimistic:0 in
  let s = alloc_exn d ~bytes:Addr.page_size in
  (match System.bind_physical d s with
  | Ok _ -> ()
  | Error e -> failwith (System.error_message e));
  (* Drop the owner's write right (keep meta). *)
  let denied =
    in_domain sys d (fun () ->
        Domains.access d.System.dom s.Stretch.base `Write;
        (match
           Stretch.set_rights_pdom s ~caller:(Domains.pdom d.System.dom)
             ~target:(Domains.pdom d.System.dom)
             Rights.{ r = true; w = false; x = false; m = true }
         with
        | Ok _ -> ()
        | Error _ -> failwith "protect failed");
        match Domains.try_access d.System.dom s.Stretch.base `Write with
        | Error (fault, _) -> fault.Fault.kind = Mmu.Access_violation
        | Ok () -> false)
  in
  checkb "write denied after protect" true denied

(* --- Nailed driver --- *)

let nailed_driver_never_faults () =
  let sys = small_sys () in
  let d = add_domain_exn sys ~name:"app" ~guarantee:8 ~optimistic:0 in
  let s = alloc_exn d ~bytes:(4 * Addr.page_size) in
  in_domain sys d (fun () ->
      (match System.bind_nailed d s with
      | Ok _ -> ()
      | Error e -> failwith (System.error_message e));
      for i = 0 to 3 do
        Domains.access d.System.dom (Stretch.page_base s i) `Write
      done);
  check "no faults at all" 0 (Domains.faults_taken d.System.dom);
  (* Nailed frames are pinned in the RamTab. *)
  let ramtab = Translation.ramtab (System.translation sys) in
  let nailed = ref 0 in
  for pfn = 0 to Ramtab.nframes ramtab - 1 do
    if Ramtab.state ramtab ~pfn = Ramtab.Nailed then incr nailed
  done;
  check "four frames nailed" 4 !nailed

(* --- Paged driver --- *)

let paged_driver_swaps () =
  let sys = small_sys () in
  let d = add_domain_exn sys ~name:"app" ~guarantee:2 ~optimistic:0 in
  let s = alloc_exn d ~bytes:(8 * Addr.page_size) in
  let info =
    in_domain sys d (fun () ->
        let qos = Usbs.Qos.make ~period:(Time.ms 250) ~slice:(Time.ms 125) () in
        let _, h =
          match
            System.bind_paged d ~initial_frames:2
              ~swap_bytes:(16 * Addr.page_size) ~qos s ()
          with
          | Ok x -> x
          | Error e -> failwith (System.error_message e)
        in
        (* Two passes over 8 pages with 2 frames: the first demand
           zeroes, the second pages in what the first paged out. *)
        for i = 0 to 7 do
          Domains.access d.System.dom (Stretch.page_base s i) `Write
        done;
        for i = 0 to 7 do
          Domains.access d.System.dom (Stretch.page_base s i) `Read
        done;
        Sd_paged.info h)
  in
  check "demand zeros" 8 info.Sd_paged.demand_zeros;
  checkb "pages written out" true (info.Sd_paged.page_outs >= 6);
  checkb "pages read back" true (info.Sd_paged.page_ins >= 6);
  checkb "evictions happened" true (info.Sd_paged.evictions >= 12)

let paged_driver_clean_pages_skip_writeback () =
  let sys = small_sys () in
  let d = add_domain_exn sys ~name:"app" ~guarantee:2 ~optimistic:0 in
  let s = alloc_exn d ~bytes:(8 * Addr.page_size) in
  let info =
    in_domain sys d (fun () ->
        let qos = Usbs.Qos.make ~period:(Time.ms 250) ~slice:(Time.ms 125) () in
        let _, h =
          match
            System.bind_paged d ~initial_frames:2
              ~swap_bytes:(16 * Addr.page_size) ~qos s ()
          with
          | Ok x -> x
          | Error e -> failwith (System.error_message e)
        in
        (* Populate (dirty), then two read-only passes: clean pages are
           evicted without further write-backs. *)
        for i = 0 to 7 do
          Domains.access d.System.dom (Stretch.page_base s i) `Write
        done;
        let outs_after_populate = (Sd_paged.info h).Sd_paged.page_outs in
        for _ = 1 to 2 do
          for i = 0 to 7 do
            Domains.access d.System.dom (Stretch.page_base s i) `Read
          done
        done;
        (outs_after_populate, Sd_paged.info h))
  in
  let outs_populate, final = info in
  (* The two pages still resident (and dirty) after the populate pass
     get cleaned when the read passes evict them; beyond that, clean
     evictions write nothing. *)
  checkb "read passes wrote (almost) nothing new" true
    (final.Sd_paged.page_outs <= outs_populate + 2);
  checkb "read passes paged in" true (final.Sd_paged.page_ins >= 12)

let paged_driver_forgetful_never_reads () =
  let sys = small_sys () in
  let d = add_domain_exn sys ~name:"app" ~guarantee:2 ~optimistic:0 in
  let s = alloc_exn d ~bytes:(8 * Addr.page_size) in
  let info =
    in_domain sys d (fun () ->
        let qos = Usbs.Qos.make ~period:(Time.ms 250) ~slice:(Time.ms 125) () in
        let _, h =
          match
            System.bind_paged d ~forgetful:true ~initial_frames:2
              ~swap_bytes:(16 * Addr.page_size) ~qos s ()
          with
          | Ok x -> x
          | Error e -> failwith (System.error_message e)
        in
        for _ = 1 to 3 do
          for i = 0 to 7 do
            Domains.access d.System.dom (Stretch.page_base s i) `Write
          done
        done;
        Sd_paged.info h)
  in
  check "never pages in" 0 info.Sd_paged.page_ins;
  checkb "pages out continuously" true (info.Sd_paged.page_outs >= 20)

(* --- Revocation through the MMEntry --- *)

let mm_entry_revocation () =
  let sys = small_sys () in
  let hoarder = add_domain_exn sys ~name:"hoarder" ~guarantee:2 ~optimistic:64 in
  let hs = alloc_exn hoarder ~bytes:(32 * Addr.page_size) in
  (match System.bind_physical hoarder hs with
  | Ok _ -> ()
  | Error e -> failwith (System.error_message e));
  (* Use all of memory (2MB = 256 frames; hoarder takes 32 mapped). *)
  in_domain sys hoarder (fun () ->
      for i = 0 to 31 do
        Domains.access hoarder.System.dom (Stretch.page_base hs i) `Write
      done);
  (* Now a newcomer wants more guaranteed frames than remain free. *)
  let claimant = add_domain_exn sys ~name:"claimant" ~guarantee:240 ~optimistic:0 in
  let got =
    in_domain sys claimant (fun () ->
        let got = ref 0 in
        for _ = 1 to 240 do
          match
            Frames.alloc (System.frames sys) claimant.System.frames_client
          with
          | Some _ -> incr got
          | None -> ()
        done;
        !got)
  in
  check "guarantee fully met" 240 got;
  checkb "revocation went through the MMEntry" true
    (Mm_entry.revocations_handled hoarder.System.mm > 0);
  checkb "hoarder survived" true (Domains.alive hoarder.System.dom);
  checkb "hoarder kept its guarantee" true
    (Frames.held hoarder.System.frames_client >= 2)

(* --- Kill semantics --- *)

let kill_domain_releases_everything () =
  let sys = small_sys () in
  let d = add_domain_exn sys ~name:"victim" ~guarantee:8 ~optimistic:0 in
  let s = alloc_exn d ~bytes:(8 * Addr.page_size) in
  (match System.bind_physical d s with
  | Ok _ -> ()
  | Error e -> failwith (System.error_message e));
  in_domain sys d (fun () ->
      for i = 0 to 7 do
        Domains.access d.System.dom (Stretch.page_base s i) `Write
      done);
  let free_before = Frames.free_frames (System.frames sys) in
  System.kill_domain sys d;
  checkb "dead" false (Domains.alive d.System.dom);
  check "frames released" (free_before + 8)
    (Frames.free_frames (System.frames sys));
  checkb "removed from system" true
    (not (List.memq d (System.domains sys)))

(* --- Single-address-space sharing --- *)

let cross_domain_sharing () =
  (* "The use of the single address space and widespread sharing of
     text ensures that the execution of each domain is completely
     independent... save when interaction is desired." Domain A nails a
     stretch (shared text) and grants read access to B's protection
     domain; B then reads it with no faults and no resources of its
     own involved. *)
  let sys = small_sys () in
  let a = add_domain_exn sys ~name:"provider" ~guarantee:8 ~optimistic:0 in
  let b = add_domain_exn sys ~name:"consumer" ~guarantee:2 ~optimistic:0 in
  let s = alloc_exn a ~bytes:(4 * Addr.page_size) in
  in_domain sys a (fun () ->
      (match System.bind_nailed a s with
      | Ok _ -> ()
      | Error e -> failwith (System.error_message e));
      (* Grant read (no write, no meta) to the consumer. *)
      match
        Stretch.set_rights_pdom s ~caller:(Domains.pdom a.System.dom)
          ~target:(Domains.pdom b.System.dom) Rights.read
      with
      | Ok _ -> ()
      | Error _ -> failwith "grant failed");
  in_domain sys b (fun () ->
      for i = 0 to 3 do
        Domains.access b.System.dom (Stretch.page_base s i) `Read
      done);
  check "consumer took no faults" 0 (Domains.faults_taken b.System.dom);
  (* The consumer cannot write or change protections. *)
  let denied =
    in_domain sys b (fun () ->
        (match Domains.try_access b.System.dom s.Stretch.base `Write with
        | Error (f, _) -> f.Fault.kind = Mmu.Access_violation
        | Ok () -> false)
        &&
        match
          Stretch.set_rights_pdom s ~caller:(Domains.pdom b.System.dom)
            ~target:(Domains.pdom b.System.dom) Rights.all
        with
        | Error Translation.No_meta -> true
        | _ -> false)
  in
  checkb "write and re-protection denied" true denied

(* --- IDC restriction in activation handlers --- *)

let idc_forbidden_in_handler () =
  let sys = small_sys () in
  let d = add_domain_exn sys ~name:"app" ~guarantee:4 ~optimistic:0 in
  let s = alloc_exn d ~bytes:Addr.page_size in
  (* A rogue driver that attempts IDC on the fast path. *)
  let violated = ref false in
  let rogue =
    { Stretch_driver.name = "rogue";
      bind = (fun _ -> ());
      fast =
        (fun _ ->
          (try d.System.env.Stretch_driver.assert_idc_allowed "frames"
           with Failure _ -> violated := true);
          Stretch_driver.Failure "rogue");
      full = (fun _ -> Stretch_driver.Failure "rogue");
      relinquish = (fun ~want:_ -> 0);
      resident_pages = (fun () -> 0);
      free_frames = (fun () -> 0) }
  in
  Mm_entry.bind d.System.mm s rogue;
  ignore
    (in_domain sys d (fun () ->
         match Domains.try_access d.System.dom s.Stretch.base `Read with
         | Error _ -> ()
         | Ok () -> ()));
  checkb "IDC rejected inside the notification handler" true !violated

let suite =
  [ ( "domains.fault_path",
      [ Alcotest.test_case "physical driver demand-zero" `Quick
          physical_driver_demand_zero;
        Alcotest.test_case "fast path with preloaded pool" `Quick
          physical_driver_fast_path;
        Alcotest.test_case "unallocated address fails" `Quick
          unallocated_address_fails;
        Alcotest.test_case "access violation after protect" `Quick
          access_violation_fails;
        Alcotest.test_case "IDC forbidden in handler" `Quick
          idc_forbidden_in_handler ] );
    ( "domains.drivers",
      [ Alcotest.test_case "nailed never faults" `Quick
          nailed_driver_never_faults;
        Alcotest.test_case "paged driver swaps in and out" `Quick
          paged_driver_swaps;
        Alcotest.test_case "clean pages skip write-back" `Quick
          paged_driver_clean_pages_skip_writeback;
        Alcotest.test_case "forgetful mode never reads" `Quick
          paged_driver_forgetful_never_reads ] );
    ( "domains.sharing",
      [ Alcotest.test_case "single-address-space text sharing" `Quick
          cross_domain_sharing ] );
    ( "domains.revocation",
      [ Alcotest.test_case "revocation via MMEntry" `Quick mm_entry_revocation;
        Alcotest.test_case "kill releases resources" `Quick
          kill_domain_releases_everything ] ) ]
