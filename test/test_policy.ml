(* Tests for lib/policy and the policy-parameterised paged driver:
   pure policy/prefetch/write-behind units and properties, then
   integration through a full System. *)

open Engine
open Hw
open Core

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let qtest = QCheck_alcotest.to_alcotest

(* --- Pure replacement policies ------------------------------------- *)

(* A self-contained residency model: tracks which pages the policy was
   told about and fakes the referenced bits the probe reads. *)
module Model = struct
  type t = {
    mutable resident : int list;  (* insertion order, oldest first *)
    referenced : (int, bool) Hashtbl.t;
  }

  let create () = { resident = []; referenced = Hashtbl.create 16 }
  let mem m p = List.mem p m.resident

  let insert m p =
    m.resident <- m.resident @ [ p ];
    Hashtbl.replace m.referenced p false

  let remove m p = m.resident <- List.filter (( <> ) p) m.resident
  let set_ref m p v = Hashtbl.replace m.referenced p v

  let probe m =
    { Policy.Replacement.resident = mem m;
      referenced =
        (fun p -> try Hashtbl.find m.referenced p with Not_found -> false);
      clear_referenced = (fun p -> Hashtbl.replace m.referenced p false) }
end

let fifo_matches_queue_model =
  QCheck.Test.make ~name:"fifo victims come out in insertion order" ~count:200
    QCheck.(list (pair bool (int_range 0 30)))
    (fun ops ->
      let m = Model.create () in
      let pol = Policy.Replacement.fifo () in
      List.for_all
        (fun (is_insert, p) ->
          if is_insert then begin
            if not (Model.mem m p) then begin
              Model.insert m p;
              pol.Policy.Replacement.insert p
            end;
            true
          end
          else
            match pol.Policy.Replacement.victim (Model.probe m) with
            | None -> m.Model.resident = []
            | Some v ->
              let expected = List.hd m.Model.resident in
              Model.remove m v;
              v = expected)
        ops)

(* Every policy's victims are pages it was told about and that are
   still resident — never a foreign (nailed, wired) frame, never a
   removed page. Interleaves inserts, removes, touches and victim
   calls with pseudo-random referenced bits. *)
let victims_always_resident =
  let mk_policy = function
    | 0 -> Policy.Replacement.fifo ()
    | 1 -> Policy.Replacement.clock ()
    | 2 ->
      let t = ref 0 in
      Policy.Replacement.lru ~now:(fun () -> incr t; !t) ()
    | _ ->
      let t = ref 0 in
      Policy.Replacement.wsclock ~window:4 ~now:(fun () -> incr t; !t) ()
  in
  QCheck.Test.make
    ~name:"clock/lru/wsclock victims are always tracked residents"
    ~count:200
    QCheck.(pair (int_range 0 3) (list (pair (int_range 0 3) (int_range 0 20))))
    (fun (which, ops) ->
      let m = Model.create () in
      let pol = mk_policy which in
      List.for_all
        (fun (kind, p) ->
          match kind with
          | 0 ->
            if not (Model.mem m p) then begin
              Model.insert m p;
              pol.Policy.Replacement.insert p
            end;
            true
          | 1 ->
            if Model.mem m p then begin
              Model.remove m p;
              pol.Policy.Replacement.remove p
            end;
            true
          | 2 ->
            if Model.mem m p then begin
              Model.set_ref m p true;
              pol.Policy.Replacement.touch p
            end;
            true
          | _ ->
            (match pol.Policy.Replacement.victim (Model.probe m) with
            | None -> m.Model.resident = []
            | Some v ->
              let ok = Model.mem m v in
              Model.remove m v;
              ok))
        ops)

let clock_gives_second_chance () =
  let m = Model.create () in
  let pol = Policy.Replacement.clock () in
  List.iter
    (fun p ->
      Model.insert m p;
      pol.Policy.Replacement.insert p)
    [ 0; 1; 2 ];
  (* Page 0 is referenced: the sweep clears its bit and spares it,
     evicting page 1 instead. *)
  Model.set_ref m 0 true;
  (match pol.Policy.Replacement.victim (Model.probe m) with
  | Some v ->
    check "referenced page spared" 1 v;
    Model.remove m v
  | None -> Alcotest.fail "no victim");
  (* The hand is now past page 0: unreferenced page 2 goes next, and
     only then page 0, its second chance spent. *)
  (match pol.Policy.Replacement.victim (Model.probe m) with
  | Some v ->
    check "hand continues the sweep" 2 v;
    Model.remove m v
  | None -> Alcotest.fail "no victim");
  match pol.Policy.Replacement.victim (Model.probe m) with
  | Some v -> check "second chance spent" 0 v
  | None -> Alcotest.fail "no victim"

let lru_evicts_least_recent () =
  let t = ref 0 in
  let m = Model.create () in
  let pol = Policy.Replacement.lru ~now:(fun () -> incr t; !t) () in
  List.iter
    (fun p ->
      Model.insert m p;
      pol.Policy.Replacement.insert p)
    [ 0; 1; 2 ];
  (* First sampling pass: pages 1 and 2 referenced, 0 not — 0 is the
     least recent. *)
  Model.set_ref m 1 true;
  Model.set_ref m 2 true;
  (match pol.Policy.Replacement.victim (Model.probe m) with
  | Some v ->
    check "unreferenced page is oldest" 0 v;
    Model.remove m v
  | None -> Alcotest.fail "no victim");
  (* Now only page 2 is re-referenced: 1's stamp is older. *)
  Model.set_ref m 2 true;
  match pol.Policy.Replacement.victim (Model.probe m) with
  | Some v -> check "stale stamp evicted" 1 v
  | None -> Alcotest.fail "no victim"

let wsclock_protects_working_set () =
  let t = ref 0 in
  let m = Model.create () in
  let pol = Policy.Replacement.wsclock ~window:100 ~now:(fun () -> !t) () in
  List.iter
    (fun p ->
      Model.insert m p;
      pol.Policy.Replacement.insert p)
    [ 0; 1; 2 ];
  (* All stamps are within the window, so the fallback (oldest stamp)
     must fire and selection still terminates. *)
  (match pol.Policy.Replacement.victim (Model.probe m) with
  | Some v ->
    check "in-window fallback evicts oldest stamp" 0 v;
    Model.remove m v
  | None -> Alcotest.fail "no victim");
  (* Advance time beyond the window: page 1 re-referenced (stays in
     the working set), page 2 not (ages out). *)
  t := 200;
  Model.set_ref m 1 true;
  match pol.Policy.Replacement.victim (Model.probe m) with
  | Some v -> check "aged-out page evicted" 2 v
  | None -> Alcotest.fail "no victim"

(* --- Prefetch ------------------------------------------------------ *)

let stream_plan_is_fixed_window () =
  let pf = Policy.Prefetch.create (Policy.Prefetch.Stream 4) in
  Policy.Prefetch.record_fault pf 10;
  Alcotest.(check (list int))
    "window follows the fault" [ 11; 12; 13; 14 ]
    (Policy.Prefetch.plan pf ~page:10)

let adaptive_detects_sequential () =
  let pf = Policy.Prefetch.create (Policy.Prefetch.Adaptive 8) in
  List.iter (Policy.Prefetch.record_fault pf) [ 5; 6; 7 ];
  let plan = Policy.Prefetch.plan pf ~page:7 in
  checkb "plans ahead after a run" true (plan <> []);
  checkb "plans in stride order" true (List.hd plan = 8)

let adaptive_detects_stride () =
  let pf = Policy.Prefetch.create (Policy.Prefetch.Adaptive 8) in
  List.iter (Policy.Prefetch.record_fault pf) [ 0; 3; 6; 9 ];
  let plan = Policy.Prefetch.plan pf ~page:9 in
  checkb "strided plan nonempty" true (plan <> []);
  checkb "first candidate follows the stride" true (List.hd plan = 12)

let adaptive_ignores_random () =
  let pf = Policy.Prefetch.create (Policy.Prefetch.Adaptive 8) in
  List.iter (Policy.Prefetch.record_fault pf) [ 17; 3; 29; 11; 23 ];
  Alcotest.(check (list int))
    "no pattern, no plan" [] (Policy.Prefetch.plan pf ~page:23)

let advice_steers_prefetch () =
  let pf = Policy.Prefetch.create (Policy.Prefetch.Adaptive 8) in
  Policy.Prefetch.advise pf Policy.Advice.Random;
  List.iter (Policy.Prefetch.record_fault pf) [ 5; 6; 7 ];
  Alcotest.(check (list int))
    "Random advice disables read-ahead" []
    (Policy.Prefetch.plan pf ~page:7);
  let pf = Policy.Prefetch.create Policy.Prefetch.Off in
  Policy.Prefetch.advise pf
    (Policy.Advice.Willneed { page = 40; npages = 2 });
  Policy.Prefetch.record_fault pf 3;
  Alcotest.(check (list int))
    "Willneed pages drain first" [ 40; 41 ]
    (Policy.Prefetch.plan pf ~page:3);
  Alcotest.(check (list int))
    "hint queue drains once" [] (Policy.Prefetch.plan pf ~page:3);
  let pf = Policy.Prefetch.create Policy.Prefetch.Off in
  Policy.Prefetch.advise pf
    (Policy.Advice.Willneed { page = 40; npages = 4 });
  Policy.Prefetch.advise pf
    (Policy.Advice.Dontneed { page = 41; npages = 2 });
  Alcotest.(check (list int))
    "Dontneed cancels queued hints" [ 40; 43 ]
    (Policy.Prefetch.plan pf ~page:3)

(* --- Write-behind -------------------------------------------------- *)

let writeback_coalesces_contiguous () =
  let txns = ref [] in
  let wb =
    Policy.Writeback.create ~max_batch:8
      ~write:(fun ~blok ~nbloks -> txns := (blok, nbloks) :: !txns)
      ()
  in
  List.iter
    (fun (p, b) -> Policy.Writeback.enqueue wb ~page:p ~blok:b ~frame:(100 + p))
    [ (0, 5); (1, 3); (2, 9); (3, 4) ];
  let freed = Policy.Writeback.flush wb in
  (* Bloks 3,4,5 coalesce; 9 stands alone. *)
  Alcotest.(check (list (pair int int)))
    "contiguous bloks become one transaction"
    [ (3, 3); (9, 1) ] (List.sort compare !txns);
  check "all frames freed" 4 (List.length freed);
  check "buffer drained" 0 (Policy.Writeback.pending wb);
  check "one transaction counted per coalesced run" 2
    (Policy.Writeback.flushes wb)

(* The race the commit-point design closes: while one run's write
   blocks on disk, entries of *later* runs must still be rescuable —
   a concurrent fault on one of them must win the frame back rather
   than find the buffer mysteriously empty. *)
let writeback_rescuable_during_flush () =
  let the_wb = ref None in
  let rescued = ref None in
  let writes = ref [] in
  let wb =
    Policy.Writeback.create ~max_batch:8
      ~write:(fun ~blok ~nbloks ->
        writes := (blok, nbloks) :: !writes;
        (* "During" the first run's disk time, fault page 9 (blok 9,
           a later run): it must still be parked and rescuable. *)
        if blok = 0 then
          rescued := Policy.Writeback.rescue (Option.get !the_wb) ~page:9)
      ()
  in
  the_wb := Some wb;
  List.iter
    (fun (p, b) -> Policy.Writeback.enqueue wb ~page:p ~blok:b ~frame:(100 + p))
    [ (0, 0); (1, 1); (9, 9) ];
  let freed = Policy.Writeback.flush wb in
  (match !rescued with
  | Some e -> check "rescued mid-flush entry is page 9" 9 e.Policy.Writeback.page
  | None -> Alcotest.fail "page 9 was not rescuable during the first write");
  Alcotest.(check (list (pair int int)))
    "rescued page never written" [ (0, 2) ] !writes;
  Alcotest.(check (list (pair int int)))
    "only the written run's frames freed"
    [ (0, 100); (1, 101) ] freed;
  check "buffer drained" 0 (Policy.Writeback.pending wb)

(* Commit fires per run at write-issue time (not when the whole flush
   returns), release only after that run's write has completed. *)
let writeback_commit_at_issue () =
  let events = ref [] in
  let ev e = events := e :: !events in
  let wb =
    Policy.Writeback.create ~max_batch:8
      ~write:(fun ~blok ~nbloks -> ev (Printf.sprintf "write %d+%d" blok nbloks))
      ()
  in
  List.iter
    (fun (p, b) -> Policy.Writeback.enqueue wb ~page:p ~blok:b ~frame:p)
    [ (0, 0); (1, 1); (5, 5) ];
  ignore
    (Policy.Writeback.flush wb
       ~commit:(fun ~page -> ev (Printf.sprintf "commit %d" page))
       ~release:(fun ~page ~frame:_ -> ev (Printf.sprintf "release %d" page)));
  Alcotest.(check (list string))
    "per-run commit -> write -> release ordering"
    [ "commit 0"; "commit 1"; "write 0+2"; "release 0"; "release 1";
      "commit 5"; "write 5+1"; "release 5" ]
    (List.rev !events)

let writeback_read_your_writes =
  (* Model a store: page -> version. Writes park in the buffer; the
     "disk" only sees a version at flush time. A read must observe the
     latest version — through the buffer (rescue) when parked. *)
  QCheck.Test.make
    ~name:"write-behind preserves read-your-writes" ~count:200
    QCheck.(list (pair (int_range 0 2) (int_range 0 7)))
    (fun ops ->
      let disk = Array.make 8 0 in
      let latest = Array.make 8 0 in
      let version = ref 0 in
      let wb_versions = Hashtbl.create 8 in
      (* Pages rescued back into residency: their frame holds the
         latest copy until they are evicted (parked) again. *)
      let resident = Hashtbl.create 8 in
      let wb =
        Policy.Writeback.create ~max_batch:4
          ~write:(fun ~blok ~nbloks ->
            for b = blok to blok + nbloks - 1 do
              disk.(b) <- Hashtbl.find wb_versions b;
              Hashtbl.remove wb_versions b
            done)
          ()
      in
      List.for_all
        (fun (kind, p) ->
          match kind with
          | 0 ->
            (* Dirty eviction of page p with a fresh version. *)
            if not (Policy.Writeback.member wb ~page:p) then begin
              incr version;
              latest.(p) <- !version;
              Hashtbl.remove resident p;
              Hashtbl.replace wb_versions p !version;
              if Policy.Writeback.full wb then ignore (Policy.Writeback.flush wb);
              Policy.Writeback.enqueue wb ~page:p ~blok:p ~frame:p
            end;
            true
          | 1 ->
            (* Read of page p: resident copy, else rescue if parked,
               else the disk copy. *)
            let seen =
              match Hashtbl.find_opt resident p with
              | Some v -> v
              | None ->
                (match Policy.Writeback.rescue wb ~page:p with
                | Some e ->
                  let v = Hashtbl.find wb_versions p in
                  Hashtbl.remove wb_versions p;
                  Hashtbl.replace resident p v;
                  check "rescued entry is page's own" p
                    e.Policy.Writeback.page;
                  v
                | None -> disk.(p))
            in
            seen = latest.(p)
          | _ ->
            ignore (Policy.Writeback.flush wb);
            Hashtbl.length wb_versions = 0)
        ops)

(* The flush path issues real USD transactions: contiguous parked
   pages of a file-store-backed writer coalesce into fewer (and equal
   read-your-writes) transactions than entries. *)
let writeback_coalesces_usd_txns () =
  let sys = Experiments.Harness.fresh_system () in
  Experiments.Harness.run_in_sim sys (fun () ->
      let usd = System.usd sys in
      let qos = Usbs.Qos.make ~period:(Time.ms 250) ~slice:(Time.ms 125) () in
      let client =
        match Usbs.Usd.admit usd ~name:"wb-test" ~qos () with
        | Ok c -> c
        | Error e -> failwith e
      in
      let store = Usbs.File_store.create usd in
      let file =
        match
          Usbs.File_store.create_file store ~name:"wb.dat" ~bytes:(64 * 8192)
        with
        | Ok f -> f
        | Error e -> failwith e
      in
      let wb =
        Policy.Writeback.create ~max_batch:8
          ~write:(fun ~blok ~nbloks ->
            Usbs.Usd.transact_exn usd client Usbs.Usd.Write
              ~lba:(Usbs.File_store.lba_of_page file blok)
              ~nblocks:(nbloks * 16))
          ()
      in
      List.iter
        (fun (p, b) ->
          Policy.Writeback.enqueue wb ~page:p ~blok:b ~frame:p)
        [ (0, 8); (1, 6); (2, 7); (3, 20); (4, 21); (5, 30) ];
      let before = Usbs.Usd.txn_count client in
      let freed = Policy.Writeback.flush wb in
      check "six entries freed" 6 (List.length freed);
      check "three coalesced transactions, not six" 3
        (Usbs.Usd.txn_count client - before))

(* --- Integration through a full System ----------------------------- *)

let small_sys () =
  let config = { System.default_config with main_memory_mb = 2 } in
  System.create ~config ()

let add_domain_exn sys ~name ~guarantee ~optimistic =
  match System.add_domain sys ~name ~guarantee ~optimistic () with
  | Ok d -> d
  | Error e -> failwith (System.error_message e)

let alloc_exn d ~bytes =
  match System.alloc_stretch d ~bytes () with
  | Ok s -> s
  | Error e -> failwith e

let in_domain sys d f =
  let result = ref None in
  ignore
    (Domains.spawn_thread d.System.dom ~name:"test" (fun () ->
         result := Some (f ())));
  let sim = System.sim sys in
  System.run sys ~until:(Time.add (Sim.now sim) (Time.sec 300));
  match !result with
  | Some r -> r
  | None -> Alcotest.fail "domain thread did not finish"

(* Sequential write+read over 6 pages with 2 frames, default policy:
   the USD transaction stream must reproduce the seed driver's
   eviction order exactly. FIFO predicts: the write pass cleans pages
   0..3 in order (bloks assigned first-fit, so in cleaning order);
   the read pass cleans 4 then 5 (still dirty) and reads bloks back in
   page order, clean evictions writing nothing. *)
let default_policy_matches_seed_trace () =
  let sys = small_sys () in
  let d = add_domain_exn sys ~name:"app" ~guarantee:2 ~optimistic:0 in
  let s = alloc_exn d ~bytes:(6 * Addr.page_size) in
  let info =
    in_domain sys d (fun () ->
        let qos = Usbs.Qos.make ~period:(Time.ms 250) ~slice:(Time.ms 125) () in
        let _, h =
          match
            System.bind_paged d ~initial_frames:2
              ~swap_bytes:(16 * Addr.page_size) ~qos s ()
          with
          | Ok x -> x
          | Error e -> failwith (System.error_message e)
        in
        for i = 0 to 5 do
          Domains.access d.System.dom (Stretch.page_base s i) `Write
        done;
        for i = 0 to 5 do
          Domains.access d.System.dom (Stretch.page_base s i) `Read
        done;
        Sd_paged.info h)
  in
  (* Replay the swap client's transactions from the USD trace. *)
  let txns = ref [] in
  Trace.iter
    (fun _ ev ->
      match ev with
      | Usbs.Usd.Txn { client = "app.swap"; op; lba; _ } ->
        txns := (op, lba) :: !txns
      | _ -> ())
    (Usbs.Usd.trace (System.usd sys));
  let txns = List.rev !txns in
  (* Normalise lbas to blok ranks (bloks are handed out first-fit, so
     rank = allocation order). *)
  let distinct =
    List.sort_uniq compare (List.map snd txns)
  in
  let rank lba =
    let rec go i = function
      | [] -> assert false
      | x :: tl -> if x = lba then i else go (i + 1) tl
    in
    go 0 distinct
  in
  let got =
    List.map
      (fun (op, lba) ->
        ((match op with Usbs.Usd.Write -> "W" | Usbs.Usd.Read -> "R"), rank lba))
      txns
  in
  Alcotest.(check (list (pair string int)))
    "seed FIFO transaction order"
    [ ("W", 0); ("W", 1); ("W", 2); ("W", 3);  (* write pass evicts 0-3 *)
      ("W", 4); ("R", 0);                      (* read 0 evicts dirty 4 *)
      ("W", 5); ("R", 1);                      (* read 1 evicts dirty 5 *)
      ("R", 2); ("R", 3); ("R", 4); ("R", 5) ] (* clean evictions: reads only *)
    got;
  check "demand zeros" 6 info.Sd_paged.demand_zeros;
  check "page ins" 6 info.Sd_paged.page_ins;
  check "page outs" 6 info.Sd_paged.page_outs;
  check "nothing prefetched by default" 0 info.Sd_paged.prefetched

(* A churning paged domain (under each eviction policy) must never
   disturb a neighbour's nailed frames: policies only nominate pages
   of their own stretch. *)
let policies_never_evict_nailed () =
  List.iter
    (fun policy_str ->
      let policy =
        match Policy.Spec.of_string policy_str with
        | Ok p -> p
        | Error e -> failwith e
      in
      let sys = small_sys () in
      let nailed_d = add_domain_exn sys ~name:"nailed" ~guarantee:4 ~optimistic:0 in
      let ns = alloc_exn nailed_d ~bytes:(4 * Addr.page_size) in
      let paged_d = add_domain_exn sys ~name:"paged" ~guarantee:2 ~optimistic:0 in
      let ps = alloc_exn paged_d ~bytes:(8 * Addr.page_size) in
      in_domain sys nailed_d (fun () ->
          (match System.bind_nailed nailed_d ns with
          | Ok _ -> ()
          | Error e -> failwith (System.error_message e));
          for i = 0 to 3 do
            Domains.access nailed_d.System.dom (Stretch.page_base ns i) `Write
          done);
      let nailed_faults = Domains.faults_taken nailed_d.System.dom in
      in_domain sys paged_d (fun () ->
          let qos =
            Usbs.Qos.make ~period:(Time.ms 250) ~slice:(Time.ms 125) ()
          in
          (match
             System.bind_paged paged_d ~initial_frames:2 ~policy
               ~swap_bytes:(32 * Addr.page_size) ~qos ps ()
           with
          | Ok _ -> ()
          | Error e -> failwith (System.error_message e));
          for _ = 1 to 3 do
            for i = 0 to 7 do
              Domains.access paged_d.System.dom (Stretch.page_base ps i) `Write
            done
          done);
      (* The nailed domain's pages are still mapped: touching them
         takes no further faults under any policy. *)
      in_domain sys nailed_d (fun () ->
          for i = 0 to 3 do
            Domains.access nailed_d.System.dom (Stretch.page_base ns i) `Read
          done);
      check
        (Printf.sprintf "no new faults on nailed domain under %s" policy_str)
        nailed_faults
        (Domains.faults_taken nailed_d.System.dom))
    [ "fifo"; "clock"; "lru"; "wsclock" ]

(* Write-behind in the driver: dirty evictions park; faulting a parked
   page rescues it from the buffer with no disk traffic. *)
let writeback_rescue_in_driver () =
  let sys = small_sys () in
  let d = add_domain_exn sys ~name:"app" ~guarantee:2 ~optimistic:0 in
  let s = alloc_exn d ~bytes:(6 * Addr.page_size) in
  let policy =
    match Policy.Spec.of_string "fifo+wb4" with
    | Ok p -> p
    | Error e -> failwith e
  in
  let info =
    in_domain sys d (fun () ->
        let qos = Usbs.Qos.make ~period:(Time.ms 250) ~slice:(Time.ms 125) () in
        let _, h =
          match
            System.bind_paged d ~initial_frames:2 ~policy
              ~swap_bytes:(16 * Addr.page_size) ~qos s ()
          with
          | Ok x -> x
          | Error e -> failwith (System.error_message e)
        in
        (* Build a residency of one dirty page (0, rewritten after a
           round trip through swap) and one clean page (1, read back
           from swap). Faulting page 2 then parks dirty page 0 but
           takes clean page 1's frame — page 0 stays in the buffer,
           and touching it again must rescue it without disk I/O. *)
        for i = 0 to 3 do
          Domains.access d.System.dom (Stretch.page_base s i) `Write
        done;
        Domains.access d.System.dom (Stretch.page_base s 0) `Read;
        Domains.access d.System.dom (Stretch.page_base s 1) `Read;
        Domains.access d.System.dom (Stretch.page_base s 0) `Write;
        Domains.access d.System.dom (Stretch.page_base s 2) `Read;
        Domains.access d.System.dom (Stretch.page_base s 0) `Read;
        Sd_paged.info h)
  in
  checkb "rescue happened" true (info.Sd_paged.rescues >= 1);
  (* Three demand reads hit the disk (pages 0, 1, 2); the rescue of
     page 0 costs none. *)
  check "rescue costs no page-in" 3 info.Sd_paged.page_ins;
  checkb "flushes are batched" true
    (info.Sd_paged.wb_flushes >= 1
    && info.Sd_paged.wb_flushes < info.Sd_paged.page_outs)

(* Dontneed promises prompt release: dirty dropped pages must be
   flushed (not left parked holding their frames captive) by the time
   the advice call returns, even when the batch is not full. *)
let dontneed_flushes_writeback () =
  let sys = small_sys () in
  let d = add_domain_exn sys ~name:"app" ~guarantee:4 ~optimistic:0 in
  let s = alloc_exn d ~bytes:(6 * Addr.page_size) in
  let policy =
    match Policy.Spec.of_string "fifo+wb8" with
    | Ok p -> p
    | Error e -> failwith e
  in
  let info, free =
    in_domain sys d (fun () ->
        let qos = Usbs.Qos.make ~period:(Time.ms 250) ~slice:(Time.ms 125) () in
        let drv, h =
          match
            System.bind_paged d ~initial_frames:4 ~policy
              ~swap_bytes:(16 * Addr.page_size) ~qos s ()
          with
          | Ok x -> x
          | Error e -> failwith (System.error_message e)
        in
        for i = 0 to 3 do
          Domains.access d.System.dom (Stretch.page_base s i) `Write
        done;
        Sd_paged.advise h (Policy.Advice.Dontneed { page = 0; npages = 4 });
        (Sd_paged.info h, drv.Stretch_driver.free_frames ()))
  in
  (* Four dirty pages, batch of eight: without the end-of-range flush
     they would all sit parked with zero frames free. *)
  check "all four dirty pages written out" 4 info.Sd_paged.page_outs;
  check "all four frames back in the pool" 4 free;
  checkb "writes were coalesced" true
    (info.Sd_paged.wb_flushes >= 1 && info.Sd_paged.wb_flushes < 4)

(* End-to-end: the policy-compare experiment differentiates policies
   on miss rate without QoS violations. *)
let policy_compare_smoke () =
  let policies =
    List.map
      (fun s ->
        match Policy.Spec.of_string s with
        | Ok p -> p
        | Error e -> failwith e)
      [ "fifo"; "fifo+ra8" ]
  in
  let r =
    Experiments.Policy_compare.run ~duration:(Time.sec 20) ~policies ()
  in
  check "six cells (2 policies x 3 patterns)" 6
    (List.length r.Experiments.Policy_compare.rows);
  List.iter
    (fun row ->
      let open Experiments.Policy_compare in
      checkb
        (Printf.sprintf "%s/%s made progress" row.policy row.pattern)
        true (row.accesses > 0);
      checkb
        (Printf.sprintf "%s/%s miss rate sane" row.policy row.pattern)
        true
        (Float.is_nan row.miss_rate
        || (row.miss_rate >= 0.0 && row.miss_rate <= 1.5));
      check
        (Printf.sprintf "%s/%s no QoS violations" row.policy row.pattern)
        0 row.violations)
    r.Experiments.Policy_compare.rows;
  let miss policy pattern =
    let row =
      List.find
        (fun row ->
          row.Experiments.Policy_compare.policy = policy
          && row.Experiments.Policy_compare.pattern = pattern)
        r.Experiments.Policy_compare.rows
    in
    row.Experiments.Policy_compare.miss_rate
  in
  checkb "read-ahead cuts the sequential miss rate" true
    (miss "fifo+ra8" "seq" < miss "fifo" "seq")

let suite =
  [ ( "policy.replacement",
      [ qtest fifo_matches_queue_model;
        qtest victims_always_resident;
        Alcotest.test_case "clock gives a second chance" `Quick
          clock_gives_second_chance;
        Alcotest.test_case "lru evicts least recent" `Quick
          lru_evicts_least_recent;
        Alcotest.test_case "wsclock protects the working set" `Quick
          wsclock_protects_working_set ] );
    ( "policy.prefetch",
      [ Alcotest.test_case "stream window" `Quick stream_plan_is_fixed_window;
        Alcotest.test_case "adaptive sequential" `Quick
          adaptive_detects_sequential;
        Alcotest.test_case "adaptive stride" `Quick adaptive_detects_stride;
        Alcotest.test_case "adaptive random" `Quick adaptive_ignores_random;
        Alcotest.test_case "advice steers prefetch" `Quick
          advice_steers_prefetch ] );
    ( "policy.writeback",
      [ Alcotest.test_case "coalesces contiguous bloks" `Quick
          writeback_coalesces_contiguous;
        Alcotest.test_case "later runs rescuable during flush" `Quick
          writeback_rescuable_during_flush;
        Alcotest.test_case "commit at issue, release at completion" `Quick
          writeback_commit_at_issue;
        qtest writeback_read_your_writes;
        Alcotest.test_case "coalesced USD transactions" `Quick
          writeback_coalesces_usd_txns ] );
    ( "policy.driver",
      [ Alcotest.test_case "default policy matches seed trace" `Quick
          default_policy_matches_seed_trace;
        Alcotest.test_case "policies never evict nailed frames" `Quick
          policies_never_evict_nailed;
        Alcotest.test_case "write-behind rescue in driver" `Quick
          writeback_rescue_in_driver;
        Alcotest.test_case "Dontneed flushes write-behind" `Quick
          dontneed_flushes_writeback ] );
    ( "policy.compare",
      [ Alcotest.test_case "policy-compare smoke" `Slow policy_compare_smoke ]
    ) ]
