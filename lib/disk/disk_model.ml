open Engine

type op = Read | Write

(* A read-ahead segment: the drive has prefetched (or will trivially
   prefetch, since it streams faster than any one client consumes) the
   blocks from [next] onwards of one sequential stream. A read that
   starts exactly at [next] is a cache hit. *)
type segment = { mutable next : int; mutable lru : int }

type t = {
  p : Disk_params.t;
  segments : segment array;
  (* Durable per-LBA contents — what is actually on the platter. Only
     crash-consistency clients (journal records, swap-slot stamps)
     store bytes here; timing is unaffected. *)
  contents : (int, string) Hashtbl.t;
  mutable cur_cyl : int;
  mutable clock : int; (* LRU tick *)
  mutable cache_hits : int;
  mutable mechanical : int;
  mutable seeks : int;
}

let create ?(params = Disk_params.vp3221) () =
  { p = params;
    segments = Array.init params.Disk_params.cache_segments
        (fun _ -> { next = -1; lru = 0 });
    contents = Hashtbl.create 1024;
    cur_cyl = 0; clock = 0; cache_hits = 0; mechanical = 0; seeks = 0 }

let params t = t.p

let find_segment t lba =
  let n = Array.length t.segments in
  let rec scan i = if i >= n then None
    else if t.segments.(i).next = lba then Some t.segments.(i)
    else scan (i + 1)
  in
  scan 0

let victim_segment t =
  let v = ref t.segments.(0) in
  Array.iter (fun s -> if s.lru < !v.lru then v := s) t.segments;
  !v

let touch t s =
  t.clock <- t.clock + 1;
  s.lru <- t.clock

let bus_time t nblocks =
  let bytes = float_of_int (nblocks * t.p.Disk_params.block_size) in
  Time.of_us_float (bytes /. t.p.Disk_params.bus_rate *. 1e6)

let media_time t nblocks =
  (* One track per revolution. *)
  nblocks * t.p.Disk_params.rotation / Disk_params.blocks_per_track t.p

(* Rotational position is a pure function of absolute time. *)
let rotational_wait t ~at lba =
  let rot = t.p.Disk_params.rotation in
  let sector = Disk_params.sector_in_track t.p lba in
  let target = sector * rot / Disk_params.blocks_per_track t.p in
  let angle = at mod rot in
  let w = target - angle in
  if w < 0 then w + rot else w

let mechanical_service t ~now ~lba ~nblocks =
  let p = t.p in
  let cyl = Disk_params.cylinder_of_lba p lba in
  let dist = abs (cyl - t.cur_cyl) in
  if dist > 0 then t.seeks <- t.seeks + 1;
  let seek = Disk_params.seek_time p dist in
  let at_cyl = now + p.Disk_params.controller_overhead + seek in
  let rot_wait = rotational_wait t ~at:at_cyl lba in
  (* Track/head switches inside a multi-track transfer are folded into
     the media rate (one track per revolution already accounts for
     them at page-sized transactions). *)
  let xfer = media_time t nblocks in
  t.cur_cyl <- Disk_params.cylinder_of_lba p (lba + nblocks - 1);
  t.mechanical <- t.mechanical + 1;
  p.Disk_params.controller_overhead + seek + rot_wait + xfer

type error = { bad_lba : int; persistent : bool }

let serve t ~now ~op ~lba ~nblocks =
  match op with
  | Write ->
    (* Write cache disabled (the paper's configuration): every write is
       mechanical. A sequential write that arrives after the target
       sector has passed under the head waits most of a revolution. *)
    mechanical_service t ~now ~lba ~nblocks
  | Read ->
    (match find_segment t lba with
    | Some seg ->
      (* Read-ahead hit: data is already (or is being) streamed into
         the segment buffer; cost is command overhead plus transfer,
         paced by the slower of bus and media. *)
      touch t seg;
      seg.next <- lba + nblocks;
      t.cache_hits <- t.cache_hits + 1;
      (* The drive keeps streaming this track; the head follows. *)
      t.cur_cyl <- Disk_params.cylinder_of_lba t.p (lba + nblocks - 1);
      t.p.Disk_params.controller_overhead
      + max (bus_time t nblocks) (media_time t nblocks)
    | None ->
      let dur = mechanical_service t ~now ~lba ~nblocks in
      let seg = victim_segment t in
      touch t seg;
      seg.next <- lba + nblocks;
      dur)

let service_result t ~now ~op ~lba ~nblocks =
  if nblocks <= 0 then invalid_arg "Disk_model.service: nblocks <= 0";
  if lba < 0 || lba + nblocks > t.p.Disk_params.nblocks then
    invalid_arg
      (Printf.sprintf "Disk_model.service: range [%d,%d) out of bounds" lba
         (lba + nblocks));
  let inj_op =
    match op with Read -> Inject.Read | Write -> Inject.Write
  in
  match Inject.disk ~op:inj_op ~lba ~nblocks with
  | Inject.Pass -> Ok (serve t ~now ~op ~lba ~nblocks)
  | Inject.Spike extra -> Ok (serve t ~now ~op ~lba ~nblocks + extra)
  | Inject.Media_error { bad_lba; persistent } ->
    (* The head still travels and the sector is still attempted (for a
       persistent error the drive retries internally, costing at least
       as much as a clean transfer), so the mechanical time is paid. *)
    let dur = serve t ~now ~op ~lba ~nblocks in
    Error (dur, { bad_lba; persistent })

let service t ~now ~op ~lba ~nblocks =
  match service_result t ~now ~op ~lba ~nblocks with
  | Ok dur -> dur
  | Error (_, e) ->
    (* Only reachable under an armed injection plan; hardened callers
       use [service_result]. *)
    failwith
      (Printf.sprintf "Disk_model.service: injected media error at lba %d"
         e.bad_lba)

let store t ~lba s = Hashtbl.replace t.contents lba s
let load t ~lba = Hashtbl.find_opt t.contents lba
let erase t ~lba = Hashtbl.remove t.contents lba

let cache_hits t = t.cache_hits
let mechanical_ops t = t.mechanical
let seeks t = t.seeks

let pp_stats ppf t =
  Format.fprintf ppf "cache-hits=%d mechanical=%d seeks=%d" t.cache_hits
    t.mechanical t.seeks
