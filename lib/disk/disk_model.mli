(** Mechanical disk model with a segmented read-ahead cache.

    Deterministic: the rotational position is a pure function of
    simulated time, so a run always produces the same transaction
    timings. Two service regimes emerge, matching the paper's traces:

    - {b Sequential reads} hit the read-ahead cache (the drive streams
      ahead of a sequential client between host transactions), so each
      page-sized read costs controller overhead plus transfer — about a
      millisecond, "all transactions roughly the same time" (Fig. 7).
    - {b Writes} (write cache disabled) and non-sequential reads pay
      seek plus rotational latency plus media transfer. Back-to-back
      sequential writes separated by even a small host gap miss their
      rotational position and wait most of a revolution — the ≈10 ms
      transactions of Fig. 8, "some clearly taking an additional
      rotational delay".

    The model is single-spindle and caller-serialised: the USD executes
    one transaction at a time, which is also what the paper's scheduler
    does. *)

open Engine

type op = Read | Write

type t

val create : ?params:Disk_params.t -> unit -> t

val params : t -> Disk_params.t

type error = { bad_lba : int; persistent : bool }
(** A media error injected by {!Inject}: the LBA that failed, and
    whether retrying can possibly succeed. *)

val service_result :
  t ->
  now:Time.t ->
  op:op ->
  lba:int ->
  nblocks:int ->
  (Time.span, Time.span * error) result
(** Time to complete the transaction starting at [now], updating head
    position and cache state. [Error (elapsed, e)] reports an injected
    media error; [elapsed] is the mechanical time burned discovering it
    (the head still travels, the drive still retries internally).
    Raises [Invalid_argument] if the block range is outside the disk. *)

val service : t -> now:Time.t -> op:op -> lba:int -> nblocks:int -> Time.span
(** [service_result] for callers that predate the error path; raises
    [Failure] on an injected media error (unreachable while {!Inject}
    is disarmed). *)

(** {2 Durable contents}

    The platter as a byte store: crash-consistency clients (the
    {!Usbs.Journal}, swap-slot stamps) record what actually persisted,
    independent of transaction timing. A torn write stores only the
    prefix that made it to the media; a remount reads back whatever
    survives. Bloks never written load as [None]. *)

val store : t -> lba:int -> string -> unit
val load : t -> lba:int -> string option
val erase : t -> lba:int -> unit

(** {2 Introspection} *)

val cache_hits : t -> int
val mechanical_ops : t -> int
val seeks : t -> int
(** Transactions that required a non-zero cylinder move. *)

val pp_stats : Format.formatter -> t -> unit
