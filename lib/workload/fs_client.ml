open Engine
open Core

type t = {
  bytes : int ref;
  watcher : Sampler.t;
  pump : Proc.t;
  client : Usbs.Usd.client;
}

let page_blocks = 16 (* 8 KB pages of 512-byte blocks *)

let usd_client t = t.client

let bytes_read t = !(t.bytes)
let sampler t = t.watcher
let sustained_mbit t = Sampler.sustained t.watcher ()

let stop t =
  Proc.kill t.pump;
  Sampler.stop t.watcher

let start sys ~name ~qos ?(depth = 16) ?(sample_period = Time.sec 5) () =
  let u = System.usd sys in
  match Usbs.Usd.admit u ~name ~qos ~channel_depth:(max 64 (2 * depth)) () with
  | Error _ as e -> e
  | Ok client ->
    let fs_start, fs_len = System.fs_partition sys in
    let bytes = ref 0 in
    let sim = System.sim sys in
    let pump =
      Proc.spawn ~name:(name ^ ".pump") sim (fun () ->
          let outstanding = Queue.create () in
          let pos = ref 0 in
          let rec loop () =
            let lba = fs_start + !pos in
            pos := !pos + page_blocks;
            if !pos + page_blocks > fs_len then pos := 0;
            (match
               Usbs.Usd.submit u client Usbs.Usd.Read ~lba
                 ~nblocks:page_blocks
             with
            | Ok ivar -> Queue.add ivar outstanding
            | Error `Retired -> ());
            if Queue.length outstanding >= depth then begin
              (* Injected errors on file-system traffic are tolerated:
                 the streamer only measures throughput. *)
              ignore (Sync.Ivar.read (Queue.pop outstanding) : Usbs.Usd.status);
              bytes := !bytes + (page_blocks * 512)
            end;
            loop ()
          in
          loop ())
    in
    let watcher =
      Sampler.start sim ~name:(name ^ ".watch") ~period:sample_period
        ~bytes:(fun () -> !bytes) ()
    in
    Ok { bytes; watcher; pump; client }
