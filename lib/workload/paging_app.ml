open Engine
open Hw
open Core

type mode = Paging_in | Paging_out

type gen = {
  g_name : string;
  g_make : unit -> rng:Rng.t -> npages:int -> int;
}

type pattern = Sequential | Random | Hotspot | Ext of gen

(* Hook point: workload pattern names ("seq"/"rand"/"hot" and any
   registered extension) resolve here instead of a closed match. *)
let pattern_axis : pattern Registry.axis =
  Registry.axis ~name:"workload"
    ~doc:"access patterns a paging app can follow (Paging_app.pattern)"

let () =
  let reg name doc p =
    Registry.register_exn pattern_axis
      (Registry.manifest ~name ~doc ())
      (fun a ->
        if a.Registry.Spec.args = [] && a.Registry.Spec.params = [] then Ok p
        else Error (Printf.sprintf "%s takes no parameter" name))
  in
  reg "seq" "wrap-around linear scan (the paper's workload)" Sequential;
  reg "rand" "uniform page per access" Random;
  reg "hot" "90% of accesses in the first eighth of the stretch" Hotspot

let pattern_of_string s = Registry.resolve pattern_axis s

let pattern_name = function
  | Sequential -> "seq"
  | Random -> "rand"
  | Hotspot -> "hot"
  | Ext g -> g.g_name

type t = {
  d : System.domain;
  stretch : Stretch.t;
  handle : Sd_paged.handle;
  pattern : pattern;
  (* Instantiated once per app (registry isolation rule: pattern
     extensions never share state between apps). *)
  pattern_gen : (rng:Rng.t -> npages:int -> int) option;
  rng : Rng.t;
  bytes : int ref;
  accesses : int ref;
  watcher : Sampler.t;
  (* Instant at which the measured loop began (init/populate done). *)
  loop_start : Time.t option ref;
  start_info : Sd_paged.info option ref;
  start_accesses : int ref;
}

let domain t = t.d
let bytes_processed t = !(t.bytes)
let sampler t = t.watcher
let in_measured_loop t = !(t.loop_start) <> None
let loop_started_at t = !(t.loop_start)

let sustained_mbit t =
  match !(t.loop_start) with
  | None -> nan
  | Some start -> Sampler.sustained t.watcher ~after:(Time.add start (Time.sec 5)) ()

let paging_info t = Sd_paged.info t.handle
let policy_name t = Sd_paged.policy_name t.handle
let advise t adv = Sd_paged.advise t.handle adv
let swap_extent t = Sd_paged.swap_extent t.handle

let measured_accesses t =
  match !(t.start_info) with
  | None -> 0
  | Some _ -> !(t.accesses) - !(t.start_accesses)

let measured_info t =
  let now = paging_info t in
  match !(t.start_info) with
  | None -> now
  | Some s ->
    { Sd_paged.page_ins = now.page_ins - s.page_ins;
      page_outs = now.page_outs - s.page_outs;
      demand_zeros = now.demand_zeros - s.demand_zeros;
      evictions = now.evictions - s.evictions;
      prefetched = now.prefetched - s.prefetched;
      prefetch_hits = now.prefetch_hits - s.prefetch_hits;
      prefetch_waste = now.prefetch_waste - s.prefetch_waste;
      wb_flushes = now.wb_flushes - s.wb_flushes;
      rescues = now.rescues - s.rescues;
      lost_pages = now.lost_pages - s.lost_pages;
      rebloks = now.rebloks - s.rebloks;
      shed_frames = now.shed_frames - s.shed_frames;
      restored_pages = now.restored_pages - s.restored_pages;
      wb_degraded = now.wb_degraded;
      swap_exhausted = now.swap_exhausted;
      crashed = now.crashed }

let stop t = Domains.kill t.d.System.dom

let touch t page ~access ~compute_per_page =
  let dom = t.d.System.dom in
  Domains.access dom (Stretch.page_base t.stretch page) access;
  Domains.consume_cpu dom compute_per_page;
  t.bytes := !(t.bytes) + Addr.page_size;
  t.accesses := !(t.accesses) + 1

(* Touch every page of the stretch once, in order, charging the
   trivial per-page computation — used for initialisation and swap
   population regardless of the measured pattern. *)
let sweep_seq t ~access ~compute_per_page =
  let npages = Stretch.npages t.stretch in
  for i = 0 to npages - 1 do
    touch t i ~access ~compute_per_page
  done

(* One round of [npages] accesses following the app's pattern — the
   same volume of work per round for every pattern, so sustained
   throughputs are comparable. *)
let sweep_pattern t ~access ~compute_per_page =
  let npages = Stretch.npages t.stretch in
  match t.pattern with
  | Sequential -> sweep_seq t ~access ~compute_per_page
  | Random ->
    for _ = 1 to npages do
      touch t (Rng.int t.rng npages) ~access ~compute_per_page
    done
  | Hotspot ->
    (* 90 % of accesses land in the first eighth of the stretch. *)
    let hot = max 1 (npages / 8) in
    for _ = 1 to npages do
      let p =
        if Rng.int t.rng 10 < 9 then Rng.int t.rng hot
        else Rng.int t.rng npages
      in
      touch t p ~access ~compute_per_page
    done
  | Ext g ->
    let next =
      match t.pattern_gen with Some f -> f | None -> g.g_make ()
    in
    for _ = 1 to npages do
      let p = next ~rng:t.rng ~npages in
      touch t (((p mod npages) + npages) mod npages) ~access ~compute_per_page
    done

let begin_measured t =
  t.loop_start := Some (Sim.now (Proc.sim (Proc.self ())));
  t.start_info := Some (paging_info t);
  t.start_accesses := !(t.accesses)

let run_app t ~mode ~compute_per_page =
  (* Initialisation: sequential read, demand-zeroing every page. The
     byte counter keeps running; measurement cuts off at [loop_start]. *)
  sweep_seq t ~access:`Read ~compute_per_page;
  match mode with
  | Paging_in ->
    (* Populate the swap file by dirtying every page (sequentially, so
       pages get consecutive bloks and read-ahead has runs to find)... *)
    sweep_seq t ~access:`Write ~compute_per_page;
    begin_measured t;
    (* ...then page it back in, over and over, following the pattern. *)
    let rec loop () =
      sweep_pattern t ~access:`Read ~compute_per_page;
      loop ()
    in
    loop ()
  | Paging_out ->
    begin_measured t;
    let rec loop () =
      sweep_pattern t ~access:`Write ~compute_per_page;
      loop ()
    in
    loop ()

let start sys ~name ~mode ~qos ?(vm_bytes = 4 * 1024 * 1024)
    ?(phys_frames = 2) ?(optimistic = 0) ?(swap_bytes = 16 * 1024 * 1024)
    ?(compute_per_page = Time.us 20) ?(sample_period = Time.sec 5)
    ?(cpu_slice = Time.of_ms_float 1.5) ?readahead ?policy ?spare_pages
    ?backing ?(pattern = Sequential) ?(advice = []) () =
  match
    System.add_domain sys ~name ~cpu_period:(Time.ms 10) ~cpu_slice
      ~guarantee:phys_frames ~optimistic ()
  with
  | Error e -> Error (System.error_message e)
  | Ok d ->
    (match System.alloc_stretch d ~bytes:vm_bytes () with
    | Error _ as e -> e
    | Ok stretch ->
      let forgetful = mode = Paging_out in
      let started = Sync.Ivar.create () in
      (* Driver creation allocates guaranteed frames and negotiates
         disk QoS, so it runs in the application's own main thread, as
         a real self-paging application's would. *)
      ignore
        (Domains.spawn_thread d.System.dom ~name:"main" (fun () ->
             match
               System.bind_paged d ~forgetful ~initial_frames:phys_frames
                 ?readahead ?policy ?spare_pages ?backing ~swap_bytes ~qos
                 stretch ()
             with
             | Error e ->
               Sync.Ivar.fill started (Error (System.error_message e))
             | Ok (_driver, handle) ->
               let bytes = ref 0 in
               let watcher =
                 Sampler.start (System.sim sys) ~name:(name ^ ".watch")
                   ~period:sample_period ~bytes:(fun () -> !bytes) ()
               in
               let t =
                 { d; stretch; handle; pattern;
                   pattern_gen =
                     (match pattern with
                     | Ext g -> Some (g.g_make ())
                     | Sequential | Random | Hotspot -> None);
                   rng = Rng.create ~seed:(Hashtbl.hash name land 0xffffff);
                   bytes; accesses = ref 0; watcher;
                   loop_start = ref None; start_info = ref None;
                   start_accesses = ref 0 }
               in
               List.iter (Sd_paged.advise handle) advice;
               Sync.Ivar.fill started (Ok t);
               run_app t ~mode ~compute_per_page));
      (* Drive the simulation just far enough for setup to finish (the
         caller typically invokes [start] from outside the sim). *)
      let sim = System.sim sys in
      let fuel = ref 1_000_000 in
      while Sync.Ivar.peek started = None && !fuel > 0 do
        if Sim.step sim then decr fuel else fuel := 0
      done;
      (match Sync.Ivar.peek started with
      | Some r -> r
      | None -> Error "application setup did not complete"))
