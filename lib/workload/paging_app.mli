(** The paper's test application.

    Creates a paged stretch driver with a tiny amount of physical
    memory (16 KB — two frames) and 16 MB of swap, allocates a 4 MB
    stretch, binds it, and then:

    - initialises by sequentially reading every byte (each page demand
      zeroed);
    - for the {b paging-in} experiment (Fig. 7): writes every byte
      (populating the swap file), then loops reading pages following
      the configured {!pattern};
    - for the {b paging-out} experiment (Fig. 8): runs a forgetful
      stretch driver and loops writing pages.

    A trivial amount of computation is charged per page; a watch thread
    logs bytes processed every 5 seconds. By default no pre-paging is
    performed despite the predictable reference pattern — pass
    [?policy] to exercise the pluggable paging policies (the app is the
    harness for the policy-compare experiment). *)

open Engine
open Core

type mode = Paging_in | Paging_out

type gen = {
  g_name : string;  (** the name {!pattern_name} reports *)
  g_make : unit -> rng:Rng.t -> npages:int -> int;
      (** build a {e fresh} per-app chooser (no state shared between
          apps); called once per access with the app's seeded RNG, it
          returns the page to touch (reduced modulo [npages]) *)
}
(** A registered workload-pattern extension: how the pages of one
    round of [npages] accesses are chosen. *)

type pattern =
  | Sequential  (** wrap-around linear scan (the paper's workload) *)
  | Random  (** uniform page per access *)
  | Hotspot
      (** 90 % of accesses in the first eighth of the stretch, the
          rest uniform — a cacheable working set *)
  | Ext of gen  (** a registered extension ({!pattern_axis}) *)

val pattern_axis : pattern Registry.axis
(** Hook point for pattern names: the built-ins register as ["seq"],
    ["rand"] and ["hot"], and a new workload (say ["zipf"]) registers
    an {!Ext} here — no edit to this module. *)

val pattern_of_string : string -> (pattern, Registry.error) result
(** Resolve a pattern name through the registry. *)

val pattern_name : pattern -> string
(** ["seq"], ["rand"], ["hot"], or the extension's name. *)

type t

val start :
  System.t -> name:string -> mode:mode -> qos:Usbs.Qos.t ->
  ?vm_bytes:int -> ?phys_frames:int -> ?optimistic:int -> ?swap_bytes:int ->
  ?compute_per_page:Time.span -> ?sample_period:Time.span ->
  ?cpu_slice:Time.span -> ?readahead:int -> ?policy:Policy.Spec.t ->
  ?spare_pages:int ->
  ?backing:(Usbs.Sfs.swapfile -> Tier.Backing.t) ->
  ?pattern:pattern -> ?advice:Policy.Advice.t list ->
  unit -> (t, string) result
(** [advice] is applied through the driver's advice channel right
    after binding, before the first access. [optimistic] (default 0)
    registers an optimistic frame quota beyond the guarantee —
    revocation-storm fodder for the chaos experiment. [spare_pages]
    reserves bad-blok remap spares in the swap extent. [backing]
    passes through to {!System.bind_paged} — page through a tiered
    backing store instead of straight to the swapfile. *)

val domain : t -> System.domain
val bytes_processed : t -> int
val sampler : t -> Sampler.t
val sustained_mbit : t -> float
(** Mean Mbit/s over samples taken after the measured loop began
    ([nan] while still initialising). *)

val in_measured_loop : t -> bool
val loop_started_at : t -> Time.t option
val paging_info : t -> Sd_paged.info
val policy_name : t -> string
val advise : t -> Policy.Advice.t -> unit

val swap_extent : t -> int * int
(** [(first_lba, nblocks)] of the app's swap extent — what a chaos
    plan scopes its disk faults to. *)

val measured_accesses : t -> int
(** Page accesses made since the measured loop began (0 before). *)

val measured_info : t -> Sd_paged.info
(** Driver statistics accumulated since the measured loop began, i.e.
    with initialisation and swap population subtracted out —
    [measured_info.page_ins / measured_accesses] is the measured-loop
    miss rate. *)

val stop : t -> unit
(** Kill the application's domain. *)
