exception Killed

type state = Running | Dead

type t = {
  sim : Sim.t;
  name : string;
  mutable state : state;
  mutable kill_requested : bool;
  (* Wakes the process with [Killed] if it is currently suspended. *)
  mutable interrupt : (unit -> unit) option;
  mutable terminate_hooks : (unit -> unit) list;
}

type _ Effect.t += Suspend : (('a -> unit) -> unit) -> 'a Effect.t

let current : t option ref = ref None

let self () =
  match !current with
  | Some p -> p
  (* API misuse, not a runtime condition: [self] outside a spawned
     process has no sensible value to return. *)
  | None -> failwith "Proc.self: not inside a process"

let sim p = p.sim
let name p = p.name

let current_sim () = sim (self ())

let is_alive p = p.state <> Dead

let finish p =
  if p.state <> Dead then begin
    p.state <- Dead;
    p.interrupt <- None;
    let hooks = List.rev p.terminate_hooks in
    p.terminate_hooks <- [];
    List.iter (fun f -> f ()) hooks
  end

let on_terminate p f =
  if p.state = Dead then f () else p.terminate_hooks <- f :: p.terminate_hooks

(* Run [f] with [p] installed as the current process, restoring the
   previous one afterwards (processes can wake each other, so resumes
   nest). *)
let with_current p f =
  let saved = !current in
  current := Some p;
  Fun.protect ~finally:(fun () -> current := saved) f

let handler p : (unit, unit) Effect.Deep.handler =
  { retc = (fun () -> finish p);
    exnc =
      (fun e ->
        finish p;
        match e with Killed -> () | e -> raise e);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Suspend register ->
          Some
            (fun (k : (a, unit) Effect.Deep.continuation) ->
              if p.kill_requested then Effect.Deep.discontinue k Killed
              else begin
                let fired = ref false in
                let resume_with run =
                  if not !fired && p.state <> Dead then begin
                    fired := true;
                    p.interrupt <- None;
                    ignore
                      (Sim.after p.sim 0 (fun () ->
                           with_current p (fun () -> run ())))
                  end
                in
                let die () =
                  resume_with (fun () -> Effect.Deep.discontinue k Killed)
                in
                p.interrupt <- Some die;
                let wake v =
                  if p.kill_requested then die ()
                  else resume_with (fun () -> Effect.Deep.continue k v)
                in
                register wake
              end)
        | _ -> None) }

let spawn ?(name = "proc") simulator body =
  let p =
    { sim = simulator; name; state = Running; kill_requested = false;
      interrupt = None; terminate_hooks = [] }
  in
  ignore
    (Sim.after simulator 0 (fun () ->
         if p.kill_requested then finish p
         else with_current p (fun () -> Effect.Deep.match_with body () (handler p))));
  p

let suspend register = Effect.perform (Suspend register)

(* If the process is killed mid-sleep, [Killed] is raised at the
   suspension point; cancel the pending timer so it does not keep the
   simulation clock advancing. *)
let sleep_at schedule =
  let h = ref None in
  try suspend (fun wake -> h := Some (schedule (fun () -> wake ())))
  with Killed as e ->
    (match !h with Some h -> Sim.cancel h | None -> ());
    raise e

let sleep d =
  if d < 0 then invalid_arg "Proc.sleep: negative duration";
  let s = current_sim () in
  sleep_at (fun fire -> Sim.after s d fire)

let sleep_until t =
  let s = current_sim () in
  let t = Time.max t (Sim.now s) in
  sleep_at (fun fire -> Sim.at s t fire)

let yield () = sleep 0

let kill p =
  if p.state <> Dead then begin
    p.kill_requested <- true;
    match p.interrupt with
    | Some intr -> intr ()
    | None ->
      (* Running right now, or not yet started: the flag is observed at
         the next suspension point (or at the start event). *)
      ()
  end

let join p =
  if p.state = Dead then ()
  else suspend (fun wake -> on_terminate p (fun () -> wake ()))
