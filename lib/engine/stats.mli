(** Online statistics and simple fixed-bucket histograms. *)

type t
(** A running summary: count, mean, variance (Welford), min, max, and —
    when created with [~keep_samples:true] — exact percentiles. *)

val create : ?keep_samples:bool -> unit -> t

val add : t -> float -> unit

val count : t -> int
val total : t -> float
val mean : t -> float
(** 0.0 when empty. *)

val variance : t -> float
(** Sample variance; 0.0 with fewer than two observations. *)

val stddev : t -> float
val min_value : t -> float
(** [nan] when empty. *)

val max_value : t -> float

val percentile : t -> float -> float
(** [percentile t p] with [p] in [0,100]; requires [keep_samples];
    [nan] when empty. Linear interpolation between order statistics:
    [p = 0] is the minimum, [p = 100] the maximum, and a single-sample
    summary returns that sample for every [p].

    @raise Invalid_argument when [p] is outside [0,100] (or NaN), or
    when samples were not kept. *)

val pp : Format.formatter -> t -> unit

module Series : sig
  (** Time-stamped scalar series, e.g. the bandwidth-vs-time plots of
      Figures 7–9. *)

  type nonrec t

  val create : unit -> t
  val add : t -> Time.t -> float -> unit
  val length : t -> int
  val to_list : t -> (Time.t * float) list
  val values : t -> float list

  val mean_after : t -> Time.t -> float
  (** Mean of the values sampled at or after the given instant — used
      to report sustained (post-warm-up) bandwidth. [nan] if none. *)
end
