type 'a node = {
  v : 'a;
  mutable prev : 'a node option;
  mutable next : 'a node option;
  mutable linked : bool;
}

type 'a t = {
  mutable first : 'a node option;
  mutable last : 'a node option;
  mutable count : int;
}

let create () = { first = None; last = None; count = 0 }
let make_node v = { v; prev = None; next = None; linked = false }
let value n = n.v
let active n = n.linked
let length t = t.count
let is_empty t = t.count = 0

let push_front t n =
  if n.linked then invalid_arg "Ilist.push_front: node already linked";
  n.prev <- None;
  n.next <- t.first;
  (match t.first with Some f -> f.prev <- Some n | None -> t.last <- Some n);
  t.first <- Some n;
  n.linked <- true;
  t.count <- t.count + 1

let push_back t n =
  if n.linked then invalid_arg "Ilist.push_back: node already linked";
  n.next <- None;
  n.prev <- t.last;
  (match t.last with Some l -> l.next <- Some n | None -> t.first <- Some n);
  t.last <- Some n;
  n.linked <- true;
  t.count <- t.count + 1

let remove t n =
  if not n.linked then invalid_arg "Ilist.remove: node not linked";
  (match n.prev with Some p -> p.next <- n.next | None -> t.first <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.last <- n.prev);
  n.prev <- None;
  n.next <- None;
  n.linked <- false;
  t.count <- t.count - 1

let move_front t n =
  remove t n;
  push_front t n

let move_back t n =
  remove t n;
  push_back t n

let front t = t.first
let back t = t.last

let iter f t =
  let rec go = function
    | None -> ()
    | Some n ->
      let next = n.next in
      f n.v;
      go next
  in
  go t.first

let fold f acc t =
  let rec go acc = function
    | None -> acc
    | Some n ->
      let next = n.next in
      go (f acc n.v) next
  in
  go acc t.first

let exists p t =
  let rec go = function
    | None -> false
    | Some n -> p n.v || go n.next
  in
  go t.first

let to_list t = List.rev (fold (fun acc v -> v :: acc) [] t)
