(** Intrusive doubly-linked lists.

    A node is allocated once per element and handed back to the
    caller, who stores it alongside (or inside) the element; removal
    and repositioning through the node are O(1), with no scanning and
    no per-operation allocation. Iteration visits nodes front to back
    in whatever order pushes and moves have arranged, so a list that
    is only ever [push_back]ed iterates in insertion order — the
    property the schedulers rely on for deterministic trace replay.

    Nodes are single-membership: pushing a node that is already on a
    list raises [Invalid_argument]. A removed node may be pushed
    again. *)

type 'a t
type 'a node

val create : unit -> 'a t
val make_node : 'a -> 'a node

val value : 'a node -> 'a
val active : 'a node -> bool
(** [active n] is true while [n] is linked into some list. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val push_front : 'a t -> 'a node -> unit
val push_back : 'a t -> 'a node -> unit

val remove : 'a t -> 'a node -> unit
(** O(1). Raises [Invalid_argument] if the node is not linked. *)

val move_front : 'a t -> 'a node -> unit
val move_back : 'a t -> 'a node -> unit
(** O(1) reposition of a linked node within the same list. *)

val front : 'a t -> 'a node option
val back : 'a t -> 'a node option

val iter : ('a -> unit) -> 'a t -> unit
val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val exists : ('a -> bool) -> 'a t -> bool
val to_list : 'a t -> 'a list
(** Front to back. [iter]/[fold]/[to_list] must not add or remove
    nodes mid-walk, except for the node currently visited. *)
