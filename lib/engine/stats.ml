type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable total : float;
  mutable minv : float;
  mutable maxv : float;
  samples : float Dynarray.t option;
}

let create ?(keep_samples = false) () =
  { n = 0; mean = 0.0; m2 = 0.0; total = 0.0; minv = nan; maxv = nan;
    samples = (if keep_samples then Some (Dynarray.create ()) else None) }

let add t x =
  t.n <- t.n + 1;
  t.total <- t.total +. x;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if t.n = 1 then begin
    t.minv <- x;
    t.maxv <- x
  end
  else begin
    if x < t.minv then t.minv <- x;
    if x > t.maxv then t.maxv <- x
  end;
  match t.samples with Some d -> Dynarray.add_last d x | None -> ()

let count t = t.n
let total t = t.total
let mean t = if t.n = 0 then 0.0 else t.mean

let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)
let stddev t = sqrt (variance t)
let min_value t = t.minv
let max_value t = t.maxv

let percentile t p =
  if Float.is_nan p || p < 0.0 || p > 100.0 then
    invalid_arg "Stats.percentile: p outside [0, 100]";
  match t.samples with
  | None -> invalid_arg "Stats.percentile: samples not kept"
  | Some d ->
    let n = Dynarray.length d in
    if n = 0 then nan
    else begin
      let a = Dynarray.to_array d in
      Array.sort compare a;
      let rank = p /. 100.0 *. float_of_int (n - 1) in
      let lo = int_of_float (floor rank) in
      let hi = int_of_float (ceil rank) in
      if lo = hi then a.(lo)
      else begin
        let frac = rank -. float_of_int lo in
        (a.(lo) *. (1.0 -. frac)) +. (a.(hi) *. frac)
      end
    end

let pp ppf t =
  Format.fprintf ppf "n=%d mean=%.3f sd=%.3f min=%.3f max=%.3f" t.n (mean t)
    (stddev t) t.minv t.maxv

module Series = struct
  type t = { times : Time.t Dynarray.t; vals : float Dynarray.t }

  let create () = { times = Dynarray.create (); vals = Dynarray.create () }

  let add t time v =
    Dynarray.add_last t.times time;
    Dynarray.add_last t.vals v

  let length t = Dynarray.length t.times

  let to_list t =
    List.init (length t) (fun i ->
        (Dynarray.get t.times i, Dynarray.get t.vals i))

  let values t = Dynarray.to_list t.vals

  let mean_after t cutoff =
    let sum = ref 0.0 and n = ref 0 in
    for i = 0 to length t - 1 do
      if Dynarray.get t.times i >= cutoff then begin
        sum := !sum +. Dynarray.get t.vals i;
        incr n
      end
    done;
    if !n = 0 then nan else !sum /. float_of_int !n
end
