type state = Unused | Mapped | Nailed

type entry = {
  mutable owner : int;
  mutable width : int;
  mutable st : state;
  mutable refs : int;
}

type t = entry array

let no_owner = -1

let create ~nframes =
  Array.init nframes (fun _ ->
      { owner = no_owner; width = Addr.page_shift; st = Unused; refs = 0 })

let nframes t = Array.length t

let check t pfn =
  if pfn < 0 || pfn >= Array.length t then
    invalid_arg (Printf.sprintf "Ramtab: pfn %d out of range" pfn)

let set_owner t ~pfn ~owner ~width =
  check t pfn;
  let e = t.(pfn) in
  e.owner <- owner;
  e.width <- width;
  e.st <- Unused;
  e.refs <- 0

let clear_owner t ~pfn =
  check t pfn;
  let e = t.(pfn) in
  if e.st <> Unused then
    invalid_arg (Printf.sprintf "Ramtab.clear_owner: pfn %d is in use" pfn);
  if e.refs <> 0 then
    invalid_arg (Printf.sprintf "Ramtab.clear_owner: pfn %d is shared" pfn);
  e.owner <- no_owner;
  e.width <- Addr.page_shift

let owner t ~pfn =
  check t pfn;
  let o = t.(pfn).owner in
  if o = no_owner then None else Some o

let width t ~pfn =
  check t pfn;
  t.(pfn).width

let state t ~pfn =
  check t pfn;
  t.(pfn).st

let set_state t ~pfn st =
  check t pfn;
  t.(pfn).st <- st

let refs t ~pfn =
  check t pfn;
  t.(pfn).refs

let is_shared t ~pfn =
  check t pfn;
  t.(pfn).refs > 0

let add_ref t ~pfn =
  check t pfn;
  let e = t.(pfn) in
  if e.owner = no_owner then
    invalid_arg (Printf.sprintf "Ramtab.add_ref: pfn %d has no owner" pfn);
  e.refs <- e.refs + 1

let drop_ref t ~pfn =
  check t pfn;
  let e = t.(pfn) in
  if e.refs <= 0 then
    invalid_arg (Printf.sprintf "Ramtab.drop_ref: pfn %d is not shared" pfn);
  e.refs <- e.refs - 1;
  e.refs

let is_available_for_mapping t ~pfn ~domain =
  pfn >= 0 && pfn < Array.length t
  &&
  let e = t.(pfn) in
  e.owner = domain && e.st = Unused

let pp_state ppf = function
  | Unused -> Format.pp_print_string ppf "unused"
  | Mapped -> Format.pp_print_string ppf "mapped"
  | Nailed -> Format.pp_print_string ppf "nailed"
