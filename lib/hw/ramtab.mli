(** The RamTab: per-frame ownership and usage table.

    A simple flat structure (deliberately simple enough to be used by
    low-level trap code, per the paper) recording for every frame of
    main memory its owning domain, its logical frame width and whether
    it is currently unused, mapped, or nailed. The frames allocator
    maintains ownership; the low-level translation system uses it to
    validate [map]/[unmap] calls. *)

type state = Unused | Mapped | Nailed

type t

val create : nframes:int -> t

val nframes : t -> int

val set_owner : t -> pfn:int -> owner:int -> width:int -> unit
(** Record allocation of a frame to a domain. [width] is the
    log2(bytes) of the logical frame (page_shift for base pages). *)

val clear_owner : t -> pfn:int -> unit
(** Frame returned to the free pool. Raises [Invalid_argument] if the
    frame is still mapped or nailed. *)

val owner : t -> pfn:int -> int option
(** Owning domain id, or [None] for free frames. *)

val width : t -> pfn:int -> int

val state : t -> pfn:int -> state
val set_state : t -> pfn:int -> state -> unit

val refs : t -> pfn:int -> int
(** Number of shared mappings of this frame (0 for a private frame).
    Grown for PR 7's stacked pagers: a frame mapped copy-on-write or
    into a shared segment carries one reference per domain mapping so
    that revocation and kill of the sharer and sharee stay
    independently sound. *)

val is_shared : t -> pfn:int -> bool
(** [refs > 0]. *)

val add_ref : t -> pfn:int -> unit
(** Count one more shared mapping. The frame must have an owner.
    Raises [Invalid_argument] otherwise. *)

val drop_ref : t -> pfn:int -> int
(** Drop one shared mapping, returning the number remaining. Raises
    [Invalid_argument] on underflow (a double free). *)

val is_available_for_mapping : t -> pfn:int -> domain:int -> bool
(** The validation used by the low-level [map] call: the calling
    domain owns the frame and it is not currently mapped or nailed. *)

val pp_state : Format.formatter -> state -> unit
