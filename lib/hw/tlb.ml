type slot = { mutable asn : int; mutable vpn : int; mutable pte : Pte.t }

type t = {
  slots : slot array;
  mutable next : int; (* FIFO replacement pointer *)
  mutable hits : int;
  mutable misses : int;
}

let empty_vpn = -1

let create ?(entries = 64) () =
  { slots = Array.init entries (fun _ -> { asn = 0; vpn = empty_vpn; pte = Pte.absent });
    next = 0; hits = 0; misses = 0 }

(* Observability: per-address-space hit/miss counters; label "asn<N>"
   because the TLB knows domains only by their address-space number. *)
let count_lookup ~asn ~hit =
  if !Obs.enabled then
    Obs.Metrics.inc
      ~label:(Printf.sprintf "asn%d" asn)
      (if hit then "tlb.hits" else "tlb.misses")

let lookup t ~asn ~vpn =
  let n = Array.length t.slots in
  let rec scan i =
    if i >= n then begin
      t.misses <- t.misses + 1;
      count_lookup ~asn ~hit:false;
      None
    end
    else begin
      let s = t.slots.(i) in
      if s.vpn = vpn && s.asn = asn then begin
        t.hits <- t.hits + 1;
        count_lookup ~asn ~hit:true;
        Some s.pte
      end
      else scan (i + 1)
    end
  in
  scan 0

let insert t ~asn ~vpn pte =
  (* Overwrite an existing entry for the same page if present,
     otherwise take the FIFO victim. *)
  let n = Array.length t.slots in
  let rec find i = if i >= n then None else
      let s = t.slots.(i) in
      if s.vpn = vpn && s.asn = asn then Some s else find (i + 1)
  in
  let s =
    match find 0 with
    | Some s -> s
    | None ->
      let s = t.slots.(t.next) in
      t.next <- (t.next + 1) mod n;
      s
  in
  s.asn <- asn;
  s.vpn <- vpn;
  s.pte <- pte

let invalidate t ~vpn =
  Array.iter
    (fun s -> if s.vpn = vpn then begin s.vpn <- empty_vpn; s.pte <- Pte.absent end)
    t.slots

let invalidate_all t =
  Array.iter (fun s -> s.vpn <- empty_vpn; s.pte <- Pte.absent) t.slots

let hits t = t.hits
let misses t = t.misses
