(** Deterministic, seeded fault injection.

    The chaos layer of the reproduction: a process-global {e plan}
    describes which faults to inject — bad-blok ranges on the disk,
    random transient media errors and latency spikes inside an LBA
    region, stalls of named USD clients, delivery delay/drop on named
    event channels, and frame-allocator pressure spikes — and the
    instrumented subsystems ({!Disk.Disk_model}, {!Usbs.Usd},
    {!Usbs.Sfs}, {!Core.Event_chan}, {!Core.Domains}) consult it at
    their injection points.

    Like {!Obs}, the subsystem is off by default and every hook is
    guarded by {!enabled}, so the disarmed path costs one flag read
    and injecting nothing is bit-for-bit the seed behaviour.

    {b Determinism.} All randomness comes from one {!Engine.Rng}
    stream seeded by the plan; in a simulated run the sequence of hook
    calls is a pure function of the seed, so two runs with the same
    plan produce identical injections (asserted by the chaos
    determinism test).

    {b Accounting.} Every injected {e media error} must be answered by
    exactly one recovery action in the layer that caught it: a retry
    ({!note_retried}), a bad-blok remap ({!note_remapped}), a
    degradation such as splitting a coalesced transaction or falling
    back to synchronous writeback ({!note_degraded}), or data loss
    that ultimately kills the touching thread ({!note_killed}). The
    chaos experiment checks the books:
    [injected = retried + remapped + degraded + killed].
    Latency spikes, stalls, channel drops/delays and pressure bursts
    need no recovery and are tallied separately. *)

open Engine

type disk_op = Read | Write

type blok_fault = {
  bf_first : int;  (** first LBA of the bad range *)
  bf_len : int;  (** number of bloks *)
  bf_op : disk_op option;  (** [None] = both directions *)
  bf_transient : int option;
      (** [Some k]: the first [k] transactions touching each blok of
          the range fail, later ones succeed (a marginal sector that
          needs retries); [None]: permanently bad. *)
}

type region_fault = {
  rf_first : int;
  rf_len : int;
  rf_read_error : float;  (** transient-error probability per read *)
  rf_write_error : float;
  rf_spike : float;  (** latency-spike probability per transaction *)
  rf_spike_span : Time.span;
}

type stall = {
  st_rate : float;  (** probability per consultation, 1.0 = always *)
  st_span : Time.span;
}

type chan_fault = {
  cf_drop : float;  (** probability a notification is dropped *)
  cf_delay : float;  (** probability it is delayed instead *)
  cf_delay_span : Time.span;
}

type link_fault = {
  lf_drop : float;  (** probability a packet is dropped on the wire *)
  lf_delay : float;  (** probability it is delayed instead *)
  lf_delay_span : Time.span;
}

type pressure = {
  pr_period : Time.span;  (** time between allocation bursts *)
  pr_hold : Time.span;  (** how long a burst holds its frames *)
}

type zpool_pressure = {
  zp_period : Time.span;  (** time between budget-shrink bursts *)
  zp_hold : Time.span;  (** how long the shrunken budget holds *)
  zp_shrink : int;  (** frames taken off the compressed-tier budget *)
}
(** Seeded bursts that shrink the compressed-memory tier's frame
    budget mid-run (consumed by [Share.Zpool]): each burst forces the
    zpool to shed compressed pages down to the reduced budget, then
    restores it after [zp_hold]. *)

type crash_point = {
  cp_after : Time.t;  (** armed from this virtual time on *)
  cp_site : string option;
      (** only writes issued on behalf of this swap / site fire the
          point; [None] = any site *)
  cp_first : int;  (** LBA window; [cp_len = 0] matches any LBA *)
  cp_len : int;
}
(** A one-shot virtual-time crash point. The first durable write
    matching the time / site / LBA-window predicates is torn: an
    arbitrary seeded prefix of its bloks persists and the writer
    observes a crash. Each point fires at most once per {!arm} /
    {!reset}. *)

type node_fault = {
  nf_node : string;  (** the remote node's link name ({!Usnet.Link.name}) *)
  nf_wipe_at : Time.t option;
      (** node RAM contents lost at this virtual time (node stays up) *)
  nf_crash_at : Time.t option;
      (** node gone for good from this time on (contents lost too) *)
  nf_partitions : (Time.t * Time.t) list;
      (** [[(from, until); ...]] windows during which the node is
          unreachable; contents survive and it answers again after *)
  nf_join_at : Time.t option;
      (** a standby node joins the fleet membership at this time *)
  nf_retire_at : Time.t option;
      (** the node is retired (drained, then unused) at this time *)
  nf_corrupt : float;
      (** probability per shard/copy fetch that the served bytes fail
          their checksum — detected corruption, treated as a lost
          shard by the tier layer *)
}
(** Node-scoped faults for the replicated/erasure-coded remote tier:
    a node can be wiped (amnesia), crashed (permanent loss) or
    partitioned away for a window; membership can change (join /
    retire); and served shards can arrive corrupted. Wipes, crashes,
    partitions and membership changes are driven by virtual time, not
    dice, so a plan names exactly which node fails when; corruption
    is probabilistic on the plan's seeded stream. *)

val node_fault :
  ?wipe_at:Time.t ->
  ?crash_at:Time.t ->
  ?partitions:(Time.t * Time.t) list ->
  ?join_at:Time.t ->
  ?retire_at:Time.t ->
  ?corrupt:float ->
  string ->
  node_fault
(** [node_fault name] with nothing planned; each optional argument
    arms one fault site on the named node. *)

type plan = {
  seed : int;
  blok_faults : blok_fault list;
  regions : region_fault list;
  stalls : (string * stall) list;  (** keyed by USD client / site name *)
  chans : (string * chan_fault) list;  (** keyed by event-channel name *)
  links : (string * link_fault) list;  (** keyed by network-link name *)
  pressure : pressure option;  (** consumed by the chaos gremlin *)
  zpool_pressure : zpool_pressure option;  (** consumed by [Share.Zpool] *)
  crashes : crash_point list;
  node_faults : node_fault list;  (** consumed by [Tier.Fleet] *)
}

val default_plan : plan
(** Seed 0, nothing injected. *)

val site_axis : (plan -> plan) Registry.axis
(** Hook point for fault-site kinds. A spec string names a kind and
    its parameters as [k=v] pairs — e.g.
    ["bad-blok:first=2048,len=16,op=write"],
    ["stall:site=victim.swap,rate=0.02,ms=30"],
    ["node:name=mem1,crash-ms=4000,part=1000-2000"] — and resolving
    it yields the function that appends that fault to a plan under
    construction. The built-in kinds ([bad-blok], [region], [stall],
    [chan], [link], [pressure], [zpool], [crash], [node]) are
    ordinary registrations; a new fault site registers here without
    editing this module. *)

val plan_of_specs : seed:int -> string list -> (plan, Registry.error) result
(** Build a plan from site specs, applied in order to
    [{default_plan with seed}] — list-valued sites append, so spec
    order is plan order; [pressure]/[zpool] overwrite. *)

val enabled : bool ref
(** Do not write directly; use {!arm}/{!disarm}. *)

val arm : plan -> unit
(** Install the plan, reseed the RNG, clear counters, enable hooks. *)

val disarm : unit -> unit
(** Disable every hook (the plan is kept for inspection). *)

val reset : unit -> unit
(** Reseed from the armed plan and clear counters — two [arm]-[reset]
    runs of the same workload inject identically. *)

val plan : unit -> plan

(** {2 Hooks (called by instrumented subsystems)} *)

type disk_outcome =
  | Pass
  | Spike of Time.span  (** serve, but this much slower *)
  | Media_error of { bad_lba : int; persistent : bool }

val disk : op:disk_op -> lba:int -> nblocks:int -> disk_outcome
(** Consulted once per disk transaction. Counts what it injects. *)

val stall : site:string -> Time.span option
(** A stall to insert at the named site (USD client, revocation
    handler, ...), if the plan targets it and the dice say so. *)

type chan_outcome = Deliver | Drop | Delay of Time.span

val chan : name:string -> chan_outcome

val link : name:string -> chan_outcome
(** Consulted once per packet by instrumented senders on the named
    network link ({!Usnet.Link.name}): [Drop] means the wire lost the
    packet (the sender must retransmit or fall back), [Delay] that it
    arrives late. Tallied separately from media errors — link faults
    are answered by the tier layer's own books, not the
    {!accounted} equation. *)

val node_reachable : name:string -> now:Time.t -> bool
(** Consulted per packet by the replicated tier: [false] while the
    named node is crashed (from [nf_crash_at] on) or inside a
    partition window — the packet is lost and the sender must
    retransmit, fail over or quarantine. Each crash and each
    partition window is tallied once, on first observation. *)

val node_wipe_due : name:string -> now:Time.t -> bool
(** One-shot per arm/reset (separately for wipe and crash): [true] on
    the first consultation at/after the node's [nf_wipe_at] (or
    [nf_crash_at] — a crashed node loses its contents too), and the
    caller must empty the node's page pool. *)

val node_join_due : name:string -> now:Time.t -> bool
(** One-shot per arm/reset: [true] on the first consultation at/after
    the node's [nf_join_at] — the fleet must admit the standby node
    into membership and rebalance. *)

val node_retire_due : name:string -> now:Time.t -> bool
(** One-shot per arm/reset: [true] on the first consultation at/after
    the node's [nf_retire_at] — the fleet must drop the node from
    placement and migrate its copies away (budgeted, like repair). *)

val shard_corrupt : name:string -> bool
(** Consulted once per shard/copy fetched from the named node:
    [true] means the served bytes failed their checksum (a detected
    bit-flip). The tier layer treats the shard as lost — reconstruct,
    rebuild or fall back — answered by its own books, outside the
    {!accounted} equation. *)

val pressure : unit -> pressure option

val zpool_pressure : unit -> zpool_pressure option

val crash_write :
  now:Time.t -> site:string -> lba:int -> nblocks:int -> int option
(** Consulted by durable writers ({!Usbs.Sfs} data writes,
    {!Usbs.Journal} appends) just before the bytes would hit the
    platter. [Some k] means a crash point fired: exactly the first
    [k] bloks of the transaction persist ([0 <= k < nblocks], so the
    write is always torn) and the caller must abort with a crashed
    status. Crashes are tallied separately from media errors and do
    not enter the {!accounted} equation — recovery happens at
    remount, not in-line. *)

(** {2 Recovery accounting (called by the hardened layers)} *)

val note_retried : string -> unit
(** One injected error answered by a retry (the class string labels
    the site, e.g. ["sfs.read"]). *)

val note_remapped : string -> unit
val note_degraded : string -> unit
val note_killed : string -> unit

(** {2 Introspection} *)

type tally = {
  injected_errors : int;  (** media errors injected *)
  spikes : int;
  stalls_injected : int;
  chan_drops : int;
  chan_delays : int;
  link_drops : int;  (** packets lost on an injected lossy link *)
  link_delays : int;
  node_wipes : int;  (** node wipes applied (amnesia, node stays up) *)
  node_crashes : int;  (** nodes gone for good *)
  node_partitions : int;  (** partition windows entered *)
  node_joins : int;  (** standby nodes joined into membership *)
  node_retires : int;  (** nodes retired out of membership *)
  shard_corruptions : int;  (** checksum-detected corrupt shard serves *)
  pressure_bursts : int;
  zpool_bursts : int;  (** compressed-tier budget-shrink bursts fired *)
  crashes : int;  (** crash points fired (torn writes) *)
  retried : int;
  remapped : int;
  degraded : int;
  killed : int;
}

val tally : unit -> tally

val accounted : unit -> bool
(** [injected_errors = retried + remapped + degraded + killed] — every
    injected media error met exactly one recovery action. Only
    meaningful once in-flight I/O has drained. *)

val note_pressure_burst : unit -> unit
(** Called by the chaos gremlin once per burst. *)

val note_zpool_burst : shed:int -> unit
(** Called by the zpool once per budget-shrink burst; [shed] is how
    many frames the shrink forced out. Tallied outside the
    {!accounted} equation — shedding drops clean cache copies whose
    durable image is already below, so no media error needs
    answering. *)

val by_class : unit -> (string * int) list
(** Injection counts per class (e.g. ["disk.write.persistent"]),
    sorted by class name. *)
