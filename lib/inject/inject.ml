open Engine

type disk_op = Read | Write

type blok_fault = {
  bf_first : int;
  bf_len : int;
  bf_op : disk_op option;
  bf_transient : int option;
}

type region_fault = {
  rf_first : int;
  rf_len : int;
  rf_read_error : float;
  rf_write_error : float;
  rf_spike : float;
  rf_spike_span : Time.span;
}

type stall = { st_rate : float; st_span : Time.span }

type chan_fault = {
  cf_drop : float;
  cf_delay : float;
  cf_delay_span : Time.span;
}

type link_fault = {
  lf_drop : float;
  lf_delay : float;
  lf_delay_span : Time.span;
}

type pressure = { pr_period : Time.span; pr_hold : Time.span }

type zpool_pressure = {
  zp_period : Time.span;
  zp_hold : Time.span;
  zp_shrink : int;
}

type crash_point = {
  cp_after : Time.t;
  cp_site : string option;
  cp_first : int;
  cp_len : int;
}

type node_fault = {
  nf_node : string;
  nf_wipe_at : Time.t option;
  nf_crash_at : Time.t option;
  nf_partitions : (Time.t * Time.t) list;
  nf_join_at : Time.t option;
  nf_retire_at : Time.t option;
  nf_corrupt : float;
}

let node_fault ?wipe_at ?crash_at ?(partitions = []) ?join_at ?retire_at
    ?(corrupt = 0.0) node =
  { nf_node = node;
    nf_wipe_at = wipe_at;
    nf_crash_at = crash_at;
    nf_partitions = partitions;
    nf_join_at = join_at;
    nf_retire_at = retire_at;
    nf_corrupt = corrupt }

type plan = {
  seed : int;
  blok_faults : blok_fault list;
  regions : region_fault list;
  stalls : (string * stall) list;
  chans : (string * chan_fault) list;
  links : (string * link_fault) list;
  pressure : pressure option;
  zpool_pressure : zpool_pressure option;
  crashes : crash_point list;
  node_faults : node_fault list;
}

let default_plan =
  {
    seed = 0;
    blok_faults = [];
    regions = [];
    stalls = [];
    chans = [];
    links = [];
    pressure = None;
    zpool_pressure = None;
    crashes = [];
    node_faults = [];
  }

(* --- chaos-site registry ---------------------------------------------

   Fault sites resolve by registered key: each spec string names a
   site kind and appends one fault to the plan under construction, so
   a whole plan is a [seed] plus a list of specs. A new fault site is
   a registration here, not an edit to this file. *)

let site_axis : (plan -> plan) Registry.axis =
  Registry.axis ~name:"chaos-site"
    ~doc:
      "fault sites an Inject plan can name; each spec appends one \
       fault (Inject.plan_of_specs)"

let ( let* ) = Result.bind

let p_int a key =
  match Registry.Spec.param a key with
  | None -> Ok None
  | Some v -> (
      match int_of_string_opt v with
      | Some i -> Ok (Some i)
      | None -> Error (Printf.sprintf "bad integer %s=%S" key v))

let p_float a key =
  match Registry.Spec.param a key with
  | None -> Ok None
  | Some v -> (
      match float_of_string_opt v with
      | Some f -> Ok (Some f)
      | None -> Error (Printf.sprintf "bad number %s=%S" key v))

(* A duration/instant parameter, in (possibly fractional) ms. *)
let p_span a key =
  let* v = p_float a key in
  Ok (Option.map Time.of_ms_float v)

let req key = function
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing %s=" key)

let ri a key = Result.bind (p_int a key) (req key)
let rf a key = Result.bind (p_float a key) (req key)
let rs a key = req key (Registry.Spec.param a key)
let rspan a key = Result.bind (p_span a key) (req key)

(* Sites take only [k=v] parameters, and only the declared ones — a
   typoed key must not silently weaken a chaos plan. *)
let check_keys a allowed =
  match a.Registry.Spec.args with
  | arg :: _ -> Error (Printf.sprintf "unexpected argument %S" arg)
  | [] -> (
      match
        List.find_opt
          (fun (k, _) -> not (List.mem k allowed))
          a.Registry.Spec.params
      with
      | Some (k, _) -> Error (Printf.sprintf "unknown parameter %S" k)
      | None -> Ok ())

let ip name doc = { Registry.p_name = name; p_doc = doc; p_kind = Registry.Int 0 }

let fp name doc =
  { Registry.p_name = name; p_doc = doc; p_kind = Registry.Float 0. }

let sp name doc =
  { Registry.p_name = name; p_doc = doc; p_kind = Registry.String None }

let () =
  let reg name doc params parse =
    Registry.register_exn site_axis
      (Registry.manifest ~name ~doc ~params ())
      (fun a ->
        let* () =
          check_keys a (List.map (fun p -> p.Registry.p_name) params)
        in
        parse a)
  in
  reg "bad-blok" "a bad blok range: transactions touching it fail"
    [ ip "first" "first LBA of the bad range";
      ip "len" "length of the range, in bloks";
      sp "op" "restrict to 'read' or 'write' transactions (default both)";
      ip "transient" "heal after N failures (persistent when absent)" ]
    (fun a ->
      let* bf_first = ri a "first" in
      let* bf_len = ri a "len" in
      let* bf_op =
        match Registry.Spec.param a "op" with
        | None -> Ok None
        | Some "read" -> Ok (Some Read)
        | Some "write" -> Ok (Some Write)
        | Some v -> Error (Printf.sprintf "bad op=%S (read or write)" v)
      in
      let* bf_transient = p_int a "transient" in
      Ok
        (fun p ->
          { p with
            blok_faults =
              p.blok_faults @ [ { bf_first; bf_len; bf_op; bf_transient } ] }));
  reg "region"
    "a probabilistic disk region: per-transaction error and latency-spike dice"
    [ ip "first" "first LBA of the region";
      ip "len" "length of the region, in bloks";
      fp "read" "per-read media-error probability (default 0)";
      fp "write" "per-write media-error probability (default 0)";
      fp "spike" "per-transaction latency-spike probability (default 0)";
      fp "spike-ms" "spike duration, ms (default 0)" ]
    (fun a ->
      let* rf_first = ri a "first" in
      let* rf_len = ri a "len" in
      let* read = p_float a "read" in
      let* write = p_float a "write" in
      let* spike = p_float a "spike" in
      let* span = p_span a "spike-ms" in
      let r =
        { rf_first; rf_len;
          rf_read_error = Option.value read ~default:0.;
          rf_write_error = Option.value write ~default:0.;
          rf_spike = Option.value spike ~default:0.;
          rf_spike_span = Option.value span ~default:0 }
      in
      Ok (fun p -> { p with regions = p.regions @ [ r ] }));
  reg "stall" "a named code site that randomly sleeps instead of proceeding"
    [ sp "site" "the Inject.stall site name, e.g. victim.swap";
      fp "rate" "per-consultation stall probability";
      fp "ms" "stall duration, ms" ]
    (fun a ->
      let* site = rs a "site" in
      let* st_rate = rf a "rate" in
      let* st_span = rspan a "ms" in
      Ok
        (fun p -> { p with stalls = p.stalls @ [ (site, { st_rate; st_span }) ] }));
  let chan_like name doc set =
    reg name doc
      [ sp "name" "the channel/link name, e.g. victim.fault";
        fp "drop" "per-message drop probability (default 0)";
        fp "delay" "per-message delay probability (default 0)";
        fp "delay-ms" "delay duration, ms (default 0)" ]
      (fun a ->
        let* nm = rs a "name" in
        let* drop = p_float a "drop" in
        let* delay = p_float a "delay" in
        let* span = p_span a "delay-ms" in
        Ok
          (set nm
             (Option.value drop ~default:0.)
             (Option.value delay ~default:0.)
             (Option.value span ~default:0)))
  in
  chan_like "chan" "an event channel that drops or delays messages"
    (fun nm cf_drop cf_delay cf_delay_span p ->
      { p with chans = p.chans @ [ (nm, { cf_drop; cf_delay; cf_delay_span }) ] });
  chan_like "link" "a network link that drops or delays packets"
    (fun nm lf_drop lf_delay lf_delay_span p ->
      { p with links = p.links @ [ (nm, { lf_drop; lf_delay; lf_delay_span }) ] });
  reg "pressure" "periodic system frame-pressure bursts"
    [ fp "period-ms" "burst period, ms"; fp "hold-ms" "burst duration, ms" ]
    (fun a ->
      let* pr_period = rspan a "period-ms" in
      let* pr_hold = rspan a "hold-ms" in
      Ok (fun p -> { p with pressure = Some { pr_period; pr_hold } }));
  reg "zpool" "periodic compressed-tier budget shrinks"
    [ fp "period-ms" "shrink period, ms";
      fp "hold-ms" "shrink duration, ms";
      ip "shrink" "frames to take from the zpool budget per burst" ]
    (fun a ->
      let* zp_period = rspan a "period-ms" in
      let* zp_hold = rspan a "hold-ms" in
      let* shrink = p_int a "shrink" in
      Ok
        (fun p ->
          { p with
            zpool_pressure =
              Some
                { zp_period; zp_hold;
                  zp_shrink = Option.value shrink ~default:0 } }));
  reg "crash" "a one-shot crash point tearing a durable write"
    [ fp "after-ms" "armed from this instant, ms";
      sp "site" "restrict to one crash site (default any)";
      ip "first" "restrict to writes overlapping this LBA range";
      ip "len" "length of the LBA restriction (0 = anywhere)" ]
    (fun a ->
      let* cp_after = rspan a "after-ms" in
      let* first = p_int a "first" in
      let* len = p_int a "len" in
      let cp =
        { cp_after;
          cp_site = Registry.Spec.param a "site";
          cp_first = Option.value first ~default:0;
          cp_len = Option.value len ~default:0 }
      in
      Ok (fun p -> { p with crashes = p.crashes @ [ cp ] }));
  reg "node" "remote-node faults: wipe, crash, partitions, membership"
    [ sp "name" "the node name, e.g. mem1";
      fp "wipe-ms" "lose RAM contents at this instant";
      fp "crash-ms" "unreachable (and wiped) from this instant on";
      fp "join-ms" "join the fleet at this instant";
      fp "retire-ms" "planned drain-and-leave at this instant";
      fp "corrupt" "per-shard-fetch corruption probability";
      sp "part" "partition window 'A-B' in ms (repeatable)" ]
    (fun a ->
      let* nf_node = rs a "name" in
      let* wipe = p_span a "wipe-ms" in
      let* crash = p_span a "crash-ms" in
      let* join = p_span a "join-ms" in
      let* retire = p_span a "retire-ms" in
      let* corrupt = p_float a "corrupt" in
      let* parts =
        List.fold_left
          (fun acc (k, v) ->
            let* acc = acc in
            if k <> "part" then Ok acc
            else
              match String.index_opt v '-' with
              | None -> Error (Printf.sprintf "bad part=%S (want A-B)" v)
              | Some i -> (
                  let a' = String.sub v 0 i in
                  let b = String.sub v (i + 1) (String.length v - i - 1) in
                  match (float_of_string_opt a', float_of_string_opt b) with
                  | Some x, Some y ->
                      Ok (acc @ [ (Time.of_ms_float x, Time.of_ms_float y) ])
                  | _ -> Error (Printf.sprintf "bad part=%S (want A-B)" v)))
          (Ok []) a.Registry.Spec.params
      in
      let nf =
        { nf_node; nf_wipe_at = wipe; nf_crash_at = crash;
          nf_partitions = parts; nf_join_at = join; nf_retire_at = retire;
          nf_corrupt = Option.value corrupt ~default:0. }
      in
      Ok (fun p -> { p with node_faults = p.node_faults @ [ nf ] }))

let plan_of_specs ~seed specs =
  let rec go plan = function
    | [] -> Ok plan
    | s :: tl -> (
        match Registry.resolve site_axis s with
        | Error _ as e -> e
        | Ok f -> go (f plan) tl)
  in
  go { default_plan with seed } specs

let enabled = ref false
let the_plan = ref default_plan
let rng = ref (Rng.create ~seed:0)

(* Transient blok faults fail the first [k] transactions that touch the
   range, then heal; one decrementing counter per fault entry. *)
let transient_left : (blok_fault, int) Hashtbl.t = Hashtbl.create 7

(* Crash points are one-shot: each entry of [plan.crashes] fires at
   most once per arm/reset, keyed by its position in the list. *)
let crash_fired : (int, unit) Hashtbl.t = Hashtbl.create 7

(* Node faults are tallied once each: a wipe / crash / partition window
   bumps its counter the first time a hook observes it, keyed by
   ["wipe:<node>"], ["crash:<node>"] or ["part:<node>:<i>"]. *)
let node_fired : (string, unit) Hashtbl.t = Hashtbl.create 7

type tally = {
  injected_errors : int;
  spikes : int;
  stalls_injected : int;
  chan_drops : int;
  chan_delays : int;
  link_drops : int;
  link_delays : int;
  node_wipes : int;
  node_crashes : int;
  node_partitions : int;
  node_joins : int;
  node_retires : int;
  shard_corruptions : int;
  pressure_bursts : int;
  zpool_bursts : int;
  crashes : int;
  retried : int;
  remapped : int;
  degraded : int;
  killed : int;
}

let zero_tally =
  {
    injected_errors = 0;
    spikes = 0;
    stalls_injected = 0;
    chan_drops = 0;
    chan_delays = 0;
    link_drops = 0;
    link_delays = 0;
    node_wipes = 0;
    node_crashes = 0;
    node_partitions = 0;
    node_joins = 0;
    node_retires = 0;
    shard_corruptions = 0;
    pressure_bursts = 0;
    zpool_bursts = 0;
    crashes = 0;
    retried = 0;
    remapped = 0;
    degraded = 0;
    killed = 0;
  }

let counts = ref zero_tally
let classes : (string, int) Hashtbl.t = Hashtbl.create 16

let bump_class cls =
  let n = try Hashtbl.find classes cls with Not_found -> 0 in
  Hashtbl.replace classes cls (n + 1)

let metric name = Obs.Metrics.inc ("inject." ^ name)

let reset () =
  rng := Rng.create ~seed:!the_plan.seed;
  counts := zero_tally;
  Hashtbl.reset transient_left;
  Hashtbl.reset crash_fired;
  Hashtbl.reset node_fired;
  Hashtbl.reset classes;
  List.iter
    (fun bf ->
      match bf.bf_transient with
      | Some k -> Hashtbl.replace transient_left bf k
      | None -> ())
    !the_plan.blok_faults

let arm plan =
  the_plan := plan;
  enabled := true;
  reset ()

let disarm () = enabled := false
let plan () = !the_plan

(* -- hooks ------------------------------------------------------------ *)

type disk_outcome =
  | Pass
  | Spike of Time.span
  | Media_error of { bad_lba : int; persistent : bool }

let overlaps ~first ~len ~lba ~nblocks =
  lba < first + len && first < lba + nblocks

let chance p = p > 0. && Rng.float !rng 1.0 < p

let op_matches bf op =
  match bf.bf_op with None -> true | Some o -> o = op

let note_error ~op ~persistent =
  counts := { !counts with injected_errors = !counts.injected_errors + 1 };
  let dir = match op with Read -> "read" | Write -> "write" in
  let kind = if persistent then "persistent" else "transient" in
  bump_class (Printf.sprintf "disk.%s.%s" dir kind);
  metric "errors";
  metric (Printf.sprintf "errors.%s.%s" dir kind)

let disk ~op ~lba ~nblocks =
  if not !enabled then Pass
  else
    (* Bad-blok ranges take precedence over probabilistic regions. *)
    let hit =
      List.find_opt
        (fun bf ->
          op_matches bf op
          && overlaps ~first:bf.bf_first ~len:bf.bf_len ~lba ~nblocks)
        !the_plan.blok_faults
    in
    match hit with
    | Some bf -> (
        let bad_lba = max lba bf.bf_first in
        match bf.bf_transient with
        | None ->
            note_error ~op ~persistent:true;
            Media_error { bad_lba; persistent = true }
        | Some _ ->
            let left =
              try Hashtbl.find transient_left bf with Not_found -> 0
            in
            if left > 0 then begin
              Hashtbl.replace transient_left bf (left - 1);
              note_error ~op ~persistent:false;
              Media_error { bad_lba; persistent = false }
            end
            else Pass)
    | None -> (
        let region =
          List.find_opt
            (fun rf ->
              overlaps ~first:rf.rf_first ~len:rf.rf_len ~lba ~nblocks)
            !the_plan.regions
        in
        match region with
        | None -> Pass
        | Some rf ->
            let err_p =
              match op with
              | Read -> rf.rf_read_error
              | Write -> rf.rf_write_error
            in
            if chance err_p then begin
              note_error ~op ~persistent:false;
              Media_error
                { bad_lba = lba + Rng.int !rng (max 1 nblocks);
                  persistent = false }
            end
            else if chance rf.rf_spike then begin
              counts := { !counts with spikes = !counts.spikes + 1 };
              bump_class "disk.spike";
              metric "spikes";
              Spike rf.rf_spike_span
            end
            else Pass)

let stall ~site =
  if not !enabled then None
  else
    match List.assoc_opt site !the_plan.stalls with
    | None -> None
    | Some st ->
        if chance st.st_rate then begin
          counts :=
            { !counts with stalls_injected = !counts.stalls_injected + 1 };
          bump_class ("stall." ^ site);
          metric "stalls";
          Some st.st_span
        end
        else None

type chan_outcome = Deliver | Drop | Delay of Time.span

let chan ~name =
  if not !enabled then Deliver
  else
    match List.assoc_opt name !the_plan.chans with
    | None -> Deliver
    | Some cf ->
        if chance cf.cf_drop then begin
          counts := { !counts with chan_drops = !counts.chan_drops + 1 };
          bump_class ("chan.drop." ^ name);
          metric "chan_drops";
          Drop
        end
        else if chance cf.cf_delay then begin
          counts := { !counts with chan_delays = !counts.chan_delays + 1 };
          bump_class ("chan.delay." ^ name);
          metric "chan_delays";
          Delay cf.cf_delay_span
        end
        else Deliver

(* Per-packet consultation by the network-link instrumentation: the
   named link drops or delays the packet per the plan. Drops model a
   lossy wire — the transmit completes locally but the receiver never
   sees the payload, so the tier layer retransmits or falls back;
   they need no recovery accounting of their own (the tier's books
   are checked separately by the remote experiment). *)
let link ~name =
  if not !enabled then Deliver
  else
    match List.assoc_opt name !the_plan.links with
    | None -> Deliver
    | Some lf ->
        if chance lf.lf_drop then begin
          counts := { !counts with link_drops = !counts.link_drops + 1 };
          bump_class ("link.drop." ^ name);
          metric "link_drops";
          Drop
        end
        else if chance lf.lf_delay then begin
          counts := { !counts with link_delays = !counts.link_delays + 1 };
          bump_class ("link.delay." ^ name);
          metric "link_delays";
          Delay lf.lf_delay_span
        end
        else Deliver

(* -- node faults ------------------------------------------------------ *)

let node_plan name =
  List.find_opt (fun nf -> nf.nf_node = name) !the_plan.node_faults

let fire_once key bump =
  if not (Hashtbl.mem node_fired key) then begin
    Hashtbl.replace node_fired key ();
    bump ()
  end

(* Reachability is consulted per packet by the replicated tier: a
   crashed node is gone from its crash time on; a partitioned node is
   unreachable inside each window and answers again after it. Each
   fault is tallied once, on first observation. *)
let node_reachable ~name ~now =
  if not !enabled then true
  else
    match node_plan name with
    | None -> true
    | Some nf ->
        let crashed =
          match nf.nf_crash_at with Some t -> now >= t | None -> false
        in
        if crashed then begin
          fire_once ("crash:" ^ name) (fun () ->
              counts :=
                { !counts with node_crashes = !counts.node_crashes + 1 };
              bump_class ("node.crash." ^ name);
              metric "node_crashes");
          false
        end
        else
          let rec partitioned i = function
            | [] -> false
            | (a, b) :: rest ->
                if now >= a && now < b then begin
                  fire_once
                    (Printf.sprintf "part:%s:%d" name i)
                    (fun () ->
                      counts :=
                        { !counts with
                          node_partitions = !counts.node_partitions + 1 };
                      bump_class ("node.partition." ^ name);
                      metric "node_partitions");
                  true
                end
                else partitioned (i + 1) rest
          in
          not (partitioned 0 nf.nf_partitions)

(* One-shot: the first consultation at/after the wipe (or crash —
   a crashed node loses its RAM contents too) answers [true] and the
   caller must empty the node's pool. *)
let node_wipe_due ~name ~now =
  if not !enabled then false
  else
    match node_plan name with
    | None -> false
    | Some nf ->
        let due kind bump_it = function
          | Some t when now >= t ->
              let key = kind ^ ":" ^ name in
              if Hashtbl.mem node_fired key then false
              else begin
                Hashtbl.replace node_fired key ();
                bump_it ();
                true
              end
          | _ -> false
        in
        let wiped =
          due "wipe"
            (fun () ->
              counts := { !counts with node_wipes = !counts.node_wipes + 1 };
              bump_class ("node.wipe." ^ name);
              metric "node_wipes")
            nf.nf_wipe_at
        in
        let crashed = due "crashwipe" (fun () -> ()) nf.nf_crash_at in
        wiped || crashed

(* Membership events share the one-shot machinery: the first
   consultation at/after the planned time answers [true] and the
   caller (the fleet) must apply the join/retire. Virtual-time
   driven, never dice, so a plan names exactly who joins when. *)
let membership_due kind field bump ~name ~now =
  if not !enabled then false
  else
    match node_plan name with
    | None -> false
    | Some nf -> (
        match field nf with
        | Some t when now >= t ->
            let key = kind ^ ":" ^ name in
            if Hashtbl.mem node_fired key then false
            else begin
              Hashtbl.replace node_fired key ();
              bump ();
              true
            end
        | _ -> false)

let node_join_due ~name ~now =
  membership_due "join"
    (fun nf -> nf.nf_join_at)
    (fun () ->
      counts := { !counts with node_joins = !counts.node_joins + 1 };
      bump_class ("node.join." ^ name);
      metric "node_joins")
    ~name ~now

let node_retire_due ~name ~now =
  membership_due "retire"
    (fun nf -> nf.nf_retire_at)
    (fun () ->
      counts := { !counts with node_retires = !counts.node_retires + 1 };
      bump_class ("node.retire." ^ name);
      metric "node_retires")
    ~name ~now

(* Per-shard-fetch consultation: the named node flips a bit in the
   shard it is serving, the receiver's checksum catches it, and the
   tier layer must treat the shard as lost (reconstruct / rebuild /
   fall to disk — its own books answer it, like link drops). *)
let shard_corrupt ~name =
  if not !enabled then false
  else
    match node_plan name with
    | None -> false
    | Some nf ->
        if chance nf.nf_corrupt then begin
          counts :=
            { !counts with
              shard_corruptions = !counts.shard_corruptions + 1 };
          bump_class ("shard.corrupt." ^ name);
          metric "shard_corruptions";
          true
        end
        else false

let pressure () = if not !enabled then None else !the_plan.pressure

let zpool_pressure () =
  if not !enabled then None else !the_plan.zpool_pressure

(* A crash point tears the durable write it fires on: only a seeded
   prefix of the transaction's bloks reaches the platter. [Rng.int]
   over [nblocks] guarantees at least the final blok is lost. *)
let crash_write ~now ~site ~lba ~nblocks =
  if not !enabled || nblocks <= 0 then None
  else begin
    let hit = ref None in
    List.iteri
      (fun i cp ->
        if
          !hit = None
          && (not (Hashtbl.mem crash_fired i))
          && now >= cp.cp_after
          && (match cp.cp_site with None -> true | Some s -> s = site)
          && (cp.cp_len = 0
             || overlaps ~first:cp.cp_first ~len:cp.cp_len ~lba ~nblocks)
        then hit := Some i)
      !the_plan.crashes;
    match !hit with
    | None -> None
    | Some i ->
        Hashtbl.replace crash_fired i ();
        counts := { !counts with crashes = !counts.crashes + 1 };
        bump_class "crash.write";
        metric "crashes";
        Some (Rng.int !rng nblocks)
  end

(* -- recovery accounting --------------------------------------------- *)

let note_retried cls =
  counts := { !counts with retried = !counts.retried + 1 };
  metric "retried";
  metric ("retried." ^ cls)

let note_remapped cls =
  counts := { !counts with remapped = !counts.remapped + 1 };
  metric "remapped";
  metric ("remapped." ^ cls)

let note_degraded cls =
  counts := { !counts with degraded = !counts.degraded + 1 };
  metric "degraded";
  metric ("degraded." ^ cls)

let note_killed cls =
  counts := { !counts with killed = !counts.killed + 1 };
  metric "killed";
  metric ("killed." ^ cls)

let note_pressure_burst () =
  counts :=
    { !counts with pressure_bursts = !counts.pressure_bursts + 1 };
  metric "pressure_bursts"

(* Zpool bursts, like frame-pressure bursts, are tallied outside the
   [accounted] equation: shrinking the compressed tier's budget sheds
   clean cache copies whose durable image is already on disk, so there
   is no media error to answer — the recovery is the shed itself,
   tallied per class here. *)
let note_zpool_burst ~shed =
  counts := { !counts with zpool_bursts = !counts.zpool_bursts + 1 };
  bump_class "zpool.burst";
  metric "zpool_bursts";
  if shed > 0 then Obs.Metrics.add "inject.zpool_shed_frames" shed

let tally () = !counts

let accounted () =
  let t = !counts in
  t.injected_errors = t.retried + t.remapped + t.degraded + t.killed

let by_class () =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) classes []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
