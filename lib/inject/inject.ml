open Engine

type disk_op = Read | Write

type blok_fault = {
  bf_first : int;
  bf_len : int;
  bf_op : disk_op option;
  bf_transient : int option;
}

type region_fault = {
  rf_first : int;
  rf_len : int;
  rf_read_error : float;
  rf_write_error : float;
  rf_spike : float;
  rf_spike_span : Time.span;
}

type stall = { st_rate : float; st_span : Time.span }

type chan_fault = {
  cf_drop : float;
  cf_delay : float;
  cf_delay_span : Time.span;
}

type link_fault = {
  lf_drop : float;
  lf_delay : float;
  lf_delay_span : Time.span;
}

type pressure = { pr_period : Time.span; pr_hold : Time.span }

type zpool_pressure = {
  zp_period : Time.span;
  zp_hold : Time.span;
  zp_shrink : int;
}

type crash_point = {
  cp_after : Time.t;
  cp_site : string option;
  cp_first : int;
  cp_len : int;
}

type node_fault = {
  nf_node : string;
  nf_wipe_at : Time.t option;
  nf_crash_at : Time.t option;
  nf_partitions : (Time.t * Time.t) list;
  nf_join_at : Time.t option;
  nf_retire_at : Time.t option;
  nf_corrupt : float;
}

let node_fault ?wipe_at ?crash_at ?(partitions = []) ?join_at ?retire_at
    ?(corrupt = 0.0) node =
  { nf_node = node;
    nf_wipe_at = wipe_at;
    nf_crash_at = crash_at;
    nf_partitions = partitions;
    nf_join_at = join_at;
    nf_retire_at = retire_at;
    nf_corrupt = corrupt }

type plan = {
  seed : int;
  blok_faults : blok_fault list;
  regions : region_fault list;
  stalls : (string * stall) list;
  chans : (string * chan_fault) list;
  links : (string * link_fault) list;
  pressure : pressure option;
  zpool_pressure : zpool_pressure option;
  crashes : crash_point list;
  node_faults : node_fault list;
}

let default_plan =
  {
    seed = 0;
    blok_faults = [];
    regions = [];
    stalls = [];
    chans = [];
    links = [];
    pressure = None;
    zpool_pressure = None;
    crashes = [];
    node_faults = [];
  }

let enabled = ref false
let the_plan = ref default_plan
let rng = ref (Rng.create ~seed:0)

(* Transient blok faults fail the first [k] transactions that touch the
   range, then heal; one decrementing counter per fault entry. *)
let transient_left : (blok_fault, int) Hashtbl.t = Hashtbl.create 7

(* Crash points are one-shot: each entry of [plan.crashes] fires at
   most once per arm/reset, keyed by its position in the list. *)
let crash_fired : (int, unit) Hashtbl.t = Hashtbl.create 7

(* Node faults are tallied once each: a wipe / crash / partition window
   bumps its counter the first time a hook observes it, keyed by
   ["wipe:<node>"], ["crash:<node>"] or ["part:<node>:<i>"]. *)
let node_fired : (string, unit) Hashtbl.t = Hashtbl.create 7

type tally = {
  injected_errors : int;
  spikes : int;
  stalls_injected : int;
  chan_drops : int;
  chan_delays : int;
  link_drops : int;
  link_delays : int;
  node_wipes : int;
  node_crashes : int;
  node_partitions : int;
  node_joins : int;
  node_retires : int;
  shard_corruptions : int;
  pressure_bursts : int;
  zpool_bursts : int;
  crashes : int;
  retried : int;
  remapped : int;
  degraded : int;
  killed : int;
}

let zero_tally =
  {
    injected_errors = 0;
    spikes = 0;
    stalls_injected = 0;
    chan_drops = 0;
    chan_delays = 0;
    link_drops = 0;
    link_delays = 0;
    node_wipes = 0;
    node_crashes = 0;
    node_partitions = 0;
    node_joins = 0;
    node_retires = 0;
    shard_corruptions = 0;
    pressure_bursts = 0;
    zpool_bursts = 0;
    crashes = 0;
    retried = 0;
    remapped = 0;
    degraded = 0;
    killed = 0;
  }

let counts = ref zero_tally
let classes : (string, int) Hashtbl.t = Hashtbl.create 16

let bump_class cls =
  let n = try Hashtbl.find classes cls with Not_found -> 0 in
  Hashtbl.replace classes cls (n + 1)

let metric name = Obs.Metrics.inc ("inject." ^ name)

let reset () =
  rng := Rng.create ~seed:!the_plan.seed;
  counts := zero_tally;
  Hashtbl.reset transient_left;
  Hashtbl.reset crash_fired;
  Hashtbl.reset node_fired;
  Hashtbl.reset classes;
  List.iter
    (fun bf ->
      match bf.bf_transient with
      | Some k -> Hashtbl.replace transient_left bf k
      | None -> ())
    !the_plan.blok_faults

let arm plan =
  the_plan := plan;
  enabled := true;
  reset ()

let disarm () = enabled := false
let plan () = !the_plan

(* -- hooks ------------------------------------------------------------ *)

type disk_outcome =
  | Pass
  | Spike of Time.span
  | Media_error of { bad_lba : int; persistent : bool }

let overlaps ~first ~len ~lba ~nblocks =
  lba < first + len && first < lba + nblocks

let chance p = p > 0. && Rng.float !rng 1.0 < p

let op_matches bf op =
  match bf.bf_op with None -> true | Some o -> o = op

let note_error ~op ~persistent =
  counts := { !counts with injected_errors = !counts.injected_errors + 1 };
  let dir = match op with Read -> "read" | Write -> "write" in
  let kind = if persistent then "persistent" else "transient" in
  bump_class (Printf.sprintf "disk.%s.%s" dir kind);
  metric "errors";
  metric (Printf.sprintf "errors.%s.%s" dir kind)

let disk ~op ~lba ~nblocks =
  if not !enabled then Pass
  else
    (* Bad-blok ranges take precedence over probabilistic regions. *)
    let hit =
      List.find_opt
        (fun bf ->
          op_matches bf op
          && overlaps ~first:bf.bf_first ~len:bf.bf_len ~lba ~nblocks)
        !the_plan.blok_faults
    in
    match hit with
    | Some bf -> (
        let bad_lba = max lba bf.bf_first in
        match bf.bf_transient with
        | None ->
            note_error ~op ~persistent:true;
            Media_error { bad_lba; persistent = true }
        | Some _ ->
            let left =
              try Hashtbl.find transient_left bf with Not_found -> 0
            in
            if left > 0 then begin
              Hashtbl.replace transient_left bf (left - 1);
              note_error ~op ~persistent:false;
              Media_error { bad_lba; persistent = false }
            end
            else Pass)
    | None -> (
        let region =
          List.find_opt
            (fun rf ->
              overlaps ~first:rf.rf_first ~len:rf.rf_len ~lba ~nblocks)
            !the_plan.regions
        in
        match region with
        | None -> Pass
        | Some rf ->
            let err_p =
              match op with
              | Read -> rf.rf_read_error
              | Write -> rf.rf_write_error
            in
            if chance err_p then begin
              note_error ~op ~persistent:false;
              Media_error
                { bad_lba = lba + Rng.int !rng (max 1 nblocks);
                  persistent = false }
            end
            else if chance rf.rf_spike then begin
              counts := { !counts with spikes = !counts.spikes + 1 };
              bump_class "disk.spike";
              metric "spikes";
              Spike rf.rf_spike_span
            end
            else Pass)

let stall ~site =
  if not !enabled then None
  else
    match List.assoc_opt site !the_plan.stalls with
    | None -> None
    | Some st ->
        if chance st.st_rate then begin
          counts :=
            { !counts with stalls_injected = !counts.stalls_injected + 1 };
          bump_class ("stall." ^ site);
          metric "stalls";
          Some st.st_span
        end
        else None

type chan_outcome = Deliver | Drop | Delay of Time.span

let chan ~name =
  if not !enabled then Deliver
  else
    match List.assoc_opt name !the_plan.chans with
    | None -> Deliver
    | Some cf ->
        if chance cf.cf_drop then begin
          counts := { !counts with chan_drops = !counts.chan_drops + 1 };
          bump_class ("chan.drop." ^ name);
          metric "chan_drops";
          Drop
        end
        else if chance cf.cf_delay then begin
          counts := { !counts with chan_delays = !counts.chan_delays + 1 };
          bump_class ("chan.delay." ^ name);
          metric "chan_delays";
          Delay cf.cf_delay_span
        end
        else Deliver

(* Per-packet consultation by the network-link instrumentation: the
   named link drops or delays the packet per the plan. Drops model a
   lossy wire — the transmit completes locally but the receiver never
   sees the payload, so the tier layer retransmits or falls back;
   they need no recovery accounting of their own (the tier's books
   are checked separately by the remote experiment). *)
let link ~name =
  if not !enabled then Deliver
  else
    match List.assoc_opt name !the_plan.links with
    | None -> Deliver
    | Some lf ->
        if chance lf.lf_drop then begin
          counts := { !counts with link_drops = !counts.link_drops + 1 };
          bump_class ("link.drop." ^ name);
          metric "link_drops";
          Drop
        end
        else if chance lf.lf_delay then begin
          counts := { !counts with link_delays = !counts.link_delays + 1 };
          bump_class ("link.delay." ^ name);
          metric "link_delays";
          Delay lf.lf_delay_span
        end
        else Deliver

(* -- node faults ------------------------------------------------------ *)

let node_plan name =
  List.find_opt (fun nf -> nf.nf_node = name) !the_plan.node_faults

let fire_once key bump =
  if not (Hashtbl.mem node_fired key) then begin
    Hashtbl.replace node_fired key ();
    bump ()
  end

(* Reachability is consulted per packet by the replicated tier: a
   crashed node is gone from its crash time on; a partitioned node is
   unreachable inside each window and answers again after it. Each
   fault is tallied once, on first observation. *)
let node_reachable ~name ~now =
  if not !enabled then true
  else
    match node_plan name with
    | None -> true
    | Some nf ->
        let crashed =
          match nf.nf_crash_at with Some t -> now >= t | None -> false
        in
        if crashed then begin
          fire_once ("crash:" ^ name) (fun () ->
              counts :=
                { !counts with node_crashes = !counts.node_crashes + 1 };
              bump_class ("node.crash." ^ name);
              metric "node_crashes");
          false
        end
        else
          let rec partitioned i = function
            | [] -> false
            | (a, b) :: rest ->
                if now >= a && now < b then begin
                  fire_once
                    (Printf.sprintf "part:%s:%d" name i)
                    (fun () ->
                      counts :=
                        { !counts with
                          node_partitions = !counts.node_partitions + 1 };
                      bump_class ("node.partition." ^ name);
                      metric "node_partitions");
                  true
                end
                else partitioned (i + 1) rest
          in
          not (partitioned 0 nf.nf_partitions)

(* One-shot: the first consultation at/after the wipe (or crash —
   a crashed node loses its RAM contents too) answers [true] and the
   caller must empty the node's pool. *)
let node_wipe_due ~name ~now =
  if not !enabled then false
  else
    match node_plan name with
    | None -> false
    | Some nf ->
        let due kind bump_it = function
          | Some t when now >= t ->
              let key = kind ^ ":" ^ name in
              if Hashtbl.mem node_fired key then false
              else begin
                Hashtbl.replace node_fired key ();
                bump_it ();
                true
              end
          | _ -> false
        in
        let wiped =
          due "wipe"
            (fun () ->
              counts := { !counts with node_wipes = !counts.node_wipes + 1 };
              bump_class ("node.wipe." ^ name);
              metric "node_wipes")
            nf.nf_wipe_at
        in
        let crashed = due "crashwipe" (fun () -> ()) nf.nf_crash_at in
        wiped || crashed

(* Membership events share the one-shot machinery: the first
   consultation at/after the planned time answers [true] and the
   caller (the fleet) must apply the join/retire. Virtual-time
   driven, never dice, so a plan names exactly who joins when. *)
let membership_due kind field bump ~name ~now =
  if not !enabled then false
  else
    match node_plan name with
    | None -> false
    | Some nf -> (
        match field nf with
        | Some t when now >= t ->
            let key = kind ^ ":" ^ name in
            if Hashtbl.mem node_fired key then false
            else begin
              Hashtbl.replace node_fired key ();
              bump ();
              true
            end
        | _ -> false)

let node_join_due ~name ~now =
  membership_due "join"
    (fun nf -> nf.nf_join_at)
    (fun () ->
      counts := { !counts with node_joins = !counts.node_joins + 1 };
      bump_class ("node.join." ^ name);
      metric "node_joins")
    ~name ~now

let node_retire_due ~name ~now =
  membership_due "retire"
    (fun nf -> nf.nf_retire_at)
    (fun () ->
      counts := { !counts with node_retires = !counts.node_retires + 1 };
      bump_class ("node.retire." ^ name);
      metric "node_retires")
    ~name ~now

(* Per-shard-fetch consultation: the named node flips a bit in the
   shard it is serving, the receiver's checksum catches it, and the
   tier layer must treat the shard as lost (reconstruct / rebuild /
   fall to disk — its own books answer it, like link drops). *)
let shard_corrupt ~name =
  if not !enabled then false
  else
    match node_plan name with
    | None -> false
    | Some nf ->
        if chance nf.nf_corrupt then begin
          counts :=
            { !counts with
              shard_corruptions = !counts.shard_corruptions + 1 };
          bump_class ("shard.corrupt." ^ name);
          metric "shard_corruptions";
          true
        end
        else false

let pressure () = if not !enabled then None else !the_plan.pressure

let zpool_pressure () =
  if not !enabled then None else !the_plan.zpool_pressure

(* A crash point tears the durable write it fires on: only a seeded
   prefix of the transaction's bloks reaches the platter. [Rng.int]
   over [nblocks] guarantees at least the final blok is lost. *)
let crash_write ~now ~site ~lba ~nblocks =
  if not !enabled || nblocks <= 0 then None
  else begin
    let hit = ref None in
    List.iteri
      (fun i cp ->
        if
          !hit = None
          && (not (Hashtbl.mem crash_fired i))
          && now >= cp.cp_after
          && (match cp.cp_site with None -> true | Some s -> s = site)
          && (cp.cp_len = 0
             || overlaps ~first:cp.cp_first ~len:cp.cp_len ~lba ~nblocks)
        then hit := Some i)
      !the_plan.crashes;
    match !hit with
    | None -> None
    | Some i ->
        Hashtbl.replace crash_fired i ();
        counts := { !counts with crashes = !counts.crashes + 1 };
        bump_class "crash.write";
        metric "crashes";
        Some (Rng.int !rng nblocks)
  end

(* -- recovery accounting --------------------------------------------- *)

let note_retried cls =
  counts := { !counts with retried = !counts.retried + 1 };
  metric "retried";
  metric ("retried." ^ cls)

let note_remapped cls =
  counts := { !counts with remapped = !counts.remapped + 1 };
  metric "remapped";
  metric ("remapped." ^ cls)

let note_degraded cls =
  counts := { !counts with degraded = !counts.degraded + 1 };
  metric "degraded";
  metric ("degraded." ^ cls)

let note_killed cls =
  counts := { !counts with killed = !counts.killed + 1 };
  metric "killed";
  metric ("killed." ^ cls)

let note_pressure_burst () =
  counts :=
    { !counts with pressure_bursts = !counts.pressure_bursts + 1 };
  metric "pressure_bursts"

(* Zpool bursts, like frame-pressure bursts, are tallied outside the
   [accounted] equation: shrinking the compressed tier's budget sheds
   clean cache copies whose durable image is already on disk, so there
   is no media error to answer — the recovery is the shed itself,
   tallied per class here. *)
let note_zpool_burst ~shed =
  counts := { !counts with zpool_bursts = !counts.zpool_bursts + 1 };
  bump_class "zpool.burst";
  metric "zpool_bursts";
  if shed > 0 then Obs.Metrics.add "inject.zpool_shed_frames" shed

let tally () = !counts

let accounted () =
  let t = !counts in
  t.injected_errors = t.retried + t.remapped + t.degraded + t.killed

let by_class () =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) classes []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
