(** The policy-compare experiment.

    Reruns the paging figure once per (policy x access pattern) cell:
    the probe application pages through a 256-page stretch over 48
    guaranteed frames under the given {!Policy.Spec.t}, while a fixed
    seed-policy contender shares the disk. Demonstrates the paper's
    §5 claim concretely: replacement, read-ahead and write-behind are
    a per-domain choice, and a domain's choice shifts only its own
    miss rate — the contender's throughput and the QoS audit stay
    untouched. *)

open Engine

type row = {
  policy : string;
  pattern : string;  (** "seq" | "rand" | "hot" *)
  accesses : int;  (** measured-loop page accesses *)
  faults : int;  (** demand page-ins + write-behind rescues *)
  miss_rate : float;  (** faults / accesses *)
  demand_ins : int;
  prefetched : int;
  prefetch_hits : int;
  prefetch_waste : int;
  page_outs : int;
  evictions : int;
  wb_flushes : int;
  rescues : int;
  mean_fault_us : float;
  p99_fault_us : float;
  app_mbit : float;
  contender_mbit : float;
  violations : int;  (** QoS-audit violations over the whole cell run *)
}

type result = { duration : Time.t; rows : row list }

val run :
  ?duration:Time.t -> ?seed:int -> ?policies:Policy.Spec.t list -> unit ->
  result
(** Default policies: {!Policy.Spec.presets}. Each cell runs in a
    fresh system for [duration] (default 60 s simulated). Forces
    observability on for its own runs and restores the previous
    setting. *)

val print : result -> unit
val to_json : result -> string
