(** Remote paging: a disaggregated memory tier under QoS and link chaos.

    A mixed fleet pages over the same disk: three disk-only domains
    and three tiered domains (local RAM cache → remote memory node →
    disk), one of each per access pattern (sequential, random,
    hotspot). The tiered domains' page transfers ride a shared
    {!Usnet.Link} under per-domain [(p, s, x, l)] guarantees; halfway
    through, a seeded fault plan starts dropping and delaying packets
    on that link.

    The experiment passes when the chaos stays bought-and-paid-for:
    the disk-only bystanders see zero QoS violations, every tier
    store's double-entry loss books balance, drops were actually
    injected, the tiered domains survive on the disk fallback, and a
    second same-seed run reproduces the report byte-for-byte. *)

open Engine

type domain_report = {
  dr_name : string;
  dr_pattern : string;
  dr_tiered : bool;
  dr_mbit : float;
  dr_accesses : int;
  dr_fault_mean_us : float;  (** mean fault-service latency, [nan] if none *)
  dr_fault_p95_us : float;
  dr_violations : int;
}

type result = {
  seed : int;
  duration : Time.span;
  domains : domain_report list;
  tier : Tier.Store.stats;  (** summed over the three tiered stores *)
  books_balanced : bool;
  remote_used : int;
  remote_capacity : int;
  link_drops : int;
  link_delays : int;
  link_utilisation : float;
  bystander_violations : int;  (** disk-only domains; must be 0 *)
  tiered_violations : int;
  deterministic : bool;  (** second same-seed run matched byte-for-byte *)
  audit : Obs.Qos_audit.summary;
}

val run : ?seed:int -> ?duration:Time.span -> unit -> result
val ok : result -> bool
val print : result -> unit
val to_json : result -> string

(** One (pattern, backend) cell of the remote-paging benchmark. *)
type bench_cell = {
  bc_pattern : string;
  bc_tiered : bool;
  bc_mbit : float;
  bc_accesses : int;
  bc_fault_mean_us : float;
  bc_fault_p95_us : float;
  bc_cache_hits : int;
  bc_remote_hits : int;
  bc_remote_misses : int;
}

type bench_result = {
  b_seed : int;
  b_duration : Time.span;
  b_cells : bench_cell list;
  b_hot_speedup : float;
      (** disk-only mean fault latency over tiered, hotspot pattern *)
  b_hot_tiered_beats_disk : bool;
}

val bench : ?seed:int -> ?duration:Time.span -> unit -> bench_result
(** Fault-free measurement: each pattern runs twice in its own fresh
    system — disk-only, then tiered — and reports throughput and
    fault-service latency side by side. *)

val bench_print : bench_result -> unit
val bench_to_json : bench_result -> string
