open Engine
open Core
open Workload

(* --- A-laxity ------------------------------------------------------ *)

type laxity_result = {
  with_laxity : (string * float * int) list;
  without_laxity : (string * float * int) list;
}

(* Without laxity the apps may not even finish initialising, so compare
   gross paging rates (disk bytes moved per second) rather than
   steady-state progress. *)
let laxity_row (r : Paging_fig.result) ~duration =
  List.map
    (fun (a : Paging_fig.app_report) ->
      let pages = a.Paging_fig.page_ins + a.Paging_fig.page_outs in
      let mbit =
        float_of_int (pages * 8192) *. 8.0 /. Time.to_sec duration /. 1e6
      in
      (a.Paging_fig.app_name, mbit, a.Paging_fig.txns))
    r.Paging_fig.apps

let run_laxity ?(duration = Time.sec 120) () =
  let on = Paging_fig.run ~duration ~usd_laxity:true () in
  let off = Paging_fig.run ~duration ~usd_laxity:false () in
  { with_laxity = laxity_row on ~duration;
    without_laxity = laxity_row off ~duration }

let print_laxity r =
  Report.heading "Ablation A-laxity: the short-block problem";
  let rows =
    List.map2
      (fun (name, mbit_on, txn_on) (_, mbit_off, txn_off) ->
        [ name; Report.f2 mbit_on; string_of_int txn_on; Report.f2 mbit_off;
          string_of_int txn_off ])
      r.with_laxity r.without_laxity
  in
  Report.table
    ~header:
      [ "app"; "paging Mbit/s (l=10ms)"; "txns"; "paging Mbit/s (no laxity)";
        "txns" ]
    rows;
  print_newline ();
  print_endline
    "Without laxity, plain EDF marks a client with no pending transaction";
  print_endline
    "idle until its next allocation: paging clients (one outstanding";
  print_endline "request) collapse towards one transaction per period."

(* The value of l itself: sweep laxity for the Figure-7 workload. A few
   milliseconds suffice to cover the fault-to-next-submission gap;
   beyond that the extra allowance is never used (lax charges stop at
   the point work arrives), so throughput saturates. *)
type laxity_sweep_result = {
  points : (int * float) list;  (* (laxity ms, total paging Mbit/s) *)
}

let run_laxity_sweep ?(duration = Time.sec 120) () =
  let one l_ms =
    let r = Paging_fig.run ~duration ~laxity:(Time.ms l_ms) () in
    let total =
      List.fold_left
        (fun acc (a : Paging_fig.app_report) ->
          acc
          +. float_of_int ((a.Paging_fig.page_ins + a.Paging_fig.page_outs) * 8192)
             *. 8.0 /. Time.to_sec duration /. 1e6)
        0.0 r.Paging_fig.apps
    in
    (l_ms, total)
  in
  (* l = 0 degenerates to plain EDF (the short-block collapse); the
     fault-to-resubmission gap is sub-millisecond, so any positive
     allowance already covers it. *)
  { points = List.map one [ 0; 1; 2; 5; 10; 25 ] }

let print_laxity_sweep r =
  Report.heading "Ablation A-laxity (sweep): how much laxity is enough?";
  Report.table
    ~header:[ "laxity ms"; "total paging Mbit/s" ]
    (List.map
       (fun (l, mbit) -> [ string_of_int l; Report.f2 mbit ])
       r.points);
  print_newline ();
  print_endline
    "A few milliseconds cover the fault-to-resubmission gap; the paper's";
  print_endline
    "10ms is comfortably past the knee. Unused allowance costs nothing";
  print_endline "(lax charging stops the moment work arrives)."

(* --- A-rollover ----------------------------------------------------- *)

type rollover_result = {
  with_rollover_share : float;
  without_rollover_share : float;
  guaranteed_share : float;
}

(* Disk share actually consumed by a client, from the USD trace
   (transaction time plus charged lax time). *)
let share_of_client trace name ~duration =
  let busy = ref 0 in
  Trace.iter
    (fun _ ev ->
      match ev with
      | Usbs.Usd.Txn { client; dur; _ } when client = name ->
        busy := !busy + dur
      | Usbs.Usd.Lax { client; dur } when client = name -> busy := !busy + dur
      | Usbs.Usd.Slack { client; dur; _ } when client = name ->
        busy := !busy + dur
      | _ -> ())
    trace;
  float_of_int !busy /. float_of_int duration

let run_rollover_one ~rollover ~duration =
  let sys = Harness.fresh_system ~usd_rollover:rollover () in
  let qos = Usbs.Qos.make ~period:(Time.ms 250) ~slice:(Time.ms 25) () in
  (match
     Paging_app.start sys ~name:"hog" ~mode:Paging_app.Paging_out ~qos ()
   with
  | Ok _ -> ()
  | Error e ->
    Harness.fail_verdict ~experiment:"ablations"
      ~context:[ ("ablation", "A-rollover"); ("app", "hog") ]
      e);
  (* A competitor so that exceeding the guarantee actually takes time
     away from someone. *)
  let fq = Usbs.Qos.make ~period:(Time.ms 250) ~slice:(Time.ms 125) () in
  (match Fs_client.start sys ~name:"fs" ~qos:fq () with
  | Ok _ -> ()
  | Error e ->
    Harness.fail_verdict ~experiment:"ablations"
      ~context:[ ("ablation", "A-rollover"); ("app", "fs") ]
      e);
  System.run sys ~until:duration;
  share_of_client (Usbs.Usd.trace (System.usd sys)) "hog.swap" ~duration

let run_rollover ?(duration = Time.sec 120) () =
  { with_rollover_share = run_rollover_one ~rollover:true ~duration;
    without_rollover_share = run_rollover_one ~rollover:false ~duration;
    guaranteed_share = 0.1 }

let print_rollover r =
  Report.heading "Ablation A-rollover: accounting for transaction overrun";
  Report.table
    ~header:[ "accounting"; "achieved share"; "guaranteed" ]
    [ [ "roll-over (paper)";
        Printf.sprintf "%.1f%%" (r.with_rollover_share *. 100.0);
        Printf.sprintf "%.1f%%" (r.guaranteed_share *. 100.0) ];
      [ "no carry";
        Printf.sprintf "%.1f%%" (r.without_rollover_share *. 100.0);
        Printf.sprintf "%.1f%%" (r.guaranteed_share *. 100.0) ] ];
  print_newline ();
  print_endline
    "A client whose ~11ms transactions always overrun its remaining time";
  print_endline
    "deterministically exceeds its guarantee unless the overrun is carried";
  print_endline "into the next allocation (negative remaining time)."

(* --- A-pt ----------------------------------------------------------- *)

type pt_result = {
  linear_dirty_us : float;
  guarded_dirty_us : float;
  linear_trap_us : float;
  guarded_trap_us : float;
  dirty_ratio : float;
}

let run_pt () =
  let rows pt = Table1.run ~page_table:pt () in
  let find rows name =
    (List.find (fun (r : Table1.row) -> r.Table1.bench = name) rows)
      .Table1.nemesis_us
  in
  let lin = rows `Linear and gua = rows `Guarded in
  let linear_dirty_us = find lin "dirty" in
  let guarded_dirty_us = find gua "dirty" in
  { linear_dirty_us;
    guarded_dirty_us;
    linear_trap_us = find lin "trap";
    guarded_trap_us = find gua "trap";
    dirty_ratio = guarded_dirty_us /. linear_dirty_us }

let print_pt r =
  Report.heading "Ablation A-pt: linear vs guarded page tables";
  Report.table
    ~header:[ "bench"; "linear us"; "guarded us"; "ratio" ]
    [ [ "dirty"; Report.f2 r.linear_dirty_us; Report.f2 r.guarded_dirty_us;
        Report.f2 r.dirty_ratio ];
      [ "trap"; Report.f2 r.linear_trap_us; Report.f2 r.guarded_trap_us;
        Report.f2 (r.guarded_trap_us /. r.linear_trap_us) ] ];
  print_newline ();
  print_endline
    "Paper: the earlier guarded-page-table implementation was about three";
  print_endline "times slower on the dirty micro-benchmark."

(* --- A-slack -------------------------------------------------------- *)

type slack_result = {
  extra_client_mbit : float;
  extra_client_share : float;
  victim_mbit_alone : float;
  victim_mbit_with_extra : float;
}

let run_slack ?(duration = Time.sec 120) () =
  let run_apps specs =
    let sys = Harness.fresh_system () in
    let apps =
      List.map
        (fun (name, slice_ms, extra) ->
          let qos =
            Usbs.Qos.make ~period:(Time.ms 250) ~slice:(Time.ms slice_ms)
              ~extra ()
          in
          match
            Paging_app.start sys ~name ~mode:Paging_app.Paging_in ~qos ()
          with
          | Ok a -> (name, a)
          | Error e ->
            Harness.fail_verdict ~experiment:"ablations"
              ~context:[ ("ablation", "A-slack"); ("app", name) ]
              (name ^ ": " ^ e))
        specs
    in
    System.run sys ~until:duration;
    let trace = Usbs.Usd.trace (System.usd sys) in
    List.map
      (fun (name, a) ->
        ( name,
          Paging_app.sustained_mbit a,
          share_of_client trace (name ^ ".swap") ~duration ))
      apps
  in
  let alone = run_apps [ ("victim", 100, false) ] in
  let both = run_apps [ ("extra", 25, true); ("victim", 100, false) ] in
  let get l n = List.find (fun (name, _, _) -> name = n) l in
  let _, victim_alone, _ = get alone "victim" in
  let _, victim_with, _ = get both "victim" in
  let _, extra_mbit, extra_share = get both "extra" in
  { extra_client_mbit = extra_mbit;
    extra_client_share = extra_share;
    victim_mbit_alone = victim_alone;
    victim_mbit_with_extra = victim_with }

let print_slack r =
  Report.heading "Ablation A-slack: x-flag slack redistribution";
  Report.table
    ~header:[ "client"; "guarantee"; "Mbit/s"; "achieved share" ]
    [ [ "extra (x=true)"; "10%"; Report.f2 r.extra_client_mbit;
        Printf.sprintf "%.1f%%" (r.extra_client_share *. 100.0) ];
      [ "victim alone"; "40%"; Report.f2 r.victim_mbit_alone; "-" ];
      [ "victim + extra"; "40%"; Report.f2 r.victim_mbit_with_extra; "-" ] ];
  print_newline ();
  print_endline
    "A slack-eligible client soaks up otherwise-idle disk time well beyond";
  print_endline
    "its guarantee without disturbing the guarantees of others (the paper";
  print_endline "sets x=False throughout its runs; this is the extension).";
  print_newline ();
  Printf.printf "victim slowdown from extra client: %.1f%%\n"
    ((r.victim_mbit_alone -. r.victim_mbit_with_extra)
     /. r.victim_mbit_alone *. 100.0)

(* --- A-stream ------------------------------------------------------- *)

type stream_result = {
  rates : (int * float * int) list;
      (* (readahead, sustained Mbit/s, disk txns) for a single
         paging-in client with a fixed 10% guarantee *)
}

(* The paper's future-work "stream-paging" extension: read-ahead turns
   runs of page-ins into single larger transactions, so the same disk
   guarantee moves more data. *)
let run_stream ?(duration = Time.sec 170) () =
  let one readahead =
    let sys = Harness.fresh_system () in
    let qos = Usbs.Qos.make ~period:(Time.ms 250) ~slice:(Time.ms 25) () in
    let app =
      match
        Paging_app.start sys ~name:"app" ~mode:Paging_app.Paging_in ~qos
          ~phys_frames:(2 + (2 * readahead)) ~readahead ()
      with
      | Ok a -> a
      | Error e ->
        Harness.fail_verdict ~experiment:"ablations"
          ~context:
            [ ("ablation", "A-stream"); ("readahead", string_of_int readahead) ]
          e
    in
    System.run sys ~until:duration;
    let txns = ref 0 in
    Trace.iter
      (fun _ ev -> match ev with Usbs.Usd.Txn _ -> incr txns | _ -> ())
      (Usbs.Usd.trace (System.usd sys));
    (readahead, Paging_app.sustained_mbit app, !txns)
  in
  { rates = List.map one [ 0; 2; 4; 8 ] }

let print_stream r =
  Report.heading
    "Extension A-stream: stream paging (read-ahead) under a fixed guarantee";
  Report.table
    ~header:[ "readahead"; "Mbit/s (10% disk)"; "disk txns" ]
    (List.map
       (fun (ra, mbit, txns) ->
         [ string_of_int ra; Report.f2 mbit; string_of_int txns ])
       r.rates);
  print_newline ();
  print_endline
    "Reading several consecutive swapped pages in one transaction amortises";
  print_endline
    "per-transaction overhead, so the same disk guarantee yields more";
  print_endline
    "progress — the paper's proposed stream-paging improvement, measured.";
  print_endline
    "(The client needs a few extra frames to hold the read-ahead.)"

(* --- A-revoke ------------------------------------------------------- *)

type revoke_result = {
  transparent_count : int;
  intrusive_count : int;
  intrusive_latency_ms : float;
  uncooperative_killed : bool;
  killed_requester_satisfied : bool;
}

(* A hoarder domain with a small guarantee and a large optimistic
   quota; [mapped] decides whether its frames end up mapped and dirty
   (forcing intrusive revocation with disk cleaning) or sit unused in
   the driver pool (transparent revocation). *)
let make_hoarder sys ~name ~mapped ~pages =
  match
    System.add_domain sys ~name ~guarantee:2 ~optimistic:pages ()
  with
  | Error e ->
    Harness.fail_verdict ~experiment:"ablations"
      ~context:[ ("ablation", "A-revoke"); ("domain", name) ]
      (System.error_message e)
  | Ok d ->
    (match System.alloc_stretch d ~bytes:(pages * Hw.Addr.page_size) () with
    | Error e ->
      Harness.fail_verdict ~experiment:"ablations"
        ~context:[ ("ablation", "A-revoke"); ("stage", "alloc_stretch") ]
        e
    | Ok stretch ->
      if mapped then begin
        (* Paged backing: revoked pages are dirty and must be cleaned
           to the USBS first, which is why the protocol's deadline is
           generous. *)
        let qos =
          Usbs.Qos.make ~period:(Time.ms 250) ~slice:(Time.ms 125) ()
        in
        Harness.run_in_sim sys (fun () ->
            (match
               System.bind_paged d ~swap_bytes:(2 * pages * Hw.Addr.page_size)
                 ~qos stretch ()
             with
            | Ok _ -> ()
            | Error e ->
              Harness.fail_verdict ~experiment:"ablations"
                ~context:[ ("ablation", "A-revoke"); ("stage", "bind_paged") ]
                (System.error_message e));
            for i = 0 to pages - 1 do
              Domains.access d.System.dom (Stretch.page_base stretch i) `Write
            done)
      end
      else begin
        match System.bind_physical d ~prealloc:pages stretch with
        | Ok _ -> ()
        | Error e ->
          Harness.fail_verdict ~experiment:"ablations"
            ~context:[ ("ablation", "A-revoke"); ("stage", "bind_physical") ]
            (System.error_message e)
      end;
      d)

let run_revoke () =
  (* 1 MB of main memory = 128 frames: small enough to contend. *)
  let phase ~mapped ~sabotage =
    let sys = Harness.fresh_system ~main_memory_mb:1 () in
    let hoarder = make_hoarder sys ~name:"hoarder" ~mapped ~pages:100 in
    if sabotage then
      (* An uncooperative domain: ignores revocation notifications. *)
      Frames.set_revocation_handler hoarder.System.frames_client
        (fun ~k:_ ~deadline:_ -> ());
    let requester =
      match System.add_domain sys ~name:"requester" ~guarantee:30 ~optimistic:0 () with
      | Ok d -> d
      | Error e ->
        Harness.fail_verdict ~experiment:"ablations"
          ~context:[ ("ablation", "A-revoke"); ("domain", "requester") ]
          (System.error_message e)
    in
    let sim = System.sim sys in
    let got, latency =
      Harness.run_in_sim sys (fun () ->
          let t0 = Sim.now sim in
          let got = ref 0 in
          for _ = 1 to 30 do
            match
              Frames.alloc (System.frames sys) requester.System.frames_client
            with
            | Some _ -> incr got
            | None -> ()
          done;
          (!got, Time.to_ms (Time.diff (Sim.now sim) t0)))
    in
    (sys, hoarder, got, latency)
  in
  let sys1, _, got1, _ = phase ~mapped:false ~sabotage:false in
  let sys2, _, got2, lat2 = phase ~mapped:true ~sabotage:false in
  let _sys3, h3, got3, _ = phase ~mapped:true ~sabotage:true in
  assert (got1 = 30 && got2 = 30);
  { transparent_count = Frames.transparent_revocations (System.frames sys1);
    intrusive_count = Frames.revocations (System.frames sys2);
    intrusive_latency_ms = lat2;
    uncooperative_killed = not (Domains.alive h3.System.dom);
    killed_requester_satisfied = got3 = 30 }

let print_revoke r =
  Report.heading "Ablation A-revoke: the revocation protocol";
  Report.table
    ~header:[ "scenario"; "outcome" ]
    [ [ "hoarder frames unused";
        Printf.sprintf "transparent revocations: %d" r.transparent_count ];
      [ "hoarder frames mapped";
        Printf.sprintf
          "intrusive revocations: %d (alloc burst incl. cleaning: %.2fms)"
          r.intrusive_count r.intrusive_latency_ms ];
      [ "hoarder ignores notification";
        Printf.sprintf "killed=%b, requester satisfied=%b"
          r.uncooperative_killed r.killed_requester_satisfied ] ];
  print_newline ();
  print_endline
    "Guaranteed allocations always succeed: transparently when the victim's";
  print_endline
    "stack top is unused, via notification (deadline T=100ms) when frames";
  print_endline "must be cleaned, and by killing domains that flunk the protocol."
