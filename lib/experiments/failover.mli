(** Failover: surviving remote-node loss without the disk penalty.

    The robustness harness for {!Tier.Fleet}. A mixed fleet of six
    domains pages over the same disk — three disk-only bystanders and
    three tiered over a 4-node replicated fleet (R = 2), one of each
    per access pattern. Mid-run the chaos plan takes one node's
    memory away for good ([node_wipe] at T/3) and another node off
    the network for a window ([node_partition] over [T/2, 2T/3]).

    The experiment passes when node loss stays a latency event, never
    a safety one: zero committed pages lost (every fault is served by
    a surviving replica, a rebuilt copy or the disk floor), zero
    bystander QoS violations, the fleet's double-entry books balance
    ([stores = acks] and [lost_primaries = failovers + rebuilds +
    disk_fallbacks]), the wiped node is re-replicated (rebuilds > 0),
    the partitioned node is quarantined and probed back in, and a
    second same-seed run reproduces the report byte-for-byte. *)

open Engine

type domain_report = {
  dr_name : string;
  dr_pattern : string;
  dr_tiered : bool;
  dr_mbit : float;  (** sustained throughput ([nan] if warming) *)
  dr_accesses : int;
  dr_fault_mean_us : float;  (** mean fault-service latency, [nan] if none *)
  dr_fault_p95_us : float;
  dr_violations : int;
}

type result = {
  seed : int;
  duration : Time.span;
  domains : domain_report list;
  fleet : Tier.Fleet.stats;
  health : Tier.Fleet.node_health list;
  books_balanced : bool;
  store_totals : Tier.Fleet.store_stats;
      (** per-domain store counters summed across the tiered domains *)
  lost_slots : int;  (** committed pages lost across the tiered domains *)
  node_wipes : int;  (** per the {!Inject} tally *)
  node_partitions : int;
  bystander_violations : int;  (** disk-only domains; must be 0 *)
  tiered_violations : int;
  deterministic : bool;  (** second same-seed run matched byte-for-byte *)
  audit : Obs.Qos_audit.summary;
}

val run : ?seed:int -> ?duration:Time.span -> unit -> result
val ok : result -> bool
val print : result -> unit
val to_json : result -> string

(** One cell of the failover benchmark: the hotspot workload against
    one backend, with the fault-latency histogram split at T/2 so the
    post-wipe window can be compared against the same window of a
    healthy run. *)
type bench_cell = {
  bc_name : string;  (** ["disk"], ["fleet"], ["fleet_wipe"] *)
  bc_accesses : int;
  bc_mean_us : float;  (** whole-run mean fault latency *)
  bc_half2_mean_us : float;  (** second-half window (post-wipe if wiped) *)
  bc_fleet_hits : int;
  bc_failovers : int;
  bc_rebuilds : int;
  bc_nodes : Tier.Fleet.node_health list;
      (** per-node end-of-run gauges (stores/serves/failovers) *)
}

type bench_result = {
  b_seed : int;
  b_duration : Time.span;
  b_cells : bench_cell list;
  b_healthy_us : float;  (** fleet cell, second-half window *)
  b_postwipe_us : float;  (** fleet_wipe cell, post-wipe window *)
  b_disk_us : float;  (** disk cell, second-half window *)
  b_degradation : float;  (** postwipe / healthy *)
  b_ok : bool;
      (** post-wipe mean ≤ 2× the healthy remote path and at least
          5× below the disk path — no disk-fallback cliff *)
}

val bench : ?seed:int -> ?duration:Time.span -> unit -> bench_result
val bench_print : bench_result -> unit
val bench_to_json : bench_result -> string
