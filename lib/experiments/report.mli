(** Plain-text report helpers shared by the experiment printers. *)

val rule : unit -> unit
(** Print a horizontal rule. *)

val heading : string -> unit

val table : header:string list -> string list list -> unit
(** Column-aligned table with a header row. *)

val fopt : float option -> string
(** "n/a" for [None], two decimals otherwise. *)

val f2 : float -> string
val f1 : float -> string

val chart :
  ?height:int -> ?width:int -> unit_label:string ->
  (string * (float * float) list) list -> unit
(** Multi-series ASCII chart: each series is (label, [(x, y); ...]).
    Series are drawn with distinct marks ('*', 'o', '+', 'x', ...); the
    y-axis is scaled to the data, the x-axis to the common range. *)

val hist_table : ?unit_:string -> (string * Obs.Metrics.hist_view) list -> unit
(** One row per (label, histogram): count, mean, p50, p95, max. *)

val audit_section : string -> Obs.Qos_audit.summary option -> unit
(** Print a QoS-audit verdict section; prints nothing for [None] (the
    run was not instrumented). *)
