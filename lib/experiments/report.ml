let rule () = print_endline (String.make 72 '-')

let heading s =
  print_newline ();
  rule ();
  Printf.printf "%s\n" s;
  rule ()

let table ~header rows =
  let all = header :: rows in
  let ncols = List.fold_left (fun m r -> max m (List.length r)) 0 all in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell -> widths.(i) <- max widths.(i) (String.length cell))
        row)
    all;
  let print_row row =
    List.iteri
      (fun i cell -> Printf.printf "%-*s  " widths.(i) cell)
      row;
    print_newline ()
  in
  print_row header;
  List.iteri
    (fun i w ->
      Printf.printf "%s  " (String.make w (if i >= 0 then '-' else '-')))
    (Array.to_list widths);
  print_newline ();
  List.iter print_row rows

let marks = [| '*'; 'o'; '+'; 'x'; '#'; '@' |]

let chart ?(height = 12) ?(width = 72) ~unit_label series =
  let all_points = List.concat_map snd series in
  if all_points = [] then print_endline "(no data)"
  else begin
    let xs = List.map fst all_points and ys = List.map snd all_points in
    let fmin = List.fold_left min infinity and fmax = List.fold_left max neg_infinity in
    let x0 = fmin xs and x1 = fmax xs in
    let y0 = 0.0 and y1 = Float.max 1e-9 (fmax ys) in
    let grid = Array.make_matrix height width ' ' in
    let put x y ch =
      let cx =
        if x1 <= x0 then 0
        else int_of_float ((x -. x0) /. (x1 -. x0) *. float_of_int (width - 1))
      in
      let cy =
        int_of_float ((y -. y0) /. (y1 -. y0) *. float_of_int (height - 1))
      in
      let cy = height - 1 - max 0 (min (height - 1) cy) in
      let cx = max 0 (min (width - 1) cx) in
      if grid.(cy).(cx) = ' ' then grid.(cy).(cx) <- ch
    in
    List.iteri
      (fun i (_, points) ->
        let mark = marks.(i mod Array.length marks) in
        List.iter (fun (x, y) -> put x y mark) points)
      series;
    for row = 0 to height - 1 do
      let label =
        if row = 0 then Printf.sprintf "%8.1f |" y1
        else if row = height - 1 then Printf.sprintf "%8.1f |" y0
        else Printf.sprintf "%8s |" ""
      in
      Printf.printf "%s%s\n" label (String.init width (fun c -> grid.(row).(c)))
    done;
    Printf.printf "%8s +%s\n" "" (String.make width '-');
    Printf.printf "%8s  %-10.0f%*s%.0f   (%s)\n" "" x0 (width - 14) "" x1
      unit_label;
    List.iteri
      (fun i (label, _) ->
        Printf.printf "%8s  %c = %s\n" "" (marks.(i mod Array.length marks)) label)
      series
  end

let fopt = function None -> "n/a" | Some v -> Printf.sprintf "%.2f" v

let f2 v = if Float.is_nan v then "nan" else Printf.sprintf "%.2f" v
let f1 v = if Float.is_nan v then "nan" else Printf.sprintf "%.1f" v

let hist_table ?(unit_ = "us") rows =
  if rows = [] then print_endline "(no histogram data)"
  else
    table
      ~header:
        [ "label"; "count"; "mean " ^ unit_; "p50 " ^ unit_; "p95 " ^ unit_;
          "max " ^ unit_ ]
      (List.map
         (fun (label, v) ->
           [ label;
             string_of_int v.Obs.Metrics.hv_count;
             f1 v.Obs.Metrics.hv_mean;
             f1 (Obs.Metrics.hist_quantile v 0.5);
             f1 (Obs.Metrics.hist_quantile v 0.95);
             f1 v.Obs.Metrics.hv_max ])
         rows)

let audit_section title = function
  | None -> ()
  | Some (s : Obs.Qos_audit.summary) ->
    heading title;
    Printf.printf "period boundaries audited: %d\n" s.audited_boundaries;
    if s.violations = 0 then
      print_endline "verdict: OK — no QoS contract violations detected"
    else begin
      Printf.printf "verdict: FLAGGED — %d violation(s)\n\n" s.violations;
      table
        ~header:[ "class"; "count" ]
        (List.map (fun (c, n) -> [ c; string_of_int n ]) s.classes);
      print_newline ();
      print_endline "most recent:";
      List.iter
        (fun (t, v) ->
          Format.printf "  [%a] %a@." Engine.Time.pp t
            Obs.Qos_audit.pp_violation v)
        s.recent
    end
