open Engine
open Hw
open Core

(* Multi-tenancy over stacked pagers: one template domain's paged
   stretch is frozen and CoW-forked into N tenants, every tenant also
   maps a shared read-only "text" segment, and tenant swap traffic
   goes through the compressed-RAM tier (Sd_zram over one Zpool)
   before the disk. Half the tenants are killed mid-run. The claims
   checked at the end:

   - exactly-one-copy sharing: the frames backing all tenants'
     template + segment pages are counted once, in the share registry,
     and the double-entry reference books balance — including across
     the kills (allocs = breaks + detaches + live refs, no frame
     leaked, no ref on a non-registry frame);
   - self-paging isolation holds: two bystander paging domains see
     zero QoS violations whatever the tenant fleet does;
   - the run is deterministic: same seed, byte-identical report.

   [~share:false] is the control arm for the bench: the template is
   frozen untouched (no shared frames), so every tenant faults its
   whole working set privately — same workload, no sharing, and with
   [~zram:false] no compressed tier either. *)

type result = {
  seed : int;
  tenants : int;
  killed : int;
  duration : Time.span;
  share : bool;
  zram : bool;
  (* sharing *)
  template_pages : int;
  template_frozen : int;  (** frames the freeze moved to the registry *)
  cow_shared_faults : int;
  cow_breaks : int;
  break_mean_us : float;
  break_p95_us : float;
  seg_fills : int;
  seg_hits : int;
  seg_resident : int;
  reg_books : Share.Registry.books;
  reg_balanced : bool;
  refs_leaked : int;
  (* residency *)
  resident_pages : int;  (** pages resident across live tenants *)
  tenant_frames : int;  (** frames live tenants hold *)
  shared_frames : int;  (** registry frames backing the shared pages *)
  frames_per_content : float;  (** resident pages per frame consumed *)
  (* compressed tier *)
  zram_hits : int;
  zram_misses : int;
  zram_hit_mean_us : float;  (** page-in cost when the pool hits *)
  zram_miss_mean_us : float;  (** page-in cost when the disk serves *)
  zpool_stats : Share.Zpool.stats option;
  zpool_frames : int;
  zpool_bursts : int;
  (* fault service *)
  fault_count : int;
  fault_mean_us : float;
  fault_p95_us : float;
  (* system books *)
  frames_total : int;
  frames_free : int;
  frames_held : int;
  frames_owned : int;
  books_balanced : bool;
  bystander_violations : int;
  violations : int;
  inject_accounted : bool;
  audit : Obs.Qos_audit.summary;
}

(* Geometry. The template owns [tpl_pages]; tenants read the low
   [tpl_pages - wspan] pages shared and write a rotating window over
   the top [wspan] — bigger than a tenant's frame capacity
   (guarantee + optimistic), so the inner pagers must evict and the
   compressed tier sees real traffic. *)
let tpl_pages = 24
let wspan = 12
let seg_pages = 8
let tpl_guarantee = 26
let tenant_guarantee = 6
let tenant_optimistic = 2
let reg_guarantee = tpl_pages + seg_pages + 4
let zpool_optimistic = 16
let zpool_budget = 12

let violations_for ~names ~ids =
  List.length
    (List.filter
       (fun (_, v) ->
         match v with
         | Obs.Qos_audit.Cpu_undersupply { dom; _ } -> List.mem dom names
         | Obs.Qos_audit.Usd_undersupply { stream; _ } ->
           List.exists
             (fun n ->
               String.length stream >= String.length n
               && String.sub stream 0 (String.length n) = n)
             names
         | Obs.Qos_audit.Mem_overcommit _ -> false
         | Obs.Qos_audit.Revocation_overdue { dom; _ }
         | Obs.Qos_audit.Guarantee_starved { dom } -> List.mem dom ids)
       (Obs.Qos_audit.events ()))

(* Merge the per-tenant fault-latency histograms (labels [t...]) into
   one (count, mean, p95-upper-bound) triple. *)
let tenant_fault_stats () =
  let views =
    List.filter_map
      (fun label ->
        if String.length label > 0 && label.[0] = 't' then
          Obs.Metrics.hist_view ~label "fault.latency_us"
        else None)
      (Obs.Metrics.labels_of "fault.latency_us")
  in
  let count = List.fold_left (fun a v -> a + v.Obs.Metrics.hv_count) 0 views in
  if count = 0 then (0, Float.nan, Float.nan)
  else begin
    let mean =
      List.fold_left
        (fun a v ->
          a +. (v.Obs.Metrics.hv_mean *. float_of_int v.Obs.Metrics.hv_count))
        0.0 views
      /. float_of_int count
    in
    let p95 =
      List.fold_left
        (fun a v -> Float.max a (Obs.Metrics.hist_quantile v 0.95))
        0.0 views
    in
    (count, mean, p95)
  end

type tenant_rec = {
  tr_name : string;
  tr_dom : System.domain;
  tr_cow : Share.Cow.tenant;
  tr_seg : Share.Seg.attachment;
  mutable tr_live : bool;
}

let run ?(seed = 42) ?(tenants = 32) ?(duration = Time.sec 40)
    ?(share = true) ?(zram = true) () =
  if tenants < 2 then invalid_arg "Tenancy.run: need at least 2 tenants";
  Obs.set_enabled true;
  Obs.reset ();
  Obs.Qos_audit.reset ();
  Inject.disarm ();
  if zram then
    Inject.arm
      { Inject.default_plan with
        seed;
        zpool_pressure =
          Some
            { Inject.zp_period = Time.sec 8; zp_hold = Time.sec 2;
              zp_shrink = zpool_budget } };
  (* Memory: every guarantee fits, plus headroom for the optimistic
     holdings (tenant windows, the zpool's budget). *)
  let guaranteed =
    tpl_guarantee + (tenants * tenant_guarantee) + reg_guarantee
    + (2 * tenant_guarantee) (* bystanders *)
    + tenant_guarantee (* proto *)
  in
  let frames_wanted =
    (guaranteed * 5 / 4) + zpool_optimistic + (tenants * tenant_optimistic)
  in
  let frames_per_mb = 1024 * 1024 / Addr.page_size in
  let mem_mb = max 2 ((frames_wanted + frames_per_mb - 1) / frames_per_mb) in
  let config = { System.default_config with seed; main_memory_mb = mem_mb } in
  let sys = System.create ~config () in
  let sim = System.sim sys in
  let ndoms = tenants + 3 in
  let cpu_slice = Time.us (max 20 (7_700 / ndoms)) in
  let usd_period_ms = max 400 (ndoms * 32) in
  let usd_period = Time.ms usd_period_ms in
  let usd_slice = Time.us (max 500 (usd_period_ms * 800 / ndoms)) in
  let qos () = Usbs.Qos.make ~period:usd_period ~slice:usd_slice () in
  let reg =
    match Share.Registry.create sys ~guarantee:reg_guarantee with
    | Ok r -> r
    (* Setup failwiths throughout: the tenant fleet admits by
       construction; a refusal or stacking error while building the
       world is an experiment bug, not a measurable outcome. *)
    | Error e -> failwith ("tenancy: registry: " ^ System.error_message e)
  in
  let seg = Share.Seg.create ~reg ~name:"text" ~npages:seg_pages () in
  let zpool =
    if not zram then None
    else
      match System.admit_service sys ~guarantee:0 ~optimistic:zpool_optimistic with
      | Error e -> failwith ("tenancy: zpool admit: " ^ System.error_message e)
      | Ok (_, client) ->
        Some
          (Share.Zpool.create ~sim ~frames:(System.frames sys) ~client
             ~ramtab:(System.ramtab sys) ~budget:zpool_budget ())
  in
  (* Bystanders: ordinary self-paging applications whose QoS must be
     untouched by anything the tenant fleet does. *)
  let bystanders =
    List.map
      (fun (name, pattern) ->
        match
          Workload.Paging_app.start sys ~name
            ~mode:Workload.Paging_app.Paging_in ~qos:(qos ())
            ~vm_bytes:(16 * Addr.page_size) ~phys_frames:tenant_guarantee
            ~optimistic:0 ~swap_bytes:(32 * Addr.page_size) ~cpu_slice
            ~pattern ()
        with
        | Ok a -> a
        | Error e -> failwith (Printf.sprintf "tenancy: %s: %s" name e))
      [ ("bystander0", Harness.pattern ~experiment:"tenancy" "seq");
        ("bystander1", Harness.pattern ~experiment:"tenancy" "hot") ]
  in
  (* The template: a domain big enough to keep the whole image
     resident for the freeze. *)
  let template =
    match
      System.add_domain sys ~name:"template" ~cpu_slice
        ~guarantee:tpl_guarantee ~optimistic:0 ()
    with
    | Ok d -> d
    | Error e -> failwith ("tenancy: template: " ^ System.error_message e)
  in
  let tpl_stretch, tpl_handle =
    match
      System.alloc_stretch template ~bytes:(tpl_pages * Addr.page_size) ()
    with
    | Error msg -> failwith ("tenancy: template stretch: " ^ msg)
    | Ok s ->
      (match
         System.bind_paged template ~initial_frames:tpl_pages
           ~swap_bytes:(2 * tpl_pages * Addr.page_size) ~qos:(qos ()) s ()
       with
      | Error e ->
        failwith ("tenancy: template pager: " ^ System.error_message e)
      | Ok (_, h) -> (s, h))
  in
  (* The envelope donor: tenants are admitted under this spec. *)
  let proto =
    match
      System.add_domain sys ~name:"proto" ~cpu_slice
        ~guarantee:tenant_guarantee ~optimistic:tenant_optimistic ()
    with
    | Ok d -> d
    | Error e -> failwith ("tenancy: proto: " ^ System.error_message e)
  in
  let frozen : Share.Cow.template Sync.Ivar.t = Sync.Ivar.create () in
  (* Template thread: warm the image (unless this is the no-share
     control arm), then freeze — surrender every resident page to the
     registry. *)
  ignore
    (Domains.spawn_thread template.System.dom ~name:"template.warm" (fun () ->
         if share then
           for p = 0 to tpl_pages - 1 do
             Domains.access template.System.dom
               (Stretch.page_base tpl_stretch p) `Write
           done;
         let tpl =
           Share.Cow.freeze ~reg ~name:"image" template tpl_handle
             ~npages:tpl_pages
         in
         Sync.Ivar.fill frozen tpl));
  let recs : tenant_rec list ref = ref [] in
  let killed = ref 0 in
  let template_frozen = ref 0 in
  let backing =
    match zpool with
    | None -> None
    | Some zp ->
      Some
        (fun label ->
          Harness.backing ~experiment:"tenancy" "zram"
            [ Share.Sd_zram.Zram { zc_zpool = zp; zc_label = label } ])
  in
  (* Tenant behaviour: read the segment and the shared low pages, then
     write the top [wspan] pages once (the CoW breaks) and settle into
     a read-mostly loop over that private window — wider than the
     tenant's frame capacity, so the inner pager pages against the
     compressed tier for the life of the run, and mostly with clean
     page-ins (one write per round keeps fresh versions flowing into
     the pool). *)
  let tenant_thread (d : System.domain) stretch seg_stretch =
    for p = 0 to seg_pages - 1 do
      Domains.access d.System.dom (Stretch.page_base seg_stretch p) `Read
    done;
    for p = 0 to tpl_pages - 1 do
      Domains.access d.System.dom (Stretch.page_base stretch p) `Read
    done;
    for p = tpl_pages - wspan to tpl_pages - 1 do
      Domains.access d.System.dom (Stretch.page_base stretch p) `Write
    done;
    let r = ref 0 in
    while true do
      let wp = tpl_pages - wspan + (!r mod wspan) in
      Domains.access d.System.dom (Stretch.page_base stretch wp) `Write;
      for k = 0 to 5 do
        let p = tpl_pages - wspan + (((!r * 3) + (k * 2)) mod wspan) in
        Domains.access d.System.dom (Stretch.page_base stretch p) `Read
      done;
      for k = 0 to 1 do
        let p = (!r + k) mod (tpl_pages - wspan) in
        Domains.access d.System.dom (Stretch.page_base stretch p) `Read
      done;
      Domains.access d.System.dom
        (Stretch.page_base seg_stretch (!r mod seg_pages))
        `Read;
      incr r;
      Proc.sleep (Time.ms 5)
    done
  in
  (* Orchestrator: wait for the freeze, retire the template domain
     (the shared frames must survive its death), fork the fleet, then
     kill half of it at T/2. *)
  ignore
    (Proc.spawn ~name:"tenancy.orchestrator" sim (fun () ->
         let tpl = Sync.Ivar.read frozen in
         template_frozen := Share.Cow.shared_frames tpl;
         System.kill_domain sys template;
         for i = 0 to tenants - 1 do
           let name = Printf.sprintf "t%02d" i in
           match
             Share.Cow.spawn sys ~template:tpl ~tpl_domain:proto ~name
               ?backing:
                 (match backing with
                 | None -> None
                 | Some mk -> Some (mk (Printf.sprintf "zram.%s" name)))
               ~initial_frames:2 ~npages:tpl_pages
               ~swap_bytes:(2 * tpl_pages * Addr.page_size) ~qos:(qos ()) ()
           with
           | Error e ->
             failwith
               (Printf.sprintf "tenancy: %s: %s" name (System.error_message e))
           | Ok (d, (cow, stretch)) ->
             (match Share.Seg.attach seg d with
             | Error e ->
               failwith
                 (Printf.sprintf "tenancy: %s seg: %s" name
                    (System.error_message e))
             | Ok (att, seg_stretch) ->
               recs :=
                 { tr_name = name; tr_dom = d; tr_cow = cow; tr_seg = att;
                   tr_live = true }
                 :: !recs;
               ignore
                 (Domains.spawn_thread d.System.dom ~name:(name ^ ".work")
                    (fun () -> tenant_thread d stretch seg_stretch)))
         done;
         recs := List.rev !recs;
         Proc.sleep_until (Time.add Time.zero (Time.to_ns duration / 2));
         (* kill the top half of the fleet mid-share *)
         List.iteri
           (fun i tr ->
             if i >= tenants / 2 then begin
               System.kill_domain sys tr.tr_dom;
               tr.tr_live <- false;
               incr killed
             end)
           !recs));
  System.run ~until:duration sys;
  (* ---- books ---------------------------------------------------- *)
  let fr = System.frames sys in
  let rt = System.ramtab sys in
  let live = List.filter (fun tr -> tr.tr_live) !recs in
  let tenant_frames =
    List.fold_left
      (fun a tr -> a + Frames.held tr.tr_dom.System.frames_client)
      0 live
  in
  (* Content residency: shared mappings cost no tenant frame; private
     pages cost exactly the frames the tenant holds (counting pool
     slack as content is the conservative direction for the ratio). *)
  let resident_pages =
    List.fold_left
      (fun a tr ->
        let s = Share.Cow.stats tr.tr_cow in
        a + s.Share.Cow.c_stat_shared_now + Share.Seg.mapped tr.tr_seg)
      0 live
    + tenant_frames
  in
  let reg_books = Share.Registry.books reg in
  let shared_frames = reg_books.Share.Registry.b_live_frames in
  let frames_per_content =
    if tenant_frames + shared_frames = 0 then Float.nan
    else
      float_of_int resident_pages /. float_of_int (tenant_frames + shared_frames)
  in
  (* every RamTab reference must be on a registry frame *)
  let total_refs = ref 0 in
  for pfn = 0 to Ramtab.nframes rt - 1 do
    total_refs := !total_refs + Ramtab.refs rt ~pfn
  done;
  let refs_leaked = !total_refs - reg_books.Share.Registry.b_live_refs in
  let held_sum =
    List.fold_left
      (fun acc d -> acc + Frames.held d.System.frames_client)
      0 (System.domains sys)
    + Frames.held (Share.Registry.client reg)
    + (match zpool with Some z -> Share.Zpool.frames_held z | None -> 0)
  in
  let owned = ref 0 in
  for pfn = 0 to Ramtab.nframes rt - 1 do
    if Ramtab.owner rt ~pfn <> None then incr owned
  done;
  let frames_total = Frames.total_frames fr in
  let frames_free = Frames.free_frames fr in
  let books_balanced =
    frames_free + held_sum = frames_total && !owned = held_sum
  in
  let break_mean_us, break_p95_us =
    match Obs.Metrics.hist_view "share.break_us" with
    | Some v -> (v.Obs.Metrics.hv_mean, Obs.Metrics.hist_quantile v 0.95)
    | None -> (Float.nan, Float.nan)
  in
  let fault_count, fault_mean_us, fault_p95_us = tenant_fault_stats () in
  let audit = Obs.Qos_audit.summarize () in
  let bystander_violations =
    violations_for
      ~names:[ "bystander0"; "bystander1" ]
      ~ids:
        (List.map
           (fun a -> Domains.id (Workload.Paging_app.domain a).System.dom)
           bystanders)
  in
  { seed;
    tenants;
    killed = !killed;
    duration;
    share;
    zram;
    template_pages = tpl_pages;
    template_frozen = !template_frozen;
    cow_shared_faults = Obs.Metrics.sum_labels "share.cow_shared";
    cow_breaks = Obs.Metrics.sum_labels "share.cow_break";
    break_mean_us;
    break_p95_us;
    seg_fills = Share.Seg.fills seg;
    seg_hits = Obs.Metrics.sum_labels "seg.hit";
    seg_resident = Share.Seg.resident seg;
    reg_books;
    reg_balanced = Share.Registry.books_balanced reg;
    refs_leaked;
    resident_pages;
    tenant_frames;
    shared_frames;
    frames_per_content;
    zram_hits = Obs.Metrics.sum_labels "zram.hit";
    zram_misses = Obs.Metrics.sum_labels "zram.miss";
    zram_hit_mean_us =
      (match Obs.Metrics.hist_view "zram.hit_us" with
      | Some v -> v.Obs.Metrics.hv_mean
      | None -> Float.nan);
    zram_miss_mean_us =
      (match Obs.Metrics.hist_view "zram.miss_us" with
      | Some v -> v.Obs.Metrics.hv_mean
      | None -> Float.nan);
    zpool_stats = (match zpool with Some z -> Some (Share.Zpool.stats z) | None -> None);
    zpool_frames = (match zpool with Some z -> Share.Zpool.frames_held z | None -> 0);
    zpool_bursts = (Inject.tally ()).Inject.zpool_bursts;
    fault_count;
    fault_mean_us;
    fault_p95_us;
    frames_total;
    frames_free;
    frames_held = held_sum;
    frames_owned = !owned;
    books_balanced;
    bystander_violations;
    violations = audit.Obs.Qos_audit.violations;
    inject_accounted = Inject.accounted ();
    audit }


let ok r =
  r.bystander_violations = 0 && r.reg_balanced && r.books_balanced
  && r.refs_leaked = 0
  && r.killed = r.tenants / 2
  && r.inject_accounted
  && (not r.share
     || (r.template_frozen > 0 && r.cow_shared_faults > 0 && r.cow_breaks > 0
        (* killing tenants can free a segment frame's last reference;
           a later fault refills it — so fills may exceed resident, but
           never the other way round, and residency never exceeds the
           segment *)
        && r.seg_resident > 0
        && r.seg_resident <= seg_pages
        && r.seg_fills >= r.seg_resident
        && r.frames_per_content >= 1.5))
  && (not r.zram || (r.zram_hits > 0 && r.zpool_bursts >= 1))

let fnum f = if Float.is_nan f then "n/a" else Report.f1 f

let print r =
  Report.heading "Multi-tenancy: CoW fleet over stacked pagers";
  Printf.printf "seed %d, %d tenants (%d killed at T/2), %.0f s, %s%s\n\n"
    r.seed r.tenants r.killed (Time.to_sec r.duration)
    (if r.share then "CoW sharing" else "no sharing (control)")
    (if r.zram then " + zram tier" else "");
  Printf.printf
    "template: %d pages, %d frozen into the registry; segment \"text\": %d \
     fills for %d resident pages, %d shared hits\n"
    r.template_pages r.template_frozen r.seg_fills r.seg_resident r.seg_hits;
  Printf.printf
    "CoW: %d shared-map faults, %d breaks (mean %s us, p95 <= %s us)\n"
    r.cow_shared_faults r.cow_breaks (fnum r.break_mean_us)
    (fnum r.break_p95_us);
  let b = r.reg_books in
  Printf.printf
    "registry: %d installs - %d frees = %d live frames; %d grants - %d \
     breaks - %d detaches = %d live refs (%s)\n"
    b.Share.Registry.b_installs b.Share.Registry.b_frees
    b.Share.Registry.b_live_frames b.Share.Registry.b_grants
    b.Share.Registry.b_breaks b.Share.Registry.b_detaches
    b.Share.Registry.b_live_refs
    (if r.reg_balanced then "books balance" else "BOOKS OFF");
  Printf.printf
    "residency: %d resident pages on %d tenant + %d shared frames = %s \
     pages/frame; %d refs leaked\n"
    r.resident_pages r.tenant_frames r.shared_frames
    (fnum r.frames_per_content) r.refs_leaked;
  (match r.zpool_stats with
  | None -> ()
  | Some z ->
    Printf.printf
      "zram: %d hits / %d misses; pool %d frames, %d stored, %d \
       incompressible, %d overflow, %d shed over %d pressure bursts\n"
      r.zram_hits r.zram_misses r.zpool_frames z.Share.Zpool.z_stored
      z.Share.Zpool.z_incompressible z.Share.Zpool.z_overflow
      z.Share.Zpool.z_shed_frames r.zpool_bursts;
    Printf.printf "zram page-in: hit mean %s us vs disk mean %s us\n"
      (fnum r.zram_hit_mean_us) (fnum r.zram_miss_mean_us));
  Printf.printf
    "tenant faults: %d, mean %s us, p95 <= %s us\n"
    r.fault_count (fnum r.fault_mean_us) (fnum r.fault_p95_us);
  Printf.printf "frames: %d free + %d held = %d total; RamTab owns %d (%s)\n\n"
    r.frames_free r.frames_held r.frames_total r.frames_owned
    (if r.books_balanced then "books balance" else "BOOKS OFF");
  Report.audit_section "Tenancy QoS audit" (Some r.audit);
  Printf.printf "bystander violations: %d\n" r.bystander_violations;
  print_endline
    (if ok r then
       "VERDICT: ok — one copy per shared page, balanced books through \
        the kills, bystanders untouched"
     else "VERDICT: FAILED")

let jf f = if Float.is_nan f then "null" else Printf.sprintf "%.3f" f

let to_json r =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s) fmt in
  line "  \"seed\": %d,\n" r.seed;
  line "  \"tenants\": %d,\n" r.tenants;
  line "  \"killed\": %d,\n" r.killed;
  line "  \"duration_s\": %.0f,\n" (Time.to_sec r.duration);
  line "  \"share\": %b,\n" r.share;
  line "  \"zram\": %b,\n" r.zram;
  line
    "  \"template\": {\"pages\": %d, \"frozen\": %d},\n"
    r.template_pages r.template_frozen;
  line
    "  \"cow\": {\"shared_faults\": %d, \"breaks\": %d, \"break_mean_us\": \
     %s, \"break_p95_us\": %s},\n"
    r.cow_shared_faults r.cow_breaks (jf r.break_mean_us) (jf r.break_p95_us);
  line
    "  \"seg\": {\"fills\": %d, \"hits\": %d, \"resident\": %d},\n"
    r.seg_fills r.seg_hits r.seg_resident;
  let bk = r.reg_books in
  line
    "  \"registry\": {\"installs\": %d, \"frees\": %d, \"grants\": %d, \
     \"breaks\": %d, \"detaches\": %d, \"live_frames\": %d, \"live_refs\": \
     %d, \"balanced\": %b, \"refs_leaked\": %d},\n"
    bk.Share.Registry.b_installs bk.Share.Registry.b_frees
    bk.Share.Registry.b_grants bk.Share.Registry.b_breaks
    bk.Share.Registry.b_detaches bk.Share.Registry.b_live_frames
    bk.Share.Registry.b_live_refs r.reg_balanced r.refs_leaked;
  line
    "  \"residency\": {\"resident_pages\": %d, \"tenant_frames\": %d, \
     \"shared_frames\": %d, \"pages_per_frame\": %s},\n"
    r.resident_pages r.tenant_frames r.shared_frames
    (jf r.frames_per_content);
  (match r.zpool_stats with
  | None -> line "  \"zram_tier\": null,\n"
  | Some z ->
    line
      "  \"zram_tier\": {\"hits\": %d, \"misses\": %d, \"pool_frames\": %d, \
       \"stored\": %d, \"incompressible\": %d, \"overflow\": %d, \
       \"shed_frames\": %d, \"bursts\": %d, \"hit_mean_us\": %s, \
       \"miss_mean_us\": %s},\n"
      r.zram_hits r.zram_misses r.zpool_frames z.Share.Zpool.z_stored
      z.Share.Zpool.z_incompressible z.Share.Zpool.z_overflow
      z.Share.Zpool.z_shed_frames r.zpool_bursts (jf r.zram_hit_mean_us)
      (jf r.zram_miss_mean_us));
  line
    "  \"faults\": {\"count\": %d, \"mean_us\": %s, \"p95_us\": %s},\n"
    r.fault_count (jf r.fault_mean_us) (jf r.fault_p95_us);
  line
    "  \"frames\": {\"total\": %d, \"free\": %d, \"held\": %d, \"owned\": \
     %d, \"books_balanced\": %b},\n"
    r.frames_total r.frames_free r.frames_held r.frames_owned
    r.books_balanced;
  line "  \"bystander_violations\": %d,\n" r.bystander_violations;
  line "  \"violations\": %d,\n" r.violations;
  line "  \"inject_accounted\": %b,\n" r.inject_accounted;
  line "  \"ok\": %b\n" (ok r);
  Buffer.add_string b "}";
  Buffer.contents b
