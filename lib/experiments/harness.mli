(** Shared experiment plumbing. *)

open Engine
open Core

val run_in_sim : System.t -> (unit -> 'a) -> 'a
(** Spawn [f] as a process in the system's simulator and drive the
    event loop until it returns. Fails if the simulation quiesces or
    exceeds its event budget first. *)

val fresh_system :
  ?page_table:[ `Linear | `Guarded ] -> ?usd_rollover:bool ->
  ?usd_laxity:bool -> ?main_memory_mb:int -> ?seed:int -> unit -> System.t

val bench_domain :
  System.t -> ?guarantee:int -> ?optimistic:int -> name:string -> unit ->
  System.domain
(** A domain with a generous CPU contract for micro-benchmarks; raises
    on admission failure. *)

val mean_span : Time.span list -> float
(** Mean in microseconds. *)

val pattern : experiment:string -> string -> Workload.Paging_app.pattern
(** Resolve a workload-pattern name through the registry
    ({!Workload.Paging_app.pattern_axis}), aborting the experiment
    with a did-you-mean hint on an unknown name — the one resolution
    route every experiment's pattern table shares. *)

val backing :
  experiment:string -> string -> Tier.Backing.ctx ->
  Usbs.Sfs.swapfile -> Tier.Backing.t
(** Resolve a backing spec (["tiered:cache-pages=24"], ["zram"], ...)
    through {!Tier.Backing.axis} into the [swapfile -> Backing.t]
    shape [Paging_app.start ?backing] takes, aborting the experiment
    on an unknown name or a missing capability. *)

val fail_verdict :
  experiment:string -> ?context:(string * string) list -> string -> 'a
(** Abort an experiment: print the experiment name, the message and
    each [(key, value)] context pair to stderr, then raise
    [Failure msg] — the message text is preserved verbatim, so
    call sites converted from bare [failwith] keep their legacy
    wording. *)
