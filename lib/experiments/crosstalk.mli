(** Quantifying Figure 2: external paging versus self-paging.

    A latency-sensitive "light" application touches a burst of swapped
    pages every 100 ms (a continuous-media-like reference pattern),
    while a "heavy" application pages out as fast as it can (dirty
    evictions, ≈11 ms disk writes). Two configurations:

    - {b self-paging}: each application resolves its own faults under
      its own disk guarantee (light 10%, heavy 20%);
    - {b external pager}: both are backed by a single pager domain
      with one disk guarantee (50%) servicing faults first-come
      first-served — the microkernel structure of Figure 2.

    The paper's argument, measured: under the external pager the light
    application's burst latency inflates and jitters (it queues behind
    the hog, which also spends the pager's resources, not its own);
    under self-paging it is isolated. *)

open Engine

type latency_stats = {
  bursts : int;
  mean_ms : float;
  p95_ms : float;
  max_ms : float;
}

type config_result = {
  light_latency : latency_stats;
  heavy_mbit : float;
  light_cpu_ms : float;   (** CPU consumed by the light domain *)
  heavy_cpu_ms : float;
  pager_cpu_ms : float;   (** 0 for self-paging *)
  fault_hists : (string * Obs.Metrics.hist_view) list;
      (** per-domain fault-latency histograms (us); empty when
          observability was off during the run *)
  audit : Obs.Qos_audit.summary option;
      (** QoS-audit verdict; [None] when observability was off *)
}

type result = { self_paging : config_result; external_pager : config_result }

val run :
  ?duration:Time.span -> ?burst_pages:int -> ?burst_period:Time.span ->
  unit -> result

val print : result -> unit
