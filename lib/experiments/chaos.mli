(** The chaos experiment: QoS firewalling under injected faults.

    Boots a small machine (2 MB = 256 frames) carrying five tenants:

    - {b victim} — a paging application whose swap extent is carpeted
      with injected faults (permanently-bad bloks, random transient
      media errors, latency spikes), whose USD client is stalled and
      whose fault event channel drops/delays notifications;
    - {b clean1}, {b clean2} — identical paging applications on clean
      extents, the control group;
    - {b doomed} — a domain hogging optimistic frames whose revocation
      handler is stalled past the 100 ms deadline, so the first
      revocation round kills it (the paper's protocol-flunk path);
    - {b press} — a frame-pressure gremlin that bursts guaranteed
      allocations per the plan, forcing revocation storms.

    The run asserts the paper's claim the hard way: with all of that
    going on, the QoS auditor must attribute {e zero} violations to the
    clean domains, the injection books must balance
    ([injected = retried + remapped + degraded + killed]), and the
    doomed domain's frames must all be back in the allocator's pool
    (verified against the RamTab). *)

open Engine
open Core

type domain_report = {
  dr_name : string;
  dr_mbit : float;  (** sustained throughput ([nan] if still warming) *)
  dr_accesses : int;  (** page accesses in the measured loop *)
  dr_violations : int;  (** QoS violations attributed to this domain *)
}

type result = {
  seed : int;
  duration : Time.span;
  victim : domain_report;
  victim_info : Sd_paged.info;
  cleans : domain_report list;
  tally : Inject.tally;
  accounted : bool;
      (** every injected media error met exactly one recovery action *)
  injected_by_class : (string * int) list;
  doomed_killed : bool;
  doomed_frames_reclaimed : bool;
      (** no RamTab frame still owned by the doomed domain *)
  intrusive_revocations : int;
  clean_violations : int;  (** must be 0 *)
  audit : Obs.Qos_audit.summary;
}

val plan_specs : first:int -> nblocks:int -> string list
(** The victim's injection plan as chaos-site specs (resolved through
    {!Inject.site_axis}), scoped to its swap extent — exposed so the
    registry tests can pin the spec route against the hand-built plan
    record. *)

val plan_for : seed:int -> first:int -> nblocks:int -> Inject.plan
(** {!plan_specs} resolved and applied to [{default_plan with seed}]. *)

val violations_for : names:string list -> ids:int list -> int
(** QoS-audit violations attributable to a domain, by name (CPU/USD
    feeds label streams ["name"] / ["name.swap"]) or by domain id
    (frame-side feeds). Shared with the other chaos-style experiments
    ({!Remote_page}). *)

val run : ?seed:int -> ?duration:Time.span -> unit -> result
(** Enables {!Obs}, resets collectors, arms the injection plan derived
    from [seed] and runs for [duration] (default 30 s) plus a 2 s
    injection-free drain so the recovery books settle. *)

val ok : result -> bool
(** The acceptance verdict: clean domains unperturbed, books balanced,
    doomed domain killed and reclaimed, and faults actually injected. *)

val print : result -> unit
val to_json : result -> string
