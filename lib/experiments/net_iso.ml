open Engine
open Core

(* --- Link shares: Figure 7 transplanted to the network ------------- *)

type shares_result = { senders : (string * float * float) list }

let packet_bytes = 1514

let run_shares ?(duration = Time.sec 30) () =
  let sim = Sim.create () in
  let link = Usnet.Link.create sim in
  let senders =
    List.map
      (fun slice_ms ->
        let name = Printf.sprintf "tx%d" (slice_ms * 100 / 250) in
        let c =
          match
            Usnet.Link.admit link ~name ~period:(Time.ms 250)
              ~slice:(Time.ms slice_ms) ()
          with
          | Ok c -> c
          (* Setup failwiths throughout: admissions here are sized to
             fit by construction, so a refusal is a bug in the
             experiment, not a measurable outcome. *)
          | Error e -> failwith (Usnet.Link.admit_error_message e)
        in
        (* Flat out: keep the transmit ring full. *)
        ignore
          (Proc.spawn ~name sim (fun () ->
               let rec loop () =
                 (match Usnet.Link.send link c ~bytes:packet_bytes with
                 | Ok _ | Error `Retired -> ());
                 Proc.yield ();
                 loop ()
               in
               loop ()));
        (name, c))
      [ 25; 50; 100 ]
  in
  Sim.run ~until:duration sim;
  let rates =
    List.map
      (fun (name, c) ->
        ( name,
          float_of_int (Usnet.Link.bytes_sent c)
          *. 8.0 /. Time.to_sec duration /. 1e6 ))
      senders
  in
  let base = match rates with (_, r) :: _ -> r | [] -> nan in
  { senders = List.map (fun (n, r) -> (n, r, r /. base)) rates }

let print_shares r =
  Report.heading
    "Network link under guarantees: the Fig-7 result on another resource";
  Report.table
    ~header:[ "sender"; "Mbit/s"; "ratio" ]
    (List.map
       (fun (n, mbit, ratio) -> [ n; Report.f2 mbit; Report.f2 ratio ])
       r.senders);
  print_newline ();
  print_endline
    "The same Atropos EDF core that schedules the disk schedules the link:";
  print_endline "three flat-out senders with 10/20/40% guarantees get 1:2:4."

(* --- Kernel crosstalk across orthogonal resources ------------------- *)

type crosstalk_result = {
  nemesis_mean_ms : float;
  nemesis_p95_ms : float;
  shared_mean_ms : float;
  shared_p95_ms : float;
  packets : int * int;
}

(* A heavy pager: domain writing through a tiny cache, forgetful
   backing, 20% disk guarantee. *)
let start_heavy_pager sys =
  let d =
    match
      System.add_domain sys ~name:"heavy" ~guarantee:2 ~optimistic:0 ()
    with
    | Ok d -> d
    | Error e -> failwith (System.error_message e)
  in
  let s =
    match System.alloc_stretch d ~bytes:(2 * 1024 * 1024) () with
    | Ok s -> s
    | Error e -> failwith e
  in
  ignore
    (Domains.spawn_thread d.System.dom ~name:"churn" (fun () ->
         let qos = Usbs.Qos.make ~period:(Time.ms 250) ~slice:(Time.ms 50) () in
         (match
            System.bind_paged d ~forgetful:true ~initial_frames:2
              ~swap_bytes:(8 * 1024 * 1024) ~qos s ()
          with
         | Ok _ -> ()
         | Error e -> failwith (System.error_message e));
         let n = Stretch.npages s in
         let rec loop () =
           for i = 0 to n - 1 do
             Domains.access d.System.dom (Stretch.page_base s i) `Write
           done;
           loop ()
         in
         loop ()));
  d

(* The streamer sends one packet every [gap]; latency from submission
   to wire exit is recorded after warm-up. *)
let streamer_loop ~sim ~send ~gap ~warmup stats () =
  let rec loop () =
    let t0 = Sim.now sim in
    send ();
    if Sim.now sim > warmup then
      Stats.add stats (Time.to_ms (Time.diff (Sim.now sim) t0));
    let dt = Time.diff (Sim.now sim) t0 in
    if dt < gap then Proc.sleep (gap - dt);
    loop ()
  in
  loop ()

let gap = Time.ms 2
let warmup = Time.sec 10

(* Nemesis structure: the streamer owns a link guarantee and transmits
   directly; the pager self-pages. Orthogonal resources, no shared
   servers. *)
let run_nemesis ~duration =
  let sys = Harness.fresh_system () in
  let sim = System.sim sys in
  let link = Usnet.Link.create sim in
  let tx =
    match
      Usnet.Link.admit link ~name:"stream" ~period:(Time.ms 10)
        ~slice:(Time.ms 2) ()
    with
    | Ok c -> c
    | Error e -> failwith (Usnet.Link.admit_error_message e)
  in
  ignore (start_heavy_pager sys);
  let stats = Stats.create ~keep_samples:true () in
  ignore
    (Proc.spawn ~name:"stream" sim
       (streamer_loop ~sim
          ~send:(fun () ->
            match Usnet.Link.transmit link tx ~bytes:packet_bytes with
            | Ok () -> ()
            | Error `Retired -> failwith "net_iso: stream client retired")
          ~gap ~warmup stats));
  System.run sys ~until:duration;
  stats

(* Shared-driver structure: one "kernel" domain's single event loop
   both resolves page faults (blocking on ~11 ms disk writes) and
   transmits packets — the execution-environment sharing the paper
   warns about. *)
type kernel_job =
  | Send_packet of unit Sync.Ivar.t
  | Resolve of Fault.t * Stretch_driver.t

let run_shared ~duration =
  let sys = Harness.fresh_system () in
  let sim = System.sim sys in
  let link = Usnet.Link.create sim in
  let kernel =
    match
      System.add_domain sys ~name:"kernel" ~cpu_slice:(Time.ms 2)
        ~guarantee:8 ~optimistic:0 ()
    with
    | Ok d -> d
    | Error e -> failwith (System.error_message e)
  in
  let ktx =
    match
      Usnet.Link.admit link ~name:"kernel-tx" ~period:(Time.ms 10)
        ~slice:(Time.ms 2) ()
    with
    | Ok c -> c
    | Error e -> failwith (Usnet.Link.admit_error_message e)
  in
  let jobs = Sync.Mailbox.create () in
  ignore
    (Domains.spawn_thread kernel.System.dom ~name:"event-loop" (fun () ->
         let rec loop () =
           (match Sync.Mailbox.recv jobs with
           | Send_packet done_ ->
             (match Usnet.Link.transmit link ktx ~bytes:packet_bytes with
             | Ok () -> ()
             | Error `Retired -> failwith "net_iso: kernel tx retired");
             Sync.Ivar.fill done_ ()
           | Resolve (fault, backing) ->
             (match backing.Stretch_driver.full fault with
             | Stretch_driver.Success ->
               ignore (Sync.Ivar.try_fill fault.Fault.resolved Fault.Resolved)
             | Stretch_driver.Retry | Stretch_driver.Failure _ ->
               ignore
                 (Sync.Ivar.try_fill fault.Fault.resolved
                    (Fault.Failed "kernel pager failed"))));
           loop ()
         in
         loop ()));
  (* Heavy pager backed by the kernel domain (its faults become kernel
     jobs, like the external pager, sharing the event loop with tx). *)
  let heavy =
    match System.add_domain sys ~name:"heavy" ~guarantee:2 ~optimistic:0 () with
    | Ok d -> d
    | Error e -> failwith (System.error_message e)
  in
  let hs =
    match System.alloc_stretch heavy ~bytes:(2 * 1024 * 1024) () with
    | Ok s -> s
    | Error e -> failwith e
  in
  Pdom.set
    (Domains.pdom kernel.System.dom)
    ~sid:hs.Stretch.sid Hw.Rights.rw_meta;
  let qos = Usbs.Qos.make ~period:(Time.ms 250) ~slice:(Time.ms 50) () in
  let swap =
    match
      Usbs.Sfs.open_swap (System.sfs sys) ~name:"kernel.swap"
        ~bytes:(8 * 1024 * 1024) ~qos ()
    with
    | Ok s -> s
    | Error e -> failwith (Usbs.Sfs.open_error_message e)
  in
  let backing =
    match
      Sd_paged.create ~forgetful:true ~initial_frames:2 ~swap
        kernel.System.env
    with
    | Ok (b, _) -> b
    | Error e -> failwith e
  in
  backing.Stretch_driver.bind hs;
  let proxy =
    { Stretch_driver.name = "kernel-proxy";
      bind = (fun _ -> ());
      fast = (fun _ -> Stretch_driver.Retry);
      full =
        (fun fault ->
          Sync.Mailbox.send jobs (Resolve (fault, backing));
          match Sync.Ivar.read fault.Fault.resolved with
          | Fault.Resolved -> Stretch_driver.Success
          | Fault.Failed _ -> Stretch_driver.Failure "kernel failed");
      relinquish = (fun ~want:_ -> 0);
      resident_pages = (fun () -> 0);
      free_frames = (fun () -> 0) }
  in
  Mm_entry.bind heavy.System.mm hs proxy;
  ignore
    (Domains.spawn_thread heavy.System.dom ~name:"churn" (fun () ->
         let n = Stretch.npages hs in
         let rec loop () =
           for i = 0 to n - 1 do
             Domains.access heavy.System.dom (Stretch.page_base hs i) `Write
           done;
           loop ()
         in
         loop ()));
  (* The streamer's packets go through the shared kernel loop. *)
  let stats = Stats.create ~keep_samples:true () in
  ignore
    (Proc.spawn ~name:"stream" sim
       (streamer_loop ~sim
          ~send:(fun () ->
            let done_ = Sync.Ivar.create () in
            Sync.Mailbox.send jobs (Send_packet done_);
            Sync.Ivar.read done_)
          ~gap ~warmup stats));
  System.run sys ~until:duration;
  stats

let run_kernel_crosstalk ?(duration = Time.sec 60) () =
  let nem = run_nemesis ~duration in
  let shared = run_shared ~duration in
  { nemesis_mean_ms = Stats.mean nem;
    nemesis_p95_ms = Stats.percentile nem 95.0;
    shared_mean_ms = Stats.mean shared;
    shared_p95_ms = Stats.percentile shared 95.0;
    packets = (Stats.count nem, Stats.count shared) }

let print_kernel_crosstalk r =
  Report.heading
    "Crosstalk across orthogonal resources: shared driver domain vs Nemesis";
  Report.table
    ~header:[ "structure"; "packets"; "tx latency mean ms"; "p95 ms" ]
    [ [ "Nemesis (own link guarantee)";
        string_of_int (fst r.packets);
        Report.f2 r.nemesis_mean_ms; Report.f2 r.nemesis_p95_ms ];
      [ "shared driver event loop";
        string_of_int (snd r.packets);
        Report.f2 r.shared_mean_ms; Report.f2 r.shared_p95_ms ] ];
  print_newline ();
  print_endline
    "With network transmission and fault resolution sharing one execution";
  print_endline
    "environment, a heavily paging application delays packets behind ~11ms";
  print_endline
    "disk writes — the paper's argument against in-kernel device drivers,";
  print_endline "measured. Vertical structure keeps the resources orthogonal."
