open Engine
open Hw
open Core

type round_report = {
  rr_index : int;
  rr_target : string;  (* "data" or "journal" *)
  rr_crashes : int;
  rr_replayed : int;
  rr_torn : int;
  rr_conflicts : int;
  rr_idempotent : bool;
  rr_committed : int;
  rr_verified : int;
  rr_lost : int;
  rr_restored : int;
  rr_revived : bool;
}

type result = {
  seed : int;
  rounds : round_report list;
  total_replayed : int;
  total_torn : int;
  total_restored : int;
  total_lost : int;
  clean_violations : int;
  audit : Obs.Qos_audit.summary;
}

(* Enough journal for every Commit record the victim and the two
   bystanders append across all rounds, with plenty of headroom — a
   full journal would silently degrade to the unjournaled behaviour
   and the experiment would be measuring nothing. *)
let journal_blocks = 8192

let victim_pages = 48
let victim_name = "victim"

let qos () = Usbs.Qos.make ~period:(Time.ms 250) ~slice:(Time.ms 50) ()

let start_clean sys ~name =
  match
    Workload.Paging_app.start sys ~name ~mode:Workload.Paging_app.Paging_in
      ~qos:(qos ()) ~vm_bytes:(1024 * 1024) ~phys_frames:8 ~optimistic:0
      ~swap_bytes:(4 * 1024 * 1024) ()
  with
  | Ok a -> a
  | Error e ->
    Harness.fail_verdict ~experiment:"crash-recover"
      ~context:[ ("stage", "start_clean"); ("domain", name) ]
      (Printf.sprintf "crash-recover: %s: %s" name e)

(* Start (or restart) the victim: a continuous writer over a small
   stretch, restartable so its swapfile survives its death detached.
   The restart path reattaches the swapfile and restores the
   journal-committed page image; the thread then reads every page
   (faulting the restored ones back in from swap) before resuming the
   dirtying sweep — if a restored page's contents are gone, that read
   is a domain fault and the incarnation dies, which the round report
   records as not revived. *)
let start_victim sys ~restart spec_opt =
  let d =
    match spec_opt with
    | None ->
      System.add_domain sys ~name:victim_name ~cpu_period:(Time.ms 10)
        ~cpu_slice:(Time.of_ms_float 1.5) ~guarantee:8 ~optimistic:0 ()
    | Some sp -> System.respawn sys sp
  in
  let d =
    match d with
    | Ok d -> d
    | Error e ->
      Harness.fail_verdict ~experiment:"crash-recover"
        ~context:[ ("stage", "victim admission") ]
        ("crash-recover: victim: " ^ System.error_message e)
  in
  let s =
    match
      System.alloc_stretch d ~bytes:(victim_pages * Addr.page_size) ()
    with
    | Ok s -> s
    | Error e ->
      Harness.fail_verdict ~experiment:"crash-recover"
        ~context:[ ("stage", "victim stretch") ]
        ("crash-recover: victim: " ^ e)
  in
  let started = Sync.Ivar.create () in
  ignore
    (Domains.spawn_thread d.System.dom ~name:"main" (fun () ->
         let bound =
           if restart then
             System.bind_paged_restored d ~initial_frames:8 ~qos:(qos ()) s ()
           else
             System.bind_paged d ~initial_frames:8 ~restartable:true
               ~swap_bytes:(2 * 1024 * 1024) ~qos:(qos ()) s ()
         in
         match bound with
         | Error e ->
           Sync.Ivar.fill started (Error (System.error_message e))
         | Ok (_driver, handle) ->
           Sync.Ivar.fill started (Ok handle);
           let touch p access =
             Domains.access d.System.dom (Stretch.page_base s p) access;
             Domains.consume_cpu d.System.dom (Time.us 20)
           in
           (* Fault everything in (restored pages come from swap)... *)
           for p = 0 to victim_pages - 1 do
             touch p `Read
           done;
           (* ...then dirty it over and over. *)
           let rec loop () =
             for p = 0 to victim_pages - 1 do
               touch p `Write
             done;
             loop ()
           in
           loop ()));
  let sim = System.sim sys in
  let fuel = ref 1_000_000 in
  while Sync.Ivar.peek started = None && !fuel > 0 do
    if Sim.step sim then decr fuel else fuel := 0
  done;
  match Sync.Ivar.peek started with
  | Some (Ok handle) -> (d, handle)
  | Some (Error e) ->
    Harness.fail_verdict ~experiment:"crash-recover"
      ~context:[ ("stage", "victim bind") ]
      ("crash-recover: victim: " ^ e)
  | None ->
    Harness.fail_verdict ~experiment:"crash-recover"
      ~context:[ ("stage", "victim bind") ]
      "crash-recover: victim setup did not complete"

(* One seeded, one-shot crash point scoped to the victim's swap: any
   durable write the victim issues inside the window after [after] is
   torn at a seeded prefix. Site scoping keeps the bystanders' own
   journal appends (same shared journal region) out of the blast
   radius — the crash models the *victim pager* dying mid-write. *)
let crash_plan ~seed ~after ~first ~len =
  { Inject.seed;
    blok_faults = [];
    regions = [];
    crashes =
      [ { Inject.cp_after = after;
          cp_site = Some (victim_name ^ ".swap");
          cp_first = first;
          cp_len = len } ];
    stalls = [];
    chans = [];
    links = [];
    pressure = None;
    zpool_pressure = None;
    node_faults = [] }

let run_for sys span =
  let sim = System.sim sys in
  System.run ~until:(Time.add (Sim.now sim) span) sys

(* Run until the victim incarnation is dead (the crash fired and its
   next fault was fatal); bounded so a plan that never fires cannot
   hang the experiment. *)
let run_until_dead sys dom ~bound =
  let sim = System.sim sys in
  let deadline = Time.add (Sim.now sim) bound in
  let rec go () =
    if not (Domains.alive dom) then true
    else if Sim.now sim >= deadline then false
    else begin
      run_for sys (Time.ms 50);
      go ()
    end
  in
  go ()

(* Remount must run on a simulation process: the journal scan is a
   timed read under the journal client's own guarantee. *)
let remount_now sys =
  let sfs = System.sfs sys in
  let out = ref None in
  let sim = System.sim sys in
  ignore
    (Proc.spawn ~name:"remount" sim (fun () ->
         out := Some (Usbs.Sfs.remount sfs)));
  let fuel = ref 1_000_000 in
  while !out = None && !fuel > 0 do
    if Sim.step sim then decr fuel else fuel := 0
  done;
  match !out with
  | Some (Ok st) -> st
  | Some (Error e) ->
    Harness.fail_verdict ~experiment:"crash-recover"
      ~context:[ ("stage", "remount") ]
      ("crash-recover: remount: " ^ e)
  | None ->
    Harness.fail_verdict ~experiment:"crash-recover"
      ~context:[ ("stage", "remount") ]
      "crash-recover: remount did not complete"

(* The idempotence check compares the journal-recovered state: the free
   map and every detached swap's rebuilt tables. Live attached swaps
   (the bystanders) keep committing between the two remounts, so their
   sections of the snapshot legitimately drift. *)
let recovered_part snap =
  let keep = ref false in
  String.split_on_char '\n' snap
  |> List.filter (fun line ->
         if String.length line >= 5 && String.sub line 0 5 = "free=" then begin
           keep := true;
           true
         end
         else if String.length line >= 5 && String.sub line 0 5 = "swap " then begin
           (* A swap block header: keep the block iff it is detached. *)
           let n = String.length line in
           keep := n >= 9 && String.sub line (n - 9) 9 = " detached";
           !keep
         end
         else !keep)
  |> String.concat "\n"

let violations_for ~names ~ids =
  List.length
    (List.filter
       (fun (_, v) ->
         match v with
         | Obs.Qos_audit.Cpu_undersupply { dom; _ } -> List.mem dom names
         | Obs.Qos_audit.Usd_undersupply { stream; _ } ->
           List.exists
             (fun n ->
               String.length stream >= String.length n
               && String.sub stream 0 (String.length n) = n)
             names
         | Obs.Qos_audit.Mem_overcommit _ -> false
         | Obs.Qos_audit.Revocation_overdue { dom; _ }
         | Obs.Qos_audit.Guarantee_starved { dom } -> List.mem dom ids)
       (Obs.Qos_audit.events ()))

let run ?(seed = 42) ?(rounds = 4) () =
  Obs.set_enabled true;
  Obs.reset ();
  Inject.disarm ();
  let config =
    { System.default_config with
      seed;
      main_memory_mb = 2;
      sfs_journal_blocks = journal_blocks }
  in
  let sys = System.create ~config () in
  let sim = System.sim sys in
  let sfs = System.sfs sys in
  let clean1 = start_clean sys ~name:"clean1" in
  let clean2 = start_clean sys ~name:"clean2" in
  let victim = ref (start_victim sys ~restart:false None) in
  let vspec = System.spec (fst !victim) in
  (* Let everyone settle into steady state before the first crash. *)
  run_for sys (Time.sec 2);
  let reports = ref [] in
  for r = 1 to rounds do
    let _, handle = !victim in
    (* Alternate the tear between the victim's data extent and the
       shared journal region: a torn page write and a torn intent
       record exercise different halves of the recovery path. *)
    let target, (first, len) =
      if r mod 2 = 1 then ("data", Sd_paged.swap_extent handle)
      else ("journal", (0, journal_blocks))
    in
    let after = Time.add (Sim.now sim) (Time.ms (40 + (13 * r))) in
    Inject.arm (crash_plan ~seed:(seed + r) ~after ~first ~len);
    let died = run_until_dead sys (fst !victim).System.dom ~bound:(Time.sec 20) in
    let crashes = (Inject.tally ()).Inject.crashes in
    Inject.disarm ();
    if not died then
      Harness.fail_verdict ~experiment:"crash-recover"
        ~context:[ ("round", string_of_int r); ("target", target) ]
        "crash-recover: victim did not crash";
    (* Injection-free drain so the bystanders' in-flight work settles. *)
    run_for sys (Time.ms 500);
    (* Remount: replay the intent journal, rebuild the control state,
       quarantine the torn tail. Twice — recovery must be idempotent. *)
    let st1 = remount_now sys in
    let snap1 = recovered_part (Usbs.Sfs.snapshot sfs) in
    let _st2 = remount_now sys in
    let snap2 = recovered_part (Usbs.Sfs.snapshot sfs) in
    (* Every journal-committed page slot must still carry its durable
       stamp: commits were appended only after the data landed, and
       committed slots are never overwritten in place. *)
    let committed, verified =
      match Usbs.Sfs.find_swap sfs (victim_name ^ ".swap") with
      | None -> (0, 0)
      | Some sf ->
        let pairs = Usbs.Sfs.committed_pairs sf in
        ( List.length pairs,
          List.length
            (List.filter (fun (_, slot) -> Usbs.Sfs.slot_ok sf ~slot) pairs)
        )
    in
    (* Restart: respawn under the original contract, reattach the
       swapfile by name, restore the committed image, fault it back. *)
    victim := start_victim sys ~restart:true (Some vspec);
    run_for sys (Time.sec 2);
    let restored = (Sd_paged.info (snd !victim)).Sd_paged.restored_pages in
    let revived = Domains.alive (fst !victim).System.dom in
    reports :=
      { rr_index = r;
        rr_target = target;
        rr_crashes = crashes;
        rr_replayed = st1.Usbs.Sfs.rm_replayed;
        rr_torn = st1.Usbs.Sfs.rm_torn;
        rr_conflicts = st1.Usbs.Sfs.rm_conflicts;
        rr_idempotent = snap1 = snap2;
        rr_committed = committed;
        rr_verified = verified;
        rr_lost = committed - verified;
        rr_restored = restored;
        rr_revived = revived }
      :: !reports
  done;
  (* Final drain, then the control group's verdict. *)
  run_for sys (Time.sec 1);
  let viol app name =
    violations_for ~names:[ name ]
      ~ids:[ Domains.id (Workload.Paging_app.domain app).System.dom ]
  in
  let rounds_r = List.rev !reports in
  let sum f = List.fold_left (fun a r -> a + f r) 0 rounds_r in
  { seed;
    rounds = rounds_r;
    total_replayed = sum (fun r -> r.rr_replayed);
    total_torn = sum (fun r -> r.rr_torn);
    total_restored = sum (fun r -> r.rr_restored);
    total_lost = sum (fun r -> r.rr_lost);
    clean_violations = viol clean1 "clean1" + viol clean2 "clean2";
    audit = Obs.Qos_audit.summarize () }

let ok r =
  r.rounds <> []
  && List.for_all
       (fun rr ->
         rr.rr_crashes = 1 && rr.rr_idempotent && rr.rr_lost = 0
         && rr.rr_revived
         && rr.rr_conflicts = 0)
       r.rounds
  && r.total_lost = 0 && r.clean_violations = 0

let print r =
  Report.heading "Crash recovery: intent journal, torn writes, restart";
  Printf.printf "seed %d, %d crash/remount/restart rounds\n\n" r.seed
    (List.length r.rounds);
  Report.table
    ~header:
      [ "round"; "target"; "crashes"; "replayed"; "torn"; "idempotent";
        "committed"; "verified"; "lost"; "restored"; "revived" ]
    (List.map
       (fun rr ->
         [ string_of_int rr.rr_index; rr.rr_target;
           string_of_int rr.rr_crashes; string_of_int rr.rr_replayed;
           string_of_int rr.rr_torn; string_of_bool rr.rr_idempotent;
           string_of_int rr.rr_committed; string_of_int rr.rr_verified;
           string_of_int rr.rr_lost; string_of_int rr.rr_restored;
           string_of_bool rr.rr_revived ])
       r.rounds);
  print_newline ();
  Printf.printf
    "totals: %d records replayed, %d torn records quarantined, %d pages \
     restored, %d committed pages lost\n"
    r.total_replayed r.total_torn r.total_restored r.total_lost;
  Report.audit_section "Crash-recovery QoS audit" (Some r.audit);
  Printf.printf "clean-domain violations: %d\n" r.clean_violations;
  print_endline
    (if ok r then
       "VERDICT: ok — no journal-committed page lost, recovery \
        idempotent, bystanders unperturbed"
     else "VERDICT: FAILED")

let to_json r =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Buffer.add_string b (Printf.sprintf "  \"seed\": %d,\n" r.seed);
  let round rr =
    Printf.sprintf
      "{\"round\": %d, \"target\": %S, \"crashes\": %d, \"replayed\": %d, \
       \"torn\": %d, \"idempotent\": %b, \"committed\": %d, \"verified\": \
       %d, \"lost\": %d, \"restored\": %d, \"revived\": %b}"
      rr.rr_index rr.rr_target rr.rr_crashes rr.rr_replayed rr.rr_torn
      rr.rr_idempotent rr.rr_committed rr.rr_verified rr.rr_lost
      rr.rr_restored rr.rr_revived
  in
  Buffer.add_string b
    (Printf.sprintf "  \"rounds\": [%s],\n"
       (String.concat ", " (List.map round r.rounds)));
  Buffer.add_string b
    (Printf.sprintf
       "  \"recovered\": {\"replayed\": %d, \"torn\": %d, \"restored\": \
        %d, \"lost\": %d},\n"
       r.total_replayed r.total_torn r.total_restored r.total_lost);
  Buffer.add_string b
    (Printf.sprintf "  \"clean_violations\": %d,\n" r.clean_violations);
  Buffer.add_string b (Printf.sprintf "  \"ok\": %b\n" (ok r));
  Buffer.add_string b "}";
  Buffer.contents b
