open Engine
open Core

type domain_report = {
  dr_name : string;
  dr_pattern : string;
  dr_tiered : bool;
  dr_mbit : float;
  dr_accesses : int;
  dr_fault_mean_us : float;
  dr_fault_p95_us : float;
  dr_violations : int;
}

type cell = {
  c_name : string;
  c_mode : string;
  c_domains : domain_report list;
  c_fleet : Tier.Fleet.stats;
  c_health : Tier.Fleet.node_health list;
  c_books_balanced : bool;
  c_store_totals : Tier.Fleet.store_stats;
  c_lost_slots : int;
  c_overhead : float;
  c_degraded_count : int;
  c_degraded_mean_us : float;
  c_disk_floor_us : float;
  c_bystander_violations : int;
  c_tiered_violations : int;
  c_audit : Obs.Qos_audit.summary;
}

type result = {
  seed : int;
  duration : Time.span;
  replicated : cell;
  erasure : cell;
  speedup : float;
  deterministic : bool;
}

let patterns =
  List.map
    (fun n -> (n, Harness.pattern ~experiment:"erasure" n))
    [ "seq"; "rand"; "hot" ]

let fault_hist name =
  match Obs.Metrics.hist_view ~label:name "fault.latency_us" with
  | Some v -> (v.Obs.Metrics.hv_mean, Obs.Metrics.hist_quantile v 0.95)
  | None -> (nan, nan)

let start_app sys ~name ~pattern ?backing () =
  (* six apps share the disk: 6 x 35/250 = 0.84 leaves admission room *)
  let qos = Usbs.Qos.make ~period:(Time.ms 250) ~slice:(Time.ms 35) () in
  match
    Workload.Paging_app.start sys ~name ~mode:Workload.Paging_app.Paging_in
      ~qos ~vm_bytes:(1024 * 1024) ~phys_frames:8
      ~swap_bytes:(4 * 1024 * 1024) ?backing ~pattern ()
  with
  | Ok a -> a
  | Error e ->
      Harness.fail_verdict ~experiment:"erasure" ~context:[ ("app", name) ]
        (Printf.sprintf "erasure: %s: %s" name e)

(* A six-member ring so an Erasure {k = 4; m = 2} stripe spans every
   member, plus one standby that joins mid-run. Capacity is generous:
   the experiment is about losses and degraded reads, not placement
   pressure (the failover experiment covers full nodes). *)
let member_count = 6
let node_capacity = 420
let node_name i = Printf.sprintf "n%d" i
let standby_name = "n6"

(* Two wipes, m losses apart, plus a membership change and a lossy
   checksum — all virtual time / plan-seeded dice, no wall clock:
   n1 forgets its contents at T/3, n2 at 0.45 T (so an erasure stripe
   is down exactly m = 2 shards until repair catches up), the standby
   joins at 0.6 T, and every shard served by n3 has a 2% chance of
   failing its checksum. *)
let plan_for ~seed ~duration =
  let d = Time.to_ns duration in
  { Inject.default_plan with
    seed;
    node_faults =
      [ Inject.node_fault ~wipe_at:(Time.ns (d / 3)) (node_name 1);
        Inject.node_fault ~wipe_at:(Time.ns (d * 45 / 100)) (node_name 2);
        Inject.node_fault ~join_at:(Time.ns (d * 3 / 5)) standby_name;
        Inject.node_fault ~corrupt:0.02 (node_name 3) ] }

(* The fleet rides a gigabit fabric with jumbo frames — the
   disaggregated-memory premise (the network is an order of magnitude
   closer to DRAM than the disk); a shard or a whole page fits one
   frame. The disk floor the degraded path is measured against is the
   same one the bystanders pay. *)
let mk_node sys name =
  let link =
    Usnet.Link.create ~name ~params:Usnet.Net_params.gigabit (System.sim sys)
  in
  (name, Tier.Remote_node.create ~capacity_pages:node_capacity (), link)

(* The repair budget is the same deliberate trickle as the failover
   experiment (2 entries every 250 ms): with two nodes wiped the fleet
   cannot re-shard fast enough, so reads in the window MUST be served
   degraded — that window is what the experiment measures. *)
let build_fleet ~seed ~redundancy sys =
  Tier.Fleet.create ~seed ~redundancy
    ~standby:[ mk_node sys standby_name ]
    ~repair_period:(Time.ms 250) ~repair_budget:2
    ~nodes:(List.init member_count (fun i -> mk_node sys (node_name i)))
    (System.sim sys)

let run_cell ~seed ~duration ~name ~mode ~redundancy =
  Obs.set_enabled true;
  Obs.reset ();
  Inject.disarm ();
  let config = { System.default_config with seed; main_memory_mb = 2 } in
  let sys = System.create ~config () in
  let fleet = build_fleet ~seed ~redundancy sys in
  let stores = ref [] in
  let disk_apps =
    List.map
      (fun (pat, pattern) ->
        let nm = "disk_" ^ pat in
        (nm, pat, false, start_app sys ~name:nm ~pattern ()))
      patterns
  in
  let tier_apps =
    List.map
      (fun (pat, pattern) ->
        let nm = "fleet_" ^ pat in
        (* per-node links: 3 domains x 5/20 + the fleet's repair
           client 2/20 = 0.85 of each link *)
        let clients =
          match
            Tier.Fleet.admit_clients fleet ~name:(nm ^ ".tier")
              ~period:(Time.ms 20) ~slice:(Time.ms 5) ~extra:true
              ~laxity:(Time.of_ms_float 2.0) ()
          with
          | Ok cs -> cs
          | Error e ->
              Harness.fail_verdict ~experiment:"erasure"
                ~context:[ ("cell", name); ("app", nm) ]
                ("erasure: " ^ Usnet.Link.admit_error_message e)
        in
        let backing =
          Harness.backing ~experiment:"erasure" "fleet:cache-pages=24"
            [ Tier.Fleet.Fleet_tier
                { fc_fleet = fleet; fc_clients = clients;
                  fc_on_store = (fun s -> stores := s :: !stores) } ]
        in
        (nm, pat, true, start_app sys ~name:nm ~pattern ~backing ()))
      patterns
  in
  let apps = disk_apps @ tier_apps in
  Inject.arm (plan_for ~seed ~duration);
  System.run ~until:duration sys;
  Inject.disarm ();
  System.run ~until:(Time.add duration (Time.sec 2)) sys;
  let viol nm app =
    Chaos.violations_for ~names:[ nm ]
      ~ids:[ Domains.id (Workload.Paging_app.domain app).System.dom ]
  in
  let reports =
    List.map
      (fun (nm, pat, tiered, app) ->
        let mean, p95 = fault_hist nm in
        { dr_name = nm;
          dr_pattern = pat;
          dr_tiered = tiered;
          dr_mbit = Workload.Paging_app.sustained_mbit app;
          dr_accesses = Workload.Paging_app.measured_accesses app;
          dr_fault_mean_us = mean;
          dr_fault_p95_us = p95;
          dr_violations = viol nm app })
      apps
  in
  let bystanders, tiered = List.partition (fun r -> not r.dr_tiered) reports in
  (* the disk durability floor the degraded path must beat: the
     bystanders' pooled fault-service latency over the same run *)
  let disk_floor =
    let count = ref 0 and sum = ref 0.0 in
    List.iter
      (fun (nm, _, _, _) ->
        match Obs.Metrics.hist_view ~label:nm "fault.latency_us" with
        | Some v ->
            count := !count + v.Obs.Metrics.hv_count;
            sum := !sum +. (v.Obs.Metrics.hv_mean *. float_of_int v.Obs.Metrics.hv_count)
        | None -> ())
      disk_apps;
    if !count = 0 then nan else !sum /. float_of_int !count
  in
  let degraded_count, degraded_mean =
    match Obs.Metrics.hist_view ~label:"fleet" "fleet.degraded_us" with
    | Some v -> (v.Obs.Metrics.hv_count, v.Obs.Metrics.hv_mean)
    | None -> (0, nan)
  in
  let store_totals =
    List.fold_left
      (fun a s ->
        let b = Tier.Fleet.store_stats s in
        let open Tier.Fleet in
        { st_cache_hits = a.st_cache_hits + b.st_cache_hits;
          st_fleet_hits = a.st_fleet_hits + b.st_fleet_hits;
          st_fleet_misses = a.st_fleet_misses + b.st_fleet_misses;
          st_promotes = a.st_promotes + b.st_promotes;
          st_demotes = a.st_demotes + b.st_demotes;
          st_write_fallbacks = a.st_write_fallbacks + b.st_write_fallbacks;
          st_clean_skips = a.st_clean_skips + b.st_clean_skips;
          st_lost_slots = a.st_lost_slots + b.st_lost_slots })
      { Tier.Fleet.st_cache_hits = 0; st_fleet_hits = 0; st_fleet_misses = 0;
        st_promotes = 0; st_demotes = 0; st_write_fallbacks = 0;
        st_clean_skips = 0; st_lost_slots = 0 }
      !stores
  in
  { c_name = name;
    c_mode = mode;
    c_domains = reports;
    c_fleet = Tier.Fleet.stats fleet;
    c_health = Tier.Fleet.health fleet;
    c_books_balanced = Tier.Fleet.books_balanced fleet;
    c_store_totals = store_totals;
    c_lost_slots = store_totals.Tier.Fleet.st_lost_slots;
    c_overhead = Tier.Fleet.storage_overhead fleet;
    c_degraded_count = degraded_count;
    c_degraded_mean_us = degraded_mean;
    c_disk_floor_us = disk_floor;
    c_bystander_violations =
      List.fold_left (fun n r -> n + r.dr_violations) 0 bystanders;
    c_tiered_violations =
      List.fold_left (fun n r -> n + r.dr_violations) 0 tiered;
    c_audit = Obs.Qos_audit.summarize () }

let jf f = if Float.is_nan f then "null" else Printf.sprintf "%.1f" f

let cell_to_json c =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "  {\"cell\": %S, \"mode\": %S,\n" c.c_name c.c_mode);
  let dom d =
    Printf.sprintf
      "{\"name\": %S, \"pattern\": %S, \"tiered\": %b, \"mbit_s\": %s, \
       \"accesses\": %d, \"fault_mean_us\": %s, \"fault_p95_us\": %s, \
       \"violations\": %d}"
      d.dr_name d.dr_pattern d.dr_tiered
      (if Float.is_nan d.dr_mbit then "null"
       else Printf.sprintf "%.3f" d.dr_mbit)
      d.dr_accesses (jf d.dr_fault_mean_us) (jf d.dr_fault_p95_us)
      d.dr_violations
  in
  Buffer.add_string b
    (Printf.sprintf "   \"domains\": [%s],\n"
       (String.concat ", " (List.map dom c.c_domains)));
  let f = c.c_fleet in
  Buffer.add_string b
    (Printf.sprintf
       "   \"fleet\": {\"stores\": %d, \"acks\": %d, \"lost_primaries\": %d, \
        \"failovers\": %d, \"rebuilds\": %d, \"disk_fallbacks\": %d, \
        \"lost_shards\": %d, \"degraded_reads\": %d, \"reconstructions\": \
        %d, \"corrupt_shards\": %d, \"migrations\": %d, \"node_joins\": %d, \
        \"node_retires\": %d, \"quarantines\": %d, \"readmissions\": %d, \
        \"wipes_applied\": %d, \"repair_rounds\": %d},\n"
       f.Tier.Fleet.stores f.Tier.Fleet.acks f.Tier.Fleet.lost_primaries
       f.Tier.Fleet.failovers f.Tier.Fleet.rebuilds
       f.Tier.Fleet.disk_fallbacks f.Tier.Fleet.lost_shards
       f.Tier.Fleet.degraded_reads f.Tier.Fleet.reconstructions
       f.Tier.Fleet.corrupt_shards f.Tier.Fleet.migrations
       f.Tier.Fleet.node_joins f.Tier.Fleet.node_retires
       f.Tier.Fleet.quarantines f.Tier.Fleet.readmissions
       f.Tier.Fleet.wipes_applied f.Tier.Fleet.repair_rounds);
  let node h =
    Printf.sprintf
      "{\"name\": %S, \"member\": %b, \"used\": %d, \"capacity\": %d, \
       \"quarantined\": %b, \"quarantines\": %d, \"stores\": %d, \
       \"serves\": %d, \"failovers\": %d}"
      h.Tier.Fleet.nh_name h.Tier.Fleet.nh_member h.Tier.Fleet.nh_used
      h.Tier.Fleet.nh_capacity h.Tier.Fleet.nh_quarantined
      h.Tier.Fleet.nh_quarantines h.Tier.Fleet.nh_stores
      h.Tier.Fleet.nh_serves h.Tier.Fleet.nh_failovers
  in
  Buffer.add_string b
    (Printf.sprintf "   \"nodes\": [%s],\n"
       (String.concat ", " (List.map node c.c_health)));
  Buffer.add_string b
    (Printf.sprintf
       "   \"books_balanced\": %b, \"lost_slots\": %d, \
        \"storage_overhead\": %s,\n"
       c.c_books_balanced c.c_lost_slots
       (if Float.is_nan c.c_overhead then "null"
        else Printf.sprintf "%.3f" c.c_overhead));
  Buffer.add_string b
    (Printf.sprintf
       "   \"degraded_reads\": %d, \"degraded_mean_us\": %s, \
        \"disk_floor_us\": %s,\n"
       c.c_degraded_count (jf c.c_degraded_mean_us) (jf c.c_disk_floor_us));
  Buffer.add_string b
    (Printf.sprintf
       "   \"bystander_violations\": %d, \"tiered_violations\": %d}"
       c.c_bystander_violations c.c_tiered_violations);
  Buffer.contents b

let to_json r =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n";
  Buffer.add_string b (Printf.sprintf "  \"seed\": %d,\n" r.seed);
  Buffer.add_string b
    (Printf.sprintf "  \"duration_s\": %.0f,\n" (Time.to_sec r.duration));
  Buffer.add_string b "  \"cells\": [\n";
  Buffer.add_string b (cell_to_json r.replicated);
  Buffer.add_string b ",\n";
  Buffer.add_string b (cell_to_json r.erasure);
  Buffer.add_string b "\n  ],\n";
  Buffer.add_string b
    (Printf.sprintf "  \"degraded_vs_disk_speedup\": %s,\n"
       (if Float.is_nan r.speedup then "null"
        else Printf.sprintf "%.1f" r.speedup));
  Buffer.add_string b
    (Printf.sprintf "  \"deterministic\": %b\n" r.deterministic);
  Buffer.add_string b "}";
  Buffer.contents b

(* Same-seed reproducibility is part of the verdict: both cells run
   twice — wipes, corruption dice, join, degraded reads, repair — and
   the canonical reports must match byte-for-byte. *)
let run ?(seed = 42) ?(duration = Time.sec 30) () =
  let one () =
    let replicated =
      run_cell ~seed ~duration ~name:"replicated" ~mode:"R=2"
        ~redundancy:(Tier.Fleet.Replicated 2)
    in
    let erasure =
      run_cell ~seed ~duration ~name:"erasure" ~mode:"k=4,m=2"
        ~redundancy:(Tier.Fleet.Erasure { k = 4; m = 2 })
    in
    let speedup =
      if
        Float.is_nan erasure.c_degraded_mean_us
        || Float.is_nan erasure.c_disk_floor_us
        || erasure.c_degraded_mean_us <= 0.
      then nan
      else erasure.c_disk_floor_us /. erasure.c_degraded_mean_us
    in
    { seed; duration; replicated; erasure; speedup; deterministic = true }
  in
  let r1 = one () in
  let r2 = one () in
  let canon r = to_json { r with deterministic = true } in
  { r1 with deterministic = canon r1 = canon r2 }

let ok r =
  let base c =
    c.c_lost_slots = 0 && c.c_books_balanced
    && c.c_bystander_violations = 0
    && c.c_fleet.Tier.Fleet.wipes_applied >= 2
    && c.c_fleet.Tier.Fleet.node_joins >= 1
    && c.c_fleet.Tier.Fleet.migrations >= 1
  in
  base r.replicated && base r.erasure
  && r.erasure.c_fleet.Tier.Fleet.degraded_reads > 0
  && r.erasure.c_fleet.Tier.Fleet.reconstructions > 0
  && r.erasure.c_fleet.Tier.Fleet.corrupt_shards >= 1
  && (not (Float.is_nan r.erasure.c_overhead))
  && r.erasure.c_overhead <= 1.55
  && r.erasure.c_overhead < r.replicated.c_overhead
  && (not (Float.is_nan r.speedup))
  && r.speedup >= 50.0
  && r.deterministic

let mbit_s f = if Float.is_nan f then "warming" else Report.f2 f
let us f = if Float.is_nan f then "-" else Printf.sprintf "%.0f" f

let print_cell c =
  Printf.printf "--- cell %s (%s) ---\n" c.c_name c.c_mode;
  Report.table
    ~header:
      [ "domain"; "pattern"; "backing"; "Mbit/s"; "accesses"; "fault us";
        "p95 us"; "violations" ]
    (List.map
       (fun d ->
         [ d.dr_name; d.dr_pattern; (if d.dr_tiered then "fleet" else "disk");
           mbit_s d.dr_mbit; string_of_int d.dr_accesses;
           us d.dr_fault_mean_us; us d.dr_fault_p95_us;
           string_of_int d.dr_violations ])
       c.c_domains);
  let f = c.c_fleet in
  Printf.printf "placement: %d stores = %d acks (%s)\n" f.Tier.Fleet.stores
    f.Tier.Fleet.acks
    (if f.Tier.Fleet.stores = f.Tier.Fleet.acks then "balanced"
     else "UNBALANCED");
  (match f.Tier.Fleet.lost_shards with
  | 0 ->
      Printf.printf
        "primaries: %d lost = %d failovers + %d rebuilds + %d disk \
         fallbacks (%s)\n"
        f.Tier.Fleet.lost_primaries f.Tier.Fleet.failovers
        f.Tier.Fleet.rebuilds f.Tier.Fleet.disk_fallbacks
        (if c.c_books_balanced then "balanced" else "UNBALANCED")
  | _ ->
      Printf.printf
        "shards: %d lost = %d reconstructions + %d rebuilds + %d disk \
         fallbacks (%s)\n"
        f.Tier.Fleet.lost_shards f.Tier.Fleet.reconstructions
        f.Tier.Fleet.rebuilds f.Tier.Fleet.disk_fallbacks
        (if c.c_books_balanced then "balanced" else "UNBALANCED"));
  Printf.printf
    "health: %d wipes, %d corrupt shards, %d joins, %d migrations, %d \
     quarantines, %d repair rounds\n"
    f.Tier.Fleet.wipes_applied f.Tier.Fleet.corrupt_shards
    f.Tier.Fleet.node_joins f.Tier.Fleet.migrations f.Tier.Fleet.quarantines
    f.Tier.Fleet.repair_rounds;
  List.iter
    (fun h ->
      Printf.printf
        "  node %s: %s, %d/%d entries, %d stored, %d served, %d failovers%s\n"
        h.Tier.Fleet.nh_name
        (if h.Tier.Fleet.nh_member then "member" else "standby")
        h.Tier.Fleet.nh_used h.Tier.Fleet.nh_capacity h.Tier.Fleet.nh_stores
        h.Tier.Fleet.nh_serves h.Tier.Fleet.nh_failovers
        (if h.Tier.Fleet.nh_quarantined then " [quarantined]" else ""))
    c.c_health;
  Printf.printf
    "storage overhead: %.3fx; degraded reads: %d (mean %s us) vs disk floor \
     %s us\n"
    c.c_overhead c.c_degraded_count
    (us c.c_degraded_mean_us)
    (us c.c_disk_floor_us);
  Printf.printf "committed pages lost: %d\n" c.c_lost_slots;
  Report.audit_section
    (Printf.sprintf "QoS audit (%s)" c.c_name)
    (Some c.c_audit);
  Printf.printf "bystander (disk-only) violations: %d\n\n"
    c.c_bystander_violations

let print r =
  Report.heading
    "Erasure: k-of-n stripes vs whole-page replicas under double node loss";
  Printf.printf
    "seed %d, %.0f s (wipes at T/3 and 0.45T, standby joins at 0.6T, 2%% \
     corrupt serves on n3) + 2 s drain\n\n"
    r.seed (Time.to_sec r.duration);
  print_cell r.replicated;
  print_cell r.erasure;
  Printf.printf
    "erasure degraded read %.0f us vs disk floor %.0f us: %.0fx faster at \
     %.2fx storage (replicas: %.2fx)\n"
    r.erasure.c_degraded_mean_us r.erasure.c_disk_floor_us r.speedup
    r.erasure.c_overhead r.replicated.c_overhead;
  Printf.printf "same-seed rerun: %s\n"
    (if r.deterministic then "byte-identical" else "DIVERGED");
  print_endline
    (if ok r then
       "VERDICT: ok — two nodes lost, every read served from remote memory \
        or the disk floor with zero committed pages lost, parity at 1.5x \
        storage instead of 2x, books balance, reproducible"
     else "VERDICT: FAILED")

(* ------------------------------------------------------------------ *)
(* Benchmark: the price of parity, healthy and degraded.               *)

type bench_cell = {
  bc_name : string;
  bc_accesses : int;
  bc_mean_us : float;
  bc_half2_mean_us : float;
  bc_fleet_hits : int;
  bc_degraded : int;
  bc_reconstructions : int;
  bc_rebuilds : int;
  bc_overhead : float;
  bc_nodes : Tier.Fleet.node_health list;
}

type bench_result = {
  b_seed : int;
  b_duration : Time.span;
  b_cells : bench_cell list;
  b_repl_us : float;
  b_ec_us : float;
  b_ec_wipe_us : float;
  b_disk_us : float;
  b_parity_price : float;
  b_ec_overhead : float;
  b_repl_overhead : float;
  b_ok : bool;
}

let bench_capacity = 420

(* One hotspot run against one backend; the fault-latency histogram is
   split at T/2, where the wipe (if any) lands — node n0 loses its
   contents between the two run legs, so with a six-node erasure
   stripe every post-wipe read is degraded until repair catches up. *)
let bench_cell ~seed ~duration ~name ~redundancy ?(repair = true) ~wipe () =
  Obs.set_enabled true;
  Obs.reset ();
  Inject.disarm ();
  let config = { System.default_config with seed; main_memory_mb = 2 } in
  let sys = System.create ~config () in
  let fleet_and_nodes =
    match redundancy with
    | None -> None
    | Some redundancy ->
        let nodes =
          List.init member_count (fun i ->
              let nm = node_name i in
              let link =
                Usnet.Link.create ~name:nm ~params:Usnet.Net_params.gigabit
                  (System.sim sys)
              in
              (nm, Tier.Remote_node.create ~capacity_pages:bench_capacity (),
               link))
        in
        Some
          ( Tier.Fleet.create ~seed ~redundancy ~repair ~nodes
              (System.sim sys),
            nodes )
  in
  let store = ref None in
  let backing =
    match fleet_and_nodes with
    | None -> None
    | Some (fleet, _) ->
        let clients =
          match
            Tier.Fleet.admit_clients fleet ~name:"bench.tier"
              ~period:(Time.ms 20) ~slice:(Time.ms 5) ~extra:true
              ~laxity:(Time.of_ms_float 2.0) ()
          with
          | Ok cs -> cs
          | Error e ->
              Harness.fail_verdict ~experiment:"erasure"
                ~context:[ ("cell", name) ]
                ("erasure: " ^ Usnet.Link.admit_error_message e)
        in
        Some
          (Harness.backing ~experiment:"erasure" "fleet:cache-pages=24"
             [ Tier.Fleet.Fleet_tier
                 { fc_fleet = fleet; fc_clients = clients;
                   fc_on_store = (fun s -> store := Some s) } ])
  in
  let app =
    start_app sys ~name:"bench" ~pattern:Workload.Paging_app.Hotspot ?backing
      ()
  in
  let half = Time.ns (Time.to_ns duration / 2) in
  System.run ~until:half sys;
  let snap () =
    match Obs.Metrics.hist_view ~label:"bench" "fault.latency_us" with
    | Some v -> (v.Obs.Metrics.hv_count, v.Obs.Metrics.hv_mean)
    | None -> (0, nan)
  in
  let c1, m1 = snap () in
  (match (wipe, fleet_and_nodes) with
  | true, Some (_, nodes) ->
      let _, remote, _ = List.nth nodes 0 in
      Tier.Remote_node.wipe remote
  | _ -> ());
  System.run ~until:duration sys;
  let c2, m2 = snap () in
  let half2 =
    if c2 > c1 then
      ((m2 *. float_of_int c2) -. (m1 *. float_of_int c1))
      /. float_of_int (c2 - c1)
    else nan
  in
  let fs, overhead, nodes_health =
    match fleet_and_nodes with
    | Some (fleet, _) ->
        ( Tier.Fleet.stats fleet,
          Tier.Fleet.storage_overhead fleet,
          Tier.Fleet.health fleet )
    | None ->
        ( { Tier.Fleet.stores = 0; acks = 0; replica_skips = 0;
            replica_timeouts = 0; remote_fulls = 0; lost_primaries = 0;
            failovers = 0; rebuilds = 0; disk_fallbacks = 0;
            secondary_rebuilds = 0; lost_shards = 0; degraded_reads = 0;
            reconstructions = 0; corrupt_shards = 0; migrations = 0;
            node_joins = 0; node_retires = 0; retransmits = 0;
            quarantines = 0; readmissions = 0; probes = 0;
            probe_failures = 0; wipes_applied = 0; repair_rounds = 0 },
          nan, [] )
  in
  let hits =
    match !store with
    | Some s -> (Tier.Fleet.store_stats s).Tier.Fleet.st_fleet_hits
    | None -> 0
  in
  { bc_name = name;
    bc_accesses = Workload.Paging_app.measured_accesses app;
    bc_mean_us = m2;
    bc_half2_mean_us = half2;
    bc_fleet_hits = hits;
    bc_degraded = fs.Tier.Fleet.degraded_reads;
    bc_reconstructions = fs.Tier.Fleet.reconstructions;
    bc_rebuilds = fs.Tier.Fleet.rebuilds;
    bc_overhead = overhead;
    bc_nodes = nodes_health }

let bench ?(seed = 42) ?(duration = Time.sec 30) () =
  let disk =
    bench_cell ~seed ~duration ~name:"disk" ~redundancy:None ~wipe:false ()
  in
  let repl =
    bench_cell ~seed ~duration ~name:"replicated"
      ~redundancy:(Some (Tier.Fleet.Replicated 2)) ~wipe:false ()
  in
  let ec =
    bench_cell ~seed ~duration ~name:"erasure"
      ~redundancy:(Some (Tier.Fleet.Erasure { k = 4; m = 2 })) ~wipe:false ()
  in
  let ec_wipe =
    (* repair off: every post-wipe read pays the reconstruction, so
       the cell measures the degraded path itself rather than how fast
       the repair loop erases it *)
    bench_cell ~seed ~duration ~name:"erasure_wipe"
      ~redundancy:(Some (Tier.Fleet.Erasure { k = 4; m = 2 })) ~repair:false
      ~wipe:true ()
  in
  let parity_price =
    if
      Float.is_nan repl.bc_half2_mean_us
      || Float.is_nan ec.bc_half2_mean_us
      || repl.bc_half2_mean_us <= 0.
    then nan
    else ec.bc_half2_mean_us /. repl.bc_half2_mean_us
  in
  let fin f = not (Float.is_nan f) in
  let okv =
    fin parity_price
    && fin ec_wipe.bc_half2_mean_us
    && fin disk.bc_half2_mean_us
    && ec_wipe.bc_half2_mean_us <= 2.0 *. ec.bc_half2_mean_us
    && disk.bc_half2_mean_us >= 5.0 *. ec_wipe.bc_half2_mean_us
    && fin ec.bc_overhead
    && ec.bc_overhead <= 1.55
    && fin repl.bc_overhead
    && repl.bc_overhead >= 1.9
  in
  { b_seed = seed;
    b_duration = duration;
    b_cells = [ disk; repl; ec; ec_wipe ];
    b_repl_us = repl.bc_half2_mean_us;
    b_ec_us = ec.bc_half2_mean_us;
    b_ec_wipe_us = ec_wipe.bc_half2_mean_us;
    b_disk_us = disk.bc_half2_mean_us;
    b_parity_price = parity_price;
    b_ec_overhead = ec.bc_overhead;
    b_repl_overhead = repl.bc_overhead;
    b_ok = okv }

let bench_print r =
  Report.heading "Erasure benchmark: the price of parity, healthy and degraded";
  Printf.printf
    "seed %d, %.0f s per cell, hotspot; wipe (if any) at T/2; second-half \
     windows compared\n\n"
    r.b_seed (Time.to_sec r.b_duration);
  Report.table
    ~header:
      [ "cell"; "accesses"; "mean us"; "2nd-half us"; "fleet hits";
        "degraded"; "rebuilds"; "overhead" ]
    (List.map
       (fun c ->
         [ c.bc_name; string_of_int c.bc_accesses; us c.bc_mean_us;
           us c.bc_half2_mean_us; string_of_int c.bc_fleet_hits;
           string_of_int c.bc_degraded; string_of_int c.bc_rebuilds;
           (if Float.is_nan c.bc_overhead then "-"
            else Printf.sprintf "%.2fx" c.bc_overhead) ])
       r.b_cells);
  print_newline ();
  Printf.printf
    "parity price: %.2fx the replicated read (%.0f vs %.0f us) at %.2fx \
     storage instead of %.2fx; degraded %.0f us, disk %.0f us — %s\n"
    r.b_parity_price r.b_ec_us r.b_repl_us r.b_ec_overhead r.b_repl_overhead
    r.b_ec_wipe_us r.b_disk_us
    (if r.b_ok then "no disk-fallback cliff" else "CLIFF (or overhead off)")

let bench_to_json r =
  let b = Buffer.create 2048 in
  Buffer.add_string b "{\n";
  Buffer.add_string b (Printf.sprintf "  \"seed\": %d,\n" r.b_seed);
  Buffer.add_string b
    (Printf.sprintf "  \"duration_s\": %.0f,\n" (Time.to_sec r.b_duration));
  let node h =
    Printf.sprintf
      "{\"name\": %S, \"member\": %b, \"used\": %d, \"stores\": %d, \
       \"serves\": %d, \"failovers\": %d, \"quarantines\": %d}"
      h.Tier.Fleet.nh_name h.Tier.Fleet.nh_member h.Tier.Fleet.nh_used
      h.Tier.Fleet.nh_stores h.Tier.Fleet.nh_serves h.Tier.Fleet.nh_failovers
      h.Tier.Fleet.nh_quarantines
  in
  let cell c =
    Printf.sprintf
      "{\"cell\": %S, \"accesses\": %d, \"mean_us\": %s, \"half2_mean_us\": \
       %s, \"fleet_hits\": %d, \"degraded_reads\": %d, \"reconstructions\": \
       %d, \"rebuilds\": %d, \"storage_overhead\": %s, \"nodes\": [%s]}"
      c.bc_name c.bc_accesses (jf c.bc_mean_us) (jf c.bc_half2_mean_us)
      c.bc_fleet_hits c.bc_degraded c.bc_reconstructions c.bc_rebuilds
      (if Float.is_nan c.bc_overhead then "null"
       else Printf.sprintf "%.3f" c.bc_overhead)
      (String.concat ", " (List.map node c.bc_nodes))
  in
  Buffer.add_string b
    (Printf.sprintf "  \"cells\": [%s],\n"
       (String.concat ",\n            " (List.map cell r.b_cells)));
  Buffer.add_string b
    (Printf.sprintf
       "  \"replicated_us\": %s, \"erasure_us\": %s, \"erasure_wipe_us\": \
        %s, \"disk_us\": %s,\n"
       (jf r.b_repl_us) (jf r.b_ec_us) (jf r.b_ec_wipe_us) (jf r.b_disk_us));
  Buffer.add_string b
    (Printf.sprintf
       "  \"parity_price\": %s, \"erasure_overhead\": %s, \
        \"replicated_overhead\": %s,\n"
       (if Float.is_nan r.b_parity_price then "null"
        else Printf.sprintf "%.3f" r.b_parity_price)
       (if Float.is_nan r.b_ec_overhead then "null"
        else Printf.sprintf "%.3f" r.b_ec_overhead)
       (if Float.is_nan r.b_repl_overhead then "null"
        else Printf.sprintf "%.3f" r.b_repl_overhead));
  Buffer.add_string b (Printf.sprintf "  \"ok\": %b\n" r.b_ok);
  Buffer.add_string b "}";
  Buffer.contents b
