open Engine
open Core
open Workload

type app_report = {
  app_name : string;
  share : float;
  sustained_mbit : float;
  series : (Time.t * float) list;
  txns : int;
  mean_txn_ms : float;
  lax_total_ms : float;
  max_lax_ms : float;
  allocations : int;
  page_ins : int;
  page_outs : int;
}

type result = {
  mode : Paging_app.mode;
  apps : app_report list;
  ratios : float list;
  trace_window : (Time.t * Usbs.Usd.event) list;
  window_start : Time.t;
}

let ms_of span = float_of_int span /. 1e6

let summarise_client trace name =
  let txns = ref 0 and txn_time = ref 0 in
  let lax_total = ref 0 and lax_max = ref 0 in
  let allocs = ref 0 in
  Trace.iter
    (fun _ ev ->
      match ev with
      | Usbs.Usd.Txn { client; dur; _ } when client = name ->
        incr txns;
        txn_time := !txn_time + dur
      | Usbs.Usd.Lax { client; dur } when client = name ->
        lax_total := !lax_total + dur;
        if dur > !lax_max then lax_max := dur
      | Usbs.Usd.Alloc { client } when client = name -> incr allocs
      | _ -> ())
    trace;
  ( !txns,
    (if !txns = 0 then nan else ms_of (!txn_time / !txns)),
    ms_of !lax_total,
    ms_of !lax_max,
    !allocs )

let run ?(mode = Paging_app.Paging_in) ?(duration = Time.sec 240)
    ?(laxity = Time.ms 10) ?(usd_laxity = true) ?(usd_rollover = true)
    ?(shares_ms = [ 25; 50; 100 ]) ?(seed = 42) () =
  let sys = Harness.fresh_system ~usd_laxity ~usd_rollover ~seed () in
  let apps =
    List.map
      (fun slice_ms ->
        let name = Printf.sprintf "app%d" (slice_ms * 100 / 250) in
        let qos =
          Usbs.Qos.make ~period:(Time.ms 250) ~slice:(Time.ms slice_ms)
            ~laxity ()
        in
        match Paging_app.start sys ~name ~mode ~qos () with
        | Ok a -> (name, slice_ms, a)
        (* Setup failwith: the figure's fixed app fleet is sized to
           admit by construction. *)
        | Error e -> failwith (name ^ ": " ^ e))
      shares_ms
  in
  System.run sys ~until:duration;
  let trace = Usbs.Usd.trace (System.usd sys) in
  let reports =
    List.map
      (fun (name, slice_ms, a) ->
        let swap_name = name ^ ".swap" in
        let txns, mean_txn, lax_total, lax_max, allocs =
          summarise_client trace swap_name
        in
        let info = Paging_app.paging_info a in
        { app_name = name;
          share = float_of_int slice_ms /. 250.0;
          sustained_mbit = Paging_app.sustained_mbit a;
          series = Stats.Series.to_list (Sampler.series (Paging_app.sampler a));
          txns;
          mean_txn_ms = mean_txn;
          lax_total_ms = lax_total;
          max_lax_ms = lax_max;
          allocations = allocs;
          page_ins = info.Sd_paged.page_ins;
          page_outs = info.Sd_paged.page_outs })
      apps
  in
  let base =
    match reports with
    | r :: _ -> r.sustained_mbit
    | [] -> nan
  in
  let ratios = List.map (fun r -> r.sustained_mbit /. base) reports in
  (* A one-second window from late in the run (steady state). *)
  let window_start = duration - Time.sec 5 in
  let trace_window = Trace.between trace window_start (window_start + Time.sec 1) in
  { mode; apps = reports; ratios; trace_window; window_start }

let mode_name = function
  | Paging_app.Paging_in -> "Paging In (Figure 7)"
  | Paging_app.Paging_out -> "Paging Out (Figure 8)"

let print r =
  Report.heading (mode_name r.mode);
  Report.table
    ~header:
      [ "app"; "share"; "Mbit/s"; "ratio"; "txns"; "mean txn ms";
        "lax total ms"; "max lax ms"; "allocs"; "page-ins"; "page-outs" ]
    (List.map2
       (fun a ratio ->
         [ a.app_name;
           Printf.sprintf "%.0f%%" (a.share *. 100.0);
           Report.f2 a.sustained_mbit;
           Report.f2 ratio;
           string_of_int a.txns;
           Report.f2 a.mean_txn_ms;
           Report.f1 a.lax_total_ms;
           Report.f2 a.max_lax_ms;
           string_of_int a.allocations;
           string_of_int a.page_ins;
           string_of_int a.page_outs ])
       r.apps r.ratios);
  print_newline ();
  (match r.mode with
  | Paging_app.Paging_in ->
    print_endline
      "Paper: progress ratio very close to 4:2:1; transactions all roughly";
    print_endline "the same duration (sequential reads hit the drive cache)."
  | Paging_app.Paging_out ->
    print_endline
      "Paper: same proportions but much lower throughput; almost every";
    print_endline
      "transaction ~10ms, some with an extra rotational delay.")

let print_series r =
  Report.heading
    (Printf.sprintf "%s: sustained bandwidth vs time" (mode_name r.mode));
  Report.chart ~unit_label:"seconds"
    (List.map
       (fun a ->
         ( a.app_name,
           List.map (fun (t, v) -> (Time.to_sec t, v)) a.series ))
       r.apps)

(* ASCII scheduler trace: 1 s window, 10 ms per column; one row per
   client. '#': performing a transaction, '.': lax (holding the disk
   with nothing pending), '|': new allocation at a period boundary. *)
let print_trace r =
  Report.heading
    (Printf.sprintf "USD scheduler trace: 1s window starting at t=%.0fs \
                     ('#' txn, '.' lax, '|' alloc)"
       (Time.to_sec r.window_start));
  let columns = 100 in
  let col_span = Time.sec 1 / columns in
  let clients =
    List.sort_uniq compare
      (List.filter_map
         (fun (_, ev) ->
           match ev with
           | Usbs.Usd.Txn { client; _ } | Usbs.Usd.Lax { client; _ }
           | Usbs.Usd.Alloc { client } | Usbs.Usd.Slack { client; _ }
           | Usbs.Usd.Txn_error { client; _ } ->
             Some client)
         r.trace_window)
  in
  List.iter
    (fun client ->
      let row = Bytes.make columns ' ' in
      let mark_range t dur ch =
        (* Events are stamped at completion; paint backwards. *)
        let start = t - dur - r.window_start in
        let stop = t - r.window_start in
        let c0 = max 0 (start / col_span) in
        let c1 = min (columns - 1) (stop / col_span) in
        for c = c0 to c1 do
          if Bytes.get row c = ' ' || ch = '#' then Bytes.set row c ch
        done
      in
      List.iter
        (fun (t, ev) ->
          match ev with
          | Usbs.Usd.Txn { client = c; dur; _ } when c = client ->
            mark_range t dur '#'
          | Usbs.Usd.Slack { client = c; dur; _ } when c = client ->
            mark_range t dur '#'
          | Usbs.Usd.Lax { client = c; dur } when c = client ->
            mark_range t dur '.'
          | Usbs.Usd.Alloc { client = c } when c = client ->
            let col = min (columns - 1) (max 0 ((t - r.window_start) / col_span)) in
            Bytes.set row col '|'
          | _ -> ())
        r.trace_window;
      Printf.printf "%-12s %s\n" client (Bytes.to_string row))
    clients
