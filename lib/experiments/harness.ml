open Engine
open Core

let run_in_sim sys f =
  let result = ref None in
  ignore
    (Proc.spawn ~name:"experiment" (System.sim sys) (fun () ->
         result := Some (f ())));
  let fuel = ref 200_000_000 in
  while !result = None && !fuel > 0 do
    if Sim.step (System.sim sys) then decr fuel else fuel := 0
  done;
  match !result with
  | Some r -> r
  (* Harness failwiths: fuel exhaustion or a refused bench-domain
     admission mean the experiment never produced a result to
     qualify — abort loudly rather than fabricate one. *)
  | None -> failwith "run_in_sim: experiment did not complete"

let fresh_system ?(page_table = `Linear) ?(usd_rollover = true)
    ?(usd_laxity = true) ?(main_memory_mb = 64) ?(seed = 42) () =
  let config =
    { System.default_config with
      page_table; usd_rollover; usd_laxity; main_memory_mb; seed }
  in
  System.create ~config ()

let bench_domain sys ?(guarantee = 256) ?(optimistic = 0) ~name () =
  match
    System.add_domain sys ~name ~cpu_period:(Time.ms 10)
      ~cpu_slice:(Time.ms 9) ~guarantee ~optimistic ()
  with
  | Ok d -> d
  | Error e -> failwith ("bench_domain: " ^ System.error_message e)

(* One funnel for experiment verdict escapes: the experiment name and
   any structured context go to stderr (the exception message often
   surfaces far from the failing experiment, e.g. under alcotest),
   then the legacy message raises unchanged so callers and tests
   matching on [Failure msg] keep working. *)
let fail_verdict ~experiment ?(context = []) msg =
  Printf.eprintf "[experiment %s] FAILED: %s\n" experiment msg;
  List.iter
    (fun (k, v) -> Printf.eprintf "[experiment %s]   %s = %s\n" experiment k v)
    context;
  flush stderr;
  failwith msg

let pattern ~experiment name =
  match Workload.Paging_app.pattern_of_string name with
  | Ok p -> p
  | Error e -> fail_verdict ~experiment (Registry.error_message e)

let backing ~experiment spec ctx =
  match Tier.Backing.resolve spec with
  | Error e -> fail_verdict ~experiment (Registry.error_message e)
  | Ok factory -> (
      fun swap ->
        match factory ctx swap with
        | Ok b -> b
        | Error msg -> fail_verdict ~experiment msg)

let mean_span spans =
  match spans with
  | [] -> nan
  | _ ->
    let total = List.fold_left ( + ) 0 spans in
    float_of_int total /. float_of_int (List.length spans) /. 1e3
