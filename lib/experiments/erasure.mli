(** Erasure: k-of-n stripes against whole-page replicas under double
    node loss, a checksum-lossy node and a live membership change.

    The robustness harness for {!Tier.Fleet}'s [Erasure] mode, run
    side by side with the [Replicated 2] baseline. Each cell pages
    three tiered domains (one per access pattern) through a six-node
    fleet beside three disk-only bystanders. Mid-run the chaos plan
    wipes two nodes ([n1] at T/3, [n2] at 0.45 T — exactly [m] losses
    for the (k = 4, m = 2) stripe), lets 2% of the shards served by
    [n3] fail their checksum, and joins a standby node at 0.6 T
    (rendezvous re-ranking migrates entries onto it, budgeted through
    the repair loop).

    The experiment passes when parity keeps double node loss a
    latency event at 1.5x storage instead of 2x: zero committed pages
    lost in either cell, erasure reads in the loss window served
    {e degraded} from remote memory at least 50x faster than the disk
    floor (the bystanders' pooled fault latency), storage overhead at
    most 1.55x and below the replicated cell's, the mode-aware books
    balanced ([lost_shards = reconstructions + rebuilds +
    disk_fallbacks]), corrupt serves detected, the join honoured with
    migrations, zero bystander violations, and a second same-seed run
    reproducing both cells byte-for-byte. *)

open Engine

type domain_report = {
  dr_name : string;
  dr_pattern : string;
  dr_tiered : bool;
  dr_mbit : float;  (** sustained throughput ([nan] if warming) *)
  dr_accesses : int;
  dr_fault_mean_us : float;  (** mean fault-service latency, [nan] if none *)
  dr_fault_p95_us : float;
  dr_violations : int;
}

(** One redundancy mode's full run: six domains, the fault plan, the
    drain, the books. *)
type cell = {
  c_name : string;  (** ["replicated"] or ["erasure"] *)
  c_mode : string;  (** ["R=2"] or ["k=4,m=2"] *)
  c_domains : domain_report list;
  c_fleet : Tier.Fleet.stats;
  c_health : Tier.Fleet.node_health list;
  c_books_balanced : bool;
  c_store_totals : Tier.Fleet.store_stats;
  c_lost_slots : int;  (** committed pages lost; must be 0 *)
  c_overhead : float;  (** {!Tier.Fleet.storage_overhead} at the end *)
  c_degraded_count : int;  (** degraded reads observed (erasure cell) *)
  c_degraded_mean_us : float;  (** their mean latency, [nan] if none *)
  c_disk_floor_us : float;
      (** the bystanders' pooled fault latency — the penalty a
          disk fallback would have paid *)
  c_bystander_violations : int;
  c_tiered_violations : int;
  c_audit : Obs.Qos_audit.summary;
}

type result = {
  seed : int;
  duration : Time.span;
  replicated : cell;
  erasure : cell;
  speedup : float;  (** erasure [disk_floor / degraded_mean] *)
  deterministic : bool;  (** second same-seed run matched byte-for-byte *)
}

val run : ?seed:int -> ?duration:Time.span -> unit -> result
val ok : result -> bool
val print : result -> unit
val to_json : result -> string

(** One cell of the erasure benchmark: the hotspot workload against
    one backend, the fault-latency histogram split at T/2 so the
    degraded window can be compared against the same window of the
    healthy runs. *)
type bench_cell = {
  bc_name : string;
      (** ["disk"], ["replicated"], ["erasure"], ["erasure_wipe"] *)
  bc_accesses : int;
  bc_mean_us : float;  (** whole-run mean fault latency *)
  bc_half2_mean_us : float;  (** second-half window (post-wipe if wiped) *)
  bc_fleet_hits : int;
  bc_degraded : int;
  bc_reconstructions : int;
  bc_rebuilds : int;
  bc_overhead : float;  (** [nan] for the disk cell *)
  bc_nodes : Tier.Fleet.node_health list;  (** per-node gauges *)
}

type bench_result = {
  b_seed : int;
  b_duration : Time.span;
  b_cells : bench_cell list;
  b_repl_us : float;  (** replicated cell, second-half window *)
  b_ec_us : float;  (** erasure cell, second-half window *)
  b_ec_wipe_us : float;  (** erasure cell with n0 wiped at T/2 *)
  b_disk_us : float;
  b_parity_price : float;  (** erasure / replicated healthy reads *)
  b_ec_overhead : float;
  b_repl_overhead : float;
  b_ok : bool;
      (** degraded erasure reads within 2x the healthy stripe and at
          least 5x below the disk, at <= 1.55x storage (replicas
          measure >= 1.9x) *)
}

val bench : ?seed:int -> ?duration:Time.span -> unit -> bench_result
val bench_print : bench_result -> unit
val bench_to_json : bench_result -> string
