open Engine
open Hw
open Core

type latency_stats = {
  bursts : int;
  mean_ms : float;
  p95_ms : float;
  max_ms : float;
}

type config_result = {
  light_latency : latency_stats;
  heavy_mbit : float;
  light_cpu_ms : float;
  heavy_cpu_ms : float;
  pager_cpu_ms : float;
  fault_hists : (string * Obs.Metrics.hist_view) list;
  audit : Obs.Qos_audit.summary option;
}

type result = { self_paging : config_result; external_pager : config_result }

let heavy_bytes_vm = 4 * 1024 * 1024
let light_bytes_vm = 1024 * 1024

(* Setup failwiths throughout: a world that fails to construct leaves
   nothing to measure, so it aborts rather than skewing the figure. *)
let make_app sys ~name ~bytes =
  match
    System.add_domain sys ~name ~cpu_period:(Time.ms 10)
      ~cpu_slice:(Time.of_ms_float 1.5) ~guarantee:2 ~optimistic:0 ()
  with
  | Error e -> failwith (name ^ ": " ^ System.error_message e)
  | Ok d ->
    (match System.alloc_stretch d ~bytes () with
    | Error e -> failwith (name ^ ": " ^ e)
    | Ok stretch -> (d, stretch))

(* The light app: after init, every [burst_period] touch
   [burst_pages] consecutive pages (reads of swapped pages) and record
   how long the burst took. Skips measurement during warm-up. *)
let light_thread d stretch ~burst_pages ~burst_period ~warmup stats () =
  let dom = d.System.dom in
  let sim = Domains.sim dom in
  let npages = Stretch.npages stretch in
  (* Populate: dirty every page once so everything has been swapped. *)
  for i = 0 to npages - 1 do
    Domains.access dom (Stretch.page_base stretch i) `Write
  done;
  let pos = ref 0 in
  let rec loop () =
    let t0 = Sim.now sim in
    for _ = 1 to burst_pages do
      Domains.access dom (Stretch.page_base stretch !pos) `Read;
      Domains.consume_cpu dom (Time.us 20);
      pos := (!pos + 1) mod npages
    done;
    let dt = Time.diff (Sim.now sim) t0 in
    if Sim.now sim > warmup then Stats.add stats (float_of_int dt /. 1e6);
    if dt < burst_period then Proc.sleep (burst_period - dt);
    loop ()
  in
  loop ()

(* The heavy app: pages out as fast as it can (sequential writes with
   a tiny cache, every eviction dirty). *)
let heavy_thread d stretch bytes () =
  let dom = d.System.dom in
  let npages = Stretch.npages stretch in
  let rec loop () =
    for i = 0 to npages - 1 do
      Domains.access dom (Stretch.page_base stretch i) `Write;
      Domains.consume_cpu dom (Time.us 20);
      bytes := !bytes + Addr.page_size
    done;
    loop ()
  in
  loop ()

let latency_of stats =
  { bursts = Stats.count stats;
    mean_ms = Stats.mean stats;
    p95_ms = Stats.percentile stats 95.0;
    max_ms = Stats.max_value stats }

let cpu_ms dom = Time.to_ms (Domains.cpu_used dom)

let run_config ~external_ ~duration ~burst_pages ~burst_period =
  (* Each configuration gets a clean observability slate, so its
     histograms and audit verdict describe this run alone. *)
  if !Obs.enabled then Obs.reset ();
  let sys = Harness.fresh_system () in
  let light_d, light_s = make_app sys ~name:"light" ~bytes:light_bytes_vm in
  let heavy_d, heavy_s = make_app sys ~name:"heavy" ~bytes:heavy_bytes_vm in
  let pager_cpu = ref (fun () -> 0.0) in
  if external_ then begin
    let pager =
      match Baseline.External_pager.create sys () with
      | Ok p -> p
      | Error e -> failwith ("pager: " ^ e)
    in
    (match Baseline.External_pager.attach pager light_d light_s () with
    | Ok _ -> ()
    | Error e -> failwith ("attach light: " ^ e));
    (match
       Baseline.External_pager.attach pager heavy_d heavy_s ~forgetful:true ()
     with
    | Ok _ -> ()
    | Error e -> failwith ("attach heavy: " ^ e));
    let pd = Baseline.External_pager.pager_domain pager in
    pager_cpu := fun () -> cpu_ms pd.System.dom
  end
  else begin
    (* Self-paging: each app opens its own swap under its own disk
       guarantee (light 10%, heavy 20%). *)
    let bind d s ~period_ms ~slice_ms ~forgetful =
      let qos =
        Usbs.Qos.make ~period:(Time.ms period_ms) ~slice:(Time.ms slice_ms) ()
      in
      match
        System.bind_paged d ~forgetful ~initial_frames:2
          ~swap_bytes:(16 * 1024 * 1024) ~qos s ()
      with
      | Ok _ -> ()
      | Error e -> failwith ("bind: " ^ System.error_message e)
    in
    Harness.run_in_sim sys (fun () ->
        (* A CM-like client wants a short period so that a fresh
           allocation (and hence low latency) is never far away. *)
        bind light_d light_s ~period_ms:20 ~slice_ms:2 ~forgetful:false;
        bind heavy_d heavy_s ~period_ms:250 ~slice_ms:50 ~forgetful:true)
  end;
  (* With the external pager, driver creation already happened in
     [attach]; forgetful behaviour comes from the workload (every
     eviction dirty) rather than the driver flag there. *)
  let stats = Stats.create ~keep_samples:true () in
  let heavy_bytes = ref 0 in
  let warmup = Time.sec 30 in
  ignore
    (Domains.spawn_thread light_d.System.dom ~name:"burst"
       (light_thread light_d light_s ~burst_pages ~burst_period ~warmup stats));
  ignore
    (Domains.spawn_thread heavy_d.System.dom ~name:"churn"
       (heavy_thread heavy_d heavy_s heavy_bytes));
  System.run sys ~until:duration;
  let fault_hists =
    if !Obs.enabled then
      List.filter_map
        (fun label ->
          Option.map
            (fun v -> (label, v))
            (Obs.Metrics.hist_view ~label "fault.latency_us"))
        (Obs.Metrics.labels_of "fault.latency_us")
    else []
  in
  let audit =
    if !Obs.enabled then Some (Obs.Qos_audit.summarize ()) else None
  in
  { light_latency = latency_of stats;
    heavy_mbit = float_of_int !heavy_bytes *. 8.0 /. Time.to_sec duration /. 1e6;
    light_cpu_ms = cpu_ms light_d.System.dom;
    heavy_cpu_ms = cpu_ms heavy_d.System.dom;
    pager_cpu_ms = !pager_cpu ();
    fault_hists; audit }

let run ?(duration = Time.sec 180) ?(burst_pages = 1)
    ?(burst_period = Time.ms 10) () =
  { self_paging =
      run_config ~external_:false ~duration ~burst_pages ~burst_period;
    external_pager =
      run_config ~external_:true ~duration ~burst_pages ~burst_period }

let print r =
  Report.heading
    "QoS crosstalk: self-paging vs external pager (Figure 2, quantified)";
  let row name c =
    [ name;
      string_of_int c.light_latency.bursts;
      Report.f2 c.light_latency.mean_ms;
      Report.f2 c.light_latency.p95_ms;
      Report.f2 c.light_latency.max_ms;
      Report.f2 c.heavy_mbit;
      Report.f1 c.light_cpu_ms;
      Report.f1 c.heavy_cpu_ms;
      Report.f1 c.pager_cpu_ms ]
  in
  Report.table
    ~header:
      [ "config"; "bursts"; "light mean ms"; "light p95 ms"; "light max ms";
        "heavy Mbit/s"; "light cpu ms"; "heavy cpu ms"; "pager cpu ms" ]
    [ row "self-paging" r.self_paging; row "external pager" r.external_pager ];
  print_newline ();
  print_endline
    "Under the external pager the light client queues FCFS behind the hog's";
  print_endline
    "~11ms writes and the pager burns its own CPU on their faults; under";
  print_endline
    "self-paging each domain pays for its own faults and the light client's";
  print_endline "burst latency is isolated.";
  let obs_sections name c =
    if c.fault_hists <> [] then begin
      Report.heading (name ^ ": per-domain fault latency");
      Report.hist_table c.fault_hists
    end;
    Report.audit_section (name ^ ": QoS audit") c.audit
  in
  obs_sections "self-paging" r.self_paging;
  obs_sections "external pager" r.external_pager
