(** The crash-recovery experiment: crash consistency of the User-Safe
    Backing Store and restart of a self-paging domain.

    Boots a small machine with the SFS's write-ahead intent journal
    mounted, carrying:

    - {b victim} — a restartable paging application continuously
      dirtying a 48-page stretch through a journaled swapfile;
    - {b clean1}, {b clean2} — ordinary paging applications on the same
      backing store, the control group.

    Each round arms one seeded, one-shot crash point scoped to the
    victim's swap — alternating between its {e data extent} (a torn
    multi-blok page write: an arbitrary seeded prefix of the bloks
    reaches the platter) and the {e journal region} (a torn intent
    record) — waits for the victim to die of it, then:

    + remounts the backing store: the journal is replayed, the free
      map and per-swap remap/assignment tables rebuilt, the torn tail
      quarantined — {e twice}, asserting byte-identical snapshots
      (recovery is idempotent);
    + verifies every journal-committed page slot still carries its
      durable stamp (a Commit record is appended only after its data
      landed, and committed slots are never rewritten in place);
    + respawns the victim under its original admission contract,
      reattaches its swapfile by name, restores the committed page
      image and faults it back in from swap.

    The verdict: one crash per round, zero committed pages lost, zero
    free-map conflicts, idempotent replay, every incarnation revived,
    and {e zero} QoS violations attributed to the bystanders. *)

type round_report = {
  rr_index : int;
  rr_target : string;  (** ["data"] or ["journal"] *)
  rr_crashes : int;  (** crash points fired (must be 1) *)
  rr_replayed : int;  (** valid journal records replayed at remount *)
  rr_torn : int;  (** torn records quarantined *)
  rr_conflicts : int;  (** free-map placement conflicts (must be 0) *)
  rr_idempotent : bool;  (** remounting twice gave identical snapshots *)
  rr_committed : int;  (** committed (page, slot) pairs recovered *)
  rr_verified : int;  (** of those, slots with their stamp intact *)
  rr_lost : int;  (** committed - verified (must be 0) *)
  rr_restored : int;  (** pages the restarted driver re-adopted *)
  rr_revived : bool;  (** the restarted incarnation survived read-back *)
}

type result = {
  seed : int;
  rounds : round_report list;
  total_replayed : int;
  total_torn : int;
  total_restored : int;
  total_lost : int;
  clean_violations : int;  (** must be 0 *)
  audit : Obs.Qos_audit.summary;
}

val run : ?seed:int -> ?rounds:int -> unit -> result
(** Enables {!Obs}, resets collectors and runs [rounds] (default 4)
    crash/remount/restart rounds. *)

val ok : result -> bool

val print : result -> unit
val to_json : result -> string
