open Engine
open Hw
open Core

type domain_report = {
  dr_name : string;
  dr_mbit : float;
  dr_accesses : int;
  dr_violations : int;
}

type result = {
  seed : int;
  duration : Time.span;
  victim : domain_report;
  victim_info : Sd_paged.info;
  cleans : domain_report list;
  tally : Inject.tally;
  accounted : bool;
  injected_by_class : (string * int) list;
  doomed_killed : bool;
  doomed_frames_reclaimed : bool;
  intrusive_revocations : int;
  clean_violations : int;
  audit : Obs.Qos_audit.summary;
}

let page_blocks = Addr.page_size / 512

(* Attribute a QoS violation to a domain by name (CPU/USD feeds label
   streams "name" / "name.swap") or by domain id (frame-side feeds). *)
let violations_for ~names ~ids =
  List.length
    (List.filter
       (fun (_, v) ->
         match v with
         | Obs.Qos_audit.Cpu_undersupply { dom; _ } -> List.mem dom names
         | Obs.Qos_audit.Usd_undersupply { stream; _ } ->
           List.exists
             (fun n ->
               String.length stream >= String.length n
               && String.sub stream 0 (String.length n) = n)
             names
         | Obs.Qos_audit.Mem_overcommit _ -> false
         | Obs.Qos_audit.Revocation_overdue { dom; _ }
         | Obs.Qos_audit.Guarantee_starved { dom } -> List.mem dom ids)
       (Obs.Qos_audit.events ()))

(* The victim's injection plan, scoped to its swap extent
   [(first, nblocks)]. Four permanently-bad page slots on the write
   path (enough spare slots are reserved to remap them all — losing a
   page kills the victim, which the doomed domain and the unit tests
   already demonstrate), plus a marginal (transient) range, random
   media errors and latency spikes across the whole extent, USD
   stalls, fault-channel drop/delay, and periodic frame-pressure
   bursts for the gremlin. *)
let plan_specs ~first ~nblocks =
  let bad_page slot len =
    Printf.sprintf "bad-blok:first=%d,len=%d,op=write"
      (first + (slot * page_blocks))
      (len * page_blocks)
  in
  [ bad_page 3 1; bad_page 17 1; bad_page 40 2;
    Printf.sprintf "bad-blok:first=%d,len=%d,transient=2"
      (first + (60 * page_blocks))
      (4 * page_blocks);
    Printf.sprintf
      "region:first=%d,len=%d,read=0.02,write=0.02,spike=0.02,spike-ms=20"
      first nblocks;
    "stall:site=victim.swap,rate=0.02,ms=30";
    "stall:site=doomed.revoke,rate=1.0,ms=250";
    "chan:name=victim.fault,drop=0.05,delay=0.05,delay-ms=2";
    "pressure:period-ms=500,hold-ms=150" ]

let plan_for ~seed ~first ~nblocks =
  match Inject.plan_of_specs ~seed (plan_specs ~first ~nblocks) with
  | Ok plan -> plan
  | Error e -> Harness.fail_verdict ~experiment:"chaos" (Registry.error_message e)

let start_app sys ~name ?policy ?spare_pages ?(optimistic = 0) () =
  let qos = Usbs.Qos.make ~period:(Time.ms 250) ~slice:(Time.ms 50) () in
  match
    Workload.Paging_app.start sys ~name ~mode:Workload.Paging_app.Paging_in
      ~qos ~vm_bytes:(1024 * 1024) ~phys_frames:8 ~optimistic
      ~swap_bytes:(4 * 1024 * 1024) ?policy ?spare_pages ()
  with
  | Ok a -> a
  (* Setup failwiths throughout: an experiment that cannot build its
     world has no verdict to report. Spec resolution is typed and
     funnelled through Harness.fail_verdict / plan_for. *)
  | Error e -> failwith (Printf.sprintf "chaos: %s: %s" name e)

(* The doomed domain: hogs [hog_pages] mapped optimistic frames behind a
   physical driver, and its revocation handler — replacing the
   MMEntry's cooperative one — stalls per the plan before replying, so
   it misses the 100 ms deadline and flunks the protocol. *)
let start_doomed sys =
  let hog_pages = 64 in
  let d =
    match
      System.add_domain sys ~name:"doomed" ~guarantee:2
        ~optimistic:hog_pages ()
    with
    | Ok d -> d
    | Error e -> failwith ("chaos: doomed: " ^ System.error_message e)
  in
  let s =
    match
      System.alloc_stretch d ~bytes:(hog_pages * Addr.page_size) ()
    with
    | Ok s -> s
    | Error e -> failwith ("chaos: doomed: " ^ e)
  in
  (match System.bind_physical d s with
  | Ok _ -> ()
  | Error e -> failwith ("chaos: doomed: " ^ System.error_message e));
  let sim = System.sim sys in
  ignore
    (Domains.spawn_thread d.System.dom ~name:"hog" (fun () ->
         for i = 0 to hog_pages - 1 do
           Domains.access d.System.dom (Stretch.page_base s i) `Write
         done;
         (* Keep the frames mapped until revoked (or killed). *)
         let rec idle () =
           Proc.sleep (Time.sec 3600);
           idle ()
         in
         idle ()));
  Frames.set_revocation_handler d.System.frames_client
    (fun ~k:_ ~deadline:_ ->
      ignore
        (Proc.spawn ~name:"doomed.revoke" sim (fun () ->
             (match Inject.stall ~site:"doomed.revoke" with
             | Some span -> Proc.sleep span
             | None -> ());
             (* Too late, and with nothing cleaned anyway. *)
             Frames.revocation_ready (System.frames sys)
               d.System.frames_client)));
  d

(* The pressure gremlin: every plan period, grab every frame the
   guarantee allows — squeezing the free pool to zero and forcing the
   allocator into revocation — hold them briefly, then give them back. *)
let start_press sys press =
  let fr = System.frames sys in
  ignore
    (Proc.spawn ~name:"press" (System.sim sys) (fun () ->
         match Inject.pressure () with
         | None -> ()
         | Some p ->
           let rec loop () =
             Proc.sleep p.Inject.pr_period;
             let taken = ref [] in
             let continue_ = ref true in
             while !continue_ do
               match Frames.alloc fr press with
               | Some pfn -> taken := pfn :: !taken
               | None -> continue_ := false
             done;
             Inject.note_pressure_burst ();
             Proc.sleep p.Inject.pr_hold;
             List.iter (fun pfn -> Frames.free fr press pfn) !taken;
             loop ()
           in
           loop ()))

let report_of app name violations =
  { dr_name = name;
    dr_mbit = Workload.Paging_app.sustained_mbit app;
    dr_accesses = Workload.Paging_app.measured_accesses app;
    dr_violations = violations }

let run ?(seed = 42) ?(duration = Time.sec 30) () =
  Obs.set_enabled true;
  Obs.reset ();
  Inject.disarm ();
  let config = { System.default_config with seed; main_memory_mb = 2 } in
  let sys = System.create ~config () in
  let clean1 = start_app sys ~name:"clean1" () in
  let clean2 = start_app sys ~name:"clean2" () in
  let wb =
    match Policy.Spec.of_string "fifo+wb8" with
    | Ok s -> s
    | Error e -> failwith ("chaos: " ^ e)
  in
  let victim =
    start_app sys ~name:"victim" ~policy:wb ~spare_pages:4 ~optimistic:12 ()
  in
  let doomed = start_doomed sys in
  let press =
    match
      Frames.admit (System.frames sys) ~domain:999 ~guarantee:215
        ~optimistic:0
    with
    | Ok c -> c
    | Error e -> failwith ("chaos: press: " ^ Frames.error_message e)
  in
  let first, nblocks = Workload.Paging_app.swap_extent victim in
  Inject.arm (plan_for ~seed ~first ~nblocks);
  start_press sys press;
  System.run ~until:duration sys;
  (* Injection-free drain: in-flight retries and write-behind flushes
     complete, so the recovery books can settle. *)
  Inject.disarm ();
  System.run ~until:(Time.add duration (Time.sec 2)) sys;
  let doomed_id = Domains.id doomed.System.dom in
  let doomed_killed = not (Domains.alive doomed.System.dom) in
  let rt = System.ramtab sys in
  let still_owned = ref 0 in
  for pfn = 0 to Ramtab.nframes rt - 1 do
    if Ramtab.owner rt ~pfn = Some doomed_id then incr still_owned
  done;
  let doomed_frames_reclaimed =
    doomed_killed && !still_owned = 0
    && not (Frames.is_live doomed.System.frames_client)
  in
  let viol app name =
    violations_for ~names:[ name ]
      ~ids:[ Domains.id (Workload.Paging_app.domain app).System.dom ]
  in
  let c1 = viol clean1 "clean1" and c2 = viol clean2 "clean2" in
  { seed;
    duration;
    victim = report_of victim "victim" (viol victim "victim");
    victim_info = Workload.Paging_app.paging_info victim;
    cleans =
      [ report_of clean1 "clean1" c1; report_of clean2 "clean2" c2 ];
    tally = Inject.tally ();
    accounted = Inject.accounted ();
    injected_by_class = Inject.by_class ();
    doomed_killed;
    doomed_frames_reclaimed;
    intrusive_revocations = Frames.revocations (System.frames sys);
    clean_violations = c1 + c2;
    audit = Obs.Qos_audit.summarize () }

let ok r =
  r.clean_violations = 0 && r.accounted && r.doomed_killed
  && r.doomed_frames_reclaimed
  && r.tally.Inject.injected_errors > 0

let mbit_s f = if Float.is_nan f then "warming" else Report.f2 f

let print r =
  Report.heading "Chaos: QoS firewalling under injected faults";
  Printf.printf "seed %d, %.0f s injected + 2 s drain\n\n" r.seed
    (Time.to_sec r.duration);
  Report.table
    ~header:[ "domain"; "Mbit/s"; "accesses"; "violations" ]
    (List.map
       (fun d ->
         [ d.dr_name; mbit_s d.dr_mbit; string_of_int d.dr_accesses;
           string_of_int d.dr_violations ])
       (r.victim :: r.cleans));
  print_newline ();
  let t = r.tally in
  Printf.printf
    "injected: %d media errors, %d spikes, %d stalls, %d drops, %d \
     delays, %d pressure bursts\n"
    t.Inject.injected_errors t.Inject.spikes t.Inject.stalls_injected
    t.Inject.chan_drops t.Inject.chan_delays t.Inject.pressure_bursts;
  Printf.printf
    "recovered: %d retried + %d remapped + %d degraded + %d killed = %d \
     (%s)\n"
    t.Inject.retried t.Inject.remapped t.Inject.degraded t.Inject.killed
    (t.Inject.retried + t.Inject.remapped + t.Inject.degraded
   + t.Inject.killed)
    (if r.accounted then "books balance" else "UNACCOUNTED ERRORS");
  List.iter
    (fun (cls, n) -> Printf.printf "  %-28s %d\n" cls n)
    r.injected_by_class;
  let i = r.victim_info in
  Printf.printf
    "victim driver: %d lost pages, %d re-bloks, %d shed frames, \
     wb_degraded=%b, swap_exhausted=%b\n"
    i.Sd_paged.lost_pages i.Sd_paged.rebloks i.Sd_paged.shed_frames
    i.Sd_paged.wb_degraded i.Sd_paged.swap_exhausted;
  Printf.printf
    "revocation: %d intrusive rounds; doomed domain %s, frames %s \
     (RamTab)\n\n"
    r.intrusive_revocations
    (if r.doomed_killed then "killed" else "STILL ALIVE")
    (if r.doomed_frames_reclaimed then "reclaimed" else "STILL OWNED");
  Report.audit_section "Chaos QoS audit" (Some r.audit);
  Printf.printf "clean-domain violations: %d\n" r.clean_violations;
  print_endline
    (if ok r then
       "VERDICT: ok — clean domains unperturbed, every injected fault \
        accounted for"
     else "VERDICT: FAILED")

let to_json r =
  let b = Buffer.create 1024 in
  let t = r.tally in
  Buffer.add_string b "{\n";
  Buffer.add_string b (Printf.sprintf "  \"seed\": %d,\n" r.seed);
  Buffer.add_string b
    (Printf.sprintf "  \"duration_s\": %.0f,\n" (Time.to_sec r.duration));
  let dom d =
    Printf.sprintf
      "{\"name\": %S, \"mbit_s\": %s, \"accesses\": %d, \"violations\": %d}"
      d.dr_name
      (if Float.is_nan d.dr_mbit then "null"
       else Printf.sprintf "%.3f" d.dr_mbit)
      d.dr_accesses d.dr_violations
  in
  Buffer.add_string b
    (Printf.sprintf "  \"domains\": [%s],\n"
       (String.concat ", " (List.map dom (r.victim :: r.cleans))));
  Buffer.add_string b
    (Printf.sprintf
       "  \"injected\": {\"errors\": %d, \"spikes\": %d, \"stalls\": %d, \
        \"chan_drops\": %d, \"chan_delays\": %d, \"pressure_bursts\": \
        %d},\n"
       t.Inject.injected_errors t.Inject.spikes t.Inject.stalls_injected
       t.Inject.chan_drops t.Inject.chan_delays t.Inject.pressure_bursts);
  Buffer.add_string b
    (Printf.sprintf
       "  \"recovered\": {\"retried\": %d, \"remapped\": %d, \"degraded\": \
        %d, \"killed\": %d},\n"
       t.Inject.retried t.Inject.remapped t.Inject.degraded
       t.Inject.killed);
  Buffer.add_string b
    (Printf.sprintf "  \"accounted\": %b,\n" r.accounted);
  let i = r.victim_info in
  Buffer.add_string b
    (Printf.sprintf
       "  \"victim_driver\": {\"lost_pages\": %d, \"rebloks\": %d, \
        \"shed_frames\": %d, \"wb_degraded\": %b, \"swap_exhausted\": \
        %b},\n"
       i.Sd_paged.lost_pages i.Sd_paged.rebloks i.Sd_paged.shed_frames
       i.Sd_paged.wb_degraded i.Sd_paged.swap_exhausted);
  Buffer.add_string b
    (Printf.sprintf "  \"doomed_killed\": %b,\n" r.doomed_killed);
  Buffer.add_string b
    (Printf.sprintf "  \"doomed_frames_reclaimed\": %b,\n"
       r.doomed_frames_reclaimed);
  Buffer.add_string b
    (Printf.sprintf "  \"intrusive_revocations\": %d,\n"
       r.intrusive_revocations);
  Buffer.add_string b
    (Printf.sprintf "  \"clean_violations\": %d,\n" r.clean_violations);
  Buffer.add_string b (Printf.sprintf "  \"ok\": %b\n" (ok r));
  Buffer.add_string b "}";
  Buffer.contents b
