open Engine
open Core

type domain_report = {
  dr_name : string;
  dr_pattern : string;
  dr_tiered : bool;
  dr_mbit : float;
  dr_accesses : int;
  dr_fault_mean_us : float;
  dr_fault_p95_us : float;
  dr_violations : int;
}

type result = {
  seed : int;
  duration : Time.span;
  domains : domain_report list;
  fleet : Tier.Fleet.stats;
  health : Tier.Fleet.node_health list;
  books_balanced : bool;
  store_totals : Tier.Fleet.store_stats;
  lost_slots : int;
  node_wipes : int;
  node_partitions : int;
  bystander_violations : int;
  tiered_violations : int;
  deterministic : bool;
  audit : Obs.Qos_audit.summary;
}

let patterns =
  List.map
    (fun n -> (n, Harness.pattern ~experiment:"failover" n))
    [ "seq"; "rand"; "hot" ]

let fault_hist name =
  match Obs.Metrics.hist_view ~label:name "fault.latency_us" with
  | Some v -> (v.Obs.Metrics.hv_mean, Obs.Metrics.hist_quantile v 0.95)
  | None -> (nan, nan)

let start_app sys ~name ~pattern ?backing () =
  (* six apps share the disk: 6 x 35/250 = 0.84 leaves admission room *)
  let qos = Usbs.Qos.make ~period:(Time.ms 250) ~slice:(Time.ms 35) () in
  match
    Workload.Paging_app.start sys ~name ~mode:Workload.Paging_app.Paging_in
      ~qos ~vm_bytes:(1024 * 1024) ~phys_frames:8
      ~swap_bytes:(4 * 1024 * 1024) ?backing ~pattern ()
  with
  | Ok a -> a
  (* Setup failwiths throughout: the experiment's fixed fleet admits
     by construction; backing/pattern resolution is typed via the
     registry (Harness.backing / Harness.pattern). *)
  | Error e -> failwith (Printf.sprintf "failover: %s: %s" name e)

let node_count = 4
let node_capacity = 160
let node_name i = Printf.sprintf "n%d" i

(* The fault plan is pure virtual time, no dice: n1 loses its RAM for
   good at T/3 (the node stays up and answers "miss"); n2 falls off
   the network over [T/2, 2T/3] with its contents intact. *)
let plan_for ~seed ~duration =
  let d = Time.to_ns duration in
  { Inject.default_plan with
    seed;
    node_faults =
      [ Inject.node_fault ~wipe_at:(Time.ns (d / 3)) (node_name 1);
        Inject.node_fault
          ~partitions:[ (Time.ns (d / 2), Time.ns (d * 2 / 3)) ]
          (node_name 2) ] }

let build_fleet ~seed sys =
  let nodes =
    List.init node_count (fun i ->
        let name = node_name i in
        let link =
          Usnet.Link.create ~name ~params:Usnet.Net_params.fast_ethernet
            (System.sim sys)
        in
        let remote =
          Tier.Remote_node.create ~capacity_pages:node_capacity ()
        in
        (name, remote, link))
  in
  (* The repair budget is deliberately a trickle (2 copies every
     250 ms): re-replicating a wiped node takes a large fraction of
     the run, so reads must fail over to survivors in the meantime —
     that window is the point of the experiment. *)
  ( Tier.Fleet.create ~seed ~redundancy:(Tier.Fleet.Replicated 2)
      ~repair_period:(Time.ms 250)
      ~repair_budget:2 ~nodes (System.sim sys),
    nodes )

let run_once ~seed ~duration =
  Obs.set_enabled true;
  Obs.reset ();
  Inject.disarm ();
  let config = { System.default_config with seed; main_memory_mb = 2 } in
  let sys = System.create ~config () in
  let fleet, _nodes = build_fleet ~seed sys in
  let stores = ref [] in
  let disk_apps =
    List.map
      (fun (pat, pattern) ->
        let name = "disk_" ^ pat in
        (name, pat, false, start_app sys ~name ~pattern ()))
      patterns
  in
  let tier_apps =
    List.map
      (fun (pat, pattern) ->
        let name = "fleet_" ^ pat in
        (* per-node links: 3 domains x 5/20 + the fleet's repair
           client 2/20 = 0.85 of each link *)
        let clients =
          match
            Tier.Fleet.admit_clients fleet ~name:(name ^ ".tier")
              ~period:(Time.ms 20) ~slice:(Time.ms 5) ~extra:true
              ~laxity:(Time.of_ms_float 2.0) ()
          with
          | Ok cs -> cs
          | Error e ->
              failwith ("failover: " ^ Usnet.Link.admit_error_message e)
        in
        let backing =
          Harness.backing ~experiment:"failover" "fleet:cache-pages=24"
            [ Tier.Fleet.Fleet_tier
                { fc_fleet = fleet; fc_clients = clients;
                  fc_on_store = (fun s -> stores := s :: !stores) } ]
        in
        (name, pat, true, start_app sys ~name ~pattern ~backing ()))
      patterns
  in
  let apps = disk_apps @ tier_apps in
  (* Faults are armed from the start (they fire by virtual time); a
     quiet drain lets repair finish and in-flight packets settle
     before the books are read. *)
  Inject.arm (plan_for ~seed ~duration);
  System.run ~until:duration sys;
  Inject.disarm ();
  System.run ~until:(Time.add duration (Time.sec 2)) sys;
  let viol name app =
    Chaos.violations_for ~names:[ name ]
      ~ids:[ Domains.id (Workload.Paging_app.domain app).System.dom ]
  in
  let reports =
    List.map
      (fun (name, pat, tiered, app) ->
        let mean, p95 = fault_hist name in
        { dr_name = name;
          dr_pattern = pat;
          dr_tiered = tiered;
          dr_mbit = Workload.Paging_app.sustained_mbit app;
          dr_accesses = Workload.Paging_app.measured_accesses app;
          dr_fault_mean_us = mean;
          dr_fault_p95_us = p95;
          dr_violations = viol name app })
      apps
  in
  let bystanders, tiered = List.partition (fun r -> not r.dr_tiered) reports in
  let tally = Inject.tally () in
  let store_totals =
    List.fold_left
      (fun a s ->
        let b = Tier.Fleet.store_stats s in
        let open Tier.Fleet in
        { st_cache_hits = a.st_cache_hits + b.st_cache_hits;
          st_fleet_hits = a.st_fleet_hits + b.st_fleet_hits;
          st_fleet_misses = a.st_fleet_misses + b.st_fleet_misses;
          st_promotes = a.st_promotes + b.st_promotes;
          st_demotes = a.st_demotes + b.st_demotes;
          st_write_fallbacks = a.st_write_fallbacks + b.st_write_fallbacks;
          st_clean_skips = a.st_clean_skips + b.st_clean_skips;
          st_lost_slots = a.st_lost_slots + b.st_lost_slots })
      { Tier.Fleet.st_cache_hits = 0; st_fleet_hits = 0; st_fleet_misses = 0;
        st_promotes = 0; st_demotes = 0; st_write_fallbacks = 0;
        st_clean_skips = 0; st_lost_slots = 0 }
      !stores
  in
  { seed;
    duration;
    domains = reports;
    fleet = Tier.Fleet.stats fleet;
    health = Tier.Fleet.health fleet;
    books_balanced = Tier.Fleet.books_balanced fleet;
    store_totals;
    lost_slots =
      List.fold_left
        (fun n s -> n + (Tier.Fleet.store_stats s).Tier.Fleet.st_lost_slots)
        0 !stores;
    node_wipes = tally.Inject.node_wipes;
    node_partitions = tally.Inject.node_partitions;
    bystander_violations =
      List.fold_left (fun n r -> n + r.dr_violations) 0 bystanders;
    tiered_violations =
      List.fold_left (fun n r -> n + r.dr_violations) 0 tiered;
    deterministic = true;
    audit = Obs.Qos_audit.summarize () }

let mbit_s f = if Float.is_nan f then "warming" else Report.f2 f
let us f = if Float.is_nan f then "-" else Printf.sprintf "%.0f" f

let to_json r =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Buffer.add_string b (Printf.sprintf "  \"seed\": %d,\n" r.seed);
  Buffer.add_string b
    (Printf.sprintf "  \"duration_s\": %.0f,\n" (Time.to_sec r.duration));
  let dom d =
    Printf.sprintf
      "{\"name\": %S, \"pattern\": %S, \"tiered\": %b, \"mbit_s\": %s, \
       \"accesses\": %d, \"fault_mean_us\": %s, \"fault_p95_us\": %s, \
       \"violations\": %d}"
      d.dr_name d.dr_pattern d.dr_tiered
      (if Float.is_nan d.dr_mbit then "null"
       else Printf.sprintf "%.3f" d.dr_mbit)
      d.dr_accesses
      (if Float.is_nan d.dr_fault_mean_us then "null"
       else Printf.sprintf "%.1f" d.dr_fault_mean_us)
      (if Float.is_nan d.dr_fault_p95_us then "null"
       else Printf.sprintf "%.1f" d.dr_fault_p95_us)
      d.dr_violations
  in
  Buffer.add_string b
    (Printf.sprintf "  \"domains\": [%s],\n"
       (String.concat ", " (List.map dom r.domains)));
  let f = r.fleet in
  Buffer.add_string b
    (Printf.sprintf
       "  \"fleet\": {\"stores\": %d, \"acks\": %d, \"replica_skips\": %d, \
        \"replica_timeouts\": %d, \"remote_fulls\": %d, \"lost_primaries\": \
        %d, \"failovers\": %d, \"rebuilds\": %d, \"disk_fallbacks\": %d, \
        \"secondary_rebuilds\": %d, \"retransmits\": %d, \"quarantines\": \
        %d, \"readmissions\": %d, \"probes\": %d, \"probe_failures\": %d, \
        \"wipes_applied\": %d, \"repair_rounds\": %d},\n"
       f.Tier.Fleet.stores f.Tier.Fleet.acks f.Tier.Fleet.replica_skips
       f.Tier.Fleet.replica_timeouts f.Tier.Fleet.remote_fulls
       f.Tier.Fleet.lost_primaries f.Tier.Fleet.failovers
       f.Tier.Fleet.rebuilds f.Tier.Fleet.disk_fallbacks
       f.Tier.Fleet.secondary_rebuilds f.Tier.Fleet.retransmits
       f.Tier.Fleet.quarantines f.Tier.Fleet.readmissions f.Tier.Fleet.probes
       f.Tier.Fleet.probe_failures f.Tier.Fleet.wipes_applied
       f.Tier.Fleet.repair_rounds);
  let node h =
    Printf.sprintf
      "{\"name\": %S, \"member\": %b, \"used\": %d, \"capacity\": %d, \
       \"quarantined\": %b, \"quarantines\": %d, \"readmissions\": %d, \
       \"stores\": %d, \"serves\": %d, \"failovers\": %d}"
      h.Tier.Fleet.nh_name h.Tier.Fleet.nh_member h.Tier.Fleet.nh_used
      h.Tier.Fleet.nh_capacity h.Tier.Fleet.nh_quarantined
      h.Tier.Fleet.nh_quarantines h.Tier.Fleet.nh_readmissions
      h.Tier.Fleet.nh_stores h.Tier.Fleet.nh_serves h.Tier.Fleet.nh_failovers
  in
  Buffer.add_string b
    (Printf.sprintf "  \"nodes\": [%s],\n"
       (String.concat ", " (List.map node r.health)));
  Buffer.add_string b
    (Printf.sprintf "  \"books_balanced\": %b,\n" r.books_balanced);
  let st = r.store_totals in
  Buffer.add_string b
    (Printf.sprintf
       "  \"stores\": {\"cache_hits\": %d, \"fleet_hits\": %d, \
        \"fleet_misses\": %d, \"promotes\": %d, \"demotes\": %d, \
        \"write_fallbacks\": %d, \"clean_skips\": %d, \"lost_slots\": %d},\n"
       st.Tier.Fleet.st_cache_hits st.Tier.Fleet.st_fleet_hits
       st.Tier.Fleet.st_fleet_misses st.Tier.Fleet.st_promotes
       st.Tier.Fleet.st_demotes st.Tier.Fleet.st_write_fallbacks
       st.Tier.Fleet.st_clean_skips st.Tier.Fleet.st_lost_slots);
  Buffer.add_string b (Printf.sprintf "  \"lost_slots\": %d,\n" r.lost_slots);
  Buffer.add_string b
    (Printf.sprintf "  \"node_wipes\": %d, \"node_partitions\": %d,\n"
       r.node_wipes r.node_partitions);
  Buffer.add_string b
    (Printf.sprintf "  \"bystander_violations\": %d,\n"
       r.bystander_violations);
  Buffer.add_string b
    (Printf.sprintf "  \"tiered_violations\": %d,\n" r.tiered_violations);
  Buffer.add_string b
    (Printf.sprintf "  \"deterministic\": %b\n" r.deterministic);
  Buffer.add_string b "}";
  Buffer.contents b

(* Same-seed reproducibility is part of the verdict: the whole run —
   wipe, partition, quarantine, repair — happens twice and the
   canonical reports must match byte-for-byte. *)
let run ?(seed = 42) ?(duration = Time.sec 30) () =
  let r1 = run_once ~seed ~duration in
  let r2 = run_once ~seed ~duration in
  let canon r = to_json { r with deterministic = true } in
  { r1 with deterministic = canon r1 = canon r2 }

let ok r =
  r.bystander_violations = 0 && r.books_balanced && r.lost_slots = 0
  && r.node_wipes >= 1 && r.node_partitions >= 1
  && r.fleet.Tier.Fleet.wipes_applied >= 1
  && r.fleet.Tier.Fleet.failovers > 0
  && r.fleet.Tier.Fleet.rebuilds > 0
  && r.fleet.Tier.Fleet.quarantines >= 1
  && r.fleet.Tier.Fleet.readmissions >= 1
  && r.deterministic

let print r =
  Report.heading "Failover: replicated remote memory under node loss";
  Printf.printf
    "seed %d, %.0f s (wipe at T/3, partition over [T/2, 2T/3]) + 2 s drain\n\n"
    r.seed (Time.to_sec r.duration);
  Report.table
    ~header:
      [ "domain"; "pattern"; "backing"; "Mbit/s"; "accesses"; "fault us";
        "p95 us"; "violations" ]
    (List.map
       (fun d ->
         [ d.dr_name; d.dr_pattern; (if d.dr_tiered then "fleet" else "disk");
           mbit_s d.dr_mbit; string_of_int d.dr_accesses;
           us d.dr_fault_mean_us; us d.dr_fault_p95_us;
           string_of_int d.dr_violations ])
       r.domains);
  print_newline ();
  let f = r.fleet in
  Printf.printf "placement: %d stores = %d acks (%s)\n" f.Tier.Fleet.stores
    f.Tier.Fleet.acks
    (if f.Tier.Fleet.stores = f.Tier.Fleet.acks then "balanced"
     else "UNBALANCED");
  Printf.printf
    "primaries: %d lost = %d failovers + %d rebuilds + %d disk fallbacks \
     (%s)\n"
    f.Tier.Fleet.lost_primaries f.Tier.Fleet.failovers f.Tier.Fleet.rebuilds
    f.Tier.Fleet.disk_fallbacks
    (if r.books_balanced then "balanced" else "UNBALANCED");
  Printf.printf
    "health: %d wipes applied, %d quarantines, %d probes, %d readmissions, \
     %d secondary rebuilds, %d repair rounds\n"
    f.Tier.Fleet.wipes_applied f.Tier.Fleet.quarantines f.Tier.Fleet.probes
    f.Tier.Fleet.readmissions f.Tier.Fleet.secondary_rebuilds
    f.Tier.Fleet.repair_rounds;
  List.iter
    (fun h ->
      Printf.printf "  node %s: %d/%d pages%s, %d quarantines, %d readmissions\n"
        h.Tier.Fleet.nh_name h.Tier.Fleet.nh_used h.Tier.Fleet.nh_capacity
        (if h.Tier.Fleet.nh_quarantined then " [quarantined]" else "")
        h.Tier.Fleet.nh_quarantines h.Tier.Fleet.nh_readmissions)
    r.health;
  let st = r.store_totals in
  Printf.printf
    "reads: %d cache hits, %d fleet hits, %d never-placed (disk); %d \
     demotes, %d write fallbacks, %d clean skips\n"
    st.Tier.Fleet.st_cache_hits st.Tier.Fleet.st_fleet_hits
    st.Tier.Fleet.st_fleet_misses st.Tier.Fleet.st_demotes
    st.Tier.Fleet.st_write_fallbacks st.Tier.Fleet.st_clean_skips;
  Printf.printf "committed pages lost: %d\n" r.lost_slots;
  Printf.printf "same-seed rerun: %s\n\n"
    (if r.deterministic then "byte-identical" else "DIVERGED");
  Report.audit_section "Failover QoS audit" (Some r.audit);
  Printf.printf "bystander (disk-only) violations: %d\n"
    r.bystander_violations;
  print_endline
    (if ok r then
       "VERDICT: ok — node loss survived without safety loss, books \
        balance, bystanders unperturbed, reproducible"
     else "VERDICT: FAILED")

(* ------------------------------------------------------------------ *)
(* Benchmark: post-wipe fault latency vs the healthy remote path.      *)

type bench_cell = {
  bc_name : string;
  bc_accesses : int;
  bc_mean_us : float;
  bc_half2_mean_us : float;
  bc_fleet_hits : int;
  bc_failovers : int;
  bc_rebuilds : int;
  bc_nodes : Tier.Fleet.node_health list;
}

type bench_result = {
  b_seed : int;
  b_duration : Time.span;
  b_cells : bench_cell list;
  b_healthy_us : float;
  b_postwipe_us : float;
  b_disk_us : float;
  b_degradation : float;
  b_ok : bool;
}

let bench_capacity = 300

(* One hotspot run against one backend. The histogram is cumulative,
   so the second-half window is recovered from (count, mean)
   snapshots at T/2 and T: mean2h = (m2 c2 - m1 c1) / (c2 - c1).
   When [wipe] is set, node n0 loses its contents at exactly T/2 —
   applied directly, between the two System.run legs, so the window
   boundary and the fault coincide. *)
let bench_cell ~seed ~duration ~name ~fleeted ~wipe =
  Obs.set_enabled true;
  Obs.reset ();
  Inject.disarm ();
  let config = { System.default_config with seed; main_memory_mb = 2 } in
  let sys = System.create ~config () in
  let fleet_and_nodes =
    if not fleeted then None
    else begin
      let nodes =
        List.init node_count (fun i ->
            let nm = node_name i in
            let link =
              Usnet.Link.create ~name:nm
                ~params:Usnet.Net_params.fast_ethernet (System.sim sys)
            in
            let remote =
              Tier.Remote_node.create ~capacity_pages:bench_capacity ()
            in
            (nm, remote, link))
      in
      Some
        ( Tier.Fleet.create ~seed ~redundancy:(Tier.Fleet.Replicated 2) ~nodes
            (System.sim sys),
          nodes )
    end
  in
  let store = ref None in
  let backing =
    match fleet_and_nodes with
    | None -> None
    | Some (fleet, _) ->
        let clients =
          match
            Tier.Fleet.admit_clients fleet ~name:"bench.tier"
              ~period:(Time.ms 20) ~slice:(Time.ms 5) ~extra:true
              ~laxity:(Time.of_ms_float 2.0) ()
          with
          | Ok cs -> cs
          | Error e ->
              failwith ("failover: " ^ Usnet.Link.admit_error_message e)
        in
        Some
          (Harness.backing ~experiment:"failover" "fleet:cache-pages=24"
             [ Tier.Fleet.Fleet_tier
                 { fc_fleet = fleet; fc_clients = clients;
                   fc_on_store = (fun s -> store := Some s) } ])
  in
  let app =
    start_app sys ~name:"bench" ~pattern:Workload.Paging_app.Hotspot ?backing
      ()
  in
  let half = Time.ns (Time.to_ns duration / 2) in
  System.run ~until:half sys;
  let snap () =
    match Obs.Metrics.hist_view ~label:"bench" "fault.latency_us" with
    | Some v -> (v.Obs.Metrics.hv_count, v.Obs.Metrics.hv_mean)
    | None -> (0, nan)
  in
  let c1, m1 = snap () in
  (match (wipe, fleet_and_nodes) with
  | true, Some (_, nodes) ->
      let _, remote, _ = List.nth nodes 0 in
      Tier.Remote_node.wipe remote
  | _ -> ());
  System.run ~until:duration sys;
  let c2, m2 = snap () in
  let half2 =
    if c2 > c1 then
      (((m2 *. float_of_int c2) -. (m1 *. float_of_int c1))
      /. float_of_int (c2 - c1))
    else nan
  in
  let fs, nodes_health =
    match fleet_and_nodes with
    | Some (fleet, _) -> (Tier.Fleet.stats fleet, Tier.Fleet.health fleet)
    | None ->
        ( { Tier.Fleet.stores = 0; acks = 0; replica_skips = 0;
          replica_timeouts = 0; remote_fulls = 0; lost_primaries = 0;
          failovers = 0; rebuilds = 0; disk_fallbacks = 0;
          secondary_rebuilds = 0; lost_shards = 0; degraded_reads = 0;
          reconstructions = 0; corrupt_shards = 0; migrations = 0;
          node_joins = 0; node_retires = 0; retransmits = 0;
          quarantines = 0; readmissions = 0; probes = 0; probe_failures = 0;
            wipes_applied = 0; repair_rounds = 0 },
          [] )
  in
  let hits =
    match !store with
    | Some s -> (Tier.Fleet.store_stats s).Tier.Fleet.st_fleet_hits
    | None -> 0
  in
  { bc_name = name;
    bc_accesses = Workload.Paging_app.measured_accesses app;
    bc_mean_us = m2;
    bc_half2_mean_us = half2;
    bc_fleet_hits = hits;
    bc_failovers = fs.Tier.Fleet.failovers;
    bc_rebuilds = fs.Tier.Fleet.rebuilds;
    bc_nodes = nodes_health }

let bench ?(seed = 42) ?(duration = Time.sec 30) () =
  let disk = bench_cell ~seed ~duration ~name:"disk" ~fleeted:false ~wipe:false in
  let healthy =
    bench_cell ~seed ~duration ~name:"fleet" ~fleeted:true ~wipe:false
  in
  let wiped =
    bench_cell ~seed ~duration ~name:"fleet_wipe" ~fleeted:true ~wipe:true
  in
  let degradation =
    if
      Float.is_nan healthy.bc_half2_mean_us
      || Float.is_nan wiped.bc_half2_mean_us
      || healthy.bc_half2_mean_us <= 0.
    then nan
    else wiped.bc_half2_mean_us /. healthy.bc_half2_mean_us
  in
  let okv =
    (not (Float.is_nan degradation))
    && degradation <= 2.0
    && (not (Float.is_nan disk.bc_half2_mean_us))
    && disk.bc_half2_mean_us >= 5.0 *. wiped.bc_half2_mean_us
  in
  { b_seed = seed;
    b_duration = duration;
    b_cells = [ disk; healthy; wiped ];
    b_healthy_us = healthy.bc_half2_mean_us;
    b_postwipe_us = wiped.bc_half2_mean_us;
    b_disk_us = disk.bc_half2_mean_us;
    b_degradation = degradation;
    b_ok = okv }

let bench_print r =
  Report.heading "Failover benchmark: post-wipe latency vs healthy fleet";
  Printf.printf
    "seed %d, %.0f s per cell, hotspot; wipe (if any) at T/2; second-half \
     windows compared\n\n"
    r.b_seed (Time.to_sec r.b_duration);
  Report.table
    ~header:
      [ "cell"; "accesses"; "mean us"; "2nd-half us"; "fleet hits";
        "failovers"; "rebuilds" ]
    (List.map
       (fun c ->
         [ c.bc_name; string_of_int c.bc_accesses; us c.bc_mean_us;
           us c.bc_half2_mean_us; string_of_int c.bc_fleet_hits;
           string_of_int c.bc_failovers; string_of_int c.bc_rebuilds ])
       r.b_cells);
  print_newline ();
  Printf.printf
    "post-wipe %.0f us vs healthy %.0f us (%.2fx) vs disk %.0f us — %s\n"
    r.b_postwipe_us r.b_healthy_us r.b_degradation r.b_disk_us
    (if r.b_ok then "no disk-fallback cliff" else "CLIFF (or degraded > 2x)")

let bench_to_json r =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Buffer.add_string b (Printf.sprintf "  \"seed\": %d,\n" r.b_seed);
  Buffer.add_string b
    (Printf.sprintf "  \"duration_s\": %.0f,\n" (Time.to_sec r.b_duration));
  let j f = if Float.is_nan f then "null" else Printf.sprintf "%.1f" f in
  let node h =
    Printf.sprintf
      "{\"name\": %S, \"used\": %d, \"stores\": %d, \"serves\": %d, \
       \"failovers\": %d, \"quarantines\": %d}"
      h.Tier.Fleet.nh_name h.Tier.Fleet.nh_used h.Tier.Fleet.nh_stores
      h.Tier.Fleet.nh_serves h.Tier.Fleet.nh_failovers
      h.Tier.Fleet.nh_quarantines
  in
  let cell c =
    Printf.sprintf
      "{\"cell\": %S, \"accesses\": %d, \"mean_us\": %s, \"half2_mean_us\": \
       %s, \"fleet_hits\": %d, \"failovers\": %d, \"rebuilds\": %d, \
       \"nodes\": [%s]}"
      c.bc_name c.bc_accesses (j c.bc_mean_us) (j c.bc_half2_mean_us)
      c.bc_fleet_hits c.bc_failovers c.bc_rebuilds
      (String.concat ", " (List.map node c.bc_nodes))
  in
  Buffer.add_string b
    (Printf.sprintf "  \"cells\": [%s],\n"
       (String.concat ", " (List.map cell r.b_cells)));
  Buffer.add_string b
    (Printf.sprintf
       "  \"healthy_us\": %s, \"postwipe_us\": %s, \"disk_us\": %s,\n"
       (j r.b_healthy_us) (j r.b_postwipe_us) (j r.b_disk_us));
  Buffer.add_string b
    (Printf.sprintf "  \"degradation\": %s,\n"
       (if Float.is_nan r.b_degradation then "null"
        else Printf.sprintf "%.3f" r.b_degradation));
  Buffer.add_string b (Printf.sprintf "  \"ok\": %b\n" r.b_ok);
  Buffer.add_string b "}";
  Buffer.contents b
