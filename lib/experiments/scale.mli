(** The scale experiment: many self-paging domains at once.

    Boots one machine and admits (by default) 128 paging applications,
    each with its own CPU contract, USD channel, swap extent and frame
    guarantee, cycling through sequential / random / hot-spot access
    patterns. Contracts are scaled so the fleet books ≈ 77 % of the
    CPU and ≈ 80 % of the disk regardless of the domain count, and
    physical memory is sized so every guarantee fits with only ~25 %
    headroom — admission is tight but honest.

    The run then asserts the self-paging story at scale:

    - a late-comer asking for more guaranteed frames than remain is
      refused with the typed [Frames.Admission_overcommit] error
      carrying the exact shortfall;
    - the QoS auditor attributes {e zero} violations to anybody —
      every admitted contract was honoured;
    - the frame books balance: free + Σ held = total, and the RamTab
      agrees frame-for-frame.

    This experiment is the acceptance harness for the O(1)/O(log n)
    hot-path work: member-list folds that were fine with five domains
    would make this run quadratic. *)

open Engine

type pattern_report = {
  pr_pattern : string;  (** ["seq"], ["rand"] or ["hot"] *)
  pr_domains : int;
  pr_measured : int;  (** domains that reached their measured loop *)
  pr_accesses : int;  (** page accesses in measured loops *)
  pr_mbit : float;  (** aggregate Mbit/s ([nan] if none measured) *)
}

type result = {
  seed : int;
  domains : int;
  duration : Time.span;
  patterns : pattern_report list;
  total_accesses : int;
  measured_domains : int;
  aggregate_mbit : float;
  refusal_requested : int;  (** guaranteed frames the late-comer asked for *)
  refusal_available : int;  (** what admission said remained *)
  refusal_message : string;  (** rendered [System.error_message] *)
  violations : int;  (** QoS-audit total — must be 0 *)
  audit : Obs.Qos_audit.summary;
  frames_total : int;
  frames_free : int;
  frames_held : int;  (** Σ held over live domains *)
  frames_owned : int;  (** RamTab frames with an owner *)
  guaranteed_total : int;
  books_balanced : bool;
  usd_utilisation : float;
  revocations : int;
}

val run : ?seed:int -> ?domains:int -> ?duration:Time.span -> unit -> result
(** Defaults: seed 42, 128 domains, 60 simulated seconds. Enables
    {!Obs} and resets collectors. Same seed ⇒ byte-identical
    {!to_json}. *)

val ok : result -> bool
(** Zero violations, balanced books, work actually done, and the
    late-comer refusal carried the exact shortfall. *)

val print : result -> unit
val to_json : result -> string
