open Engine
open Core
open Workload

type row = {
  policy : string;
  pattern : string;
  accesses : int;
  faults : int;
  miss_rate : float;
  demand_ins : int;
  prefetched : int;
  prefetch_hits : int;
  prefetch_waste : int;
  page_outs : int;
  evictions : int;
  wb_flushes : int;
  rescues : int;
  mean_fault_us : float;
  p99_fault_us : float;
  app_mbit : float;
  contender_mbit : float;
  violations : int;
}

type result = { duration : Time.t; rows : row list }

let patterns =
  List.map
    (fun n -> (n, Harness.pattern ~experiment:"policy-compare" n))
    [ "seq"; "rand"; "hot" ]

(* The probe app: 256 pages of VM over 48 guaranteed frames, so the
   residency ratio is ~19% — small enough that sequential and random
   scans page hard, large enough that the hotspot working set (32
   pages) fits and a recency policy can keep it resident. *)
let probe_vm_pages = 256
let probe_frames = 48
let page_bytes = 8192

(* One cell of the comparison matrix: the probe app under [spec] and
   [pattern] (50% of the disk) next to a fixed contender (the seed
   policy, sequential, 25% of the disk). The contender witnesses QoS
   isolation: its throughput must not depend on the probe's policy,
   and the run must stay free of audit violations. *)
let run_cell ~duration ~seed spec (pat_name, pattern) =
  Obs.reset ();
  let sys = Harness.fresh_system ~seed () in
  let qos_probe =
    Usbs.Qos.make ~period:(Time.ms 250) ~slice:(Time.ms 125) ()
  in
  let qos_rival =
    Usbs.Qos.make ~period:(Time.ms 250) ~slice:(Time.ms 62) ()
  in
  let probe =
    match
      Paging_app.start sys ~name:"probe" ~mode:Paging_app.Paging_in
        ~qos:qos_probe
        ~vm_bytes:(probe_vm_pages * page_bytes)
        ~phys_frames:probe_frames
        ~swap_bytes:(2 * probe_vm_pages * page_bytes)
        ~policy:spec ~pattern ()
    with
    | Ok a -> a
    (* Setup failwith: the policy spec was already resolved (typed)
       by the caller; a start failure here is a sizing bug. *)
    | Error e -> failwith ("policy-compare probe: " ^ e)
  in
  let rival =
    match
      Paging_app.start sys ~name:"rival" ~mode:Paging_app.Paging_in
        ~qos:qos_rival ()
    with
    | Ok a -> a
    | Error e -> failwith ("policy-compare rival: " ^ e)
  in
  System.run sys ~until:duration;
  let info = Paging_app.measured_info probe in
  let accesses = Paging_app.measured_accesses probe in
  let faults = info.Sd_paged.page_ins + info.Sd_paged.rescues in
  let mean_fault_us, p99_fault_us =
    match Obs.Metrics.hist_view ~label:"probe" "fault.latency_us" with
    | Some v -> (v.Obs.Metrics.hv_mean, Obs.Metrics.hist_quantile v 0.99)
    | None -> (nan, nan)
  in
  let row =
    { policy = Paging_app.policy_name probe;
      pattern = pat_name;
      accesses;
      faults;
      miss_rate =
        (if accesses = 0 then nan
         else float_of_int faults /. float_of_int accesses);
      demand_ins = info.Sd_paged.page_ins;
      prefetched = info.Sd_paged.prefetched;
      prefetch_hits = info.Sd_paged.prefetch_hits;
      prefetch_waste = info.Sd_paged.prefetch_waste;
      page_outs = info.Sd_paged.page_outs;
      evictions = info.Sd_paged.evictions;
      wb_flushes = info.Sd_paged.wb_flushes;
      rescues = info.Sd_paged.rescues;
      mean_fault_us;
      p99_fault_us;
      (* Overall progress rates (bytes touched over the whole run), not
         the sampler's steady-state rate: the contender pages a 4 MB
         stretch through 2 frames and on short runs never leaves its
         populate phase, and the probe's warm-up phases would make the
         sampled windows incomparable across policies. *)
      app_mbit =
        float_of_int (Paging_app.bytes_processed probe)
        *. 8.0 /. Time.to_sec duration /. 1e6;
      contender_mbit =
        float_of_int (Paging_app.bytes_processed rival)
        *. 8.0 /. Time.to_sec duration /. 1e6;
      violations = Obs.Qos_audit.total () }
  in
  Paging_app.stop probe;
  Paging_app.stop rival;
  row

let run ?(duration = Time.sec 60) ?(seed = 42)
    ?(policies = List.map snd Policy.Spec.presets) () =
  (* The experiment depends on the metrics/audit plane; run it with
     observability on, restoring the caller's setting afterwards. *)
  let was_enabled = !Obs.enabled in
  Obs.set_enabled true;
  let rows =
    List.concat_map
      (fun spec -> List.map (run_cell ~duration ~seed spec) patterns)
      policies
  in
  Obs.reset ();
  Obs.set_enabled was_enabled;
  { duration; rows }

let print r =
  Report.heading
    (Printf.sprintf
       "Policy comparison: paging figure per policy x pattern (%.0fs runs)"
       (Time.to_sec r.duration));
  Report.table
    ~header:
      [ "policy"; "pattern"; "accesses"; "faults"; "miss"; "pref";
        "hit"; "waste"; "outs"; "wb"; "resc"; "mean flt us"; "p99 flt us";
        "Mbit/s"; "rival Mbit/s"; "qos viol" ]
    (List.map
       (fun row ->
         [ row.policy; row.pattern;
           string_of_int row.accesses;
           string_of_int row.faults;
           Report.f2 row.miss_rate;
           string_of_int row.prefetched;
           string_of_int row.prefetch_hits;
           string_of_int row.prefetch_waste;
           string_of_int row.page_outs;
           string_of_int row.wb_flushes;
           string_of_int row.rescues;
           Report.f1 row.mean_fault_us;
           Report.f1 row.p99_fault_us;
           Report.f2 row.app_mbit;
           Report.f2 row.contender_mbit;
           string_of_int row.violations ])
       r.rows);
  print_newline ();
  print_endline
    "Each run pairs the probe app (50% disk) with a fixed FIFO contender";
  print_endline
    "(25% disk): the contender's throughput and a zero violation count";
  print_endline "witness that policy choice stays inside the domain's own";
  print_endline "guarantee — self-paging makes paging policy a private matter."

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float f =
  if Float.is_nan f then "null" else Printf.sprintf "%.6g" f

let row_to_json row =
  Printf.sprintf
    "{\"policy\":\"%s\",\"pattern\":\"%s\",\"accesses\":%d,\"faults\":%d,\
     \"miss_rate\":%s,\"demand_ins\":%d,\"prefetched\":%d,\
     \"prefetch_hits\":%d,\"prefetch_waste\":%d,\"page_outs\":%d,\
     \"evictions\":%d,\"wb_flushes\":%d,\"rescues\":%d,\
     \"mean_fault_us\":%s,\"p99_fault_us\":%s,\"app_mbit\":%s,\
     \"contender_mbit\":%s,\"qos_violations\":%d}"
    (json_escape row.policy) (json_escape row.pattern) row.accesses row.faults
    (json_float row.miss_rate) row.demand_ins row.prefetched row.prefetch_hits
    row.prefetch_waste row.page_outs row.evictions row.wb_flushes row.rescues
    (json_float row.mean_fault_us) (json_float row.p99_fault_us)
    (json_float row.app_mbit) (json_float row.contender_mbit) row.violations

let to_json r =
  Printf.sprintf "{\"duration_s\":%s,\"rows\":[\n%s\n]}\n"
    (json_float (Time.to_sec r.duration))
    (String.concat ",\n" (List.map row_to_json r.rows))
