open Engine
open Hw
open Core

type pattern_report = {
  pr_pattern : string;
  pr_domains : int;
  pr_measured : int;
  pr_accesses : int;
  pr_mbit : float;
}

type result = {
  seed : int;
  domains : int;
  duration : Time.span;
  patterns : pattern_report list;
  total_accesses : int;
  measured_domains : int;
  aggregate_mbit : float;
  refusal_requested : int;
  refusal_available : int;
  refusal_message : string;
  violations : int;
  audit : Obs.Qos_audit.summary;
  frames_total : int;
  frames_free : int;
  frames_held : int;
  frames_owned : int;
  guaranteed_total : int;
  books_balanced : bool;
  usd_utilisation : float;
  revocations : int;
}

(* Per-domain sizing. Guarantees only (o = 0): the point of the scale
   run is many domains self-paging concurrently under honest admission
   control, not revocation storms — the chaos experiment covers those. *)
let guarantee = 6
let vm_pages = 16
let swap_pages = 32

let pattern_of i =
  let n = [| "seq"; "rand"; "hot" |].(i mod 3) in
  (Harness.pattern ~experiment:"scale" n, n)

let run ?(seed = 42) ?(domains = 128) ?(duration = Time.sec 60) () =
  if domains < 1 then invalid_arg "Scale.run: domains must be positive";
  Obs.set_enabled true;
  Obs.reset ();
  Inject.disarm ();
  (* Memory sized so every guarantee fits with ~25 % headroom left
     unguaranteed — tight enough that the late-comer refusal below is
     a real admission decision, not a formality. *)
  let frames_wanted = domains * guarantee * 5 / 4 in
  let frames_per_mb = 1024 * 1024 / Addr.page_size in
  let mem_mb = max 2 ((frames_wanted + frames_per_mb - 1) / frames_per_mb) in
  let config = { System.default_config with seed; main_memory_mb = mem_mb } in
  let sys = System.create ~config () in
  (* Flat contracts, scaled so the fleet books Σ s/p ≈ 0.77 of the CPU
     and ≈ 0.8 of the disk whatever [domains] is. The disk period also
     grows with the fleet: a disk transaction costs ~10 ms whatever the
     slice (the short-block problem), so each client's per-period slice
     must span whole transactions or EDF cannot possibly honour every
     contract within the period and the auditor rightly objects. *)
  let cpu_slice = Time.us (max 20 (7_700 / domains)) in
  let usd_period_ms = max 400 (domains * 32) in
  let usd_period = Time.ms usd_period_ms in
  let usd_slice = Time.us (max 500 (usd_period_ms * 800 / domains)) in
  let qos = Usbs.Qos.make ~period:usd_period ~slice:usd_slice () in
  let apps =
    List.init domains (fun i ->
        let pattern, pname = pattern_of i in
        let name = Printf.sprintf "d%03d" i in
        match
          Workload.Paging_app.start sys ~name
            ~mode:Workload.Paging_app.Paging_in ~qos
            ~vm_bytes:(vm_pages * Addr.page_size) ~phys_frames:guarantee
            ~optimistic:0 ~swap_bytes:(swap_pages * Addr.page_size)
            ~cpu_slice ~pattern ()
        with
        | Ok a -> (a, pname)
        (* Setup failwith: the first [domains] admissions are sized to
           fit; only the deliberate 129th below may be refused, and
           that refusal is typed and asserted on. *)
        | Error e -> failwith (Printf.sprintf "scale: %s: %s" name e))
  in
  (* The 129th domain: admission control must refuse it with the typed
     overcommit error carrying the exact shortfall. *)
  let fr = System.frames sys in
  let over = Frames.total_frames fr - Frames.guaranteed_total fr + 1 in
  let refusal_message, refusal_requested, refusal_available =
    match
      System.add_domain sys ~name:"latecomer" ~cpu_slice:(Time.us 20)
        ~guarantee:over ~optimistic:0 ()
    with
    | Ok _ -> failwith "scale: overcommitted admission was accepted"
    | Error
        (System.Frames_admission
           (Frames.Admission_overcommit { requested; available }) as e) ->
      (System.error_message e, requested, available)
    | Error e ->
      failwith ("scale: unexpected refusal: " ^ System.error_message e)
  in
  System.run ~until:duration sys;
  let agg pname =
    let mine = List.filter (fun (_, p) -> p = pname) apps in
    let measured =
      List.filter (fun (a, _) -> Workload.Paging_app.in_measured_loop a) mine
    in
    let mbit =
      List.fold_left
        (fun acc (a, _) ->
          let m = Workload.Paging_app.sustained_mbit a in
          if Float.is_nan m then acc else acc +. m)
        0.0 measured
    in
    { pr_pattern = pname;
      pr_domains = List.length mine;
      pr_measured = List.length measured;
      pr_accesses =
        List.fold_left
          (fun acc (a, _) -> acc + Workload.Paging_app.measured_accesses a)
          0 mine;
      pr_mbit = (if measured = [] then Float.nan else mbit) }
  in
  let patterns = List.map agg [ "seq"; "rand"; "hot" ] in
  let held_sum =
    List.fold_left
      (fun acc d -> acc + Frames.held d.System.frames_client)
      0 (System.domains sys)
  in
  let rt = System.ramtab sys in
  let owned = ref 0 in
  for pfn = 0 to Ramtab.nframes rt - 1 do
    if Ramtab.owner rt ~pfn <> None then incr owned
  done;
  let frames_total = Frames.total_frames fr in
  let frames_free = Frames.free_frames fr in
  let books_balanced =
    frames_free + held_sum = frames_total && !owned = held_sum
  in
  let audit = Obs.Qos_audit.summarize () in
  { seed;
    domains;
    duration;
    patterns;
    total_accesses =
      List.fold_left (fun a p -> a + p.pr_accesses) 0 patterns;
    measured_domains =
      List.fold_left (fun a p -> a + p.pr_measured) 0 patterns;
    aggregate_mbit =
      List.fold_left
        (fun a p -> if Float.is_nan p.pr_mbit then a else a +. p.pr_mbit)
        0.0 patterns;
    refusal_requested;
    refusal_available;
    refusal_message;
    violations = audit.Obs.Qos_audit.violations;
    audit;
    frames_total;
    frames_free;
    frames_held = held_sum;
    frames_owned = !owned;
    guaranteed_total = Frames.guaranteed_total fr;
    books_balanced;
    usd_utilisation = Usbs.Usd.utilisation (System.usd sys);
    revocations = Frames.revocations fr }

let ok r =
  r.violations = 0 && r.books_balanced && r.total_accesses > 0
  && r.measured_domains > 0
  && r.refusal_available = r.frames_total - r.guaranteed_total
  && r.refusal_requested = r.refusal_available + 1

let mbit_s f = if Float.is_nan f then "warming" else Report.f2 f

let print r =
  Report.heading "Scale: many self-paging domains";
  Printf.printf "seed %d, %d domains, %.0f s\n\n" r.seed r.domains
    (Time.to_sec r.duration);
  Report.table
    ~header:[ "pattern"; "domains"; "measured"; "accesses"; "Mbit/s" ]
    (List.map
       (fun p ->
         [ p.pr_pattern; string_of_int p.pr_domains;
           string_of_int p.pr_measured; string_of_int p.pr_accesses;
           mbit_s p.pr_mbit ])
       r.patterns);
  print_newline ();
  Printf.printf
    "admission: %d domains × %d guaranteed frames = %d of %d; late-comer \
     asking %d refused (\"%s\")\n"
    r.domains guarantee r.guaranteed_total r.frames_total r.refusal_requested
    r.refusal_message;
  Printf.printf
    "frames: %d free + %d held = %d total; RamTab owns %d (%s)\n"
    r.frames_free r.frames_held r.frames_total r.frames_owned
    (if r.books_balanced then "books balance" else "BOOKS OFF");
  Printf.printf "disk utilisation booked: %s; intrusive revocations: %d\n\n"
    (Report.f2 r.usd_utilisation) r.revocations;
  Report.audit_section "Scale QoS audit" (Some r.audit);
  print_endline
    (if ok r then
       "VERDICT: ok — fleet admitted and isolated, zero violations, \
        books balance"
     else "VERDICT: FAILED")

let to_json r =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Buffer.add_string b (Printf.sprintf "  \"seed\": %d,\n" r.seed);
  Buffer.add_string b (Printf.sprintf "  \"domains\": %d,\n" r.domains);
  Buffer.add_string b
    (Printf.sprintf "  \"duration_s\": %.0f,\n" (Time.to_sec r.duration));
  let pat p =
    Printf.sprintf
      "{\"pattern\": %S, \"domains\": %d, \"measured\": %d, \"accesses\": \
       %d, \"mbit_s\": %s}"
      p.pr_pattern p.pr_domains p.pr_measured p.pr_accesses
      (if Float.is_nan p.pr_mbit then "null"
       else Printf.sprintf "%.3f" p.pr_mbit)
  in
  Buffer.add_string b
    (Printf.sprintf "  \"patterns\": [%s],\n"
       (String.concat ", " (List.map pat r.patterns)));
  Buffer.add_string b
    (Printf.sprintf "  \"total_accesses\": %d,\n" r.total_accesses);
  Buffer.add_string b
    (Printf.sprintf "  \"measured_domains\": %d,\n" r.measured_domains);
  Buffer.add_string b
    (Printf.sprintf "  \"aggregate_mbit_s\": %.3f,\n" r.aggregate_mbit);
  Buffer.add_string b
    (Printf.sprintf
       "  \"refusal\": {\"requested\": %d, \"available\": %d, \"message\": \
        %S},\n"
       r.refusal_requested r.refusal_available r.refusal_message);
  Buffer.add_string b
    (Printf.sprintf
       "  \"frames\": {\"total\": %d, \"free\": %d, \"held\": %d, \
        \"owned\": %d, \"guaranteed\": %d, \"books_balanced\": %b},\n"
       r.frames_total r.frames_free r.frames_held r.frames_owned
       r.guaranteed_total r.books_balanced);
  Buffer.add_string b
    (Printf.sprintf "  \"usd_utilisation\": %.4f,\n" r.usd_utilisation);
  Buffer.add_string b
    (Printf.sprintf "  \"revocations\": %d,\n" r.revocations);
  Buffer.add_string b
    (Printf.sprintf "  \"violations\": %d,\n" r.violations);
  Buffer.add_string b (Printf.sprintf "  \"ok\": %b\n" (ok r));
  Buffer.add_string b "}";
  Buffer.contents b
