open Engine
open Core

type domain_report = {
  dr_name : string;
  dr_pattern : string;
  dr_tiered : bool;
  dr_mbit : float;
  dr_accesses : int;
  dr_fault_mean_us : float;
  dr_fault_p95_us : float;
  dr_violations : int;
}

type result = {
  seed : int;
  duration : Time.span;
  domains : domain_report list;
  tier : Tier.Store.stats;
  books_balanced : bool;
  remote_used : int;
  remote_capacity : int;
  link_drops : int;
  link_delays : int;
  link_utilisation : float;
  bystander_violations : int;
  tiered_violations : int;
  deterministic : bool;
  audit : Obs.Qos_audit.summary;
}

let patterns =
  List.map
    (fun n -> (n, Harness.pattern ~experiment:"remote" n))
    [ "seq"; "rand"; "hot" ]

let zero_stats =
  { Tier.Store.cache_hits = 0; remote_hits = 0; remote_misses = 0;
    promotes = 0; demotes = 0; remote_fulls = 0; drops_seen = 0;
    delays_seen = 0; retransmits = 0; retx_delays = []; drop_losses = 0;
    transfer_fails = 0;
    clean_aborts = 0; disk_fallbacks = 0; link_lost_slots = 0;
    lost_slots = 0 }

let add_stats a b =
  { Tier.Store.cache_hits = a.Tier.Store.cache_hits + b.Tier.Store.cache_hits;
    remote_hits = a.Tier.Store.remote_hits + b.Tier.Store.remote_hits;
    remote_misses = a.Tier.Store.remote_misses + b.Tier.Store.remote_misses;
    promotes = a.Tier.Store.promotes + b.Tier.Store.promotes;
    demotes = a.Tier.Store.demotes + b.Tier.Store.demotes;
    remote_fulls = a.Tier.Store.remote_fulls + b.Tier.Store.remote_fulls;
    drops_seen = a.Tier.Store.drops_seen + b.Tier.Store.drops_seen;
    delays_seen = a.Tier.Store.delays_seen + b.Tier.Store.delays_seen;
    retransmits = a.Tier.Store.retransmits + b.Tier.Store.retransmits;
    retx_delays = a.Tier.Store.retx_delays @ b.Tier.Store.retx_delays;
    drop_losses = a.Tier.Store.drop_losses + b.Tier.Store.drop_losses;
    transfer_fails = a.Tier.Store.transfer_fails + b.Tier.Store.transfer_fails;
    clean_aborts = a.Tier.Store.clean_aborts + b.Tier.Store.clean_aborts;
    disk_fallbacks = a.Tier.Store.disk_fallbacks + b.Tier.Store.disk_fallbacks;
    link_lost_slots =
      a.Tier.Store.link_lost_slots + b.Tier.Store.link_lost_slots;
    lost_slots = a.Tier.Store.lost_slots + b.Tier.Store.lost_slots }

let fault_hist name =
  match Obs.Metrics.hist_view ~label:name "fault.latency_us" with
  | Some v -> (v.Obs.Metrics.hv_mean, Obs.Metrics.hist_quantile v 0.95)
  | None -> (nan, nan)

let start_app sys ~name ~pattern ?backing () =
  (* six apps share the disk: 6 x 35/250 = 0.84 leaves admission room *)
  let qos = Usbs.Qos.make ~period:(Time.ms 250) ~slice:(Time.ms 35) () in
  match
    Workload.Paging_app.start sys ~name ~mode:Workload.Paging_app.Paging_in
      ~qos ~vm_bytes:(1024 * 1024) ~phys_frames:8
      ~swap_bytes:(4 * 1024 * 1024) ?backing ~pattern ()
  with
  | Ok a -> a
  (* Setup failwiths throughout: the experiment's fixed fleet admits
     by construction; backing/pattern resolution is typed via the
     registry (Harness.backing / Harness.pattern). *)
  | Error e -> failwith (Printf.sprintf "remote: %s: %s" name e)

(* The link chaos plan: second-half packet loss and delay on the
   tier's link, nothing else — the disk stays clean so any bystander
   wobble could only have come through the network side. *)
let plan_for ~seed =
  { Inject.default_plan with
    seed;
    links =
      [ ( "tier0",
          { Inject.lf_drop = 0.06;
            lf_delay = 0.05;
            lf_delay_span = Time.of_ms_float 2.0 } ) ] }

let remote_capacity = 160

let run_once ~seed ~duration =
  Obs.set_enabled true;
  Obs.reset ();
  Inject.disarm ();
  let config = { System.default_config with seed; main_memory_mb = 2 } in
  let sys = System.create ~config () in
  let link =
    Usnet.Link.create ~name:"tier0" ~params:Usnet.Net_params.fast_ethernet
      (System.sim sys)
  in
  let remote = Tier.Remote_node.create ~capacity_pages:remote_capacity () in
  let stores = ref [] in
  let disk_apps =
    List.map
      (fun (pat, pattern) ->
        let name = "disk_" ^ pat in
        (name, pat, false, start_app sys ~name ~pattern ()))
      patterns
  in
  let tier_apps =
    List.map
      (fun (pat, pattern) ->
        let name = "tier_" ^ pat in
        let client =
          match
            Usnet.Link.admit link ~name:(name ^ ".tier") ~period:(Time.ms 20)
              ~slice:(Time.ms 5) ~extra:true ~laxity:(Time.of_ms_float 2.0) ()
          with
          | Ok c -> c
          | Error e ->
            failwith ("remote: " ^ Usnet.Link.admit_error_message e)
        in
        let backing =
          Harness.backing ~experiment:"remote" "tiered:cache-pages=24"
            [ Tier.Store.Tiered
                { tc_link = link; tc_client = client; tc_remote = remote;
                  tc_on_store = (fun s -> stores := s :: !stores) } ]
        in
        (name, pat, true, start_app sys ~name ~pattern ~backing ()))
      patterns
  in
  let apps = disk_apps @ tier_apps in
  (* Clean first half, then chaos on the link, then a quiet drain so
     in-flight retransmissions settle before the books are read. *)
  let half = Time.ns (Time.to_ns duration / 2) in
  System.run ~until:half sys;
  Inject.arm (plan_for ~seed);
  System.run ~until:duration sys;
  Inject.disarm ();
  System.run ~until:(Time.add duration (Time.sec 2)) sys;
  let viol name app =
    Chaos.violations_for ~names:[ name ]
      ~ids:[ Domains.id (Workload.Paging_app.domain app).System.dom ]
  in
  let reports =
    List.map
      (fun (name, pat, tiered, app) ->
        let mean, p95 = fault_hist name in
        { dr_name = name;
          dr_pattern = pat;
          dr_tiered = tiered;
          dr_mbit = Workload.Paging_app.sustained_mbit app;
          dr_accesses = Workload.Paging_app.measured_accesses app;
          dr_fault_mean_us = mean;
          dr_fault_p95_us = p95;
          dr_violations = viol name app })
      apps
  in
  let bystanders, tiered =
    List.partition (fun r -> not r.dr_tiered) reports
  in
  let tally = Inject.tally () in
  { seed;
    duration;
    domains = reports;
    tier =
      List.fold_left
        (fun acc s -> add_stats acc (Tier.Store.stats s))
        zero_stats !stores;
    books_balanced = List.for_all Tier.Store.books_balanced !stores;
    remote_used = Tier.Remote_node.used_pages remote;
    remote_capacity;
    link_drops = tally.Inject.link_drops;
    link_delays = tally.Inject.link_delays;
    link_utilisation = Usnet.Link.utilisation link;
    bystander_violations =
      List.fold_left (fun n r -> n + r.dr_violations) 0 bystanders;
    tiered_violations =
      List.fold_left (fun n r -> n + r.dr_violations) 0 tiered;
    deterministic = true;
    audit = Obs.Qos_audit.summarize () }

let mbit_s f = if Float.is_nan f then "warming" else Report.f2 f
let us f = if Float.is_nan f then "-" else Printf.sprintf "%.0f" f

let to_json r =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Buffer.add_string b (Printf.sprintf "  \"seed\": %d,\n" r.seed);
  Buffer.add_string b
    (Printf.sprintf "  \"duration_s\": %.0f,\n" (Time.to_sec r.duration));
  let dom d =
    Printf.sprintf
      "{\"name\": %S, \"pattern\": %S, \"tiered\": %b, \"mbit_s\": %s, \
       \"accesses\": %d, \"fault_mean_us\": %s, \"fault_p95_us\": %s, \
       \"violations\": %d}"
      d.dr_name d.dr_pattern d.dr_tiered
      (if Float.is_nan d.dr_mbit then "null"
       else Printf.sprintf "%.3f" d.dr_mbit)
      d.dr_accesses
      (if Float.is_nan d.dr_fault_mean_us then "null"
       else Printf.sprintf "%.1f" d.dr_fault_mean_us)
      (if Float.is_nan d.dr_fault_p95_us then "null"
       else Printf.sprintf "%.1f" d.dr_fault_p95_us)
      d.dr_violations
  in
  Buffer.add_string b
    (Printf.sprintf "  \"domains\": [%s],\n"
       (String.concat ", " (List.map dom r.domains)));
  let t = r.tier in
  Buffer.add_string b
    (Printf.sprintf
       "  \"tier\": {\"cache_hits\": %d, \"remote_hits\": %d, \
        \"remote_misses\": %d, \"promotes\": %d, \"demotes\": %d, \
        \"remote_fulls\": %d, \"drops_seen\": %d, \"delays_seen\": %d, \
        \"retransmits\": %d, \"retx_backoff_ms\": %.3f, \"drop_losses\": \
        %d, \"transfer_fails\": %d, \"clean_aborts\": %d, \
        \"disk_fallbacks\": %d, \"link_lost_slots\": %d, \"lost_slots\": \
        %d},\n"
       t.Tier.Store.cache_hits t.Tier.Store.remote_hits
       t.Tier.Store.remote_misses t.Tier.Store.promotes t.Tier.Store.demotes
       t.Tier.Store.remote_fulls t.Tier.Store.drops_seen
       t.Tier.Store.delays_seen t.Tier.Store.retransmits
       (Time.to_ms (List.fold_left ( + ) 0 t.Tier.Store.retx_delays))
       t.Tier.Store.drop_losses t.Tier.Store.transfer_fails
       t.Tier.Store.clean_aborts t.Tier.Store.disk_fallbacks
       t.Tier.Store.link_lost_slots t.Tier.Store.lost_slots);
  Buffer.add_string b
    (Printf.sprintf "  \"books_balanced\": %b,\n" r.books_balanced);
  Buffer.add_string b
    (Printf.sprintf "  \"remote\": {\"used\": %d, \"capacity\": %d},\n"
       r.remote_used r.remote_capacity);
  Buffer.add_string b
    (Printf.sprintf
       "  \"link\": {\"drops\": %d, \"delays\": %d, \"utilisation\": %.3f},\n"
       r.link_drops r.link_delays r.link_utilisation);
  Buffer.add_string b
    (Printf.sprintf "  \"bystander_violations\": %d,\n"
       r.bystander_violations);
  Buffer.add_string b
    (Printf.sprintf "  \"tiered_violations\": %d,\n" r.tiered_violations);
  Buffer.add_string b
    (Printf.sprintf "  \"deterministic\": %b\n" r.deterministic);
  Buffer.add_string b "}";
  Buffer.contents b

(* Same-seed reproducibility is part of the verdict: the whole fleet —
   link chaos included — runs twice and the canonical reports must
   match byte-for-byte. *)
let run ?(seed = 42) ?(duration = Time.sec 30) () =
  let r1 = run_once ~seed ~duration in
  let r2 = run_once ~seed ~duration in
  let canon r = to_json { r with deterministic = true } in
  { r1 with deterministic = canon r1 = canon r2 }

let ok r =
  r.bystander_violations = 0 && r.books_balanced && r.link_drops > 0
  && r.tier.Tier.Store.remote_hits > 0
  && r.tier.Tier.Store.demotes > 0
  && r.deterministic

let print r =
  Report.heading "Remote paging: a memory tier across the network";
  Printf.printf
    "seed %d, %.0f s (link chaos in the second half) + 2 s drain\n\n" r.seed
    (Time.to_sec r.duration);
  Report.table
    ~header:
      [ "domain"; "pattern"; "backing"; "Mbit/s"; "accesses"; "fault us";
        "p95 us"; "violations" ]
    (List.map
       (fun d ->
         [ d.dr_name; d.dr_pattern; (if d.dr_tiered then "tier" else "disk");
           mbit_s d.dr_mbit; string_of_int d.dr_accesses;
           us d.dr_fault_mean_us; us d.dr_fault_p95_us;
           string_of_int d.dr_violations ])
       r.domains);
  print_newline ();
  let t = r.tier in
  Printf.printf
    "tier: %d cache hits, %d remote hits, %d remote misses, %d demotes, %d \
     promotes, %d remote-full degrades\n"
    t.Tier.Store.cache_hits t.Tier.Store.remote_hits
    t.Tier.Store.remote_misses t.Tier.Store.demotes t.Tier.Store.promotes
    t.Tier.Store.remote_fulls;
  Printf.printf
    "link: %d drops = %d retransmits + %d losses; %d failed transfers = %d \
     clean + %d disk fallbacks + %d lost slots (%s)\n"
    t.Tier.Store.drops_seen t.Tier.Store.retransmits
    t.Tier.Store.drop_losses t.Tier.Store.transfer_fails
    t.Tier.Store.clean_aborts t.Tier.Store.disk_fallbacks
    t.Tier.Store.link_lost_slots
    (if r.books_balanced then "books balance" else "UNBALANCED BOOKS");
  Printf.printf "remote node: %d/%d pages; link utilisation %.2f\n"
    r.remote_used r.remote_capacity r.link_utilisation;
  Printf.printf "same-seed rerun: %s\n\n"
    (if r.deterministic then "byte-identical" else "DIVERGED");
  Report.audit_section "Remote-paging QoS audit" (Some r.audit);
  Printf.printf "bystander (disk-only) violations: %d\n"
    r.bystander_violations;
  print_endline
    (if ok r then
       "VERDICT: ok — bystanders unperturbed, tier books balance, chaos \
        reproducible"
     else "VERDICT: FAILED")

(* ------------------------------------------------------------------ *)
(* Benchmark: tiered vs disk-only, per pattern, fault-free.            *)

type bench_cell = {
  bc_pattern : string;
  bc_tiered : bool;
  bc_mbit : float;
  bc_accesses : int;
  bc_fault_mean_us : float;
  bc_fault_p95_us : float;
  bc_cache_hits : int;
  bc_remote_hits : int;
  bc_remote_misses : int;
}

type bench_result = {
  b_seed : int;
  b_duration : Time.span;
  b_cells : bench_cell list;
  b_hot_speedup : float;
  b_hot_tiered_beats_disk : bool;
}

let bench_cell ~seed ~duration ~pat ~pattern ~tiered =
  Obs.set_enabled true;
  Obs.reset ();
  Inject.disarm ();
  let config = { System.default_config with seed; main_memory_mb = 2 } in
  let sys = System.create ~config () in
  let store = ref None in
  let backing =
    if not tiered then None
    else begin
      let link =
        Usnet.Link.create ~name:"bench0"
          ~params:Usnet.Net_params.fast_ethernet (System.sim sys)
      in
      let client =
        match
          Usnet.Link.admit link ~name:"bench.tier" ~period:(Time.ms 20)
            ~slice:(Time.ms 5) ~extra:true ~laxity:(Time.of_ms_float 2.0) ()
        with
        | Ok c -> c
        | Error e -> failwith ("remote: " ^ Usnet.Link.admit_error_message e)
      in
      let remote = Tier.Remote_node.create ~capacity_pages:128 () in
      Some
        (Harness.backing ~experiment:"remote" "tiered:cache-pages=24"
           [ Tier.Store.Tiered
               { tc_link = link; tc_client = client; tc_remote = remote;
                 tc_on_store = (fun s -> store := Some s) } ])
    end
  in
  let name = "bench" in
  let app = start_app sys ~name ~pattern ?backing () in
  System.run ~until:duration sys;
  let mean, p95 = fault_hist name in
  let stats =
    match !store with Some s -> Tier.Store.stats s | None -> zero_stats
  in
  { bc_pattern = pat;
    bc_tiered = tiered;
    bc_mbit = Workload.Paging_app.sustained_mbit app;
    bc_accesses = Workload.Paging_app.measured_accesses app;
    bc_fault_mean_us = mean;
    bc_fault_p95_us = p95;
    bc_cache_hits = stats.Tier.Store.cache_hits;
    bc_remote_hits = stats.Tier.Store.remote_hits;
    bc_remote_misses = stats.Tier.Store.remote_misses }

let bench ?(seed = 42) ?(duration = Time.sec 30) () =
  let cells =
    List.concat_map
      (fun (pat, pattern) ->
        [ bench_cell ~seed ~duration ~pat ~pattern ~tiered:false;
          bench_cell ~seed ~duration ~pat ~pattern ~tiered:true ])
      patterns
  in
  let find p tiered =
    List.find (fun c -> c.bc_pattern = p && c.bc_tiered = tiered) cells
  in
  let hot_disk = find "hot" false and hot_tier = find "hot" true in
  let speedup =
    if
      Float.is_nan hot_disk.bc_fault_mean_us
      || Float.is_nan hot_tier.bc_fault_mean_us
      || hot_tier.bc_fault_mean_us <= 0.
    then nan
    else hot_disk.bc_fault_mean_us /. hot_tier.bc_fault_mean_us
  in
  { b_seed = seed;
    b_duration = duration;
    b_cells = cells;
    b_hot_speedup = speedup;
    b_hot_tiered_beats_disk = (not (Float.is_nan speedup)) && speedup > 1. }

let bench_print r =
  Report.heading "Remote paging benchmark: tiered vs disk-only";
  Printf.printf "seed %d, %.0f s per cell, fault-free\n\n" r.b_seed
    (Time.to_sec r.b_duration);
  Report.table
    ~header:
      [ "pattern"; "backing"; "Mbit/s"; "accesses"; "fault us"; "p95 us";
        "cache/remote/disk" ]
    (List.map
       (fun c ->
         [ c.bc_pattern; (if c.bc_tiered then "tier" else "disk");
           mbit_s c.bc_mbit; string_of_int c.bc_accesses;
           us c.bc_fault_mean_us; us c.bc_fault_p95_us;
           Printf.sprintf "%d/%d/%d" c.bc_cache_hits c.bc_remote_hits
             c.bc_remote_misses ])
       r.b_cells);
  print_newline ();
  Printf.printf "hotspot fault-latency speedup (disk/tier): %s — tiered %s\n"
    (if Float.is_nan r.b_hot_speedup then "-"
     else Printf.sprintf "%.2fx" r.b_hot_speedup)
    (if r.b_hot_tiered_beats_disk then "beats disk-only"
     else "does NOT beat disk-only")

let bench_to_json r =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Buffer.add_string b (Printf.sprintf "  \"seed\": %d,\n" r.b_seed);
  Buffer.add_string b
    (Printf.sprintf "  \"duration_s\": %.0f,\n" (Time.to_sec r.b_duration));
  let cell c =
    Printf.sprintf
      "{\"pattern\": %S, \"tiered\": %b, \"mbit_s\": %s, \"accesses\": %d, \
       \"fault_mean_us\": %s, \"fault_p95_us\": %s, \"cache_hits\": %d, \
       \"remote_hits\": %d, \"remote_misses\": %d}"
      c.bc_pattern c.bc_tiered
      (if Float.is_nan c.bc_mbit then "null"
       else Printf.sprintf "%.3f" c.bc_mbit)
      c.bc_accesses
      (if Float.is_nan c.bc_fault_mean_us then "null"
       else Printf.sprintf "%.1f" c.bc_fault_mean_us)
      (if Float.is_nan c.bc_fault_p95_us then "null"
       else Printf.sprintf "%.1f" c.bc_fault_p95_us)
      c.bc_cache_hits c.bc_remote_hits c.bc_remote_misses
  in
  Buffer.add_string b
    (Printf.sprintf "  \"cells\": [%s],\n"
       (String.concat ", " (List.map cell r.b_cells)));
  Buffer.add_string b
    (Printf.sprintf "  \"hot_speedup\": %s,\n"
       (if Float.is_nan r.b_hot_speedup then "null"
        else Printf.sprintf "%.3f" r.b_hot_speedup));
  Buffer.add_string b
    (Printf.sprintf "  \"hot_tiered_beats_disk\": %b\n"
       r.b_hot_tiered_beats_disk);
  Buffer.add_string b "}";
  Buffer.contents b
