(** The tenancy experiment: a copy-on-write fleet over stacked pagers.

    Boots one machine, warms a template domain's paged image, freezes
    it into the share registry (then kills the template — shared
    frames must survive), and forks (by default) 32 CoW tenants over
    it. Every tenant also attaches a shared read-only "text" segment,
    pages through its own [Sd_paged] stack with the compressed-RAM
    tier ([Share.Sd_zram] over one shared zpool) in front of its
    swapfile, and the zpool's budget is squeezed to zero periodically
    by an {!Inject.zpool_pressure} plan. Half the fleet is killed at
    T/2. Two ordinary self-paging bystanders run throughout.

    The run then asserts the sharing story end to end:

    - exactly one resident copy per shared page, with per-domain
      fault/hit attribution;
    - the reference books balance {e through the kills}: registry
      installs − frees = live frames, grants − breaks − detaches =
      live refs = Σ RamTab refs (nothing leaked, nothing double
      freed), and the frames allocator and RamTab agree
      frame-for-frame;
    - the bystanders log {e zero} QoS violations whatever the fleet
      does;
    - a same-seed rerun is byte-identical.

    [~share:false] freezes an untouched template (every tenant pages
    privately) and [~zram:false] removes the compressed tier — the
    control arm for [bench share]. *)

open Engine

type result = {
  seed : int;
  tenants : int;
  killed : int;
  duration : Time.span;
  share : bool;
  zram : bool;
  (* sharing *)
  template_pages : int;
  template_frozen : int;  (** frames the freeze moved to the registry *)
  cow_shared_faults : int;
  cow_breaks : int;
  break_mean_us : float;
  break_p95_us : float;
  seg_fills : int;
  seg_hits : int;
  seg_resident : int;
  reg_books : Share.Registry.books;
  reg_balanced : bool;
  refs_leaked : int;  (** RamTab refs not accounted to the registry *)
  (* residency *)
  resident_pages : int;  (** pages resident across live tenants *)
  tenant_frames : int;  (** frames live tenants hold *)
  shared_frames : int;  (** registry frames backing the shared pages *)
  frames_per_content : float;  (** resident pages per frame consumed *)
  (* compressed tier *)
  zram_hits : int;
  zram_misses : int;
  zram_hit_mean_us : float;  (** page-in cost when the pool hits *)
  zram_miss_mean_us : float;  (** page-in cost when the disk serves *)
  zpool_stats : Share.Zpool.stats option;
  zpool_frames : int;
  zpool_bursts : int;
  (* fault service *)
  fault_count : int;
  fault_mean_us : float;
  fault_p95_us : float;
  (* system books *)
  frames_total : int;
  frames_free : int;
  frames_held : int;
  frames_owned : int;
  books_balanced : bool;
  bystander_violations : int;
  violations : int;
  inject_accounted : bool;
  audit : Obs.Qos_audit.summary;
}

val run :
  ?seed:int -> ?tenants:int -> ?duration:Time.span -> ?share:bool ->
  ?zram:bool -> unit -> result
(** Defaults: seed 42, 32 tenants, 40 s, sharing and the compressed
    tier both on. Raises [Invalid_argument] below 2 tenants. *)

val ok : result -> bool
(** The experiment verdict (books, bystanders, kills, and — when the
    corresponding arm is on — sharing and compressed-tier engagement). *)

val print : result -> unit
val to_json : result -> string
