open Engine

let sec s = Time.sec s

(* --- CLI-independent file output ------------------------------------- *)

let write_file path contents =
  match open_out path with
  | exception Sys_error msg ->
    Printf.eprintf "nemesis-sim: cannot write %s\n" msg;
    exit 1
  | oc ->
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        output_string oc contents;
        output_char oc '\n');
    Printf.printf "wrote %s\n" path

let write_csv path rows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc "series,seconds,mbit_per_s\n";
      List.iter
        (fun (series, t, v) -> Printf.fprintf oc "%s,%.3f,%.6f\n" series t v)
        rows);
  Printf.printf "wrote %s\n" path

let paging_csv (r : Paging_fig.result) =
  List.concat_map
    (fun (a : Paging_fig.app_report) ->
      List.map
        (fun (t, v) -> (a.Paging_fig.app_name, Time.to_sec t, v))
        a.Paging_fig.series)
    r.Paging_fig.apps

(* --- parameter values ------------------------------------------------ *)

type value =
  | Bool of bool
  | I of int
  | F of float
  | S of string option
  | L of string list

type ctx = (string * value) list

let geti ctx name ~default =
  match List.assoc_opt name ctx with Some (I i) -> i | _ -> default

let getf ctx name ~default =
  match List.assoc_opt name ctx with Some (F f) -> f | _ -> default

let getb ctx name =
  match List.assoc_opt name ctx with Some (Bool b) -> b | _ -> false

let gets ctx name =
  match List.assoc_opt name ctx with Some (S s) -> s | _ -> None

let getl ctx name ~default =
  match List.assoc_opt name ctx with Some (L l) -> l | _ -> default

let duration ctx ~default = sec (geti ctx "duration" ~default)

(* --- the experiment axis --------------------------------------------- *)

type entry = { e_modules : string list; e_run : ctx -> bool }

let axis : entry Registry.axis =
  Registry.axis ~name:"experiment"
    ~doc:
      "nemesis-sim subcommands: each entry's manifest declares its CLI \
       parameters and its run function returns the verdict"

let resolve name = Registry.resolve axis name

(* --- the ablation axis ----------------------------------------------- *)

(* The per-name ablation dispatch used to be a closed match in the CLI
   with a bare "unknown ablation" print; names now resolve here, so an
   out-of-tree ablation is a registration and a typo gets the
   did-you-mean treatment. Each value takes the requested duration in
   seconds and applies its own historical floor/ceiling. *)
let ablation_axis : (int -> unit) Registry.axis =
  Registry.axis ~name:"ablation"
    ~doc:"design-choice ablations the ablate subcommand can run by name"

let () =
  let reg name doc run =
    Registry.register_exn ablation_axis
      (Registry.manifest ~name ~doc ())
      (fun a ->
        if a.Registry.Spec.args = [] && a.Registry.Spec.params = [] then Ok run
        else Error (Printf.sprintf "%s takes no parameter" name))
  in
  reg "laxity" "the short-block problem: USD laxity on vs off" (fun d ->
      Ablations.print_laxity (Ablations.run_laxity ~duration:(sec d) ());
      Ablations.print_laxity_sweep
        (Ablations.run_laxity_sweep ~duration:(sec (min d 120)) ()));
  reg "rollover" "slack rollover accounting on vs off" (fun d ->
      Ablations.print_rollover (Ablations.run_rollover ~duration:(sec d) ()));
  reg "pt" "linear vs guarded page tables" (fun _ ->
      Ablations.print_pt (Ablations.run_pt ()));
  reg "slack" "slack-time distribution policies" (fun d ->
      Ablations.print_slack (Ablations.run_slack ~duration:(sec d) ()));
  reg "stream" "stream read-ahead on vs off" (fun d ->
      Ablations.print_stream
        (Ablations.run_stream ~duration:(sec (max d 170)) ()));
  reg "revoke" "frame revocation protocol variants" (fun _ ->
      Ablations.print_revoke (Ablations.run_revoke ()))

let ablation_names = [ "laxity"; "rollover"; "pt"; "slack"; "stream"; "revoke" ]

let run_ablation d name =
  match Registry.resolve ablation_axis name with
  | Ok run -> run d
  | Error e -> Printf.eprintf "%s\n" (Registry.error_message e)

(* --- shared parameter descriptors ------------------------------------ *)

let p_duration default =
  { Registry.p_name = "duration";
    p_doc = "Simulated duration in seconds.";
    p_kind = Registry.Int default }

let p_seed =
  { Registry.p_name = "seed";
    p_doc = "Simulation and fault-injection seed.";
    p_kind = Registry.Int 42 }

let p_file name doc =
  { Registry.p_name = name; p_doc = doc; p_kind = Registry.String None }

let p_json doc = p_file "json" doc

(* --- the built-in experiments ---------------------------------------- *)

(* A verdict-checked experiment: print, optionally dump JSON, and
   return the acceptance verdict (the CLI exits 1 on [false]). *)
let verdict ctx ~print ~to_json ~ok r =
  print r;
  Option.iter (fun path -> write_file path (to_json r)) (gets ctx "json");
  ok r

let run_fig ?mode ~d ctx =
  let r = Paging_fig.run ?mode ~duration:(duration ctx ~default:d) () in
  Paging_fig.print r;
  Paging_fig.print_series r;
  Paging_fig.print_trace r;
  Option.iter (fun path -> write_csv path (paging_csv r)) (gets ctx "csv");
  true

let () =
  let reg name doc ?(params = []) ~modules e_run =
    Registry.register_exn axis
      (Registry.manifest ~name ~doc ~params ())
      (fun a ->
        if a.Registry.Spec.args = [] && a.Registry.Spec.params = [] then
          Ok { e_modules = modules; e_run }
        else Error (Printf.sprintf "%s takes no parameter" name))
  in
  let p_csv = p_file "csv" "Also write the bandwidth series as CSV to FILE." in
  reg "table1" "Comparative micro-benchmarks (Table 1)" ~modules:[ "table1" ]
    (fun _ ->
      Table1.print (Table1.run ());
      true);
  reg "fig7" "Paging in under disk guarantees (Figure 7)"
    ~params:[ p_duration 240; p_csv ]
    ~modules:[ "paging_fig" ]
    (run_fig ~d:240);
  reg "fig8" "Paging out under disk guarantees (Figure 8)"
    ~params:[ p_duration 240; p_csv ]
    ~modules:[ "paging_fig" ]
    (run_fig ~mode:Workload.Paging_app.Paging_out ~d:240);
  reg "fig9" "File-system isolation (Figure 9)"
    ~params:[ p_duration 120; p_csv ]
    ~modules:[ "fig9" ]
    (fun ctx ->
      let r = Fig9.run ~duration:(duration ctx ~default:120) () in
      Fig9.print r;
      Fig9.print_series r;
      Option.iter
        (fun path ->
          let rows =
            List.map
              (fun (t, v) -> ("fs_alone", Time.to_sec t, v))
              r.Fig9.alone_series
            @ List.map
                (fun (t, v) -> ("fs_contended", Time.to_sec t, v))
                r.Fig9.contended_series
          in
          write_csv path rows)
        (gets ctx "csv");
      true);
  reg "crosstalk" "External pager vs self-paging (Figure 2, quantified)"
    ~params:[ p_duration 180 ]
    ~modules:[ "crosstalk" ]
    (fun ctx ->
      Crosstalk.print (Crosstalk.run ~duration:(duration ctx ~default:180) ());
      true);
  reg "netiso" "Network-link guarantees and cross-resource crosstalk"
    ~params:[ p_duration 60 ]
    ~modules:[ "net_iso" ]
    (fun ctx ->
      let d = geti ctx "duration" ~default:60 in
      Net_iso.print_shares (Net_iso.run_shares ~duration:(sec (min d 30)) ());
      Net_iso.print_kernel_crosstalk
        (Net_iso.run_kernel_crosstalk ~duration:(sec d) ());
      true);
  reg "policy-compare"
    "Paging figure per replacement/read-ahead/write-behind policy (paper \
     section 5: per-domain policy choice)"
    ~params:
      [ p_duration 60;
        p_json "Also write the comparison matrix as JSON to FILE.";
        { Registry.p_name = "policies";
          p_doc =
            "Comma-separated policy specs to compare (e.g. \
             fifo,fifo+ra8,clock,lru,wsclock:32,fifo+wb8); default: the \
             built-in presets.";
          p_kind = Registry.String None } ]
    ~modules:[ "policy_compare" ]
    (fun ctx ->
      let policies =
        Option.map
          (fun s ->
            List.map
              (fun spec ->
                match Policy.Spec.of_string spec with
                | Ok p -> p
                | Error e ->
                  Printf.eprintf "nemesis-sim: %s\n" e;
                  exit 2)
              (String.split_on_char ',' s))
          (gets ctx "policies")
      in
      let r =
        Policy_compare.run ~duration:(duration ctx ~default:60) ?policies ()
      in
      Policy_compare.print r;
      Option.iter
        (fun path -> write_file path (Policy_compare.to_json r))
        (gets ctx "json");
      true);
  reg "ablate" "Design-choice ablations (DESIGN.md)"
    ~params:
      [ p_duration 120;
        { Registry.p_name = "names";
          p_doc =
            "Which ablations to run (laxity|rollover|pt|slack|revoke); \
             default all.";
          p_kind = Registry.Names ablation_names } ]
    ~modules:[ "ablations" ]
    (fun ctx ->
      let d = geti ctx "duration" ~default:120 in
      List.iter (run_ablation d) (getl ctx "names" ~default:ablation_names);
      true);
  reg "chaos"
    "QoS firewalling under injected faults: bad bloks, media errors, stalls, \
     dropped notifications and revocation storms against one victim, with \
     two clean domains as the control group"
    ~params:
      [ p_duration 30; p_seed;
        p_json "Also write the chaos verdict as JSON to FILE." ]
    ~modules:[ "chaos" ]
    (fun ctx ->
      verdict ctx ~print:Chaos.print ~to_json:Chaos.to_json ~ok:Chaos.ok
        (Chaos.run
           ~seed:(geti ctx "seed" ~default:42)
           ~duration:(duration ctx ~default:30) ()));
  reg "crash-recover"
    "Crash consistency and restart: tear the victim's writes at seeded \
     points (data extent and intent journal), remount and replay the \
     journal, respawn the domain and restore its committed pages — with two \
     clean domains as the control group"
    ~params:
      [ p_seed;
        { Registry.p_name = "rounds";
          p_doc = "Crash/remount/restart rounds to run.";
          p_kind = Registry.Int 4 };
        p_json "Also write the recovery verdict as JSON to FILE." ]
    ~modules:[ "crash_recover" ]
    (fun ctx ->
      verdict ctx ~print:Crash_recover.print ~to_json:Crash_recover.to_json
        ~ok:Crash_recover.ok
        (Crash_recover.run
           ~seed:(geti ctx "seed" ~default:42)
           ~rounds:(geti ctx "rounds" ~default:4)
           ()));
  reg "remote"
    "Disaggregated memory: three tiered domains page through a \
     RAM-cache/remote-memory/disk backing store over a shared guaranteed \
     link while three disk-only bystanders run beside them; the second half \
     drops and delays packets on that link and the verdict demands zero \
     bystander violations, balanced tier loss books and a byte-identical \
     same-seed rerun"
    ~params:
      [ p_duration 30; p_seed;
        p_json "Also write the remote-paging verdict as JSON to FILE." ]
    ~modules:[ "remote_page" ]
    (fun ctx ->
      verdict ctx ~print:Remote_page.print ~to_json:Remote_page.to_json
        ~ok:Remote_page.ok
        (Remote_page.run
           ~seed:(geti ctx "seed" ~default:42)
           ~duration:(duration ctx ~default:30) ()));
  reg "failover"
    "Replicated remote memory under node loss: three tiered domains page \
     through a 4-node fleet (2 replicas per page, rendezvous placement) \
     while three disk-only bystanders run beside them; mid-run one node is \
     wiped and another partitioned, and the verdict demands zero committed \
     pages lost, zero bystander violations, balanced fleet books, a \
     re-replicated wipe victim, a probed-back partition victim and a \
     byte-identical same-seed rerun"
    ~params:
      [ p_duration 30; p_seed;
        p_json "Also write the failover verdict as JSON to FILE." ]
    ~modules:[ "failover" ]
    (fun ctx ->
      verdict ctx ~print:Failover.print ~to_json:Failover.to_json
        ~ok:Failover.ok
        (Failover.run
           ~seed:(geti ctx "seed" ~default:42)
           ~duration:(duration ctx ~default:30) ()));
  reg "erasure"
    "Erasure-coded remote memory under double node loss: tiered domains \
     page through a six-node fleet striped k = 4 data + m = 2 parity shards \
     per page, run side by side with the 2-replica baseline; two nodes are \
     wiped mid-run, one node serves corrupt shards and a standby joins the \
     ring. The verdict demands zero committed pages lost, degraded reads \
     served from remote memory at least 50x faster than the disk floor, at \
     most 1.55x storage overhead, balanced shard books, honoured membership \
     change, clean bystanders and a byte-identical same-seed rerun"
    ~params:
      [ p_duration 30; p_seed;
        p_json "Also write the erasure verdict as JSON to FILE." ]
    ~modules:[ "erasure" ]
    (fun ctx ->
      verdict ctx ~print:Erasure.print ~to_json:Erasure.to_json ~ok:Erasure.ok
        (Erasure.run
           ~seed:(geti ctx "seed" ~default:42)
           ~duration:(duration ctx ~default:30) ()));
  reg "scale"
    "Many-domain scale-out: admit 128 self-paging domains under tight CPU, \
     disk and memory admission control, refuse the 129th with a typed \
     overcommit error, and assert zero QoS violations and balanced frame \
     books"
    ~params:
      [ p_duration 60; p_seed;
        { Registry.p_name = "domains";
          p_doc = "Number of self-paging domains to admit.";
          p_kind = Registry.Int 128 };
        p_json "Also write the scale verdict as JSON to FILE." ]
    ~modules:[ "scale" ]
    (fun ctx ->
      verdict ctx ~print:Scale.print ~to_json:Scale.to_json ~ok:Scale.ok
        (Scale.run
           ~seed:(geti ctx "seed" ~default:42)
           ~domains:(geti ctx "domains" ~default:128)
           ~duration:(duration ctx ~default:60) ()));
  reg "tenancy"
    "Multi-tenancy over stacked pagers: freeze a template image, fork 32 \
     copy-on-write tenants over it (swap traffic through the \
     compressed-RAM tier), share a read-only text segment, kill half the \
     fleet mid-run, and assert one resident copy per shared page, balanced \
     reference books and untouched bystander QoS"
    ~params:
      [ p_duration 40; p_seed;
        { Registry.p_name = "tenants";
          p_doc = "Number of CoW tenants to fork from the template.";
          p_kind = Registry.Int 32 };
        { Registry.p_name = "no-share";
          p_doc = "Control arm: fork the fleet without CoW sharing.";
          p_kind = Registry.Flag };
        { Registry.p_name = "no-zram";
          p_doc = "Page tenants straight to disk (no compressed-RAM tier).";
          p_kind = Registry.Flag };
        p_json "Also write the tenancy verdict as JSON to FILE." ]
    ~modules:[ "tenancy" ]
    (fun ctx ->
      verdict ctx ~print:Tenancy.print ~to_json:Tenancy.to_json ~ok:Tenancy.ok
        (Tenancy.run
           ~seed:(geti ctx "seed" ~default:42)
           ~tenants:(geti ctx "tenants" ~default:32)
           ~duration:(duration ctx ~default:40)
           ~share:(not (getb ctx "no-share"))
           ~zram:(not (getb ctx "no-zram"))
           ()));
  reg "all" "Run every table, figure and ablation"
    ~params:[ p_duration 240 ]
    ~modules:[ "report" ]
    (fun ctx ->
      let d = geti ctx "duration" ~default:240 in
      Table1.print (Table1.run ());
      let r7 = Paging_fig.run ~duration:(sec d) () in
      Paging_fig.print r7;
      Paging_fig.print_series r7;
      Paging_fig.print_trace r7;
      let r8 =
        Paging_fig.run ~mode:Workload.Paging_app.Paging_out ~duration:(sec d)
          ()
      in
      Paging_fig.print r8;
      Paging_fig.print_series r8;
      Paging_fig.print_trace r8;
      Fig9.print (Fig9.run ~duration:(sec (min d 120)) ());
      Crosstalk.print (Crosstalk.run ~duration:(sec (min d 180)) ());
      Net_iso.print_shares (Net_iso.run_shares ());
      Net_iso.print_kernel_crosstalk
        (Net_iso.run_kernel_crosstalk ~duration:(sec (min d 60)) ());
      List.iter (run_ablation (min d 120)) ablation_names;
      Chaos.print (Chaos.run ~duration:(sec (min d 30)) ());
      Crash_recover.print (Crash_recover.run ());
      Remote_page.print (Remote_page.run ~duration:(sec (min d 30)) ());
      Failover.print (Failover.run ~duration:(sec (min d 30)) ());
      Tenancy.print (Tenancy.run ~duration:(sec (min d 40)) ());
      true)

(* --- lint ------------------------------------------------------------ *)

let covered_modules () =
  Registry.names axis
  |> List.concat_map (fun n ->
         match Registry.resolve axis n with
         | Ok e -> e.e_modules
         | Error _ -> [])
  |> List.sort_uniq compare

(* Infrastructure modules no experiment entry needs to claim. *)
let lint_infra = [ "catalog"; "harness"; "report" ]

let lint ~docs ~experiments_dir =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  (* Every registered name on every axis must appear in the docs. *)
  let doc_text =
    String.concat "\n"
      (List.map
         (fun path ->
           match open_in path with
           | exception Sys_error msg ->
             err "lint-registry: cannot read %s" msg;
             ""
           | ic ->
             Fun.protect
               ~finally:(fun () -> close_in ic)
               (fun () -> really_input_string ic (in_channel_length ic)))
         docs)
  in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i =
      i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
    in
    nn > 0 && go 0
  in
  List.iter
    (fun (axis_name, _) ->
      match Registry.axis_manifests axis_name with
      | None -> ()
      | Some ms ->
        List.iter
          (fun (m : Registry.manifest) ->
            if not (contains doc_text m.Registry.m_name) then
              err "lint-registry: %s %S is not mentioned in %s" axis_name
                m.Registry.m_name
                (String.concat ", " docs))
          ms)
    (Registry.axes ());
  (* Every experiment module must be claimed by a catalog entry. *)
  let covered = covered_modules () in
  (match Sys.readdir experiments_dir with
  | exception Sys_error msg -> err "lint-registry: cannot list %s" msg
  | files ->
    Array.iter
      (fun f ->
        if Filename.check_suffix f ".ml" then begin
          let m = Filename.chop_suffix f ".ml" in
          if
            (not (List.mem m lint_infra)) && not (List.mem m covered)
          then
            err
              "lint-registry: lib/experiments/%s is not claimed by any \
               registered experiment"
              f
        end)
      files);
  List.rev !errors
