(** The experiment catalog: every nemesis-sim subcommand as a registry
    entry, so the CLI is a generic manifest-driven dispatcher.

    Each entry's manifest declares the subcommand's parameters ({!type:Registry.param_kind})
    and documentation; the CLI builds its cmdliner term from those
    descriptors and hands the parsed values back as a {!ctx}. *)

(** A parsed CLI parameter value, keyed by parameter name in a {!ctx}. *)
type value =
  | Bool of bool
  | I of int
  | F of float
  | S of string option
  | L of string list

type ctx = (string * value) list

val geti : ctx -> string -> default:int -> int
val getf : ctx -> string -> default:float -> float
val getb : ctx -> string -> bool
val gets : ctx -> string -> string option
val getl : ctx -> string -> default:string list -> string list

type entry = {
  e_modules : string list;
      (** lib/experiments modules this entry exercises (for lint). *)
  e_run : ctx -> bool;  (** Run it; [false] means the verdict failed. *)
}

val axis : entry Registry.axis
(** The "experiment" axis; every subcommand of nemesis-sim lives here. *)

val resolve : string -> (entry, Registry.error) result

val ablation_axis : (int -> unit) Registry.axis
(** The "ablation" axis; each value takes the requested duration in
    seconds and applies its own historical floor/ceiling. *)

val ablation_names : string list
(** The built-in ablations, in their historical run order. *)

val run_ablation : int -> string -> unit
(** [run_ablation d name] resolves [name] on {!ablation_axis} and runs
    it for [d] seconds; unknown names print a did-you-mean message to
    stderr and continue (matching the legacy ablate behaviour). *)

val write_file : string -> string -> unit
(** Write [contents] (plus a trailing newline) to a path, printing
    "wrote PATH"; prints to stderr and exits 1 if the path is
    unwritable. *)

val write_csv : string -> (string * float * float) list -> unit
(** Write (series, seconds, mbit/s) rows under the standard header. *)

val paging_csv : Paging_fig.result -> (string * float * float) list

val lint : docs:string list -> experiments_dir:string -> string list
(** [lint ~docs ~experiments_dir] returns human-readable complaints:
    registered names (on any axis) not mentioned in any of the [docs]
    files, and lib/experiments modules not claimed by any catalog
    entry's [e_modules]. Empty list means clean. *)
