open Engine
open Core
open Workload

type result = {
  alone_mbit : float;
  contended_mbit : float;
  alone_series : (Time.t * float) list;
  contended_series : (Time.t * float) list;
  pager10_mbit : float;
  pager20_mbit : float;
  isolation_error : float;
  alone_audit : Obs.Qos_audit.summary option;
  contended_audit : Obs.Qos_audit.summary option;
}

let fs_qos () = Usbs.Qos.make ~period:(Time.ms 250) ~slice:(Time.ms 125) ()

let run_one ~duration ~fs_depth ~with_pagers =
  if !Obs.enabled then Obs.reset ();
  let sys = Harness.fresh_system () in
  let fs =
    match Fs_client.start sys ~name:"fs" ~qos:(fs_qos ()) ~depth:fs_depth () with
    | Ok f -> f
    (* Setup failwiths: the figure's fixed fleet admits by
       construction; a refusal is an experiment bug. *)
    | Error e -> failwith ("fs client: " ^ e)
  in
  let pagers =
    if with_pagers then
      List.map
        (fun slice_ms ->
          let name = Printf.sprintf "pager%d" (slice_ms * 100 / 250) in
          let qos =
            Usbs.Qos.make ~period:(Time.ms 250) ~slice:(Time.ms slice_ms) ()
          in
          match
            Paging_app.start sys ~name ~mode:Paging_app.Paging_in ~qos ()
          with
          | Ok a -> a
          | Error e -> failwith (name ^ ": " ^ e))
        [ 25; 50 ]
    else []
  in
  System.run sys ~until:duration;
  let sustained =
    Sampler.sustained (Fs_client.sampler fs) ~after:(Time.sec 10) ()
  in
  let series = Stats.Series.to_list (Sampler.series (Fs_client.sampler fs)) in
  (* The pagers generate contention from the moment they start; report
     their gross paging rate whether or not they are past warm-up. *)
  let pager_rates =
    List.map
      (fun a ->
        float_of_int (Paging_app.bytes_processed a)
        *. 8.0 /. Time.to_sec duration /. 1e6)
      pagers
  in
  let audit =
    if !Obs.enabled then Some (Obs.Qos_audit.summarize ()) else None
  in
  (sustained, series, pager_rates, audit)

let run ?(duration = Time.sec 120) ?(fs_depth = 16) () =
  let alone_mbit, alone_series, _, alone_audit =
    run_one ~duration ~fs_depth ~with_pagers:false
  in
  let contended_mbit, contended_series, pager_rates, contended_audit =
    run_one ~duration ~fs_depth ~with_pagers:true
  in
  let pager10_mbit, pager20_mbit =
    match pager_rates with
    | [ a; b ] -> (a, b)
    | _ -> (nan, nan)
  in
  { alone_mbit; contended_mbit; alone_series; contended_series;
    pager10_mbit; pager20_mbit;
    isolation_error = Float.abs (contended_mbit -. alone_mbit) /. alone_mbit;
    alone_audit; contended_audit }

let print_series r =
  Report.heading "Figure 9: file-system client bandwidth vs time";
  Report.chart ~unit_label:"seconds"
    [ ( "fs alone",
        List.map (fun (t, v) -> (Engine.Time.to_sec t, v)) r.alone_series );
      ( "fs + pagers",
        List.map (fun (t, v) -> (Engine.Time.to_sec t, v)) r.contended_series )
    ]

let print r =
  Report.heading "File-System Isolation (Figure 9)";
  Report.table
    ~header:[ "run"; "fs Mbit/s"; "pager10 Mbit/s"; "pager20 Mbit/s" ]
    [ [ "fs alone"; Report.f2 r.alone_mbit; "-"; "-" ];
      [ "fs + 2 pagers"; Report.f2 r.contended_mbit;
        Report.f2 r.pager10_mbit; Report.f2 r.pager20_mbit ] ];
  Printf.printf "\nisolation error: %.2f%% (paper: \"almost exactly the \
                 same\")\n"
    (r.isolation_error *. 100.0);
  Report.audit_section "fs alone: QoS audit" r.alone_audit;
  Report.audit_section "fs + 2 pagers: QoS audit" r.contended_audit
