(** Figure 9: file-system isolation.

    A file-system client with a 50% disk guarantee (125 ms per 250 ms)
    pipelines page-sized sequential reads from the file-system
    partition. It runs once alone and once alongside two paging
    applications with 10% and 20% guarantees. The paper's result: its
    sustained bandwidth is almost exactly the same in both runs. *)

type result = {
  alone_mbit : float;
  contended_mbit : float;
  alone_series : (Engine.Time.t * float) list;
  contended_series : (Engine.Time.t * float) list;
  pager10_mbit : float;
  pager20_mbit : float;
  isolation_error : float;
      (** |contended - alone| / alone — ~0 means perfect isolation *)
  alone_audit : Obs.Qos_audit.summary option;
      (** QoS-audit verdict per run; [None] when observability was off *)
  contended_audit : Obs.Qos_audit.summary option;
}

val run : ?duration:Engine.Time.span -> ?fs_depth:int -> unit -> result

val print : result -> unit
val print_series : result -> unit
