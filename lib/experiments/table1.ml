open Engine
open Hw
open Core

type row = {
  bench : string;
  osf1_us : float option;
  osf1_paper_us : float option;
  nemesis_us : float;
  nemesis_pdom_us : float option;
  nemesis_paper_us : float;
  nemesis_paper_pdom_us : float option;
}

let iterations = 200

(* A driver that backs pages from an explicit pool handed to it; used
   as scaffolding by several micro-benchmarks. *)
let pool_driver env pool =
  let map_from_pool (fault : Fault.t) =
    match !pool with
    | pfn :: rest ->
      pool := rest;
      Stretch_driver.map_page env fault.Fault.va ~pfn;
      Stretch_driver.Success
    | [] -> Stretch_driver.Failure "bench pool empty"
  in
  { Stretch_driver.name = "bench-pool";
    bind = (fun _ -> ());
    fast = map_from_pool;
    full = map_from_pool;
    relinquish = (fun ~want:_ -> 0);
    resident_pages = (fun () -> 0);
    free_frames = (fun () -> List.length !pool) }

(* --- dirty: examine a random PTE's dirty bit, user level. --- *)

(* Setup failwiths (here and in the other benches): a bench that
   cannot build its world has no number to report, so construction
   errors abort the run. Name resolution, by contrast, goes through
   the registry with typed errors. *)
let bench_dirty ~page_table () =
  let sys = Harness.fresh_system ~page_table () in
  let d = Harness.bench_domain sys ~name:"dirty" () in
  let stretch =
    match System.alloc_stretch d ~bytes:(100 * Addr.page_size) () with
    | Ok s -> s
    | Error e -> failwith e
  in
  (match System.bind_physical d ~prealloc:100 stretch with
  | Ok _ -> ()
  | Error e -> failwith (System.error_message e));
  let dom = d.System.dom in
  Harness.run_in_sim sys (fun () ->
      (* Touch every page (half with writes so some dirty bits differ). *)
      for i = 0 to 99 do
        Domains.access dom
          (Stretch.page_base stretch i)
          (if i mod 2 = 0 then `Write else `Read)
      done);
  let mmu = System.mmu sys in
  let cost = (System.config sys).System.cost in
  let rng = Rng.create ~seed:7 in
  let samples =
    List.init iterations (fun _ ->
        let i = Rng.int rng 100 in
        let vpn = Addr.vpn_of_vaddr (Stretch.page_base stretch i) in
        let pte = Mmu.lookup mmu ~vpn in
        ignore (Pte.dirty pte);
        Mmu.lookup_cost mmu ~vpn + cost.Cost.reg_op)
  in
  Harness.mean_span samples

(* --- (un)protect a range via the page tables or via a pdom. --- *)

let bench_prot ~page_table ~npages () =
  let sys = Harness.fresh_system ~page_table () in
  let d = Harness.bench_domain sys ~name:"prot" () in
  let stretch =
    match System.alloc_stretch d ~bytes:(npages * Addr.page_size) () with
    | Ok s -> s
    | Error e -> failwith e
  in
  let pdom = Domains.pdom d.System.dom in
  let translation = System.translation sys in
  let protected_ = Rights.{ r = false; w = false; x = false; m = true } in
  let spans_pt =
    List.init iterations (fun i ->
        let rights = if i mod 2 = 0 then protected_ else Rights.rw_meta in
        match Stretch.set_rights_pt stretch ~caller:pdom translation rights with
        | Ok span -> span
        | Error e -> failwith (Format.asprintf "%a" Translation.pp_error e))
  in
  let spans_pdom =
    List.init iterations (fun i ->
        let rights = if i mod 2 = 0 then protected_ else Rights.rw_meta in
        match Stretch.set_rights_pdom stretch ~caller:pdom ~target:pdom rights with
        | Ok span -> span
        | Error e -> failwith (Format.asprintf "%a" Translation.pp_error e))
  in
  (Harness.mean_span spans_pt, Harness.mean_span spans_pdom)

(* --- trap: user-level page-fault round trip. --- *)

let bench_trap ~page_table () =
  let sys = Harness.fresh_system ~page_table () in
  let d = Harness.bench_domain sys ~name:"trap" () in
  let stretch =
    match System.alloc_stretch d ~bytes:Addr.page_size () with
    | Ok s -> s
    | Error e -> failwith e
  in
  let pool = ref [] in
  Mm_entry.bind d.System.mm stretch (pool_driver d.System.env pool);
  let dom = d.System.dom in
  let sim = System.sim sys in
  Harness.run_in_sim sys (fun () ->
      (match Frames.alloc (System.frames sys) d.System.frames_client with
      | Some pfn -> pool := [ pfn ]
      | None -> failwith "no frame");
      let va = Stretch.page_base stretch 0 in
      let samples = ref [] in
      for _ = 1 to iterations do
        let t0 = Sim.now sim in
        Domains.access dom va `Read;
        samples := Time.diff (Sim.now sim) t0 :: !samples;
        (* Reset: unmap and return the frame to the pool. *)
        let pte = Stretch_driver.unmap_page d.System.env va in
        pool := [ Pte.pfn pte ]
      done;
      Harness.mean_span !samples)

(* --- appel1: prot1 + trap + unprot, via protection domains. --- *)

let bench_appel1 ~page_table () =
  let sys = Harness.fresh_system ~page_table () in
  let d = Harness.bench_domain sys ~name:"appel1" () in
  let n = 100 in
  let stretches =
    Array.init n (fun _ ->
        match System.alloc_stretch d ~bytes:Addr.page_size () with
        | Ok s -> s
        | Error e -> failwith e)
  in
  let pdom = Domains.pdom d.System.dom in
  let by_sid = Hashtbl.create 64 in
  Array.iter (fun s -> Hashtbl.replace by_sid s.Stretch.sid s) stretches;
  let meta_only = Rights.{ r = false; w = false; x = false; m = true } in
  let last_unprotected = ref None in
  (* The paper: a standard stretch driver with the access-violation
     fault type overridden by a custom handler. *)
  let handler (fault : Fault.t) =
    match fault.Fault.kind with
    | Mmu.Access_violation ->
      let s = Hashtbl.find by_sid (Option.get fault.Fault.sid) in
      (match Stretch.set_rights_pdom s ~caller:pdom ~target:pdom Rights.rw_meta with
      | Ok span -> d.System.env.Stretch_driver.consume_cpu span
      | Error _ -> failwith "unprot failed");
      (match !last_unprotected with
      | Some prev when prev != s ->
        (match
           Stretch.set_rights_pdom prev ~caller:pdom ~target:pdom meta_only
         with
        | Ok span -> d.System.env.Stretch_driver.consume_cpu span
        | Error _ -> failwith "prot failed")
      | _ -> ());
      last_unprotected := Some s;
      Stretch_driver.Success
    | _ -> Stretch_driver.Failure "unexpected fault kind"
  in
  let driver =
    { Stretch_driver.name = "appel1";
      bind = (fun _ -> ());
      fast = handler;
      full = handler;
      relinquish = (fun ~want:_ -> 0);
      resident_pages = (fun () -> 0);
      free_frames = (fun () -> 0) }
  in
  Array.iter (fun s -> Mm_entry.bind d.System.mm s driver) stretches;
  let dom = d.System.dom in
  let sim = System.sim sys in
  Harness.run_in_sim sys (fun () ->
      (* Map every page once, then protect everything (keep meta). *)
      Array.iter
        (fun s ->
          (match Frames.alloc (System.frames sys) d.System.frames_client with
          | Some pfn -> Stretch_driver.map_page d.System.env s.Stretch.base ~pfn
          | None -> failwith "no frame");
          match
            Stretch.set_rights_pdom s ~caller:pdom ~target:pdom meta_only
          with
          | Ok _ -> ()
          | Error _ -> failwith "initial protect failed")
        stretches;
      let rng = Rng.create ~seed:11 in
      let samples = ref [] in
      for _ = 1 to iterations do
        let s = stretches.(Rng.int rng n) in
        let skip =
          match !last_unprotected with Some p -> p == s | None -> false
        in
        if not skip then begin
          let t0 = Sim.now sim in
          Domains.access dom s.Stretch.base `Read;
          samples := Time.diff (Sim.now sim) t0 :: !samples
        end
      done;
      Harness.mean_span !samples)

(* --- appel2: protN + trap + unprot (unmap/map variant). --- *)

let bench_appel2 ~page_table () =
  let sys = Harness.fresh_system ~page_table () in
  let d = Harness.bench_domain sys ~name:"appel2" () in
  let n = 100 in
  let stretch =
    match System.alloc_stretch d ~bytes:(n * Addr.page_size) () with
    | Ok s -> s
    | Error e -> failwith e
  in
  let pfns = Array.make n (-1) in
  let handler (fault : Fault.t) =
    match fault.Fault.kind with
    | Mmu.Page_fault ->
      let page = Stretch.page_index stretch fault.Fault.va in
      Stretch_driver.map_page d.System.env fault.Fault.va ~pfn:pfns.(page);
      Stretch_driver.Success
    | _ -> Stretch_driver.Failure "unexpected fault kind"
  in
  let driver =
    { Stretch_driver.name = "appel2";
      bind = (fun _ -> ());
      fast = handler;
      full = handler;
      relinquish = (fun ~want:_ -> 0);
      resident_pages = (fun () -> 0);
      free_frames = (fun () -> 0) }
  in
  Mm_entry.bind d.System.mm stretch driver;
  let dom = d.System.dom in
  let sim = System.sim sys in
  Harness.run_in_sim sys (fun () ->
      for i = 0 to n - 1 do
        match Frames.alloc (System.frames sys) d.System.frames_client with
        | Some pfn ->
          pfns.(i) <- pfn;
          Stretch_driver.map_page d.System.env (Stretch.page_base stretch i)
            ~pfn
        | None -> failwith "no frame"
      done;
      let rng = Rng.create ~seed:13 in
      let rounds = 5 in
      let total = ref 0 in
      for _ = 1 to rounds do
        let t0 = Sim.now sim in
        (* "Protect" all pages: the stretch-granularity protection model
           makes us unmap them instead (remembering the frames). *)
        for i = 0 to n - 1 do
          let pte =
            Stretch_driver.unmap_page d.System.env (Stretch.page_base stretch i)
          in
          pfns.(i) <- Pte.pfn pte
        done;
        (* Visit every page in random order. *)
        let order = Array.init n (fun i -> i) in
        for i = n - 1 downto 1 do
          let j = Rng.int rng (i + 1) in
          let tmp = order.(i) in
          order.(i) <- order.(j);
          order.(j) <- tmp
        done;
        Array.iter
          (fun i -> Domains.access dom (Stretch.page_base stretch i) `Read)
          order;
        total := !total + Time.diff (Sim.now sim) t0
      done;
      float_of_int !total /. float_of_int (rounds * n) /. 1e3)

let run ?(page_table = `Linear) () =
  let p = Baseline.Unix_vm.osf1 in
  let dirty_us = bench_dirty ~page_table () in
  let prot1_pt, prot1_pd = bench_prot ~page_table ~npages:1 () in
  let prot100_pt, prot100_pd = bench_prot ~page_table ~npages:100 () in
  let trap_us = bench_trap ~page_table () in
  let appel1_us = bench_appel1 ~page_table () in
  let appel2_us = bench_appel2 ~page_table () in
  let us span = float_of_int span /. 1e3 in
  [ { bench = "dirty";
      osf1_us = Option.map us (Baseline.Unix_vm.dirty p);
      osf1_paper_us = None;
      nemesis_us = dirty_us; nemesis_pdom_us = None;
      nemesis_paper_us = 0.15; nemesis_paper_pdom_us = None };
    { bench = "(un)prot1";
      osf1_us = Some (us (Baseline.Unix_vm.protect_pages p ~n:1 ~alternating:true));
      osf1_paper_us = Some 3.36;
      nemesis_us = prot1_pt; nemesis_pdom_us = Some prot1_pd;
      nemesis_paper_us = 0.42; nemesis_paper_pdom_us = Some 0.40 };
    { bench = "(un)prot100";
      osf1_us = Some (us (Baseline.Unix_vm.protect_pages p ~n:100 ~alternating:false));
      osf1_paper_us = Some 5.14;
      nemesis_us = prot100_pt; nemesis_pdom_us = Some prot100_pd;
      nemesis_paper_us = 10.78; nemesis_paper_pdom_us = Some 0.30 };
    { bench = "trap";
      osf1_us = Some (us (Baseline.Unix_vm.trap p));
      osf1_paper_us = Some 10.33;
      nemesis_us = trap_us; nemesis_pdom_us = None;
      nemesis_paper_us = 4.20; nemesis_paper_pdom_us = None };
    { bench = "appel1";
      osf1_us = Some (us (Baseline.Unix_vm.appel1 p));
      osf1_paper_us = Some 24.08;
      nemesis_us = appel1_us; nemesis_pdom_us = None;
      nemesis_paper_us = 5.33; nemesis_paper_pdom_us = None };
    { bench = "appel2";
      osf1_us = Some (us (Baseline.Unix_vm.appel2_per_fault p));
      osf1_paper_us = Some 19.12;
      nemesis_us = appel2_us; nemesis_pdom_us = None;
      nemesis_paper_us = 9.75; nemesis_paper_pdom_us = None } ]

let print rows =
  Report.heading
    "Table 1: comparative micro-benchmarks (microseconds; [..] = pdom variant)";
  Report.table
    ~header:
      [ "bench"; "OSF1(model)"; "OSF1(paper)"; "Nemesis(ours)";
        "Nemesis[pdom]"; "paper"; "paper[pdom]" ]
    (List.map
       (fun r ->
         [ r.bench;
           Report.fopt r.osf1_us;
           Report.fopt r.osf1_paper_us;
           Report.f2 r.nemesis_us;
           Report.fopt r.nemesis_pdom_us;
           Report.f2 r.nemesis_paper_us;
           Report.fopt r.nemesis_paper_pdom_us ])
       rows);
  print_newline ();
  print_endline
    "Shape checks: pdom protect is O(1) vs O(pages) page-table protect;";
  print_endline
    "Nemesis trap/appel paths beat the monolithic signal path by 2-4x."
