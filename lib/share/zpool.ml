open Engine
open Hw
open Core

let page_bytes = Addr.page_size

(* -- compression model ------------------------------------------------ *)

(* Run-length encoding: a sequence of (length, byte) pairs, runs capped
   at 255. Real enough for the round-trip property (decompress is the
   exact inverse) while keeping the size model a pure function of the
   page's content entropy: low-entropy pages (long runs) compress to a
   few dozen bytes, high-entropy pages blow past the page size and are
   declared incompressible. *)
let compress s =
  let n = String.length s in
  let b = Buffer.create 256 in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    let j = ref (!i + 1) in
    while !j < n && s.[!j] = c && !j - !i < 255 do incr j done;
    Buffer.add_char b (Char.chr (!j - !i));
    Buffer.add_char b c;
    i := !j
  done;
  Buffer.contents b

let decompress z =
  let n = String.length z in
  if n mod 2 <> 0 then invalid_arg "Zpool.decompress: truncated stream";
  let b = Buffer.create page_bytes in
  let i = ref 0 in
  while !i < n do
    let count = Char.code z.[!i] in
    let c = z.[!i + 1] in
    for _ = 1 to count do
      Buffer.add_char b c
    done;
    i := !i + 2
  done;
  Buffer.contents b

(* Deterministic page contents keyed on (key, version): the entropy
   class is a pure function of the key, so a given slot always
   compresses the same way, while the version makes each overwrite
   distinguishable (the round-trip test faults back the latest). *)
let synth ~key ~version =
  let cls = Hashtbl.hash key mod 4 in
  let state = ref (Hashtbl.hash (key, version, "zpool") lor 1) in
  let next () =
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    !state
  in
  let b = Bytes.make page_bytes '\000' in
  (match cls with
  | 0 -> () (* zero page: maximally compressible *)
  | 1 ->
    (* long runs: compresses to ~1% *)
    let i = ref 0 in
    while !i < page_bytes do
      let len = min 192 (page_bytes - !i) in
      Bytes.fill b !i len (Char.chr (next () land 0xff));
      i := !i + len
    done
  | 2 ->
    (* short runs: ~25% of the page *)
    let i = ref 0 in
    while !i < page_bytes do
      let len = min 8 (page_bytes - !i) in
      Bytes.fill b !i len (Char.chr (next () land 0xff));
      i := !i + len
    done
  | _ ->
    (* pseudo-random: incompressible under RLE *)
    for i = 0 to page_bytes - 1 do
      Bytes.set b i (Char.chr (next () land 0xff))
    done);
  Bytes.unsafe_to_string b

(* -- the pool --------------------------------------------------------- *)

type entry = { e_data : string; e_frame : int }

type frame_rec = {
  f_pfn : int;
  mutable f_used : int;
  mutable f_keys : string list;
}

type t = {
  frames : Frames.t;
  client : Frames.client;
  ramtab : Ramtab.t;
  mutable budget : int;
  entries : (string, entry) Hashtbl.t;
  (* Held frames oldest-first: shedding frees whole frames FIFO, which
     keeps eviction deterministic and cheap (no compaction across
     frames; entries inside a frame are assumed compacted). *)
  mutable held : frame_rec list;
  mutable stored : int;
  mutable incompressible : int;
  mutable overflow : int;
  mutable dropped : int;
  mutable shed_frames : int;
  mutable bursts : int;
  mutable burst_active : bool;
}

(* Only the frames whose compressed payload halves (or better) earn a
   zpool slot; storing near-incompressible pages would just displace
   two compressible ones. *)
let max_entry_bytes = page_bytes / 2

let frames_held t = List.length t.held
let budget t = t.budget
let entries t = Hashtbl.length t.entries
let bytes_used t = List.fold_left (fun a f -> a + f.f_used) 0 t.held

type stats = {
  z_stored : int;
  z_incompressible : int;
  z_overflow : int;
  z_dropped : int;
  z_shed_frames : int;
  z_bursts : int;
}

let stats t =
  { z_stored = t.stored; z_incompressible = t.incompressible;
    z_overflow = t.overflow; z_dropped = t.dropped;
    z_shed_frames = t.shed_frames; z_bursts = t.bursts }

let metric name = if !Obs.enabled then Obs.Metrics.inc ("zpool." ^ name)

let drop_frame_entries t fr =
  List.iter
    (fun k ->
      Hashtbl.remove t.entries k;
      t.dropped <- t.dropped + 1)
    fr.f_keys;
  fr.f_keys <- [];
  fr.f_used <- 0

(* Free the oldest frame back to the allocator, dropping its entries
   (their durable copy is below us: the zpool is write-through). *)
let shed_one t =
  match t.held with
  | [] -> false
  | fr :: rest ->
    t.held <- rest;
    drop_frame_entries t fr;
    Ramtab.set_state t.ramtab ~pfn:fr.f_pfn Ramtab.Unused;
    Frames.free t.frames t.client fr.f_pfn;
    t.shed_frames <- t.shed_frames + 1;
    metric "shed_frame";
    true

let shed_to_budget t =
  let freed = ref 0 in
  while List.length t.held > t.budget && shed_one t do
    incr freed
  done;
  !freed

let set_budget t n =
  t.budget <- max 0 n;
  shed_to_budget t

(* Revocation: make the top [k] stack frames unused WITHOUT returning
   them through [Frames.free] — the allocator's verify pass reclaims
   them itself. Every compressed entry is clean by construction
   (write-through), so shedding is synchronous and always meets the
   deadline. *)
let expose_for_revocation t ~k =
  let stack = Frames.frame_stack t.client in
  let n = ref 0 in
  while !n < k && t.held <> [] do
    (match t.held with
    | fr :: rest ->
      t.held <- rest;
      drop_frame_entries t fr;
      Ramtab.set_state t.ramtab ~pfn:fr.f_pfn Ramtab.Unused;
      Frame_stack.move_to_top stack fr.f_pfn;
      t.shed_frames <- t.shed_frames + 1;
      metric "revoked_frame"
    | [] -> ());
    incr n
  done

(* The budget-shrink gremlin (Inject.zpool_pressure): every period,
   shrink the budget by zp_shrink frames — shedding down to it — hold,
   then restore. Spawned only when a plan is armed at create time, so
   unconfigured runs schedule no extra events. *)
let spawn_pressure t sim zp =
  ignore
    (Proc.spawn ~name:"zpool.pressure" sim (fun () ->
         let rec loop () =
           Proc.sleep zp.Inject.zp_period;
           let saved = t.budget in
           let before = frames_held t in
           t.burst_active <- true;
           ignore (set_budget t (max 0 (saved - zp.Inject.zp_shrink)));
           let shed = before - frames_held t in
           t.bursts <- t.bursts + 1;
           Inject.note_zpool_burst ~shed;
           Proc.sleep zp.Inject.zp_hold;
           t.budget <- saved;
           t.burst_active <- false;
           loop ()
         in
         loop ()))

let create ~sim ~frames ~client ~ramtab ~budget () =
  if budget < 0 then invalid_arg "Zpool.create: negative budget";
  let t =
    { frames; client; ramtab; budget; entries = Hashtbl.create 256;
      held = []; stored = 0; incompressible = 0; overflow = 0; dropped = 0;
      shed_frames = 0; bursts = 0; burst_active = false }
  in
  Frames.set_revocation_handler client (fun ~k ~deadline:_ ->
      expose_for_revocation t ~k;
      Frames.revocation_ready frames client);
  (match Inject.zpool_pressure () with
  | Some zp when zp.Inject.zp_shrink > 0 -> spawn_pressure t sim zp
  | _ -> ());
  t

let drop t ~key =
  match Hashtbl.find_opt t.entries key with
  | None -> ()
  | Some e ->
    Hashtbl.remove t.entries key;
    (match List.find_opt (fun f -> f.f_pfn = e.e_frame) t.held with
    | None -> ()
    | Some fr ->
      fr.f_keys <- List.filter (fun k -> k <> key) fr.f_keys;
      fr.f_used <- fr.f_used - String.length e.e_data;
      if fr.f_keys = [] then begin
        (* Empty frame: return it rather than hold dead budget. *)
        t.held <- List.filter (fun f -> f != fr) t.held;
        Ramtab.set_state t.ramtab ~pfn:fr.f_pfn Ramtab.Unused;
        Frames.free t.frames t.client fr.f_pfn
      end)

(* First-fit over held frames, newest last; a miss grows the pool if
   the budget (and the allocator) allows. Zpool frames are [Nailed] so
   a transparent revocation pass cannot silently steal the compressed
   contents — revocation goes through [expose_for_revocation]. *)
let place t size =
  match List.find_opt (fun f -> f.f_used + size <= page_bytes) t.held with
  | Some fr -> Some fr
  | None ->
    if frames_held t >= t.budget then None
    else (
      match Frames.alloc t.frames t.client with
      | None -> None
      | Some pfn ->
        Ramtab.set_state t.ramtab ~pfn Ramtab.Nailed;
        let fr = { f_pfn = pfn; f_used = 0; f_keys = [] } in
        t.held <- t.held @ [ fr ];
        Some fr)

let put t ~key ~data =
  drop t ~key;
  let z = compress data in
  let size = String.length z in
  if size > max_entry_bytes then begin
    t.incompressible <- t.incompressible + 1;
    metric "incompressible";
    `Incompressible
  end
  else
    match place t size with
    | None ->
      t.overflow <- t.overflow + 1;
      metric "overflow";
      `No_space
    | Some fr ->
      fr.f_used <- fr.f_used + size;
      fr.f_keys <- key :: fr.f_keys;
      Hashtbl.replace t.entries key { e_data = z; e_frame = fr.f_pfn };
      t.stored <- t.stored + 1;
      metric "stored";
      `Stored

let get t ~key =
  match Hashtbl.find_opt t.entries key with
  | None -> None
  | Some e -> Some (decompress e.e_data)

let mem t ~key = Hashtbl.mem t.entries key
