(** The shared-frame registry: ownership home for every frame mapped
    into more than one protection domain.

    In the single global address space, sharing a page means several
    stretches' PTEs name one pfn; the RamTab counts those references.
    The registry admits its own {e host} service client (guarantee
    only, never a revocation victim, never killed) and keeps every
    shared frame on that client's stack. Tenants only ever take and
    drop {e references} ({!map}/{!unmap}); the frame itself is freed
    by the host exactly when the last reference goes — so killing a
    tenant can never strand or double-free a shared frame, and
    [release_all_frames] on a dying tenant finds nothing shared on its
    stack. *)

open Engine
open Hw
open Core

type t

type error = Map_failed of Translation.error

val pp_error : Format.formatter -> error -> unit

val create : System.t -> guarantee:int -> (t, System.error) result
(** Admit the host service client with [guarantee] frames (optimistic
    0 — shared frames are precious; the host must not be picked as a
    revocation victim). *)

val system : t -> System.t
val host_id : t -> int
val client : t -> Frames.client

val alloc_shared : t -> on_free:(unit -> unit) -> int option
(** Allocate a fresh host-owned frame to share (segment
    materialization). [on_free] runs when the last reference drops and
    the frame is freed — the installer forgets the pfn. The frame
    starts [Unused]; the first {!map} sets refs = 1. *)

val adopt_frame :
  t -> src:Frames.client -> pfn:int -> on_free:(unit -> unit) ->
  (unit, Frames.error) result
(** Take ownership of a settled frame from [src]'s stack (the CoW
    freeze path: a template surrenders its resident pages so its own
    death cannot reclaim what tenants still map). *)

val cancel : t -> pfn:int -> unit
(** Return a never-mapped frame from {!alloc_shared} (materialization
    race loser). *)

val map :
  t -> pdom:Pdom.t -> va:Addr.vaddr -> pfn:int ->
  charge:(Time.span -> unit) -> (unit, error) result
(** Grant [pdom] a shared read-only mapping of [pfn] at [va]; takes
    one RamTab reference. [charge] receives the MMU cost (pass the
    tenant's CPU account, or [ignore] from a kill hook). *)

val unmap :
  t -> pdom:Pdom.t -> va:Addr.vaddr -> reason:[ `Break | `Detach ] ->
  charge:(Time.span -> unit) -> (int, error) result
(** Drop one reference ([`Break]: a CoW write replaced the mapping;
    [`Detach]: the domain is going away). Returns the references
    remaining; at zero the frame is freed through the host and the
    installer's [on_free] hook runs. *)

(** {2 Books} *)

type books = {
  b_installs : int;
  b_frees : int;
  b_grants : int;
  b_breaks : int;
  b_detaches : int;
  b_live_frames : int;  (** frames currently in the registry *)
  b_live_refs : int;  (** RamTab references over those frames *)
}

val books : t -> books

val books_balanced : t -> bool
(** Double-entry: live frames = installs − frees = host-held frames,
    and live references = grants − breaks − detaches. *)
