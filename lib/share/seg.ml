open Engine
open Hw
open Core

(* A named read-only global segment ("text"): N domains attach, every
   resident page has exactly one physical copy — a registry-owned
   frame each attached domain maps through its own PTEs. First touch
   anywhere materializes the page (one fill sleep, one frame); every
   later fault in any domain is a cheap shared map. Per-domain hit
   and fault attribution goes to Obs.Metrics under the domain's
   label. *)

type t = {
  sg_name : string;
  sg_reg : Registry.t;
  sg_npages : int;
  sg_frames : int option array;  (* page -> the one resident copy *)
  sg_fill : Time.span;
  mutable sg_fills : int;
  mutable sg_attached : int;
}

let create ~reg ~name ~npages ?(fill = Time.us 50) () =
  { sg_name = name; sg_reg = reg; sg_npages = npages;
    sg_frames = Array.make npages None; sg_fill = fill; sg_fills = 0;
    sg_attached = 0 }

let name t = t.sg_name
let npages t = t.sg_npages
let attached t = t.sg_attached
let fills t = t.sg_fills

let resident t =
  Array.fold_left (fun a f -> if f = None then a else a + 1) 0 t.sg_frames

(* read + execute, no write; meta so the driver may map *)
let seg_rights = { Rights.r = true; w = false; x = true; m = true }

type attachment = {
  a_seg : t;
  a_env : Stretch_driver.env;
  mutable a_stretch : Stretch.t option;
  a_mapped : bool array;
  mutable a_hits : int;
}

exception Not_bound of { driver : string }

(* Typed per the PR 5 convention; the printer renders the exact
   string the old [failwith] escape produced. *)
let () =
  Printexc.register_printer (function
    | Not_bound { driver } -> Some (driver ^ ": driver not bound")
    | _ -> None)

let the_stretch a =
  match a.a_stretch with
  | Some s -> s
  | None -> raise (Not_bound { driver = "Seg" })

let metric a name =
  if !Obs.enabled then
    Obs.Metrics.inc ~label:a.a_env.Stretch_driver.domain_name name

let map_resident a page =
  match a.a_seg.sg_frames.(page) with
  | None -> false
  | Some pfn ->
    let va = Stretch.page_base (the_stretch a) page in
    (match
       Registry.map a.a_seg.sg_reg ~pdom:a.a_env.Stretch_driver.pdom ~va
         ~pfn ~charge:a.a_env.Stretch_driver.consume_cpu
     with
    | Ok () ->
      a.a_mapped.(page) <- true;
      a.a_hits <- a.a_hits + 1;
      metric a "seg.hit";
      true
    | Error _ -> false)

let fast a (fault : Fault.t) =
  let s = the_stretch a in
  if not (Stretch.contains s fault.Fault.va) then
    Stretch_driver.Failure "fault outside bound stretch"
  else
    match fault.Fault.kind with
    | Mmu.Access_violation -> Stretch_driver.Failure "read-only segment"
    | Mmu.Unallocated -> Stretch_driver.Failure "unallocated address"
    | Mmu.Page_fault ->
      let page = Stretch.page_index s fault.Fault.va in
      if a.a_mapped.(page) then Stretch_driver.Success (* racing fault *)
      else if map_resident a page then Stretch_driver.Success
      else Stretch_driver.Retry (* needs materialization: worker path *)

(* Materialize the segment page: one frame from the registry, one fill
   delay (the segment's contents coming from wherever "text" lives).
   Concurrent materializers race across the sleep — the loser returns
   its frame and maps the winner's. *)
let full a (fault : Fault.t) =
  let s = the_stretch a in
  if not (Stretch.contains s fault.Fault.va) then
    Stretch_driver.Failure "fault outside bound stretch"
  else
    match fault.Fault.kind with
    | Mmu.Access_violation -> Stretch_driver.Failure "read-only segment"
    | Mmu.Unallocated -> Stretch_driver.Failure "unallocated address"
    | Mmu.Page_fault ->
      let seg = a.a_seg in
      let page = Stretch.page_index s fault.Fault.va in
      if a.a_mapped.(page) then Stretch_driver.Success
      else if map_resident a page then Stretch_driver.Success
      else (
        match Registry.alloc_shared seg.sg_reg
                ~on_free:(fun () -> seg.sg_frames.(page) <- None)
        with
        | None -> Stretch_driver.Failure "segment: out of shared frames"
        | Some pfn ->
          Proc.sleep seg.sg_fill;
          (match seg.sg_frames.(page) with
          | Some _ ->
            (* lost the race while filling *)
            Registry.cancel seg.sg_reg ~pfn
          | None ->
            seg.sg_frames.(page) <- Some pfn;
            seg.sg_fills <- seg.sg_fills + 1;
            if !Obs.enabled then Obs.Metrics.inc "seg.fill");
          if map_resident a page then Stretch_driver.Success
          else Stretch_driver.Failure "segment: shared map failed")

(* Kill hook: drop this domain's references (the frames stay for the
   other attached domains; the last detach frees them). *)
let detach a =
  match a.a_stretch with
  | None -> ()
  | Some s ->
    Array.iteri
      (fun page m ->
        if m then begin
          ignore
            (Registry.unmap a.a_seg.sg_reg
               ~pdom:a.a_env.Stretch_driver.pdom
               ~va:(Stretch.page_base s page) ~reason:`Detach ~charge:ignore);
          a.a_mapped.(page) <- false
        end)
      a.a_mapped

let driver a =
  { Stretch_driver.name = Printf.sprintf "seg(%s)" a.a_seg.sg_name;
    bind = (fun s -> a.a_stretch <- Some s);
    fast = (fun f -> fast a f);
    full = (fun f -> full a f);
    relinquish = (fun ~want:_ -> 0);  (* no private frames to give *)
    resident_pages =
      (fun () ->
        Array.fold_left (fun acc m -> if m then acc + 1 else acc) 0
          a.a_mapped);
    free_frames = (fun () -> 0) }

let attach t (d : System.domain) =
  match
    System.alloc_stretch d ~global:seg_rights
      ~bytes:(t.sg_npages * Addr.page_size) ()
  with
  | Error msg -> Error (System.Driver_error { reason = msg })
  | Ok stretch ->
    Pdom.clear (Domains.pdom d.System.dom) ~sid:stretch.Stretch.sid;
    let a =
      { a_seg = t; a_env = d.System.env; a_stretch = None;
        a_mapped = Array.make t.sg_npages false; a_hits = 0 }
    in
    System.bind_driver d stretch (driver a);
    Domains.on_kill d.System.dom (fun () -> detach a);
    t.sg_attached <- t.sg_attached + 1;
    Ok (a, stretch)

let hits a = a.a_hits

let mapped a =
  Array.fold_left (fun acc m -> if m then acc + 1 else acc) 0 a.a_mapped
