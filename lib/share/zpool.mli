(** The compressed-memory pool: a dedicated frame budget holding
    compressed evicted pages.

    The zpool is the RAM half of the compressed tier ({!Sd_zram} is
    the backing-store adapter over it). Pages compress under a
    run-length model whose output size is a pure function of the page
    content's entropy — the deterministic "size model" the tenancy
    experiment relies on; {!compress}/{!decompress} are exact inverses
    (the round-trip property is tested). Compressed entries pack
    first-fit into page frames allocated {e optimistically} from the
    frames allocator under the pool's own service contract.

    Invariants:
    - {b write-through}: every entry's durable copy is below (disk),
      so all zpool contents are clean and shedding never loses data;
    - zpool frames are [Nailed] in the RamTab, so transparent
      revocation cannot silently steal compressed contents — under
      revocation {!expose_for_revocation} sheds whole frames
      synchronously and always meets the deadline;
    - an {!Inject.zpool_pressure} plan (armed before {!create})
      spawns a gremlin that periodically shrinks the budget,
      forcing sheds, then restores it. *)

open Engine
open Hw
open Core

val page_bytes : int

val compress : string -> string
(** Run-length encode ([(len <= 255, byte)] pairs). *)

val decompress : string -> string
(** Exact inverse of {!compress}. Raises [Invalid_argument] on a
    truncated stream. *)

val synth : key:string -> version:int -> string
(** Deterministic page contents for [key] at write [version]. The
    entropy class (zero page / long runs / short runs / random) is a
    pure function of the key, so a slot's compressibility is stable
    across rewrites. *)

type t

val create :
  sim:Sim.t -> frames:Frames.t -> client:Frames.client ->
  ramtab:Ramtab.t -> budget:int -> unit -> t
(** A pool drawing at most [budget] frames through [client] (admit it
    with guarantee 0 — the pool is meant to be revocable). Installs
    {!expose_for_revocation} as the client's revocation handler and,
    when an {!Inject.zpool_pressure} plan is armed, spawns the
    budget-shrink gremlin on [sim]. *)

val put : t -> key:string -> data:string -> [ `Stored | `Incompressible | `No_space ]
(** Compress and store (replacing any previous entry for [key]).
    [`Incompressible] if the compressed size exceeds half a page;
    [`No_space] if neither a held frame nor the budget/allocator can
    take it. Either failure leaves no stale entry behind. *)

val get : t -> key:string -> string option
(** Decompressed contents, if present. *)

val mem : t -> key:string -> bool

val drop : t -> key:string -> unit
(** Remove an entry; an emptied frame returns to the allocator. *)

val set_budget : t -> int -> int
(** Change the frame budget, shedding oldest-first down to it; returns
    the number of frames shed. *)

val expose_for_revocation : t -> k:int -> unit
(** Revocation handler body: drop the oldest [k] frames' entries and
    leave the frames [Unused] at the top of the client's stack for the
    allocator's verify pass. Call {!Core.Frames.revocation_ready}
    after. *)

(** {2 Introspection} *)

val frames_held : t -> int
val budget : t -> int
val entries : t -> int
val bytes_used : t -> int

type stats = {
  z_stored : int;
  z_incompressible : int;
  z_overflow : int;  (** puts refused for budget/allocator space *)
  z_dropped : int;  (** entries dropped by sheds *)
  z_shed_frames : int;  (** frames freed by sheds + revocations *)
  z_bursts : int;  (** zpool-pressure bursts fired *)
}

val stats : t -> stats
