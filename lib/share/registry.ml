open Hw
open Core

(* The shared-frame registry: one host service client owns every
   frame that is mapped into more than one protection domain (CoW
   template pages, read-only segment pages). Keeping shared frames on
   a never-killed host stack is what makes domain death safe — a
   killed tenant only ever *unmaps* (dropping a reference); the frame
   itself is freed by the host exactly when the last reference goes. *)

type t = {
  sys : System.t;
  host_id : int;
  client : Frames.client;
  (* live shared frames -> cleanup run when the frame is freed *)
  by_pfn : (int, unit -> unit) Hashtbl.t;
  mutable installs : int;
  mutable frees : int;
  mutable grants : int;
  mutable breaks : int;
  mutable detaches : int;
}

type error = Map_failed of Translation.error

let pp_error ppf = function
  | Map_failed e ->
    Format.fprintf ppf "shared mapping failed: %a" Translation.pp_error e

let create sys ~guarantee =
  match System.admit_service sys ~guarantee ~optimistic:0 with
  | Error e -> Error e
  | Ok (host_id, client) ->
    Ok
      { sys; host_id; client; by_pfn = Hashtbl.create 64; installs = 0;
        frees = 0; grants = 0; breaks = 0; detaches = 0 }

let system t = t.sys
let host_id t = t.host_id
let client t = t.client

let metric name = if !Obs.enabled then Obs.Metrics.inc ("share." ^ name)

(* Fill a fresh host-owned frame to share. The frame starts [Unused]
   on the host's stack; the first map_shared flips it Mapped and sets
   refs=1. *)
let alloc_shared t ~on_free =
  match Frames.alloc (System.frames t.sys) t.client with
  | None -> None
  | Some pfn ->
    Hashtbl.replace t.by_pfn pfn on_free;
    t.installs <- t.installs + 1;
    metric "install";
    Some pfn

(* Adopt a settled frame from a tenant's stack (the CoW freeze path:
   the template surrenders its resident pages and the registry takes
   ownership so the template's own death cannot reclaim them). *)
let adopt_frame t ~src ~pfn ~on_free =
  match Frames.transfer (System.frames t.sys) ~src ~dst:t.client pfn with
  | Error e -> Error e
  | Ok () ->
    Hashtbl.replace t.by_pfn pfn on_free;
    t.installs <- t.installs + 1;
    metric "install";
    Ok ()

(* Race loser: an allocated frame that never got mapped (another
   materializer won while we slept filling it). *)
let cancel t ~pfn =
  Hashtbl.remove t.by_pfn pfn;
  Frames.free (System.frames t.sys) t.client pfn;
  t.frees <- t.frees + 1

let map t ~pdom ~va ~pfn ~charge =
  match Translation.map_shared (System.translation t.sys) ~pdom ~va ~pfn with
  | Error e -> Error (Map_failed e)
  | Ok cost ->
    charge cost;
    t.grants <- t.grants + 1;
    metric "grant";
    Ok ()

(* Drop one domain's reference. When the last reference goes the
   frame returns to the allocator through the host client and the
   installer's [on_free] hook runs (so a template/segment forgets the
   now-dead pfn). *)
let unmap t ~pdom ~va ~reason ~charge =
  match Translation.unmap_shared (System.translation t.sys) ~pdom ~va with
  | Error e -> Error (Map_failed e)
  | Ok (pte, remaining, cost) ->
    charge cost;
    (match reason with
    | `Break ->
      t.breaks <- t.breaks + 1;
      metric "break"
    | `Detach ->
      t.detaches <- t.detaches + 1;
      metric "detach");
    if remaining = 0 then begin
      let pfn = Pte.pfn pte in
      (match Hashtbl.find_opt t.by_pfn pfn with
      | Some on_free ->
        Hashtbl.remove t.by_pfn pfn;
        on_free ()
      | None -> ());
      Frames.free (System.frames t.sys) t.client pfn;
      t.frees <- t.frees + 1
    end;
    Ok remaining

type books = {
  b_installs : int;
  b_frees : int;
  b_grants : int;
  b_breaks : int;
  b_detaches : int;
  b_live_frames : int;  (** frames currently in the registry *)
  b_live_refs : int;  (** RamTab references over those frames *)
}

let books t =
  let live_refs =
    Hashtbl.fold
      (fun pfn _ acc -> acc + Ramtab.refs (System.ramtab t.sys) ~pfn)
      t.by_pfn 0
  in
  { b_installs = t.installs; b_frees = t.frees; b_grants = t.grants;
    b_breaks = t.breaks; b_detaches = t.detaches;
    b_live_frames = Hashtbl.length t.by_pfn; b_live_refs = live_refs }

(* The double-entry check: every installed frame is either freed or
   still in the registry AND on the host's stack; every granted
   reference is either dropped (break/detach) or still counted in the
   RamTab. *)
let books_balanced t =
  let b = books t in
  b.b_live_frames = b.b_installs - b.b_frees
  && Frames.held t.client = b.b_live_frames
  && b.b_live_refs = b.b_grants - b.b_breaks - b.b_detaches
