(** Named read-only global segments: one resident copy, N mappers.

    The model of a shared text segment. A segment has a fixed page
    count; any attached domain's first touch of a page {e materializes}
    it (one registry frame, one fill delay) and every later fault — in
    any attached domain — resolves on the fast path to a shared
    read-only mapping of that same frame, taking one RamTab reference.
    Writes are refused ([Access_violation] → domain fault). Detach (or
    domain death, via a kill hook) drops the domain's references; the
    last reference frees the frame back through the registry.

    Per-domain attribution: each attachment counts its own faults
    under its domain-name label in [Obs.Metrics] (["seg.hit"]), while
    materializations are global (["seg.fill"]) — so an experiment can
    show N domains faulting M pages cost [M] fills and [N*M - M]
    cheap hits with exactly [M] frames resident. *)

open Engine
open Core

type t

exception Not_bound of { driver : string }
(** An attachment's driver was consulted before the system bound its
    stretch — a wiring bug, not a runtime condition. Typed per the
    PR 5 convention: the registered printer renders the legacy
    ["Seg: driver not bound"] string. *)

val create :
  reg:Registry.t -> name:string -> npages:int -> ?fill:Time.span ->
  unit -> t
(** [fill] (default 50us) is the per-page materialization delay —
    fetching the segment's contents from wherever "text" lives. *)

val name : t -> string
val npages : t -> int
val attached : t -> int

val resident : t -> int
(** Pages with a materialized frame right now — the segment's whole
    physical footprint, however many domains map it. *)

val fills : t -> int
(** Materializations ever (monotonic; equals the number of distinct
    first touches). *)

type attachment

val attach : t -> System.domain -> (attachment * Stretch.t, System.error) result
(** Allocate an [npages] stretch in the domain (rights r-x+meta, no
    write), bind the segment driver and register the kill-hook
    detach. *)

val detach : attachment -> unit
(** Drop this domain's shared references (idempotent; automatic on
    domain death). *)

val hits : attachment -> int
val mapped : attachment -> int
