open Engine

(* The compressed tier as a backing store: a Zpool in front of any
   Tier.Backing.t. Write-through — every write goes below as well, so
   the zpool never holds the only copy and shedding is always safe.
   Reads that hit the pool cost a decompress sleep instead of a disk
   transaction; misses coalesce into contiguous below-reads exactly
   like the tiered store does. *)

type t = {
  zpool : Zpool.t;
  below : Tier.Backing.t;
  label : string;
  (* per-slot write version: makes each overwrite's synthesized
     contents distinguishable while keeping the entropy class (and so
     the compressed size) a pure function of the slot *)
  versions : (int, int) Hashtbl.t;
  compress_us : Time.span;
  decompress_us : Time.span;
  mutable hits : int;
  mutable misses : int;
  mutable below_writes : int;
  mutable dropped_on_error : int;
}

let create ?(label = "zram") ?(compress_us = Time.us 3)
    ?(decompress_us = Time.us 2) ~zpool ~below () =
  { zpool; below; label; versions = Hashtbl.create 256; compress_us;
    decompress_us; hits = 0; misses = 0; below_writes = 0;
    dropped_on_error = 0 }

let key_of t slot = t.label ^ ":" ^ string_of_int slot

let metric t name =
  if !Obs.enabled then Obs.Metrics.inc ~label:t.label ("zram." ^ name)

(* ------------------------------------------------------------------ *)
(* Writes: compress into the pool first, then ALWAYS write below —
   the durability floor. If the below write fails we drop the fresh
   pool entries for the failed slots: the pool must never answer a
   read with contents the floor cannot back. *)

let put_slot t slot =
  let v = 1 + (try Hashtbl.find t.versions slot with Not_found -> 0) in
  Hashtbl.replace t.versions slot v;
  let key = key_of t slot in
  let data = Zpool.synth ~key ~version:v in
  match Zpool.put t.zpool ~key ~data with
  | `Stored ->
    Proc.sleep t.compress_us;
    metric t "stored"
  | `Incompressible -> metric t "incompressible"
  | `No_space -> metric t "overflow"

let drop_range t ~page_index ~npages =
  for s = page_index to page_index + npages - 1 do
    if Zpool.mem t.zpool ~key:(key_of t s) then begin
      Zpool.drop t.zpool ~key:(key_of t s);
      t.dropped_on_error <- t.dropped_on_error + 1
    end
  done

let write_page t ~page_index =
  put_slot t page_index;
  t.below_writes <- t.below_writes + 1;
  match t.below.Tier.Backing.write_page ~page_index with
  | Ok () -> Ok ()
  | Error e ->
    drop_range t ~page_index ~npages:1;
    Error e

let write_pages t ~page_index ~npages =
  for s = page_index to page_index + npages - 1 do
    put_slot t s
  done;
  t.below_writes <- t.below_writes + 1;
  match t.below.Tier.Backing.write_pages ~page_index ~npages with
  | Ok () -> Ok ()
  | Error e ->
    drop_range t ~page_index ~npages;
    Error e

let write_pages_commit t ~page_index ~npages ~pages ~retire =
  for s = page_index to page_index + npages - 1 do
    put_slot t s
  done;
  (* retired slots are superseded — their cached copies are stale *)
  List.iter
    (fun (_, old_slot) ->
      if Zpool.mem t.zpool ~key:(key_of t old_slot) then
        Zpool.drop t.zpool ~key:(key_of t old_slot))
    retire;
  t.below_writes <- t.below_writes + 1;
  match
    t.below.Tier.Backing.write_pages_commit ~page_index ~npages ~pages ~retire
  with
  | Ok () -> Ok ()
  | Error e ->
    drop_range t ~page_index ~npages;
    Error e

(* ------------------------------------------------------------------ *)
(* Reads: pool hits decompress in place; misses coalesce into
   contiguous below transactions (same degradation contract as the
   tiered store: partial losses merge, fatal errors short-circuit). *)

let read_pages t ~page_index ~npages =
  let lost = ref [] in
  let fatal = ref None in
  let run_start = ref 0 and run_len = ref 0 in
  let flush_run () =
    if !run_len > 0 then begin
      let t0 = Sim.now (Proc.current_sim ()) in
      (match
         t.below.Tier.Backing.read_pages ~page_index:!run_start
           ~npages:!run_len
       with
      | Ok () -> ()
      | Error (`Lost_pages l) -> lost := l @ !lost
      | Error ((`Retired | `Crashed) as e) -> fatal := Some e);
      if !Obs.enabled then begin
        (* per-page cost of the disk-served run, for the hit-vs-miss
           latency comparison the tenancy bench reports *)
        let per_page =
          Time.to_us (Time.diff (Sim.now (Proc.current_sim ())) t0)
          /. float_of_int !run_len
        in
        for _ = 1 to !run_len do
          Obs.Metrics.observe "zram.miss_us" per_page
        done
      end;
      run_len := 0
    end
  in
  let s = ref page_index in
  while !fatal = None && !s < page_index + npages do
    (match Zpool.get t.zpool ~key:(key_of t !s) with
    | Some data ->
      flush_run ();
      (* exercise the exact-inverse pair so a broken codec faults loud *)
      if String.length data <> Zpool.page_bytes then
        invalid_arg "Sd_zram: decompressed page has wrong size";
      t.hits <- t.hits + 1;
      metric t "hit";
      Proc.sleep t.decompress_us;
      if !Obs.enabled then
        Obs.Metrics.observe "zram.hit_us" (Time.to_us t.decompress_us)
    | None ->
      t.misses <- t.misses + 1;
      metric t "miss";
      if !run_len = 0 then begin
        run_start := !s;
        run_len := 1
      end
      else run_len := !run_len + 1);
    incr s
  done;
  flush_run ();
  match !fatal with
  | Some e -> Error (e :> Tier.Backing.io_error)
  | None ->
    if !lost = [] then Ok ()
    else Error (`Lost_pages (List.sort_uniq compare !lost))

(* ------------------------------------------------------------------ *)

type stats = {
  s_hits : int;
  s_misses : int;
  s_below_writes : int;
  s_dropped_on_error : int;
}

let stats t =
  { s_hits = t.hits; s_misses = t.misses; s_below_writes = t.below_writes;
    s_dropped_on_error = t.dropped_on_error }

let zpool t = t.zpool

let backing t =
  { Tier.Backing.label = t.label;
    page_capacity = t.below.Tier.Backing.page_capacity;
    journaled = t.below.Tier.Backing.journaled;
    read_pages = (fun ~page_index ~npages -> read_pages t ~page_index ~npages);
    write_page = (fun ~page_index -> write_page t ~page_index);
    write_pages =
      (fun ~page_index ~npages -> write_pages t ~page_index ~npages);
    write_pages_commit =
      (fun ~page_index ~npages ~pages ~retire ->
        write_pages_commit t ~page_index ~npages ~pages ~retire);
    slot_committed = t.below.Tier.Backing.slot_committed;
    extent = t.below.Tier.Backing.extent }

(* --- backing-axis registration --------------------------------------- *)

type zram_cap = {
  zc_zpool : Zpool.t;
  zc_label : string;
}

type Tier.Backing.cap += Zram of zram_cap

let () =
  Tier.Reg.register_exn Tier.Backing.axis
    (Tier.Reg.manifest ~name:"zram"
       ~doc:
         "compressed-RAM tier over the swapfile's own data path \
          (Share.Sd_zram over a shared Zpool)"
       ())
    (fun a ->
      if a.Tier.Reg.Spec.args <> [] || a.Tier.Reg.Spec.params <> [] then
        Error "zram takes no parameter (pool and label come from the ctx)"
      else
        Ok
          (fun ctx swap ->
            match
              List.find_map (function Zram c -> Some c | _ -> None) ctx
            with
            | None -> Error "zram backing needs a Share.Sd_zram.Zram capability"
            | Some c ->
                Ok
                  (backing
                     (create ~label:c.zc_label ~zpool:c.zc_zpool
                        ~below:(Tier.Backing.of_sfs swap) ()))))
