open Engine
open Hw
open Core

(* Copy-on-write stretch sharing: a template domain's paged stretch is
   frozen — its resident pages surrendered to the share registry — and
   each forked tenant maps those frames read-only through its own
   PTEs. The CoW driver interposes on a full Sd_paged stack: reads of
   template pages resolve on the fast path to a shared mapping; the
   first write breaks the share (a private frame obtained, paid for
   and accounted through the inner driver), after which the page lives
   entirely in the inner pager — evicted, cleaned and revoked like any
   other.

   Protection encodes the state per page in the global (per-PTE)
   rights: template-backed pages start {r,m} so ANY write raises
   Access_violation (the MMU checks rights before validity), which is
   the CoW driver's cue; broken/private pages are upgraded to rw+meta
   and never reach this driver's write handler again. *)

let cow_rights = { Rights.r = true; w = false; x = false; m = true }

(* -- template --------------------------------------------------------- *)

type template = {
  tpl_name : string;
  tpl_reg : Registry.t;
  tpl_npages : int;
  tpl_frames : int option array;  (* template page -> shared pfn *)
  mutable tpl_tenants : int;
}

let template_name t = t.tpl_name
let template_pages t = t.tpl_npages
let shared_frames t =
  Array.fold_left (fun a f -> if f = None then a else a + 1) 0 t.tpl_frames
let tenants t = t.tpl_tenants

(* Freeze: settle + surrender the template's resident pages and move
   their frames to the share host's stack, so the template domain's
   own death (Frames.retire would force-release its stack) can never
   reclaim a frame tenants still map. Pages that were not resident —
   never touched, or evicted to swap — simply have no shared frame;
   tenants fault those through their own inner pager. *)
let freeze ~reg ~name (d : System.domain) (handle : Sd_paged.handle)
    ~npages =
  let t =
    { tpl_name = name; tpl_reg = reg; tpl_npages = npages;
      tpl_frames = Array.make npages None; tpl_tenants = 0 }
  in
  let surrendered = Sd_paged.surrender_resident handle in
  List.iter
    (fun (page, pfn) ->
      if page < npages then
        match
          Registry.adopt_frame reg ~src:d.System.frames_client ~pfn
            ~on_free:(fun () -> t.tpl_frames.(page) <- None)
        with
        | Ok () -> t.tpl_frames.(page) <- Some pfn
        | Error _ -> ())
    surrendered;
  t

(* -- tenant ----------------------------------------------------------- *)

type status = Untouched | Shared | Private

type tenant = {
  c_env : Stretch_driver.env;
  c_tpl : template;
  c_inner : Stretch_driver.t;
  c_handle : Sd_paged.handle;
  mutable c_stretch : Stretch.t option;
  mutable c_status : status array;
  mutable c_breaks : int;
  mutable c_shared_faults : int;
  mutable c_detached : int;
}

exception Not_bound of { driver : string }

(* Typed per the PR 5 convention; the printer renders the exact
   string the old [failwith] escape produced. *)
let () =
  Printexc.register_printer (function
    | Not_bound { driver } -> Some (driver ^ ": driver not bound")
    | _ -> None)

let the_stretch c =
  match c.c_stretch with
  | Some s -> s
  | None -> raise (Not_bound { driver = "Cow" })

let metric c name =
  if !Obs.enabled then
    Obs.Metrics.inc ~label:c.c_env.Stretch_driver.domain_name name

(* Map a template frame read-only into the tenant (the fast path of a
   read fault on an untouched template page). *)
let map_template c page =
  match c.c_tpl.tpl_frames.(page) with
  | None -> false
  | Some pfn ->
    let va = Stretch.page_base (the_stretch c) page in
    (match
       Registry.map c.c_tpl.tpl_reg ~pdom:c.c_env.Stretch_driver.pdom ~va
         ~pfn ~charge:c.c_env.Stretch_driver.consume_cpu
     with
    | Ok () ->
      c.c_status.(page) <- Shared;
      c.c_shared_faults <- c.c_shared_faults + 1;
      metric c "share.cow_shared";
      true
    | Error _ -> false)

(* Upgrade one page to private rights (rw + meta): after this, writes
   never reach the CoW driver again. *)
let go_private c page =
  let env = c.c_env in
  let va = Stretch.page_base (the_stretch c) page in
  (match
     Translation.protect_range env.Stretch_driver.translation
       ~pdom:env.Stretch_driver.pdom ~base:va ~npages:1 Rights.rw_meta
   with
  | Ok cost -> env.Stretch_driver.consume_cpu cost
  | Error _ -> ());
  if page < Array.length c.c_status then c.c_status.(page) <- Private

(* Break the share for [page]: obtain a frame by the inner pager's
   full means (pool, allocator, eviction — paid for exactly like a
   page-in), copy the template contents, drop the shared reference and
   hand the private copy to the inner driver. *)
let break_share c page ~was_shared =
  let env = c.c_env in
  let t0 = Sim.now (Proc.current_sim ()) in
  match Sd_paged.obtain c.c_handle with
  | None -> Stretch_driver.Failure "cow break: out of frames"
  | Some pfn ->
    let va = Stretch.page_base (the_stretch c) page in
    (* the copy itself: modelled at page-zero cost *)
    env.Stretch_driver.consume_cpu env.Stretch_driver.cost.Cost.page_zero;
    if was_shared then
      ignore
        (Registry.unmap c.c_tpl.tpl_reg ~pdom:env.Stretch_driver.pdom ~va
           ~reason:`Break ~charge:env.Stretch_driver.consume_cpu);
    go_private c page;
    Stretch_driver.map_page env va ~pfn;
    Sd_paged.adopt c.c_handle ~page ~pfn;
    c.c_breaks <- c.c_breaks + 1;
    metric c "share.cow_break";
    if !Obs.enabled then
      Obs.Metrics.observe "share.break_us"
        (Time.to_us (Time.diff (Sim.now (Proc.current_sim ())) t0));
    Stretch_driver.Success

let in_template c page = page >= 0 && page < c.c_tpl.tpl_npages

let page_of c (fault : Fault.t) =
  let s = the_stretch c in
  if Stretch.contains s fault.Fault.va then
    Some (Stretch.page_index s fault.Fault.va)
  else None

let fast c (fault : Fault.t) =
  match page_of c fault with
  | None -> c.c_inner.Stretch_driver.fast fault
  | Some page ->
    (match (fault.Fault.kind, fault.Fault.access) with
    | Mmu.Access_violation, `Write -> Stretch_driver.Retry (* worker breaks *)
    | Mmu.Page_fault, (`Read | `Execute)
      when in_template c page && c.c_status.(page) = Untouched ->
      if map_template c page then Stretch_driver.Success
      else c.c_inner.Stretch_driver.fast fault
    | _ -> c.c_inner.Stretch_driver.fast fault)

let full c (fault : Fault.t) =
  match page_of c fault with
  | None -> c.c_inner.Stretch_driver.full fault
  | Some page ->
    (match (fault.Fault.kind, fault.Fault.access) with
    | Mmu.Access_violation, `Write ->
      (match c.c_status.(page) with
      | Shared -> break_share c page ~was_shared:true
      | Untouched when in_template c page && c.c_tpl.tpl_frames.(page) <> None
        ->
        (* first touch is a write: private copy, no shared interlude *)
        break_share c page ~was_shared:false
      | Untouched | Private ->
        (* not template-backed (or the template page was never
           resident): just lift the rights; the retried access
           page-faults into the inner pager *)
        go_private c page;
        Stretch_driver.Success)
    | Mmu.Page_fault, (`Read | `Execute)
      when in_template c page && c.c_status.(page) = Untouched ->
      if map_template c page then Stretch_driver.Success
      else c.c_inner.Stretch_driver.full fault
    | _ -> c.c_inner.Stretch_driver.full fault)

(* Detach every surviving shared mapping (kill hook — runs before the
   domain's frames contract is retired, so the registry's books stay
   balanced when a tenant dies mid-share). *)
let detach c =
  match c.c_stretch with
  | None -> ()
  | Some s ->
    Array.iteri
      (fun page st ->
        if st = Shared then begin
          let va = Stretch.page_base s page in
          ignore
            (Registry.unmap c.c_tpl.tpl_reg
               ~pdom:c.c_env.Stretch_driver.pdom ~va ~reason:`Detach
               ~charge:ignore);
          c.c_status.(page) <- Untouched;
          c.c_detached <- c.c_detached + 1
        end)
      c.c_status

type stats = {
  c_stat_breaks : int;
  c_stat_shared_faults : int;
  c_stat_detached : int;
  c_stat_shared_now : int;
}

let stats c =
  { c_stat_breaks = c.c_breaks;
    c_stat_shared_faults = c.c_shared_faults;
    c_stat_detached = c.c_detached;
    c_stat_shared_now =
      Array.fold_left (fun a s -> if s = Shared then a + 1 else a) 0
        c.c_status }

(* Build the interposing driver over an already-bound inner stack.
   [bind] only records the stretch — the inner driver was bound (and
   its own [bind] run) by [System.bind_paged] a moment earlier. *)
let driver c =
  { Stretch_driver.name =
      Printf.sprintf "cow(%s over %s)" c.c_tpl.tpl_name
        c.c_inner.Stretch_driver.name;
    bind =
      (fun s ->
        c.c_stretch <- Some s;
        if Array.length c.c_status <> Stretch.npages s then
          c.c_status <- Array.make (Stretch.npages s) Untouched);
    fast = (fun f -> fast c f);
    full = (fun f -> full c f);
    relinquish =
      (fun ~want -> c.c_inner.Stretch_driver.relinquish ~want);
    resident_pages =
      (fun () ->
        c.c_inner.Stretch_driver.resident_pages ()
        + Array.fold_left
            (fun a s -> if s = Shared then a + 1 else a)
            0 c.c_status);
    free_frames = (fun () -> c.c_inner.Stretch_driver.free_frames ()) }

(* Fork a CoW tenant: fresh domain under the template's envelope, a
   stretch of the same geometry mapped {r,m} (so writes trap), a full
   inner paged stack of its own (swap file, policy, zram tier if
   [backing] says so) and the CoW driver interposed on top. *)
let spawn sys ~template:(tpl : template) ~tpl_domain ~name ?backing
    ?initial_frames ~npages ~swap_bytes ~qos () =
  System.spawn_cow sys ~template:tpl_domain ~name ~fork:(fun d ->
      match
        System.alloc_stretch d ~global:cow_rights
          ~bytes:(npages * Addr.page_size) ()
      with
      | Error msg -> Error (System.Driver_error { reason = msg })
      | Ok stretch ->
        (* default stretch rights come from the pdom: clear the
           override so the per-PTE global rights ({r,m} now, rw+meta
           after a break) are what the MMU checks. *)
        Pdom.clear (Domains.pdom d.System.dom) ~sid:stretch.Stretch.sid;
        (match
           System.bind_paged d ?backing ?initial_frames ~swap_bytes ~qos
             stretch ()
         with
        | Error e -> Error e
        | Ok (inner, handle) ->
          let c =
            { c_env = d.System.env; c_tpl = tpl; c_inner = inner;
              c_handle = handle; c_stretch = None;
              c_status = Array.make (Stretch.npages stretch) Untouched;
              c_breaks = 0; c_shared_faults = 0; c_detached = 0 }
          in
          System.bind_driver d stretch (driver c);
          Domains.on_kill d.System.dom (fun () -> detach c);
          tpl.tpl_tenants <- tpl.tpl_tenants + 1;
          Ok (c, stretch)))
