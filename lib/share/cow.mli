(** Copy-on-write stretch sharing over stacked pagers.

    A {e template} domain warms a paged stretch, then {!freeze}
    surrenders its resident pages to the share {!Registry}. Each
    {!spawn}ed tenant gets a fresh domain (admitted under the
    template's resource envelope), its own full inner paged stack
    ({!Core.Sd_paged}, optionally over {!Sd_zram}) and a CoW driver
    interposed on top:

    - a {b read} of an untouched template page resolves on the fast
      path to a shared read-only mapping of the template's frame (one
      RamTab reference, no frame consumed from the tenant's quota);
    - the first {b write} raises [Access_violation] (template pages
      carry per-PTE rights \{r,m\}, and the MMU checks rights before
      validity) and the worker path {e breaks} the share: a private
      frame is obtained by the inner pager's full means — paid for and
      accounted exactly like a page-in — the page is copied, the
      shared reference dropped, the page re-protected rw and adopted
      into the inner pager, which thereafter evicts/cleans/revokes it
      like any other;
    - pages outside the template (or never resident at freeze time)
      just have their rights lifted and fault through the inner pager.

    Per-tenant fault attribution lands in [Obs.Metrics] under the
    tenant's domain-name label (["share.cow_shared"],
    ["share.cow_break"]) plus the global ["share.break_us"]
    histogram. A kill hook detaches surviving shared mappings, so
    killing tenants mid-share leaves the registry's books balanced. *)

open Core

exception Not_bound of { driver : string }
(** A CoW driver was consulted before the system bound its stretch —
    a wiring bug, not a runtime condition. Typed per the PR 5
    convention: the registered printer renders the legacy
    ["Cow: driver not bound"] string. *)

(** {2 Template} *)

type template

val freeze :
  reg:Registry.t -> name:string -> System.domain -> Sd_paged.handle ->
  npages:int -> template
(** Settle and surrender the template stretch's resident pages
    ({!Core.Sd_paged.surrender_resident}) and move their frames to the
    share host ({!Registry.adopt_frame}) — after this the template
    domain may die without stranding tenants. Pages not resident at
    freeze (never touched, or evicted) have no shared frame; tenants
    fault them privately. *)

val template_name : template -> string
val template_pages : template -> int

val shared_frames : template -> int
(** Template frames currently shared (shrinks as last references
    break away). *)

val tenants : template -> int

(** {2 Tenants} *)

type tenant

val spawn :
  System.t -> template:template -> tpl_domain:System.domain ->
  name:string -> ?backing:(Usbs.Sfs.swapfile -> Tier.Backing.t) ->
  ?initial_frames:int -> npages:int -> swap_bytes:int -> qos:Usbs.Qos.t ->
  unit -> (System.domain * (tenant * Stretch.t), System.error) result
(** Fork a tenant: fresh domain under the template's
    {!Core.System.domain_spec} envelope, an [npages] stretch with
    per-PTE rights \{r,m\}, an inner paged stack of its own ([backing]
    selects e.g. the {!Sd_zram} tier) and the CoW driver bound over
    it. On any failure the half-built domain is killed. *)

type stats = {
  c_stat_breaks : int;  (** shares broken by writes *)
  c_stat_shared_faults : int;  (** read faults resolved to shared maps *)
  c_stat_detached : int;  (** mappings dropped by the kill hook *)
  c_stat_shared_now : int;  (** pages currently mapped shared *)
}

val stats : tenant -> stats

val detach : tenant -> unit
(** Drop every surviving shared mapping (idempotent; also runs
    automatically when the tenant domain is killed). *)
