(** Compressed-RAM backing tier: a {!Zpool} stacked over any
    {!Tier.Backing.t}.

    [Sd_zram] slots between {!Core.Sd_paged} and its durable floor the
    same way {!Tier.Store} does — by building a {!Tier.Backing.t} the
    paged driver writes through. The contract:

    - {b write-through}: every page write compresses into the pool
      {e and} goes below; the pool never holds the only copy, so a
      below-write failure just drops the fresh pool entries and the
      error propagates with the seed semantics intact;
    - {b reads} that hit the pool pay a decompress sleep (microseconds)
      instead of a disk transaction; misses coalesce into contiguous
      below reads with the same partial-loss merging the tiered store
      uses;
    - {b no promote-on-read}: a miss serves from below without
      re-compressing — only writes populate the pool, keeping the
      contents a function of write traffic alone (deterministic under
      a fixed seed).

    Journal metadata ([journaled], [slot_committed], [extent]) passes
    straight through to the floor: the pool is invisible to crash
    recovery. *)

open Engine

type t

val create :
  ?label:string ->
  ?compress_us:Time.span ->
  ?decompress_us:Time.span ->
  zpool:Zpool.t ->
  below:Tier.Backing.t ->
  unit ->
  t
(** [label] (default ["zram"]) names the backend in driver names and
    per-label metrics; [compress_us]/[decompress_us] (defaults 3us/2us)
    are the per-page codec costs charged as sleeps. The [zpool] may be
    shared by several [Sd_zram] fronts (one per tenant) — entries are
    keyed [label:slot], so fronts over distinct swapfiles must use
    distinct labels. *)

val backing : t -> Tier.Backing.t
(** The record to pass to [System.bind_paged ~backing]. *)

type stats = {
  s_hits : int;  (** reads served from the pool *)
  s_misses : int;  (** reads that went below *)
  s_below_writes : int;  (** write transactions forwarded below *)
  s_dropped_on_error : int;
      (** pool entries dropped because the floor write failed *)
}

val stats : t -> stats
val zpool : t -> Zpool.t

type zram_cap = {
  zc_zpool : Zpool.t;  (** the pool shared by the tenant fleet *)
  zc_label : string;  (** per-tenant label (entries are keyed [label:slot]) *)
}

type Tier.Backing.cap += Zram of zram_cap
(** The live capability the registered ["zram"] backing consumes:
    [Tier.Backing.resolve "zram"] yields a factory that, given a ctx
    holding one of these and a swapfile, stacks {!create} over the
    swapfile's own data path and returns its {!backing}. *)
