(** Network link parameters.

    Defaults model the 100 Mbit/s switched Ethernet of the paper's era
    (the Nemesis network work the paper cites ran over ATM and fast
    Ethernet; only rate and per-packet overhead matter here). *)

open Engine

type t = {
  rate_bps : float;        (** line rate, bits per second *)
  per_packet : Time.span;  (** fixed per-packet cost (framing, DMA setup) *)
  mtu : int;               (** maximum transmission unit, bytes *)
}

val fast_ethernet : t

val gigabit : t
(** A gigabit fabric with jumbo frames (9014-byte MTU) — the
    disaggregated-memory premise that the network is an order of
    magnitude closer to DRAM than the disk. A whole 8 KB page or any
    of its shards fits one frame. *)

val tx_time : t -> bytes:int -> Time.span
(** Wire time of one packet: fixed overhead + serialisation. Raises
    [Invalid_argument] for sizes outside (0, mtu]. *)
