(** The user-safe network link: Atropos-scheduled transmission.

    The paper states that Nemesis hands out explicit low-level
    guarantees for {e all} resources — "disks, network interfaces and
    physical memory are treated in the same way". This module applies
    exactly the machinery of the USD to the transmit side of a network
    link: clients hold [(p, s, x)] guarantees, an EDF scheduler in the
    link driver domain performs one packet transmission at a time for
    the earliest-deadline client with budget, measured wire time is
    charged against the client's slice with roll-over accounting, and
    slack goes to x-flagged clients.

    Individual packets are three orders of magnitude shorter than disk
    transactions, so single-packet clients need no laxity. Bulk
    transfers — a page fragmented into many MTU packets, as the
    remote-memory tier issues — reintroduce the short-block problem at
    network scale: the sender thinks between packets and a plain EDF
    scheduler takes the link away at every gap. Such clients admit
    with an [(p, s, x, l)] guarantee: [laxity] is how long the client
    may hold its place on the runnable queue with an empty ring,
    charged against its slice, exactly as the USD treats disk
    transactions. [laxity = 0] (the default) is bit-for-bit the seed
    behaviour. *)

open Engine

type t

type client

type event =
  | Tx of { client : string; bytes : int; dur : Time.span }
  | Alloc of { client : string }
  | Slack_tx of { client : string; bytes : int; dur : Time.span }
  | Lax of { client : string; dur : Time.span }
      (** an empty bulk client held the link under its lax allowance *)

type admit_error =
  | Bad_queue_depth of { depth : int }
  | Bad_qos of { reason : string }
      (** malformed guarantee (non-positive period/slice, slice
          exceeding period, negative laxity) *)
  | Link_overcommit of { requested : float; available : float }
      (** admission would push Σ s/p past 1: [requested] is the s/p
          asked for, [available] what admission control could still
          grant *)

val admit_error_message : admit_error -> string
(** Reproduces the legacy untyped strings, e.g.
    ["admission refused: utilisation 1.100 > 1"]. *)

val pp_admit_error : Format.formatter -> admit_error -> unit

val create :
  ?name:string -> ?params:Net_params.t -> ?rollover:bool -> Sim.t -> t
(** [name] (default ["link"]) labels the link's Obs metrics and is the
    site key fault-injection plans target (see {!Inject.link}). *)

val name : t -> string
val params : t -> Net_params.t

val admit :
  t -> name:string -> period:Time.span -> slice:Time.span -> ?extra:bool ->
  ?queue_depth:int -> ?laxity:Time.span -> unit ->
  (client, admit_error) result
(** Admission control: Σ s/p ≤ 1 over the link. [queue_depth]
    (default 64) bounds the client's transmit ring; [laxity]
    (default 0) is the l of the [(p, s, x, l)] guarantee — see the
    module header. *)

val retire : t -> client -> unit

val send : t -> client -> bytes:int -> (unit Sync.Ivar.t, [ `Retired ]) result
(** Enqueue one packet (blocking while the ring is full); the ivar
    fills when the packet has left the wire. [Error `Retired] if the
    client has been retired. *)

val transmit : t -> client -> bytes:int -> (unit, [ `Retired ]) result
(** [send] then wait. *)

val packets_sent : client -> int
val bytes_sent : client -> int
val used_time : client -> Time.span
val lax_time : client -> Time.span
(** Lifetime lax (empty-ring) time charged to the client. *)

val client_name : client -> string
val trace : t -> event Trace.t
val utilisation : t -> float
