(** The user-safe network link: Atropos-scheduled transmission.

    The paper states that Nemesis hands out explicit low-level
    guarantees for {e all} resources — "disks, network interfaces and
    physical memory are treated in the same way". This module applies
    exactly the machinery of the USD to the transmit side of a network
    link: clients hold [(p, s, x)] guarantees, an EDF scheduler in the
    link driver domain performs one packet transmission at a time for
    the earliest-deadline client with budget, measured wire time is
    charged against the client's slice with roll-over accounting, and
    slack goes to x-flagged clients.

    (Packets are three orders of magnitude shorter than disk
    transactions, so the short-block problem does not bite and no
    laxity mechanism is needed on this resource.) *)

open Engine

type t

type client

type event =
  | Tx of { client : string; bytes : int; dur : Time.span }
  | Alloc of { client : string }
  | Slack_tx of { client : string; bytes : int; dur : Time.span }

val create : ?params:Net_params.t -> ?rollover:bool -> Sim.t -> t

val admit :
  t -> name:string -> period:Time.span -> slice:Time.span -> ?extra:bool ->
  ?queue_depth:int -> unit -> (client, string) result
(** Admission control: Σ s/p ≤ 1 over the link. [queue_depth]
    (default 64) bounds the client's transmit ring. *)

val retire : t -> client -> unit

val send : t -> client -> bytes:int -> (unit Sync.Ivar.t, [ `Retired ]) result
(** Enqueue one packet (blocking while the ring is full); the ivar
    fills when the packet has left the wire. [Error `Retired] if the
    client has been retired. *)

val transmit : t -> client -> bytes:int -> (unit, [ `Retired ]) result
(** [send] then wait. *)

val packets_sent : client -> int
val bytes_sent : client -> int
val used_time : client -> Time.span
val client_name : client -> string
val trace : t -> event Trace.t
val utilisation : t -> float
