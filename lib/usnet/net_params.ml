open Engine

type t = { rate_bps : float; per_packet : Time.span; mtu : int }

let fast_ethernet =
  { rate_bps = 100e6; per_packet = Time.us 8; mtu = 1514 }

let gigabit = { rate_bps = 1e9; per_packet = Time.us 2; mtu = 9014 }

let tx_time t ~bytes =
  if bytes <= 0 || bytes > t.mtu then
    invalid_arg (Printf.sprintf "Net_params.tx_time: bad size %d" bytes);
  t.per_packet
  + Time.of_us_float (float_of_int (bytes * 8) /. t.rate_bps *. 1e6)
