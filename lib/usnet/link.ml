open Engine
open Sched

type event =
  | Tx of { client : string; bytes : int; dur : Time.span }
  | Alloc of { client : string }
  | Slack_tx of { client : string; bytes : int; dur : Time.span }
  | Lax of { client : string; dur : Time.span }

type admit_error =
  | Bad_queue_depth of { depth : int }
  | Bad_qos of { reason : string }
  | Link_overcommit of { requested : float; available : float }

let admit_error_message = function
  | Bad_queue_depth _ -> "queue depth must be positive"
  | Bad_qos { reason } -> reason
  | Link_overcommit { requested; available } ->
    Printf.sprintf "admission refused: utilisation %.3f > 1"
      (requested +. (1. -. available))

let pp_admit_error ppf e =
  Format.pp_print_string ppf (admit_error_message e)

type packet = { bytes : int; completion : unit Sync.Ivar.t }

type client = {
  edf : Edf.client;
  ring : packet Queue.t;
  depth : int;
  senders : (unit -> unit) Queue.t;
  laxity : Time.span;
  mutable lax_left : Time.span;
  mutable idled : bool;
      (* lax allowance spent with nothing to send: off the runnable
         queue until the next periodic allocation *)
  mutable live : bool;
  mutable packets : int;
  mutable sent_bytes : int;
  mutable lax_used : Time.span;
}

type t = {
  sim : Sim.t;
  lname : string;
  params : Net_params.t;
  edf : Edf.t;
  (* Clients in admission order (replenish records trace events while
     walking it) plus an id-keyed node table for O(1) member lookups
     on the pick-next path. *)
  members : client Ilist.t;
  nodes : (int, client Ilist.node) Hashtbl.t;
  kick : Sync.Waitq.t;
  events : event Trace.t;
  mutable running : bool;
}

let create ?(name = "link") ?(params = Net_params.fast_ethernet)
    ?(rollover = true) sim =
  { sim; lname = name; params; edf = Edf.create ~rollover ();
    members = Ilist.create (); nodes = Hashtbl.create 64;
    kick = Sync.Waitq.create (); events = Trace.create (); running = false }

let name t = t.lname
let params t = t.params
let client_name (c : client) = c.edf.Edf.cname
let packets_sent (c : client) = c.packets
let bytes_sent (c : client) = c.sent_bytes
let used_time (c : client) = c.edf.Edf.used_total
let lax_time (c : client) = c.lax_used
let trace t = t.events
let utilisation t = Edf.utilisation t.edf

let find_member t e =
  Option.map Ilist.value (Hashtbl.find_opt t.nodes e.Edf.id)

let has_pending (c : client) = not (Queue.is_empty c.ring)

let replenish t ~now =
  Ilist.iter
    (fun (c : client) ->
      if c.live && Edf.replenish t.edf ~now c.edf > 0 then begin
        c.idled <- false;
        c.lax_left <- c.laxity;
        Trace.record t.events now (Alloc { client = client_name c })
      end)
    t.members

let gauges t (c : client) =
  if !Obs.enabled then begin
    let label = t.lname ^ "." ^ client_name c in
    Obs.Metrics.set_gauge ~label "link.tx_bytes" (float_of_int c.sent_bytes);
    Obs.Metrics.set_gauge ~label "link.queue_depth"
      (float_of_int (Queue.length c.ring))
  end

let transmit_one t (c : client) ~slack =
  let pkt = Queue.pop c.ring in
  (match Queue.take_opt c.senders with Some wake -> wake () | None -> ());
  let dur = Net_params.tx_time t.params ~bytes:pkt.bytes in
  Proc.sleep dur;
  if slack then Edf.charge_slack c.edf dur else Edf.charge c.edf dur;
  c.packets <- c.packets + 1;
  c.sent_bytes <- c.sent_bytes + pkt.bytes;
  (* A completed transmission proves the client was not idling. *)
  c.lax_left <- c.laxity;
  Trace.record t.events (Sim.now t.sim)
    (if slack then Slack_tx { client = client_name c; bytes = pkt.bytes; dur }
     else Tx { client = client_name c; bytes = pkt.bytes; dur });
  gauges t c;
  Sync.Ivar.fill pkt.completion ()

(* The earliest-deadline runnable client has nothing queued: a client
   with laxity holds its place on the runnable queue for up to its
   remaining lax allowance (bounded by its budget and the next period
   boundary), and the wait is charged as if it were wire time — the
   same mechanism the USD uses for disk transactions. Page-sized
   transfers are fragmented into many MTU packets with think time
   between them, so without laxity a bulk client loses the link at
   every inter-packet gap (the short-block problem, at network
   scale). *)
let lax_wait t (c : client) =
  let now = Sim.now t.sim in
  let bound = min c.lax_left c.edf.Edf.remaining in
  let bound =
    match Edf.next_deadline t.edf with
    | Some d -> min bound (max 1 (Time.diff d now))
    | None -> bound
  in
  if bound <= 0 then c.idled <- true
  else begin
    ignore (Sync.Waitq.wait_timeout t.kick bound);
    let elapsed = Time.diff (Sim.now t.sim) now in
    if elapsed > 0 then begin
      Edf.charge c.edf elapsed;
      c.lax_left <- c.lax_left - elapsed;
      c.lax_used <- c.lax_used + elapsed;
      Trace.record t.events (Sim.now t.sim)
        (Lax { client = client_name c; dur = elapsed });
      if c.lax_left <= 0 then c.idled <- true
    end
  end

let rec scheduler_loop t =
  let now = Sim.now t.sim in
  replenish t ~now;
  (* A client with no laxity is runnable only with packets queued (the
     seed behaviour, bit-for-bit); a client holding a lax allowance
     stays runnable while empty and burns laxity when selected. *)
  let runnable e =
    match find_member t e with
    | Some c -> c.live && not c.idled && (has_pending c || c.laxity > 0)
    | None -> false
  in
  let sendable e =
    match find_member t e with
    | Some c -> c.live && has_pending c
    | None -> false
  in
  (match Edf.select t.edf ~only:runnable ~now with
  | Some e ->
    let c = Option.get (find_member t e) in
    if has_pending c then transmit_one t c ~slack:false else lax_wait t c
  | None ->
    (match Edf.select_slack t.edf ~only:sendable ~now with
    | Some e -> transmit_one t (Option.get (find_member t e)) ~slack:true
    | None ->
      (* Sleep to the next period boundary of a client with queued
         packets, or until a new submission. *)
      let next_dl =
        Ilist.fold
          (fun best (c : client) ->
            if c.live && has_pending c then
              match best with
              | Some d when d <= c.edf.Edf.deadline -> best
              | _ -> Some c.edf.Edf.deadline
            else best)
          None t.members
      in
      (match next_dl with
      | Some d ->
        ignore (Sync.Waitq.wait_timeout t.kick (max 1 (Time.diff d now)))
      | None -> Sync.Waitq.wait t.kick)));
  scheduler_loop t

let ensure_running t =
  if not t.running then begin
    t.running <- true;
    ignore (Proc.spawn ~name:"link-sched" t.sim (fun () -> scheduler_loop t))
  end

let admit t ~name ~period ~slice ?(extra = false) ?(queue_depth = 64)
    ?(laxity = 0) () =
  if queue_depth <= 0 then Error (Bad_queue_depth { depth = queue_depth })
  else if laxity < 0 then
    Error (Bad_qos { reason = "laxity must be non-negative" })
  else
    let before = Edf.utilisation t.edf in
    match
      Edf.admit t.edf ~name ~period ~slice ~extra ~now:(Sim.now t.sim) ()
    with
    | Error reason ->
      (* Classify the EDF core's refusal: a well-formed guarantee that
         was still refused can only be bandwidth overcommit. *)
      if period > 0 && slice > 0 && slice <= period then
        Error
          (Link_overcommit
             { requested = float_of_int slice /. float_of_int period;
               available = 1. -. before })
      else Error (Bad_qos { reason })
    | Ok e ->
      let c =
        { edf = e; ring = Queue.create (); depth = queue_depth;
          senders = Queue.create (); laxity; lax_left = laxity;
          idled = false; live = true; packets = 0; sent_bytes = 0;
          lax_used = 0 }
      in
      let node = Ilist.make_node c in
      Ilist.push_back t.members node;
      Hashtbl.replace t.nodes e.Edf.id node;
      ensure_running t;
      Sync.Waitq.broadcast t.kick;
      Ok c

let retire t (c : client) =
  c.live <- false;
  Edf.remove t.edf c.edf;
  (match Hashtbl.find_opt t.nodes c.edf.Edf.id with
  | Some node ->
    Ilist.remove t.members node;
    Hashtbl.remove t.nodes c.edf.Edf.id
  | None -> ());
  Sync.Waitq.broadcast t.kick

let send t (c : client) ~bytes =
  if not c.live then Error `Retired
  else begin
    if Queue.length c.ring >= c.depth then
      Proc.suspend (fun wake -> Queue.add wake c.senders);
    let completion = Sync.Ivar.create () in
    Queue.add { bytes; completion } c.ring;
    gauges t c;
    Sync.Waitq.broadcast t.kick;
    Ok completion
  end

let transmit t c ~bytes =
  match send t c ~bytes with
  | Error `Retired -> Error `Retired
  | Ok completion ->
    Sync.Ivar.read completion;
    Ok ()
