open Engine
open Sched

type event =
  | Tx of { client : string; bytes : int; dur : Time.span }
  | Alloc of { client : string }
  | Slack_tx of { client : string; bytes : int; dur : Time.span }

type packet = { bytes : int; completion : unit Sync.Ivar.t }

type client = {
  edf : Edf.client;
  ring : packet Queue.t;
  depth : int;
  senders : (unit -> unit) Queue.t;
  mutable live : bool;
  mutable packets : int;
  mutable sent_bytes : int;
}

type t = {
  sim : Sim.t;
  params : Net_params.t;
  edf : Edf.t;
  (* Clients in admission order (replenish records trace events while
     walking it) plus an id-keyed node table for O(1) member lookups
     on the pick-next path. *)
  members : client Ilist.t;
  nodes : (int, client Ilist.node) Hashtbl.t;
  kick : Sync.Waitq.t;
  events : event Trace.t;
  mutable running : bool;
}

let create ?(params = Net_params.fast_ethernet) ?(rollover = true) sim =
  { sim; params; edf = Edf.create ~rollover (); members = Ilist.create ();
    nodes = Hashtbl.create 64; kick = Sync.Waitq.create ();
    events = Trace.create (); running = false }

let client_name (c : client) = c.edf.Edf.cname
let packets_sent (c : client) = c.packets
let bytes_sent (c : client) = c.sent_bytes
let used_time (c : client) = c.edf.Edf.used_total
let trace t = t.events
let utilisation t = Edf.utilisation t.edf

let find_member t e =
  Option.map Ilist.value (Hashtbl.find_opt t.nodes e.Edf.id)

let has_pending (c : client) = not (Queue.is_empty c.ring)

let replenish t ~now =
  Ilist.iter
    (fun (c : client) ->
      if c.live && Edf.replenish t.edf ~now c.edf > 0 then
        Trace.record t.events now (Alloc { client = client_name c }))
    t.members

let transmit_one t (c : client) ~slack =
  let pkt = Queue.pop c.ring in
  (match Queue.take_opt c.senders with Some wake -> wake () | None -> ());
  let dur = Net_params.tx_time t.params ~bytes:pkt.bytes in
  Proc.sleep dur;
  if slack then Edf.charge_slack c.edf dur else Edf.charge c.edf dur;
  c.packets <- c.packets + 1;
  c.sent_bytes <- c.sent_bytes + pkt.bytes;
  Trace.record t.events (Sim.now t.sim)
    (if slack then Slack_tx { client = client_name c; bytes = pkt.bytes; dur }
     else Tx { client = client_name c; bytes = pkt.bytes; dur });
  Sync.Ivar.fill pkt.completion ()

let rec scheduler_loop t =
  let now = Sim.now t.sim in
  replenish t ~now;
  let sendable e =
    match find_member t e with
    | Some c -> c.live && has_pending c
    | None -> false
  in
  (match Edf.select t.edf ~only:sendable ~now with
  | Some e -> transmit_one t (Option.get (find_member t e)) ~slack:false
  | None ->
    (match Edf.select_slack t.edf ~only:sendable ~now with
    | Some e -> transmit_one t (Option.get (find_member t e)) ~slack:true
    | None ->
      (* Sleep to the next period boundary of a client with queued
         packets, or until a new submission. *)
      let next_dl =
        Ilist.fold
          (fun best (c : client) ->
            if c.live && has_pending c then
              match best with
              | Some d when d <= c.edf.Edf.deadline -> best
              | _ -> Some c.edf.Edf.deadline
            else best)
          None t.members
      in
      (match next_dl with
      | Some d ->
        ignore (Sync.Waitq.wait_timeout t.kick (max 1 (Time.diff d now)))
      | None -> Sync.Waitq.wait t.kick)));
  scheduler_loop t

let ensure_running t =
  if not t.running then begin
    t.running <- true;
    ignore (Proc.spawn ~name:"link-sched" t.sim (fun () -> scheduler_loop t))
  end

let admit t ~name ~period ~slice ?(extra = false) ?(queue_depth = 64) () =
  if queue_depth <= 0 then Error "queue depth must be positive"
  else
    match
      Edf.admit t.edf ~name ~period ~slice ~extra ~now:(Sim.now t.sim) ()
    with
    | Error _ as e -> e
    | Ok e ->
      let c =
        { edf = e; ring = Queue.create (); depth = queue_depth;
          senders = Queue.create (); live = true; packets = 0; sent_bytes = 0 }
      in
      let node = Ilist.make_node c in
      Ilist.push_back t.members node;
      Hashtbl.replace t.nodes e.Edf.id node;
      ensure_running t;
      Sync.Waitq.broadcast t.kick;
      Ok c

let retire t (c : client) =
  c.live <- false;
  Edf.remove t.edf c.edf;
  (match Hashtbl.find_opt t.nodes c.edf.Edf.id with
  | Some node ->
    Ilist.remove t.members node;
    Hashtbl.remove t.nodes c.edf.Edf.id
  | None -> ());
  Sync.Waitq.broadcast t.kick

let send t (c : client) ~bytes =
  if not c.live then Error `Retired
  else begin
    if Queue.length c.ring >= c.depth then
      Proc.suspend (fun wake -> Queue.add wake c.senders);
    let completion = Sync.Ivar.create () in
    Queue.add { bytes; completion } c.ring;
    Sync.Waitq.broadcast t.kick;
    Ok completion
  end

let transmit t c ~bytes =
  match send t c ~bytes with
  | Error `Retired -> Error `Retired
  | Ok completion ->
    Sync.Ivar.read completion;
    Ok ()
