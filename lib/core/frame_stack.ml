(* Intrusive doubly-linked list ordered top (most revocable) first,
   with a pfn -> node table so remove/promote/demote are O(1) instead
   of a List.filter scan. Semantics are unchanged: push puts a frame
   on top, [to_list] is top-first, and duplicate pushes raise the same
   Invalid_argument the list representation did. *)

type t = {
  order : int Engine.Ilist.t;
  nodes : (int, int Engine.Ilist.node) Hashtbl.t;
}

let create () = { order = Engine.Ilist.create (); nodes = Hashtbl.create 64 }
let size t = Engine.Ilist.length t.order
let mem t pfn = Hashtbl.mem t.nodes pfn

let push t pfn =
  if mem t pfn then invalid_arg "Frame_stack.push: frame already present";
  let n = Engine.Ilist.make_node pfn in
  Engine.Ilist.push_front t.order n;
  Hashtbl.replace t.nodes pfn n

let remove t pfn =
  match Hashtbl.find_opt t.nodes pfn with
  | None -> false
  | Some n ->
    Engine.Ilist.remove t.order n;
    Hashtbl.remove t.nodes pfn;
    true

let top_k t k =
  let _, acc =
    Engine.Ilist.fold
      (fun (n, acc) pfn -> if n <= 0 then (n, acc) else (n - 1, pfn :: acc))
      (k, []) t.order
  in
  List.rev acc

let move_to_top t pfn =
  match Hashtbl.find_opt t.nodes pfn with
  | None -> raise Not_found
  | Some n -> Engine.Ilist.move_front t.order n

let move_to_bottom t pfn =
  match Hashtbl.find_opt t.nodes pfn with
  | None -> raise Not_found
  | Some n -> Engine.Ilist.move_back t.order n

let to_list t = Engine.Ilist.to_list t.order
