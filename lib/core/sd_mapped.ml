open Hw

type mode = Shared | Private

(* Mapped-file domains have no degradation path of their own: an
   unrecoverable store error (or a retirement race) takes the domain
   down with the same messages the untyped API used to raise. *)
let fs_exn = function
  | Ok () -> ()
  | Error (`Media m) ->
    failwith
      (Printf.sprintf "File_store: unrecoverable media error at lba %d"
         m.Usbs.Usd.bad_lba)
  | Error `Retired -> failwith "File_store: client retired"

type backing = From_file | From_cow of int

type pstate =
  | On_file                      (* clean copy in the file, not resident *)
  | Resident of { pfn : int; backing : backing }
  | On_cow of int                (* private dirty copy, not resident *)

type info = {
  file_reads : int;
  file_writebacks : int;
  cow_writes : int;
  cow_reads : int;
  evictions : int;
}

type state = {
  env : Stretch_driver.env;
  mode : mode;
  store : Usbs.File_store.t;
  file : Usbs.File_store.file;
  client : Usbs.Usd.client;
  cow_backing : Usbs.File_store.file option;
  cow_slots : Bloks.t;
  mutable stretch : Stretch.t option;
  mutable pages : pstate array;
  mutable pool : int list;
  resident_fifo : int Queue.t;
  mutable file_reads : int;
  mutable file_writebacks : int;
  mutable cow_writes : int;
  mutable cow_reads : int;
  mutable evictions : int;
}

let stack st = Frames.frame_stack st.env.Stretch_driver.frames_client

(* Bind-time failwiths (as in Sd_paged): faulting before bind, binding
   twice, or binding over an undersized file are wiring bugs in the
   domain that created the driver. *)
let the_stretch st =
  match st.stretch with
  | Some s -> s
  | None -> failwith "mapped driver: no stretch bound"

let take_pool st =
  match st.pool with
  | [] -> None
  | pfn :: rest ->
    st.pool <- rest;
    Some pfn

let bind st (s : Stretch.t) =
  if st.stretch <> None then failwith "mapped driver: already bound";
  let npages = Stretch.npages s in
  if Usbs.File_store.file_pages st.file < npages then
    failwith "mapped driver: file smaller than stretch";
  (match (st.mode, st.cow_backing) with
  | Private, Some b when Usbs.File_store.file_pages b < npages ->
    failwith "mapped driver: cow backing smaller than stretch"
  | Private, None -> failwith "mapped driver: private mapping needs backing"
  | _ -> ());
  st.stretch <- Some s;
  st.pages <- Array.make npages On_file

let owns_fault st (fault : Fault.t) =
  match (fault.sid, st.stretch) with
  | Some sid, Some s -> s.Stretch.sid = sid
  | _ -> false

(* Evict the oldest resident page; clean according to the mode. *)
let evict_one st =
  let env = st.env in
  match Queue.take_opt st.resident_fifo with
  | None -> None
  | Some victim ->
    (match st.pages.(victim) with
    | Resident { pfn; backing } ->
      let va = Stretch.page_base (the_stretch st) victim in
      let pte = Stretch_driver.unmap_page env va in
      let dirty = Pte.dirty pte in
      env.Stretch_driver.assert_idc_allowed "USBS clean";
      (match (st.mode, dirty, backing) with
      | Shared, true, _ ->
        (* Write back to the file itself. *)
        fs_exn
          (Usbs.File_store.write_page st.store st.file ~client:st.client
             ~page_index:victim);
        st.file_writebacks <- st.file_writebacks + 1;
        st.pages.(victim) <- On_file
      | Private, true, _ ->
        (* Copy-on-write: the dirty page goes to the private backing,
           never to the file. The first copy pays the page-copy cost. *)
        let slot =
          match backing with
          | From_cow slot -> slot
          | From_file ->
            env.Stretch_driver.consume_cpu
              env.Stretch_driver.cost.Cost.page_copy;
            (match Bloks.alloc st.cow_slots with
            | Some slot -> slot
            | None -> failwith "mapped driver: cow backing exhausted")
        in
        fs_exn
          (Usbs.File_store.write_page st.store (Option.get st.cow_backing)
             ~client:st.client ~page_index:slot);
        st.cow_writes <- st.cow_writes + 1;
        st.pages.(victim) <- On_cow slot
      | _, false, From_file -> st.pages.(victim) <- On_file
      | _, false, From_cow slot -> st.pages.(victim) <- On_cow slot);
      st.evictions <- st.evictions + 1;
      Some pfn
    | On_file | On_cow _ -> None)

let obtain_frame st =
  let env = st.env in
  match take_pool st with
  | Some pfn -> Some pfn
  | None ->
    env.Stretch_driver.assert_idc_allowed "frames allocator";
    env.Stretch_driver.consume_cpu env.Stretch_driver.cost.Cost.idc_call;
    (match
       Frames.alloc env.Stretch_driver.frames env.Stretch_driver.frames_client
     with
    | Some pfn -> Some pfn
    | None ->
      let rec try_evict () =
        match evict_one st with
        | Some pfn -> Some pfn
        | None ->
          if Queue.is_empty st.resident_fifo then None else try_evict ()
      in
      try_evict ())

(* Mapped pages always need a disk read, so the fast path only covers
   the already-resident race. *)
let fast st (fault : Fault.t) =
  if not (owns_fault st fault) then
    Stretch_driver.Failure "fault outside bound stretch"
  else
    match fault.kind with
    | Mmu.Access_violation -> Stretch_driver.Failure "access violation"
    | Mmu.Unallocated -> Stretch_driver.Failure "unallocated address"
    | Mmu.Page_fault ->
      let page = Stretch.page_index (the_stretch st) fault.va in
      (match st.pages.(page) with
      | Resident _ -> Stretch_driver.Success
      | On_file | On_cow _ -> Stretch_driver.Retry)

let full st (fault : Fault.t) =
  if not (owns_fault st fault) then
    Stretch_driver.Failure "fault outside bound stretch"
  else
    match fault.kind with
    | Mmu.Access_violation -> Stretch_driver.Failure "access violation"
    | Mmu.Unallocated -> Stretch_driver.Failure "unallocated address"
    | Mmu.Page_fault ->
      let env = st.env in
      let page = Stretch.page_index (the_stretch st) fault.va in
      (match st.pages.(page) with
      | Resident _ -> Stretch_driver.Success
      | (On_file | On_cow _) as where ->
        (match obtain_frame st with
        | None -> Stretch_driver.Failure "no frame obtainable"
        | Some pfn ->
          env.Stretch_driver.assert_idc_allowed "USBS read";
          let backing =
            match where with
            | On_file ->
              fs_exn
                (Usbs.File_store.read_page st.store st.file ~client:st.client
                   ~page_index:page);
              st.file_reads <- st.file_reads + 1;
              From_file
            | On_cow slot ->
              fs_exn
                (Usbs.File_store.read_page st.store
                   (Option.get st.cow_backing) ~client:st.client
                   ~page_index:slot);
              st.cow_reads <- st.cow_reads + 1;
              From_cow slot
            | Resident _ -> assert false
          in
          let va = Stretch.page_base (the_stretch st) page in
          Stretch_driver.map_page env va ~pfn;
          st.pages.(page) <- Resident { pfn; backing };
          Queue.add page st.resident_fifo;
          Frame_stack.move_to_bottom (stack st) pfn;
          Stretch_driver.Success))

let relinquish st ~want =
  let given = ref 0 in
  while !given < want && st.pool <> [] do
    match take_pool st with
    | Some pfn ->
      Frame_stack.move_to_top (stack st) pfn;
      incr given
    | None -> ()
  done;
  let continue_ = ref true in
  while !given < want && !continue_ do
    match evict_one st with
    | Some pfn ->
      Frame_stack.move_to_top (stack st) pfn;
      incr given
    | None -> if Queue.is_empty st.resident_fifo then continue_ := false
  done;
  !given

let create ?(initial_frames = 0) ~mode ~store ~file ~client ?cow_backing env =
  (match (mode, cow_backing) with
  | Private, None -> Error "private mapping needs a cow backing file"
  | _ -> Ok ())
  |> function
  | Error _ as e -> e
  | Ok () ->
    let st =
      { env; mode; store; file; client; cow_backing;
        cow_slots =
          Bloks.create
            ~nbloks:
              (max 1
                 (match cow_backing with
                 | Some b -> Usbs.File_store.file_pages b
                 | None -> 1));
        stretch = None; pages = [||]; pool = [];
        resident_fifo = Queue.create (); file_reads = 0; file_writebacks = 0;
        cow_writes = 0; cow_reads = 0; evictions = 0 }
    in
    let shortfall = ref 0 in
    for _ = 1 to initial_frames do
      match
        Frames.alloc env.Stretch_driver.frames
          env.Stretch_driver.frames_client
      with
      | Some pfn -> st.pool <- pfn :: st.pool
      | None -> incr shortfall
    done;
    if !shortfall > 0 then
      Error (Printf.sprintf "could not preallocate %d frames" !shortfall)
    else
      Ok
        ( { Stretch_driver.name =
              (match mode with Shared -> "mapped" | Private -> "mapped(cow)");
            bind = bind st;
            fast = fast st;
            full = full st;
            relinquish = relinquish st;
            resident_pages = (fun () -> Queue.length st.resident_fifo);
            free_frames = (fun () -> List.length st.pool) },
          fun () ->
            { file_reads = st.file_reads;
              file_writebacks = st.file_writebacks;
              cow_writes = st.cow_writes;
              cow_reads = st.cow_reads;
              evictions = st.evictions } )
