open Engine
open Hw
open Disk
open Sched

type config = {
  seed : int;
  main_memory_mb : int;
  page_table : [ `Linear | `Guarded ];
  cost : Cost.t;
  disk_params : Disk_params.t;
  usd_rollover : bool;
  usd_laxity : bool;
  revocation_deadline : Time.span;
  va_bits : int;
  sfs_journal_blocks : int;
  fs_journal_blocks : int;
}

let default_config =
  { seed = 42;
    main_memory_mb = 64;
    page_table = `Linear;
    cost = Cost.nemesis;
    disk_params = Disk_params.vp3221;
    usd_rollover = true;
    usd_laxity = true;
    revocation_deadline = Time.ms 100;
    va_bits = 32;
    sfs_journal_blocks = 0;
    fs_journal_blocks = 0 }

type error =
  | Cpu_admission of { reason : string }
  | Frames_admission of Frames.error
  | Usd_admission of { reason : string }
  | Swap_open of { name : string; error : Usbs.Sfs.open_error }
  | No_detached_swap of { name : string }
  | Swap_attached of { name : string }
  | Store_error of { reason : string }
  | Driver_error of { reason : string }
  | Not_a_driver_factory of { path : string }
  | No_driver_published of { path : string }

(* The printers reproduce the exact strings the stringly API returned,
   so reports and failwith-style consumers keep their messages. *)
let pp_error ppf = function
  | Cpu_admission { reason } -> Format.fprintf ppf "cpu: %s" reason
  | Frames_admission e -> Format.fprintf ppf "frames: %a" Frames.pp_error e
  | Usd_admission { reason } -> Format.pp_print_string ppf reason
  | Swap_open { error; _ } ->
    Format.pp_print_string ppf (Usbs.Sfs.open_error_message error)
  | No_detached_swap { name } ->
    Format.fprintf ppf "no detached swapfile %S to reattach" name
  | Swap_attached { name } ->
    Format.fprintf ppf "swapfile %S is still attached" name
  | Store_error { reason } | Driver_error { reason } ->
    Format.pp_print_string ppf reason
  | Not_a_driver_factory { path } ->
    Format.fprintf ppf "%S is not a stretch-driver factory" path
  | No_driver_published { path } ->
    Format.fprintf ppf "no driver published at %S" path

let error_message e = Format.asprintf "%a" pp_error e

type domain_spec = {
  sp_name : string;
  sp_cpu_period : Time.span;
  sp_cpu_slice : Time.span;
  sp_guarantee : int;
  sp_optimistic : int;
}

type domain = {
  dom : Domains.t;
  mm : Mm_entry.t;
  frames_client : Frames.client;
  env : Stretch_driver.env;
  dspec : domain_spec;
  sys : t;
}

and t = {
  cfg : config;
  simulator : Sim.t;
  the_mmu : Mmu.t;
  ramtab : Ramtab.t;
  the_translation : Translation.t;
  the_cpu : Cpu.t;
  salloc : Stretch_allocator.t;
  the_frames : Frames.t;
  dm : Disk_model.t;
  the_usd : Usbs.Usd.t;
  the_sfs : Usbs.Sfs.t;
  the_store : Usbs.File_store.t;
  fs_start : int;
  fs_len : int;
  mutable members : domain list;
  mutable next_id : int;
  names : Namespace.t;
}

type Namespace.entry +=
  | Driver_factory of (domain -> Stretch.t -> (Stretch_driver.t, error) result)

(* Stretchable virtual addresses start above a reserved system region. *)
let va_base = 0x1000_0000

let create ?(config = default_config) () =
  let simulator = Sim.create ~seed:config.seed () in
  let pt_impl =
    match config.page_table with
    | `Linear -> Linear_pt.impl (Linear_pt.create ~va_bits:config.va_bits ())
    | `Guarded -> Guarded_pt.impl (Guarded_pt.create ~va_bits:config.va_bits ())
  in
  let the_mmu = Mmu.create ~pt:pt_impl ~cost:config.cost () in
  let nframes = config.main_memory_mb * 1024 * 1024 / Addr.page_size in
  let ramtab = Ramtab.create ~nframes in
  let the_translation = Translation.create the_mmu ramtab in
  let va_bytes = (1 lsl config.va_bits) - va_base - Addr.page_size in
  let va_bytes = va_bytes / Addr.page_size * Addr.page_size in
  let salloc =
    Stretch_allocator.create the_translation ~va_base ~va_bytes
  in
  let the_frames =
    Frames.create ~revocation_deadline:config.revocation_deadline simulator
      ramtab ~nframes
  in
  let dm = Disk_model.create ~params:config.disk_params () in
  let the_usd =
    Usbs.Usd.create ~rollover:config.usd_rollover
      ~laxity_enabled:config.usd_laxity simulator dm
  in
  (* Partitions: swap in the first half of the disk, a raw region for
     streaming file-system clients in the third quarter, and the file
     store (named extent files, mapped stretches) in the last. *)
  let nblocks = config.disk_params.Disk_params.nblocks in
  let half = nblocks / 2 in
  let three_quarters = nblocks * 3 / 4 in
  let the_sfs =
    Usbs.Sfs.create ~journal_blocks:config.sfs_journal_blocks ~first_block:0
      ~nblocks:half the_usd
  in
  let the_store =
    Usbs.File_store.create ~journal_blocks:config.fs_journal_blocks
      ~first_block:three_quarters ~nblocks:(nblocks - three_quarters) the_usd
  in
  let t =
    { cfg = config; simulator; the_mmu; ramtab; the_translation;
      the_cpu = Cpu.create simulator; salloc; the_frames; dm; the_usd;
      the_sfs; the_store; fs_start = half; fs_len = three_quarters - half;
      members = []; next_id = 1; names = Namespace.create () }
  in
  Frames.set_kill_handler t.the_frames (fun domain_id ->
      List.iter
        (fun d -> if Domains.id d.dom = domain_id then Domains.kill d.dom)
        t.members);
  t

let sim t = t.simulator
let config t = t.cfg
let namespace t = t.names
let cpu t = t.the_cpu
let mmu t = t.the_mmu
let translation t = t.the_translation
let ramtab t = t.ramtab
let stretch_allocator t = t.salloc
let frames t = t.the_frames
let disk t = t.dm
let usd t = t.the_usd
let sfs t = t.the_sfs
let file_store t = t.the_store
let domains t = t.members
let fs_partition t = (t.fs_start, t.fs_len)

let run ?until t = Sim.run ?until t.simulator

let add_domain t ~name ?(cpu_period = Time.ms 10) ?(cpu_slice = Time.us 500)
    ~guarantee ~optimistic () =
  match
    Cpu.admit t.the_cpu ~name ~period:cpu_period ~slice:cpu_slice ()
  with
  | Error reason -> Error (Cpu_admission { reason })
  | Ok cpu_client ->
    (match Frames.admit t.the_frames ~domain:t.next_id ~guarantee ~optimistic with
    | Error e ->
      Cpu.remove t.the_cpu cpu_client;
      Error (Frames_admission e)
    | Ok frames_client ->
      let id = t.next_id in
      t.next_id <- t.next_id + 1;
      let pd = Pdom.create ~asn:id in
      let dom =
        Domains.create ~sim:t.simulator ~id ~name ~cpu:t.the_cpu ~cpu_client
          ~pdom:pd ~mmu:t.the_mmu ~cost:t.cfg.cost ()
      in
      let mm = Mm_entry.create dom in
      Mm_entry.wire_revocation mm t.the_frames frames_client;
      let env =
        { Stretch_driver.domain_id = id;
          domain_name = name;
          pdom = pd;
          translation = t.the_translation;
          frames = t.the_frames;
          frames_client;
          consume_cpu = Domains.consume_cpu dom;
          assert_idc_allowed = Domains.assert_idc_allowed dom;
          cost = t.cfg.cost }
      in
      let dspec =
        { sp_name = name; sp_cpu_period = cpu_period;
          sp_cpu_slice = cpu_slice; sp_guarantee = guarantee;
          sp_optimistic = optimistic }
      in
      let d = { dom; mm; frames_client; env; dspec; sys = t } in
      Domains.on_kill dom (fun () ->
          Frames.retire t.the_frames frames_client;
          Cpu.remove t.the_cpu cpu_client;
          t.members <- List.filter (fun d' -> d' != d) t.members);
      t.members <- t.members @ [ d ];
      Ok d)

let kill_domain _t d = Domains.kill d.dom

let spec d = d.dspec

(* A bare frames contract with no domain behind it (PR 7 stacked
   pagers): the share host holds frames on behalf of every sharer, and
   the zpool holds its compressed-tier budget, but neither is a
   schedulable domain — no CPU contract, no fault channel, no
   MMEntry. The client id comes out of the same counter as domain ids
   so RamTab ownership stays unambiguous. The caller must install a
   revocation handler before holding optimistic frames (the default
   for a handler-less client is to be killed, which for a service
   client is a no-op member scan — the frames would only be reclaimed,
   not the service notified). *)
let admit_service t ~guarantee ~optimistic =
  match Frames.admit t.the_frames ~domain:t.next_id ~guarantee ~optimistic with
  | Error e -> Error (Frames_admission e)
  | Ok client ->
    let id = t.next_id in
    t.next_id <- t.next_id + 1;
    Ok (id, client)

(* Bind an application-built stretch driver (the CoW and shared-segment
   drivers of [lib/share] compose existing drivers rather than coming
   from a factory). Replaces any existing binding for the stretch's
   sid, so an outer driver can interpose on one bound moments before. *)
let bind_driver d s driver = Mm_entry.bind d.mm s driver

(* Fork a tenant from a template domain: a fresh domain admitted under
   the template's resource envelope (CPU period/slice, frame
   guarantee/optimistic) but its own name. What "forking the paged
   stretch" means is the caller's business — [fork] receives the new
   domain and builds its address space (lib/share's spawn_cow attaches
   the CoW driver there); if it fails the half-built domain is
   killed. *)
let spawn_cow t ~template ~name ~fork =
  let sp = template.dspec in
  match
    add_domain t ~name ~cpu_period:sp.sp_cpu_period
      ~cpu_slice:sp.sp_cpu_slice ~guarantee:sp.sp_guarantee
      ~optimistic:sp.sp_optimistic ()
  with
  | Error e -> Error e
  | Ok d -> (
    match fork d with
    | Ok x -> Ok (d, x)
    | Error e ->
      Domains.kill d.dom;
      Error e)

(* Re-admit a killed domain under its original contract: same name,
   same CPU period/slice, same frame guarantee — a fresh Domains.t and
   protection domain, the resource envelope of the old incarnation. *)
let respawn t sp =
  add_domain t ~name:sp.sp_name ~cpu_period:sp.sp_cpu_period
    ~cpu_slice:sp.sp_cpu_slice ~guarantee:sp.sp_guarantee
    ~optimistic:sp.sp_optimistic ()

let alloc_stretch d ?base ?global ~bytes () =
  Stretch_allocator.alloc d.sys.salloc ?base ?global
    ~owner_pdom:(Domains.pdom d.dom) ~owner:(Domains.id d.dom) ~bytes ()

let free_stretch d s =
  Mm_entry.unbind d.mm s;
  Stretch_allocator.destroy d.sys.salloc s

let bind_nailed d s =
  match Sd_nailed.create d.env with
  | Error reason -> Error (Driver_error { reason })
  | Ok driver ->
    Mm_entry.bind d.mm s driver;
    Ok driver

let bind_physical d ?prealloc s =
  match Sd_physical.create ?prealloc d.env with
  | Error reason -> Error (Driver_error { reason })
  | Ok driver ->
    Mm_entry.bind d.mm s driver;
    Ok driver

let bind_mapped d ~mode ?initial_frames ~file ~qos s () =
  let dom_name = Domains.name d.dom in
  match
    Usbs.Usd.admit d.sys.the_usd
      ~name:(dom_name ^ "." ^ Usbs.File_store.file_name file) ~qos ()
  with
  | Error reason -> Error (Usd_admission { reason })
  | Ok client ->
    let cow_backing =
      match mode with
      | Sd_mapped.Shared -> Ok None
      | Sd_mapped.Private ->
        (match
           Usbs.File_store.create_file d.sys.the_store
             ~name:(Printf.sprintf "%s.cow.%d" dom_name s.Stretch.sid)
             ~bytes:s.Stretch.bytes
         with
        | Ok f -> Ok (Some f)
        | Error reason -> Error (Store_error { reason }))
    in
    (match cow_backing with
    | Error e ->
      Usbs.Usd.retire d.sys.the_usd client;
      Error e
    | Ok cow_backing ->
      (match
         Sd_mapped.create ?initial_frames ~mode ~store:d.sys.the_store ~file
           ~client ?cow_backing d.env
       with
      | Error reason ->
        Usbs.Usd.retire d.sys.the_usd client;
        Error (Driver_error { reason })
      | Ok (driver, info) ->
        Mm_entry.bind d.mm s driver;
        Domains.on_kill d.dom (fun () ->
            Usbs.Usd.retire d.sys.the_usd client);
        Ok (driver, info)))

let bind_paged d ?forgetful ?initial_frames ?readahead ?policy ?spare_pages
    ?(restartable = false) ?backing ~swap_bytes ~qos s () =
  let swap_name = Domains.name d.dom ^ ".swap" in
  match
    Usbs.Sfs.open_swap d.sys.the_sfs ~name:swap_name ~bytes:swap_bytes ~qos
      ?spare_pages ()
  with
  | Error e -> Error (Swap_open { name = swap_name; error = e })
  | Ok swap ->
    (* [backing] sees the just-opened swapfile so it can layer a tiered
       store over it; the swapfile's lifecycle stays System's. *)
    let backing = Option.map (fun f -> f swap) backing in
    (match
       Sd_paged.create ?forgetful ?initial_frames ?readahead ?policy ?backing
         ~swap d.env
     with
    | Error reason ->
      Usbs.Sfs.close_swap d.sys.the_sfs swap;
      Error (Driver_error { reason })
    | Ok (driver, info) ->
      Mm_entry.bind d.mm s driver;
      (* A restartable domain's swapfile survives its death detached —
         the name, extent and recovered metadata stay registered so a
         respawned incarnation can reattach and restore. *)
      Domains.on_kill d.dom (fun () ->
          if restartable then Usbs.Sfs.detach_swap d.sys.the_sfs swap
          else Usbs.Sfs.close_swap d.sys.the_sfs swap);
      Ok (driver, info))

(* Restart path: reattach the swapfile the previous incarnation left
   detached (same domain name, so same swap name), restore the
   journal-committed (page, slot) image into a fresh paged driver, and
   bind. The restored pages start [Swapped] and fault back in from
   swap on first touch. *)
let bind_paged_restored d ?initial_frames ?readahead ?policy ~qos s () =
  let name = Domains.name d.dom ^ ".swap" in
  match Usbs.Sfs.reattach_swap d.sys.the_sfs ~name ~qos with
  | Error `Unknown -> Error (No_detached_swap { name })
  | Error `Attached -> Error (Swap_attached { name })
  | Error (`Sfs reason) -> Error (Store_error { reason })
  | Ok (swap, restore) ->
    (match
       Sd_paged.create ?initial_frames ?readahead ?policy ~restore ~swap d.env
     with
    | Error reason ->
      Usbs.Sfs.detach_swap d.sys.the_sfs swap;
      Error (Driver_error { reason })
    | Ok (driver, info) ->
      Mm_entry.bind d.mm s driver;
      Domains.on_kill d.dom (fun () ->
          Usbs.Sfs.detach_swap d.sys.the_sfs swap);
      Ok (driver, info))

(* Publish the standard stretch-driver creators in the system
   name-space so applications can pick implementations by name (the
   paper's "plug and play extensibility"). Parameterised drivers
   (paged, mapped) are published by applications with their QoS baked
   in; the two parameterless ones are system defaults. *)
let publish_standard_drivers t =
  List.iter
    (fun (path, factory) ->
      match Namespace.bind t.names ~path (Driver_factory factory) with
      | Ok () -> ()
      (* Boot-time registration of literal paths into a fresh
         namespace: a bind failure means two publishers claimed the
         same path, a programmer error. Loud failure at startup is the
         convention (same as Registry.register_exn); run-time
         resolution ([bind_by_name]) stays typed. *)
      | Error e -> failwith ("publish_standard_drivers: " ^ e))
    [ ("drivers/nailed", fun d s -> bind_nailed d s);
      ("drivers/physical", fun d s -> bind_physical d s) ]

let bind_by_name d ~path s =
  match Namespace.lookup d.sys.names ~path with
  | Some (Driver_factory f) -> f d s
  | Some _ -> Error (Not_a_driver_factory { path })
  | None -> Error (No_driver_published { path })
