(** Per-domain frame stacks.

    A system-allocated structure, writable by the owning domain,
    listing the physical frame numbers the domain owns ordered by
    importance: the {e top} of the stack holds the frame the domain is
    most prepared to have revoked. The frames allocator always revokes
    from the top, so a domain keeps its preferred revocation order by
    rearranging the stack (stretch drivers also use it to keep local
    notes about mappings, which here live in the drivers themselves).

    Backed by an intrusive doubly-linked list with a pfn -> node
    table: push, remove, promote and demote are all O(1), so revoking
    or remapping under hundreds of concurrent domains costs the same
    as under one. *)

type t

val create : unit -> t

val size : t -> int

val push : t -> int -> unit
(** Push a frame on top (most-revocable position). Raises
    [Invalid_argument] if already present. *)

val mem : t -> int -> bool

val remove : t -> int -> bool
(** Remove a frame wherever it is; [false] if absent. *)

val top_k : t -> int -> int list
(** The [k] most-revocable frames, top first (may return fewer). *)

val move_to_top : t -> int -> unit
(** Mark a frame most revocable. Raises [Not_found] if absent. *)

val move_to_bottom : t -> int -> unit
(** Mark a frame least revocable (e.g. just mapped). *)

val to_list : t -> int list
(** Top (most revocable) first. *)
